/**
 * @file
 * Interconnection network and network-interface model.
 *
 * A point-to-point fabric with a fixed one-way end-to-end latency
 * (120 processor cycles in the paper) plus per-NIC serialization:
 * each node's egress and ingress ports are FCFS resources, so bursts
 * queue.  Delivery is FIFO per (source, destination) pair, a property
 * the coherence protocol relies on (e.g. a writeback racing a fetch
 * nack from the same node).
 */

#ifndef PRISM_NET_NETWORK_HH
#define PRISM_NET_NETWORK_HH

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "obs/metrics.hh"
#include "sim/event_queue.hh"
#include "sim/rng.hh"
#include "sim/shard.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace prism {

/** Size class of a network message, for occupancy accounting. */
enum class MsgSize : std::uint8_t {
    Control, //!< header-only protocol message
    Data,    //!< carries one cache line
    Page,    //!< carries page-level payload (page-in bulk transfers)
};

/** The interconnect shared by all nodes. */
class Network
{
  public:
    struct Params {
        Cycles oneWayLatency = 120; //!< end-to-end wire+switch latency
        Cycles controlOccupancy = 8;  //!< NIC occupancy, header message
        Cycles dataOccupancy = 16;    //!< NIC occupancy, line-carrying
        Cycles pageOccupancy = 128;   //!< NIC occupancy, page-carrying
        /**
         * Schedule fuzzing: maximum extra delivery delay per message,
         * drawn deterministically from jitterSeed.  Per-(src, dst)
         * FIFO order is preserved.  0 = bit-identical to the
         * unjittered network.
         */
        Cycles jitterMax = 0;
        std::uint64_t jitterSeed = 1;
    };

    Network(EventQueue &eq, std::uint32_t num_nodes, const Params &p)
        : eq_(eq), params_(p), egress_(num_nodes), ingress_(num_nodes),
          jitterRng_(p.jitterSeed), numNodes_(num_nodes),
          lastDeliver_(p.jitterMax ? num_nodes * num_nodes : 0)
    {
    }

    /**
     * Send a message; @p deliver runs at the destination's receive
     * time.  @p src == @p dst is legal (loopback, zero wire latency but
     * still NIC occupancy) and used by home nodes messaging themselves
     * through the uniform protocol path.
     */
    template <typename F>
    void
    send(NodeId src, NodeId dst, MsgSize size, F &&deliver)
    {
        if (sharded_) {
            sendSharded(src, dst, size,
                        EventQueue::Callback(std::forward<F>(deliver)));
            return;
        }
        const Cycles occ = occupancy(size);
        ++messages_;
        bytesProxy_ += occ;
        Tick out_done = egress_[src].acquire(eq_.now(), occ) + occ;
        Tick wire = (src == dst) ? 0 : params_.oneWayLatency;
        Tick in_start = ingress_[dst].acquire(out_done + wire, occ);
        Tick at = in_start + occ;
        if (params_.jitterMax) {
            at += jitterRng_.below(params_.jitterMax + 1);
            // Clamp to strictly increasing per (src, dst): the event
            // queue does not promise stable ordering of equal ticks,
            // and the protocol relies on pairwise FIFO delivery.
            Tick &last = lastDeliver_[src * numNodes_ + dst];
            if (at <= last)
                at = last + 1;
            last = at;
        }
        delivery(size).sample(at - eq_.now());
        eq_.schedule(at, std::forward<F>(deliver));
    }

    /** Latency a message of @p size would see with no contention. */
    Cycles
    uncontendedLatency(MsgSize size, bool loopback = false) const
    {
        return 2 * occupancy(size) + (loopback ? 0 : params_.oneWayLatency);
    }

    std::uint64_t messages() const { return messages_; }

    /** Sum of NIC occupancies booked; proxy for bytes moved. */
    std::uint64_t trafficProxy() const { return bytesProxy_; }

    const Params &params() const { return params_; }

    /**
     * Bind the fabric's counters and per-size-class delivery-latency
     * histograms into @p reg under component "net", machine-wide.
     */
    void
    registerMetrics(MetricRegistry &reg)
    {
        reg.bind(MetricLabels{"net", kMachineWide, "messages", "count"},
                 &messages_, "messages sent through the fabric");
        reg.bind(MetricLabels{"net", kMachineWide, "trafficProxy",
                              "cycles"},
                 &bytesProxy_,
                 "NIC occupancy booked; proxy for bytes moved");
        reg.bind(MetricLabels{"net", kMachineWide, "latency.control",
                              "cycles"},
                 &deliveryControl_, "send-to-delivery, control messages");
        reg.bind(MetricLabels{"net", kMachineWide, "latency.data",
                              "cycles"},
                 &deliveryData_, "send-to-delivery, line-data messages");
        reg.bind(MetricLabels{"net", kMachineWide, "latency.page",
                              "cycles"},
                 &deliveryPage_, "send-to-delivery, page-bulk messages");
    }

    // --- Sharded mode (sim/shard.hh) ----------------------------------
    //
    // With intra-run sharding every send is decomposed: the egress NIC
    // is booked synchronously on the source shard (it owns the source
    // node), and the ingress side becomes a time-stamped entry that a
    // per-destination "pump" books in (arrival, source, sequence)
    // order — same-shard entries are enqueued directly, cross-shard
    // entries travel through the staging channel and are enqueued by
    // the coordinator at the window barrier.  Booking in arrival order
    // (instead of global send order, which no shard can observe) is
    // the one modeling difference from the sequential path: it only
    // matters when ingress bookings overlap under congestion, where
    // the two orders are different valid serializations of the same
    // queueing model.  Sharded runs are therefore deterministic and
    // shard-count-invariant but not byte-identical to `--jobs-intra
    // 1`; the measured deltas are documented in docs/PERFORMANCE.md
    // ("Sharded scheduler").  Jitter requires the sequential scheduler
    // (Machine falls back and says so).

    /** One in-flight message on the sharded ingress path. */
    struct ShardEntry {
        Tick sendTick;
        Tick arrival; //!< egress done + wire; ingress booking key
        NodeId src;
        NodeId dst;
        std::uint8_t sizeIdx; //!< MsgSize as an index
        std::uint64_t srcSeq; //!< per-source send sequence (FIFO key)
        EventQueue::Callback deliver;
    };

    /**
     * Enable the sharded send path.  @p queues maps shard -> event
     * queue, @p shard_of maps node -> shard.  Must be called before
     * any traffic; the sequential path is bit-identical when this is
     * never called.
     */
    void
    configureSharding(std::vector<EventQueue *> queues,
                      std::vector<std::uint32_t> shard_of)
    {
        sharded_ = true;
        shardQueues_ = std::move(queues);
        shardOfNode_ = std::move(shard_of);
        channel_.reset(static_cast<unsigned>(shardQueues_.size()));
        sendSeq_.assign(numNodes_, 0);
        pumps_.resize(numNodes_);
        tallies_.clear();
        tallies_.reserve(shardQueues_.size());
        for (std::size_t s = 0; s < shardQueues_.size(); ++s)
            tallies_.emplace_back();
    }

    /** Coordinator: move staged cross-shard entries into their pumps. */
    void
    drainShardChannel()
    {
        channel_.drain([this](ShardEntry &&e) {
            EventQueue &dq = *shardQueues_[shardOfNode_[e.dst]];
            enqueuePump(std::move(e), dq);
        });
    }

    /**
     * Coordinator: fold per-shard message/traffic tallies into the
     * registry-bound counters (kept exact at every window barrier so
     * parallel-phase snapshots see current totals).
     */
    void
    foldShardCounters()
    {
        for (ShardTally &t : tallies_) {
            messages_ += t.messages;
            bytesProxy_ += t.traffic;
            t.messages = 0;
            t.traffic = 0;
        }
    }

    /** Coordinator: fold per-shard latency histograms (run end). */
    void
    foldShardHistograms()
    {
        for (ShardTally &t : tallies_) {
            deliveryControl_.merge(t.hist[0]);
            deliveryData_.merge(t.hist[1]);
            deliveryPage_.merge(t.hist[2]);
            for (Histogram &h : t.hist)
                h = Histogram(latencyBounds());
        }
    }

    /** True when no staged or pump-pending entries remain. */
    bool
    shardTrafficQuiescent() const
    {
        if (!channel_.empty())
            return false;
        for (const Pump &p : pumps_) {
            if (!p.heap.empty())
                return false;
        }
        return true;
    }

  private:
    void
    sendSharded(NodeId src, NodeId dst, MsgSize size,
                EventQueue::Callback deliver)
    {
        const Cycles occ = occupancy(size);
        const std::uint32_t ss = shardOfNode_[src];
        EventQueue &sq = *shardQueues_[ss];
        ShardTally &ty = tallies_[ss];
        ++ty.messages;
        ty.traffic += occ;
        sq.snapNote(SnapKind::NetMsg);
        const Tick out_done = egress_[src].acquire(sq.now(), occ) + occ;
        const Tick wire = (src == dst) ? 0 : params_.oneWayLatency;
        ShardEntry e{sq.now(),
                     out_done + wire,
                     src,
                     dst,
                     static_cast<std::uint8_t>(size),
                     sendSeq_[src]++,
                     std::move(deliver)};
        const std::uint32_t ds = shardOfNode_[dst];
        if (ds == ss)
            enqueuePump(std::move(e), sq);
        else
            channel_.lane(ss, ds).push_back(std::move(e));
    }

    /** Later-than order for the pump min-heap (std::push_heap). */
    static bool
    pumpAfter(const ShardEntry &a, const ShardEntry &b)
    {
        if (a.arrival != b.arrival)
            return a.arrival > b.arrival;
        if (a.src != b.src)
            return a.src > b.src;
        return a.srcSeq > b.srcSeq;
    }

    /**
     * Queue @p e on its destination pump and schedule a pump event at
     * its arrival tick.  Called from the destination's own shard for
     * same-shard traffic, and from the coordinator (between windows)
     * for cross-shard traffic — by then the arrival is at or beyond
     * the next window start, so the booking order below is complete.
     */
    void
    enqueuePump(ShardEntry &&e, EventQueue &dq)
    {
        const Tick arrival = e.arrival;
        const NodeId dst = e.dst;
        auto &h = pumps_[dst].heap;
        h.push_back(std::move(e));
        std::push_heap(h.begin(), h.end(), pumpAfter);
        dq.schedule(arrival, [this, dst] { pumpNode(dst); });
    }

    /**
     * Book every entry that has arrived at @p dst's NIC, in (arrival,
     * source, sequence) order — deterministic for any shard count, and
     * FIFO per (src, dst) because egress serialization makes arrivals
     * strictly increasing per source.  Runs on @p dst's shard.
     */
    void
    pumpNode(NodeId dst)
    {
        auto &h = pumps_[dst].heap;
        EventQueue &dq = *shardQueues_[shardOfNode_[dst]];
        const Tick now = dq.now();
        while (!h.empty() && h.front().arrival <= now) {
            std::pop_heap(h.begin(), h.end(), pumpAfter);
            ShardEntry e = std::move(h.back());
            h.pop_back();
            const Cycles occ =
                occupancy(static_cast<MsgSize>(e.sizeIdx));
            const Tick at = ingress_[dst].acquire(e.arrival, occ) + occ;
            tallies_[shardOfNode_[dst]].hist[e.sizeIdx].sample(
                at - e.sendTick);
            dq.schedule(at, std::move(e.deliver));
        }
    }

    /** Per-shard counter/histogram staging (folded at barriers). */
    struct ShardTally {
        std::uint64_t messages = 0;
        std::uint64_t traffic = 0;
        std::vector<Histogram> hist{Histogram(latencyBounds()),
                                    Histogram(latencyBounds()),
                                    Histogram(latencyBounds())};
    };

    /** Arrival-ordered pending entries for one destination NIC. */
    struct Pump {
        std::vector<ShardEntry> heap;
    };

    Cycles
    occupancy(MsgSize size) const
    {
        switch (size) {
          case MsgSize::Control: return params_.controlOccupancy;
          case MsgSize::Data: return params_.dataOccupancy;
          case MsgSize::Page: return params_.pageOccupancy;
        }
        return params_.controlOccupancy;
    }

    ScopedHistogram &
    delivery(MsgSize size)
    {
        switch (size) {
          case MsgSize::Control: return deliveryControl_;
          case MsgSize::Data: return deliveryData_;
          case MsgSize::Page: return deliveryPage_;
        }
        return deliveryControl_;
    }

    EventQueue &eq_;
    Params params_;
    std::vector<FcfsResource> egress_;
    std::vector<FcfsResource> ingress_;
    Rng jitterRng_;
    std::uint32_t numNodes_;
    /** Last delivery tick per (src, dst); empty when jitter is off. */
    std::vector<Tick> lastDeliver_;

    // Sharded-mode state (unused, empty, in sequential mode).
    bool sharded_ = false;
    std::vector<EventQueue *> shardQueues_;
    std::vector<std::uint32_t> shardOfNode_;
    ShardChannel<ShardEntry> channel_;
    std::vector<std::uint64_t> sendSeq_;
    std::vector<Pump> pumps_;
    std::vector<ShardTally> tallies_;

    ScopedCounter messages_;
    ScopedCounter bytesProxy_;
    ScopedHistogram deliveryControl_{latencyBounds()};
    ScopedHistogram deliveryData_{latencyBounds()};
    ScopedHistogram deliveryPage_{latencyBounds()};
};

} // namespace prism

#endif // PRISM_NET_NETWORK_HH
