/**
 * @file
 * Interconnection network and network-interface model.
 *
 * A point-to-point fabric with a fixed one-way end-to-end latency
 * (120 processor cycles in the paper) plus per-NIC serialization:
 * each node's egress and ingress ports are FCFS resources, so bursts
 * queue.  Delivery is FIFO per (source, destination) pair, a property
 * the coherence protocol relies on (e.g. a writeback racing a fetch
 * nack from the same node).
 */

#ifndef PRISM_NET_NETWORK_HH
#define PRISM_NET_NETWORK_HH

#include <cstdint>
#include <vector>

#include "obs/metrics.hh"
#include "sim/event_queue.hh"
#include "sim/rng.hh"
#include "sim/types.hh"

namespace prism {

/** Size class of a network message, for occupancy accounting. */
enum class MsgSize : std::uint8_t {
    Control, //!< header-only protocol message
    Data,    //!< carries one cache line
    Page,    //!< carries page-level payload (page-in bulk transfers)
};

/** The interconnect shared by all nodes. */
class Network
{
  public:
    struct Params {
        Cycles oneWayLatency = 120; //!< end-to-end wire+switch latency
        Cycles controlOccupancy = 8;  //!< NIC occupancy, header message
        Cycles dataOccupancy = 16;    //!< NIC occupancy, line-carrying
        Cycles pageOccupancy = 128;   //!< NIC occupancy, page-carrying
        /**
         * Schedule fuzzing: maximum extra delivery delay per message,
         * drawn deterministically from jitterSeed.  Per-(src, dst)
         * FIFO order is preserved.  0 = bit-identical to the
         * unjittered network.
         */
        Cycles jitterMax = 0;
        std::uint64_t jitterSeed = 1;
    };

    Network(EventQueue &eq, std::uint32_t num_nodes, const Params &p)
        : eq_(eq), params_(p), egress_(num_nodes), ingress_(num_nodes),
          jitterRng_(p.jitterSeed), numNodes_(num_nodes),
          lastDeliver_(p.jitterMax ? num_nodes * num_nodes : 0)
    {
    }

    /**
     * Send a message; @p deliver runs at the destination's receive
     * time.  @p src == @p dst is legal (loopback, zero wire latency but
     * still NIC occupancy) and used by home nodes messaging themselves
     * through the uniform protocol path.
     */
    template <typename F>
    void
    send(NodeId src, NodeId dst, MsgSize size, F &&deliver)
    {
        const Cycles occ = occupancy(size);
        ++messages_;
        bytesProxy_ += occ;
        Tick out_done = egress_[src].acquire(eq_.now(), occ) + occ;
        Tick wire = (src == dst) ? 0 : params_.oneWayLatency;
        Tick in_start = ingress_[dst].acquire(out_done + wire, occ);
        Tick at = in_start + occ;
        if (params_.jitterMax) {
            at += jitterRng_.below(params_.jitterMax + 1);
            // Clamp to strictly increasing per (src, dst): the event
            // queue does not promise stable ordering of equal ticks,
            // and the protocol relies on pairwise FIFO delivery.
            Tick &last = lastDeliver_[src * numNodes_ + dst];
            if (at <= last)
                at = last + 1;
            last = at;
        }
        delivery(size).sample(at - eq_.now());
        eq_.schedule(at, std::forward<F>(deliver));
    }

    /** Latency a message of @p size would see with no contention. */
    Cycles
    uncontendedLatency(MsgSize size, bool loopback = false) const
    {
        return 2 * occupancy(size) + (loopback ? 0 : params_.oneWayLatency);
    }

    std::uint64_t messages() const { return messages_; }

    /** Sum of NIC occupancies booked; proxy for bytes moved. */
    std::uint64_t trafficProxy() const { return bytesProxy_; }

    const Params &params() const { return params_; }

    /**
     * Bind the fabric's counters and per-size-class delivery-latency
     * histograms into @p reg under component "net", machine-wide.
     */
    void
    registerMetrics(MetricRegistry &reg)
    {
        reg.bind(MetricLabels{"net", kMachineWide, "messages", "count"},
                 &messages_, "messages sent through the fabric");
        reg.bind(MetricLabels{"net", kMachineWide, "trafficProxy",
                              "cycles"},
                 &bytesProxy_,
                 "NIC occupancy booked; proxy for bytes moved");
        reg.bind(MetricLabels{"net", kMachineWide, "latency.control",
                              "cycles"},
                 &deliveryControl_, "send-to-delivery, control messages");
        reg.bind(MetricLabels{"net", kMachineWide, "latency.data",
                              "cycles"},
                 &deliveryData_, "send-to-delivery, line-data messages");
        reg.bind(MetricLabels{"net", kMachineWide, "latency.page",
                              "cycles"},
                 &deliveryPage_, "send-to-delivery, page-bulk messages");
    }

  private:
    Cycles
    occupancy(MsgSize size) const
    {
        switch (size) {
          case MsgSize::Control: return params_.controlOccupancy;
          case MsgSize::Data: return params_.dataOccupancy;
          case MsgSize::Page: return params_.pageOccupancy;
        }
        return params_.controlOccupancy;
    }

    ScopedHistogram &
    delivery(MsgSize size)
    {
        switch (size) {
          case MsgSize::Control: return deliveryControl_;
          case MsgSize::Data: return deliveryData_;
          case MsgSize::Page: return deliveryPage_;
        }
        return deliveryControl_;
    }

    EventQueue &eq_;
    Params params_;
    std::vector<FcfsResource> egress_;
    std::vector<FcfsResource> ingress_;
    Rng jitterRng_;
    std::uint32_t numNodes_;
    /** Last delivery tick per (src, dst); empty when jitter is off. */
    std::vector<Tick> lastDeliver_;
    ScopedCounter messages_;
    ScopedCounter bytesProxy_;
    ScopedHistogram deliveryControl_{latencyBounds()};
    ScopedHistogram deliveryData_{latencyBounds()};
    ScopedHistogram deliveryPage_{latencyBounds()};
};

} // namespace prism

#endif // PRISM_NET_NETWORK_HH
