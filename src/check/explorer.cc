#include "check/explorer.hh"

#include <cinttypes>
#include <cstdio>
#include <memory>

#include "core/machine.hh"
#include "os/kernel.hh"
#include "sim/rng.hh"
#include "workload/workload.hh"

namespace prism {

namespace {

/**
 * The random program of one processor.  All randomness is derived
 * from (seed, proc id); the budget is shared across processors so a
 * prefix of the global operation stream is identical for any larger
 * budget (no barriers, no budget-dependent branches).
 */
CoTask
fuzzProgram(Proc &p, FuzzOptions opt, std::uint64_t gsid,
            std::shared_ptr<std::int64_t> budget)
{
    Rng rng(opt.seed * 0x9E3779B97F4A7C15ULL + p.id() + 1);
    for (;;) {
        if (*budget <= 0)
            break;
        --*budget;
        const std::uint64_t pnum = rng.below(opt.pages);
        const std::uint64_t off = rng.below(kPageBytes / 8) * 8;
        const VAddr va = makeVAddr(kSharedVsid, pnum, off);
        const std::uint32_t dice = rng.below(100);
        if (opt.pageModeFlips && dice < 3) {
            // Page the page out at this node (kernel no-ops if it is
            // not mapped here or we are its home), possibly converting
            // it to LA-NUMA on the next fault.
            const GPage gp = (gsid << kPageNumBits) | pnum;
            co_await p.node().kernel().pageOutClient(gp, (dice & 1) != 0);
        } else if (dice < 45) {
            co_await p.write(va);
        } else {
            co_await p.read(va);
        }
        p.compute(rng.below(10));
    }
}

} // namespace

FuzzResult
runFuzzCase(const FuzzOptions &opt, std::uint32_t ops)
{
    MachineConfig cfg;
    cfg.numNodes = opt.numNodes;
    cfg.procsPerNode = opt.procsPerNode;
    cfg.policy = opt.policy;
    cfg.protocol = opt.protocol;
    cfg.clientFrameCap = opt.clientFrameCap;
    cfg.seed = opt.seed;
    cfg.oracleMode = OracleMode::Continuous;
    cfg.oracleFatal = false; // collect violations; the explorer shrinks
    cfg.netJitterMax = opt.jitterMax;
    cfg.jitterSeed = opt.seed ^ 0xD1B54A32D192ED03ULL;
    cfg.mutationSkipInvals = opt.mutationSkipInvals;

    Machine m(cfg);
    const std::uint64_t gsid =
        m.shmget(0xFE55, static_cast<std::uint64_t>(opt.pages) * kPageBytes);
    m.shmatAll(kSharedVsid, gsid);

    auto budget =
        std::make_shared<std::int64_t>(static_cast<std::int64_t>(ops));
    m.run([&](Proc &p) { return fuzzProgram(p, opt, gsid, budget); });

    ProtocolOracle *oracle = m.oracle();
    FuzzResult r;
    r.violationCount = oracle->violationCount();
    r.checksRun = oracle->checksRun();
    r.failed = r.violationCount != 0;
    r.violations = oracle->violations();
    if (!r.violations.empty())
        r.firstViolation = r.violations.front().what;
    return r;
}

ShrinkResult
shrinkFailure(const FuzzOptions &opt)
{
    ShrinkResult s;
    FuzzResult full = runFuzzCase(opt, opt.totalOps);
    if (!full.failed)
        return s;
    s.reproduced = true;
    s.firstViolation = full.firstViolation;

    // Binary search for the minimal failing budget.  Invariant:
    // `hi` fails; budgets below `lo` are untested-or-passing.
    std::uint32_t lo = 1;
    std::uint32_t hi = opt.totalOps;
    while (lo < hi) {
        const std::uint32_t mid = lo + (hi - lo) / 2;
        if (runFuzzCase(opt, mid).failed)
            hi = mid;
        else
            lo = mid + 1;
    }
    s.minOps = hi;
    s.replay = replayId(opt.seed, hi);
    return s;
}

std::string
replayId(std::uint64_t seed, std::uint32_t len)
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%" PRIu64 ":%u", seed, len);
    return buf;
}

bool
parseReplayId(const char *s, std::uint64_t *seed, std::uint32_t *len)
{
    if (!s || !seed || !len)
        return false;
    unsigned long long sd = 0;
    unsigned ln = 0;
    int consumed = 0;
    if (std::sscanf(s, "%llu:%u%n", &sd, &ln, &consumed) != 2 ||
        s[consumed] != '\0' || ln == 0) {
        return false;
    }
    *seed = sd;
    *len = ln;
    return true;
}

} // namespace prism
