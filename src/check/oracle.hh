/**
 * @file
 * In-flight protocol oracle.
 *
 * The quiescent-only invariant sweep in the property tests cannot see
 * transient protocol bugs (e.g. a window where two nodes hold
 * owner-class copies mid-intervention).  The oracle closes that gap
 * with two mechanisms, selected by MachineConfig::oracleMode:
 *
 *  1. A golden shadow-value model.  Data contents are not simulated,
 *     so the oracle numbers the committed writes of every global line:
 *     per line it tracks `seq` (count of committed writes = the
 *     current value), `memSeq` (the value home memory holds) and
 *     `view[node]` (the value each node's copy reflects).  Every
 *     protocol action that moves data or permission — grants from home
 *     memory, owner interventions, writebacks, upgrades, page-ins,
 *     migration flushes — updates the model and is checked against it;
 *     every processor read/write commit asserts the node sees the
 *     latest value.  A grant that would hand out stale memory, a lost
 *     writeback, or a read of a stale copy is reported the instant it
 *     happens, with the simulated tick and the message trace tail.
 *
 *  2. Continuous structural checks.  After each tracked event the
 *     affected line is re-verified in-flight: at most one node holds
 *     an owner-class copy (S-COMA Exclusive tag or a processor M/E
 *     copy), and if one does, no other node holds any valid copy
 *     (Transit tags are in-flight transactions and are exempt — their
 *     grants get poisoned or refreshed by the protocol).
 *
 * On Machine::run completion (after drain) the oracle additionally
 * performs the full quiescent sweep of invariants I1-I6 plus the
 * shadow-value consistency conditions.
 *
 * Violations either panic immediately (oracleFatal, the default — a
 * debugger lands on the broken state) or are recorded for inspection
 * (the random-schedule explorer shrinks failing runs this way).
 */

#ifndef PRISM_CHECK_ORACLE_HH
#define PRISM_CHECK_ORACLE_HH

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/config.hh"
#include "mem/addr.hh"
#include "sim/trace.hh"
#include "sim/types.hh"

namespace prism {

class Machine;

/** One recorded oracle violation. */
struct OracleViolation {
    Tick tick = 0;
    GPage gpage = kInvalidGPage;
    std::uint32_t lineIdx = 0;
    std::string what;
};

/** The protocol oracle of one Machine. */
class ProtocolOracle
{
  public:
    ProtocolOracle(Machine &m, OracleMode mode, bool fatal);

    OracleMode mode() const { return mode_; }
    bool continuous() const { return mode_ == OracleMode::Continuous; }

    // --- Event hooks (called by Proc / CoherenceController) -------------

    /**
     * A processor access committed (the only read/write commit points
     * are Proc::fastCore's hit paths).  Checks the node's copy is the
     * latest value; a write then becomes the new latest value.
     */
    void onAccessCommit(NodeId node, ProcId proc, FrameNum frame,
                        std::uint64_t paddr, bool write);

    /** Home granted a line out of its own memory (Uncached/Shared). */
    void onHomeGrantFromMemory(NodeId home, GPage gp, std::uint32_t li,
                               NodeId req);

    /** Home granted an Upgrade (requester keeps its own data). */
    void onHomeUpgradeGrant(NodeId home, GPage gp, std::uint32_t li,
                            NodeId req);

    /** Home served a request from its own (owner) copy (2-party). */
    void onHomeServeSelfOwned(NodeId home, GPage gp, std::uint32_t li,
                              NodeId req, bool for_write);

    /** A remote owner served a Fetch with DataFwd (3-party). */
    void onOwnerServe(NodeId owner, GPage gp, std::uint32_t li,
                      NodeId req, bool for_write);

    /** Home accepted a writeback / replacement hint from the owner. */
    void onWritebackAccepted(NodeId home, GPage gp, std::uint32_t li,
                             NodeId owner, bool dirty, bool keep_shared);

    /** A client (or the home itself) invalidated its copy of a line. */
    void onInvalidate(NodeId node, GPage gp, std::uint32_t li);

    /** Home mapped @p gp in (page-in): memory must hold the latest. */
    void onHomeInstall(NodeId home, GPage gp);

    /**
     * A migrating home flushed its own owner copy of a line into the
     * page payload (the line leaves as Uncached-with-current-memory).
     */
    void onMigrateFlush(NodeId node, GPage gp, std::uint32_t li);

    /** Record a network message into the violation-dump trace ring. */
    void
    traceMsg(Tick t, NodeId src, NodeId dst, std::uint16_t type,
             GPage gp, std::uint32_t li)
    {
        trace_.push(TraceEvent{t, gp, li,
                               type,
                               static_cast<std::uint16_t>(src),
                               static_cast<std::uint16_t>(dst)});
    }

    // --- Quiescent sweep -------------------------------------------------

    /**
     * Full I1-I6 invariant sweep plus shadow-value consistency over
     * the (assumed quiescent) machine.  Called by Machine::run after
     * drain; tests may also call it directly.
     */
    void sweepQuiescent();

    // --- Results ----------------------------------------------------------

    const std::vector<OracleViolation> &violations() const
    {
        return violations_;
    }

    /** Total violations seen (recording is capped; the count is not). */
    std::uint64_t violationCount() const { return violationCount_; }

    /** Number of per-line in-flight checks executed. */
    std::uint64_t checksRun() const { return checksRun_; }

    /**
     * Shadow value the most recent committed read of processor @p p
     * observed (litmus-test "register" readout).  Values are the
     * per-line committed-write counts, starting at 0.
     */
    std::uint64_t
    lastReadValue(ProcId p) const
    {
        return lastRead_[p];
    }

  private:
    /** Shadow state of one global line. */
    struct LineShadow {
        std::uint64_t seq = 0;    //!< committed writes == latest value
        std::uint64_t memSeq = 0; //!< value home memory holds
        std::vector<std::uint64_t> view; //!< value each node's copy reflects
    };

    LineShadow &shadow(GLine gl);

    /** In-flight structural re-check of one line (continuous mode). */
    void checkLine(GPage gp, std::uint32_t li);

    void report(GPage gp, std::uint32_t li, std::string what);
    void dumpTrace() const;

    Machine &m_;
    OracleMode mode_;
    bool fatal_;
    LineGeometry geo_;
    std::uint32_t numNodes_;

    std::unordered_map<GLine, LineShadow> lines_;
    std::vector<std::uint64_t> lastRead_;

    TraceRing trace_;
    std::vector<OracleViolation> violations_;
    std::uint64_t violationCount_ = 0;
    std::uint64_t checksRun_ = 0;

    /** Cap on recorded (not counted) violations. */
    static constexpr std::size_t kMaxRecorded = 64;
};

} // namespace prism

#endif // PRISM_CHECK_ORACLE_HH
