#include "check/oracle.hh"

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <map>

#include "coherence/msg.hh"
#include "core/machine.hh"
#include "sim/logging.hh"

namespace prism {

namespace {

std::string
fmt(const char *f, ...)
{
    char buf[256];
    va_list ap;
    va_start(ap, f);
    std::vsnprintf(buf, sizeof(buf), f, ap);
    va_end(ap);
    return buf;
}

} // namespace

ProtocolOracle::ProtocolOracle(Machine &m, OracleMode mode, bool fatal)
    : m_(m), mode_(mode), fatal_(fatal), geo_(m.config().lineBytes),
      numNodes_(m.config().numNodes),
      lastRead_(m.config().numProcs(), 0)
{
}

ProtocolOracle::LineShadow &
ProtocolOracle::shadow(GLine gl)
{
    LineShadow &s = lines_[gl];
    if (s.view.empty())
        s.view.resize(numNodes_, 0);
    return s;
}

void
ProtocolOracle::report(GPage gp, std::uint32_t li, std::string what)
{
    const Tick t = m_.eventQueue().now();
    ++violationCount_;
    if (violations_.size() < kMaxRecorded) {
        warn("oracle: %s (gpage=%llx li=%u t=%llu)", what.c_str(),
             static_cast<unsigned long long>(gp), li,
             static_cast<unsigned long long>(t));
    }
    if (violationCount_ == 1)
        dumpTrace();
    if (fatal_)
        panic("protocol oracle violation: %s", what.c_str());
    if (violations_.size() < kMaxRecorded)
        violations_.push_back(OracleViolation{t, gp, li, std::move(what)});
}

void
ProtocolOracle::dumpTrace() const
{
    const std::size_t n = std::min<std::size_t>(trace_.size(), 32);
    if (n == 0)
        return;
    std::fprintf(stderr, "oracle: last %zu protocol messages "
                 "(oldest first):\n", n);
    for (std::size_t i = n; i-- > 0;) {
        const TraceEvent &e = trace_.recent(i);
        std::fprintf(stderr, "  t=%-10llu n%u -> n%u  %-11s gpage=%llx "
                     "li=%u\n",
                     static_cast<unsigned long long>(e.tick), e.src, e.dst,
                     msgTypeName(static_cast<MsgType>(e.kind)),
                     static_cast<unsigned long long>(e.gpage), e.lineIdx);
    }
}

// ---------------------------------------------------------------------
// Event hooks
// ---------------------------------------------------------------------

void
ProtocolOracle::onAccessCommit(NodeId node, ProcId proc, FrameNum frame,
                               std::uint64_t paddr, bool write)
{
    const PitEntry *e = m_.node(node).controller().pit().entry(frame);
    if (!e || e->gpage == kInvalidGPage)
        return; // private memory: no protocol state to check
    const GPage gp = e->gpage;
    const std::uint32_t li = geo_.lineIndex(paddr);
    LineShadow &s = shadow(geo_.lineOf(gp, li));
    if (continuous() && s.view[node] != s.seq) {
        report(gp, li,
               fmt("node %u %s commit observes value %llu, latest is %llu",
                   node, write ? "write" : "read",
                   static_cast<unsigned long long>(s.view[node]),
                   static_cast<unsigned long long>(s.seq)));
    }
    if (write) {
        ++s.seq;
        s.view[node] = s.seq;
    } else {
        lastRead_[proc] = s.view[node];
    }
    if (continuous())
        checkLine(gp, li);
}

void
ProtocolOracle::onHomeGrantFromMemory(NodeId home, GPage gp,
                                      std::uint32_t li, NodeId req)
{
    LineShadow &s = shadow(geo_.lineOf(gp, li));
    if (continuous() && s.memSeq != s.seq) {
        report(gp, li,
               fmt("home %u grants stale memory (mem=%llu latest=%llu) "
                   "to node %u",
                   home, static_cast<unsigned long long>(s.memSeq),
                   static_cast<unsigned long long>(s.seq), req));
    }
    s.view[req] = s.memSeq;
}

void
ProtocolOracle::onHomeUpgradeGrant(NodeId home, GPage gp, std::uint32_t li,
                                   NodeId req)
{
    LineShadow &s = shadow(geo_.lineOf(gp, li));
    if (continuous() && s.view[req] != s.seq) {
        report(gp, li,
               fmt("home %u upgrades node %u whose copy is stale "
                   "(view=%llu latest=%llu)",
                   home, req, static_cast<unsigned long long>(s.view[req]),
                   static_cast<unsigned long long>(s.seq)));
    }
}

void
ProtocolOracle::onHomeServeSelfOwned(NodeId home, GPage gp,
                                     std::uint32_t li, NodeId req,
                                     bool for_write)
{
    (void)for_write;
    LineShadow &s = shadow(geo_.lineOf(gp, li));
    if (continuous() && s.view[home] != s.seq) {
        report(gp, li,
               fmt("home %u serves from its own copy which is stale "
                   "(view=%llu latest=%llu)",
                   home, static_cast<unsigned long long>(s.view[home]),
                   static_cast<unsigned long long>(s.seq)));
    }
    // The home frame is the page's memory: the served value is what
    // memory now holds, and the requester's copy reflects it.
    s.memSeq = s.view[home];
    s.view[req] = s.view[home];
}

void
ProtocolOracle::onOwnerServe(NodeId owner, GPage gp, std::uint32_t li,
                             NodeId req, bool for_write)
{
    LineShadow &s = shadow(geo_.lineOf(gp, li));
    if (continuous() && s.view[owner] != s.seq) {
        report(gp, li,
               fmt("owner %u forwards a stale copy (view=%llu latest=%llu) "
                   "to node %u",
                   owner, static_cast<unsigned long long>(s.view[owner]),
                   static_cast<unsigned long long>(s.seq), req));
    }
    s.view[req] = s.view[owner];
    if (!for_write) {
        // Read downgrade: the XferNotice carries the data home.
        s.memSeq = s.view[owner];
    }
}

void
ProtocolOracle::onWritebackAccepted(NodeId home, GPage gp, std::uint32_t li,
                                    NodeId owner, bool dirty,
                                    bool keep_shared)
{
    (void)keep_shared;
    LineShadow &s = shadow(geo_.lineOf(gp, li));
    if (continuous() && s.view[owner] != s.seq) {
        report(gp, li,
               fmt("home %u accepts a writeback from owner %u whose copy "
                   "is stale (view=%llu latest=%llu)",
                   home, owner,
                   static_cast<unsigned long long>(s.view[owner]),
                   static_cast<unsigned long long>(s.seq)));
    }
    if (dirty) {
        s.memSeq = s.view[owner];
    } else if (continuous() && s.memSeq != s.view[owner]) {
        // Clean replacement: memory must already hold the owner's value,
        // otherwise the line's last writes are lost.
        report(gp, li,
               fmt("clean replacement by owner %u loses data "
                   "(mem=%llu owner=%llu)",
                   owner, static_cast<unsigned long long>(s.memSeq),
                   static_cast<unsigned long long>(s.view[owner])));
    }
}

void
ProtocolOracle::onInvalidate(NodeId node, GPage gp, std::uint32_t li)
{
    (void)node;
    if (continuous())
        checkLine(gp, li);
}

void
ProtocolOracle::onHomeInstall(NodeId home, GPage gp)
{
    for (std::uint32_t li = 0; li < geo_.linesPerPage(); ++li) {
        LineShadow &s = shadow(geo_.lineOf(gp, li));
        if (continuous() && s.memSeq != s.seq) {
            report(gp, li,
                   fmt("home %u maps a page in whose memory is stale "
                       "(mem=%llu latest=%llu)",
                       home, static_cast<unsigned long long>(s.memSeq),
                       static_cast<unsigned long long>(s.seq)));
        }
        s.view[home] = s.memSeq;
    }
}

void
ProtocolOracle::onMigrateFlush(NodeId node, GPage gp, std::uint32_t li)
{
    LineShadow &s = shadow(geo_.lineOf(gp, li));
    if (continuous() && s.view[node] != s.seq) {
        report(gp, li,
               fmt("migrating home %u flushes a stale owner copy "
                   "(view=%llu latest=%llu)",
                   node, static_cast<unsigned long long>(s.view[node]),
                   static_cast<unsigned long long>(s.seq)));
    }
    // The flushed copy becomes the (new) home memory contents.
    s.memSeq = s.view[node];
}

// ---------------------------------------------------------------------
// Continuous structural check
// ---------------------------------------------------------------------

void
ProtocolOracle::checkLine(GPage gp, std::uint32_t li)
{
    ++checksRun_;
    NodeId owner_node = kInvalidNode;
    std::uint32_t owner_count = 0;
    SharerSet valid;
    for (NodeId n = 0; n < numNodes_; ++n) {
        Node &node = m_.node(n);
        const Pit &pit = node.controller().pit();
        const FrameNum f = pit.frameOf(gp);
        if (f == kInvalidFrame)
            continue;
        const PitEntry *e = pit.entry(f);
        const FgTag tag = e->tags ? e->tags->get(li) : FgTag::Invalid;
        const std::uint64_t paddr =
            (f << kPageShift) |
            (static_cast<std::uint64_t>(li) << geo_.lineShift());
        Mesi strongest = Mesi::Invalid;
        for (std::uint32_t p = 0; p < node.numProcs(); ++p) {
            Proc &pr = node.proc(p);
            const Mesi s1 = pr.l1().lookup(paddr);
            const Mesi s2 = pr.l2().lookup(paddr);
            strongest = strongerLine(strongest, strongerLine(s1, s2));
        }
        // Owned counts: the MOESI owner keeps node-level ownership
        // while peer/remote Shared copies read from it.  Forward does
        // not — it is a clean designated-supplier copy, valid but not
        // owning.
        const bool owner_class =
            tag == FgTag::Exclusive || ownerClass(strongest);
        // Transit tags are in-flight transactions: their eventual
        // grants are poisoned or refreshed by the protocol, so they
        // are neither owner-class nor a valid copy here.
        const bool valid_copy = tag == FgTag::Shared ||
                                tag == FgTag::Exclusive ||
                                strongest != Mesi::Invalid;
        if (owner_class) {
            ++owner_count;
            owner_node = n;
        }
        if (valid_copy)
            valid.add(n);
    }
    SharerSet others = valid;
    if (owner_node != kInvalidNode)
        others.remove(owner_node);
    if (owner_count > 1) {
        report(gp, li,
               fmt("%u nodes hold owner-class copies simultaneously "
                   "(valid mask %s)",
                   owner_count, valid.toString().c_str()));
    } else if (owner_count == 1 && !others.empty()) {
        report(gp, li,
               fmt("owner-class copy at node %u coexists with valid "
                   "copies elsewhere (valid mask %s)",
                   owner_node, valid.toString().c_str()));
    }
}

// ---------------------------------------------------------------------
// Quiescent sweep (invariants I1-I6 + value consistency)
// ---------------------------------------------------------------------

void
ProtocolOracle::sweepQuiescent()
{
    const std::uint32_t nodes = numNodes_;

    // I1: every directory page has exactly one dynamic home.
    std::map<GPage, NodeId> dir_home;
    for (NodeId n = 0; n < nodes; ++n) {
        auto &ctrl = m_.node(n).controller();
        for (FrameNum f : ctrl.pit().globalFrames()) {
            const PitEntry *e = ctrl.pit().entry(f);
            if (!ctrl.directory().hasPage(e->gpage))
                continue;
            auto [it, fresh] = dir_home.emplace(e->gpage, n);
            if (!fresh && it->second != n) {
                report(e->gpage, 0,
                       fmt("two dynamic homes (nodes %u and %u)",
                           it->second, n));
            }
        }
    }

    // Per-node views: mapped pages and processor-cache contents
    // translated to global lines.
    struct NodeView {
        std::map<GPage, const PitEntry *> mapped;
        std::map<GLine, Mesi> cached;
    };
    std::vector<NodeView> views(nodes);
    for (NodeId n = 0; n < nodes; ++n) {
        Node &node = m_.node(n);
        const Pit &pit = node.controller().pit();
        std::map<FrameNum, GPage> frame2page;
        for (FrameNum f : pit.globalFrames()) {
            const PitEntry *e = pit.entry(f);
            views[n].mapped[e->gpage] = e;
            frame2page[f] = e->gpage;
        }
        for (std::uint32_t pi = 0; pi < node.numProcs(); ++pi) {
            Proc &proc = node.proc(pi);
            // I6: L1 contents must be a subset of L2 (inclusion).
            for (auto [addr, s1] : proc.l1().snapshot()) {
                (void)s1;
                if (proc.l2().lookup(addr) == Mesi::Invalid) {
                    report(kInvalidGPage, 0,
                           fmt("inclusion violated: L1 line %llx of "
                               "proc %u not in L2",
                               static_cast<unsigned long long>(addr),
                               proc.id()));
                }
            }
            for (auto [addr, s2] : proc.l2().snapshot()) {
                const Mesi s1 = proc.l1().lookup(addr);
                const Mesi merged = strongerLine(s1, s2);
                auto it = frame2page.find(addr >> kPageShift);
                if (it == frame2page.end())
                    continue; // private line
                const GLine gl =
                    geo_.lineOf(it->second, geo_.lineIndex(addr));
                Mesi &cur = views[n].cached[gl];
                cur = strongerLine(cur, merged);
            }
        }
    }

    // Per-line checks against the directory (I2-I5) plus value checks.
    for (auto [gp, home] : dir_home) {
        auto pg = m_.node(home).controller().directory().page(gp);
        if (!pg)
            continue;
        for (std::uint32_t li = 0; li < pg.size(); ++li) {
            const DirEntry d = pg.line(li).toEntry();
            const GLine gl = geo_.lineOf(gp, li);
            auto ls = lines_.find(gl);
            const LineShadow *sh =
                ls == lines_.end() ? nullptr : &ls->second;
            for (NodeId n = 0; n < nodes; ++n) {
                auto it = views[n].mapped.find(gp);
                FgTag tag = FgTag::Invalid;
                if (it != views[n].mapped.end() && it->second->tags)
                    tag = it->second->tags->get(li);
                if (tag == FgTag::Transit)
                    report(gp, li,
                           fmt("Transit tag at node %u in quiescent "
                               "state", n));
                Mesi cached = Mesi::Invalid;
                auto cit = views[n].cached.find(gl);
                if (cit != views[n].cached.end())
                    cached = cit->second;

                switch (d.state) {
                  case DirState::Owned:
                    // I2: only the owner holds copies.
                    if (n != d.owner) {
                        if (tag != FgTag::Invalid)
                            report(gp, li,
                                   fmt("valid tag %s at non-owner node "
                                       "%u (owner %u)",
                                       fgTagName(tag), n, d.owner));
                        if (cached != Mesi::Invalid)
                            report(gp, li,
                                   fmt("cached copy at non-owner node "
                                       "%u (owner %u)", n, d.owner));
                    }
                    break;
                  case DirState::Shared:
                    // I3: no exclusive copies; tags imply sharer bits.
                    if (tag == FgTag::Exclusive)
                        report(gp, li,
                               fmt("Exclusive tag at node %u under "
                                   "Shared dir state", n));
                    if (tag == FgTag::Shared && !d.isSharer(n))
                        report(gp, li,
                               fmt("Shared tag at non-sharer node %u",
                                   n));
                    if (ownerClass(cached))
                        report(gp, li,
                               fmt("%s proc copy at node %u under "
                                   "Shared dir state",
                                   mesiName(cached), n));
                    // Value: a sharer's copy must be the latest.
                    if (sh && tag != FgTag::Invalid &&
                        sh->view[n] != sh->seq)
                        report(gp, li,
                               fmt("sharer %u holds stale value "
                                   "(view=%llu latest=%llu)", n,
                                   static_cast<unsigned long long>(
                                       sh->view[n]),
                                   static_cast<unsigned long long>(
                                       sh->seq)));
                    break;
                  case DirState::Uncached:
                    // I4: no copies anywhere.
                    if (tag != FgTag::Invalid)
                        report(gp, li,
                               fmt("valid tag %s at node %u under "
                                   "Uncached dir state",
                                   fgTagName(tag), n));
                    if (cached != Mesi::Invalid)
                        report(gp, li,
                               fmt("cached copy at node %u under "
                                   "Uncached dir state", n));
                    break;
                }
                // I5: an owner-class (M/E/O) processor copy implies
                // node ownership.
                if (ownerClass(cached) &&
                    !(d.state == DirState::Owned && d.owner == n)) {
                    report(gp, li,
                           fmt("%s proc copy at node %u without node "
                               "ownership", mesiName(cached), n));
                }
            }
            if (!sh)
                continue;
            // Value invariants against the directory state.
            if (d.state == DirState::Owned) {
                if (sh->view[d.owner] != sh->seq)
                    report(gp, li,
                           fmt("owner %u's copy is stale at quiesce "
                               "(view=%llu latest=%llu)", d.owner,
                               static_cast<unsigned long long>(
                                   sh->view[d.owner]),
                               static_cast<unsigned long long>(sh->seq)));
            } else if (sh->memSeq != sh->seq) {
                // Uncached/Shared: home memory holds the latest value.
                report(gp, li,
                       fmt("home memory stale at quiesce under %s "
                           "(mem=%llu latest=%llu)",
                           d.state == DirState::Shared ? "Shared"
                                                       : "Uncached",
                           static_cast<unsigned long long>(sh->memSeq),
                           static_cast<unsigned long long>(sh->seq)));
            }
        }
    }
}

} // namespace prism
