/**
 * @file
 * Parallel experiment runner.
 *
 * The paper's evaluation is ~50 independent simulations (8 apps x 6
 * policies plus sensitivity sweeps).  Each simulation is a fully
 * deterministic, single-threaded Machine, so the sweep is
 * embarrassingly parallel — except that an application's SCOMA
 * calibration run must finish before its capped runs can be
 * configured.  TaskPool is a small thread pool whose tasks may submit
 * further tasks, which expresses that dependency naturally: the
 * calibration task enqueues the dependent per-policy runs when it
 * completes.  Results land in preallocated slots, so the output order
 * is deterministic regardless of completion order.
 *
 * Worker count: `--jobs N` > `PRISM_JOBS` > std::thread::hardware_concurrency().
 */

#ifndef PRISM_WORKLOAD_PARALLEL_RUNNER_HH
#define PRISM_WORKLOAD_PARALLEL_RUNNER_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "workload/experiment.hh"

namespace prism {

/**
 * Worker count from the environment: PRISM_JOBS if set (>= 1,
 * fatal otherwise), else the hardware thread count, else 1.
 */
unsigned defaultJobs();

/**
 * Worker count from the command line: `--jobs N` or `--jobs=N`
 * overrides defaultJobs().  Unrelated arguments are ignored.
 */
unsigned jobsFromArgs(int argc, char **argv);

/**
 * A fixed set of worker threads draining one task queue.  Tasks may
 * submit() further tasks (dependency chaining); wait() returns once
 * every task — including ones submitted mid-flight — has finished.
 */
class TaskPool
{
  public:
    /** Spawn @p jobs workers (at least one). */
    explicit TaskPool(unsigned jobs);

    /** Drains remaining tasks, then joins the workers. */
    ~TaskPool();

    TaskPool(const TaskPool &) = delete;
    TaskPool &operator=(const TaskPool &) = delete;

    /** Enqueue @p fn; may be called from inside a running task. */
    void submit(std::function<void()> fn);

    /** Block until all submitted tasks (incl. nested) completed. */
    void wait();

    /** Number of worker threads. */
    unsigned jobs() const { return static_cast<unsigned>(workers_.size()); }

  private:
    void workerLoop();

    std::mutex mu_;
    std::condition_variable work_cv_;
    std::condition_variable idle_cv_;
    std::deque<std::function<void()>> queue_;
    std::vector<std::thread> workers_;
    std::size_t outstanding_ = 0;
    bool stop_ = false;
};

/**
 * Run every (app, policy) combination on @p spec.jobs workers,
 * honoring the SCOMA-calibration dependency per app.  Equivalent to
 * calling runPolicySweep(spec, app) for each app and concatenating:
 * results are in sweep order (apps outer, policies inner) and —
 * because each simulation is deterministic and isolated —
 * bit-identical to the sequential runner's for any worker count.
 *
 * With several apps, spec.traceFile is resolved per app through
 * tracePathFor() for the record/replay frontends.
 */
std::vector<ExperimentResult>
runSweepsParallel(const RunSpec &spec,
                  const std::vector<AppSpec> &apps);

} // namespace prism

#endif // PRISM_WORKLOAD_PARALLEL_RUNNER_HH
