#include "workload/apps.hh"

#include "sim/logging.hh"
#include "workload/barnes.hh"
#include "workload/fft.hh"
#include "workload/kvstore.hh"
#include "workload/lu.hh"
#include "workload/mp3d.hh"
#include "workload/ocean.hh"
#include "workload/radix.hh"
#include "workload/water.hh"

namespace prism {

namespace {

template <typename W, typename P>
AppSpec
spec(std::string name, P params)
{
    return AppSpec{std::move(name),
                   [params] { return std::make_unique<W>(params); }};
}

} // namespace

std::vector<AppSpec>
standardApps(AppScale scale)
{
    BarnesWorkload::Params barnes;
    FftWorkload::Params fft;
    LuWorkload::Params lu;
    Mp3dWorkload::Params mp3d;
    OceanWorkload::Params ocean;
    RadixWorkload::Params radix;
    WaterParams nsq;
    WaterParams spa;

    switch (scale) {
      case AppScale::Paper:
        // Table 2 data sets (LU at 384^2 to bound simulation time;
        // the block/cache ratios that drive the results are kept).
        barnes = {8192, 4, 1.0, 7};
        fft = {16};
        lu = {384, 16};
        mp3d = {20000, 5, 16, 11};
        ocean = {258, 4, 2};
        radix = {1u << 20, 1024, 30, 42};
        nsq = {512, 3, 0.45, 23, 400};
        spa = {512, 3, 0.25, 23, 1500};
        break;
      case AppScale::Small:
        barnes = {1024, 2, 1.0, 7};
        fft = {12};
        lu = {128, 16};
        mp3d = {4000, 2, 12, 11};
        ocean = {66, 2, 1};
        radix = {1u << 16, 1024, 30, 42};
        nsq = {216, 2, 0.45, 23, 400};
        spa = {216, 2, 0.25, 23, 1500};
        break;
      case AppScale::Tiny:
        barnes = {256, 1, 1.2, 7};
        fft = {8};
        lu = {64, 16};
        mp3d = {500, 1, 8, 11};
        ocean = {34, 1, 1};
        radix = {1u << 12, 256, 24, 42};
        nsq = {64, 1, 0.45, 23, 400};
        spa = {64, 1, 0.3, 23, 1500};
        break;
    }

    std::vector<AppSpec> out;
    out.push_back(spec<BarnesWorkload>("Barnes", barnes));
    out.push_back(spec<FftWorkload>("FFT", fft));
    out.push_back(spec<LuWorkload>("LU", lu));
    out.push_back(spec<Mp3dWorkload>("MP3D", mp3d));
    out.push_back(spec<OceanWorkload>("Ocean", ocean));
    out.push_back(spec<RadixWorkload>("Radix", radix));
    out.push_back(spec<WaterNsqWorkload>("Water-Nsq", nsq));
    out.push_back(spec<WaterSpaWorkload>("Water-Spa", spa));
    out.push_back(spec<KvStoreWorkload>("KV", kvParamsFor(scale)));
    return out;
}

std::unique_ptr<Workload>
makeApp(const std::string &name, AppScale scale)
{
    for (auto &s : standardApps(scale)) {
        if (s.name == name)
            return s.make();
    }
    fatal("unknown application '%s'", name.c_str());
}

} // namespace prism
