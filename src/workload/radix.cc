#include "workload/radix.hh"

namespace prism {

RadixWorkload::RadixWorkload(const Params &p) : params_(p)
{
    const std::uint32_t lg = LineGeometry::log2i(params_.radix);
    passes_ = (params_.keyBits + lg - 1) / lg;
}

std::string
RadixWorkload::sizeDesc() const
{
    return std::to_string(params_.keys) + " integer keys, radix " +
           std::to_string(params_.radix);
}

void
RadixWorkload::setup(Machine &m)
{
    const std::uint64_t kb = std::uint64_t{params_.keys} * 8;
    const std::uint64_t hb =
        std::uint64_t{m.numProcs()} * params_.radix * 8;
    GlobalArena arena(m, /*key=*/0x5AD, 2 * kb + hb + 8 * kPageBytes);
    keysA_ = SimArray{arena.allocPages(kb), 8};
    keysB_ = SimArray{arena.allocPages(kb), 8};
    globalHist_ = SimArray{arena.allocPages(hb), 8};

    ranks_.assign(std::uint64_t{m.numProcs()} * params_.radix, 0);

    Rng rng(params_.seed);
    hostA_.resize(params_.keys);
    hostB_.resize(params_.keys);
    for (auto &k : hostA_)
        k = static_cast<std::uint32_t>(
            rng.below(1ULL << params_.keyBits));
}

CoTask
RadixWorkload::body(Proc &p, std::uint32_t tid, std::uint32_t nt)
{
    const std::uint32_t n = params_.keys;
    const std::uint32_t radix = params_.radix;
    const std::uint32_t lg = LineGeometry::log2i(radix);
    const std::uint32_t per = n / nt;
    const std::uint32_t k0 = tid * per;
    const std::uint32_t k1 = (tid + 1 == nt) ? n : k0 + per;

    PrivArena priv(p.id());
    SimArray local_hist{priv.alloc(std::uint64_t{radix} * 8), 8};

    // Parallel init: write the owned slice of the key array.
    for (std::uint32_t i = k0; i < k1; ++i) {
        co_await p.write(keysA_.at(i));
        p.compute(1);
    }

    co_await p.barrier(0);
    if (tid == 0)
        co_await p.beginParallel();
    co_await p.barrier(0);

    std::vector<std::uint32_t> *src = &hostA_;
    std::vector<std::uint32_t> *dst = &hostB_;
    SimArray src_arr = keysA_;
    SimArray dst_arr = keysB_;

    for (std::uint32_t pass = 0; pass < passes_; ++pass) {
        const std::uint32_t shift = pass * lg;

        // 1. Local histogram (private accumulation).
        std::vector<std::uint32_t> hist(radix, 0);
        for (std::uint32_t i = k0; i < k1; ++i) {
            co_await p.read(src_arr.at(i));
            const std::uint32_t d = ((*src)[i] >> shift) & (radix - 1);
            ++hist[d];
            co_await p.write(local_hist.at(d));
            p.compute(2);
        }
        // Publish into the shared histogram.
        for (std::uint32_t d = 0; d < radix; ++d) {
            co_await p.read(local_hist.at(d));
            co_await p.write(
                globalHist_.at(std::uint64_t{tid} * radix + d));
            ranks_[std::uint64_t{tid} * radix + d] = hist[d];
        }
        co_await p.barrier(0);

        // 2. Prefix (tid 0 walks the shared histogram).
        if (tid == 0) {
            std::uint64_t sum = 0;
            for (std::uint32_t d = 0; d < radix; ++d) {
                for (std::uint32_t t = 0; t < nt; ++t) {
                    co_await p.read(
                        globalHist_.at(std::uint64_t{t} * radix + d));
                    const std::uint64_t c =
                        ranks_[std::uint64_t{t} * radix + d];
                    ranks_[std::uint64_t{t} * radix + d] = sum;
                    sum += c;
                    co_await p.write(
                        globalHist_.at(std::uint64_t{t} * radix + d));
                    p.compute(2);
                }
            }
        }
        co_await p.barrier(0);

        // 3. Permutation: all-to-all scattered writes.
        for (std::uint32_t d = 0; d < radix; ++d)
            co_await p.read(globalHist_.at(std::uint64_t{tid} * radix + d));
        for (std::uint32_t i = k0; i < k1; ++i) {
            co_await p.read(src_arr.at(i));
            const std::uint32_t key = (*src)[i];
            const std::uint32_t d = (key >> shift) & (radix - 1);
            const std::uint64_t pos =
                ranks_[std::uint64_t{tid} * radix + d]++;
            (*dst)[pos] = key;
            co_await p.write(dst_arr.at(pos));
            p.compute(2);
        }
        co_await p.barrier(0);

        std::swap(src, dst);
        std::swap(src_arr, dst_arr);
    }

    if (tid == 0)
        co_await p.endParallel();
}

} // namespace prism
