/**
 * @file
 * Experiment runner: the paper's Section 4 methodology.
 *
 * For each application we first run the SCOMA configuration (infinite
 * page cache) to calibrate per-node page-cache capacities; SCOMA-70
 * and the adaptive policies then cap each node's client S-COMA frames
 * at 70% of the maximum the SCOMA run allocated on that node.
 */

#ifndef PRISM_WORKLOAD_EXPERIMENT_HH
#define PRISM_WORKLOAD_EXPERIMENT_HH

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/config.hh"
#include "core/metrics.hh"
#include "frontend/frontend.hh"
#include "obs/report.hh"
#include "workload/apps.hh"

namespace prism {

/** One (application, policy) measurement. */
struct ExperimentResult {
    std::string app;
    PolicyKind policy{};
    RunMetrics metrics;
    /** Full structured run report (counters, latency quantiles). */
    RunReport report;
};

/**
 * One experiment request: everything runOnce / runPolicySweep /
 * runSweepsParallel need, in a single designated-initializer-friendly
 * struct.
 *
 *   RunSpec spec{.machine = base, .jobs = opts.jobs,
 *                .frontend = opts.frontend};
 *
 * `machine` carries the policy/protocol/seed for single runs and the
 * base configuration for sweeps (sweeps derive the per-policy configs
 * themselves).  An empty `policies` means paperPolicies().  The
 * frontend selects where reference streams come from (exec | record |
 * replay, docs/TRACE.md): record captures the calibration run's
 * stream to `traceFile`; replay loads `traceFile` instead of
 * executing the workload at all.
 */
struct RunSpec {
    MachineConfig machine;
    /** Sweep dimension; empty selects the paper's six policies. */
    std::vector<PolicyKind> policies;
    /** TaskPool workers for runSweepsParallel. */
    unsigned jobs = 1;
    /** The paper's SCOMA-70 page-cache cap fraction. */
    double capFraction = 0.70;
    FrontendKind frontend = FrontendKind::Exec;
    /** .ptrace path: written by record, read by replay.  Sweeps over
     *  several apps treat it as a per-app pattern (tracePathFor). */
    std::string traceFile;
};

/**
 * Run @p app once under @p spec.machine.  When @p report is non-null
 * it receives the structured run report, captured while the machine is
 * still alive.
 */
RunMetrics runOnce(const RunSpec &spec, const AppSpec &app,
                   RunReport *report = nullptr);

/** Config for the SCOMA calibration run (unbounded page cache). */
MachineConfig calibrationConfig(const MachineConfig &base);

/**
 * Per-node SCOMA-70 caps from a calibration run: @p cap_fraction of
 * the peak client S-COMA frames SCOMA allocated on each node (at
 * least one frame).
 */
std::vector<std::uint64_t> scoma70Caps(const RunMetrics &scoma,
                                       double cap_fraction);

/** Config for policy @p pk given @p base and calibrated @p caps. */
MachineConfig policyConfig(const MachineConfig &base, PolicyKind pk,
                           const std::vector<std::uint64_t> &caps);

/**
 * Run @p app under every policy in @p spec.policies, calibrating the
 * SCOMA-70 caps from a SCOMA run first (reused as the SCOMA result if
 * requested).  @p spec.machine supplies everything except policy and
 * caps.  With frontend=record the calibration run's stream is written
 * to spec.traceFile; with frontend=replay every run re-issues the
 * stream loaded from spec.traceFile instead of executing @p app.
 */
std::vector<ExperimentResult> runPolicySweep(const RunSpec &spec,
                                             const AppSpec &app);

/** The paper's six configurations, Figure 7 order. */
std::vector<PolicyKind> paperPolicies();

} // namespace prism

#endif // PRISM_WORKLOAD_EXPERIMENT_HH
