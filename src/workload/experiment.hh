/**
 * @file
 * Experiment runner: the paper's Section 4 methodology.
 *
 * For each application we first run the SCOMA configuration (infinite
 * page cache) to calibrate per-node page-cache capacities; SCOMA-70
 * and the adaptive policies then cap each node's client S-COMA frames
 * at 70% of the maximum the SCOMA run allocated on that node.
 */

#ifndef PRISM_WORKLOAD_EXPERIMENT_HH
#define PRISM_WORKLOAD_EXPERIMENT_HH

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/config.hh"
#include "core/metrics.hh"
#include "obs/report.hh"
#include "workload/apps.hh"

namespace prism {

/** One (application, policy) measurement. */
struct ExperimentResult {
    std::string app;
    PolicyKind policy{};
    RunMetrics metrics;
    /** Full structured run report (counters, latency quantiles). */
    RunReport report;
};

/**
 * Run one workload instance under @p cfg.  When @p report is non-null
 * it receives the structured run report, captured while the machine is
 * still alive.
 */
RunMetrics runOnce(const MachineConfig &cfg, const AppSpec &app,
                   RunReport *report = nullptr);

/** Config for the SCOMA calibration run (unbounded page cache). */
MachineConfig calibrationConfig(const MachineConfig &base);

/**
 * Per-node SCOMA-70 caps from a calibration run: @p cap_fraction of
 * the peak client S-COMA frames SCOMA allocated on each node (at
 * least one frame).
 */
std::vector<std::uint64_t> scoma70Caps(const RunMetrics &scoma,
                                       double cap_fraction);

/** Config for policy @p pk given @p base and calibrated @p caps. */
MachineConfig policyConfig(const MachineConfig &base, PolicyKind pk,
                           const std::vector<std::uint64_t> &caps);

/**
 * Run @p app under every policy in @p policies, calibrating the
 * SCOMA-70 caps from a SCOMA run first (reused as the SCOMA result if
 * requested).  @p base supplies everything except policy and caps.
 * @p cap_fraction is the paper's 70%.
 */
std::vector<ExperimentResult>
runPolicySweep(const MachineConfig &base, const AppSpec &app,
               const std::vector<PolicyKind> &policies,
               double cap_fraction = 0.70);

/** The paper's six configurations, Figure 7 order. */
std::vector<PolicyKind> paperPolicies();

} // namespace prism

#endif // PRISM_WORKLOAD_EXPERIMENT_HH
