#include "workload/workload.hh"

namespace prism {

RunMetrics
runWorkload(Machine &m, Workload &w)
{
    w.setup(m);
    const std::uint32_t n = m.numProcs();
    m.run([&w, n](Proc &p) { return w.body(p, p.id(), n); });
    return m.metrics();
}

} // namespace prism
