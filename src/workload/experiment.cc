#include "workload/experiment.hh"

#include "core/machine.hh"
#include "workload/workload.hh"

namespace prism {

RunMetrics
runOnce(const MachineConfig &cfg, const AppSpec &app)
{
    Machine m(cfg);
    auto w = app.make();
    return runWorkload(m, *w);
}

std::vector<PolicyKind>
paperPolicies()
{
    return {PolicyKind::Scoma,   PolicyKind::LaNuma,
            PolicyKind::Scoma70, PolicyKind::DynFcfs,
            PolicyKind::DynUtil, PolicyKind::DynLru};
}

std::vector<ExperimentResult>
runPolicySweep(const MachineConfig &base, const AppSpec &app,
               const std::vector<PolicyKind> &policies,
               double cap_fraction)
{
    // Calibration run: SCOMA with an unbounded page cache.
    MachineConfig scoma_cfg = base;
    scoma_cfg.policy = PolicyKind::Scoma;
    scoma_cfg.clientFrameCap = 0;
    scoma_cfg.clientFrameCapPerNode.clear();
    RunMetrics scoma = runOnce(scoma_cfg, app);

    // Per-node caps: 70% of the max client S-COMA frames SCOMA
    // allocated on that node (at least one frame).
    std::vector<std::uint64_t> caps;
    caps.reserve(scoma.clientScomaPeakPerNode.size());
    for (std::uint64_t peak : scoma.clientScomaPeakPerNode) {
        auto cap = static_cast<std::uint64_t>(
            static_cast<double>(peak) * cap_fraction);
        caps.push_back(cap > 0 ? cap : 1);
    }

    std::vector<ExperimentResult> out;
    for (PolicyKind pk : policies) {
        ExperimentResult r;
        r.app = app.name;
        r.policy = pk;
        if (pk == PolicyKind::Scoma) {
            r.metrics = scoma;
        } else {
            MachineConfig cfg = base;
            cfg.policy = pk;
            if (pk == PolicyKind::LaNuma) {
                cfg.clientFrameCap = 0;
                cfg.clientFrameCapPerNode.clear();
            } else {
                cfg.clientFrameCapPerNode = caps;
            }
            r.metrics = runOnce(cfg, app);
        }
        out.push_back(std::move(r));
    }
    return out;
}

} // namespace prism
