#include "workload/experiment.hh"

#include "core/machine.hh"
#include "frontend/recorder.hh"
#include "frontend/trace_workload.hh"
#include "sim/logging.hh"
#include "workload/workload.hh"

namespace prism {

namespace {

/**
 * Execute @p app under @p cfg; with @p rec_out non-null the run is
 * recorded and the completed trace stored there.  The report (when
 * requested) carries the frontend provenance.
 */
RunMetrics
runExec(MachineConfig cfg, const AppSpec &app, RunReport *report,
        std::shared_ptr<const RecordedTrace> *rec_out)
{
    auto w = app.make();
    if (cfg.jobsIntra > 1 && !w->shardSafe()) {
        inform("jobsIntra=%u ignored: %s shares host state across "
               "processors without shard-safe discipline "
               "(Workload::shardSafe)",
               cfg.jobsIntra, w->name());
        cfg.jobsIntra = 1;
    }
    Machine m(cfg);
    TraceRecorder rec;
    if (rec_out)
        rec.attach(m, *w);
    RunMetrics r = runWorkload(m, *w);
    if (rec_out)
        *rec_out = rec.finish(m);
    if (report) {
        *report = m.report();
        if (rec_out) {
            report->frontend = frontendName(FrontendKind::Record);
            report->traceWorkload = (*rec_out)->workload;
            report->traceOps = (*rec_out)->totalOps();
        }
    }
    return r;
}

/** Re-issue @p trace under @p cfg through a TraceWorkload. */
RunMetrics
runReplay(const MachineConfig &cfg,
          std::shared_ptr<const RecordedTrace> trace, RunReport *report)
{
    TraceWorkload w(std::move(trace));
    Machine m(cfg);
    RunMetrics r = runWorkload(m, w);
    if (report) {
        *report = m.report();
        report->frontend = frontendName(FrontendKind::Replay);
        report->traceWorkload = w.trace().workload;
        report->traceOps = w.trace().totalOps();
    }
    return r;
}

/** Load spec.traceFile (resolved to @p path) for @p app, once. */
std::shared_ptr<const RecordedTrace>
loadTraceFor(const std::string &path, const AppSpec &app)
{
    if (path.empty())
        fatal("frontend=replay requires a trace file (--trace-file)");
    auto trace = RecordedTrace::readFile(path);
    if (trace->workload != app.name) {
        warn("replaying trace of '%s' (from %s) in place of app '%s'",
             trace->workload.c_str(), path.c_str(), app.name.c_str());
    }
    return trace;
}

} // namespace

RunMetrics
runOnce(const RunSpec &spec, const AppSpec &app, RunReport *report)
{
    switch (spec.frontend) {
      case FrontendKind::Exec:
        return runExec(spec.machine, app, report, nullptr);
      case FrontendKind::Record: {
        if (spec.traceFile.empty())
            fatal("frontend=record requires a trace file "
                  "(--trace-file)");
        claimTracePath(spec.traceFile, app.name);
        std::shared_ptr<const RecordedTrace> trace;
        RunMetrics r = runExec(spec.machine, app, report, &trace);
        trace->writeFile(spec.traceFile);
        return r;
      }
      case FrontendKind::Replay:
        return runReplay(spec.machine,
                         loadTraceFor(spec.traceFile, app), report);
    }
    panic("unreachable frontend kind");
}

std::vector<PolicyKind>
paperPolicies()
{
    return {PolicyKind::Scoma,   PolicyKind::LaNuma,
            PolicyKind::Scoma70, PolicyKind::DynFcfs,
            PolicyKind::DynUtil, PolicyKind::DynLru};
}

MachineConfig
calibrationConfig(const MachineConfig &base)
{
    MachineConfig cfg = base;
    cfg.policy = PolicyKind::Scoma;
    cfg.clientFrameCap = 0;
    cfg.clientFrameCapPerNode.clear();
    return cfg;
}

std::vector<std::uint64_t>
scoma70Caps(const RunMetrics &scoma, double cap_fraction)
{
    std::vector<std::uint64_t> caps;
    caps.reserve(scoma.clientScomaPeakPerNode.size());
    for (std::uint64_t peak : scoma.clientScomaPeakPerNode) {
        auto cap = static_cast<std::uint64_t>(
            static_cast<double>(peak) * cap_fraction);
        caps.push_back(cap > 0 ? cap : 1);
    }
    return caps;
}

MachineConfig
policyConfig(const MachineConfig &base, PolicyKind pk,
             const std::vector<std::uint64_t> &caps)
{
    MachineConfig cfg = base;
    cfg.policy = pk;
    if (pk == PolicyKind::Scoma || pk == PolicyKind::LaNuma) {
        cfg.clientFrameCap = 0;
        cfg.clientFrameCapPerNode.clear();
    } else {
        cfg.clientFrameCapPerNode = caps;
    }
    return cfg;
}

std::vector<ExperimentResult>
runPolicySweep(const RunSpec &spec, const AppSpec &app)
{
    const std::vector<PolicyKind> policies =
        spec.policies.empty() ? paperPolicies() : spec.policies;

    // Replay mode never executes the workload: every run — including
    // the calibration — re-issues the recorded stream.
    std::shared_ptr<const RecordedTrace> trace;
    if (spec.frontend == FrontendKind::Replay)
        trace = loadTraceFor(spec.traceFile, app);

    // Calibration run: SCOMA with an unbounded page cache.  In record
    // mode this is the run whose stream is captured.
    RunReport scoma_report;
    RunMetrics scoma;
    if (trace) {
        scoma = runReplay(calibrationConfig(spec.machine), trace,
                          &scoma_report);
    } else if (spec.frontend == FrontendKind::Record) {
        if (spec.traceFile.empty())
            fatal("frontend=record requires a trace file "
                  "(--trace-file)");
        claimTracePath(spec.traceFile, app.name);
        std::shared_ptr<const RecordedTrace> recorded;
        scoma = runExec(calibrationConfig(spec.machine), app,
                        &scoma_report, &recorded);
        recorded->writeFile(spec.traceFile);
    } else {
        scoma = runExec(calibrationConfig(spec.machine), app,
                        &scoma_report, nullptr);
    }
    const std::vector<std::uint64_t> caps =
        scoma70Caps(scoma, spec.capFraction);

    std::vector<ExperimentResult> out;
    for (PolicyKind pk : policies) {
        ExperimentResult r;
        r.app = app.name;
        r.policy = pk;
        if (pk == PolicyKind::Scoma) {
            r.metrics = scoma;
            r.report = scoma_report;
        } else {
            const MachineConfig cfg =
                policyConfig(spec.machine, pk, caps);
            r.metrics = trace ? runReplay(cfg, trace, &r.report)
                              : runExec(cfg, app, &r.report, nullptr);
        }
        out.push_back(std::move(r));
    }
    return out;
}

} // namespace prism
