#include "workload/experiment.hh"

#include "core/machine.hh"
#include "sim/logging.hh"
#include "workload/workload.hh"

namespace prism {

RunMetrics
runOnce(const MachineConfig &cfg, const AppSpec &app, RunReport *report)
{
    auto w = app.make();
    MachineConfig c = cfg;
    if (c.jobsIntra > 1 && !w->shardSafe()) {
        inform("jobsIntra=%u ignored: %s shares host state across "
               "processors without shard-safe discipline "
               "(Workload::shardSafe)",
               c.jobsIntra, w->name());
        c.jobsIntra = 1;
    }
    Machine m(c);
    RunMetrics r = runWorkload(m, *w);
    if (report)
        *report = m.report();
    return r;
}

std::vector<PolicyKind>
paperPolicies()
{
    return {PolicyKind::Scoma,   PolicyKind::LaNuma,
            PolicyKind::Scoma70, PolicyKind::DynFcfs,
            PolicyKind::DynUtil, PolicyKind::DynLru};
}

MachineConfig
calibrationConfig(const MachineConfig &base)
{
    MachineConfig cfg = base;
    cfg.policy = PolicyKind::Scoma;
    cfg.clientFrameCap = 0;
    cfg.clientFrameCapPerNode.clear();
    return cfg;
}

std::vector<std::uint64_t>
scoma70Caps(const RunMetrics &scoma, double cap_fraction)
{
    std::vector<std::uint64_t> caps;
    caps.reserve(scoma.clientScomaPeakPerNode.size());
    for (std::uint64_t peak : scoma.clientScomaPeakPerNode) {
        auto cap = static_cast<std::uint64_t>(
            static_cast<double>(peak) * cap_fraction);
        caps.push_back(cap > 0 ? cap : 1);
    }
    return caps;
}

MachineConfig
policyConfig(const MachineConfig &base, PolicyKind pk,
             const std::vector<std::uint64_t> &caps)
{
    MachineConfig cfg = base;
    cfg.policy = pk;
    if (pk == PolicyKind::Scoma || pk == PolicyKind::LaNuma) {
        cfg.clientFrameCap = 0;
        cfg.clientFrameCapPerNode.clear();
    } else {
        cfg.clientFrameCapPerNode = caps;
    }
    return cfg;
}

std::vector<ExperimentResult>
runPolicySweep(const MachineConfig &base, const AppSpec &app,
               const std::vector<PolicyKind> &policies,
               double cap_fraction)
{
    // Calibration run: SCOMA with an unbounded page cache.
    RunReport scoma_report;
    RunMetrics scoma =
        runOnce(calibrationConfig(base), app, &scoma_report);
    const std::vector<std::uint64_t> caps =
        scoma70Caps(scoma, cap_fraction);

    std::vector<ExperimentResult> out;
    for (PolicyKind pk : policies) {
        ExperimentResult r;
        r.app = app.name;
        r.policy = pk;
        if (pk == PolicyKind::Scoma) {
            r.metrics = scoma;
            r.report = scoma_report;
        } else {
            r.metrics =
                runOnce(policyConfig(base, pk, caps), app, &r.report);
        }
        out.push_back(std::move(r));
    }
    return out;
}

} // namespace prism
