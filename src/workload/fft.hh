/**
 * @file
 * FFT: six-step 1-D FFT over n complex doubles (SPLASH-2 style).
 *
 * The n points live in a sqrt(n) x sqrt(n) matrix; processors own row
 * blocks.  Transposes are all-to-all communication; the row FFTs and
 * twiddle multiplication are local to the owned rows; the roots-of-
 * unity table is read-shared by everyone.
 */

#ifndef PRISM_WORKLOAD_FFT_HH
#define PRISM_WORKLOAD_FFT_HH

#include "workload/workload.hh"

namespace prism {

/** FFT workload (paper: 64K complex doubles). */
class FftWorkload : public Workload
{
  public:
    struct Params {
        std::uint32_t logN = 16; //!< n = 2^logN complex doubles (even)
    };

    FftWorkload() : FftWorkload(Params{}) {}
    explicit FftWorkload(const Params &p);

    const char *name() const override { return "FFT"; }
    std::string sizeDesc() const override;
    void setup(Machine &m) override;
    CoTask body(Proc &p, std::uint32_t tid, std::uint32_t nt) override;

  private:
    CoTask transpose(Proc &p, const SimArray &from, const SimArray &to,
                     std::uint32_t r0, std::uint32_t r1);
    CoTask fftRows(Proc &p, const SimArray &a, std::uint32_t r0,
                   std::uint32_t r1);

    Params params_;
    std::uint32_t n_ = 0;
    std::uint32_t rows_ = 0;
    std::uint32_t cols_ = 0;
    SimArray src_;
    SimArray dst_;
    SimArray roots_;
};

} // namespace prism

#endif // PRISM_WORKLOAD_FFT_HH
