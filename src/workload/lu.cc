#include "workload/lu.hh"

namespace prism {

LuWorkload::LuWorkload(const Params &p) : params_(p)
{
    prism_assert(params_.n % params_.b == 0,
                 "matrix dimension must be a block multiple");
    nb_ = params_.n / params_.b;
}

std::string
LuWorkload::sizeDesc() const
{
    return std::to_string(params_.n) + "x" + std::to_string(params_.n) +
           " matrix, " + std::to_string(params_.b) + "x" +
           std::to_string(params_.b) + " blocks";
}

void
LuWorkload::setup(Machine &m)
{
    // Processor grid: nearest factorization of P.
    const std::uint32_t np = m.numProcs();
    pr_ = 1;
    for (std::uint32_t d = 1; d * d <= np; ++d) {
        if (np % d == 0)
            pr_ = d;
    }
    pc_ = np / pr_;

    const std::uint64_t bytes =
        std::uint64_t{params_.n} * params_.n * 8;
    GlobalArena arena(m, /*key=*/0x1D, bytes + 4 * kPageBytes);
    a_ = SimArray{arena.allocPages(bytes), 8};
}

std::uint32_t
LuWorkload::owner(std::uint32_t bi, std::uint32_t bj) const
{
    return (bi % pr_) * pc_ + (bj % pc_);
}

VAddr
LuWorkload::elem(std::uint32_t bi, std::uint32_t bj, std::uint32_t i,
                 std::uint32_t j) const
{
    // Block-major (contiguous blocks) layout.
    const std::uint64_t b2 =
        std::uint64_t{params_.b} * params_.b;
    const std::uint64_t block = std::uint64_t{bi} * nb_ + bj;
    return a_.at(block * b2 + std::uint64_t{i} * params_.b + j);
}

CoTask
LuWorkload::factorDiag(Proc &p, std::uint32_t k)
{
    const std::uint32_t b = params_.b;
    for (std::uint32_t i = 0; i < b; ++i) {
        for (std::uint32_t j = i; j < b; ++j) {
            co_await p.read(elem(k, k, i, j));
            co_await p.write(elem(k, k, i, j));
            p.compute(4);
        }
    }
}

CoTask
LuWorkload::updateBlock(Proc &p, std::uint32_t bi, std::uint32_t bj,
                        std::uint32_t k)
{
    // A[bi][bj] -= A[bi][k] * A[k][bj] (daxpy-structured).
    const std::uint32_t b = params_.b;
    for (std::uint32_t i = 0; i < b; ++i) {
        for (std::uint32_t kk = 0; kk < b; ++kk) {
            co_await p.read(elem(bi, k, i, kk));
            for (std::uint32_t j = 0; j < b; j += 2) {
                co_await p.read(elem(k, bj, kk, j));
                co_await p.write(elem(bi, bj, i, j));
                p.compute(4);
            }
        }
    }
}

CoTask
LuWorkload::body(Proc &p, std::uint32_t tid, std::uint32_t nt)
{
    const std::uint32_t b = params_.b;

    // Parallel init: each owner writes its blocks.
    for (std::uint32_t bi = 0; bi < nb_; ++bi) {
        for (std::uint32_t bj = 0; bj < nb_; ++bj) {
            if (owner(bi, bj) != tid)
                continue;
            for (std::uint32_t i = 0; i < b; ++i) {
                for (std::uint32_t j = 0; j < b; ++j) {
                    co_await p.write(elem(bi, bj, i, j));
                    p.compute(1);
                }
            }
        }
    }

    co_await p.barrier(0);
    if (tid == 0)
        co_await p.beginParallel();
    co_await p.barrier(0);

    for (std::uint32_t k = 0; k < nb_; ++k) {
        if (owner(k, k) == tid)
            co_await factorDiag(p, k);
        co_await p.barrier(0);

        // Perimeter.
        for (std::uint32_t bj = k + 1; bj < nb_; ++bj) {
            if (owner(k, bj) == tid)
                co_await updateBlock(p, k, bj, k);
        }
        for (std::uint32_t bi = k + 1; bi < nb_; ++bi) {
            if (owner(bi, k) == tid)
                co_await updateBlock(p, bi, k, k);
        }
        co_await p.barrier(0);

        // Interior.
        for (std::uint32_t bi = k + 1; bi < nb_; ++bi) {
            for (std::uint32_t bj = k + 1; bj < nb_; ++bj) {
                if (owner(bi, bj) == tid)
                    co_await updateBlock(p, bi, bj, k);
            }
        }
        co_await p.barrier(0);
    }

    if (tid == 0)
        co_await p.endParallel();
    (void)nt;
}

} // namespace prism
