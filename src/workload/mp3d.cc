#include "workload/mp3d.hh"

namespace prism {

Mp3dWorkload::Mp3dWorkload(const Params &p) : params_(p) {}

std::string
Mp3dWorkload::sizeDesc() const
{
    return std::to_string(params_.particles) + " particles, " +
           std::to_string(params_.iters) + " iters";
}

void
Mp3dWorkload::setup(Machine &m)
{
    const std::uint64_t pb = std::uint64_t{params_.particles} * 64;
    const std::uint64_t cells = std::uint64_t{params_.gridDim} *
                                params_.gridDim * params_.gridDim;
    GlobalArena arena(m, /*key=*/0x3D, pb + cells * 8 + 8 * kPageBytes);
    particles_ = SimArray{arena.allocPages(pb), 64};
    space_ = SimArray{arena.allocPages(cells * 8), 8};

    Rng rng(params_.seed);
    pos_.resize(params_.particles);
    vel_.resize(params_.particles);
    for (std::uint32_t i = 0; i < params_.particles; ++i) {
        pos_[i] = P3{rng.uniform(), rng.uniform(), rng.uniform()};
        // Hypersonic flow: strong +x drift plus thermal motion.
        vel_[i] = P3{0.05 + 0.02 * rng.uniform(),
                     0.02 * (rng.uniform() - 0.5),
                     0.02 * (rng.uniform() - 0.5)};
    }
    lastInCell_.assign(cells, -1);
}

std::uint32_t
Mp3dWorkload::cellOf(const P3 &p) const
{
    const std::uint32_t g = params_.gridDim;
    auto idx = [g](double v) {
        auto i = static_cast<std::uint32_t>(v * g);
        return i >= g ? g - 1 : i;
    };
    return (idx(p.x) * g + idx(p.y)) * g + idx(p.z);
}

CoTask
Mp3dWorkload::body(Proc &p, std::uint32_t tid, std::uint32_t nt)
{
    const std::uint32_t n = params_.particles;
    const std::uint32_t per = n / nt;
    const std::uint32_t i0 = tid * per;
    const std::uint32_t i1 = (tid + 1 == nt) ? n : i0 + per;
    Rng rng(params_.seed + 1000 + tid);

    // Master init (as in SPLASH MP3D).
    if (tid == 0) {
        for (std::uint32_t i = 0; i < n; ++i) {
            co_await p.write(particles_.at(i));
            p.compute(2);
        }
    }

    co_await p.barrier(0);
    if (tid == 0)
        co_await p.beginParallel();
    co_await p.barrier(0);

    for (std::uint32_t it = 0; it < params_.iters; ++it) {
        for (std::uint32_t i = i0; i < i1; ++i) {
            // Move: read the particle, advance, wrap at boundaries.
            co_await p.read(particles_.at(i));
            pos_[i].x += vel_[i].x;
            pos_[i].y += vel_[i].y;
            pos_[i].z += vel_[i].z;
            auto wrap = [](double &v) {
                if (v >= 1.0)
                    v -= 1.0;
                if (v < 0.0)
                    v += 1.0;
            };
            wrap(pos_[i].x);
            wrap(pos_[i].y);
            wrap(pos_[i].z);
            p.compute(10);

            // Space-cell bookkeeping: the communication hot spot.
            const std::uint32_t cell = cellOf(pos_[i]);
            co_await p.read(space_.at(cell));
            co_await p.write(space_.at(cell));

            // Collision with the previous occupant of the cell.
            const int partner = lastInCell_[cell];
            lastInCell_[cell] = static_cast<int>(i);
            if (partner >= 0 && rng.below(4) == 0) {
                co_await p.read(
                    particles_.at(static_cast<std::uint32_t>(partner)));
                co_await p.write(
                    particles_.at(static_cast<std::uint32_t>(partner)));
                std::swap(vel_[i], vel_[static_cast<std::size_t>(partner)]);
                p.compute(20);
            }
            co_await p.write(particles_.at(i));
        }
        co_await p.barrier(0);
    }

    if (tid == 0)
        co_await p.endParallel();
}

} // namespace prism
