/**
 * @file
 * Workload framework.
 *
 * A Workload is an execution-driven reference generator: it performs
 * the real data-access pattern of an application (the same arrays,
 * index math, sharing structure and synchronization as the SPLASH
 * kernel it models) and emits loads/stores into the simulated shared
 * virtual address space.  Control-flow-relevant data (particle
 * positions, tree topology, keys) is kept in host memory by the
 * workload object so that traversals and permutations are real, while
 * the simulator tracks only addresses and coherence.
 *
 * Conventions:
 *  - the shared global segment is attached at VSID 1 on every node,
 *  - each processor's private data lives in VSID (0x100 + procId),
 *    which is never bound to a global segment,
 *  - processor 0 calls beginParallel()/endParallel() around the
 *    measured phase, bracketed by barriers.
 */

#ifndef PRISM_WORKLOAD_WORKLOAD_HH
#define PRISM_WORKLOAD_WORKLOAD_HH

#include <cstdint>
#include <memory>
#include <string>

#include "core/machine.hh"
#include "core/proc.hh"
#include "sim/rng.hh"
#include "sim/task.hh"

namespace prism {

/** VSID of the shared global segment. */
constexpr std::uint64_t kSharedVsid = 1;
/** Base VSID of per-processor private regions. */
constexpr std::uint64_t kPrivateVsidBase = 0x100;

/** A bump allocator inside the shared global segment. */
class GlobalArena
{
  public:
    /** Create/attach the segment on every node. */
    GlobalArena(Machine &m, std::uint64_t key, std::uint64_t bytes)
    {
        std::uint64_t gsid = m.shmget(key, bytes);
        m.shmatAll(kSharedVsid, gsid);
        base_ = kSharedVsid << kSegShift;
        limit_ = bytes;
    }

    /** Allocate @p bytes, aligned to @p align (default: line). */
    VAddr
    alloc(std::uint64_t bytes, std::uint64_t align = 64)
    {
        off_ = (off_ + align - 1) & ~(align - 1);
        prism_assert(off_ + bytes <= limit_, "global arena exhausted");
        VAddr va{base_ + off_};
        off_ += bytes;
        return va;
    }

    /** Allocate page-aligned (fresh page), as malloc does for arrays. */
    VAddr
    allocPages(std::uint64_t bytes)
    {
        return alloc(bytes, kPageBytes);
    }

    std::uint64_t used() const { return off_; }

  private:
    std::uint64_t base_ = 0;
    std::uint64_t off_ = 0;
    std::uint64_t limit_ = 0;
};

/** Private region of one processor. */
class PrivArena
{
  public:
    explicit PrivArena(ProcId p)
        : base_((kPrivateVsidBase + p) << kSegShift)
    {
    }

    VAddr
    alloc(std::uint64_t bytes, std::uint64_t align = 64)
    {
        off_ = (off_ + align - 1) & ~(align - 1);
        VAddr va{base_ + off_};
        off_ += bytes;
        return va;
    }

  private:
    std::uint64_t base_;
    std::uint64_t off_ = 0;
};

/** A typed view over a simulated array. */
struct SimArray {
    VAddr base{};
    std::uint64_t elemBytes = 8;

    VAddr
    at(std::uint64_t i) const
    {
        return VAddr{base.raw + i * elemBytes};
    }
};

/** Interface implemented by each application. */
class Workload
{
  public:
    virtual ~Workload() = default;

    /** Application name as in the paper's Table 2. */
    virtual const char *name() const = 0;

    /** Problem-size description (Table 2 reproduction). */
    virtual std::string sizeDesc() const = 0;

    /** Create segments and compute the layout (no simulated time). */
    virtual void setup(Machine &m) = 0;

    /** The per-processor program. */
    virtual CoTask body(Proc &p, std::uint32_t tid,
                        std::uint32_t nthreads) = 0;

    /**
     * Whether this workload tolerates the sharded scheduler
     * (jobsIntra > 1), where processors on different shards execute on
     * different host threads within a simulated-time window.
     *
     * The contract (see docs/PERFORMANCE.md "Sharded scheduler"): all
     * *host-side* state shared across tids must be either (a) written
     * only in tid-disjoint slices with every cross-tid read separated
     * from the writes by a simulated barrier, or (b) read and written
     * only under one simulated lock dedicated to that state.  Both
     * patterns cross a coordinator round, which supplies a real
     * happens-before edge and a deterministic order.  Workloads whose
     * control flow reads shared host state that other tids mutate
     * concurrently (optimistic lock-free traversals, intentionally
     * unsynchronized SPLASH-style races) must return false; the runner
     * then falls back to the sequential scheduler for them.
     */
    virtual bool shardSafe() const { return true; }
};

/**
 * Run @p w on @p m to completion and return the metrics.
 * setup() is called first; each processor runs body().
 */
RunMetrics runWorkload(Machine &m, Workload &w);

} // namespace prism

#endif // PRISM_WORKLOAD_WORKLOAD_HH
