/**
 * @file
 * KV: a partitioned in-memory key-value store under open-loop
 * YCSB-style load — the server-traffic workload regime (skewed,
 * read-heavy, migratory hot pages) that the paper's SPLASH kernels
 * never exercise.
 *
 * The keyspace is sharded across nodes: partition p's index and value
 * slots live on pages whose static home is node p (the layout strides
 * pages by the node count, JArena-style node-local placement).  Each
 * processor is an independent open-loop request source: arrival i is
 * *scheduled* at phaseStart + i * interarrival cycles and the
 * generator never waits for a response before scheduling the next
 * arrival, so measured latency includes queueing delay
 * (coordinated-omission-free).  Keys are drawn from a seedable
 * Zipfian sampler (Gray's algorithm on sim/rng.hh) or uniformly at
 * theta = 0, with optional hot-key churn that rotates the head of the
 * distribution onto fresh keys mid-run.
 *
 * Per-request latency is tallied host-side per op type and published
 * through the metric registry ("workload" component), so --report
 * emits kv.{read,update,insert,scan}.latency with p50/p95/p99.
 */

#ifndef PRISM_WORKLOAD_KVSTORE_HH
#define PRISM_WORKLOAD_KVSTORE_HH

#include <vector>

#include "obs/metrics.hh"
#include "workload/apps.hh"
#include "workload/workload.hh"

namespace prism {

/** YCSB-style operation mixes. */
enum class KvMix : std::uint8_t {
    A, //!< update-heavy: 50% read / 50% update
    B, //!< read-mostly:  95% read /  5% update
    C, //!< read-only:   100% read
    D, //!< read-latest:  95% read /  5% insert
    E, //!< short scans:  95% scan /  5% insert
};

const char *kvMixName(KvMix m);

/** @retval false when @p s ("a".."e"/"A".."E") names no mix. */
bool kvMixFromString(const char *s, KvMix *out);

/**
 * Seedable Zipfian rank sampler (Gray et al.'s algorithm, as used by
 * the YCSB generator): rank 0 is the most popular, P(rank) is
 * proportional to 1/(rank+1)^theta.  theta = 0 degenerates to a
 * uniform draw.  Construction is O(n) (harmonic sum); sampling is
 * O(1) and consumes exactly one Rng draw.
 */
class ZipfianSampler
{
  public:
    ZipfianSampler(std::uint64_t n, double theta);

    /** Draw a rank in [0, n). */
    std::uint64_t operator()(Rng &rng) const;

    std::uint64_t n() const { return n_; }
    double theta() const { return theta_; }

  private:
    std::uint64_t n_;
    double theta_;
    double alpha_ = 0;
    double zetan_ = 0;
    double eta_ = 0;
};

/** The partitioned KV store workload. */
class KvStoreWorkload : public Workload
{
  public:
    struct Params {
        std::uint64_t keys = 1ULL << 17;     //!< initial keyspace
        std::uint64_t requests = 1ULL << 20; //!< total ops, all procs
        std::uint32_t valueBytes = 128;      //!< per-value payload
        KvMix mix = KvMix::B;
        double theta = 0.99;          //!< Zipfian skew; 0 = uniform
        std::uint32_t scanMax = 16;   //!< max keys per scan op
        std::uint64_t churnPeriod = 0; //!< per-proc reqs per hot-key
                                       //!< rotation; 0 disables churn
        std::uint32_t interarrival = 400; //!< cycles between arrivals
        std::uint64_t seed = 2026;
    };

    KvStoreWorkload() : KvStoreWorkload(Params{}) {}
    explicit KvStoreWorkload(const Params &p) : params_(p) {}

    const char *name() const override { return "KV"; }
    std::string sizeDesc() const override;
    void setup(Machine &m) override;
    CoTask body(Proc &p, std::uint32_t tid, std::uint32_t nt) override;

    /**
     * Shard-safe: all host state is either read-only after setup()
     * (params, sampler, layout) or written in tid-disjoint slices
     * (per-proc latency tallies, per-proc insert counters) that tid 0
     * reads only after the final barrier.
     */
    bool shardSafe() const override { return true; }

    // --- Layout (exposed for the partition-routing tests) ------------

    /** Owning partition (== static home node) of @p key. */
    std::uint32_t partOf(std::uint64_t key) const
    {
        return static_cast<std::uint32_t>(key % nParts_);
    }

    /** Simulated address of @p key 's 8-byte index slot. */
    VAddr indexAddr(std::uint64_t key) const;

    /** Simulated address of @p key 's value record. */
    VAddr valueAddr(std::uint64_t key) const;

    /** Global page number backing simulated address @p va. */
    GPage gpageOf(VAddr va) const;

    const Params &params() const { return params_; }

  private:
    std::uint64_t keyOf(std::uint64_t rank, std::uint64_t epoch) const;
    CoTask opRead(Proc &p, std::uint64_t key);
    CoTask opWrite(Proc &p, std::uint64_t key);

    Params params_;
    std::vector<ZipfianSampler> sampler_; //!< 0 or 1 (no default ctor)

    // Layout, fixed by setup().
    std::uint64_t gsid_ = 0;
    std::uint64_t nParts_ = 1;
    std::uint64_t align_ = 0; //!< pages skipped so part 0 homes on node 0
    std::uint64_t idxSlotsPerPage_ = 0;
    std::uint64_t valSlotsPerPage_ = 0;
    std::uint64_t idxPagesPerPart_ = 0;
    std::uint64_t valPagesPerPart_ = 0;
    std::uint64_t valueLines_ = 0;
    std::uint64_t insertCapPerProc_ = 0;

    // Per-proc tallies (tid-disjoint until the final barrier).
    struct Tally {
        Histogram read{latencyBounds()};
        Histogram update{latencyBounds()};
        Histogram insert{latencyBounds()};
        Histogram scan{latencyBounds()};
        std::uint64_t inserted = 0;
    };
    std::vector<Tally> tallies_;

    // Machine-wide per-op-type histograms, published via --report.
    ScopedHistogram readLat_{latencyBounds()};
    ScopedHistogram updateLat_{latencyBounds()};
    ScopedHistogram insertLat_{latencyBounds()};
    ScopedHistogram scanLat_{latencyBounds()};
};

/** The KV problem-size preset for @p scale (shared with kv_sweep). */
KvStoreWorkload::Params kvParamsFor(AppScale scale);

} // namespace prism

#endif // PRISM_WORKLOAD_KVSTORE_HH
