/**
 * @file
 * Water: molecular dynamics of water (both SPLASH variants).
 *
 * Water-Nsq is the O(n^2) all-pairs version: every owned molecule
 * reads every other molecule's position and, within the cutoff,
 * updates the partner's force accumulator under a per-molecule lock.
 * Water-Spa is the O(n) spatial version: a cell list restricts
 * interactions to the 27 neighbouring boxes, so sharing is
 * neighbour-local.
 */

#ifndef PRISM_WORKLOAD_WATER_HH
#define PRISM_WORKLOAD_WATER_HH

#include <vector>

#include "workload/workload.hh"

namespace prism {

/** Common parameters of both Water variants. */
struct WaterParams {
    std::uint32_t molecules = 512;
    std::uint32_t iters = 3;
    double cutoff = 0.25; //!< interaction range in the unit box
    std::uint64_t seed = 23;
    std::uint32_t pairCompute = 400; //!< cycles per accepted pair
};

/** Shared machinery of the two variants. */
class WaterBase : public Workload
{
  public:
    explicit WaterBase(const WaterParams &p) : params_(p) {}

    std::string sizeDesc() const override;
    void setup(Machine &m) override;

  protected:
    struct P3 {
        double x, y, z;
    };

    double dist2(std::uint32_t i, std::uint32_t j) const;

    /** Intra-molecule phase + position update for owned molecules. */
    CoTask intraAndUpdate(Proc &p, std::uint32_t m0, std::uint32_t m1);

    WaterParams params_;
    SimArray mols_;   //!< molecule records (2 lines each)
    SimArray forces_; //!< force accumulators (1 line each)
    std::vector<P3> pos_;
};

/** O(n^2) all-pairs water (paper: 512 molecules, 3 iters). */
class WaterNsqWorkload : public WaterBase
{
  public:
    explicit WaterNsqWorkload(const WaterParams &p = WaterParams()) : WaterBase(p) {}

    const char *name() const override { return "Water-Nsq"; }
    CoTask body(Proc &p, std::uint32_t tid, std::uint32_t nt) override;
};

/** O(n) spatial cell-list water (paper: 512 molecules, 3 iters). */
class WaterSpaWorkload : public WaterBase
{
  public:
    explicit WaterSpaWorkload(const WaterParams &p = WaterParams()) : WaterBase(p) {}

    const char *name() const override { return "Water-Spa"; }
    CoTask body(Proc &p, std::uint32_t tid, std::uint32_t nt) override;

  private:
    std::uint32_t boxOf(const P3 &pos, std::uint32_t dim) const;
};

} // namespace prism

#endif // PRISM_WORKLOAD_WATER_HH
