#include "workload/barnes.hh"

#include <algorithm>
#include <cmath>
#include <vector>

namespace prism {

BarnesWorkload::BarnesWorkload(const Params &p) : params_(p) {}

std::string
BarnesWorkload::sizeDesc() const
{
    return std::to_string(params_.bodies) + " particles, " +
           std::to_string(params_.iters) + " iters";
}

void
BarnesWorkload::setup(Machine &m)
{
    maxCells_ = params_.bodies * 8 + 64;
    const std::uint64_t bb = std::uint64_t{params_.bodies} * 64;
    const std::uint64_t cb = std::uint64_t{maxCells_} * 128;
    GlobalArena arena(m, /*key=*/0xBA0E5, bb + cb + 8 * kPageBytes);
    bodies_ = SimArray{arena.allocPages(bb), 64};
    cells_ = SimArray{arena.allocPages(cb), 128};

    Rng rng(params_.seed);
    pos_.resize(params_.bodies);
    vel_.resize(params_.bodies);
    for (std::uint32_t b = 0; b < params_.bodies; ++b) {
        pos_[b] = Vec{rng.uniform(), rng.uniform(), rng.uniform()};
        vel_[b] = Vec{rng.uniform() * 0.01, rng.uniform() * 0.01,
                      rng.uniform() * 0.01};
    }
    // Spatial (Morton-order) body assignment, modelling SPLASH
    // Barnes' costzones partitioning: each processor's bodies are
    // spatially coherent, so consecutive force traversals reuse the
    // same tree-path pages.
    std::vector<std::uint32_t> order(params_.bodies);
    for (std::uint32_t b = 0; b < params_.bodies; ++b)
        order[b] = b;
    auto morton = [this](std::uint32_t b) {
        auto q = [](double v) {
            return static_cast<std::uint32_t>(v * 1023.0) & 1023u;
        };
        std::uint32_t x = q(pos_[b].x), y = q(pos_[b].y),
                      z = q(pos_[b].z);
        std::uint64_t key = 0;
        for (int bit = 9; bit >= 0; --bit) {
            key = (key << 3) | (((x >> bit) & 1u) << 2) |
                  (((y >> bit) & 1u) << 1) | ((z >> bit) & 1u);
        }
        return key;
    };
    std::sort(order.begin(), order.end(),
              [&](std::uint32_t a, std::uint32_t b) {
                  return morton(a) < morton(b);
              });
    std::vector<Vec> sp(params_.bodies), sv(params_.bodies);
    for (std::uint32_t i = 0; i < params_.bodies; ++i) {
        sp[i] = pos_[order[i]];
        sv[i] = vel_[order[i]];
    }
    pos_ = std::move(sp);
    vel_ = std::move(sv);
    tree_.reserve(maxCells_);
}

int
BarnesWorkload::newCell(const Vec &center, double half, bool leaf,
                        int body)
{
    prism_assert(tree_.size() < maxCells_, "barnes tree overflow");
    Cell c;
    for (auto &ch : c.child)
        ch = -1;
    c.center = center;
    c.half = half;
    c.leaf = leaf;
    c.bodyIdx = body;
    tree_.push_back(c);
    return static_cast<int>(tree_.size() - 1);
}

int
BarnesWorkload::octantOf(const Cell &c, const Vec &p) const
{
    return (p.x > c.center.x ? 1 : 0) | (p.y > c.center.y ? 2 : 0) |
           (p.z > c.center.z ? 4 : 0);
}

BarnesWorkload::Vec
BarnesWorkload::childCenter(const Cell &c, int oct) const
{
    const double h = c.half / 2;
    return Vec{c.center.x + ((oct & 1) ? h : -h),
               c.center.y + ((oct & 2) ? h : -h),
               c.center.z + ((oct & 4) ? h : -h)};
}

void
BarnesWorkload::resetTree()
{
    tree_.clear();
    newCell(Vec{0.5, 0.5, 0.5}, 0.5, false, -1);
}

void
BarnesWorkload::computeMass(int idx)
{
    Cell &c = tree_[idx];
    if (c.leaf) {
        c.mass = 1.0;
        c.com = pos_[c.bodyIdx];
        return;
    }
    c.mass = 0;
    c.com = Vec{};
    for (int ch : c.child) {
        if (ch < 0)
            continue;
        computeMass(ch);
        const Cell &k = tree_[ch];
        c.mass += k.mass;
        c.com.x += k.com.x * k.mass;
        c.com.y += k.com.y * k.mass;
        c.com.z += k.com.z * k.mass;
    }
    if (c.mass > 0) {
        c.com.x /= c.mass;
        c.com.y /= c.mass;
        c.com.z /= c.mass;
    }
}

CoTask
BarnesWorkload::insertBody(Proc &p, std::uint32_t b)
{
    const Vec bp = pos_[b];
    int idx = 0;
    // The bound counts loop iterations, which include lock retries and
    // split-and-retry steps, not only tree depth.
    for (int iter = 0; iter < 100000; ++iter) {
        co_await p.read(cells_.at(idx));
        const int oct = octantOf(tree_[idx], bp);
        const int child = tree_[idx].child[oct];
        if (child < 0) {
            co_await p.lock(1000 + idx);
            // Re-check: another processor may have filled the slot.
            if (tree_[idx].child[oct] < 0) {
                const int leaf = newCell(childCenter(tree_[idx], oct),
                                         tree_[idx].half / 2, true,
                                         static_cast<int>(b));
                tree_[idx].child[oct] = leaf;
                co_await p.write(cells_.at(leaf));
                co_await p.write(cells_.at(idx));
                co_await p.unlock(1000 + idx);
                co_return;
            }
            co_await p.unlock(1000 + idx);
            continue; // descend through the newly filled slot
        }
        if (tree_[child].leaf) {
            co_await p.lock(1000 + idx);
            if (tree_[idx].child[oct] == child && tree_[child].leaf) {
                // Split: replace the leaf with an internal cell
                // holding the displaced body.
                const int other = tree_[child].bodyIdx;
                const int internal =
                    newCell(childCenter(tree_[idx], oct),
                            tree_[idx].half / 2, false, -1);
                const int oo = octantOf(tree_[internal], pos_[other]);
                tree_[internal].child[oo] = child;
                tree_[child].center =
                    childCenter(tree_[internal], oo);
                tree_[child].half = tree_[internal].half / 2;
                tree_[idx].child[oct] = internal;
                co_await p.write(cells_.at(internal));
                co_await p.write(cells_.at(idx));
            }
            co_await p.unlock(1000 + idx);
            // Retry from the same level (slot now internal).
            continue;
        }
        idx = child;
        p.compute(4);
    }
    panic("barnes insert exceeded maximum depth");
}

CoTask
BarnesWorkload::forceOnBody(Proc &p, std::uint32_t b)
{
    const Vec bp = pos_[b];
    std::vector<int> stack{0};
    double ax = 0, ay = 0, az = 0;
    while (!stack.empty()) {
        const int idx = stack.back();
        stack.pop_back();
        // A SPLASH cell record spans several lines (children, center
        // of mass, quadrupole moments); visiting one touches both
        // lines of our 128-byte record.
        co_await p.read(cells_.at(idx));
        co_await p.read(VAddr{cells_.at(idx).raw + 64});
        const Cell &c = tree_[idx];
        const double dx = c.com.x - bp.x;
        const double dy = c.com.y - bp.y;
        const double dz = c.com.z - bp.z;
        const double d2 = dx * dx + dy * dy + dz * dz + 1e-4; // softened
        const double d = std::sqrt(d2);
        if (c.leaf || (2 * c.half) / d < params_.theta) {
            if (!(c.leaf && c.bodyIdx == static_cast<int>(b))) {
                if (c.leaf) {
                    // Body-body interaction reads the partner record.
                    co_await p.read(
                        bodies_.at(static_cast<std::uint32_t>(
                            c.bodyIdx)));
                }
                const double f = c.mass / (d2 * d);
                ax += f * dx;
                ay += f * dy;
                az += f * dz;
                p.compute(12);
            }
        } else {
            for (int ch : c.child) {
                if (ch >= 0)
                    stack.push_back(ch);
            }
            p.compute(4);
        }
    }
    // Store the acceleration into the body record.
    co_await p.read(bodies_.at(b));
    co_await p.write(bodies_.at(b));
    const double dt = 1e-6;
    auto kick = [](double &v, double a, double step) {
        v += a * step;
        if (v > 0.02)
            v = 0.02;
        if (v < -0.02)
            v = -0.02;
    };
    kick(vel_[b].x, ax, dt);
    kick(vel_[b].y, ay, dt);
    kick(vel_[b].z, az, dt);
}

CoTask
BarnesWorkload::body(Proc &p, std::uint32_t tid, std::uint32_t nt)
{
    const std::uint32_t n = params_.bodies;
    const std::uint32_t per = n / nt;
    const std::uint32_t b0 = tid * per;
    const std::uint32_t b1 = (tid + 1 == nt) ? n : b0 + per;

    // Init: processor 0 writes all body records (master init, as in
    // SPLASH Barnes).
    if (tid == 0) {
        resetTree();
        for (std::uint32_t b = 0; b < n; ++b) {
            co_await p.write(bodies_.at(b));
            p.compute(2);
        }
    }

    co_await p.barrier(0);
    if (tid == 0)
        co_await p.beginParallel();
    co_await p.barrier(0);

    for (std::uint32_t it = 0; it < params_.iters; ++it) {
        // 1. Parallel tree build with per-cell locks.
        for (std::uint32_t b = b0; b < b1; ++b)
            co_await insertBody(p, b);
        co_await p.barrier(0);

        // 2. Center-of-mass: host-side values are final once the tree
        // is complete; processors sweep disjoint cell ranges.
        if (tid == 0)
            computeMass(0);
        const std::uint32_t cells =
            static_cast<std::uint32_t>(tree_.size());
        const std::uint32_t cper = cells / nt + 1;
        for (std::uint32_t c = tid * cper;
             c < cells && c < (tid + 1) * cper; ++c) {
            co_await p.read(cells_.at(c));
            co_await p.write(cells_.at(c));
            p.compute(6);
        }
        co_await p.barrier(0);

        // 3. Force computation (irregular read sharing).
        for (std::uint32_t b = b0; b < b1; ++b)
            co_await forceOnBody(p, b);
        co_await p.barrier(0);

        // 4. Position update (owned bodies).
        for (std::uint32_t b = b0; b < b1; ++b) {
            co_await p.read(bodies_.at(b));
            co_await p.write(bodies_.at(b));
            pos_[b].x += vel_[b].x;
            pos_[b].y += vel_[b].y;
            pos_[b].z += vel_[b].z;
            // Reflect at the walls to stay in the unit cube.
            auto clamp = [](double &x, double &v) {
                if (x < 0) {
                    x = -x;
                    v = -v;
                }
                if (x > 1) {
                    x = 2 - x;
                    v = -v;
                }
            };
            clamp(pos_[b].x, vel_[b].x);
            clamp(pos_[b].y, vel_[b].y);
            clamp(pos_[b].z, vel_[b].z);
            p.compute(8);
        }
        co_await p.barrier(0);
        if (tid == 0 && it + 1 < params_.iters)
            resetTree();
        co_await p.barrier(0);
    }

    if (tid == 0)
        co_await p.endParallel();
}

} // namespace prism
