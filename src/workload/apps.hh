/**
 * @file
 * Registry of the standard applications: the eight SPLASH-like
 * kernels (paper Table 2) plus the partitioned KV store (kvstore.hh).
 */

#ifndef PRISM_WORKLOAD_APPS_HH
#define PRISM_WORKLOAD_APPS_HH

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "workload/workload.hh"

namespace prism {

/** Problem-size scale. */
enum class AppScale {
    Paper, //!< the paper's Table 2 data sets (LU scaled to 256^2)
    Small, //!< fast sizes for tests and smoke runs
    Tiny,  //!< minimal sizes for unit tests
};

/** A registered application. */
struct AppSpec {
    std::string name;
    std::function<std::unique_ptr<Workload>()> make;
};

/** All standard applications at the given scale (Table 2 order,
 *  then KV). */
std::vector<AppSpec> standardApps(AppScale scale);

/** One application by name (fatal if unknown). */
std::unique_ptr<Workload> makeApp(const std::string &name, AppScale scale);

} // namespace prism

#endif // PRISM_WORKLOAD_APPS_HH
