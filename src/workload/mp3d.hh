/**
 * @file
 * MP3D: rarefied hypersonic airflow simulation (SPLASH-I style).
 *
 * Particles advance ballistically through a shared 3-D space-cell
 * array each timestep; every move reads and writes the particle's
 * space cell (heavy, poorly localized write sharing — MP3D's
 * notorious behaviour), and colliding particles update each other.
 */

#ifndef PRISM_WORKLOAD_MP3D_HH
#define PRISM_WORKLOAD_MP3D_HH

#include <vector>

#include "workload/workload.hh"

namespace prism {

/** MP3D workload (paper: 20,000 particles, 5 iterations). */
class Mp3dWorkload : public Workload
{
  public:
    struct Params {
        std::uint32_t particles = 20000;
        std::uint32_t iters = 5;
        std::uint32_t gridDim = 16; //!< space array is gridDim^3 cells
        std::uint64_t seed = 11;
    };

    Mp3dWorkload() : Mp3dWorkload(Params{}) {}
    explicit Mp3dWorkload(const Params &p);

    const char *name() const override { return "MP3D"; }
    std::string sizeDesc() const override;
    void setup(Machine &m) override;
    CoTask body(Proc &p, std::uint32_t tid, std::uint32_t nt) override;

    /**
     * Faithful to SPLASH MP3D, the move phase is intentionally
     * unsynchronized: lastInCell_ is a cross-tid read-modify-write and
     * collisions swap another tid's velocity, all mid-phase.  The
     * partner choice feeds simulated addresses, so the runner must
     * keep MP3D on the sequential scheduler.
     */
    bool shardSafe() const override { return false; }

  private:
    struct P3 {
        double x, y, z;
    };

    std::uint32_t cellOf(const P3 &pos) const;

    Params params_;
    SimArray particles_;
    SimArray space_;
    std::vector<P3> pos_;
    std::vector<P3> vel_;
    std::vector<int> lastInCell_; //!< collision partner per cell
};

} // namespace prism

#endif // PRISM_WORKLOAD_MP3D_HH
