/**
 * @file
 * Ocean: simulation of ocean currents (SPLASH style).
 *
 * Models the memory behaviour of the multigrid/SOR core: red-black
 * Gauss-Seidel relaxation sweeps plus stencil passes over several
 * n x n grids, partitioned into row blocks per processor.  Boundary
 * rows are read-shared between neighbouring processors.
 */

#ifndef PRISM_WORKLOAD_OCEAN_HH
#define PRISM_WORKLOAD_OCEAN_HH

#include <vector>

#include "workload/workload.hh"

namespace prism {

/** Ocean workload (paper: 258x258 ocean grid). */
class OceanWorkload : public Workload
{
  public:
    struct Params {
        std::uint32_t n = 258;       //!< grid dimension
        std::uint32_t timesteps = 4; //!< outer iterations
        std::uint32_t relaxSweeps = 2;
    };

    OceanWorkload() : OceanWorkload(Params{}) {}
    explicit OceanWorkload(const Params &p);

    const char *name() const override { return "Ocean"; }
    std::string sizeDesc() const override;
    void setup(Machine &m) override;
    CoTask body(Proc &p, std::uint32_t tid, std::uint32_t nt) override;

  private:
    VAddr
    at(std::uint32_t grid, std::uint32_t i, std::uint32_t j) const
    {
        return grids_[grid].at(std::uint64_t{i} * params_.n + j);
    }

    /** One red-black relaxation sweep of @p grid over owned rows. */
    CoTask relax(Proc &p, std::uint32_t grid, std::uint32_t i0,
                 std::uint32_t i1, std::uint32_t colour);

    /** dst = stencil(src) over owned rows. */
    CoTask stencil(Proc &p, std::uint32_t src, std::uint32_t dst,
                   std::uint32_t i0, std::uint32_t i1);

    Params params_;
    static constexpr std::uint32_t kGrids = 5;
    std::vector<SimArray> grids_;
};

} // namespace prism

#endif // PRISM_WORKLOAD_OCEAN_HH
