#include "workload/parallel_runner.hh"

#include <cstdlib>
#include <cstring>
#include <memory>
#include <utility>

#include "core/env.hh"
#include "sim/logging.hh"

namespace prism {

unsigned
defaultJobs()
{
    if (const char *e = resolveEnv("PRISM_JOBS")) {
        return static_cast<unsigned>(
            parseKnobU64("PRISM_JOBS", e, 1, 1, ~0U));
    }
    unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

unsigned
jobsFromArgs(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        const char *val = nullptr;
        if (!std::strcmp(argv[i], "--jobs") && i + 1 < argc)
            val = argv[i + 1];
        else if (!std::strncmp(argv[i], "--jobs=", 7))
            val = argv[i] + 7;
        if (val) {
            return static_cast<unsigned>(
                parseKnobU64("--jobs", val, 1, 1, ~0U));
        }
    }
    return defaultJobs();
}

TaskPool::TaskPool(unsigned jobs)
{
    if (jobs == 0)
        jobs = 1;
    workers_.reserve(jobs);
    for (unsigned i = 0; i < jobs; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

TaskPool::~TaskPool()
{
    {
        std::lock_guard<std::mutex> lk(mu_);
        stop_ = true;
    }
    work_cv_.notify_all();
    for (auto &t : workers_)
        t.join();
}

void
TaskPool::submit(std::function<void()> fn)
{
    {
        std::lock_guard<std::mutex> lk(mu_);
        ++outstanding_;
        queue_.push_back(std::move(fn));
    }
    work_cv_.notify_one();
}

void
TaskPool::wait()
{
    std::unique_lock<std::mutex> lk(mu_);
    idle_cv_.wait(lk, [this] { return outstanding_ == 0; });
}

void
TaskPool::workerLoop()
{
    std::unique_lock<std::mutex> lk(mu_);
    while (true) {
        work_cv_.wait(lk, [this] { return stop_ || !queue_.empty(); });
        if (queue_.empty()) {
            if (stop_)
                return;
            continue;
        }
        std::function<void()> fn = std::move(queue_.front());
        queue_.pop_front();
        lk.unlock();
        fn();
        lk.lock();
        // A task counts as outstanding until it has *finished*, so a
        // parent that submits children before returning can never let
        // wait() observe an empty pool between the two.
        if (--outstanding_ == 0)
            idle_cv_.notify_all();
    }
}

std::vector<ExperimentResult>
runSweepsParallel(const RunSpec &spec, const std::vector<AppSpec> &apps)
{
    const std::vector<PolicyKind> policies =
        spec.policies.empty() ? paperPolicies() : spec.policies;
    const std::size_t np = policies.size();
    std::vector<ExperimentResult> out(apps.size() * np);
    for (std::size_t a = 0; a < apps.size(); ++a) {
        for (std::size_t p = 0; p < np; ++p) {
            out[a * np + p].app = apps[a].name;
            out[a * np + p].policy = policies[p];
        }
    }

    TaskPool pool(spec.jobs);
    for (std::size_t a = 0; a < apps.size(); ++a) {
        // Stage 1 per app: the SCOMA calibration run — executed (and
        // in record mode captured to the app's trace file), or in
        // replay mode re-issued from it.  Its caps feed the capped
        // policies, so those only enter the queue once the
        // calibration task finishes.
        pool.submit([&spec, &apps, &policies, &pool, &out, a, np] {
            const AppSpec &app = apps[a];
            const std::string trace_path =
                spec.frontend == FrontendKind::Exec
                    ? std::string()
                    : tracePathFor(spec.traceFile, app.name,
                                   apps.size());
            RunSpec calib{.machine = calibrationConfig(spec.machine),
                          .frontend = spec.frontend,
                          .traceFile = trace_path};
            RunReport scoma_report;
            const RunMetrics scoma =
                runOnce(calib, app, &scoma_report);
            auto caps = std::make_shared<std::vector<std::uint64_t>>(
                scoma70Caps(scoma, spec.capFraction));
            for (std::size_t p = 0; p < np; ++p) {
                const std::size_t slot = a * np + p;
                const PolicyKind pk = policies[p];
                if (pk == PolicyKind::Scoma) {
                    out[slot].metrics = scoma;
                    out[slot].report = scoma_report;
                    continue;
                }
                // Stage 2: independent runs, one task each.  Distinct
                // slots, so no synchronization on the results needed.
                // Record degrades to exec here: only the calibration
                // run is captured (docs/TRACE.md).
                pool.submit([&spec, &app, &out, caps, trace_path,
                             slot, pk] {
                    RunSpec run{
                        .machine =
                            policyConfig(spec.machine, pk, *caps),
                        .frontend =
                            spec.frontend == FrontendKind::Replay
                                ? FrontendKind::Replay
                                : FrontendKind::Exec,
                        .traceFile = trace_path};
                    out[slot].metrics =
                        runOnce(run, app, &out[slot].report);
                });
            }
        });
    }
    pool.wait();
    return out;
}

} // namespace prism
