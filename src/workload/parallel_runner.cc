#include "workload/parallel_runner.hh"

#include <cstdlib>
#include <cstring>
#include <memory>
#include <utility>

#include "sim/logging.hh"

namespace prism {

unsigned
defaultJobs()
{
    if (const char *e = std::getenv("PRISM_JOBS")) {
        char *end = nullptr;
        long v = std::strtol(e, &end, 10);
        if (end == e || *end != '\0' || v < 1)
            fatal("PRISM_JOBS='%s' is not a positive integer", e);
        return static_cast<unsigned>(v);
    }
    unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

unsigned
jobsFromArgs(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        const char *val = nullptr;
        if (!std::strcmp(argv[i], "--jobs") && i + 1 < argc)
            val = argv[i + 1];
        else if (!std::strncmp(argv[i], "--jobs=", 7))
            val = argv[i] + 7;
        if (val) {
            char *end = nullptr;
            long v = std::strtol(val, &end, 10);
            if (end == val || *end != '\0' || v < 1)
                fatal("--jobs '%s' is not a positive integer", val);
            return static_cast<unsigned>(v);
        }
    }
    return defaultJobs();
}

TaskPool::TaskPool(unsigned jobs)
{
    if (jobs == 0)
        jobs = 1;
    workers_.reserve(jobs);
    for (unsigned i = 0; i < jobs; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

TaskPool::~TaskPool()
{
    {
        std::lock_guard<std::mutex> lk(mu_);
        stop_ = true;
    }
    work_cv_.notify_all();
    for (auto &t : workers_)
        t.join();
}

void
TaskPool::submit(std::function<void()> fn)
{
    {
        std::lock_guard<std::mutex> lk(mu_);
        ++outstanding_;
        queue_.push_back(std::move(fn));
    }
    work_cv_.notify_one();
}

void
TaskPool::wait()
{
    std::unique_lock<std::mutex> lk(mu_);
    idle_cv_.wait(lk, [this] { return outstanding_ == 0; });
}

void
TaskPool::workerLoop()
{
    std::unique_lock<std::mutex> lk(mu_);
    while (true) {
        work_cv_.wait(lk, [this] { return stop_ || !queue_.empty(); });
        if (queue_.empty()) {
            if (stop_)
                return;
            continue;
        }
        std::function<void()> fn = std::move(queue_.front());
        queue_.pop_front();
        lk.unlock();
        fn();
        lk.lock();
        // A task counts as outstanding until it has *finished*, so a
        // parent that submits children before returning can never let
        // wait() observe an empty pool between the two.
        if (--outstanding_ == 0)
            idle_cv_.notify_all();
    }
}

std::vector<ExperimentResult>
runSweepsParallel(const MachineConfig &base,
                  const std::vector<AppSpec> &apps,
                  const std::vector<PolicyKind> &policies,
                  unsigned jobs, double cap_fraction)
{
    const std::size_t np = policies.size();
    std::vector<ExperimentResult> out(apps.size() * np);
    for (std::size_t a = 0; a < apps.size(); ++a) {
        for (std::size_t p = 0; p < np; ++p) {
            out[a * np + p].app = apps[a].name;
            out[a * np + p].policy = policies[p];
        }
    }

    TaskPool pool(jobs);
    for (std::size_t a = 0; a < apps.size(); ++a) {
        // Stage 1 per app: the SCOMA calibration run.  Its caps feed
        // the capped policies, so those only enter the queue once the
        // calibration task finishes.
        pool.submit([&base, &apps, &policies, &pool, &out, a, np,
                     cap_fraction] {
            const AppSpec &app = apps[a];
            RunReport scoma_report;
            RunMetrics scoma =
                runOnce(calibrationConfig(base), app, &scoma_report);
            auto caps = std::make_shared<std::vector<std::uint64_t>>(
                scoma70Caps(scoma, cap_fraction));
            for (std::size_t p = 0; p < np; ++p) {
                const std::size_t slot = a * np + p;
                const PolicyKind pk = policies[p];
                if (pk == PolicyKind::Scoma) {
                    out[slot].metrics = scoma;
                    out[slot].report = scoma_report;
                    continue;
                }
                // Stage 2: independent runs, one task each.  Distinct
                // slots, so no synchronization on the results needed.
                pool.submit([&base, &app, &out, caps, slot, pk] {
                    out[slot].metrics = runOnce(
                        policyConfig(base, pk, *caps), app,
                        &out[slot].report);
                });
            }
        });
    }
    pool.wait();
    return out;
}

} // namespace prism
