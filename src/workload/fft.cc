#include "workload/fft.hh"

namespace prism {

FftWorkload::FftWorkload(const Params &p) : params_(p)
{
    prism_assert(params_.logN % 2 == 0 && params_.logN >= 6,
                 "FFT needs an even logN >= 6");
}

std::string
FftWorkload::sizeDesc() const
{
    return std::to_string(1u << params_.logN) + " complex doubles";
}

void
FftWorkload::setup(Machine &m)
{
    n_ = 1u << params_.logN;
    rows_ = 1u << (params_.logN / 2);
    cols_ = n_ / rows_;

    const std::uint64_t elem = 16; // complex double
    GlobalArena arena(m, /*key=*/0xFF7, 3 * std::uint64_t{n_} * elem +
                                            4 * kPageBytes);
    src_ = SimArray{arena.allocPages(std::uint64_t{n_} * elem), elem};
    dst_ = SimArray{arena.allocPages(std::uint64_t{n_} * elem), elem};
    roots_ = SimArray{arena.allocPages(std::uint64_t{n_} * elem), elem};
}

CoTask
FftWorkload::transpose(Proc &p, const SimArray &from, const SimArray &to,
                       std::uint32_t r0, std::uint32_t r1)
{
    // to[r][c] = from[c][r]: column-strided reads (all-to-all).
    for (std::uint32_t r = r0; r < r1; ++r) {
        for (std::uint32_t c = 0; c < cols_; ++c) {
            co_await p.read(from.at(std::uint64_t{c} * cols_ + r));
            co_await p.write(to.at(std::uint64_t{r} * cols_ + c));
            p.compute(1);
        }
    }
}

CoTask
FftWorkload::fftRows(Proc &p, const SimArray &a, std::uint32_t r0,
                     std::uint32_t r1)
{
    const std::uint32_t passes = LineGeometry::log2i(cols_);
    for (std::uint32_t r = r0; r < r1; ++r) {
        for (std::uint32_t pass = 0; pass < passes; ++pass) {
            for (std::uint32_t c = 0; c < cols_; ++c) {
                const std::uint64_t i = std::uint64_t{r} * cols_ + c;
                co_await p.read(a.at(i));
                co_await p.read(roots_.at((std::uint64_t{c} << pass) &
                                          (n_ - 1)));
                co_await p.write(a.at(i));
                p.compute(4);
            }
        }
    }
}

CoTask
FftWorkload::body(Proc &p, std::uint32_t tid, std::uint32_t nt)
{
    const std::uint32_t per = rows_ / nt;
    const std::uint32_t r0 = tid * per;
    const std::uint32_t r1 = (tid + 1 == nt) ? rows_ : r0 + per;

    // Parallel init: each processor writes its rows and roots slice.
    for (std::uint32_t r = r0; r < r1; ++r) {
        for (std::uint32_t c = 0; c < cols_; ++c) {
            co_await p.write(src_.at(std::uint64_t{r} * cols_ + c));
            co_await p.write(roots_.at(std::uint64_t{r} * cols_ + c));
            p.compute(2);
        }
    }

    co_await p.barrier(0);
    if (tid == 0)
        co_await p.beginParallel();
    co_await p.barrier(0);

    co_await transpose(p, src_, dst_, r0, r1);
    co_await p.barrier(0);
    co_await fftRows(p, dst_, r0, r1);
    co_await p.barrier(0);

    // Twiddle multiplication.
    for (std::uint32_t r = r0; r < r1; ++r) {
        for (std::uint32_t c = 0; c < cols_; ++c) {
            const std::uint64_t i = std::uint64_t{r} * cols_ + c;
            co_await p.read(roots_.at(i));
            co_await p.read(dst_.at(i));
            co_await p.write(dst_.at(i));
            p.compute(4);
        }
    }
    co_await p.barrier(0);

    co_await transpose(p, dst_, src_, r0, r1);
    co_await p.barrier(0);
    co_await fftRows(p, src_, r0, r1);
    co_await p.barrier(0);
    co_await transpose(p, src_, dst_, r0, r1);
    co_await p.barrier(0);

    if (tid == 0)
        co_await p.endParallel();
}

} // namespace prism
