#include "workload/ocean.hh"

namespace prism {

OceanWorkload::OceanWorkload(const Params &p) : params_(p)
{
    prism_assert(params_.n >= 34, "ocean grid too small");
}

std::string
OceanWorkload::sizeDesc() const
{
    return std::to_string(params_.n) + "x" + std::to_string(params_.n) +
           " ocean grid";
}

void
OceanWorkload::setup(Machine &m)
{
    const std::uint64_t gb =
        std::uint64_t{params_.n} * params_.n * 8;
    GlobalArena arena(m, /*key=*/0x0CEA,
                      kGrids * gb + (kGrids + 2) * kPageBytes);
    grids_.clear();
    for (std::uint32_t g = 0; g < kGrids; ++g)
        grids_.push_back(SimArray{arena.allocPages(gb), 8});
}

CoTask
OceanWorkload::relax(Proc &p, std::uint32_t grid, std::uint32_t i0,
                     std::uint32_t i1, std::uint32_t colour)
{
    const std::uint32_t n = params_.n;
    for (std::uint32_t i = i0; i < i1; ++i) {
        for (std::uint32_t j = 1 + ((i + colour) & 1); j < n - 1;
             j += 2) {
            co_await p.read(at(grid, i - 1, j));
            co_await p.read(at(grid, i + 1, j));
            co_await p.read(at(grid, i, j - 1));
            co_await p.read(at(grid, i, j + 1));
            co_await p.write(at(grid, i, j));
            p.compute(6);
        }
    }
}

CoTask
OceanWorkload::stencil(Proc &p, std::uint32_t src, std::uint32_t dst,
                       std::uint32_t i0, std::uint32_t i1)
{
    const std::uint32_t n = params_.n;
    for (std::uint32_t i = i0; i < i1; ++i) {
        for (std::uint32_t j = 1; j < n - 1; ++j) {
            co_await p.read(at(src, i - 1, j));
            co_await p.read(at(src, i + 1, j));
            co_await p.read(at(src, i, j));
            co_await p.write(at(dst, i, j));
            p.compute(5);
        }
    }
}

CoTask
OceanWorkload::body(Proc &p, std::uint32_t tid, std::uint32_t nt)
{
    const std::uint32_t n = params_.n;
    const std::uint32_t interior = n - 2;
    const std::uint32_t per = interior / nt;
    const std::uint32_t i0 = 1 + tid * per;
    const std::uint32_t i1 = (tid + 1 == nt) ? n - 1 : i0 + per;

    // Parallel init: each processor writes its rows of every grid.
    for (std::uint32_t g = 0; g < kGrids; ++g) {
        const std::uint32_t lo = (tid == 0) ? 0 : i0;
        const std::uint32_t hi = (tid + 1 == nt) ? n : i1;
        for (std::uint32_t i = lo; i < hi; ++i) {
            for (std::uint32_t j = 0; j < n; ++j) {
                co_await p.write(at(g, i, j));
                p.compute(1);
            }
        }
    }

    co_await p.barrier(0);
    if (tid == 0)
        co_await p.beginParallel();
    co_await p.barrier(0);

    for (std::uint32_t t = 0; t < params_.timesteps; ++t) {
        // Red-black SOR on the two stream-function grids.
        for (std::uint32_t g = 0; g < 2; ++g) {
            for (std::uint32_t s = 0; s < params_.relaxSweeps; ++s) {
                co_await relax(p, g, i0, i1, 0);
                co_await p.barrier(0);
                co_await relax(p, g, i0, i1, 1);
                co_await p.barrier(0);
            }
        }
        // Stencil passes coupling the remaining grids.
        co_await stencil(p, 0, 2, i0, i1);
        co_await p.barrier(0);
        co_await stencil(p, 1, 3, i0, i1);
        co_await p.barrier(0);
        co_await stencil(p, 2, 4, i0, i1);
        co_await p.barrier(0);
    }

    if (tid == 0)
        co_await p.endParallel();
}

} // namespace prism
