/**
 * @file
 * LU: blocked dense LU decomposition (SPLASH-2 contiguous-blocks
 * style).  The n x n matrix is stored block-major; blocks are assigned
 * to processors in a 2-D scatter.  Each step factors the diagonal
 * block, updates the perimeter, then the interior, with barriers
 * between the three sub-phases.
 */

#ifndef PRISM_WORKLOAD_LU_HH
#define PRISM_WORKLOAD_LU_HH

#include "workload/workload.hh"

namespace prism {

/** LU workload (paper: 512x512 matrix, 16x16 blocks). */
class LuWorkload : public Workload
{
  public:
    struct Params {
        std::uint32_t n = 512; //!< matrix dimension
        std::uint32_t b = 16;  //!< block dimension
    };

    LuWorkload() : LuWorkload(Params{}) {}
    explicit LuWorkload(const Params &p);

    const char *name() const override { return "LU"; }
    std::string sizeDesc() const override;
    void setup(Machine &m) override;
    CoTask body(Proc &p, std::uint32_t tid, std::uint32_t nt) override;

  private:
    /** Owner of block (bi, bj) in the 2-D scatter. */
    std::uint32_t owner(std::uint32_t bi, std::uint32_t bj) const;

    /** Address of element (i, j) inside block (bi, bj). */
    VAddr elem(std::uint32_t bi, std::uint32_t bj, std::uint32_t i,
               std::uint32_t j) const;

    CoTask factorDiag(Proc &p, std::uint32_t k);
    CoTask updateBlock(Proc &p, std::uint32_t bi, std::uint32_t bj,
                       std::uint32_t k);

    Params params_;
    std::uint32_t nb_ = 0; //!< blocks per dimension
    std::uint32_t pr_ = 0; //!< processor grid rows
    std::uint32_t pc_ = 0; //!< processor grid cols
    SimArray a_;
};

} // namespace prism

#endif // PRISM_WORKLOAD_LU_HH
