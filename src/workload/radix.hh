/**
 * @file
 * Radix: parallel radix sort (SPLASH-2 style).
 *
 * Each pass over one digit: local histogram of the owned keys
 * (private), a shared histogram/prefix phase, then the all-to-all
 * permutation that writes each key to its destination in the other
 * array — the classic scattered-write communication pattern.  Real
 * keys are kept host-side so the permutation is genuine.
 */

#ifndef PRISM_WORKLOAD_RADIX_HH
#define PRISM_WORKLOAD_RADIX_HH

#include <vector>

#include "workload/workload.hh"

namespace prism {

/** Radix workload (paper: 1M integer keys, radix 1K). */
class RadixWorkload : public Workload
{
  public:
    struct Params {
        std::uint32_t keys = 1u << 20; //!< number of keys
        std::uint32_t radix = 1024;
        std::uint32_t keyBits = 30;
        std::uint64_t seed = 42;
    };

    RadixWorkload() : RadixWorkload(Params{}) {}
    explicit RadixWorkload(const Params &p);

    const char *name() const override { return "Radix"; }
    std::string sizeDesc() const override;
    void setup(Machine &m) override;
    CoTask body(Proc &p, std::uint32_t tid, std::uint32_t nt) override;

    /** Host-side sorted keys after a run (correctness checking). */
    const std::vector<std::uint32_t> &
    result() const
    {
        return (passes_ % 2 == 0) ? hostA_ : hostB_;
    }

  private:
    Params params_;
    std::uint32_t passes_ = 0;
    SimArray keysA_;
    SimArray keysB_;
    SimArray globalHist_; //!< nt x radix shared histogram
    std::vector<std::uint32_t> hostA_; //!< real keys (host side)
    std::vector<std::uint32_t> hostB_;
    std::vector<std::uint64_t> ranks_; //!< per-(tid,digit) ranks
};

} // namespace prism

#endif // PRISM_WORKLOAD_RADIX_HH
