#include "workload/kvstore.hh"

#include <cmath>
#include <cstdio>

namespace prism {

namespace {

/** Cycles charged per request for parsing/hashing/dispatch. */
constexpr Cycles kRequestOverhead = 8;

/** SplitMix64 finalizer: scatters ranks across the keyspace. */
std::uint64_t
mix64(std::uint64_t z)
{
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

/** Cumulative percentage thresholds for (read, update, insert). */
struct MixRatios {
    std::uint32_t read;
    std::uint32_t update;
    std::uint32_t insert; // remainder up to 100 is scan
};

MixRatios
mixRatios(KvMix m)
{
    switch (m) {
      case KvMix::A: return {50, 100, 100};
      case KvMix::B: return {95, 100, 100};
      case KvMix::C: return {100, 100, 100};
      case KvMix::D: return {95, 95, 100};
      case KvMix::E: return {0, 0, 5}; // 5% insert, 95% scan
    }
    return {100, 100, 100};
}

} // namespace

const char *
kvMixName(KvMix m)
{
    switch (m) {
      case KvMix::A: return "A";
      case KvMix::B: return "B";
      case KvMix::C: return "C";
      case KvMix::D: return "D";
      case KvMix::E: return "E";
    }
    return "?";
}

bool
kvMixFromString(const char *s, KvMix *out)
{
    if (!s || s[0] == '\0' || s[1] != '\0')
        return false;
    switch (s[0]) {
      case 'a': case 'A': *out = KvMix::A; return true;
      case 'b': case 'B': *out = KvMix::B; return true;
      case 'c': case 'C': *out = KvMix::C; return true;
      case 'd': case 'D': *out = KvMix::D; return true;
      case 'e': case 'E': *out = KvMix::E; return true;
    }
    return false;
}

ZipfianSampler::ZipfianSampler(std::uint64_t n, double theta)
    : n_(n), theta_(theta)
{
    prism_assert(n_ >= 1, "Zipfian sampler over an empty keyspace");
    prism_assert(theta_ >= 0.0 && theta_ < 1.0,
                 "Zipfian theta must be in [0, 1)");
    if (theta_ == 0.0)
        return; // uniform: no harmonic precomputation needed
    double zetan = 0.0;
    for (std::uint64_t i = 1; i <= n_; ++i)
        zetan += 1.0 / std::pow(static_cast<double>(i), theta_);
    zetan_ = zetan;
    alpha_ = 1.0 / (1.0 - theta_);
    const double zeta2 = 1.0 + std::pow(0.5, theta_);
    eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_),
                           1.0 - theta_)) /
           (1.0 - zeta2 / zetan_);
}

std::uint64_t
ZipfianSampler::operator()(Rng &rng) const
{
    if (theta_ == 0.0)
        return rng.below(n_);
    const double u = rng.uniform();
    const double uz = u * zetan_;
    if (uz < 1.0)
        return 0;
    if (uz < 1.0 + std::pow(0.5, theta_))
        return 1;
    auto rank = static_cast<std::uint64_t>(
        static_cast<double>(n_) *
        std::pow(eta_ * u - eta_ + 1.0, alpha_));
    return rank < n_ ? rank : n_ - 1;
}

std::string
KvStoreWorkload::sizeDesc() const
{
    char buf[128];
    std::snprintf(buf, sizeof(buf),
                  "%llu keys x %llu reqs, mix %s, zipf %.2f",
                  static_cast<unsigned long long>(params_.keys),
                  static_cast<unsigned long long>(params_.requests),
                  kvMixName(params_.mix), params_.theta);
    return buf;
}

void
KvStoreWorkload::setup(Machine &m)
{
    prism_assert(params_.valueBytes >= 8 &&
                     params_.valueBytes <= kPageBytes,
                 "KV valueBytes must be in [8, page size]");
    prism_assert(params_.keys >= 1 && params_.requests >= 1,
                 "KV needs at least one key and one request");

    nParts_ = m.numNodes();
    const std::uint32_t nprocs = m.numProcs();
    insertCapPerProc_ = params_.requests / nprocs + 2;
    const std::uint64_t max_keys =
        params_.keys + std::uint64_t{nprocs} * insertCapPerProc_;
    const std::uint64_t slots_per_part =
        (max_keys + nParts_ - 1) / nParts_;

    idxSlotsPerPage_ = kPageBytes / 8;
    valSlotsPerPage_ = kPageBytes / params_.valueBytes;
    idxPagesPerPart_ =
        (slots_per_part + idxSlotsPerPage_ - 1) / idxSlotsPerPage_;
    valPagesPerPart_ =
        (slots_per_part + valSlotsPerPage_ - 1) / valSlotsPerPage_;
    valueLines_ = (params_.valueBytes + 63) / 64;

    // +nParts_ pages of slack: align_ is only known once the segment
    // id is, and costs at most nParts_ - 1 pages.
    const std::uint64_t pages =
        nParts_ * (idxPagesPerPart_ + valPagesPerPart_) + nParts_;
    gsid_ = m.shmget(/*key=*/0x4B57, pages * kPageBytes);
    m.shmatAll(kSharedVsid, gsid_);

    // Partition p's pages must home on node p: staticHomeOf is
    // gpage % numNodes, so skip pages until the region base is
    // 0 mod nParts_, then stride each partition's pages by nParts_.
    const std::uint64_t base_mod =
        (gsid_ << kPageNumBits) % nParts_;
    align_ = (nParts_ - base_mod) % nParts_;

    sampler_.clear();
    sampler_.emplace_back(params_.keys, params_.theta);
    tallies_.assign(nprocs, Tally{});

    MetricRegistry &reg = m.metricRegistry();
    reg.bindLate({"workload", kMachineWide, "kv.read.latency",
                  "cycles"},
                 &readLat_, "KV read request latency");
    reg.bindLate({"workload", kMachineWide, "kv.update.latency",
                  "cycles"},
                 &updateLat_, "KV update request latency");
    reg.bindLate({"workload", kMachineWide, "kv.insert.latency",
                  "cycles"},
                 &insertLat_, "KV insert request latency");
    reg.bindLate({"workload", kMachineWide, "kv.scan.latency",
                  "cycles"},
                 &scanLat_, "KV scan request latency");
}

VAddr
KvStoreWorkload::indexAddr(std::uint64_t key) const
{
    const std::uint64_t part = key % nParts_;
    const std::uint64_t slot = key / nParts_;
    const std::uint64_t page =
        align_ + (slot / idxSlotsPerPage_) * nParts_ + part;
    return VAddr{(kSharedVsid << kSegShift) + page * kPageBytes +
                 (slot % idxSlotsPerPage_) * 8};
}

VAddr
KvStoreWorkload::valueAddr(std::uint64_t key) const
{
    const std::uint64_t part = key % nParts_;
    const std::uint64_t slot = key / nParts_;
    const std::uint64_t val_base =
        align_ + nParts_ * idxPagesPerPart_;
    const std::uint64_t page =
        val_base + (slot / valSlotsPerPage_) * nParts_ + part;
    return VAddr{(kSharedVsid << kSegShift) + page * kPageBytes +
                 (slot % valSlotsPerPage_) * params_.valueBytes};
}

GPage
KvStoreWorkload::gpageOf(VAddr va) const
{
    const std::uint64_t off = va.raw - (kSharedVsid << kSegShift);
    return (gsid_ << kPageNumBits) + (off >> kPageShift);
}

std::uint64_t
KvStoreWorkload::keyOf(std::uint64_t rank, std::uint64_t epoch) const
{
    // Scramble rank -> key id (YCSB-style hashed key order) so the
    // Zipfian head is scattered across partitions; the churn epoch
    // shifts the whole mapping, rotating the hot set onto new keys.
    return mix64(rank + 1 + epoch * 0x9e3779b97f4a7c15ULL) %
           params_.keys;
}

CoTask
KvStoreWorkload::opRead(Proc &p, std::uint64_t key)
{
    co_await p.read(indexAddr(key));
    const VAddr v = valueAddr(key);
    for (std::uint64_t l = 0; l < valueLines_; ++l)
        co_await p.read(VAddr{v.raw + l * 64});
}

CoTask
KvStoreWorkload::opWrite(Proc &p, std::uint64_t key)
{
    co_await p.write(indexAddr(key));
    const VAddr v = valueAddr(key);
    for (std::uint64_t l = 0; l < valueLines_; ++l)
        co_await p.write(VAddr{v.raw + l * 64});
}

CoTask
KvStoreWorkload::body(Proc &p, std::uint32_t tid, std::uint32_t nt)
{
    // Load phase: populate the initial keyspace, keys striped by tid
    // (touches every partition from every node, as a real bulk load
    // would).  Unmeasured: runs before beginParallel.
    for (std::uint64_t k = tid; k < params_.keys; k += nt) {
        co_await opWrite(p, k);
        p.compute(1);
    }

    co_await p.barrier(0);
    if (tid == 0)
        co_await p.beginParallel();
    co_await p.barrier(0);

    const MixRatios mix = mixRatios(params_.mix);
    const std::uint64_t per = params_.requests / nt;
    const std::uint64_t reqs =
        per + (tid < params_.requests % nt ? 1 : 0);
    Rng rng(params_.seed ^ mix64(tid + 1));
    Tally &tally = tallies_[tid];
    const Tick t0 = p.localNow();

    for (std::uint64_t i = 0; i < reqs; ++i) {
        // Open-loop pacing: arrival i is scheduled in absolute time,
        // independent of how long earlier requests took.  Idle until
        // the arrival if we are ahead; if we are behind, the backlog
        // delay is part of the measured latency (no coordinated
        // omission).
        const Tick arrival =
            t0 + i * Tick{params_.interarrival};
        const Tick now = p.localNow();
        if (now < arrival)
            p.compute(arrival - now);

        const std::uint64_t epoch =
            params_.churnPeriod ? i / params_.churnPeriod : 0;
        const std::uint64_t pick = rng.below(100);
        p.compute(kRequestOverhead);

        if (pick < mix.read) {
            const std::uint64_t key = keyOf(sampler_[0](rng), epoch);
            co_await opRead(p, key);
            tally.read.sample(p.localNow() - arrival);
        } else if (pick < mix.update) {
            const std::uint64_t key = keyOf(sampler_[0](rng), epoch);
            co_await opWrite(p, key);
            tally.update.sample(p.localNow() - arrival);
        } else if (pick < mix.insert) {
            prism_assert(tally.inserted < insertCapPerProc_,
                         "KV insert capacity exceeded");
            const std::uint64_t key =
                params_.keys +
                std::uint64_t{tid} * insertCapPerProc_ +
                tally.inserted++;
            co_await p.read(indexAddr(key)); // existence probe
            co_await opWrite(p, key);
            tally.insert.sample(p.localNow() - arrival);
        } else {
            const std::uint64_t start =
                keyOf(sampler_[0](rng), epoch);
            const std::uint64_t len = rng.range(1, params_.scanMax);
            for (std::uint64_t j = 0; j < len; ++j) {
                co_await opRead(p,
                                (start + j) % params_.keys);
                p.compute(1);
            }
            tally.scan.sample(p.localNow() - arrival);
        }
    }

    co_await p.barrier(0);

    if (tid == 0) {
        // Fold the tid-disjoint tallies in tid order (deterministic
        // regardless of scheduling or shard count).
        for (const Tally &t : tallies_) {
            readLat_.merge(t.read);
            updateLat_.merge(t.update);
            insertLat_.merge(t.insert);
            scanLat_.merge(t.scan);
        }
        co_await p.endParallel();
    }
}

KvStoreWorkload::Params
kvParamsFor(AppScale scale)
{
    KvStoreWorkload::Params p;
    switch (scale) {
      // interarrival targets moderate load (~0.7 utilization at the
      // SCOMA service rate), so the latency histograms measure the
      // memory system, not an unbounded arrival backlog; capped
      // policies with slower service still build real queues.
      case AppScale::Paper:
        p.keys = 1ULL << 17;
        p.requests = 1ULL << 20;
        p.churnPeriod = 8192;
        p.interarrival = 3000;
        break;
      case AppScale::Small:
        p.keys = 1ULL << 14;
        p.requests = 1ULL << 16;
        p.churnPeriod = 512;
        p.interarrival = 3000;
        break;
      case AppScale::Tiny:
        p.keys = 1ULL << 10;
        p.requests = 1ULL << 13;
        p.churnPeriod = 128;
        p.interarrival = 3000;
        break;
    }
    return p;
}

} // namespace prism
