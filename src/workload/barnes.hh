/**
 * @file
 * Barnes: hierarchical Barnes-Hut N-body (SPLASH style).
 *
 * A real octree is built over host-side body positions each
 * iteration; tree build uses per-cell locks (write sharing), the
 * force phase traverses the tree with the opening criterion
 * (irregular, wide read sharing of cells), and the update phase
 * writes the owned bodies.
 */

#ifndef PRISM_WORKLOAD_BARNES_HH
#define PRISM_WORKLOAD_BARNES_HH

#include <vector>

#include "workload/workload.hh"

namespace prism {

/** Barnes workload (paper: 8K particles, 4 iterations). */
class BarnesWorkload : public Workload
{
  public:
    struct Params {
        std::uint32_t bodies = 8192;
        std::uint32_t iters = 4;
        double theta = 1.0; //!< opening criterion
        std::uint64_t seed = 7;
    };

    BarnesWorkload() : BarnesWorkload(Params{}) {}
    explicit BarnesWorkload(const Params &p);

    const char *name() const override { return "Barnes"; }
    std::string sizeDesc() const override;
    void setup(Machine &m) override;
    CoTask body(Proc &p, std::uint32_t tid, std::uint32_t nt) override;

    /**
     * The tree build is an optimistic lock-free descent: a processor
     * reads tree_[idx] and newCell() appends to the shared tree_
     * vector while other processors hold locks on *different* cells.
     * Cell indices feed simulated addresses, so host-thread timing
     * would leak into simulated behaviour; the runner must keep Barnes
     * on the sequential scheduler.
     */
    bool shardSafe() const override { return false; }

  private:
    struct Vec {
        double x = 0, y = 0, z = 0;
    };

    struct Cell {
        int child[8];
        Vec center;
        double half = 0;
        bool leaf = false;
        int bodyIdx = -1;
        Vec com;
        double mass = 0;
    };

    int newCell(const Vec &center, double half, bool leaf, int body);
    int octantOf(const Cell &c, const Vec &pos) const;
    Vec childCenter(const Cell &c, int oct) const;
    void resetTree();
    void computeMass(int idx);

    CoTask insertBody(Proc &p, std::uint32_t b);
    CoTask forceOnBody(Proc &p, std::uint32_t b);

    Params params_;
    SimArray bodies_; //!< one record (pos/vel/acc) per body
    SimArray cells_;  //!< one record per tree cell
    std::vector<Vec> pos_;
    std::vector<Vec> vel_;
    std::vector<Cell> tree_;
    std::uint32_t maxCells_ = 0;
};

} // namespace prism

#endif // PRISM_WORKLOAD_BARNES_HH
