#include "workload/water.hh"

#include <cmath>

namespace prism {

std::string
WaterBase::sizeDesc() const
{
    return std::to_string(params_.molecules) + " molecules, " +
           std::to_string(params_.iters) + " iters";
}

void
WaterBase::setup(Machine &m)
{
    const std::uint64_t mb = std::uint64_t{params_.molecules} * 128;
    const std::uint64_t fb = std::uint64_t{params_.molecules} * 64;
    GlobalArena arena(m, /*key=*/0x3A7E4, mb + fb + 8 * kPageBytes);
    mols_ = SimArray{arena.allocPages(mb), 128};
    forces_ = SimArray{arena.allocPages(fb), 64};

    Rng rng(params_.seed);
    pos_.resize(params_.molecules);
    for (auto &p : pos_)
        p = P3{rng.uniform(), rng.uniform(), rng.uniform()};
}

double
WaterBase::dist2(std::uint32_t i, std::uint32_t j) const
{
    auto pbc = [](double d) {
        if (d > 0.5)
            d -= 1.0;
        if (d < -0.5)
            d += 1.0;
        return d;
    };
    const double dx = pbc(pos_[i].x - pos_[j].x);
    const double dy = pbc(pos_[i].y - pos_[j].y);
    const double dz = pbc(pos_[i].z - pos_[j].z);
    return dx * dx + dy * dy + dz * dz;
}

CoTask
WaterBase::intraAndUpdate(Proc &p, std::uint32_t m0, std::uint32_t m1)
{
    for (std::uint32_t i = m0; i < m1; ++i) {
        // Intra-molecule forces: both lines of the record.
        co_await p.read(mols_.at(i));
        co_await p.read(VAddr{mols_.at(i).raw + 64});
        co_await p.write(mols_.at(i));
        co_await p.write(VAddr{mols_.at(i).raw + 64});
        co_await p.read(forces_.at(i));
        co_await p.write(forces_.at(i));
        p.compute(600);
    }
}

CoTask
WaterNsqWorkload::body(Proc &p, std::uint32_t tid, std::uint32_t nt)
{
    const std::uint32_t n = params_.molecules;
    const std::uint32_t per = n / nt;
    const std::uint32_t m0 = tid * per;
    const std::uint32_t m1 = (tid + 1 == nt) ? n : m0 + per;
    const double rc2 = params_.cutoff * params_.cutoff;

    PrivArena priv(p.id());
    SimArray local_acc{priv.alloc(std::uint64_t{per + nt} * 64), 64};

    if (tid == 0) { // master init
        for (std::uint32_t i = 0; i < n; ++i) {
            co_await p.write(mols_.at(i));
            co_await p.write(forces_.at(i));
            p.compute(4);
        }
    }

    co_await p.barrier(0);
    if (tid == 0)
        co_await p.beginParallel();
    co_await p.barrier(0);

    for (std::uint32_t it = 0; it < params_.iters; ++it) {
        co_await intraAndUpdate(p, m0, m1);
        co_await p.barrier(0);

        // All-pairs inter-molecular forces.
        for (std::uint32_t i = m0; i < m1; ++i) {
            for (std::uint32_t j = i + 1; j < n; ++j) {
                co_await p.read(mols_.at(j));
                p.compute(20);
                if (dist2(i, j) >= rc2)
                    continue;
                p.compute(params_.pairCompute);
                // Accumulate own side privately; partner under lock.
                co_await p.write(local_acc.at(i - m0));
                co_await p.lock(5000 + j);
                co_await p.read(forces_.at(j));
                co_await p.write(forces_.at(j));
                co_await p.unlock(5000 + j);
            }
        }
        co_await p.barrier(0);

        // Fold private accumulation into the shared force array and
        // advance positions.
        for (std::uint32_t i = m0; i < m1; ++i) {
            co_await p.read(local_acc.at(i - m0));
            co_await p.read(forces_.at(i));
            co_await p.write(forces_.at(i));
            co_await p.write(mols_.at(i));
            pos_[i].x = std::fmod(pos_[i].x + 0.003 + 1.0, 1.0);
            pos_[i].y = std::fmod(pos_[i].y + 0.001 + 1.0, 1.0);
            pos_[i].z = std::fmod(pos_[i].z + 0.002 + 1.0, 1.0);
            p.compute(60);
        }
        co_await p.barrier(0);
    }

    if (tid == 0)
        co_await p.endParallel();
}

std::uint32_t
WaterSpaWorkload::boxOf(const P3 &pos, std::uint32_t dim) const
{
    auto idx = [dim](double v) {
        auto i = static_cast<std::uint32_t>(v * dim);
        return i >= dim ? dim - 1 : i;
    };
    return (idx(pos.x) * dim + idx(pos.y)) * dim + idx(pos.z);
}

CoTask
WaterSpaWorkload::body(Proc &p, std::uint32_t tid, std::uint32_t nt)
{
    const std::uint32_t n = params_.molecules;
    const double rc2 = params_.cutoff * params_.cutoff;
    const auto dim =
        static_cast<std::uint32_t>(1.0 / params_.cutoff); // boxes/side
    const std::uint32_t boxes = dim * dim * dim;

    if (tid == 0) { // master init
        for (std::uint32_t i = 0; i < n; ++i) {
            co_await p.write(mols_.at(i));
            co_await p.write(forces_.at(i));
            p.compute(4);
        }
    }

    co_await p.barrier(0);
    if (tid == 0)
        co_await p.beginParallel();
    co_await p.barrier(0);

    for (std::uint32_t it = 0; it < params_.iters; ++it) {
        // Rebuild the cell list host-side (each proc its own copy; the
        // real app reads positions it already owns for this).
        std::vector<std::vector<std::uint32_t>> boxlist(boxes);
        for (std::uint32_t i = 0; i < n; ++i)
            boxlist[boxOf(pos_[i], dim)].push_back(i);

        // Spatial ownership: processors own box ranges, giving the
        // neighbour-local sharing of the spatial variant.
        const std::uint32_t bper = (boxes + nt - 1) / nt;
        const std::uint32_t bx0 = tid * bper;
        const std::uint32_t bx1 =
            bx0 + bper > boxes ? boxes : bx0 + bper;

        for (std::uint32_t b = bx0; b < bx1; ++b) {
            const std::uint32_t bz = b % dim;
            const std::uint32_t by = (b / dim) % dim;
            const std::uint32_t bxx = b / (dim * dim);
            for (std::uint32_t i : boxlist[b]) {
                co_await p.read(mols_.at(i));
                // Visit the 27 neighbouring boxes.
                for (int dx = -1; dx <= 1; ++dx) {
                    for (int dy = -1; dy <= 1; ++dy) {
                        for (int dz = -1; dz <= 1; ++dz) {
                            const std::uint32_t nb =
                                ((bxx + dx + dim) % dim * dim +
                                 (by + dy + dim) % dim) *
                                    dim +
                                (bz + dz + dim) % dim;
                            for (std::uint32_t j : boxlist[nb]) {
                                if (j <= i)
                                    continue;
                                co_await p.read(mols_.at(j));
                                p.compute(20);
                                if (dist2(i, j) >= rc2)
                                    continue;
                                p.compute(params_.pairCompute);
                                co_await p.lock(5000 + j);
                                co_await p.read(forces_.at(j));
                                co_await p.write(forces_.at(j));
                                co_await p.unlock(5000 + j);
                            }
                        }
                    }
                }
                co_await p.read(forces_.at(i));
                co_await p.write(forces_.at(i));
            }
        }
        co_await p.barrier(0);

        // Update the molecules in the owned boxes.
        for (std::uint32_t b = bx0; b < bx1; ++b) {
            for (std::uint32_t i : boxlist[b]) {
                co_await p.read(mols_.at(i));
                co_await p.write(mols_.at(i));
                pos_[i].x = std::fmod(pos_[i].x + 0.003 + 1.0, 1.0);
                pos_[i].y = std::fmod(pos_[i].y + 0.001 + 1.0, 1.0);
                pos_[i].z = std::fmod(pos_[i].z + 0.002 + 1.0, 1.0);
                p.compute(20);
            }
        }
        co_await p.barrier(0);
    }

    if (tid == 0)
        co_await p.endParallel();
}

} // namespace prism
