/**
 * @file
 * Scoped metric registry: the run-report observability layer's core.
 *
 * Modules own their counters as RAII `ScopedCounter` /
 * `ScopedHistogram` / `ScopedGauge` handles; binding a handle to the
 * machine's `MetricRegistry` attaches {component, node, name, unit}
 * labels so any consumer can aggregate by label (per node, per
 * component, machine-wide) instead of hand-copying fields.  The value
 * lives *inside* the handle, so hot paths still perform a plain
 * `std::uint64_t` increment; registration costs nothing per increment.
 *
 * Lifetime safety (the reason the old `StatRegistry::add(name, const
 * uint64_t*)` API is gone): handle and registry deregister from each
 * other on destruction, in either order.  When a module is torn down
 * before the registry, the handle's destructor retires its final value
 * into the registry, so label queries never chase a dangling pointer.
 */

#ifndef PRISM_OBS_METRICS_HH
#define PRISM_OBS_METRICS_HH

#include <cstdint>
#include <functional>
#include <optional>
#include <ostream>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "sim/stats.hh"

namespace prism {

/** Node label for machine-wide (not per-node) metrics. */
constexpr std::int32_t kMachineWide = -1;

/** Labels carried by every registered metric. */
struct MetricLabels {
    std::string component; //!< "ctrl", "kernel", "proc", "net", ...
    std::int32_t node = kMachineWide; //!< node id, or kMachineWide
    std::string name;      //!< dotted metric name within the component
    std::string unit;      //!< "count", "cycles", "frames", ...

    /** Canonical flat name: "node3.ctrl.remoteMisses" / "net.messages". */
    std::string fullName() const;
};

class MetricRegistry;

/**
 * A module-owned counter.  Unbound it is just a uint64; bound it is
 * enumerable through the registry under its labels.  Increments stay
 * plain integer adds either way.
 */
class ScopedCounter
{
  public:
    ScopedCounter() = default;
    ~ScopedCounter();

    ScopedCounter(const ScopedCounter &) = delete;
    ScopedCounter &operator=(const ScopedCounter &) = delete;
    ScopedCounter(ScopedCounter &&) = delete;
    ScopedCounter &operator=(ScopedCounter &&) = delete;

    ScopedCounter &operator++() { ++v_; return *this; }
    ScopedCounter &operator+=(std::uint64_t d) { v_ += d; return *this; }
    std::uint64_t value() const { return v_; }
    operator std::uint64_t() const { return v_; } // NOLINT(google-explicit-constructor)

  private:
    friend class MetricRegistry;
    std::uint64_t v_ = 0;
    MetricRegistry *reg_ = nullptr;
    std::uint32_t idx_ = 0;
};

/** A module-owned latency histogram with registry labels. */
class ScopedHistogram
{
  public:
    explicit ScopedHistogram(std::vector<std::uint64_t> bounds)
        : h_(std::move(bounds))
    {
    }
    ~ScopedHistogram();

    ScopedHistogram(const ScopedHistogram &) = delete;
    ScopedHistogram &operator=(const ScopedHistogram &) = delete;
    ScopedHistogram(ScopedHistogram &&) = delete;
    ScopedHistogram &operator=(ScopedHistogram &&) = delete;

    void sample(std::uint64_t v) { h_.sample(v); }

    /** Accumulate a staged tally with identical bounds (shard fold). */
    void merge(const Histogram &other) { h_.merge(other); }

    const Histogram &histogram() const { return h_; }

  private:
    friend class MetricRegistry;
    Histogram h_;
    MetricRegistry *reg_ = nullptr;
    std::uint32_t idx_ = 0;
};

/**
 * A sampled floating-point metric (peaks, utilization fractions):
 * the registry caches the last sampled value, so reads after the
 * owning module is gone return the final sample instead of calling a
 * dead closure.  Call MetricRegistry::sampleGauges() to refresh.
 */
class ScopedGauge
{
  public:
    ScopedGauge() = default;
    ~ScopedGauge();

    ScopedGauge(const ScopedGauge &) = delete;
    ScopedGauge &operator=(const ScopedGauge &) = delete;
    ScopedGauge(ScopedGauge &&) = delete;
    ScopedGauge &operator=(ScopedGauge &&) = delete;

  private:
    friend class MetricRegistry;
    std::function<double()> fn_;
    MetricRegistry *reg_ = nullptr;
    std::uint32_t idx_ = 0;
};

/** The machine's labeled metric registry. */
class MetricRegistry
{
  public:
    MetricRegistry() = default;
    ~MetricRegistry();

    MetricRegistry(const MetricRegistry &) = delete;
    MetricRegistry &operator=(const MetricRegistry &) = delete;

    /**
     * Bind @p c under @p labels.  Duplicate full names and binding
     * after seal() are fatal (registration is a construction-time
     * activity; a duplicate means two modules claimed one identity).
     */
    void bind(MetricLabels labels, ScopedCounter *c,
              std::string desc = "");

    /** Bind a histogram handle under @p labels. */
    void bind(MetricLabels labels, ScopedHistogram *h,
              std::string desc = "");

    /**
     * Bind a *workload-owned* histogram, allowed after seal().  The
     * registry is sealed when Machine construction finishes, but
     * workloads attach their metrics (e.g. per-op-type KV latency)
     * during Workload::setup(), which runs later.  Duplicate full
     * names remain fatal; only the sealed check is waived, and only
     * for histograms — the sealed counter index is never invalidated.
     */
    void bindLate(MetricLabels labels, ScopedHistogram *h,
                  std::string desc = "");

    /** Bind a gauge; @p fn is sampled by sampleGauges(). */
    void bind(MetricLabels labels, ScopedGauge *g,
              std::function<double()> fn, std::string desc = "");

    /**
     * Freeze registration and build the by-name index, making get()
     * O(1) instead of a linear scan.  Called once construction of the
     * owning machine is complete.
     */
    void seal();

    bool sealed() const { return sealed_; }

    /** Counter value by canonical full name. */
    std::optional<std::uint64_t> get(const std::string &full_name) const;

    /** Counter value for exact (component, node, name); 0 if absent. */
    std::uint64_t value(std::string_view component, std::int32_t node,
                        std::string_view name) const;

    /** Sum of @p component 's @p name over every node label. */
    std::uint64_t sum(std::string_view component,
                      std::string_view name) const;

    /**
     * Sum over entries of @p component whose last dotted name segment
     * is @p leaf (aggregates e.g. per-processor "p0.loads".."p3.loads").
     */
    std::uint64_t sumLeaf(std::string_view component,
                          std::string_view leaf) const;

    /** Refresh every live gauge's cached sample. */
    void sampleGauges();

    /** Write "fullName value  # desc" lines, registration order. */
    void dump(std::ostream &os) const;

    std::size_t size() const { return counters_.size(); }

    // --- Enumeration (report building) --------------------------------

    struct CounterEntry {
        MetricLabels labels;
        std::string desc;
        const ScopedCounter *live; //!< nullptr once retired
        std::uint64_t retired;
        std::uint64_t value() const { return live ? live->v_ : retired; }
    };

    struct HistogramEntry {
        MetricLabels labels;
        std::string desc;
        const ScopedHistogram *live;
        Histogram retired{std::vector<std::uint64_t>{}};
        const Histogram &
        histogram() const
        {
            return live ? live->h_ : retired;
        }
    };

    struct GaugeEntry {
        MetricLabels labels;
        std::string desc;
        const ScopedGauge *live;
        double value; //!< last sample (survives retirement)
    };

    const std::vector<CounterEntry> &counters() const { return counters_; }
    const std::vector<HistogramEntry> &histograms() const
    {
        return histograms_;
    }
    const std::vector<GaugeEntry> &gauges() const { return gauges_; }

  private:
    friend class ScopedCounter;
    friend class ScopedHistogram;
    friend class ScopedGauge;

    void checkBindable(const MetricLabels &labels);
    void checkUniqueName(const MetricLabels &labels);
    void bindHistogram(MetricLabels labels, ScopedHistogram *h,
                       std::string desc);

    void retireCounter(std::uint32_t idx, std::uint64_t final_value);
    void retireHistogram(std::uint32_t idx, const Histogram &final_state);
    void retireGauge(std::uint32_t idx);

    std::vector<CounterEntry> counters_;
    std::vector<HistogramEntry> histograms_;
    std::vector<GaugeEntry> gauges_;
    /** All full names ever bound (duplicate detection, all kinds). */
    std::unordered_map<std::string, std::uint8_t> names_;
    /** Sealed O(1) counter lookup: full name -> counters_ index. */
    std::unordered_map<std::string, std::uint32_t> counterIndex_;
    bool sealed_ = false;
};

/**
 * Default latency-histogram bucket bounds: powers of two from 16 to
 * 2^22 cycles.  Quantiles interpolated within a bucket are accurate to
 * the bucket width, i.e. at most a factor-of-two relative error (see
 * Histogram::quantile).
 */
std::vector<std::uint64_t> latencyBounds();

} // namespace prism

#endif // PRISM_OBS_METRICS_HH
