#include "obs/report.hh"

#include <ctime>
#include <map>
#include <sstream>

#include "core/machine.hh"
#include "obs/json.hh"

namespace prism {

namespace {

std::string
utcNow()
{
    std::time_t t = std::time(nullptr);
    std::tm tm{};
    gmtime_r(&t, &tm);
    char buf[32];
    std::strftime(buf, sizeof(buf), "%Y-%m-%dT%H:%M:%SZ", &tm);
    return buf;
}

void
writeValues(JsonWriter &w, const std::vector<RunReport::Value> &vals)
{
    w.beginObject();
    for (const auto &v : vals)
        w.kv(v.name, v.value);
    w.endObject();
}

} // namespace

RunReport
buildRunReport(Machine &m)
{
    RunReport r;
    r.generatedAt = utcNow();

    const MachineConfig &cfg = m.config();
    r.numNodes = cfg.numNodes;
    r.procsPerNode = cfg.procsPerNode;
    r.policy = policyName(cfg.policy);
    r.protocol = protocolName(cfg.protocol);
    r.seed = cfg.seed;
    r.l1Bytes = cfg.l1Bytes;
    r.l2Bytes = cfg.l2Bytes;
    r.lineBytes = cfg.lineBytes;
    r.migrationEnabled = cfg.migrationEnabled;

    r.parallelBeginTick = m.parallelBeginTick();
    r.parallelEndTick = m.parallelEndTick();
    r.metrics = m.metrics(); // also refreshes gauge samples
    r.totalTicks = r.metrics.totalCycles;

    const MetricRegistry &reg = m.metricRegistry();
    r.nodes.resize(m.numNodes());
    for (std::uint32_t n = 0; n < m.numNodes(); ++n)
        r.nodes[n].id = static_cast<std::int32_t>(n);

    for (const auto &e : reg.counters()) {
        RunReport::Value v{e.labels.component + "." + e.labels.name,
                           e.labels.unit, e.value()};
        if (e.labels.node < 0) {
            r.machineCounters.push_back(std::move(v));
        } else {
            r.nodes[static_cast<std::size_t>(e.labels.node)]
                .counters.push_back(std::move(v));
        }
    }
    for (const auto &g : reg.gauges()) {
        RunReport::GaugeValue v{
            g.labels.component + "." + g.labels.name, g.labels.unit,
            g.value};
        if (g.labels.node >= 0) {
            r.nodes[static_cast<std::size_t>(g.labels.node)]
                .gauges.push_back(std::move(v));
        }
    }

    // Merge histograms of the same (component, name) across nodes,
    // preserving first-appearance order for deterministic output.
    std::vector<std::pair<std::string, Histogram>> merged;
    std::map<std::string, std::size_t> index;
    std::map<std::string, std::string> units;
    for (const auto &h : reg.histograms()) {
        const std::string key =
            h.labels.component + "." + h.labels.name;
        auto it = index.find(key);
        if (it == index.end()) {
            index.emplace(key, merged.size());
            units.emplace(key, h.labels.unit);
            merged.emplace_back(key, h.histogram());
        } else {
            merged[it->second].second.merge(h.histogram());
        }
    }
    for (auto &[key, hist] : merged) {
        RunReport::HistogramSummary s;
        const std::size_t dot = key.find('.');
        s.component = key.substr(0, dot);
        s.name = key.substr(dot + 1);
        s.unit = units[key];
        s.count = hist.count();
        s.max = hist.max();
        s.mean = hist.mean();
        s.p50 = hist.quantile(0.50);
        s.p95 = hist.quantile(0.95);
        s.p99 = hist.quantile(0.99);
        s.bounds = hist.bounds();
        s.counts = hist.counts();
        r.histograms.push_back(std::move(s));
    }
    return r;
}

void
RunReport::writeJson(JsonWriter &w) const
{
    w.beginObject();
    w.kv("schema", "prism.run_report");
    w.kv("schemaVersion", kRunReportSchemaVersion);
    w.kv("generatedAt", std::string_view(generatedAt));

    w.key("config");
    w.beginObject();
    w.kv("numNodes", numNodes);
    w.kv("procsPerNode", procsPerNode);
    w.kv("policy", std::string_view(policy));
    w.kv("protocol", std::string_view(protocol));
    w.kv("seed", seed);
    w.kv("l1Bytes", l1Bytes);
    w.kv("l2Bytes", l2Bytes);
    w.kv("lineBytes", lineBytes);
    w.kv("migrationEnabled", migrationEnabled);
    w.kv("frontend", std::string_view(frontend));
    w.kv("traceWorkload", std::string_view(traceWorkload));
    w.kv("traceOps", traceOps);
    w.endObject();

    w.key("phases");
    w.beginObject();
    w.kv("parallelBeginTick", parallelBeginTick);
    w.kv("parallelEndTick", parallelEndTick);
    w.kv("totalTicks", totalTicks);
    w.endObject();

    w.key("metrics");
    w.beginObject();
    w.kv("execCycles", metrics.execCycles);
    w.kv("totalCycles", metrics.totalCycles);
    w.kv("remoteMisses", metrics.remoteMisses);
    w.kv("clientPageOuts", metrics.clientPageOuts);
    w.kv("upgrades", metrics.upgrades);
    w.kv("invalidations", metrics.invalidations);
    w.kv("networkMessages", metrics.networkMessages);
    w.kv("pageFaults", metrics.pageFaults);
    w.kv("framesAllocated", metrics.framesAllocated);
    w.kv("avgUtilization", metrics.avgUtilization);
    w.kv("references", metrics.references);
    w.kv("forwards", metrics.forwards);
    w.kv("migrations", metrics.migrations);
    w.key("clientScomaPeakPerNode");
    w.beginArray();
    for (std::uint64_t v : metrics.clientScomaPeakPerNode)
        w.value(v);
    w.endArray();
    w.endObject();

    w.key("machineCounters");
    writeValues(w, machineCounters);

    w.key("nodes");
    w.beginArray();
    for (const auto &n : nodes) {
        w.beginObject();
        w.kv("id", n.id);
        w.key("counters");
        writeValues(w, n.counters);
        w.key("gauges");
        w.beginObject();
        for (const auto &g : n.gauges)
            w.kv(g.name, g.value);
        w.endObject();
        w.endObject();
    }
    w.endArray();

    w.key("histograms");
    w.beginArray();
    for (const auto &h : histograms) {
        w.beginObject();
        w.kv("component", std::string_view(h.component));
        w.kv("name", std::string_view(h.name));
        w.kv("unit", std::string_view(h.unit));
        w.kv("count", h.count);
        w.kv("max", h.max);
        w.kv("mean", h.mean);
        w.kv("p50", h.p50);
        w.kv("p95", h.p95);
        w.kv("p99", h.p99);
        w.key("bounds");
        w.beginArray();
        for (std::uint64_t b : h.bounds)
            w.value(b);
        w.endArray();
        w.key("counts");
        w.beginArray();
        for (std::uint64_t c : h.counts)
            w.value(c);
        w.endArray();
        w.endObject();
    }
    w.endArray();

    w.endObject();
}

void
RunReport::writeJson(std::ostream &os) const
{
    JsonWriter w(os);
    writeJson(w);
    os << "\n";
}

std::string
RunReport::toJson() const
{
    std::ostringstream os;
    writeJson(os);
    return os.str();
}

} // namespace prism
