#include "obs/trace_sink.hh"

#include <atomic>
#include <cstdlib>
#include <fstream>

#include "core/env.hh"
#include "obs/json.hh"
#include "sim/logging.hh"

namespace prism {

namespace {

/** One live sink per process; parallel sweep workers lose the race. */
std::atomic<bool> g_traceClaimed{false};

} // namespace

std::unique_ptr<TraceSink>
TraceSink::claimFromEnv()
{
    const char *path = resolveEnv("PRISM_TRACE");
    if (path == nullptr || path[0] == '\0')
        return nullptr;
    bool expected = false;
    if (!g_traceClaimed.compare_exchange_strong(expected, true))
        return nullptr;
    return std::unique_ptr<TraceSink>(new TraceSink(path));
}

TraceSink::~TraceSink()
{
    g_traceClaimed.store(false);
}

void
TraceSink::processName(std::int32_t pid, std::string name)
{
    processes_.push_back(ProcessMeta{pid, std::move(name)});
}

void
TraceSink::write() const
{
    std::ofstream os(path_);
    if (!os) {
        warn("PRISM_TRACE: cannot open '%s' for writing", path_.c_str());
        return;
    }
    JsonWriter w(os);
    w.beginObject();
    w.key("traceEvents");
    w.beginArray();
    for (const auto &p : processes_) {
        w.beginObject();
        w.kv("name", "process_name");
        w.kv("ph", "M");
        w.kv("pid", p.pid);
        w.key("args");
        w.beginObject();
        w.kv("name", std::string_view(p.name));
        w.endObject();
        w.endObject();
    }
    for (const auto &e : events_) {
        w.beginObject();
        w.kv("name", std::string_view(e.name));
        w.kv("cat", std::string_view(e.category));
        w.key("ph");
        w.value(std::string_view(&e.phase, 1));
        w.kv("pid", e.pid);
        w.kv("tid", e.tid);
        // Ticks (cycles) are reported as microseconds: Perfetto has no
        // native cycle unit, and a 1:1 mapping keeps durations legible.
        w.kv("ts", e.ts);
        if (e.phase == 'X')
            w.kv("dur", e.dur);
        if (e.phase == 'i')
            w.kv("s", "t");
        w.endObject();
    }
    w.endArray();
    w.kv("displayTimeUnit", "ms");
    w.endObject();
    os << "\n";
}

} // namespace prism
