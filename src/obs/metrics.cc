#include "obs/metrics.hh"

#include "sim/logging.hh"

namespace prism {

std::string
MetricLabels::fullName() const
{
    std::string s;
    if (node >= 0) {
        s += "node";
        s += std::to_string(node);
        s += '.';
    }
    s += component;
    s += '.';
    s += name;
    return s;
}

ScopedCounter::~ScopedCounter()
{
    if (reg_)
        reg_->retireCounter(idx_, v_);
}

ScopedHistogram::~ScopedHistogram()
{
    if (reg_)
        reg_->retireHistogram(idx_, h_);
}

ScopedGauge::~ScopedGauge()
{
    if (reg_)
        reg_->retireGauge(idx_);
}

MetricRegistry::~MetricRegistry()
{
    // Detach live handles so their destructors do not retire into a
    // dead registry (either side may be destroyed first).
    for (auto &e : counters_) {
        if (e.live)
            const_cast<ScopedCounter *>(e.live)->reg_ = nullptr;
    }
    for (auto &e : histograms_) {
        if (e.live)
            const_cast<ScopedHistogram *>(e.live)->reg_ = nullptr;
    }
    for (auto &e : gauges_) {
        if (e.live)
            const_cast<ScopedGauge *>(e.live)->reg_ = nullptr;
    }
}

void
MetricRegistry::checkBindable(const MetricLabels &labels)
{
    if (sealed_) {
        fatal("metric '%s' registered after the registry was sealed",
              labels.fullName().c_str());
    }
    checkUniqueName(labels);
}

void
MetricRegistry::checkUniqueName(const MetricLabels &labels)
{
    auto [it, inserted] = names_.emplace(labels.fullName(), 1);
    (void)it;
    if (!inserted) {
        fatal("duplicate metric registration '%s'",
              labels.fullName().c_str());
    }
}

void
MetricRegistry::bind(MetricLabels labels, ScopedCounter *c,
                     std::string desc)
{
    prism_assert(c != nullptr, "bind of null counter");
    prism_assert(c->reg_ == nullptr, "counter bound twice");
    checkBindable(labels);
    c->reg_ = this;
    c->idx_ = static_cast<std::uint32_t>(counters_.size());
    counters_.push_back(
        CounterEntry{std::move(labels), std::move(desc), c, 0});
}

void
MetricRegistry::bind(MetricLabels labels, ScopedHistogram *h,
                     std::string desc)
{
    checkBindable(labels);
    bindHistogram(std::move(labels), h, std::move(desc));
}

void
MetricRegistry::bindLate(MetricLabels labels, ScopedHistogram *h,
                         std::string desc)
{
    checkUniqueName(labels);
    bindHistogram(std::move(labels), h, std::move(desc));
}

void
MetricRegistry::bindHistogram(MetricLabels labels, ScopedHistogram *h,
                              std::string desc)
{
    prism_assert(h != nullptr, "bind of null histogram");
    prism_assert(h->reg_ == nullptr, "histogram bound twice");
    h->reg_ = this;
    h->idx_ = static_cast<std::uint32_t>(histograms_.size());
    HistogramEntry e;
    e.labels = std::move(labels);
    e.desc = std::move(desc);
    e.live = h;
    histograms_.push_back(std::move(e));
}

void
MetricRegistry::bind(MetricLabels labels, ScopedGauge *g,
                     std::function<double()> fn, std::string desc)
{
    prism_assert(g != nullptr, "bind of null gauge");
    prism_assert(g->reg_ == nullptr, "gauge bound twice");
    checkBindable(labels);
    g->reg_ = this;
    g->idx_ = static_cast<std::uint32_t>(gauges_.size());
    g->fn_ = std::move(fn);
    gauges_.push_back(
        GaugeEntry{std::move(labels), std::move(desc), g, 0.0});
}

void
MetricRegistry::seal()
{
    prism_assert(!sealed_, "registry sealed twice");
    counterIndex_.reserve(counters_.size());
    for (std::uint32_t i = 0; i < counters_.size(); ++i)
        counterIndex_.emplace(counters_[i].labels.fullName(), i);
    sealed_ = true;
}

std::optional<std::uint64_t>
MetricRegistry::get(const std::string &full_name) const
{
    if (sealed_) {
        auto it = counterIndex_.find(full_name);
        if (it == counterIndex_.end())
            return std::nullopt;
        return counters_[it->second].value();
    }
    for (const auto &e : counters_) {
        if (e.labels.fullName() == full_name)
            return e.value();
    }
    return std::nullopt;
}

std::uint64_t
MetricRegistry::value(std::string_view component, std::int32_t node,
                      std::string_view name) const
{
    for (const auto &e : counters_) {
        if (e.labels.node == node && e.labels.component == component &&
            e.labels.name == name) {
            return e.value();
        }
    }
    return 0;
}

std::uint64_t
MetricRegistry::sum(std::string_view component,
                    std::string_view name) const
{
    std::uint64_t s = 0;
    for (const auto &e : counters_) {
        if (e.labels.component == component && e.labels.name == name)
            s += e.value();
    }
    return s;
}

std::uint64_t
MetricRegistry::sumLeaf(std::string_view component,
                        std::string_view leaf) const
{
    std::uint64_t s = 0;
    for (const auto &e : counters_) {
        if (e.labels.component != component)
            continue;
        const std::string &n = e.labels.name;
        std::size_t dot = n.rfind('.');
        std::string_view last =
            dot == std::string::npos
                ? std::string_view(n)
                : std::string_view(n).substr(dot + 1);
        if (last == leaf)
            s += e.value();
    }
    return s;
}

void
MetricRegistry::sampleGauges()
{
    for (auto &e : gauges_) {
        if (e.live)
            e.value = e.live->fn_();
    }
}

void
MetricRegistry::dump(std::ostream &os) const
{
    for (const auto &e : counters_) {
        os << e.labels.fullName() << " " << e.value();
        if (!e.desc.empty())
            os << "  # " << e.desc;
        os << "\n";
    }
}

void
MetricRegistry::retireCounter(std::uint32_t idx,
                              std::uint64_t final_value)
{
    counters_[idx].live = nullptr;
    counters_[idx].retired = final_value;
}

void
MetricRegistry::retireHistogram(std::uint32_t idx,
                                const Histogram &final_state)
{
    histograms_[idx].live = nullptr;
    histograms_[idx].retired = final_state;
}

void
MetricRegistry::retireGauge(std::uint32_t idx)
{
    gauges_[idx].live = nullptr;
}

std::vector<std::uint64_t>
latencyBounds()
{
    std::vector<std::uint64_t> b;
    for (std::uint64_t v = 16; v <= (1ULL << 22); v <<= 1)
        b.push_back(v);
    return b;
}

} // namespace prism
