/**
 * @file
 * Minimal deterministic JSON writer for run reports and traces.
 *
 * Emission is fully deterministic: fixed key order (caller-driven),
 * two-space indentation, and shortest-round-trip doubles via
 * std::to_chars — so two identical runs produce byte-identical
 * documents (the determinism test relies on this).
 */

#ifndef PRISM_OBS_JSON_HH
#define PRISM_OBS_JSON_HH

#include <charconv>
#include <cstdint>
#include <cstdio>
#include <ostream>
#include <string_view>
#include <vector>

#include "sim/logging.hh"

namespace prism {

/** Streaming JSON writer with caller-controlled structure. */
class JsonWriter
{
  public:
    explicit JsonWriter(std::ostream &os) : os_(os) {}

    void
    beginObject()
    {
        preValue();
        os_ << '{';
        stack_.push_back(Frame{true, true});
    }

    void
    endObject()
    {
        prism_assert(!stack_.empty() && stack_.back().object,
                     "endObject outside an object");
        const bool empty = stack_.back().first;
        stack_.pop_back();
        if (!empty)
            newline();
        os_ << '}';
    }

    void
    beginArray()
    {
        preValue();
        os_ << '[';
        stack_.push_back(Frame{false, true});
    }

    void
    endArray()
    {
        prism_assert(!stack_.empty() && !stack_.back().object,
                     "endArray outside an array");
        const bool empty = stack_.back().first;
        stack_.pop_back();
        if (!empty)
            newline();
        os_ << ']';
    }

    void
    key(std::string_view k)
    {
        prism_assert(!stack_.empty() && stack_.back().object,
                     "key outside an object");
        comma();
        newline();
        writeString(k);
        os_ << ": ";
        pendingKey_ = true;
    }

    void
    value(std::string_view s)
    {
        preValue();
        writeString(s);
    }

    void value(const char *s) { value(std::string_view(s)); }

    void
    value(std::uint64_t v)
    {
        preValue();
        os_ << v;
    }

    void value(std::uint32_t v) { value(static_cast<std::uint64_t>(v)); }

    void
    value(std::int64_t v)
    {
        preValue();
        os_ << v;
    }

    void value(std::int32_t v) { value(static_cast<std::int64_t>(v)); }

    void
    value(double v)
    {
        preValue();
        char buf[32];
        auto [p, ec] = std::to_chars(buf, buf + sizeof(buf), v);
        prism_assert(ec == std::errc(), "double-to-chars failed");
        os_ << std::string_view(buf, static_cast<std::size_t>(p - buf));
    }

    void
    value(bool v)
    {
        preValue();
        os_ << (v ? "true" : "false");
    }

    template <typename T>
    void
    kv(std::string_view k, const T &v)
    {
        key(k);
        value(v);
    }

  private:
    struct Frame {
        bool object;
        bool first;
    };

    void
    comma()
    {
        if (!stack_.empty()) {
            if (!stack_.back().first)
                os_ << ',';
            stack_.back().first = false;
        }
    }

    void
    newline()
    {
        os_ << '\n';
        for (std::size_t i = 0; i < stack_.size(); ++i)
            os_ << "  ";
    }

    void
    preValue()
    {
        if (pendingKey_) {
            pendingKey_ = false;
            return;
        }
        if (!stack_.empty()) {
            prism_assert(!stack_.back().object,
                         "bare value inside an object (key required)");
            comma();
            newline();
        }
    }

    void
    writeString(std::string_view s)
    {
        os_ << '"';
        for (char c : s) {
            switch (c) {
              case '"': os_ << "\\\""; break;
              case '\\': os_ << "\\\\"; break;
              case '\n': os_ << "\\n"; break;
              case '\t': os_ << "\\t"; break;
              case '\r': os_ << "\\r"; break;
              default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof(buf), "\\u%04x",
                                  static_cast<unsigned>(
                                      static_cast<unsigned char>(c)));
                    os_ << buf;
                } else {
                    os_ << c;
                }
            }
        }
        os_ << '"';
    }

    std::ostream &os_;
    std::vector<Frame> stack_;
    bool pendingKey_ = false;
};

} // namespace prism

#endif // PRISM_OBS_JSON_HH
