/**
 * @file
 * Chrome-trace (chrome://tracing / Perfetto) event sink, gated by the
 * PRISM_TRACE environment variable.
 *
 * When PRISM_TRACE=<path> is set, the first Machine constructed in the
 * process claims the sink and records transaction spans (coherence
 * transactions, page transfers) and message instants; the trace is
 * written on Machine destruction.  The claim is released when the sink
 * is destroyed, so sequential runs in one process each get a chance to
 * trace (last writer wins on the file).  Parallel sweep workers that
 * lose the claim run untraced — tracing is a single-run debugging
 * tool, not a sweep tool.
 *
 * With PRISM_TRACE unset no sink exists and every recording site is a
 * null-pointer test on a cold path: zero measurable overhead.
 */

#ifndef PRISM_OBS_TRACE_SINK_HH
#define PRISM_OBS_TRACE_SINK_HH

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "sim/types.hh"

namespace prism {

/** Buffers trace events and writes Chrome trace-event JSON. */
class TraceSink
{
  public:
    /**
     * Claim the process-wide trace slot.  Returns the sink when
     * PRISM_TRACE names a path and no other live sink holds the claim,
     * nullptr otherwise.
     */
    static std::unique_ptr<TraceSink> claimFromEnv();

    ~TraceSink();

    TraceSink(const TraceSink &) = delete;
    TraceSink &operator=(const TraceSink &) = delete;

    /** Record a complete ("X") span: [begin, end) ticks. */
    void
    span(std::string_view name, std::string_view category,
         std::int32_t pid, std::int32_t tid, Tick begin, Tick end)
    {
        events_.push_back(Event{std::string(name), std::string(category),
                                pid, tid, begin,
                                end >= begin ? end - begin : 0, 'X'});
    }

    /** Record an instant ("i") event. */
    void
    instant(std::string_view name, std::string_view category,
            std::int32_t pid, std::int32_t tid, Tick at)
    {
        events_.push_back(Event{std::string(name), std::string(category),
                                pid, tid, at, 0, 'i'});
    }

    /** Name a process (node) row in the viewer. */
    void processName(std::int32_t pid, std::string name);

    /** Write the buffered events as Chrome trace JSON to path(). */
    void write() const;

    const std::string &path() const { return path_; }
    std::size_t eventCount() const { return events_.size(); }

  private:
    explicit TraceSink(std::string path) : path_(std::move(path)) {}

    struct Event {
        std::string name;
        std::string category;
        std::int32_t pid;
        std::int32_t tid;
        Tick ts;
        Tick dur;
        char phase;
    };

    struct ProcessMeta {
        std::int32_t pid;
        std::string name;
    };

    std::string path_;
    std::vector<Event> events_;
    std::vector<ProcessMeta> processes_;
};

} // namespace prism

#endif // PRISM_OBS_TRACE_SINK_HH
