/**
 * @file
 * Structured run reports: a schema-versioned, machine-readable record
 * of one simulation run, derived entirely from the labeled metric
 * registry (no hand-copied counter fields).
 *
 * A report carries the machine configuration, the phase timeline, the
 * paper-table metrics, every registered counter broken down per node,
 * sampled gauges, and per-transaction-type latency histograms merged
 * across nodes with p50/p95/p99 quantiles.  writeJson() emits a
 * deterministic JSON document (see docs/OBSERVABILITY.md for the
 * schema); bump kRunReportSchemaVersion on any shape change.
 */

#ifndef PRISM_OBS_REPORT_HH
#define PRISM_OBS_REPORT_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "core/metrics.hh"
#include "sim/types.hh"

namespace prism {

class Machine;
class JsonWriter;

/** Bump on ANY change to the JSON shape (keys added/removed/moved). */
constexpr int kRunReportSchemaVersion = 4;

/** Everything the JSON run report contains, in exporter-ready form. */
struct RunReport {
    std::string generatedAt; //!< wall-clock UTC, ISO 8601

    // --- Machine configuration summary ---------------------------------
    std::uint32_t numNodes = 0;
    std::uint32_t procsPerNode = 0;
    std::string policy;
    std::string protocol; //!< line-protocol scheme (msi|mesi|moesi|mesif)
    std::uint64_t seed = 0;
    std::uint32_t l1Bytes = 0;
    std::uint32_t l2Bytes = 0;
    std::uint32_t lineBytes = 0;
    bool migrationEnabled = false;

    // --- Frontend provenance (docs/TRACE.md) ----------------------------
    std::string frontend = "exec"; //!< exec | record | replay
    std::string traceWorkload;     //!< trace header name (record/replay)
    std::uint64_t traceOps = 0;    //!< recorded/replayed op count

    // --- Phase timeline -------------------------------------------------
    Tick parallelBeginTick = 0;
    Tick parallelEndTick = 0;
    Tick totalTicks = 0;

    /** The paper-table metrics (themselves registry-derived). */
    RunMetrics metrics;

    /** One named value ("component.name" flat key). */
    struct Value {
        std::string name;
        std::string unit;
        std::uint64_t value = 0;
    };

    struct GaugeValue {
        std::string name;
        std::string unit;
        double value = 0.0;
    };

    /** Counters and gauges of one node, registration order. */
    struct NodeSection {
        std::int32_t id = 0;
        std::vector<Value> counters;
        std::vector<GaugeValue> gauges;
    };

    /** Machine-wide (non-per-node) counters. */
    std::vector<Value> machineCounters;
    std::vector<NodeSection> nodes;

    /** A histogram merged across all nodes of one (component, name). */
    struct HistogramSummary {
        std::string component;
        std::string name;
        std::string unit;
        std::uint64_t count = 0;
        std::uint64_t max = 0;
        double mean = 0.0;
        double p50 = 0.0;
        double p95 = 0.0;
        double p99 = 0.0;
        std::vector<std::uint64_t> bounds;
        std::vector<std::uint64_t> counts;
    };

    std::vector<HistogramSummary> histograms;

    /** Emit the full JSON document (object at current writer position). */
    void writeJson(JsonWriter &w) const;

    /** Emit the full JSON document to @p os. */
    void writeJson(std::ostream &os) const;

    /** The JSON document as a string. */
    std::string toJson() const;
};

/**
 * Snapshot @p m 's registry, configuration and phase marks into a
 * report.  Call while the machine is alive (typically right after the
 * run completes).
 */
RunReport buildRunReport(Machine &m);

} // namespace prism

#endif // PRISM_OBS_REPORT_HH
