/**
 * @file
 * Non-allocating callable storage for simulation events.
 *
 * The simulator schedules tens of millions of events per run, and the
 * previous `std::function<void()>` representation heap-allocated every
 * capture larger than libstdc++'s 16-byte small-object buffer (the
 * message-delivery closures are 16-24 bytes).  InlineCallback stores
 * its target in a fixed inline buffer with *no* heap fallback: a
 * capture that does not fit is a compile error, so the event hot path
 * can never silently regress into malloc/free churn.
 */

#ifndef PRISM_SIM_CALLBACK_HH
#define PRISM_SIM_CALLBACK_HH

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace prism {

/**
 * A move-only `void()` callable with @p Capacity bytes of inline
 * storage and no heap fallback.
 *
 * Requirements on the stored callable:
 *  - `sizeof(F) <= Capacity` (static-asserted; enlarge the capacity
 *    constant at the use site if a legitimate capture outgrows it),
 *  - nothrow move constructible (events are relocated when the event
 *    heap reorders), and
 *  - alignment no stricter than `std::max_align_t`.
 */
template <std::size_t Capacity>
class InlineCallback
{
  public:
    static constexpr std::size_t kCapacity = Capacity;

    InlineCallback() noexcept = default;

    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, InlineCallback>>>
    InlineCallback(F &&f) // NOLINT: implicit like std::function
    {
        emplace(std::forward<F>(f));
    }

    /** Destroy any current target and store @p f in place. */
    template <typename F>
    void
    emplace(F &&f)
    {
        using Fn = std::decay_t<F>;
        static_assert(sizeof(Fn) <= Capacity,
                      "capture too large for InlineCallback's inline "
                      "buffer; raise the capacity constant at the use "
                      "site (e.g. kEventCallbackBytes)");
        static_assert(alignof(Fn) <= alignof(std::max_align_t),
                      "capture over-aligned for InlineCallback");
        static_assert(std::is_nothrow_move_constructible_v<Fn>,
                      "captures must be nothrow-movable: the event heap "
                      "relocates callbacks when it reorders");
        reset();
        ::new (static_cast<void *>(buf_)) Fn(std::forward<F>(f));
        ops_ = &opsFor<Fn>;
    }

    InlineCallback(InlineCallback &&other) noexcept
    {
        moveFrom(other);
    }

    InlineCallback &
    operator=(InlineCallback &&other) noexcept
    {
        if (this != &other) {
            reset();
            moveFrom(other);
        }
        return *this;
    }

    InlineCallback(const InlineCallback &) = delete;
    InlineCallback &operator=(const InlineCallback &) = delete;

    ~InlineCallback() { reset(); }

    /** Invoke the stored callable (must not be empty). */
    void
    operator()()
    {
        ops_->invoke(buf_);
    }

    /** True when a callable is stored. */
    explicit operator bool() const noexcept { return ops_ != nullptr; }

  private:
    struct Ops {
        void (*invoke)(void *);
        /** Move-construct into @p dst from @p src, then destroy @p src. */
        void (*relocate)(void *dst, void *src) noexcept;
        void (*destroy)(void *) noexcept;
    };

    template <typename Fn>
    static constexpr Ops opsFor = {
        [](void *p) { (*static_cast<Fn *>(p))(); },
        [](void *dst, void *src) noexcept {
            Fn *s = static_cast<Fn *>(src);
            ::new (dst) Fn(std::move(*s));
            s->~Fn();
        },
        [](void *p) noexcept { static_cast<Fn *>(p)->~Fn(); },
    };

    void
    reset() noexcept
    {
        if (ops_) {
            ops_->destroy(buf_);
            ops_ = nullptr;
        }
    }

    void
    moveFrom(InlineCallback &other) noexcept
    {
        if (other.ops_) {
            ops_ = other.ops_;
            ops_->relocate(buf_, other.buf_);
            other.ops_ = nullptr;
        }
    }

    alignas(std::max_align_t) unsigned char buf_[Capacity];
    const Ops *ops_ = nullptr;
};

/**
 * Inline storage for event callbacks.  The largest capture scheduled
 * anywhere in src/ is Machine::route's message-delivery closure
 * (a Machine* plus a pooled Msg*, 16 bytes — static-asserted at the
 * capture site); 48 bytes leaves headroom for tests and benches.
 */
inline constexpr std::size_t kEventCallbackBytes = 48;

} // namespace prism

#endif // PRISM_SIM_CALLBACK_HH
