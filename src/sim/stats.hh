/**
 * @file
 * Lightweight statistics registry.
 *
 * Hot paths increment plain std::uint64_t members; modules register a
 * named reference to each counter so the registry can enumerate and
 * dump them without adding any per-increment cost.
 */

#ifndef PRISM_SIM_STATS_HH
#define PRISM_SIM_STATS_HH

#include <cstdint>
#include <optional>
#include <ostream>
#include <string>
#include <vector>

namespace prism {

/** A registry of named references to module-owned counters. */
class StatRegistry
{
  public:
    /** Register counter @p value under @p name with description @p desc. */
    void
    add(std::string name, const std::uint64_t *value, std::string desc = "")
    {
        entries_.push_back(Entry{std::move(name), value, std::move(desc)});
    }

    /** Look up a counter's current value by exact name. */
    std::optional<std::uint64_t> get(const std::string &name) const;

    /** Sum of all counters whose name begins with @p prefix. */
    std::uint64_t sumByPrefix(const std::string &prefix) const;

    /** Sum of all counters whose name ends with @p suffix. */
    std::uint64_t sumBySuffix(const std::string &suffix) const;

    /** Write "name value  # desc" lines, in registration order. */
    void dump(std::ostream &os) const;

    /** Number of registered counters. */
    std::size_t size() const { return entries_.size(); }

  private:
    struct Entry {
        std::string name;
        const std::uint64_t *value;
        std::string desc;
    };

    std::vector<Entry> entries_;
};

/** Fixed-bucket histogram for latency distributions. */
class Histogram
{
  public:
    /** Buckets: [0,b0), [b0,b1), ..., [b_{n-1}, inf). */
    explicit Histogram(std::vector<std::uint64_t> bounds)
        : bounds_(std::move(bounds)), counts_(bounds_.size() + 1, 0)
    {
    }

    void
    sample(std::uint64_t v)
    {
        std::size_t i = 0;
        while (i < bounds_.size() && v >= bounds_[i])
            ++i;
        ++counts_[i];
        sum_ += v;
        ++n_;
        if (v > max_)
            max_ = v;
    }

    std::uint64_t count() const { return n_; }
    std::uint64_t max() const { return max_; }

    double
    mean() const
    {
        return n_ ? static_cast<double>(sum_) / static_cast<double>(n_) : 0.0;
    }

    const std::vector<std::uint64_t> &bounds() const { return bounds_; }
    const std::vector<std::uint64_t> &counts() const { return counts_; }

  private:
    std::vector<std::uint64_t> bounds_;
    std::vector<std::uint64_t> counts_;
    std::uint64_t sum_ = 0;
    std::uint64_t n_ = 0;
    std::uint64_t max_ = 0;
};

} // namespace prism

#endif // PRISM_SIM_STATS_HH
