/**
 * @file
 * Fixed-bucket histogram for latency distributions.
 *
 * (The raw-pointer StatRegistry that used to live here was replaced by
 * the labeled, lifetime-safe MetricRegistry in obs/metrics.hh.)
 */

#ifndef PRISM_SIM_STATS_HH
#define PRISM_SIM_STATS_HH

#include <cstdint>
#include <vector>

namespace prism {

/** Fixed-bucket histogram for latency distributions. */
class Histogram
{
  public:
    /** Buckets: [0,b0), [b0,b1), ..., [b_{n-1}, inf). */
    explicit Histogram(std::vector<std::uint64_t> bounds)
        : bounds_(std::move(bounds)), counts_(bounds_.size() + 1, 0)
    {
    }

    void
    sample(std::uint64_t v)
    {
        std::size_t i = 0;
        while (i < bounds_.size() && v >= bounds_[i])
            ++i;
        ++counts_[i];
        sum_ += v;
        ++n_;
        if (v > max_)
            max_ = v;
        if (n_ == 1 || v < min_)
            min_ = v;
    }

    std::uint64_t count() const { return n_; }
    std::uint64_t max() const { return max_; }
    /** Smallest observed sample; 0 when empty. */
    std::uint64_t min() const { return n_ ? min_ : 0; }

    double
    mean() const
    {
        return n_ ? static_cast<double>(sum_) / static_cast<double>(n_) : 0.0;
    }

    /**
     * Approximate @p q quantile (q in [0, 1]) by linear interpolation
     * inside the bucket holding the q-th sample.  With fixed buckets
     * the answer is exact only at bucket boundaries; the error is
     * bounded by the width of that bucket (for the power-of-two bounds
     * used for latency histograms, at most a factor of two).  The
     * result is clamped to [min(), max()], so a single-sample
     * histogram reports that sample exactly at every quantile and no
     * quantile can exceed the largest observed value.  Returns 0 when
     * empty (never NaN).
     */
    double quantile(double q) const;

    /**
     * Accumulate @p other into this histogram.  Bucket bounds must be
     * identical (merging histograms of different shapes is a caller
     * bug), except that an *empty* histogram on either side is always
     * a safe no-op / wholesale adoption regardless of shape: empty
     * op-type histograms are legitimate (an open-loop mix with 0%
     * scans never touches the scan histogram) and must not abort the
     * report.
     */
    void merge(const Histogram &other);

    const std::vector<std::uint64_t> &bounds() const { return bounds_; }
    const std::vector<std::uint64_t> &counts() const { return counts_; }

  private:
    std::vector<std::uint64_t> bounds_;
    std::vector<std::uint64_t> counts_;
    std::uint64_t sum_ = 0;
    std::uint64_t n_ = 0;
    std::uint64_t max_ = 0;
    std::uint64_t min_ = 0;
};

} // namespace prism

#endif // PRISM_SIM_STATS_HH
