/**
 * @file
 * Error and status reporting helpers, in the spirit of gem5's logging.hh.
 *
 * panic() is for conditions that indicate a bug in PRISM itself and
 * aborts (so a core dump / debugger is available).  fatal() is for user
 * errors (bad configuration, invalid arguments) and exits cleanly with
 * an error code.  warn()/inform() report conditions without stopping.
 */

#ifndef PRISM_SIM_LOGGING_HH
#define PRISM_SIM_LOGGING_HH

#include <cstdarg>

namespace prism {

/** Abort with a message: something that should never happen happened. */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Exit(1) with a message: the user asked for something impossible. */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Report a suspicious but survivable condition. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Report normal operating status. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/**
 * panic() if @p cond is false.  Used for internal invariants that are
 * cheap enough to keep enabled in release builds.  A printf-style
 * message is required.
 */
#define prism_assert(cond, ...)                                           \
    do {                                                                  \
        if (!(cond)) {                                                    \
            ::prism::warn("assertion '%s' failed at %s:%d", #cond,        \
                          __FILE__, __LINE__);                            \
            ::prism::panic(__VA_ARGS__);                                  \
        }                                                                 \
    } while (0)

} // namespace prism

#endif // PRISM_SIM_LOGGING_HH
