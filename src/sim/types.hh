/**
 * @file
 * Fundamental scalar types shared by every PRISM module.
 */

#ifndef PRISM_SIM_TYPES_HH
#define PRISM_SIM_TYPES_HH

#include <cstdint>
#include <limits>

namespace prism {

/** Simulated time, in processor clock cycles. */
using Tick = std::uint64_t;

/** A duration measured in processor clock cycles. */
using Cycles = std::uint64_t;

/** Sentinel for "no tick" / "never". */
constexpr Tick kTickMax = std::numeric_limits<Tick>::max();

/** Identifier of a compute node (0 .. numNodes-1). */
using NodeId = std::uint32_t;

/** Globally unique processor identifier (0 .. numProcs-1). */
using ProcId = std::uint32_t;

/** Sentinel node id. */
constexpr NodeId kInvalidNode = std::numeric_limits<NodeId>::max();

/** Sentinel processor id. */
constexpr ProcId kInvalidProc = std::numeric_limits<ProcId>::max();

/** Physical page frame number, private to one node. */
using FrameNum = std::uint64_t;

/** Sentinel frame number. */
constexpr FrameNum kInvalidFrame = std::numeric_limits<FrameNum>::max();

} // namespace prism

#endif // PRISM_SIM_TYPES_HH
