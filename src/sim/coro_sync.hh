/**
 * @file
 * Coroutine synchronization primitives for protocol code.
 *
 * CoMutex serializes coroutines (the home node's per-line busy bit +
 * FIFO pending queue), CoLatch waits for a set of completions (e.g.
 * invalidation acknowledgements), and CoEvent is a single-shot signal.
 * Wakeups are funneled through the event queue at the current tick to
 * keep resumption order deterministic and stacks shallow.
 */

#ifndef PRISM_SIM_CORO_SYNC_HH
#define PRISM_SIM_CORO_SYNC_HH

#include <coroutine>
#include <deque>

#include "sim/event_queue.hh"
#include "sim/logging.hh"

namespace prism {

/** FIFO mutex for coroutines. */
class CoMutex
{
  public:
    explicit CoMutex(EventQueue &eq) : eq_(eq) {}

    /** Awaitable acquire; resumes in FIFO order. */
    auto
    acquire()
    {
        struct Awaiter {
            CoMutex &m;

            bool
            await_ready()
            {
                if (!m.held_) {
                    m.held_ = true;
                    return true;
                }
                return false;
            }

            void
            await_suspend(std::coroutine_handle<> h)
            {
                m.waiters_.push_back(h);
            }

            void await_resume() {}
        };
        return Awaiter{*this};
    }

    /** Release; the next waiter (if any) resumes at the current tick. */
    void
    release()
    {
        prism_assert(held_, "releasing an unheld CoMutex");
        if (waiters_.empty()) {
            held_ = false;
            return;
        }
        auto h = waiters_.front();
        waiters_.pop_front();
        // Ownership transfers directly to the next waiter.
        eq_.scheduleIn(0, [h] { h.resume(); });
    }

    bool held() const { return held_; }
    std::size_t queued() const { return waiters_.size(); }

  private:
    EventQueue &eq_;
    bool held_ = false;
    std::deque<std::coroutine_handle<>> waiters_;
};

/** Single-shot event: one waiter, one signal. */
class CoEvent
{
  public:
    explicit CoEvent(EventQueue &eq) : eq_(eq) {}

    auto
    wait()
    {
        struct Awaiter {
            CoEvent &e;

            bool await_ready() const { return e.signaled_; }

            void
            await_suspend(std::coroutine_handle<> h)
            {
                prism_assert(!e.waiter_, "CoEvent supports one waiter");
                e.waiter_ = h;
            }

            void await_resume() {}
        };
        return Awaiter{*this};
    }

    void
    signal()
    {
        signaled_ = true;
        if (waiter_) {
            auto h = waiter_;
            waiter_ = {};
            eq_.scheduleIn(0, [h] { h.resume(); });
        }
    }

    bool signaled() const { return signaled_; }

    void
    reset()
    {
        prism_assert(!waiter_, "resetting a CoEvent with a waiter");
        signaled_ = false;
    }

  private:
    EventQueue &eq_;
    bool signaled_ = false;
    std::coroutine_handle<> waiter_ = {};
};

/**
 * Completion latch: wait until @c expect() arrivals have occurred.
 * The expected count may grow while waiting (acks whose number is
 * only learned from the data reply).
 */
class CoLatch
{
  public:
    explicit CoLatch(EventQueue &eq) : eq_(eq) {}

    /** Increase the number of arrivals to wait for. */
    void expect(std::uint32_t n) { expected_ += n; maybeRelease(); }

    /** Record one arrival. */
    void arrive() { ++arrived_; maybeRelease(); }

    /**
     * Mark the expected count as final; the latch can only release
     * once armed (prevents spurious release at 0/0 before the reply
     * announcing the ack count arrives).
     */
    void arm() { armed_ = true; maybeRelease(); }

    auto
    wait()
    {
        struct Awaiter {
            CoLatch &l;

            bool await_ready() const { return l.open_; }

            void
            await_suspend(std::coroutine_handle<> h)
            {
                prism_assert(!l.waiter_, "CoLatch supports one waiter");
                l.waiter_ = h;
            }

            void await_resume() {}
        };
        return Awaiter{*this};
    }

    std::uint32_t arrived() const { return arrived_; }
    std::uint32_t expectedCount() const { return expected_; }

  private:
    void
    maybeRelease()
    {
        if (!open_ && armed_ && arrived_ >= expected_) {
            open_ = true;
            if (waiter_) {
                auto h = waiter_;
                waiter_ = {};
                eq_.scheduleIn(0, [h] { h.resume(); });
            }
        }
    }

    EventQueue &eq_;
    std::uint32_t expected_ = 0;
    std::uint32_t arrived_ = 0;
    bool armed_ = false;
    bool open_ = false;
    std::coroutine_handle<> waiter_ = {};
};

} // namespace prism

#endif // PRISM_SIM_CORO_SYNC_HH
