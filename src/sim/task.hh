/**
 * @file
 * Coroutine task type used to express simulated programs.
 *
 * Each simulated processor executes its workload as a CoTask coroutine.
 * Memory accesses that miss, synchronization, and explicit delays are
 * expressed as awaitables; the coroutine suspends and the event queue
 * resumes it when the simulated operation completes.  CoTasks compose:
 * a workload may be decomposed into sub-coroutines and co_await them.
 */

#ifndef PRISM_SIM_TASK_HH
#define PRISM_SIM_TASK_HH

#include <coroutine>
#include <exception>
#include <functional>
#include <utility>

#include "sim/event_queue.hh"
#include "sim/logging.hh"

namespace prism {

/**
 * An eagerly-ownable, lazily-started coroutine returning void.
 *
 * Lifetime: the frame is destroyed by ~CoTask.  Because final_suspend
 * always suspends, a completed coroutine's frame stays valid until its
 * owning CoTask goes away, so `co_await subTask()` on a temporary is
 * safe (the temporary outlives the await expression).
 */
class CoTask
{
  public:
    struct promise_type;
    using Handle = std::coroutine_handle<promise_type>;

    struct promise_type {
        /** Coroutine to resume when this one finishes (nested await). */
        std::coroutine_handle<> continuation;
        /** Completion callback for root (detached-start) tasks. */
        std::function<void()> onDone;

        CoTask
        get_return_object()
        {
            return CoTask{Handle::from_promise(*this)};
        }

        std::suspend_always initial_suspend() noexcept { return {}; }

        struct FinalAwaiter {
            bool await_ready() noexcept { return false; }

            std::coroutine_handle<>
            await_suspend(Handle h) noexcept
            {
                auto &p = h.promise();
                if (p.onDone)
                    p.onDone();
                if (p.continuation)
                    return p.continuation;
                return std::noop_coroutine();
            }

            void await_resume() noexcept {}
        };

        FinalAwaiter final_suspend() noexcept { return {}; }
        void return_void() {}

        void
        unhandled_exception()
        {
            // Workload coroutines must not throw: a simulated program
            // has no simulated exception semantics to map this onto.
            panic("unhandled exception escaped a CoTask coroutine");
        }
    };

    CoTask() = default;
    explicit CoTask(Handle h) : handle_(h) {}

    CoTask(CoTask &&other) noexcept
        : handle_(std::exchange(other.handle_, {}))
    {
    }

    CoTask &
    operator=(CoTask &&other) noexcept
    {
        if (this != &other) {
            destroy();
            handle_ = std::exchange(other.handle_, {});
        }
        return *this;
    }

    CoTask(const CoTask &) = delete;
    CoTask &operator=(const CoTask &) = delete;

    ~CoTask() { destroy(); }

    /** True if this object owns a coroutine frame. */
    bool valid() const { return static_cast<bool>(handle_); }

    /** True once the coroutine has run to completion. */
    bool done() const { return !handle_ || handle_.done(); }

    /**
     * Start a root task.  @p on_done fires when the coroutine finishes
     * (typically used to count completed processors).
     */
    void
    start(std::function<void()> on_done = {})
    {
        prism_assert(handle_, "starting an empty CoTask");
        handle_.promise().onDone = std::move(on_done);
        handle_.resume();
    }

    /** Awaiting a CoTask runs it to completion, then resumes the caller. */
    auto
    operator co_await() noexcept
    {
        struct Awaiter {
            Handle h;

            bool await_ready() const noexcept { return !h || h.done(); }

            std::coroutine_handle<>
            await_suspend(std::coroutine_handle<> cont) noexcept
            {
                h.promise().continuation = cont;
                return h;
            }

            void await_resume() const noexcept {}
        };
        return Awaiter{handle_};
    }

  private:
    void
    destroy()
    {
        if (handle_) {
            handle_.destroy();
            handle_ = {};
        }
    }

    Handle handle_;
};

/**
 * A detached, eagerly-started coroutine for protocol handlers.
 *
 * The frame owns itself: it starts running as soon as the handler
 * function is called and is destroyed automatically when it finishes.
 * Use for network-message handlers and other fire-and-forget activity
 * whose completion nobody awaits directly (completion is communicated
 * through CoLatch / CoEvent / state updates instead).
 */
struct FireAndForget {
    struct promise_type {
        FireAndForget get_return_object() { return {}; }
        std::suspend_never initial_suspend() noexcept { return {}; }
        std::suspend_never final_suspend() noexcept { return {}; }
        void return_void() {}

        void
        unhandled_exception()
        {
            panic("unhandled exception escaped a FireAndForget coroutine");
        }
    };
};

/** Awaitable that resumes the coroutine after @p delay cycles. */
class DelayAwaiter
{
  public:
    DelayAwaiter(EventQueue &eq, Cycles delay) : eq_(eq), delay_(delay) {}

    bool await_ready() const noexcept { return delay_ == 0; }

    void
    await_suspend(std::coroutine_handle<> h)
    {
        eq_.scheduleIn(delay_, [h] { h.resume(); });
    }

    void await_resume() const noexcept {}

  private:
    EventQueue &eq_;
    Cycles delay_;
};

} // namespace prism

#endif // PRISM_SIM_TASK_HH
