/**
 * @file
 * Tick-tagged increment log for the counters that feed the parallel-
 * phase snapshots (Machine::markParallelBegin/End).
 *
 * Under the sharded scheduler (sim/shard.hh) a mark can land mid-
 * window: by the time the coordinator applies it, other shards have
 * already executed events past the mark tick and bumped their
 * counters.  Each shard therefore logs (tick, kind) for every
 * increment of a snapshot-relevant counter, and the coordinator
 * reconstructs "counter value as of tick t" by subtracting the logged
 * increments that sequential execution would have ordered after the
 * mark.  The log is empty and untouched in sequential mode.
 */

#ifndef PRISM_SIM_SNAP_LOG_HH
#define PRISM_SIM_SNAP_LOG_HH

#include <cstdint>
#include <vector>

#include "sim/types.hh"

namespace prism {

/** The snapshot-relevant counters (see Machine::Snapshot). */
enum class SnapKind : std::uint8_t {
    RemoteMiss,
    Upgrade,
    InvalSent,
    ClientPageOut,
    Fault,
    NetMsg,
};

/** Number of SnapKind values (array sizing). */
inline constexpr std::size_t kSnapKinds = 6;

/** Per-shard log of snapshot-counter increments, in execution order. */
struct SnapshotLog {
    struct Entry {
        Tick tick;
        SnapKind kind;
    };

    std::vector<Entry> entries;

    void record(Tick t, SnapKind k) { entries.push_back(Entry{t, k}); }

    /**
     * Per-kind totals of logged increments at @p at or later (the
     * increments a mark at tick @p at must not see from other shards).
     */
    void
    tallyAtOrAfter(Tick at, std::uint64_t (&out)[kSnapKinds]) const
    {
        for (const Entry &e : entries) {
            if (e.tick >= at)
                ++out[static_cast<std::size_t>(e.kind)];
        }
    }

    void clear() { entries.clear(); }
};

} // namespace prism

#endif // PRISM_SIM_SNAP_LOG_HH
