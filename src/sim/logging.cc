#include "sim/logging.hh"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace prism {

namespace {

/**
 * Format the whole report into one buffer and emit it with a single
 * stdio call, so lines from concurrently running simulations (the
 * parallel sweep runner drives one Machine per worker thread) never
 * interleave mid-line.
 */
void
vreport(const char *tag, const char *fmt, va_list ap)
{
    char buf[1024];
    int n = std::snprintf(buf, sizeof(buf), "%s: ", tag);
    if (n < 0)
        n = 0;
    if (static_cast<std::size_t>(n) < sizeof(buf)) {
        int m = std::vsnprintf(buf + n, sizeof(buf) - n, fmt, ap);
        if (m > 0)
            n += m;
    }
    std::size_t len = static_cast<std::size_t>(n) < sizeof(buf) - 1
                          ? static_cast<std::size_t>(n)
                          : sizeof(buf) - 2;
    buf[len] = '\n';
    std::fwrite(buf, 1, len + 1, stderr);
    std::fflush(stderr);
}

} // namespace

void
panic(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    vreport("panic", fmt, ap);
    va_end(ap);
    std::abort();
}

void
fatal(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    vreport("fatal", fmt, ap);
    va_end(ap);
    std::exit(1);
}

void
warn(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    vreport("warn", fmt, ap);
    va_end(ap);
}

void
inform(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    vreport("info", fmt, ap);
    va_end(ap);
}

} // namespace prism
