/**
 * @file
 * Conservative parallel intra-run simulation: the shard layer.
 *
 * The machine is partitioned into shards of whole nodes, each owning
 * its own EventQueue.  Shards execute windows [W, W+L) of simulated
 * time in parallel, where the lookahead L is the minimum cross-shard
 * reaction delay (network latency plus minimum NIC occupancy, and the
 * synchronization-episode costs).  Within a window a shard touches
 * only its own state; every cross-shard interaction is either
 *
 *  - a time-stamped network entry pushed through a ShardChannel lane
 *    (drained by the coordinator at the window barrier, delivered via
 *    per-destination "ingress pumps" that book NIC occupancy in
 *    (arrival, source, sequence) order), or
 *  - a deferred synchronization op (lock/barrier/mark) appended to a
 *    per-shard log and applied by the coordinator, sorted by a
 *    deterministic (tick, rank, seq) key chosen to match the
 *    sequential scheduler's tie order.
 *
 * Everything here is deterministic by construction: no ordering ever
 * depends on thread arrival order, so a run's results are identical
 * for any shard count >= 2 and stable across reruns.  They are NOT
 * byte-identical to the sequential scheduler: the sequential path
 * books ingress NIC occupancy in global send order, which is exactly
 * the information parallel execution gives up, so the sharded path
 * books it in (arrival, source, sequence) order instead.  Both are
 * valid serializations of the same contention model; the deltas and
 * their magnitude are documented in docs/PERFORMANCE.md ("Sharded
 * scheduler").
 */

#ifndef PRISM_SIM_SHARD_HH
#define PRISM_SIM_SHARD_HH

#include <atomic>
#include <coroutine>
#include <cstdint>
#include <functional>
#include <thread>
#include <utility>
#include <vector>

#include "sim/types.hh"

namespace prism {

class EventQueue;

/**
 * Deterministic tie-break state for one processor's deferred sync
 * ops.  `rank` mirrors the sequential scheduler's event-sequence tie
 * order: the coordinator stamps a fresh, globally increasing rank on
 * every processor it resumes, so two processors resumed by the same
 * barrier episode keep their waiter order, exactly as the sequential
 * queue's FIFO tie-break would.  `nextSeq` orders multiple ops issued
 * by the same processor at one tick.
 */
struct SyncActor {
    std::uint64_t rank = 0;
    std::uint32_t nextSeq = 0;
};

/** A deferred synchronization op, applied at the window barrier. */
struct SyncOp {
    enum Kind : std::uint8_t {
        LockAcquire,
        LockRelease,
        BarrierArrive,
        MarkBegin,
        MarkEnd,
    };

    Tick tick;          //!< simulated time the op was issued
    std::uint64_t rank; //!< issuing processor's rank (see SyncActor)
    std::uint32_t seq;  //!< per-processor issue order within a tick
    Kind kind;
    std::uint64_t id;            //!< lock/barrier id (0 for marks)
    std::coroutine_handle<> h;   //!< continuation (null for releases)
    EventQueue *q;               //!< issuing shard's queue (resume target)
    SyncActor *actor;            //!< issuing processor's rank slot

    /** The coordinator's application order (deterministic total order). */
    static bool
    before(const SyncOp &a, const SyncOp &b)
    {
        if (a.tick != b.tick)
            return a.tick < b.tick;
        if (a.rank != b.rank)
            return a.rank < b.rank;
        return a.seq < b.seq;
    }
};

/**
 * S x S staging lanes for cross-shard traffic.  During a window, lane
 * (from, to) is appended to only by shard `from`; at the barrier the
 * coordinator drains every lane in (from, to, FIFO) order, so the
 * drain order is deterministic regardless of thread interleaving.
 */
template <typename T>
class ShardChannel
{
  public:
    void
    reset(unsigned shards)
    {
        shards_ = shards;
        lanes_.clear();
        lanes_.resize(static_cast<std::size_t>(shards) * shards);
    }

    std::vector<T> &
    lane(unsigned from, unsigned to)
    {
        return lanes_[static_cast<std::size_t>(from) * shards_ + to];
    }

    /** Coordinator: consume every staged entry in deterministic order. */
    template <typename F>
    void
    drain(F &&consume)
    {
        for (auto &lane : lanes_) {
            for (T &e : lane)
                consume(std::move(e));
            lane.clear();
        }
    }

    bool
    empty() const
    {
        for (const auto &lane : lanes_) {
            if (!lane.empty())
                return false;
        }
        return true;
    }

  private:
    unsigned shards_ = 0;
    std::vector<std::vector<T>> lanes_;
};

/**
 * Sense-reversing barrier for the window loop: spins briefly (window
 * rounds are microseconds apart), then parks on the atomic so idle
 * shards don't burn a core during long serial stretches.
 */
class SpinBarrier
{
  public:
    explicit SpinBarrier(std::uint32_t parties) : parties_(parties) {}

    void
    arrive()
    {
        const std::uint32_t gen = gen_.load(std::memory_order_acquire);
        if (count_.fetch_add(1, std::memory_order_acq_rel) + 1 ==
            parties_) {
            count_.store(0, std::memory_order_relaxed);
            gen_.fetch_add(1, std::memory_order_release);
            gen_.notify_all();
        } else {
            // Spinning only helps when the releasing thread can run
            // concurrently; on a single-hardware-thread host it just
            // burns the timeslice the releaser needs, so park at once.
            for (int spin = spinBudget(); spin > 0; --spin) {
                if (gen_.load(std::memory_order_acquire) != gen)
                    return;
            }
            while (gen_.load(std::memory_order_acquire) == gen)
                gen_.wait(gen, std::memory_order_acquire);
        }
    }

  private:
    static constexpr int kSpins = 4096;

    static int
    spinBudget()
    {
        static const int budget =
            std::thread::hardware_concurrency() > 1 ? kSpins : 0;
        return budget;
    }

    std::uint32_t parties_;
    std::atomic<std::uint32_t> count_{0};
    std::atomic<std::uint32_t> gen_{0};
};

/**
 * Persistent worker team for the window loop: round(fn) runs
 * fn(shard) on every shard — shard 0 on the calling (coordinator)
 * thread, shards 1..N-1 on the workers — and returns once all are
 * done.  Two barrier crossings per round; workers never touch any
 * state between rounds, so everything the coordinator wrote before
 * round() is visible to them (and vice versa at return).
 */
class ShardWorkers
{
  public:
    explicit ShardWorkers(unsigned shards)
        : start_(shards), end_(shards)
    {
        threads_.reserve(shards - 1);
        for (unsigned s = 1; s < shards; ++s)
            threads_.emplace_back([this, s] { workerLoop(s); });
    }

    ~ShardWorkers()
    {
        stop_.store(true, std::memory_order_release);
        start_.arrive();
        for (auto &t : threads_)
            t.join();
    }

    ShardWorkers(const ShardWorkers &) = delete;
    ShardWorkers &operator=(const ShardWorkers &) = delete;

    void
    round(const std::function<void(unsigned)> &fn)
    {
        fn_ = &fn;
        start_.arrive();
        fn(0);
        end_.arrive();
    }

  private:
    void
    workerLoop(unsigned shard)
    {
        for (;;) {
            start_.arrive();
            if (stop_.load(std::memory_order_acquire))
                return;
            (*fn_)(shard);
            end_.arrive();
        }
    }

    SpinBarrier start_;
    SpinBarrier end_;
    std::atomic<bool> stop_{false};
    const std::function<void(unsigned)> *fn_ = nullptr;
    std::vector<std::thread> threads_;
};

/**
 * Conservative lookahead for a window: the earliest any action taken
 * at tick t inside one shard can require another shard to act is
 * t + L, so shards may freely execute [W, W+L) in parallel.
 *
 *  - a cross-shard message books its destination NIC no earlier than
 *    send + egress occupancy + wire latency (>= latency + min occ);
 *  - lock grants, handoffs and barrier releases resume their waiters
 *    acquireCost / handoffCost / barrierCost cycles after the op, so
 *    ops logged during a window are applied at the barrier before any
 *    of their effects come due.
 */
inline Cycles
conservativeLookahead(Cycles net_latency, Cycles min_occupancy,
                      Cycles lock_acquire, Cycles lock_handoff,
                      Cycles barrier_cost)
{
    Cycles l = net_latency + min_occupancy;
    if (lock_acquire < l)
        l = lock_acquire;
    if (lock_handoff < l)
        l = lock_handoff;
    if (barrier_cost < l)
        l = barrier_cost;
    return l;
}

} // namespace prism

#endif // PRISM_SIM_SHARD_HH
