#include "sim/stats.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace prism {

double
Histogram::quantile(double q) const
{
    if (n_ == 0)
        return 0.0;
    q = std::clamp(q, 0.0, 1.0);
    // Rank of the q-th sample (1-based), then the bucket holding it.
    const double rank = q * static_cast<double>(n_);
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        if (counts_[i] == 0)
            continue;
        const std::uint64_t before = seen;
        seen += counts_[i];
        if (static_cast<double>(seen) < rank)
            continue;
        const double lo =
            i == 0 ? 0.0 : static_cast<double>(bounds_[i - 1]);
        // The overflow bucket has no upper bound; interpolate toward
        // the largest observed sample instead.
        const double hi = i < bounds_.size()
                              ? static_cast<double>(bounds_[i])
                              : std::max(static_cast<double>(max_), lo);
        const double frac =
            (rank - static_cast<double>(before)) /
            static_cast<double>(counts_[i]);
        // Interpolation can land outside the observed range (a lone
        // sample sits somewhere inside its bucket, not at the bucket
        // midpoint); clamp so quantiles never under-run min() or
        // overshoot max(), and a single-sample histogram reports that
        // sample exactly.
        return std::clamp(lo + (hi - lo) * std::clamp(frac, 0.0, 1.0),
                          static_cast<double>(min_),
                          static_cast<double>(max_));
    }
    return static_cast<double>(max_);
}

void
Histogram::merge(const Histogram &other)
{
    if (other.n_ == 0)
        return; // nothing to add; shape of an empty histogram is moot
    if (n_ == 0 && bounds_ != other.bounds_) {
        *this = other; // adopt: an empty histogram has no shape yet
        return;
    }
    prism_assert(bounds_ == other.bounds_,
                 "merging histograms with different bucket bounds");
    for (std::size_t i = 0; i < counts_.size(); ++i)
        counts_[i] += other.counts_[i];
    sum_ += other.sum_;
    min_ = n_ ? std::min(min_, other.min_) : other.min_;
    n_ += other.n_;
    max_ = std::max(max_, other.max_);
}

} // namespace prism
