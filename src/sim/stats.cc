#include "sim/stats.hh"

namespace prism {

std::optional<std::uint64_t>
StatRegistry::get(const std::string &name) const
{
    for (const auto &e : entries_) {
        if (e.name == name)
            return *e.value;
    }
    return std::nullopt;
}

std::uint64_t
StatRegistry::sumByPrefix(const std::string &prefix) const
{
    std::uint64_t sum = 0;
    for (const auto &e : entries_) {
        if (e.name.rfind(prefix, 0) == 0)
            sum += *e.value;
    }
    return sum;
}

std::uint64_t
StatRegistry::sumBySuffix(const std::string &suffix) const
{
    std::uint64_t sum = 0;
    for (const auto &e : entries_) {
        if (e.name.size() >= suffix.size() &&
            e.name.compare(e.name.size() - suffix.size(), suffix.size(),
                           suffix) == 0) {
            sum += *e.value;
        }
    }
    return sum;
}

void
StatRegistry::dump(std::ostream &os) const
{
    for (const auto &e : entries_) {
        os << e.name << " " << *e.value;
        if (!e.desc.empty())
            os << "  # " << e.desc;
        os << "\n";
    }
}

} // namespace prism
