/**
 * @file
 * Deterministic pseudo-random number generation for workloads.
 *
 * Simulation results must be bit-reproducible across runs and hosts, so
 * all stochastic workload behaviour draws from this xoshiro256** engine
 * seeded explicitly (never from std::random_device or wall-clock time).
 */

#ifndef PRISM_SIM_RNG_HH
#define PRISM_SIM_RNG_HH

#include <cstdint>
#include <vector>

namespace prism {

/** Deterministic xoshiro256** PRNG with convenience draws. */
class Rng
{
  public:
    /** Seed via SplitMix64 expansion of @p seed. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL)
    {
        std::uint64_t x = seed;
        for (auto &word : state_) {
            x += 0x9e3779b97f4a7c15ULL;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
            word = z ^ (z >> 31);
        }
    }

    /** Next raw 64-bit draw. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound). @p bound must be nonzero. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        // Lemire-style rejection-free bounded draw (slight bias is
        // irrelevant for workload synthesis).
        return static_cast<std::uint64_t>(
            (static_cast<unsigned __int128>(next()) * bound) >> 64);
    }

    /** Uniform integer in [lo, hi]. */
    std::uint64_t
    range(std::uint64_t lo, std::uint64_t hi)
    {
        return lo + below(hi - lo + 1);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Fisher-Yates shuffle of @p v. */
    template <typename T>
    void
    shuffle(std::vector<T> &v)
    {
        for (std::size_t i = v.size(); i > 1; --i) {
            std::size_t j = static_cast<std::size_t>(below(i));
            std::swap(v[i - 1], v[j]);
        }
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state_[4];
};

} // namespace prism

#endif // PRISM_SIM_RNG_HH
