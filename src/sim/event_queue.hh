/**
 * @file
 * Deterministic discrete-event scheduler.
 *
 * All simulated activity is serialized through one EventQueue.  Events
 * scheduled for the same tick fire in scheduling order (a monotonically
 * increasing sequence number breaks ties), which makes every simulation
 * run bit-reproducible for a given configuration and seed.
 *
 * Hot-path design (this is the innermost loop of the simulator):
 *  - callbacks are InlineCallback, not std::function: fixed inline
 *    storage, no heap allocation for any capture size used in src/;
 *  - the time order is kept in a hand-rolled binary min-heap over a
 *    std::vector (reserved up front) rather than std::priority_queue,
 *    because pop must *move* the event out: std::priority_queue::top()
 *    returns a const reference, which previously forced a const_cast
 *    to move from it (see the regression note at runOne);
 *  - the heap holds only trivially-copyable 24-byte keys (tick, seq,
 *    slot index); callbacks live in a stable slot arena, so sifting
 *    never touches a callback and each callback is moved exactly
 *    twice (into its slot at schedule, out at dispatch).
 */

#ifndef PRISM_SIM_EVENT_QUEUE_HH
#define PRISM_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/callback.hh"
#include "sim/logging.hh"
#include "sim/snap_log.hh"
#include "sim/types.hh"

namespace prism {

/** Sentinel shard id: "not bound to any shard" (debug affinity). */
inline constexpr std::uint32_t kAnyShard = 0xffffffffu;

/** A time-ordered queue of callbacks driving the simulation. */
class EventQueue
{
  public:
    using Callback = InlineCallback<kEventCallbackBytes>;

    EventQueue()
    {
        heap_.reserve(kInitialCapacity);
        slots_.reserve(kInitialCapacity);
        freeSlots_.reserve(kInitialCapacity);
    }
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    Tick now() const { return now_; }

    /** Number of events executed so far. */
    std::uint64_t eventsExecuted() const { return executed_; }

    /** Number of events still pending. */
    std::size_t pending() const { return heap_.size(); }

    /** Tick of the earliest pending event; kTickMax when empty. */
    Tick
    nextEventTick() const
    {
        return heap_.empty() ? kTickMax : heap_.front().when;
    }

    /**
     * Schedule @p cb to run at absolute time @p when (>= now).
     * Callables are constructed directly in their arena slot (no
     * intermediate Callback temporary on the common lambda path).
     */
    template <typename F>
    void
    schedule(Tick when, F &&cb)
    {
        scheduleSeq(when, nextSeq_++, std::forward<F>(cb));
    }

    /**
     * Schedule @p cb at @p when, ordered *before* every event already
     * scheduled for that tick.  Used by the sharded coordinator to
     * splice a deferred continuation (e.g. the code following a
     * parallel-phase mark) back in where the sequential scheduler
     * would have run it synchronously — ahead of same-tick events
     * that were enqueued earlier.
     */
    template <typename F>
    void
    scheduleFront(Tick when, F &&cb)
    {
        scheduleSeq(when, frontSeq_--, std::forward<F>(cb));
    }

    /** Schedule @p cb to run @p delta cycles from now. */
    template <typename F>
    void
    scheduleIn(Cycles delta, F &&cb)
    {
        schedule(now_ + delta, std::forward<F>(cb));
    }

    /**
     * Execute the next event.
     * @retval false if the queue was empty.
     *
     * Regression note: the event is *moved out* of the heap before it
     * runs.  A callback may schedule further events — including at the
     * current tick — which mutates the heap, so running the callback
     * in place would dangle.  The old std::priority_queue code had to
     * `const_cast` `top()` to get a moving pop; the hand-rolled heap
     * supports it directly (popTop).
     */
    bool
    runOne()
    {
        if (heap_.empty())
            return false;
        Event ev = popTop();
        Callback cb = std::move(slots_[ev.slot]);
        freeSlots_.push_back(ev.slot);
        now_ = ev.when;
        ++executed_;
        cb();
        return true;
    }

    /** Run until the queue drains. */
    void
    runAll()
    {
        while (runOne()) {
        }
    }

    /**
     * Run until the queue drains or @p until is reached, whichever is
     * first.  Events at exactly @p until still execute.  The clock
     * always advances to @p until on return (remaining events, if any,
     * are strictly later), so back-to-back runUntil calls measure
     * consistent intervals whether or not the queue drained.
     */
    void
    runUntil(Tick until)
    {
        while (!heap_.empty() && heap_.front().when <= until) {
            runOne();
        }
        if (now_ < until)
            now_ = until;
    }

    /**
     * Run until @p done returns true (checked after each event) or the
     * queue drains.  Templated so the predicate is called directly
     * (no std::function indirection in the run loop).
     * @retval true if @p done was satisfied.
     */
    template <typename Pred>
    bool
    runWhile(Pred &&done)
    {
        while (!done()) {
            if (!runOne())
                return false;
        }
        return true;
    }

    // --- Sharded-scheduler hooks (no-ops in sequential mode) ----------

    /**
     * Attach the owning shard's snapshot log; increment sites call
     * snapNote() and pay one never-taken branch when unattached.
     */
    void setSnapshotLog(SnapshotLog *log) { snapLog_ = log; }

    /** Record a snapshot-counter increment at the current tick. */
    void
    snapNote(SnapKind k)
    {
        if (snapLog_)
            snapLog_->record(now_, k);
    }

#ifndef NDEBUG
    /** Debug: bind this queue to a shard for affinity checking. */
    void setOwnerShard(std::uint32_t s) { ownerShard_ = s; }

    /**
     * Debug: the shard the calling thread is executing (kAnyShard for
     * the coordinator / sequential mode).  Set by the window loop.
     */
    static std::uint32_t &
    threadShard()
    {
        thread_local std::uint32_t s = kAnyShard;
        return s;
    }
#endif

  private:
    /** Initial heap capacity; avoids regrowth for typical runs. */
    static constexpr std::size_t kInitialCapacity = 1024;

    /**
     * Heap node: ordering key plus the arena slot of its callback.
     * The sequence is signed so scheduleFront can order ahead of all
     * normally scheduled events at the same tick (negative, counting
     * down); schedule() uses the non-negative, counting-up range.
     */
    struct Event {
        Tick when;
        std::int64_t seq;
        std::uint32_t slot;
    };
    static_assert(std::is_trivially_copyable_v<Event>,
                  "heap sifting relies on cheap Event copies");

    template <typename F>
    void
    scheduleSeq(Tick when, std::int64_t seq, F &&cb)
    {
        prism_assert(when >= now_,
                     "event scheduled in the past (%llu < %llu)",
                     static_cast<unsigned long long>(when),
                     static_cast<unsigned long long>(now_));
#ifndef NDEBUG
        // Shard affinity: only the owning shard's thread (or the
        // coordinator, which runs with no thread shard set) may
        // schedule into a shard-bound queue.
        prism_assert(ownerShard_ == kAnyShard ||
                         threadShard() == kAnyShard ||
                         threadShard() == ownerShard_,
                     "cross-shard schedule: queue owned by shard %u, "
                     "caller runs shard %u",
                     ownerShard_, threadShard());
#endif
        std::uint32_t slot;
        if (freeSlots_.empty()) {
            slot = static_cast<std::uint32_t>(slots_.size());
            slots_.emplace_back();
        } else {
            slot = freeSlots_.back();
            freeSlots_.pop_back();
        }
        if constexpr (std::is_same_v<std::decay_t<F>, Callback>)
            slots_[slot] = std::move(cb);
        else
            slots_[slot].emplace(std::forward<F>(cb));
        heap_.push_back(Event{when, seq, slot});
        siftUp(heap_.size() - 1);
    }

    /** Min-heap order: earlier tick first, scheduling order on ties. */
    static bool
    earlier(const Event &a, const Event &b)
    {
        if (a.when != b.when)
            return a.when < b.when;
        return a.seq < b.seq;
    }

    void
    siftUp(std::size_t i)
    {
        const Event ev = heap_[i];
        while (i > 0) {
            std::size_t parent = (i - 1) / 2;
            if (!earlier(ev, heap_[parent]))
                break;
            heap_[i] = heap_[parent];
            i = parent;
        }
        heap_[i] = ev;
    }

    /** Remove and return the earliest event (heap must be non-empty). */
    Event
    popTop()
    {
        const Event top = heap_.front();
        const Event last = heap_.back();
        heap_.pop_back();
        const std::size_t n = heap_.size();
        if (n > 0) {
            // Sift the former last element down from the root hole.
            std::size_t hole = 0;
            while (true) {
                std::size_t child = 2 * hole + 1;
                if (child >= n)
                    break;
                if (child + 1 < n &&
                    earlier(heap_[child + 1], heap_[child]))
                    ++child;
                if (!earlier(heap_[child], last))
                    break;
                heap_[hole] = heap_[child];
                hole = child;
            }
            heap_[hole] = last;
        }
        return top;
    }

    std::vector<Event> heap_;
    /** Callback arena indexed by Event::slot; freeSlots_ recycles. */
    std::vector<Callback> slots_;
    std::vector<std::uint32_t> freeSlots_;
    Tick now_ = 0;
    std::int64_t nextSeq_ = 0;
    std::int64_t frontSeq_ = -1;
    std::uint64_t executed_ = 0;
    SnapshotLog *snapLog_ = nullptr;
#ifndef NDEBUG
    std::uint32_t ownerShard_ = kAnyShard;
#endif
};

/**
 * A resource that serves one request at a time in FCFS order, modeled
 * analytically: acquire() returns the time service may begin and books
 * the occupancy.  Used for buses, controller occupancy, DRAM banks and
 * network links, where queueing delay (not event interleaving) is the
 * behaviour of interest.
 */
class FcfsResource
{
  public:
    /**
     * Request @p occupancy cycles of service no earlier than @p at.
     * @return the tick at which service begins.
     */
    Tick
    acquire(Tick at, Cycles occupancy)
    {
        Tick start = at > nextFree_ ? at : nextFree_;
        nextFree_ = start + occupancy;
        busyCycles_ += occupancy;
        ++grants_;
        return start;
    }

    /** Earliest time a new request could start service. */
    Tick nextFree() const { return nextFree_; }

    /** Total cycles of booked service (utilization numerator). */
    Cycles busyCycles() const { return busyCycles_; }

    /** Number of grants made. */
    std::uint64_t grants() const { return grants_; }

  private:
    Tick nextFree_ = 0;
    Cycles busyCycles_ = 0;
    std::uint64_t grants_ = 0;
};

} // namespace prism

#endif // PRISM_SIM_EVENT_QUEUE_HH
