/**
 * @file
 * Deterministic discrete-event scheduler.
 *
 * All simulated activity is serialized through one EventQueue.  Events
 * scheduled for the same tick fire in scheduling order (a monotonically
 * increasing sequence number breaks ties), which makes every simulation
 * run bit-reproducible for a given configuration and seed.
 */

#ifndef PRISM_SIM_EVENT_QUEUE_HH
#define PRISM_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/logging.hh"
#include "sim/types.hh"

namespace prism {

/** A time-ordered queue of callbacks driving the simulation. */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    EventQueue() = default;
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    Tick now() const { return now_; }

    /** Number of events executed so far. */
    std::uint64_t eventsExecuted() const { return executed_; }

    /** Number of events still pending. */
    std::size_t pending() const { return heap_.size(); }

    /** Schedule @p cb to run at absolute time @p when (>= now). */
    void
    schedule(Tick when, Callback cb)
    {
        prism_assert(when >= now_,
                     "event scheduled in the past (%llu < %llu)",
                     static_cast<unsigned long long>(when),
                     static_cast<unsigned long long>(now_));
        heap_.push(Event{when, nextSeq_++, std::move(cb)});
    }

    /** Schedule @p cb to run @p delta cycles from now. */
    void
    scheduleIn(Cycles delta, Callback cb)
    {
        schedule(now_ + delta, std::move(cb));
    }

    /**
     * Execute the next event.
     * @retval false if the queue was empty.
     */
    bool
    runOne()
    {
        if (heap_.empty())
            return false;
        // Move the callback out before popping so the event may
        // schedule further events (including at the same tick).
        Event ev = std::move(const_cast<Event &>(heap_.top()));
        heap_.pop();
        now_ = ev.when;
        ++executed_;
        ev.cb();
        return true;
    }

    /** Run until the queue drains. */
    void
    runAll()
    {
        while (runOne()) {
        }
    }

    /**
     * Run until the queue drains or @p until is reached, whichever is
     * first.  Events at exactly @p until still execute.
     */
    void
    runUntil(Tick until)
    {
        while (!heap_.empty() && heap_.top().when <= until) {
            runOne();
        }
        if (now_ < until && heap_.empty())
            now_ = until;
    }

    /**
     * Run until @p done returns true (checked after each event) or the
     * queue drains.
     * @retval true if @p done was satisfied.
     */
    bool
    runWhile(const std::function<bool()> &done)
    {
        while (!done()) {
            if (!runOne())
                return false;
        }
        return true;
    }

  private:
    struct Event {
        Tick when;
        std::uint64_t seq;
        Callback cb;
    };

    struct Later {
        bool
        operator()(const Event &a, const Event &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    std::priority_queue<Event, std::vector<Event>, Later> heap_;
    Tick now_ = 0;
    std::uint64_t nextSeq_ = 0;
    std::uint64_t executed_ = 0;
};

/**
 * A resource that serves one request at a time in FCFS order, modeled
 * analytically: acquire() returns the time service may begin and books
 * the occupancy.  Used for buses, controller occupancy, DRAM banks and
 * network links, where queueing delay (not event interleaving) is the
 * behaviour of interest.
 */
class FcfsResource
{
  public:
    /**
     * Request @p occupancy cycles of service no earlier than @p at.
     * @return the tick at which service begins.
     */
    Tick
    acquire(Tick at, Cycles occupancy)
    {
        Tick start = at > nextFree_ ? at : nextFree_;
        nextFree_ = start + occupancy;
        busyCycles_ += occupancy;
        ++grants_;
        return start;
    }

    /** Earliest time a new request could start service. */
    Tick nextFree() const { return nextFree_; }

    /** Total cycles of booked service (utilization numerator). */
    Cycles busyCycles() const { return busyCycles_; }

    /** Number of grants made. */
    std::uint64_t grants() const { return grants_; }

  private:
    Tick nextFree_ = 0;
    Cycles busyCycles_ = 0;
    std::uint64_t grants_ = 0;
};

} // namespace prism

#endif // PRISM_SIM_EVENT_QUEUE_HH
