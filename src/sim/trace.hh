/**
 * @file
 * Fixed-size ring buffer of recent simulation events.
 *
 * Used by the protocol oracle to dump the message history leading up
 * to an invariant violation: Machine::route records every network
 * message here (when an oracle is active), and the oracle replays the
 * tail to stderr when it reports.  The ring is bounded and written
 * with plain stores, so tracing adds only a few cycles per message.
 */

#ifndef PRISM_SIM_TRACE_HH
#define PRISM_SIM_TRACE_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/types.hh"

namespace prism {

/** One recorded event. */
struct TraceEvent {
    Tick tick = 0;
    std::uint64_t gpage = 0;
    std::uint32_t lineIdx = 0;
    std::uint16_t kind = 0; //!< caller-defined discriminator (MsgType)
    std::uint16_t src = 0;
    std::uint16_t dst = 0;
};

/** Bounded history of TraceEvents; old entries are overwritten. */
class TraceRing
{
  public:
    explicit TraceRing(std::size_t capacity = 256)
        : ring_(capacity)
    {
    }

    void
    push(const TraceEvent &e)
    {
        ring_[next_ % ring_.size()] = e;
        ++next_;
    }

    /** Total events ever recorded. */
    std::uint64_t recorded() const { return next_; }

    /** Number of events currently held (<= capacity). */
    std::size_t
    size() const
    {
        return next_ < ring_.size() ? static_cast<std::size_t>(next_)
                                    : ring_.size();
    }

    /**
     * @p i-th most recent event, i in [0, size()): 0 is the newest.
     */
    const TraceEvent &
    recent(std::size_t i) const
    {
        return ring_[(next_ - 1 - i) % ring_.size()];
    }

  private:
    std::vector<TraceEvent> ring_;
    std::uint64_t next_ = 0;
};

} // namespace prism

#endif // PRISM_SIM_TRACE_HH
