/**
 * @file
 * Set-associative write-back cache model with MESI line states.
 *
 * Used for both the per-processor L1 and L2.  The model tracks tags and
 * states only (no data contents are simulated); timing is charged by
 * the callers.  Addresses are physical: PRISM nodes are physically
 * indexed and tagged, and each node has its own private physical
 * address space.
 *
 * The tag store is a structure of arrays: per-set packed tag and state
 * arrays (way scans touch two small contiguous runs instead of
 * striding over 24-byte line structs), and per-set recency byte arrays
 * replacing the old global 64-bit LRU stamps.  A frame-residency index
 * (per-frame resident-line counts) makes anyInFrame() and validLines()
 * O(1) and invalidateFrame() proportional to the frame's resident
 * lines, not the cache size.  All replacement decisions are
 * bit-identical to the previous array-of-structs implementation.
 */

#ifndef PRISM_MEM_CACHE_HH
#define PRISM_MEM_CACHE_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "mem/addr.hh"
#include "sim/logging.hh"
#include "sim/types.hh"

namespace prism {

/**
 * Processor-cache line states, the union over all supported line
 * protocols (coherence/line_protocol).  The first four are classic
 * MESI and keep their historical numeric values; Owned (MOESI) and
 * Forward (MESIF) are appended so stored state bytes stay valid.
 *
 * Numeric order is NOT permission order once the appended states are
 * in play — compare with lineStrength() / strongerLine(), never with
 * raw `<`/`>`.
 */
enum class LineState : std::uint8_t {
    Invalid,
    Shared,
    Exclusive,
    Modified,
    Owned,   //!< dirty, this cache supplies; other Shared copies exist
    Forward, //!< clean Shared copy designated to supply (newest sharer)
};

/** Historical alias: most of the simulator predates the widening. */
using Mesi = LineState;

/** Human-readable name of a line state. */
const char *mesiName(Mesi s);

/**
 * Access-permission strength, for merging the L1/L2 views of a line:
 * I < S < F < E < O < M.  For the four MESI states this coincides
 * with the numeric enum order the pre-widening code compared with.
 */
constexpr int
lineStrength(LineState s)
{
    switch (s) {
      case LineState::Invalid: return 0;
      case LineState::Shared: return 1;
      case LineState::Forward: return 2;
      case LineState::Exclusive: return 3;
      case LineState::Owned: return 4;
      case LineState::Modified: return 5;
    }
    return 0;
}

/** The stronger of two views of one line (ties keep @p a). */
constexpr LineState
strongerLine(LineState a, LineState b)
{
    return lineStrength(a) >= lineStrength(b) ? a : b;
}

/**
 * Owner-class states: the holder is responsible for the line's data
 * (supplies interventions, must not be dropped silently).  At the
 * inter-node level an owner-class processor copy implies the node
 * holds the line exclusively in the full-map directory.
 */
constexpr bool
ownerClass(LineState s)
{
    return s == LineState::Modified || s == LineState::Exclusive ||
           s == LineState::Owned;
}

/** States whose data is dirty with respect to memory. */
constexpr bool
dirtyLine(LineState s)
{
    return s == LineState::Modified || s == LineState::Owned;
}

/** Result of a cache insertion: the victim line, if one was evicted. */
struct Victim {
    std::uint64_t lineAddr; //!< physical address of the victim line
    Mesi state;             //!< state the victim held
};

/**
 * Open-addressed map from frame number to resident-line count.
 *
 * Frames are sparse (imaginary LA-NUMA frames start at 2^24), so a
 * dense array will not do.  Linear probing over a power-of-two table
 * of (frame, count) slots -- one cache line per probe.  A slot whose
 * count drops to zero is deleted immediately with a backward shift,
 * so the table size tracks the number of frames with resident lines
 * (bounded by the line count) and probe chains stay short.
 */
class FrameResidency
{
  public:
    FrameResidency() : slots_(64), mask_(63) {}

    /** Resident-line count for @p frame (0 if absent). */
    std::uint32_t
    count(FrameNum frame) const
    {
        std::size_t i = hash(frame) & mask_;
        while (slots_[i].count) {
            if (slots_[i].frame == frame)
                return slots_[i].count;
            i = (i + 1) & mask_;
        }
        return 0;
    }

    void
    add(FrameNum frame)
    {
        std::size_t i = probe(frame);
        if (slots_[i].count == 0) {
            if ((live_ + 1) * 10 >= slots_.size() * 7) {
                grow();
                i = probe(frame);
            }
            slots_[i].frame = frame;
            ++live_;
        }
        ++slots_[i].count;
    }

    void
    remove(FrameNum frame)
    {
        std::size_t i = probe(frame);
        prism_assert(slots_[i].count > 0, "frame-residency underflow");
        if (--slots_[i].count > 0)
            return;
        --live_;
        // Backward-shift deletion: close the hole so later probes
        // never cross a dead slot.
        std::size_t hole = i;
        std::size_t j = i;
        for (;;) {
            j = (j + 1) & mask_;
            if (slots_[j].count == 0)
                break;
            const std::size_t home = hash(slots_[j].frame) & mask_;
            if (((j - home) & mask_) >= ((j - hole) & mask_)) {
                slots_[hole] = slots_[j];
                hole = j;
            }
        }
        slots_[hole].count = 0;
    }

  private:
    struct Slot {
        FrameNum frame = 0;
        std::uint32_t count = 0;
    };

    static std::size_t
    hash(FrameNum f)
    {
        return static_cast<std::size_t>(
            (f * 0x9E3779B97F4A7C15ULL) >> 32);
    }

    /** Slot holding @p frame, or the empty slot where it would go. */
    std::size_t
    probe(FrameNum frame) const
    {
        std::size_t i = hash(frame) & mask_;
        while (slots_[i].count && slots_[i].frame != frame)
            i = (i + 1) & mask_;
        return i;
    }

    void
    grow()
    {
        std::vector<Slot> old = std::move(slots_);
        slots_.assign(old.size() * 2, Slot{});
        mask_ = slots_.size() - 1;
        for (const Slot &s : old) {
            if (s.count)
                slots_[probe(s.frame)] = s;
        }
    }

    std::vector<Slot> slots_;
    std::size_t mask_;
    std::size_t live_ = 0;
};

/**
 * A set-associative cache of MESI tags with true-LRU replacement.
 *
 * Line addresses are physical byte addresses truncated to line
 * granularity by the cache itself.
 */
class SetAssocCache
{
  public:
    /**
     * @param size_bytes  total capacity
     * @param assoc       associativity (1 = direct mapped)
     * @param line_bytes  line size
     */
    SetAssocCache(std::uint32_t size_bytes, std::uint32_t assoc,
                  std::uint32_t line_bytes);

    /** State of the line containing @p paddr (Invalid if absent). */
    Mesi
    lookup(std::uint64_t paddr) const
    {
        const std::uint64_t la = lineAlign(paddr);
        const std::size_t base = rowBase(la);
        for (std::uint32_t w = 0; w < assoc_; ++w) {
            if (tags_[base + w] == la &&
                states_[base + w] != static_cast<std::uint8_t>(
                                         Mesi::Invalid))
                return static_cast<Mesi>(states_[base + w]);
        }
        return Mesi::Invalid;
    }

    /** True if the line is present in any valid state. */
    bool contains(std::uint64_t paddr) const { return lookup(paddr) != Mesi::Invalid; }

    /** Update LRU on an access to a present line. */
    void touch(std::uint64_t paddr);

    /**
     * Set the state of a present line.
     * panics if the line is absent (callers must check first).
     */
    void setState(std::uint64_t paddr, Mesi s);

    /**
     * Insert (or overwrite) the line containing @p paddr with state
     * @p s, evicting the LRU way of the set if needed.
     * @return the evicted victim, if any valid line was displaced.
     */
    std::optional<Victim> insert(std::uint64_t paddr, Mesi s);

    /**
     * Remove the line containing @p paddr.
     * @return the state it held (Invalid if it was absent).
     */
    Mesi invalidate(std::uint64_t paddr);

    /** Invalidate every line belonging to physical frame @p frame. */
    std::vector<Victim> invalidateFrame(FrameNum frame);

    /** Number of valid lines currently held (O(1)). */
    std::uint32_t validLines() const { return validCount_; }

    /** Snapshot of all valid (lineAddr, state) pairs (test support). */
    std::vector<std::pair<std::uint64_t, Mesi>> snapshot() const;

    /** True if any valid line belongs to physical frame @p frame (O(1)). */
    bool
    anyInFrame(FrameNum frame) const
    {
        return resid_.count(frame) != 0;
    }

    std::uint32_t numSets() const { return numSets_; }
    std::uint32_t assoc() const { return assoc_; }
    std::uint32_t lineBytes() const { return lineBytes_; }

    /** Victim that insert() of @p paddr would evict, without evicting. */
    std::optional<Victim> peekVictim(std::uint64_t paddr) const;

  private:
    std::uint64_t
    lineAlign(std::uint64_t paddr) const
    {
        return paddr & ~static_cast<std::uint64_t>(lineBytes_ - 1);
    }

    std::uint32_t
    setIndex(std::uint64_t line_addr) const
    {
        return static_cast<std::uint32_t>((line_addr >> lineShift_) &
                                          (numSets_ - 1));
    }

    /** Index of a set's first way slot in the packed arrays. */
    std::size_t
    rowBase(std::uint64_t line_addr) const
    {
        return static_cast<std::size_t>(setIndex(line_addr)) * assoc_;
    }

    /** Way holding @p la in the set at @p base, or assoc_ if absent. */
    std::uint32_t
    findWay(std::size_t base, std::uint64_t la) const
    {
        for (std::uint32_t w = 0; w < assoc_; ++w) {
            if (tags_[base + w] == la &&
                states_[base + w] != static_cast<std::uint8_t>(
                                         Mesi::Invalid))
                return w;
        }
        return assoc_;
    }

    /** Move @p way to the MRU position of the set at @p base. */
    void makeMru(std::size_t base, std::uint8_t way);

    /** Invalidate the slot at @p base + @p way (bookkeeping). */
    void
    clearSlot(std::size_t base, std::uint32_t way)
    {
        states_[base + way] =
            static_cast<std::uint8_t>(Mesi::Invalid);
        --validCount_;
        resid_.remove(tags_[base + way] >> kPageShift);
    }

    std::uint32_t assoc_;
    std::uint32_t lineBytes_;
    std::uint32_t lineShift_;
    std::uint32_t numSets_;
    std::vector<std::uint64_t> tags_;  //!< numSets_ x assoc_, row-major
    std::vector<std::uint8_t> states_; //!< Mesi, same layout
    /** Per-set recency order: way ids, MRU first (same row layout). */
    std::vector<std::uint8_t> order_;
    std::uint32_t validCount_ = 0;
    FrameResidency resid_;
};

} // namespace prism

#endif // PRISM_MEM_CACHE_HH
