/**
 * @file
 * Set-associative write-back cache model with MESI line states.
 *
 * Used for both the per-processor L1 and L2.  The model tracks tags and
 * states only (no data contents are simulated); timing is charged by
 * the callers.  Addresses are physical: PRISM nodes are physically
 * indexed and tagged, and each node has its own private physical
 * address space.
 */

#ifndef PRISM_MEM_CACHE_HH
#define PRISM_MEM_CACHE_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "mem/addr.hh"
#include "sim/logging.hh"
#include "sim/types.hh"

namespace prism {

/** Classic MESI line states. */
enum class Mesi : std::uint8_t {
    Invalid,
    Shared,
    Exclusive,
    Modified,
};

/** Human-readable name of a MESI state. */
const char *mesiName(Mesi s);

/** Result of a cache insertion: the victim line, if one was evicted. */
struct Victim {
    std::uint64_t lineAddr; //!< physical address of the victim line
    Mesi state;             //!< state the victim held
};

/**
 * A set-associative cache of MESI tags with true-LRU replacement.
 *
 * Line addresses are physical byte addresses truncated to line
 * granularity by the cache itself.
 */
class SetAssocCache
{
  public:
    /**
     * @param size_bytes  total capacity
     * @param assoc       associativity (1 = direct mapped)
     * @param line_bytes  line size
     */
    SetAssocCache(std::uint32_t size_bytes, std::uint32_t assoc,
                  std::uint32_t line_bytes);

    /** State of the line containing @p paddr (Invalid if absent). */
    Mesi lookup(std::uint64_t paddr) const;

    /** True if the line is present in any valid state. */
    bool contains(std::uint64_t paddr) const { return lookup(paddr) != Mesi::Invalid; }

    /** Update LRU on an access to a present line. */
    void touch(std::uint64_t paddr);

    /**
     * Set the state of a present line.
     * panics if the line is absent (callers must check first).
     */
    void setState(std::uint64_t paddr, Mesi s);

    /**
     * Insert (or overwrite) the line containing @p paddr with state
     * @p s, evicting the LRU way of the set if needed.
     * @return the evicted victim, if any valid line was displaced.
     */
    std::optional<Victim> insert(std::uint64_t paddr, Mesi s);

    /**
     * Remove the line containing @p paddr.
     * @return the state it held (Invalid if it was absent).
     */
    Mesi invalidate(std::uint64_t paddr);

    /** Invalidate every line belonging to physical frame @p frame. */
    std::vector<Victim> invalidateFrame(FrameNum frame);

    /** Number of valid lines currently held. */
    std::uint32_t validLines() const;

    /** Snapshot of all valid (lineAddr, state) pairs (test support). */
    std::vector<std::pair<std::uint64_t, Mesi>> snapshot() const;

    /** True if any valid line belongs to physical frame @p frame. */
    bool anyInFrame(FrameNum frame) const;

    std::uint32_t numSets() const { return numSets_; }
    std::uint32_t assoc() const { return assoc_; }
    std::uint32_t lineBytes() const { return lineBytes_; }

    /** Victim that insert() of @p paddr would evict, without evicting. */
    std::optional<Victim> peekVictim(std::uint64_t paddr) const;

  private:
    struct Line {
        std::uint64_t addr = 0; //!< line-aligned physical address
        Mesi state = Mesi::Invalid;
        std::uint64_t lastUse = 0;
    };

    std::uint64_t lineAlign(std::uint64_t paddr) const;
    std::uint32_t setIndex(std::uint64_t line_addr) const;
    Line *find(std::uint64_t paddr);
    const Line *find(std::uint64_t paddr) const;

    std::uint32_t assoc_;
    std::uint32_t lineBytes_;
    std::uint32_t lineShift_;
    std::uint32_t numSets_;
    std::vector<Line> lines_; //!< numSets_ x assoc_, row-major
    std::uint64_t useClock_ = 0;
};

} // namespace prism

#endif // PRISM_MEM_CACHE_HH
