/**
 * @file
 * Per-processor translation lookaside buffer.
 *
 * Maps virtual pages to node-private physical frames.  A PRISM TLB
 * never holds translations for remote physical memory: LA-NUMA pages
 * translate to imaginary local frames, so TLB shootdowns stay within
 * one node (a key scalability property of the paper).
 *
 * The model is an exact fully-associative LRU, implemented as a fixed
 * slot array threaded on an intrusive recency list, with an
 * open-addressed index from virtual page to slot.  Lookup, insert,
 * eviction and invalidation are all O(1); semantics (including the
 * LRU victim on a full insert) are identical to the previous
 * unordered_map + 64-bit-stamp implementation.
 */

#ifndef PRISM_MEM_TLB_HH
#define PRISM_MEM_TLB_HH

#include <cstdint>
#include <vector>

#include "mem/addr.hh"
#include "sim/logging.hh"
#include "sim/types.hh"

namespace prism {

/** Fully-associative LRU TLB model. */
class Tlb
{
  public:
    explicit Tlb(std::uint32_t entries)
        : capacity_(entries), slots_(entries)
    {
        prism_assert(entries > 0, "TLB with no entries");
        std::uint32_t buckets = 4;
        while (buckets < 4 * entries)
            buckets <<= 1;
        bucketMask_ = buckets - 1;
        index_.assign(buckets, kNoSlot);
        // All slots start on the free list.
        for (std::uint32_t i = 0; i + 1 < entries; ++i)
            slots_[i].next = i + 1;
        slots_[entries - 1].next = kNoSlot;
        freeHead_ = 0;
    }

    /**
     * Look up @p vp.
     * @return the frame, or kInvalidFrame on a TLB miss.
     */
    FrameNum
    lookup(VPage vp)
    {
        const std::uint32_t s = findSlot(vp);
        if (s == kNoSlot) {
            ++misses_;
            return kInvalidFrame;
        }
        moveToFront(s);
        ++hits_;
        return slots_[s].frame;
    }

    /** Install a translation (evicts LRU entry when full). */
    void
    insert(VPage vp, FrameNum frame)
    {
        std::uint32_t s = findSlot(vp);
        if (s != kNoSlot) {
            slots_[s].frame = frame;
            moveToFront(s);
            return;
        }
        if (size_ >= capacity_) {
            // Recycle the LRU slot for the new translation.
            s = lruTail_;
            unlink(s);
            eraseIndex(slots_[s].vp);
            --size_;
        } else {
            s = freeHead_;
            freeHead_ = slots_[s].next;
        }
        slots_[s].vp = vp;
        slots_[s].frame = frame;
        linkFront(s);
        indexInsert(vp, s);
        ++size_;
    }

    /** Remove the translation for @p vp if present (local shootdown). */
    void
    invalidate(VPage vp)
    {
        const std::uint32_t s = findSlot(vp);
        if (s == kNoSlot)
            return;
        unlink(s);
        eraseIndex(vp);
        slots_[s].next = freeHead_;
        freeHead_ = s;
        --size_;
    }

    /** Drop everything (context switch / full shootdown). */
    void
    flush()
    {
        index_.assign(index_.size(), kNoSlot);
        for (std::uint32_t i = 0; i + 1 < capacity_; ++i)
            slots_[i].next = i + 1;
        slots_[capacity_ - 1].next = kNoSlot;
        freeHead_ = 0;
        mruHead_ = kNoSlot;
        lruTail_ = kNoSlot;
        size_ = 0;
    }

    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }
    std::size_t size() const { return size_; }
    std::uint32_t capacity() const { return capacity_; }

  private:
    static constexpr std::uint32_t kNoSlot = ~0U;

    struct Slot {
        VPage vp = 0;
        FrameNum frame = kInvalidFrame;
        std::uint32_t prev = kNoSlot;
        std::uint32_t next = kNoSlot;
    };

    static std::uint32_t
    hash(VPage vp)
    {
        return static_cast<std::uint32_t>(
            (vp * 0x9E3779B97F4A7C15ULL) >> 32);
    }

    /** Slot holding @p vp, or kNoSlot. */
    std::uint32_t
    findSlot(VPage vp) const
    {
        std::uint32_t i = hash(vp) & bucketMask_;
        while (index_[i] != kNoSlot) {
            if (slots_[index_[i]].vp == vp)
                return index_[i];
            i = (i + 1) & bucketMask_;
        }
        return kNoSlot;
    }

    void
    indexInsert(VPage vp, std::uint32_t slot)
    {
        std::uint32_t i = hash(vp) & bucketMask_;
        while (index_[i] != kNoSlot)
            i = (i + 1) & bucketMask_;
        index_[i] = slot;
    }

    /** Linear-probe deletion with backward shift (no tombstones). */
    void
    eraseIndex(VPage vp)
    {
        std::uint32_t i = hash(vp) & bucketMask_;
        while (index_[i] == kNoSlot || slots_[index_[i]].vp != vp)
            i = (i + 1) & bucketMask_;
        std::uint32_t hole = i;
        for (std::uint32_t j = (hole + 1) & bucketMask_;
             index_[j] != kNoSlot; j = (j + 1) & bucketMask_) {
            const std::uint32_t home =
                hash(slots_[index_[j]].vp) & bucketMask_;
            // Shift back entries whose probe path passes the hole.
            const bool reachable =
                ((j - home) & bucketMask_) >= ((j - hole) & bucketMask_);
            if (reachable) {
                index_[hole] = index_[j];
                hole = j;
            }
        }
        index_[hole] = kNoSlot;
    }

    void
    linkFront(std::uint32_t s)
    {
        slots_[s].prev = kNoSlot;
        slots_[s].next = mruHead_;
        if (mruHead_ != kNoSlot)
            slots_[mruHead_].prev = s;
        mruHead_ = s;
        if (lruTail_ == kNoSlot)
            lruTail_ = s;
    }

    void
    unlink(std::uint32_t s)
    {
        if (slots_[s].prev != kNoSlot)
            slots_[slots_[s].prev].next = slots_[s].next;
        else
            mruHead_ = slots_[s].next;
        if (slots_[s].next != kNoSlot)
            slots_[slots_[s].next].prev = slots_[s].prev;
        else
            lruTail_ = slots_[s].prev;
    }

    void
    moveToFront(std::uint32_t s)
    {
        if (mruHead_ == s)
            return;
        unlink(s);
        linkFront(s);
    }

    std::uint32_t capacity_;
    std::uint32_t bucketMask_ = 0;
    std::vector<Slot> slots_;
    std::vector<std::uint32_t> index_; //!< bucket -> slot, kNoSlot empty
    std::uint32_t freeHead_ = kNoSlot;
    std::uint32_t mruHead_ = kNoSlot;
    std::uint32_t lruTail_ = kNoSlot;
    std::uint32_t size_ = 0;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
};

} // namespace prism

#endif // PRISM_MEM_TLB_HH
