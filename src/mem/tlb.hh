/**
 * @file
 * Per-processor translation lookaside buffer.
 *
 * Maps virtual pages to node-private physical frames.  A PRISM TLB
 * never holds translations for remote physical memory: LA-NUMA pages
 * translate to imaginary local frames, so TLB shootdowns stay within
 * one node (a key scalability property of the paper).
 */

#ifndef PRISM_MEM_TLB_HH
#define PRISM_MEM_TLB_HH

#include <cstdint>
#include <unordered_map>

#include "mem/addr.hh"
#include "sim/types.hh"

namespace prism {

/** Fully-associative LRU TLB model. */
class Tlb
{
  public:
    explicit Tlb(std::uint32_t entries) : capacity_(entries) {}

    /**
     * Look up @p vp.
     * @return the frame, or kInvalidFrame on a TLB miss.
     */
    FrameNum
    lookup(VPage vp)
    {
        auto it = map_.find(vp);
        if (it == map_.end()) {
            ++misses_;
            return kInvalidFrame;
        }
        it->second.lastUse = ++clock_;
        ++hits_;
        return it->second.frame;
    }

    /** Install a translation (evicts LRU entry when full). */
    void
    insert(VPage vp, FrameNum frame)
    {
        if (map_.size() >= capacity_ && map_.find(vp) == map_.end()) {
            auto lru = map_.begin();
            for (auto it = map_.begin(); it != map_.end(); ++it) {
                if (it->second.lastUse < lru->second.lastUse)
                    lru = it;
            }
            map_.erase(lru);
        }
        map_[vp] = Entry{frame, ++clock_};
    }

    /** Remove the translation for @p vp if present (local shootdown). */
    void invalidate(VPage vp) { map_.erase(vp); }

    /** Drop everything (context switch / full shootdown). */
    void flush() { map_.clear(); }

    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }
    std::size_t size() const { return map_.size(); }
    std::uint32_t capacity() const { return capacity_; }

  private:
    struct Entry {
        FrameNum frame;
        std::uint64_t lastUse;
    };

    std::uint32_t capacity_;
    std::unordered_map<VPage, Entry> map_;
    std::uint64_t clock_ = 0;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
};

} // namespace prism

#endif // PRISM_MEM_TLB_HH
