/**
 * @file
 * Node memory (DRAM) timing model.
 *
 * Models access latency plus FCFS bank contention.  On S-COMA nodes
 * part of this memory is managed by the OS as the page cache for
 * globally shared pages; the controller reads/writes lines of it when
 * servicing misses and writebacks.
 */

#ifndef PRISM_MEM_DRAM_HH
#define PRISM_MEM_DRAM_HH

#include "sim/event_queue.hh"
#include "sim/types.hh"

namespace prism {

/** Simple DRAM with a fixed access latency and single-port contention. */
class Dram
{
  public:
    explicit Dram(Cycles access_cycles) : accessCycles_(access_cycles) {}

    /**
     * Book one line access (read or write) starting no earlier than @p at.
     * @return the time the access completes.
     */
    Tick
    access(Tick at)
    {
        ++accesses_;
        return port_.acquire(at, accessCycles_) + accessCycles_;
    }

    Cycles accessCycles() const { return accessCycles_; }
    std::uint64_t accesses() const { return accesses_; }
    Cycles busyCycles() const { return port_.busyCycles(); }

  private:
    Cycles accessCycles_;
    FcfsResource port_;
    std::uint64_t accesses_ = 0;
};

} // namespace prism

#endif // PRISM_MEM_DRAM_HH
