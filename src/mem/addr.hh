/**
 * @file
 * Address spaces and geometry.
 *
 * PRISM distinguishes three address spaces (paper Fig. 6):
 *  - virtual addresses   (VSID, page number, offset) — per process,
 *  - physical addresses  (frame number, offset)      — private per node,
 *  - global addresses    (GSID, page number, offset) — system-wide names
 *    for shared data; they do NOT encode the home node's location.
 *
 * Pages are fixed at 4 KB as in the paper.  Cache-line size is a
 * machine configuration parameter (default 64 bytes).
 */

#ifndef PRISM_MEM_ADDR_HH
#define PRISM_MEM_ADDR_HH

#include <cstdint>
#include <functional>

#include "sim/types.hh"

namespace prism {

/** log2 of the page size; PRISM fixes 4 KB pages like the paper. */
constexpr std::uint32_t kPageShift = 12;
/** Page size in bytes. */
constexpr std::uint64_t kPageBytes = 1ULL << kPageShift;

/** Bits of the page-number field inside virtual/global addresses. */
constexpr std::uint32_t kPageNumBits = 24;
/** Bit position where the segment identifier (VSID/GSID) begins. */
constexpr std::uint32_t kSegShift = kPageShift + kPageNumBits;

/** Identifier of a virtual page (VSID and page number combined). */
using VPage = std::uint64_t;
/** Identifier of a global page (GSID and page number combined). */
using GPage = std::uint64_t;
/** Identifier of a global cache line (GPage and line index combined). */
using GLine = std::uint64_t;

/** Sentinel global page. */
constexpr GPage kInvalidGPage = ~0ULL;

/** A virtual address: (VSID, page number, offset). */
struct VAddr {
    std::uint64_t raw = 0;

    constexpr VPage page() const { return raw >> kPageShift; }
    constexpr std::uint64_t offset() const { return raw & (kPageBytes - 1); }
    constexpr std::uint64_t vsid() const { return raw >> kSegShift; }

    constexpr auto operator<=>(const VAddr &) const = default;
};

/** A global address: (GSID, page number, offset). */
struct GAddr {
    std::uint64_t raw = 0;

    constexpr GPage page() const { return raw >> kPageShift; }
    constexpr std::uint64_t offset() const { return raw & (kPageBytes - 1); }
    constexpr std::uint64_t gsid() const { return raw >> kSegShift; }

    constexpr auto operator<=>(const GAddr &) const = default;
};

/** A node-private physical address: (frame number, offset). */
struct PAddr {
    std::uint64_t raw = 0;

    constexpr FrameNum frame() const { return raw >> kPageShift; }
    constexpr std::uint64_t offset() const { return raw & (kPageBytes - 1); }

    constexpr auto operator<=>(const PAddr &) const = default;
};

/** Compose a virtual address from its fields. */
constexpr VAddr
makeVAddr(std::uint64_t vsid, std::uint64_t page_num, std::uint64_t offset)
{
    return VAddr{(vsid << kSegShift) | (page_num << kPageShift) | offset};
}

/** Compose a global address from its fields. */
constexpr GAddr
makeGAddr(std::uint64_t gsid, std::uint64_t page_num, std::uint64_t offset)
{
    return GAddr{(gsid << kSegShift) | (page_num << kPageShift) | offset};
}

/** Compose a physical address from frame and offset. */
constexpr PAddr
makePAddr(FrameNum frame, std::uint64_t offset)
{
    return PAddr{(frame << kPageShift) | offset};
}

/** Geometry helper for the configurable cache-line size. */
class LineGeometry
{
  public:
    explicit LineGeometry(std::uint32_t line_bytes)
        : lineBytes_(line_bytes), lineShift_(log2i(line_bytes)),
          linesPerPage_(static_cast<std::uint32_t>(kPageBytes) / line_bytes)
    {
    }

    std::uint32_t lineBytes() const { return lineBytes_; }
    std::uint32_t lineShift() const { return lineShift_; }
    std::uint32_t linesPerPage() const { return linesPerPage_; }

    /** Index of the line containing @p offset within its page. */
    std::uint32_t
    lineIndex(std::uint64_t offset) const
    {
        return static_cast<std::uint32_t>((offset & (kPageBytes - 1)) >>
                                          lineShift_);
    }

    /** Global line id for @p ga. */
    GLine
    lineOf(GAddr ga) const
    {
        return ga.raw >> lineShift_;
    }

    /** Global line id from a page and a line index. */
    GLine
    lineOf(GPage gp, std::uint32_t line_idx) const
    {
        return (gp << (kPageShift - lineShift_)) | line_idx;
    }

    /** Page containing global line @p gl. */
    GPage
    pageOf(GLine gl) const
    {
        return gl >> (kPageShift - lineShift_);
    }

    /** Line index of global line @p gl within its page. */
    std::uint32_t
    indexOf(GLine gl) const
    {
        return static_cast<std::uint32_t>(gl & (linesPerPage_ - 1));
    }

    static constexpr std::uint32_t
    log2i(std::uint64_t v)
    {
        std::uint32_t r = 0;
        while ((1ULL << r) < v)
            ++r;
        return r;
    }

  private:
    std::uint32_t lineBytes_;
    std::uint32_t lineShift_;
    std::uint32_t linesPerPage_;
};

} // namespace prism

#endif // PRISM_MEM_ADDR_HH
