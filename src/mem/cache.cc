#include "mem/cache.hh"

#include <cstring>

namespace prism {

const char *
mesiName(Mesi s)
{
    switch (s) {
      case Mesi::Invalid: return "I";
      case Mesi::Shared: return "S";
      case Mesi::Exclusive: return "E";
      case Mesi::Modified: return "M";
      case Mesi::Owned: return "O";
      case Mesi::Forward: return "F";
    }
    return "?";
}

SetAssocCache::SetAssocCache(std::uint32_t size_bytes, std::uint32_t assoc,
                             std::uint32_t line_bytes)
    : assoc_(assoc), lineBytes_(line_bytes),
      lineShift_(LineGeometry::log2i(line_bytes)),
      numSets_(size_bytes / (assoc * line_bytes)),
      tags_(static_cast<std::size_t>(numSets_) * assoc, 0),
      states_(static_cast<std::size_t>(numSets_) * assoc,
              static_cast<std::uint8_t>(Mesi::Invalid)),
      order_(static_cast<std::size_t>(numSets_) * assoc, 0)
{
    prism_assert(numSets_ > 0, "cache with zero sets");
    prism_assert((numSets_ & (numSets_ - 1)) == 0,
                 "cache set count must be a power of two");
    prism_assert(assoc_ >= 1 && assoc_ <= 255,
                 "associativity must fit the recency byte array");
    for (std::size_t s = 0; s < numSets_; ++s) {
        for (std::uint32_t w = 0; w < assoc_; ++w)
            order_[s * assoc_ + w] = static_cast<std::uint8_t>(w);
    }
}

void
SetAssocCache::makeMru(std::size_t base, std::uint8_t way)
{
    std::uint8_t *ord = &order_[base];
    if (ord[0] == way)
        return;
    std::uint32_t pos = 1;
    while (ord[pos] != way)
        ++pos;
    std::memmove(ord + 1, ord, pos);
    ord[0] = way;
}

void
SetAssocCache::touch(std::uint64_t paddr)
{
    const std::uint64_t la = lineAlign(paddr);
    const std::size_t base = rowBase(la);
    // One scan in recency order doubles as the tag probe and the
    // order-position search; a touch of the MRU line writes nothing.
    std::uint8_t *ord = &order_[base];
    for (std::uint32_t pos = 0; pos < assoc_; ++pos) {
        const std::uint8_t w = ord[pos];
        if (tags_[base + w] == la &&
            states_[base + w] !=
                static_cast<std::uint8_t>(Mesi::Invalid)) {
            if (pos) {
                std::memmove(ord + 1, ord, pos);
                ord[0] = w;
            }
            return;
        }
    }
}

void
SetAssocCache::setState(std::uint64_t paddr, Mesi s)
{
    const std::uint64_t la = lineAlign(paddr);
    const std::size_t base = rowBase(la);
    const std::uint32_t w = findWay(base, la);
    prism_assert(w != assoc_, "setState on absent line");
    if (s == Mesi::Invalid)
        clearSlot(base, w);
    else
        states_[base + w] = static_cast<std::uint8_t>(s);
}

std::optional<Victim>
SetAssocCache::insert(std::uint64_t paddr, Mesi s)
{
    prism_assert(s != Mesi::Invalid, "inserting an Invalid line");
    const std::uint64_t la = lineAlign(paddr);
    const std::size_t base = rowBase(la);

    // Overwrite an existing copy of the same line.
    const std::uint32_t hit = findWay(base, la);
    if (hit != assoc_) {
        states_[base + hit] = static_cast<std::uint8_t>(s);
        makeMru(base, static_cast<std::uint8_t>(hit));
        return std::nullopt;
    }

    // Prefer an invalid way (lowest way index, as before).
    for (std::uint32_t w = 0; w < assoc_; ++w) {
        if (states_[base + w] ==
            static_cast<std::uint8_t>(Mesi::Invalid)) {
            tags_[base + w] = la;
            states_[base + w] = static_cast<std::uint8_t>(s);
            makeMru(base, static_cast<std::uint8_t>(w));
            ++validCount_;
            resid_.add(la >> kPageShift);
            return std::nullopt;
        }
    }

    // Evict the LRU way.
    const std::uint8_t v = order_[base + assoc_ - 1];
    Victim out{tags_[base + v], static_cast<Mesi>(states_[base + v])};
    const FrameNum oldFrame = tags_[base + v] >> kPageShift;
    const FrameNum newFrame = la >> kPageShift;
    if (oldFrame != newFrame) {
        resid_.remove(oldFrame);
        resid_.add(newFrame);
    }
    tags_[base + v] = la;
    states_[base + v] = static_cast<std::uint8_t>(s);
    // The victim sits at the order tail; MRU promotion is a rotation.
    if (assoc_ > 1) {
        std::uint8_t *ord = &order_[base];
        std::memmove(ord + 1, ord, assoc_ - 1);
        ord[0] = v;
    }
    return out;
}

std::optional<Victim>
SetAssocCache::peekVictim(std::uint64_t paddr) const
{
    const std::uint64_t la = lineAlign(paddr);
    const std::size_t base = rowBase(la);
    if (findWay(base, la) != assoc_)
        return std::nullopt;
    for (std::uint32_t w = 0; w < assoc_; ++w) {
        if (states_[base + w] ==
            static_cast<std::uint8_t>(Mesi::Invalid))
            return std::nullopt;
    }
    const std::uint8_t v = order_[base + assoc_ - 1];
    return Victim{tags_[base + v],
                  static_cast<Mesi>(states_[base + v])};
}

Mesi
SetAssocCache::invalidate(std::uint64_t paddr)
{
    const std::uint64_t la = lineAlign(paddr);
    const std::size_t base = rowBase(la);
    const std::uint32_t w = findWay(base, la);
    if (w == assoc_)
        return Mesi::Invalid;
    Mesi s = static_cast<Mesi>(states_[base + w]);
    clearSlot(base, w);
    return s;
}

std::vector<Victim>
SetAssocCache::invalidateFrame(FrameNum frame)
{
    std::vector<Victim> out;
    std::uint32_t remaining = resid_.count(frame);
    if (remaining == 0)
        return out;

    // The frame's lines map to at most linesPerPage consecutive set
    // indices (mod numSets_); sweep only those, in ascending set order
    // so victims come out in the same order the full scan produced.
    const std::uint32_t lpp =
        static_cast<std::uint32_t>(kPageBytes) >> lineShift_;
    auto sweepSet = [&](std::uint32_t set) {
        const std::size_t base = static_cast<std::size_t>(set) * assoc_;
        for (std::uint32_t w = 0; w < assoc_ && remaining; ++w) {
            if (states_[base + w] ==
                    static_cast<std::uint8_t>(Mesi::Invalid) ||
                (tags_[base + w] >> kPageShift) != frame)
                continue;
            out.push_back(Victim{tags_[base + w],
                                 static_cast<Mesi>(states_[base + w])});
            clearSlot(base, w);
            --remaining;
        }
    };

    if (lpp >= numSets_) {
        for (std::uint32_t s = 0; s < numSets_ && remaining; ++s)
            sweepSet(s);
        return out;
    }
    const std::uint32_t first =
        setIndex(frame << kPageShift); // set of the frame's first line
    if (first + lpp <= numSets_) {
        for (std::uint32_t s = first; s < first + lpp && remaining; ++s)
            sweepSet(s);
    } else {
        // The range wraps: ascending set order visits the wrapped
        // low-index sets first, then the tail.
        const std::uint32_t wrap = first + lpp - numSets_;
        for (std::uint32_t s = 0; s < wrap && remaining; ++s)
            sweepSet(s);
        for (std::uint32_t s = first; s < numSets_ && remaining; ++s)
            sweepSet(s);
    }
    return out;
}

std::vector<std::pair<std::uint64_t, Mesi>>
SetAssocCache::snapshot() const
{
    std::vector<std::pair<std::uint64_t, Mesi>> out;
    for (std::size_t i = 0; i < tags_.size(); ++i) {
        if (states_[i] != static_cast<std::uint8_t>(Mesi::Invalid))
            out.emplace_back(tags_[i], static_cast<Mesi>(states_[i]));
    }
    return out;
}

} // namespace prism
