#include "mem/cache.hh"

namespace prism {

const char *
mesiName(Mesi s)
{
    switch (s) {
      case Mesi::Invalid: return "I";
      case Mesi::Shared: return "S";
      case Mesi::Exclusive: return "E";
      case Mesi::Modified: return "M";
    }
    return "?";
}

SetAssocCache::SetAssocCache(std::uint32_t size_bytes, std::uint32_t assoc,
                             std::uint32_t line_bytes)
    : assoc_(assoc), lineBytes_(line_bytes),
      lineShift_(LineGeometry::log2i(line_bytes)),
      numSets_(size_bytes / (assoc * line_bytes)),
      lines_(static_cast<std::size_t>(numSets_) * assoc)
{
    prism_assert(numSets_ > 0, "cache with zero sets");
    prism_assert((numSets_ & (numSets_ - 1)) == 0,
                 "cache set count must be a power of two");
}

std::uint64_t
SetAssocCache::lineAlign(std::uint64_t paddr) const
{
    return paddr & ~static_cast<std::uint64_t>(lineBytes_ - 1);
}

std::uint32_t
SetAssocCache::setIndex(std::uint64_t line_addr) const
{
    return static_cast<std::uint32_t>((line_addr >> lineShift_) &
                                      (numSets_ - 1));
}

SetAssocCache::Line *
SetAssocCache::find(std::uint64_t paddr)
{
    const std::uint64_t la = lineAlign(paddr);
    Line *set = &lines_[static_cast<std::size_t>(setIndex(la)) * assoc_];
    for (std::uint32_t w = 0; w < assoc_; ++w) {
        if (set[w].state != Mesi::Invalid && set[w].addr == la)
            return &set[w];
    }
    return nullptr;
}

const SetAssocCache::Line *
SetAssocCache::find(std::uint64_t paddr) const
{
    return const_cast<SetAssocCache *>(this)->find(paddr);
}

Mesi
SetAssocCache::lookup(std::uint64_t paddr) const
{
    const Line *l = find(paddr);
    return l ? l->state : Mesi::Invalid;
}

void
SetAssocCache::touch(std::uint64_t paddr)
{
    Line *l = find(paddr);
    if (l)
        l->lastUse = ++useClock_;
}

void
SetAssocCache::setState(std::uint64_t paddr, Mesi s)
{
    Line *l = find(paddr);
    prism_assert(l != nullptr, "setState on absent line");
    if (s == Mesi::Invalid)
        l->state = Mesi::Invalid;
    else
        l->state = s;
}

std::optional<Victim>
SetAssocCache::insert(std::uint64_t paddr, Mesi s)
{
    prism_assert(s != Mesi::Invalid, "inserting an Invalid line");
    const std::uint64_t la = lineAlign(paddr);
    Line *set = &lines_[static_cast<std::size_t>(setIndex(la)) * assoc_];

    // Overwrite an existing copy of the same line.
    for (std::uint32_t w = 0; w < assoc_; ++w) {
        if (set[w].state != Mesi::Invalid && set[w].addr == la) {
            set[w].state = s;
            set[w].lastUse = ++useClock_;
            return std::nullopt;
        }
    }

    // Prefer an invalid way.
    for (std::uint32_t w = 0; w < assoc_; ++w) {
        if (set[w].state == Mesi::Invalid) {
            set[w] = Line{la, s, ++useClock_};
            return std::nullopt;
        }
    }

    // Evict the LRU way.
    Line *victim = &set[0];
    for (std::uint32_t w = 1; w < assoc_; ++w) {
        if (set[w].lastUse < victim->lastUse)
            victim = &set[w];
    }
    Victim out{victim->addr, victim->state};
    *victim = Line{la, s, ++useClock_};
    return out;
}

std::optional<Victim>
SetAssocCache::peekVictim(std::uint64_t paddr) const
{
    const std::uint64_t la = lineAlign(paddr);
    const Line *set = &lines_[static_cast<std::size_t>(setIndex(la)) * assoc_];
    for (std::uint32_t w = 0; w < assoc_; ++w) {
        if (set[w].state != Mesi::Invalid && set[w].addr == la)
            return std::nullopt;
    }
    for (std::uint32_t w = 0; w < assoc_; ++w) {
        if (set[w].state == Mesi::Invalid)
            return std::nullopt;
    }
    const Line *victim = &set[0];
    for (std::uint32_t w = 1; w < assoc_; ++w) {
        if (set[w].lastUse < victim->lastUse)
            victim = &set[w];
    }
    return Victim{victim->addr, victim->state};
}

Mesi
SetAssocCache::invalidate(std::uint64_t paddr)
{
    Line *l = find(paddr);
    if (!l)
        return Mesi::Invalid;
    Mesi s = l->state;
    l->state = Mesi::Invalid;
    return s;
}

std::vector<Victim>
SetAssocCache::invalidateFrame(FrameNum frame)
{
    std::vector<Victim> out;
    const std::uint64_t lo = frame << kPageShift;
    const std::uint64_t hi = lo + kPageBytes;
    for (auto &l : lines_) {
        if (l.state != Mesi::Invalid && l.addr >= lo && l.addr < hi) {
            out.push_back(Victim{l.addr, l.state});
            l.state = Mesi::Invalid;
        }
    }
    return out;
}

std::vector<std::pair<std::uint64_t, Mesi>>
SetAssocCache::snapshot() const
{
    std::vector<std::pair<std::uint64_t, Mesi>> out;
    for (const auto &l : lines_) {
        if (l.state != Mesi::Invalid)
            out.emplace_back(l.addr, l.state);
    }
    return out;
}

bool
SetAssocCache::anyInFrame(FrameNum frame) const
{
    const std::uint64_t lo = frame << kPageShift;
    const std::uint64_t hi = lo + kPageBytes;
    for (const auto &l : lines_) {
        if (l.state != Mesi::Invalid && l.addr >= lo && l.addr < hi)
            return true;
    }
    return false;
}

std::uint32_t
SetAssocCache::validLines() const
{
    std::uint32_t n = 0;
    for (const auto &l : lines_) {
        if (l.state != Mesi::Invalid)
            ++n;
    }
    return n;
}

} // namespace prism
