/**
 * @file
 * Split-transaction, fully-pipelined memory bus model.
 *
 * The paper assumes a 16-byte-wide split-phase bus running at half the
 * processor clock with separate address and data paths.  We model the
 * two paths as independent FCFS resources: an address tenure books the
 * address path, a data transfer books the data path.  Retries (for
 * lines in Transit) are modeled by the requester re-arbitrating later.
 */

#ifndef PRISM_MEM_BUS_HH
#define PRISM_MEM_BUS_HH

#include "sim/event_queue.hh"
#include "sim/types.hh"

namespace prism {

/** One node's memory bus: address path + data path occupancies. */
class MemoryBus
{
  public:
    /**
     * @param addr_cycles occupancy of one address tenure
     * @param data_cycles occupancy of one full-line data transfer
     */
    MemoryBus(Cycles addr_cycles, Cycles data_cycles)
        : addrCycles_(addr_cycles), dataCycles_(data_cycles)
    {
    }

    /**
     * Book an address tenure starting no earlier than @p at.
     * @return completion time of the tenure.
     */
    Tick
    addressPhase(Tick at)
    {
        ++addrTenures_;
        return addrPath_.acquire(at, addrCycles_) + addrCycles_;
    }

    /**
     * Book a full-line data transfer starting no earlier than @p at.
     * @return completion time of the transfer.
     */
    Tick
    dataPhase(Tick at)
    {
        ++dataTransfers_;
        return dataPath_.acquire(at, dataCycles_) + dataCycles_;
    }

    Cycles addrCycles() const { return addrCycles_; }
    Cycles dataCycles() const { return dataCycles_; }

    std::uint64_t addrTenures() const { return addrTenures_; }
    std::uint64_t dataTransfers() const { return dataTransfers_; }
    Cycles addrBusyCycles() const { return addrPath_.busyCycles(); }
    Cycles dataBusyCycles() const { return dataPath_.busyCycles(); }

  private:
    Cycles addrCycles_;
    Cycles dataCycles_;
    FcfsResource addrPath_;
    FcfsResource dataPath_;
    std::uint64_t addrTenures_ = 0;
    std::uint64_t dataTransfers_ = 0;
};

} // namespace prism

#endif // PRISM_MEM_BUS_HH
