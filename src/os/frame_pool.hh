/**
 * @file
 * Per-mode page frame pools (paper Section 3.3).
 *
 * The OS maintains a pool of free page frames for each mode.  Real
 * frames consume node memory; imaginary frames (LA-NUMA) are just
 * numbers in a disjoint range and back no memory, so only real-frame
 * statistics feed the paper's memory-consumption tables.
 */

#ifndef PRISM_OS_FRAME_POOL_HH
#define PRISM_OS_FRAME_POOL_HH

#include <cstdint>
#include <vector>

#include "sim/logging.hh"
#include "sim/types.hh"

namespace prism {

/** First frame number of the imaginary (LA-NUMA) range. */
constexpr FrameNum kImaginaryFrameBase = 1ULL << 24;

/** A frame allocator over a contiguous range of frame numbers. */
class FramePool
{
  public:
    /**
     * @param base      first frame number served by this pool
     * @param capacity  maximum live frames (0 = unbounded)
     */
    explicit FramePool(FrameNum base, std::uint64_t capacity = 0)
        : base_(base), capacity_(capacity), next_(base)
    {
    }

    /** Allocate a frame; kInvalidFrame if the pool is exhausted. */
    FrameNum
    alloc()
    {
        if (capacity_ && live_ >= capacity_)
            return kInvalidFrame;
        FrameNum f;
        if (!free_.empty()) {
            f = free_.back();
            free_.pop_back();
        } else {
            f = next_++;
        }
        ++live_;
        ++cumulative_;
        if (live_ > peak_)
            peak_ = live_;
        return f;
    }

    /** Return a frame to the pool. */
    void
    release(FrameNum f)
    {
        prism_assert(live_ > 0, "releasing into an empty pool");
        --live_;
        free_.push_back(f);
    }

    /** Frames currently allocated. */
    std::uint64_t live() const { return live_; }

    /** Highest concurrent allocation seen. */
    std::uint64_t peak() const { return peak_; }

    /** Total allocations ever made. */
    std::uint64_t cumulative() const { return cumulative_; }

    std::uint64_t capacity() const { return capacity_; }

  private:
    FrameNum base_;
    std::uint64_t capacity_;
    FrameNum next_;
    std::vector<FrameNum> free_;
    std::uint64_t live_ = 0;
    std::uint64_t peak_ = 0;
    std::uint64_t cumulative_ = 0;
};

} // namespace prism

#endif // PRISM_OS_FRAME_POOL_HH
