/**
 * @file
 * Per-node operating system kernel (paper Section 3.3 / 3.4).
 *
 * PRISM runs multiple independent kernels, one per node; each manages
 * only its local resources.  The kernel owns the node-private page
 * table and per-mode frame pools, implements the external paging
 * protocol (client page-ins through the home, page-outs with
 * write-back, home-page-status flags), binds virtual segments to
 * global segments at user-controlled granularity, and invokes the
 * page-mode policy at client page faults.  No kernel ever dereferences
 * another node's physical memory.
 */

#ifndef PRISM_OS_KERNEL_HH
#define PRISM_OS_KERNEL_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <set>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "coherence/controller.hh"
#include "coherence/msg.hh"
#include "core/config.hh"
#include "mem/addr.hh"
#include "os/frame_pool.hh"
#include "os/ipc_server.hh"
#include "os/page_table.hh"
#include "sim/coro_sync.hh"
#include "sim/task.hh"

namespace prism {

class PagePolicy;

/** Kernel statistics (per node), as labeled scoped handles. */
struct KernelStats {
    ScopedCounter faults;
    ScopedCounter faultsPrivate;
    ScopedCounter faultsHome;
    ScopedCounter faultsClient;
    ScopedCounter faultsCachedHome; //!< home-page-status flag hits
    ScopedCounter clientPageOuts;
    ScopedCounter homePageOuts;
    ScopedCounter conversionsToLaNuma;
    ScopedCounter conversionsToScoma;
    ScopedCounter pageInRequestsServed;
};

/** Page-transfer latency distributions (per node). */
struct KernelLatency {
    ScopedHistogram pageIn{latencyBounds()};  //!< client fault round-trip
    ScopedHistogram pageOut{latencyBounds()}; //!< flush through completion
};

/** One node's kernel. */
class Kernel
{
  public:
    Kernel(NodeId self, const MachineConfig &cfg, EventQueue &eq,
           IpcServer &ipc, std::function<NodeId(GPage)> static_home_of,
           std::function<void(Msg &&)> send);

    /** Wire the node's coherence controller (post-construction). */
    void attachController(CoherenceController *c) { ctrl_ = c; }

    /** Install the page-mode policy (owned by the machine). */
    void setPolicy(PagePolicy *p) { policy_ = p; }

    /** Hook: invalidate @p vp in every local processor TLB. */
    void
    setTlbShootdown(std::function<void(VPage)> fn)
    {
        tlbShootdown_ = std::move(fn);
    }

    /** Hook: invalidate all local processor-cache lines of a frame. */
    void
    setCacheFlush(std::function<void(FrameNum)> fn)
    {
        cacheFlush_ = std::move(fn);
    }

    NodeId self() const { return self_; }
    const MachineConfig &config() const { return cfg_; }
    PageTable &pageTable() { return pt_; }
    CoherenceController &controller() { return *ctrl_; }
    const KernelStats &stats() const { return stats_; }
    EventQueue &eventQueue() { return eq_; }

    // --- Global naming and binding ------------------------------------

    /**
     * Attach virtual segment @p vsid to global segment @p gsid
     * (globalized shmat; identical page numbering).  Global binding
     * happens here, at segment granularity, not per page fault.
     */
    void bindSegment(std::uint64_t vsid, std::uint64_t gsid);

    /** Global page for @p vp, if its segment is bound. */
    bool globalPageOf(VPage vp, GPage *gp) const;

    /** Virtual page for @p gp at this node (inverse binding). */
    VPage vpageOf(GPage gp) const;

    // --- Fault and paging paths -------------------------------------------

    /**
     * Handle a page fault for @p vp (runs on the faulting processor's
     * coroutine).  On return the page is mapped and @p out_frame holds
     * the frame.
     */
    CoTask handleFault(VPage vp, FrameNum *out_frame);

    /**
     * Page out this node's client copy of @p gp, writing dirty lines
     * back to the home.  If @p convert_to_lanuma, future faults on the
     * page at this node use LA-NUMA frames (dynamic re-binding by
     * page-out + refault, Section 3.3).
     */
    CoTask pageOutClient(GPage gp, bool convert_to_lanuma);

    /**
     * Page out a page this node is home for: request page-outs from
     * all clients, await acknowledgements, write to backing store.
     */
    CoTask pageOutHome(GPage gp);

    // --- Policy support ----------------------------------------------------

    /** Per-node cap on client S-COMA frames (0 = unlimited). */
    std::uint64_t clientCap() const;

    /** Live client S-COMA frames. */
    std::uint64_t clientScomaCount() const
    {
        return clientScomaFrames_.size();
    }

    /** True if the page cache has reached its cap. */
    bool clientCacheFull() const;

    /** Least-recently-used client S-COMA page (kInvalidGPage if none). */
    GPage lruClientPage() const;

    /** All client S-COMA frames (candidates for Dyn-Util). */
    std::vector<FrameNum> clientScomaFrameList() const;

    /** Global page mapped by a client frame. */
    GPage pageOfClientFrame(FrameNum f) const;

    /** Per-page mode override set by adaptive policies. */
    void setModeOverride(GPage gp, PageMode m);
    PageMode modeOverride(GPage gp) const;

    /**
     * Dyn-Both extension: scan up to @p max_scan mapped LA-NUMA pages;
     * any whose remote refetch count exceeds @p threshold is paged out
     * and reverted to S-COMA for its next fault.
     */
    CoTask reconsiderLaNumaPages(std::uint64_t threshold,
                                 std::uint32_t max_scan);

    /** True if the fault/pageout lock for @p gp is currently held. */
    bool pageBusy(GPage gp) const;

    // --- Message interface ----------------------------------------------

    /** Deliver a kernel-class message. */
    void receive(Msg m);

    // --- Migration cooperation (ControllerHost duties) ----------------------

    FrameNum migrationAllocFrame(GPage gp);
    void migrationFreeFrame(FrameNum f, GPage gp);
    SharerSet homeClients(GPage gp) const;
    void adoptHomePage(GPage gp, const SharerSet &clients);
    void departHomePage(GPage gp);

    // --- Memory accounting (Table 3) ------------------------------------

    /** Real frames currently allocated (memory consumption). */
    std::uint64_t realFramesLive() const { return realPool_.live(); }

    /** Peak real frames allocated. */
    std::uint64_t realFramesPeak() const { return realPool_.peak(); }

    /** Cumulative real-frame allocations. */
    std::uint64_t realFramesCumulative() const
    {
        return realPool_.cumulative();
    }

    /** Peak client S-COMA frames (SCOMA-70 cap calibration). */
    std::uint64_t clientScomaPeak() const { return clientScomaPeak_; }

    /**
     * Average utilization (fraction of lines accessed) over all real
     * frames ever allocated, live frames included.
     */
    double averageUtilization() const;

    /**
     * Bind kernel counters, page-transfer histograms and memory
     * gauges into @p reg under component "kernel", node self().
     */
    void registerMetrics(MetricRegistry &reg);

    /** Attach the optional Chrome-trace sink (nullptr to disable). */
    void setTraceSink(TraceSink *t) { trace_ = t; }

  private:
    struct PageInWait {
        explicit PageInWait(EventQueue &eq) : ev(eq) {}
        CoEvent ev;
        NodeId dynHome = kInvalidNode;
        FrameNum homeFrame = kInvalidFrame;
    };

    struct NoticeWait {
        explicit NoticeWait(EventQueue &eq) : ev(eq) {}
        CoEvent ev;
    };

    struct CachedHome {
        NodeId dynHome;
        FrameNum homeFrame;
    };

    CoMutex &globalLock(GPage gp);
    CoMutex &privateLock(VPage vp);
    DelayAwaiter delay(Cycles c) { return DelayAwaiter(eq_, c); }
    void send(Msg &&m);

    /** Map @p gp in at this (home) node if not already (lock held). */
    CoTask homeMapIn(GPage gp);

    /** Archive a departing frame's utilization before PIT removal. */
    void archiveUtilization(FrameNum f);

    FireAndForget onPageInReq(Msg m);
    FireAndForget onPageOutNotice(Msg m);
    FireAndForget onHomePageOutReq(Msg m);

    NodeId self_;
    const MachineConfig &cfg_;
    EventQueue &eq_;
    IpcServer &ipc_;
    std::function<NodeId(GPage)> staticHomeOf_;
    std::function<void(Msg &&)> sendFn_;
    std::function<void(VPage)> tlbShootdown_;
    std::function<void(FrameNum)> cacheFlush_;
    CoherenceController *ctrl_ = nullptr;
    PagePolicy *policy_ = nullptr;

    PageTable pt_;
    FramePool realPool_{0};
    FramePool imagPool_{kImaginaryFrameBase};

    std::unordered_map<std::uint64_t, std::uint64_t> vsidToGsid_;
    std::unordered_map<std::uint64_t, std::uint64_t> gsidToVsid_;

    std::unordered_map<GPage, std::unique_ptr<CoMutex>> gLocks_;
    std::unordered_map<VPage, std::unique_ptr<CoMutex>> pLocks_;

    std::unordered_map<GPage, CachedHome> cachedHome_;
    std::unordered_map<GPage, PageInWait *> pendingPageIn_;
    std::unordered_map<GPage, NoticeWait *> pendingNoticeAck_;
    std::unordered_map<GPage, CoLatch *> pendingHomePageOut_;
    std::unordered_map<GPage, std::vector<Msg>> deferredPageIn_;
    std::unordered_set<GPage> dyingPages_;

    std::unordered_map<GPage, SharerSet> homeClients_;
    std::unordered_set<GPage> diskPages_;

    std::unordered_set<FrameNum> clientScomaFrames_;
    std::unordered_map<FrameNum, GPage> frameToPage_;
    std::unordered_map<GPage, PageMode> modeOverride_;
    std::uint64_t clientScomaPeak_ = 0;

    /** Mapped LA-NUMA client pages (Dyn-Both reconsideration). */
    std::vector<GPage> laNumaMapped_;
    std::size_t reconsiderCursor_ = 0;

    std::uint64_t utilArchivedLines_ = 0;
    std::uint64_t utilArchivedFrames_ = 0;

    KernelStats stats_;
    KernelLatency latency_;
    /** Gauge handles for the frame-accounting metrics. */
    ScopedGauge gaugeFramesPeak_;
    ScopedGauge gaugeFramesCumulative_;
    ScopedGauge gaugeScomaPeak_;
    ScopedGauge gaugeAvgUtil_;
    TraceSink *trace_ = nullptr;
};

} // namespace prism

#endif // PRISM_OS_KERNEL_HH
