#include "os/kernel.hh"

#include <algorithm>

#include "obs/trace_sink.hh"
#include "policy/page_policy.hh"
#include "sim/stats.hh"

namespace prism {

Kernel::Kernel(NodeId self, const MachineConfig &cfg, EventQueue &eq,
               IpcServer &ipc, std::function<NodeId(GPage)> static_home_of,
               std::function<void(Msg &&)> send)
    : self_(self), cfg_(cfg), eq_(eq), ipc_(ipc),
      staticHomeOf_(std::move(static_home_of)), sendFn_(std::move(send))
{
}

void
Kernel::send(Msg &&m)
{
    m.src = self_;
    sendFn_(std::move(m));
}

CoMutex &
Kernel::globalLock(GPage gp)
{
    auto &p = gLocks_[gp];
    if (!p)
        p = std::make_unique<CoMutex>(eq_);
    return *p;
}

CoMutex &
Kernel::privateLock(VPage vp)
{
    auto &p = pLocks_[vp];
    if (!p)
        p = std::make_unique<CoMutex>(eq_);
    return *p;
}

bool
Kernel::pageBusy(GPage gp) const
{
    auto it = gLocks_.find(gp);
    return it != gLocks_.end() && it->second->held();
}

// ---------------------------------------------------------------------
// Global naming and binding
// ---------------------------------------------------------------------

void
Kernel::bindSegment(std::uint64_t vsid, std::uint64_t gsid)
{
    prism_assert(ipc_.segment(gsid) != nullptr,
                 "binding to a non-existent global segment");
    vsidToGsid_[vsid] = gsid;
    gsidToVsid_[gsid] = vsid;
    ipc_.shmatAttach(gsid);
}

bool
Kernel::globalPageOf(VPage vp, GPage *gp) const
{
    const std::uint64_t vsid = vp >> kPageNumBits;
    auto it = vsidToGsid_.find(vsid);
    if (it == vsidToGsid_.end())
        return false;
    const std::uint64_t pnum = vp & ((1ULL << kPageNumBits) - 1);
    *gp = (it->second << kPageNumBits) | pnum;
    return true;
}

VPage
Kernel::vpageOf(GPage gp) const
{
    const std::uint64_t gsid = gp >> kPageNumBits;
    auto it = gsidToVsid_.find(gsid);
    prism_assert(it != gsidToVsid_.end(), "vpageOf on unbound segment");
    const std::uint64_t pnum = gp & ((1ULL << kPageNumBits) - 1);
    return (it->second << kPageNumBits) | pnum;
}

// ---------------------------------------------------------------------
// Fault path
// ---------------------------------------------------------------------

CoTask
Kernel::handleFault(VPage vp, FrameNum *out_frame)
{
    ++stats_.faults;
    eq_.snapNote(SnapKind::Fault);
    GPage gp = kInvalidGPage;
    const bool global = globalPageOf(vp, &gp);

    CoMutex &lk = global ? globalLock(gp) : privateLock(vp);
    co_await lk.acquire();
    // Another local processor may have completed the fault meanwhile.
    if (const Pte *pte = pt_.lookup(vp)) {
        *out_frame = pte->frame;
        lk.release();
        co_return;
    }

    co_await delay(cfg_.faultKernelCycles);

    if (!global) {
        FrameNum f = realPool_.alloc();
        prism_assert(f != kInvalidFrame, "out of private frames");
        ctrl_->installLocalMapping(f);
        co_await delay(cfg_.pitCommandCycles);
        pt_.map(vp, f, PageMode::Local);
        *out_frame = f;
        ++stats_.faultsPrivate;
        lk.release();
        co_return;
    }

    // Am I (still) the page's dynamic home, or should I become it?
    bool home_path = ctrl_->isDynHome(gp);
    NodeId dyn_home_hint = kInvalidNode;
    if (!home_path && staticHomeOf_(gp) == self_) {
        NodeId reg = ctrl_->registryLookup(gp);
        if (reg == kInvalidNode || reg == self_)
            home_path = true; // first mapping: static home becomes home
        else
            dyn_home_hint = reg; // migrated away; fault as a client
    }

    if (home_path) {
        co_await homeMapIn(gp);
        FrameNum hf = ctrl_->pit().frameOf(gp);
        prism_assert(hf != kInvalidFrame, "home map-in left no frame");
        co_await delay(cfg_.pitCommandCycles);
        pt_.map(vp, hf, PageMode::Scoma);
        *out_frame = hf;
        ++stats_.faultsHome;
        lk.release();
        co_return;
    }

    // ----- Client fault -------------------------------------------------
    // NOTE: copy the cached-home record by value; iterators into
    // cachedHome_ must not be held across suspension points (another
    // fault's insert may rehash the table).
    CachedHome ch{kInvalidNode, kInvalidFrame};
    auto ch_it = cachedHome_.find(gp);
    if (ch_it == cachedHome_.end()) {
        // Ensure the page is paged-in at home and learn the home frame.
        const Tick pi0 = eq_.now();
        PageInWait w(eq_);
        pendingPageIn_[gp] = &w;
        Msg m;
        m.type = MsgType::PageInReq;
        m.dst = dyn_home_hint != kInvalidNode ? dyn_home_hint
                                              : staticHomeOf_(gp);
        m.gpage = gp;
        send(std::move(m));
        co_await w.ev.wait();
        pendingPageIn_.erase(gp);
        ch = CachedHome{w.dynHome, w.homeFrame};
        cachedHome_.emplace(gp, ch);
        latency_.pageIn.sample(eq_.now() - pi0);
        if (trace_) {
            trace_->span("pageIn", "paging",
                         static_cast<std::int32_t>(self_), 0, pi0,
                         eq_.now());
        }
    } else {
        // Home-page-status flag is set: no page-in request needed.
        ch = ch_it->second;
        ++stats_.faultsCachedHome;
    }

    PageMode mode = PageMode::Scoma;
    prism_assert(policy_ != nullptr, "no page policy installed");
    co_await policy_->chooseClientMode(*this, gp, &mode);

    FrameNum f;
    if (mode == PageMode::Scoma) {
        f = realPool_.alloc();
        prism_assert(f != kInvalidFrame, "out of real frames");
        clientScomaFrames_.insert(f);
        frameToPage_[f] = gp;
        if (clientScomaFrames_.size() > clientScomaPeak_)
            clientScomaPeak_ = clientScomaFrames_.size();
    } else {
        f = imagPool_.alloc();
        frameToPage_[f] = gp;
        laNumaMapped_.push_back(gp);
    }

    ctrl_->installClientMapping(f, gp, staticHomeOf_(gp), ch.dynHome,
                                ch.homeFrame, mode);
    co_await delay(cfg_.pitCommandCycles);
    pt_.map(vp, f, mode);
    *out_frame = f;
    ++stats_.faultsClient;
    lk.release();
}

CoTask
Kernel::homeMapIn(GPage gp)
{
    if (ctrl_->isDynHome(gp))
        co_return;
    FrameNum f = realPool_.alloc();
    prism_assert(f != kInvalidFrame, "out of frames for home page");
    if (diskPages_.count(gp)) {
        co_await delay(cfg_.diskLatency);
        diskPages_.erase(gp);
    }
    ctrl_->installHomeMapping(f, gp);
    homeClients_.emplace(gp, SharerSet());
}

// ---------------------------------------------------------------------
// Page-outs
// ---------------------------------------------------------------------

void
Kernel::archiveUtilization(FrameNum f)
{
    if (f >= kImaginaryFrameBase)
        return; // imaginary frames consume no memory
    const PitEntry *e = ctrl_->pit().entry(f);
    if (!e || !e->accessed)
        return;
    utilArchivedLines_ += e->accessed->popcount();
    ++utilArchivedFrames_;
}

CoTask
Kernel::pageOutClient(GPage gp, bool convert_to_lanuma)
{
    const Tick t0 = eq_.now();
    CoMutex &lk = globalLock(gp);
    co_await lk.acquire();

    FrameNum f = ctrl_->pit().frameOf(gp);
    if (f == kInvalidFrame) {
        lk.release();
        co_return; // already paged out
    }
    if (ctrl_->isDynHome(gp)) {
        // The page migrated TO us while it was being selected as a
        // victim: our client frame was promoted to the home frame.
        // Home frames are never client-paged-out.
        lk.release();
        co_return;
    }
    PitEntry *e = ctrl_->pit().entry(f);
    prism_assert(e->mode != PageMode::Local, "pageOutClient on local page");
    const PageMode mode = e->mode;
    const NodeId dyn_home = e->dynHome;

    // Unmap and shoot down local TLBs (node-local only).
    VPage vp = vpageOf(gp);
    pt_.unmap(vp);
    if (tlbShootdown_)
        tlbShootdown_(vp);
    co_await delay(static_cast<Cycles>(cfg_.tlbShootdownCycles) *
                   cfg_.procsPerNode);

    // Flush: write modified lines back to the home.  A stale
    // translation may still start an access while we flush, so loop
    // until the page is verifiably quiet, then remove the mapping in
    // the same event — after that, late accesses bounce (BadFrame)
    // and re-fault.
    for (;;) {
        co_await ctrl_->flushClientPage(f, nullptr);
        if (ctrl_->isDynHome(gp)) {
            // A migration promoted our frame to home mid-flush; the
            // flush's writebacks were absorbed by our own (adopted)
            // directory.  Abandon the page-out; local processors
            // refault and remap the home frame.
            lk.release();
            co_return;
        }
        if (ctrl_->clientPageQuiescent(f))
            break;
        co_await delay(cfg_.retryDelay);
    }
    archiveUtilization(f);
    ctrl_->removeClientMapping(f);
    frameToPage_.erase(f);

    // Tell the home we no longer cache the page.
    NoticeWait w(eq_);
    pendingNoticeAck_[gp] = &w;
    Msg m;
    m.type = MsgType::PageOutNotice;
    m.dst = dyn_home;
    m.gpage = gp;
    send(std::move(m));
    co_await w.ev.wait();
    pendingNoticeAck_.erase(gp);

    // Only recycle the frame number once the home has acknowledged.
    if (mode == PageMode::Scoma) {
        clientScomaFrames_.erase(f);
        realPool_.release(f);
    } else {
        imagPool_.release(f);
    }

    if (convert_to_lanuma) {
        modeOverride_[gp] = PageMode::LaNuma;
        ++stats_.conversionsToLaNuma;
    }
    ++stats_.clientPageOuts;
    eq_.snapNote(SnapKind::ClientPageOut);
    co_await delay(cfg_.pageOutKernelCycles);
    latency_.pageOut.sample(eq_.now() - t0);
    if (trace_) {
        trace_->span("pageOut", "paging",
                     static_cast<std::int32_t>(self_), 0, t0, eq_.now());
    }
    lk.release();
}

CoTask
Kernel::pageOutHome(GPage gp)
{
    const Tick t0 = eq_.now();
    CoMutex &lk = globalLock(gp);
    co_await lk.acquire();
    if (!ctrl_->isDynHome(gp)) {
        lk.release();
        co_return;
    }
    dyingPages_.insert(gp);

    const SharerSet clients = homeClients_[gp];
    CoLatch latch(eq_);
    pendingHomePageOut_[gp] = &latch;
    std::uint32_t n = 0;
    for (NodeId c = clients.first(); c != kInvalidNode;
         c = clients.next(c)) {
        Msg m;
        m.type = MsgType::HomePageOutReq;
        m.dst = c;
        m.gpage = gp;
        send(std::move(m));
        ++n;
    }
    latch.expect(n);
    latch.arm();
    co_await latch.wait();
    pendingHomePageOut_.erase(gp);

    // Wait until no protocol handler is mid-transaction on the page's
    // lines, then collect local processor copies and write to disk.
    while (!ctrl_->homePageQuiescent(gp))
        co_await delay(cfg_.retryDelay);
    FrameNum hf = ctrl_->pit().frameOf(gp);
    prism_assert(hf != kInvalidFrame, "home page without frame");
    if (cacheFlush_)
        cacheFlush_(hf);
    co_await delay(cfg_.diskLatency);

    VPage vp = vpageOf(gp);
    pt_.unmap(vp);
    if (tlbShootdown_)
        tlbShootdown_(vp);
    co_await delay(static_cast<Cycles>(cfg_.tlbShootdownCycles) *
                   cfg_.procsPerNode);

    archiveUtilization(hf);
    ctrl_->removeHomeMapping(hf, gp);
    realPool_.release(hf);
    homeClients_.erase(gp);
    diskPages_.insert(gp);
    dyingPages_.erase(gp);
    ++stats_.homePageOuts;
    latency_.pageOut.sample(eq_.now() - t0);
    if (trace_) {
        trace_->span("homePageOut", "paging",
                     static_cast<std::int32_t>(self_), 0, t0, eq_.now());
    }
    lk.release();

    // Serve page-in requests that arrived while the page was dying.
    auto it = deferredPageIn_.find(gp);
    if (it != deferredPageIn_.end()) {
        std::vector<Msg> q = std::move(it->second);
        deferredPageIn_.erase(it);
        for (auto &dm : q)
            receive(std::move(dm));
    }
}

// ---------------------------------------------------------------------
// Policy support
// ---------------------------------------------------------------------

std::uint64_t
Kernel::clientCap() const
{
    if (!cfg_.clientFrameCapPerNode.empty())
        return cfg_.clientFrameCapPerNode[self_];
    return cfg_.clientFrameCap;
}

bool
Kernel::clientCacheFull() const
{
    const std::uint64_t cap = clientCap();
    return cap != 0 && clientScomaFrames_.size() >= cap;
}

GPage
Kernel::lruClientPage() const
{
    GPage best = kInvalidGPage;
    Tick best_t = 0;
    const Pit &pit = ctrl_->pit();
    for (FrameNum f : clientScomaFrames_) {
        const PitEntry *e = pit.entry(f);
        if (!e)
            continue;
        if (pageBusy(e->gpage))
            continue; // page mid-fault/mid-pageout; skip
        if (e->tags && e->tags->anyTransit())
            continue;
        if (best == kInvalidGPage || e->lastAccess < best_t) {
            best = e->gpage;
            best_t = e->lastAccess;
        }
    }
    return best;
}

std::vector<FrameNum>
Kernel::clientScomaFrameList() const
{
    std::vector<FrameNum> out(clientScomaFrames_.begin(),
                              clientScomaFrames_.end());
    // Deterministic order for reproducible policy decisions.
    std::sort(out.begin(), out.end());
    return out;
}

GPage
Kernel::pageOfClientFrame(FrameNum f) const
{
    auto it = frameToPage_.find(f);
    return it == frameToPage_.end() ? kInvalidGPage : it->second;
}

void
Kernel::setModeOverride(GPage gp, PageMode m)
{
    modeOverride_[gp] = m;
}

PageMode
Kernel::modeOverride(GPage gp) const
{
    auto it = modeOverride_.find(gp);
    return it == modeOverride_.end() ? PageMode::Scoma : it->second;
}

CoTask
Kernel::reconsiderLaNumaPages(std::uint64_t threshold,
                              std::uint32_t max_scan)
{
    const Pit &pit = ctrl_->pit();
    std::uint32_t scanned = 0;
    while (scanned < max_scan && !laNumaMapped_.empty()) {
        if (reconsiderCursor_ >= laNumaMapped_.size())
            reconsiderCursor_ = 0;
        GPage gp = laNumaMapped_[reconsiderCursor_];
        FrameNum f = pit.frameOf(gp);
        const PitEntry *e =
            (f == kInvalidFrame) ? nullptr : pit.entry(f);
        if (!e || e->mode == PageMode::Scoma) {
            // Stale entry (paged out or converted); drop from the list.
            laNumaMapped_[reconsiderCursor_] = laNumaMapped_.back();
            laNumaMapped_.pop_back();
            ++scanned;
            continue;
        }
        if (e->remoteFetches >= threshold && !pageBusy(gp)) {
            laNumaMapped_[reconsiderCursor_] = laNumaMapped_.back();
            laNumaMapped_.pop_back();
            modeOverride_[gp] = PageMode::Scoma;
            ++stats_.conversionsToScoma;
            co_await pageOutClient(gp, false);
        } else {
            ++reconsiderCursor_;
        }
        ++scanned;
    }
}

// ---------------------------------------------------------------------
// Kernel message handling
// ---------------------------------------------------------------------

void
Kernel::receive(Msg m)
{
    switch (m.type) {
      case MsgType::PageInReq:
        onPageInReq(std::move(m));
        return;
      case MsgType::PageInRep: {
        auto it = pendingPageIn_.find(m.gpage);
        prism_assert(it != pendingPageIn_.end(),
                     "PageInRep without a waiting fault");
        it->second->dynHome = m.dynHome;
        it->second->homeFrame = m.homeFrame;
        it->second->ev.signal();
        return;
      }
      case MsgType::PageOutNotice:
        onPageOutNotice(std::move(m));
        return;
      case MsgType::PageOutNoticeAck: {
        auto it = pendingNoticeAck_.find(m.gpage);
        prism_assert(it != pendingNoticeAck_.end(),
                     "PageOutNoticeAck without a waiter");
        it->second->ev.signal();
        return;
      }
      case MsgType::HomePageOutReq:
        onHomePageOutReq(std::move(m));
        return;
      case MsgType::HomePageOutAck: {
        auto it = pendingHomePageOut_.find(m.gpage);
        prism_assert(it != pendingHomePageOut_.end(),
                     "HomePageOutAck without a waiter");
        it->second->arrive();
        return;
      }
      default:
        panic("coherence message %s delivered to kernel",
              msgTypeName(m.type));
    }
}

FireAndForget
Kernel::onPageInReq(Msg m)
{
    const GPage gp = m.gpage;
    // Forwarded requests carry the original client in `requester`.
    const NodeId client =
        m.requester != kInvalidNode ? m.requester : m.src;
    m.requester = client;
    if (!ctrl_->isDynHome(gp)) {
        if (staticHomeOf_(gp) == self_) {
            NodeId reg = ctrl_->registryLookup(gp);
            if (reg != kInvalidNode && reg != self_) {
                m.dst = reg; // page migrated: forward to dynamic home
                send(std::move(m));
                co_return;
            }
            // else: fall through and become the home below
        } else {
            m.dst = staticHomeOf_(gp); // stale arrival; re-route
            send(std::move(m));
            co_return;
        }
    }
    if (dyingPages_.count(gp)) {
        deferredPageIn_[gp].push_back(std::move(m));
        co_return;
    }
    CoMutex &lk = globalLock(gp);
    co_await lk.acquire();
    co_await homeMapIn(gp);
    homeClients_[gp].add(client);
    co_await delay(cfg_.homePageInService);
    ++stats_.pageInRequestsServed;

    Msg r;
    r.type = MsgType::PageInRep;
    r.dst = client;
    r.gpage = gp;
    r.homeFrame = ctrl_->pit().frameOf(gp);
    r.dynHome = self_;
    send(std::move(r));
    lk.release();
}

FireAndForget
Kernel::onPageOutNotice(Msg m)
{
    const GPage gp = m.gpage;
    const NodeId client =
        m.requester != kInvalidNode ? m.requester : m.src;
    m.requester = client;
    if (!ctrl_->isDynHome(gp)) {
        // Stale dynamic-home knowledge at the client: re-route.
        if (staticHomeOf_(gp) == self_) {
            NodeId reg = ctrl_->registryLookup(gp);
            prism_assert(reg != kInvalidNode && reg != self_,
                         "page-out notice for an unmapped page");
            m.dst = reg;
        } else {
            m.dst = staticHomeOf_(gp);
        }
        send(std::move(m));
        co_return;
    }
    auto it = homeClients_.find(gp);
    if (it != homeClients_.end())
        it->second.remove(client);
    Cycles c = ctrl_->homeRemoveClient(gp, client);
    co_await delay(c);

    Msg r;
    r.type = MsgType::PageOutNoticeAck;
    r.dst = client;
    r.gpage = gp;
    send(std::move(r));
}

FireAndForget
Kernel::onHomePageOutReq(Msg m)
{
    const GPage gp = m.gpage;
    // Reset the home-page-status flag (paper Section 3.3).
    cachedHome_.erase(gp);
    if (!pageBusy(gp) && ctrl_->pit().frameOf(gp) != kInvalidFrame &&
        !ctrl_->isDynHome(gp)) {
        co_await pageOutClient(gp, false);
    }
    // If the page is mid-fault or mid-pageout locally, the in-flight
    // operation resolves the copy (its own notice covers us).
    Msg r;
    r.type = MsgType::HomePageOutAck;
    r.dst = m.src;
    r.gpage = gp;
    send(std::move(r));
}

// ---------------------------------------------------------------------
// Migration cooperation
// ---------------------------------------------------------------------

FrameNum
Kernel::migrationAllocFrame(GPage)
{
    FrameNum f = realPool_.alloc();
    prism_assert(f != kInvalidFrame, "migration frame alloc failed");
    return f;
}

void
Kernel::migrationFreeFrame(FrameNum f, GPage gp)
{
    VPage vp = vpageOf(gp);
    if (pt_.mapped(vp))
        pt_.unmap(vp);
    if (tlbShootdown_)
        tlbShootdown_(vp);
    if (cacheFlush_)
        cacheFlush_(f);
    archiveUtilization(f);
    frameToPage_.erase(f);
    if (f >= kImaginaryFrameBase) {
        imagPool_.release(f);
    } else {
        clientScomaFrames_.erase(f);
        realPool_.release(f);
    }
}

SharerSet
Kernel::homeClients(GPage gp) const
{
    auto it = homeClients_.find(gp);
    return it == homeClients_.end() ? SharerSet() : it->second;
}

void
Kernel::adoptHomePage(GPage gp, const SharerSet &clients)
{
    homeClients_[gp] = clients;
    cachedHome_.erase(gp); // we are the home now
    // If we had a client S-COMA frame it was promoted to the home
    // frame: it no longer counts against the client page cache.
    FrameNum f = ctrl_->pit().frameOf(gp);
    if (f != kInvalidFrame && clientScomaFrames_.erase(f))
        frameToPage_.erase(f);
}

void
Kernel::departHomePage(GPage gp)
{
    homeClients_.erase(gp);
}

// ---------------------------------------------------------------------
// Accounting
// ---------------------------------------------------------------------

double
Kernel::averageUtilization() const
{
    std::uint64_t lines = utilArchivedLines_;
    std::uint64_t frames = utilArchivedFrames_;
    std::uint32_t lines_per_page = 0;
    const Pit &pit = ctrl_->pit();
    for (FrameNum f : pit.allFrames()) {
        if (f >= kImaginaryFrameBase)
            continue;
        const PitEntry *e = pit.entry(f);
        if (!e || !e->accessed)
            continue;
        lines += e->accessed->popcount();
        lines_per_page = e->accessed->lines();
        ++frames;
    }
    if (!lines_per_page)
        lines_per_page = static_cast<std::uint32_t>(kPageBytes) /
                         cfg_.lineBytes;
    if (!frames)
        return 0.0;
    return static_cast<double>(lines) /
           (static_cast<double>(frames) * lines_per_page);
}

void
Kernel::registerMetrics(MetricRegistry &reg)
{
    const std::int32_t n = static_cast<std::int32_t>(self_);
    auto counter = [&](const char *name, ScopedCounter &c,
                       const char *desc) {
        reg.bind(MetricLabels{"kernel", n, name, "count"}, &c, desc);
    };
    counter("faults", stats_.faults, "page faults handled");
    counter("faultsPrivate", stats_.faultsPrivate, "");
    counter("faultsHome", stats_.faultsHome, "");
    counter("faultsClient", stats_.faultsClient, "");
    counter("faultsCachedHome", stats_.faultsCachedHome,
            "client faults served without contacting the home");
    counter("clientPageOuts", stats_.clientPageOuts, "");
    counter("homePageOuts", stats_.homePageOuts, "");
    counter("conversionsToLaNuma", stats_.conversionsToLaNuma, "");
    counter("conversionsToScoma", stats_.conversionsToScoma, "");
    counter("pageInRequestsServed", stats_.pageInRequestsServed, "");

    reg.bind(MetricLabels{"kernel", n, "latency.pageIn", "cycles"},
             &latency_.pageIn, "client page-in round-trip latency");
    reg.bind(MetricLabels{"kernel", n, "latency.pageOut", "cycles"},
             &latency_.pageOut, "page-out flush-to-completion latency");

    // Frame accounting is derived state (pool peaks, PIT utilization
    // scans), so it is exposed as sampled gauges rather than counters.
    reg.bind(MetricLabels{"kernel", n, "realFramesPeak", "frames"},
             &gaugeFramesPeak_,
             [this] { return static_cast<double>(realFramesPeak()); },
             "peak real page frames allocated");
    reg.bind(
        MetricLabels{"kernel", n, "realFramesCumulative", "frames"},
        &gaugeFramesCumulative_,
        [this] { return static_cast<double>(realFramesCumulative()); },
        "cumulative real-frame allocations");
    reg.bind(MetricLabels{"kernel", n, "clientScomaPeak", "frames"},
             &gaugeScomaPeak_,
             [this] { return static_cast<double>(clientScomaPeak()); },
             "peak client S-COMA frames");
    reg.bind(MetricLabels{"kernel", n, "avgUtilization", "fraction"},
             &gaugeAvgUtil_, [this] { return averageUtilization(); },
             "average fraction of lines accessed per real frame");
}

} // namespace prism
