/**
 * @file
 * Node-private page table.
 *
 * Each PRISM node's kernel manages a completely node-private
 * translation between virtual and physical addresses; nothing in this
 * table is visible to other nodes, which is what makes page faults,
 * replication and migration free of global TLB invalidations.
 */

#ifndef PRISM_OS_PAGE_TABLE_HH
#define PRISM_OS_PAGE_TABLE_HH

#include <cstdint>
#include <unordered_map>

#include "coherence/page_mode.hh"
#include "mem/addr.hh"
#include "sim/types.hh"

namespace prism {

/** A page-table entry. */
struct Pte {
    FrameNum frame = kInvalidFrame;
    PageMode mode = PageMode::Local;
};

/** One node's virtual-to-physical map. */
class PageTable
{
  public:
    /** Translation for @p vp, or nullptr if unmapped. */
    const Pte *
    lookup(VPage vp) const
    {
        auto it = map_.find(vp);
        return it == map_.end() ? nullptr : &it->second;
    }

    /** Install a mapping. */
    void
    map(VPage vp, FrameNum frame, PageMode mode)
    {
        map_[vp] = Pte{frame, mode};
    }

    /** Remove a mapping. */
    void unmap(VPage vp) { map_.erase(vp); }

    bool mapped(VPage vp) const { return map_.count(vp) != 0; }

    std::size_t size() const { return map_.size(); }

  private:
    std::unordered_map<VPage, Pte> map_;
};

} // namespace prism

#endif // PRISM_OS_PAGE_TABLE_HH
