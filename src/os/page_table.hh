/**
 * @file
 * Node-private page table.
 *
 * Each PRISM node's kernel manages a completely node-private
 * translation between virtual and physical addresses; nothing in this
 * table is visible to other nodes, which is what makes page faults,
 * replication and migration free of global TLB invalidations.
 *
 * Lookups are on the simulator's hottest path (every TLB refill), so
 * the table is a two-level direct-index map rather than a hash map: a
 * short per-segment (VSID) list, each segment holding demand-allocated
 * chunks of Pte slots indexed directly by page number.  The
 * simulator's virtual pages are dense within a segment, so this is
 * O(1) with two dependent loads and no hashing.
 */

#ifndef PRISM_OS_PAGE_TABLE_HH
#define PRISM_OS_PAGE_TABLE_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "coherence/page_mode.hh"
#include "mem/addr.hh"
#include "sim/types.hh"

namespace prism {

/** A page-table entry. */
struct Pte {
    FrameNum frame = kInvalidFrame;
    PageMode mode = PageMode::Local;
};

/** One node's virtual-to-physical map. */
class PageTable
{
  public:
    /** Translation for @p vp, or nullptr if unmapped. */
    const Pte *
    lookup(VPage vp) const
    {
        const Segment *seg = findSegment(vp >> kPageNumBits);
        if (!seg)
            return nullptr;
        const std::uint64_t pnum = vp & kPageNumMask;
        const std::size_t ci = pnum >> kChunkBits;
        if (ci >= seg->chunks.size() || !seg->chunks[ci])
            return nullptr;
        const Pte *pte = &seg->chunks[ci]->slots[pnum & kChunkMask];
        return pte->frame == kInvalidFrame ? nullptr : pte;
    }

    /** Install a mapping. */
    void
    map(VPage vp, FrameNum frame, PageMode mode)
    {
        Segment &seg = segmentFor(vp >> kPageNumBits);
        const std::uint64_t pnum = vp & kPageNumMask;
        const std::size_t ci = pnum >> kChunkBits;
        if (ci >= seg.chunks.size())
            seg.chunks.resize(ci + 1);
        if (!seg.chunks[ci])
            seg.chunks[ci] = std::make_unique<Chunk>();
        Pte &pte = seg.chunks[ci]->slots[pnum & kChunkMask];
        if (pte.frame == kInvalidFrame)
            ++size_;
        pte = Pte{frame, mode};
    }

    /** Remove a mapping. */
    void
    unmap(VPage vp)
    {
        Segment *seg = findSegment(vp >> kPageNumBits);
        if (!seg)
            return;
        const std::uint64_t pnum = vp & kPageNumMask;
        const std::size_t ci = pnum >> kChunkBits;
        if (ci >= seg->chunks.size() || !seg->chunks[ci])
            return;
        Pte &pte = seg->chunks[ci]->slots[pnum & kChunkMask];
        if (pte.frame != kInvalidFrame) {
            pte.frame = kInvalidFrame;
            --size_;
        }
    }

    bool mapped(VPage vp) const { return lookup(vp) != nullptr; }

    std::size_t size() const { return size_; }

  private:
    static constexpr std::uint32_t kChunkBits = 10;
    static constexpr std::uint64_t kChunkMask = (1ULL << kChunkBits) - 1;
    static constexpr std::uint64_t kPageNumMask =
        (1ULL << kPageNumBits) - 1;

    struct Chunk {
        Pte slots[1ULL << kChunkBits];
    };

    struct Segment {
        std::uint64_t vsid;
        std::vector<std::unique_ptr<Chunk>> chunks;
    };

    /** A node maps a handful of segments; linear search with a
     *  most-recently-used fast check beats any hashing here. */
    const Segment *
    findSegment(std::uint64_t vsid) const
    {
        if (lastSeg_ < segments_.size() &&
            segments_[lastSeg_].vsid == vsid)
            return &segments_[lastSeg_];
        for (std::size_t i = 0; i < segments_.size(); ++i) {
            if (segments_[i].vsid == vsid) {
                lastSeg_ = i;
                return &segments_[i];
            }
        }
        return nullptr;
    }

    Segment *
    findSegment(std::uint64_t vsid)
    {
        return const_cast<Segment *>(
            static_cast<const PageTable *>(this)->findSegment(vsid));
    }

    Segment &
    segmentFor(std::uint64_t vsid)
    {
        if (Segment *s = findSegment(vsid))
            return *s;
        segments_.push_back(Segment{vsid, {}});
        lastSeg_ = segments_.size() - 1;
        return segments_.back();
    }

    std::vector<Segment> segments_;
    mutable std::size_t lastSeg_ = 0;
    std::size_t size_ = 0;
};

} // namespace prism

#endif // PRISM_OS_PAGE_TABLE_HH
