/**
 * @file
 * Global IPC server: globalized System V shared memory (Section 3.4).
 *
 * Applications allocate global segments with shmget(key, size) and
 * attach them with shmat.  The server hands out global segment ids
 * (GSIDs) and tracks attach counts.  Segment creation and attachment
 * are rare, coarse-grained operations — exactly the point of PRISM's
 * user-controlled binding granularity — so their cost is charged as a
 * fixed kernel/messaging overhead by the caller rather than simulated
 * message-by-message.
 */

#ifndef PRISM_OS_IPC_SERVER_HH
#define PRISM_OS_IPC_SERVER_HH

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "mem/addr.hh"
#include "sim/logging.hh"
#include "sim/types.hh"

namespace prism {

/** Metadata of one global segment. */
struct GlobalSegment {
    std::uint64_t gsid = 0;
    std::uint64_t key = 0;
    std::uint64_t bytes = 0;
    std::uint64_t pages = 0;
    std::uint32_t attachCount = 0;
};

/** The system-wide IPC server (lives on node 0 conceptually). */
class IpcServer
{
  public:
    /**
     * Allocate (or look up) the global segment for @p key.
     * @return its GSID.
     */
    std::uint64_t
    shmget(std::uint64_t key, std::uint64_t bytes)
    {
        auto it = byKey_.find(key);
        if (it != byKey_.end()) {
            GlobalSegment &s = segments_[it->second];
            prism_assert(s.bytes >= bytes,
                         "shmget size mismatch for existing key");
            return s.gsid;
        }
        GlobalSegment s;
        s.gsid = nextGsid_++;
        s.key = key;
        s.bytes = bytes;
        s.pages = (bytes + kPageBytes - 1) / kPageBytes;
        byKey_[key] = s.gsid;
        segments_[s.gsid] = s;
        return s.gsid;
    }

    /** Record an attach of @p gsid. */
    void
    shmatAttach(std::uint64_t gsid)
    {
        auto it = segments_.find(gsid);
        prism_assert(it != segments_.end(), "shmat of unknown gsid");
        ++it->second.attachCount;
    }

    const GlobalSegment *
    segment(std::uint64_t gsid) const
    {
        auto it = segments_.find(gsid);
        return it == segments_.end() ? nullptr : &it->second;
    }

    std::size_t numSegments() const { return segments_.size(); }

  private:
    std::uint64_t nextGsid_ = 1; // gsid 0 reserved
    std::unordered_map<std::uint64_t, std::uint64_t> byKey_;
    std::unordered_map<std::uint64_t, GlobalSegment> segments_;
};

} // namespace prism

#endif // PRISM_OS_IPC_SERVER_HH
