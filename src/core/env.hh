/**
 * @file
 * The PRISM_* environment-knob registry.
 *
 * Every environment variable the simulator, benches or tests consult
 * is declared once in the table returned by envKnobs(); resolveEnv()
 * is the only sanctioned way to read one.  Reading an unregistered
 * name panics, so a knob cannot be added without also appearing in
 * the generated `--help` table (envHelpTable()) and the precedence
 * rule (flag > env > default) that BenchOptions implements on top of
 * this registry.
 */

#ifndef PRISM_CORE_ENV_HH
#define PRISM_CORE_ENV_HH

#include <cstddef>
#include <cstdint>
#include <string>

namespace prism {

/** One registered PRISM_* knob. */
struct EnvKnob {
    const char *env;    //!< environment variable name
    const char *flag;   //!< CLI flag spelling, nullptr if env-only
    const char *values; //!< accepted values, human-readable
    const char *def;    //!< default, human-readable
    const char *help;   //!< one-line description
};

/** The registry: every PRISM_* variable the code base reads. */
const EnvKnob *envKnobs(std::size_t *count);

/** Registry entry for @p env, or nullptr. */
const EnvKnob *findEnvKnob(const char *env);

/** Registry entry whose CLI flag is @p flag, or nullptr. */
const EnvKnob *findEnvKnobByFlag(const char *flag);

/**
 * getenv() restricted to registered knobs: panics when @p env is not
 * in the registry (the variable would otherwise silently bypass the
 * --help table and the flag > env > default precedence rule).
 */
const char *resolveEnv(const char *env);

/** The generated knob table for `--help` (env, flag, values, default). */
std::string envHelpTable();

/**
 * Strict unsigned parse for a knob value: the whole of @p s must be a
 * decimal integer in [@p min_value, @p max_value].  Trailing garbage
 * ("4x"), a sign ("-3", "+4"), overflow, and out-of-range values are
 * all fatal, naming the knob via @p what.  Null @p s returns @p def.
 */
std::uint64_t parseKnobU64(const char *what, const char *s,
                           std::uint64_t def, std::uint64_t min_value,
                           std::uint64_t max_value = ~0ULL);

/**
 * Strict floating-point parse for a knob value: the whole of @p s
 * must be a finite decimal in [@p lo, @p hi]; anything else is fatal,
 * naming the knob via @p what.  Null @p s returns @p def.
 */
double parseKnobReal(const char *what, const char *s, double def,
                     double lo, double hi);

} // namespace prism

#endif // PRISM_CORE_ENV_HH
