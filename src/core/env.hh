/**
 * @file
 * The PRISM_* environment-knob registry.
 *
 * Every environment variable the simulator, benches or tests consult
 * is declared once in the table returned by envKnobs(); resolveEnv()
 * is the only sanctioned way to read one.  Reading an unregistered
 * name panics, so a knob cannot be added without also appearing in
 * the generated `--help` table (envHelpTable()) and the precedence
 * rule (flag > env > default) that BenchOptions implements on top of
 * this registry.
 */

#ifndef PRISM_CORE_ENV_HH
#define PRISM_CORE_ENV_HH

#include <cstddef>
#include <string>

namespace prism {

/** One registered PRISM_* knob. */
struct EnvKnob {
    const char *env;    //!< environment variable name
    const char *flag;   //!< CLI flag spelling, nullptr if env-only
    const char *values; //!< accepted values, human-readable
    const char *def;    //!< default, human-readable
    const char *help;   //!< one-line description
};

/** The registry: every PRISM_* variable the code base reads. */
const EnvKnob *envKnobs(std::size_t *count);

/** Registry entry for @p env, or nullptr. */
const EnvKnob *findEnvKnob(const char *env);

/** Registry entry whose CLI flag is @p flag, or nullptr. */
const EnvKnob *findEnvKnobByFlag(const char *flag);

/**
 * getenv() restricted to registered knobs: panics when @p env is not
 * in the registry (the variable would otherwise silently bypass the
 * --help table and the flag > env > default precedence rule).
 */
const char *resolveEnv(const char *env);

/** The generated knob table for `--help` (env, flag, values, default). */
std::string envHelpTable();

} // namespace prism

#endif // PRISM_CORE_ENV_HH
