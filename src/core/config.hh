/**
 * @file
 * Machine configuration: topology, geometry and timing parameters.
 *
 * Defaults model the paper's simulated system (Section 4.1): 8 SMP
 * nodes x 4 processors, 8 KB L1 / 32 KB L2 (deliberately small to
 * expose capacity effects), a 16-byte split-transaction bus at half
 * the processor clock, 120-cycle one-way network latency, a DRAM
 * directory behind an 8K-entry cache (2/22 cycles) and an SRAM PIT
 * (2 cycles).  Composite latencies these produce are calibrated
 * against the paper's Table 1 by bench/table1_latency.
 */

#ifndef PRISM_CORE_CONFIG_HH
#define PRISM_CORE_CONFIG_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace prism {

/** Page-mode selection policy for shared pages at client nodes. */
enum class PolicyKind : std::uint8_t {
    Scoma,    //!< all client pages S-COMA, unbounded page cache
    LaNuma,   //!< all client pages LA-NUMA (CC-NUMA behaviour)
    Scoma70,  //!< S-COMA with page cache capped, LRU page-out
    DynFcfs,  //!< S-COMA until cache full, then LA-NUMA for new pages
    DynUtil,  //!< convert least-utilized S-COMA page to LA-NUMA
    DynLru,   //!< page out LRU page and convert it to LA-NUMA
    DynBoth,  //!< extension: Dyn-LRU + refetch-driven back-conversion
};

/** Human-readable policy name as used in the paper. */
const char *policyName(PolicyKind k);

/**
 * Intra-node line-protocol scheme spoken on each node's bus
 * (src/coherence/line_protocol).  Mesi is the paper's protocol and
 * the default; the others are drop-in variants validated by the same
 * oracle/litmus/fuzzer stack:
 *
 * Msi    no clean-exclusive state: read fills are always Shared, so a
 *        first write always pays an upgrade; exclusive LA-NUMA read
 *        grants are immediately relinquished back to the home.
 * Mesi   the classic four-state protocol (bit-identical to the
 *        pre-table simulator by contract).
 * Moesi  a read snoop on a Modified line leaves the dirty data in
 *        place as Owned instead of writing it back; stores to Owned
 *        upgrade on the local bus alone.
 * Mesif  only the Forward copy (newest sharer) supplies shared lines
 *        cache-to-cache; plain Shared copies stay silent.
 */
enum class ProtocolScheme : std::uint8_t {
    Msi,
    Mesi,
    Moesi,
    Mesif,
};

/** Lower-case scheme name (msi|mesi|moesi|mesif). */
const char *protocolName(ProtocolScheme p);

/**
 * Parse a protocol-scheme name.
 * @retval false @p s names no scheme (out is untouched).
 */
bool protocolFromString(const char *s, ProtocolScheme *out);

/**
 * Protocol-oracle checking level (src/check).
 *
 * Off        no checking; benches pay a single never-taken branch.
 * Quiescent  full I1-I6 + shadow-value sweep after the machine drains.
 * Continuous the quiescent sweep plus incremental per-line re-checks
 *            and data-value verification at every state transition,
 *            while transactions are still in flight.
 */
enum class OracleMode : std::uint8_t {
    Off,
    Quiescent,
    Continuous,
};

/** Human-readable oracle-mode name (off|quiescent|continuous). */
const char *oracleModeName(OracleMode m);

/**
 * Parse an oracle-mode name.
 * @retval false @p s names no mode (out is untouched).
 */
bool oracleModeFromString(const char *s, OracleMode *out);

/** Full machine configuration. */
struct MachineConfig {
    // --- Topology -------------------------------------------------
    std::uint32_t numNodes = 8;
    std::uint32_t procsPerNode = 4;

    // --- Geometry -------------------------------------------------
    std::uint32_t lineBytes = 64;

    // --- Processor caches (small, per Section 4.2) -----------------
    std::uint32_t l1Bytes = 8 * 1024;
    std::uint32_t l1Assoc = 1;
    std::uint32_t l2Bytes = 32 * 1024;
    std::uint32_t l2Assoc = 4;

    // --- TLB --------------------------------------------------------
    std::uint32_t tlbEntries = 128;
    Cycles tlbRefill = 30; //!< page-table walk on a TLB miss (Table 1)

    // --- Core timing ------------------------------------------------
    Cycles l2HitLatency = 12;   //!< L1 miss, L2 hit (Table 1)
    Cycles l2MissDetect = 6;    //!< L2 tag check before going to the bus
    Cycles busAddrCycles = 4;   //!< address tenure
    Cycles busDataCycles = 8;   //!< 64B line on a 16B-wide half-speed bus
    Cycles memAccessCycles = 18; //!< DRAM line access
    Cycles cacheToCache = 14;   //!< intra-node dirty-line supply

    // --- Coherence controller ----------------------------------------
    Cycles ctrlOverhead = 85;    //!< protocol dispatch + FSM per message
    Cycles pitLatency = 2;       //!< SRAM PIT lookup (10 = DRAM study)
    Cycles pitHashExtra = 18;    //!< reverse translation via hash search
    Cycles dirCacheHit = 2;
    Cycles dirCacheMiss = 22;
    std::uint32_t dirCacheEntries = 8192;
    Cycles retryDelay = 20;      //!< bus retry backoff for Transit lines

    // --- Network ------------------------------------------------------
    Cycles netLatency = 120;        //!< one-way end-to-end
    Cycles netCtrlOccupancy = 8;    //!< NIC occupancy per control msg
    Cycles netDataOccupancy = 16;   //!< NIC occupancy per line-data msg
    Cycles netPageOccupancy = 128;  //!< NIC occupancy per page-data msg

    // --- Paging (calibrated to Table 1's 2300 / 4400 cycles) -----------
    Cycles faultKernelCycles = 2200;   //!< local kernel fault handling
    Cycles pitCommandCycles = 50;      //!< command-mode PIT programming
    Cycles homePageInService = 1300;   //!< home-kernel page-in service
    Cycles pageOutKernelCycles = 1500; //!< kernel page-out handling
    Cycles tlbShootdownCycles = 40;    //!< per-processor local shootdown
    Cycles diskLatency = 200000;       //!< backing-store transfer

    // --- Intra-node line protocol ----------------------------------------
    /**
     * Line-protocol scheme for the processor caches and node bus; the
     * PRISM_PROTOCOL environment variable (msi|mesi|moesi|mesif)
     * overrides this at Machine construction.
     */
    ProtocolScheme protocol = ProtocolScheme::Mesi;

    // --- Memory management ----------------------------------------------
    PolicyKind policy = PolicyKind::Scoma;
    /**
     * Per-node cap on client S-COMA frames; 0 = unlimited.  For the
     * SCOMA-70 and Dyn-* configurations the experiment runner sets
     * this per node from a calibration SCOMA run (Section 4.2).
     */
    std::uint64_t clientFrameCap = 0;
    /** Optional per-node caps (overrides clientFrameCap when nonempty). */
    std::vector<std::uint64_t> clientFrameCapPerNode;
    /** Extension: map client pages CC-NUMA style, bypassing the PIT. */
    bool ccNumaBypass = false;
    /**
     * Section 4.3 design option: cache client frame numbers in the
     * directory so invalidations carry a reverse-translation hint
     * (avoids the PIT hash walk at clients, "albeit at the price of
     * increased directory sizes").  Off in the paper's evaluated
     * configuration.
     */
    bool dirClientFrameHints = false;

    // --- Lazy page migration ----------------------------------------------
    bool migrationEnabled = false;
    /** Remote-access count that triggers a migration evaluation. */
    std::uint64_t migrationThreshold = 64;

    // --- Synchronization cost model ------------------------------------
    Cycles lockAcquireCycles = 300;  //!< uncontended remote lock RT
    Cycles lockHandoffCycles = 140;  //!< contended handoff
    Cycles barrierCycles = 400;      //!< per-episode barrier overhead

    // --- Protocol checking (src/check) -----------------------------------
    /**
     * Oracle level; the PRISM_ORACLE environment variable
     * (off|quiescent|continuous) overrides this at Machine
     * construction.
     */
    OracleMode oracleMode = OracleMode::Off;
    /**
     * Panic on the first oracle violation (debugger-friendly).  The
     * explorer clears this to collect violations and shrink instead.
     */
    bool oracleFatal = true;
    /**
     * Fault injection for oracle self-tests: each controller omits up
     * to this many invalidations from its home-side fan-out (the
     * requester is told to expect correspondingly fewer acks, so the
     * protocol proceeds with a stale sharer left behind).  0 = off.
     */
    std::uint32_t mutationSkipInvals = 0;

    // --- Schedule fuzzing -------------------------------------------------
    /**
     * Maximum extra delivery delay the network adds per message, drawn
     * deterministically from jitterSeed.  Delivery stays FIFO per
     * (src, dst) pair — a property the protocol relies on.  0 keeps
     * the network bit-identical to the unjittered model.
     */
    Cycles netJitterMax = 0;
    std::uint64_t jitterSeed = 1;

    // --- Simulation -----------------------------------------------------
    std::uint32_t runAheadQuantum = 2000; //!< max local-time run-ahead
    std::uint64_t seed = 12345;
    /**
     * Event-loop shards for conservative parallel intra-run
     * simulation (sim/shard.hh): nodes are split into this many
     * groups, each driven by its own event queue on its own thread.
     * 1 (the default) is the sequential scheduler, bit-identical to
     * the pre-sharding simulator.  Clamped to numNodes; forced to 1
     * when a sequential-only feature (oracle, jitter, PRISM_TRACE) is
     * active.  Benches thread `--jobs-intra` / PRISM_JOBS_INTRA here.
     */
    std::uint32_t jobsIntra = 1;

    std::uint32_t numProcs() const { return numNodes * procsPerNode; }
};

/**
 * Hard ceiling on the node count.  Sized by the simulator's O(n^2)
 * per-pair network FIFO state and the 16-bit node ids in the oracle's
 * violation-trace ring — not by the coherence layer, whose SharerSet
 * bitmaps grow with the machine (sharer_set.hh).
 */
constexpr std::uint32_t kMaxNodes = 1024;

/** Ceiling on total processors (nodes x procs). */
constexpr std::uint32_t kMaxProcs = 64 * 1024;

/**
 * Fail fast on an impossible topology: zero counts, numNodes >
 * kMaxNodes, numProcs() > kMaxProcs, or a non-power-of-two directory
 * cache.  fatal()s naming the limit; called at Machine construction
 * so a bad config can never silently corrupt a run.
 */
void validateConfig(const MachineConfig &cfg);

/**
 * Parse a machine-size preset into @p cfg's topology: either
 * "<nodes>x<procsPerNode>" (e.g. "128x8") or a named preset — "paper"
 * (8x4, the paper's evaluated machine).  Other fields are untouched.
 * @retval false @p s parses as neither (cfg untouched).
 */
bool machineFromString(const char *s, MachineConfig *cfg);

/** The machine-size sweep presets: 8x4, 16x4, 32x8, 128x8. */
std::vector<MachineConfig> machinePresets(const MachineConfig &base);

} // namespace prism

#endif // PRISM_CORE_CONFIG_HH
