#include "core/node.hh"

#include "core/machine.hh"

namespace prism {

Node::Node(NodeId id, const MachineConfig &cfg, EventQueue &eq,
           Machine &machine, IpcServer &ipc,
           std::function<NodeId(GPage)> static_home_of,
           std::function<void(Msg &&)> send)
    : id_(id), cfg_(cfg), eq_(eq), geo_(cfg.lineBytes),
      proto_(LineProtocol::get(cfg.protocol)),
      bus_(cfg.busAddrCycles, cfg.busDataCycles),
      dram_(cfg.memAccessCycles)
{
    kernel_ = std::make_unique<Kernel>(id, cfg, eq, ipc, static_home_of,
                                       send);
    ctrl_ = std::make_unique<CoherenceController>(
        id, cfg, eq, dram_, *this, static_home_of, std::move(send));
    kernel_->attachController(ctrl_.get());

    for (std::uint32_t i = 0; i < cfg.procsPerNode; ++i) {
        ProcId pid = id * cfg.procsPerNode + i;
        procs_.push_back(
            std::make_unique<Proc>(pid, *this, machine, cfg, eq));
    }

    kernel_->setTlbShootdown([this](VPage vp) {
        for (auto &p : procs_)
            p->shootdown(vp);
    });
    kernel_->setCacheFlush([this](FrameNum f) {
        for (auto &p : procs_)
            p->invalidateFrame(f);
    });
}

DelayAwaiter
Node::until(Tick t)
{
    return DelayAwaiter(eq_, t > eq_.now() ? t - eq_.now() : 0);
}

void
Node::receive(Msg m)
{
    if (isKernelMsg(m.type))
        kernel_->receive(std::move(m));
    else
        ctrl_->onMessage(std::move(m));
}

CoTask
Node::memAccess(Proc &requester, FrameNum frame, std::uint32_t line_idx,
                bool write, Mesi requester_state)
{
    const std::uint64_t line_paddr =
        (frame << kPageShift) |
        (static_cast<std::uint64_t>(line_idx) << geo_.lineShift());

    // One node-level transaction per line at a time (bus retry).
    while (busPending_.count(line_paddr))
        co_await delay(cfg_.retryDelay);
    busPending_.insert(line_paddr);
    ++busPendingByFrame_[frame];
    struct PendingGuard {
        Node &node;
        std::uint64_t key;
        FrameNum frame;
        ~PendingGuard()
        {
            node.busPending_.erase(key);
            auto it = node.busPendingByFrame_.find(frame);
            if (--it->second == 0)
                node.busPendingByFrame_.erase(it);
        }
    } guard{*this, line_paddr, frame};

    for (;;) {
        // Address tenure on the split-transaction bus.
        co_await until(bus_.addressPhase(eq_.now()));

        // Snoop peer caches.
        Proc *peer_owner = nullptr; // peer holding an owner-class state
        bool peer_dirty = false;
        bool peer_shared = false;     // any valid non-owner peer copy
        bool peer_can_supply = false; // ... that supplies snoop reads
        for (auto &pp : procs_) {
            if (pp.get() == &requester)
                continue;
            Mesi s = pp->snoopLine(line_paddr, false, false);
            if (ownerClass(s)) {
                peer_owner = pp.get();
                peer_dirty = dirtyLine(s);
                break;
            }
            if (s != Mesi::Invalid) {
                peer_shared = true;
                // MESIF: plain Shared copies stay silent; only the
                // Forward designee supplies cache-to-cache.
                if (proto_.on(s, LineEvent::SnoopRead).actions &
                    kActSupplyData)
                    peer_can_supply = true;
            }
        }

        // NOTE on ordering: every fill below charges the bus data
        // phase FIRST and then revalidates (fine-grain tag, fill
        // token, or peer re-snoop) immediately before fillLine with
        // no suspension in between, so a racing invalidation or
        // intervention can never slip between validation and fill.
        if (write) {
            // MOESI: Owned arises only from an intra-node snoop read
            // of Modified, so every sharer of an Owned line is on
            // this bus — a store to Owned upgrades with the local
            // address tenure alone, no directory round trip.  The
            // state is re-checked here (atomically with the upgrade:
            // no suspension below) in case a remote intervention
            // downgraded it while we waited for the bus.
            if (requester_state == Mesi::Owned &&
                requester.lineState(line_paddr) == Mesi::Owned) {
                for (auto &pp : procs_) {
                    if (pp.get() != &requester)
                        pp->snoopLine(line_paddr, true, false);
                }
                requester.fillLine(line_paddr, Mesi::Modified);
                co_return;
            }
            if (peer_owner) {
                // Cache-to-cache transfer with invalidation; the node
                // already has exclusivity at the inter-node level.
                co_await delay(cfg_.cacheToCache);
                co_await until(bus_.dataPhase(eq_.now()));
                Mesi cur = peer_owner->snoopLine(line_paddr, true, false);
                if (!ownerClass(cur)) {
                    // The copy vanished or was downgraded by a racing
                    // remote intervention: node exclusivity is gone.
                    co_await delay(cfg_.retryDelay);
                    continue;
                }
                // An Owned peer coexists with Shared copies: sweep
                // the remaining peers too (no-op under MESI, where an
                // owner excludes every other copy).
                for (auto &pp : procs_) {
                    if (pp.get() != &requester && pp.get() != peer_owner)
                        pp->snoopLine(line_paddr, true, false);
                }
                requester.fillLine(line_paddr, Mesi::Modified);
                co_return;
            }
            const bool local_copy =
                requester_state != Mesi::Invalid || peer_shared;
            MissResult res;
            co_await ctrl_->serviceMiss(frame, line_idx, true, local_copy,
                                        &res);
            if (res.source == MissSource::BadFrame)
                co_return; // caller re-translates and re-faults
            if (res.source == MissSource::Retry) {
                co_await delay(cfg_.retryDelay);
                continue;
            }
            co_await until(bus_.dataPhase(eq_.now()));
            if (!ctrl_->finishFill(frame, line_idx, Mesi::Modified)) {
                co_await delay(cfg_.retryDelay);
                continue;
            }
            // Invalidate peer S copies under the local bus protocol.
            for (auto &pp : procs_) {
                if (pp.get() != &requester)
                    pp->snoopLine(line_paddr, true, false);
            }
            requester.fillLine(line_paddr, Mesi::Modified);
            co_return;
        }

        // Read path.
        if (peer_owner) {
            co_await delay(cfg_.cacheToCache);
            co_await until(bus_.dataPhase(eq_.now()));
            Mesi cur =
                peer_owner->snoopLine(line_paddr, false, true, true);
            if (cur == Mesi::Invalid) {
                co_await delay(cfg_.retryDelay);
                continue;
            }
            if (ownerClass(cur)) {
                // Relinquish node ownership / reflect dirty data as
                // the supplier's transition demands.  MOESI's M->O
                // retains both the dirty data and node ownership, so
                // nothing reaches the controller.
                const Transition &t =
                    proto_.on(cur, LineEvent::SnoopRead);
                if (t.actions & kActRelinquish)
                    ctrl_->reflectDowngrade(
                        frame, line_idx,
                        (t.actions & kActWritebackData) || peer_dirty);
            } else {
                // A racing remote intervention already downgraded the
                // copy; reflect any dirty data it held at snoop time.
                ctrl_->reflectDowngrade(frame, line_idx, peer_dirty);
            }
            requester.fillLine(line_paddr, proto_.peerReadFill());
            co_return;
        }
        if (peer_can_supply) {
            // A supply-capable node-level copy exists; supply locally,
            // unless a racing invalidation removed it meanwhile.
            co_await delay(cfg_.cacheToCache);
            co_await until(bus_.dataPhase(eq_.now()));
            bool still_valid = false;
            for (auto &pp : procs_) {
                if (pp.get() == &requester)
                    continue;
                Mesi s = pp->snoopLine(line_paddr, false, true, true);
                if (s == Mesi::Invalid)
                    continue;
                const Transition *t =
                    proto_.tryOn(s, LineEvent::SnoopRead);
                if (t && (t->actions & kActSupplyData)) {
                    still_valid = true;
                    break;
                }
            }
            if (!still_valid) {
                co_await delay(cfg_.retryDelay);
                continue;
            }
            requester.fillLine(line_paddr, proto_.peerReadFill());
            co_return;
        }
        MissResult res;
        co_await ctrl_->serviceMiss(frame, line_idx, false, false, &res);
        if (res.source == MissSource::BadFrame)
            co_return; // caller re-translates and re-faults
        if (res.source == MissSource::Retry) {
            co_await delay(cfg_.retryDelay);
            continue;
        }
        const Mesi grant = proto_.readFill(res.exclusive);
        co_await until(bus_.dataPhase(eq_.now()));
        if (!ctrl_->finishFill(frame, line_idx, grant)) {
            co_await delay(cfg_.retryDelay);
            continue;
        }
        requester.fillLine(line_paddr, grant);
        // MSI has no clean-exclusive state: give an exclusive grant's
        // node-level ownership straight back to the home, else the
        // directory would hold this node as Owner of a line every
        // local cache thinks is merely Shared (and could drop
        // silently).
        if (res.exclusive && proto_.demoteExclusiveReadGrant())
            ctrl_->reflectDowngrade(frame, line_idx, false);
        co_return;
    }
}

InterventionResult
Node::intervene(FrameNum frame, std::uint32_t line_idx, bool invalidate,
                Tick at)
{
    const std::uint64_t line_paddr =
        (frame << kPageShift) |
        (static_cast<std::uint64_t>(line_idx) << geo_.lineShift());
    bool found = false;
    bool dirty = false;
    bool exclusive = false;
    for (auto &p : procs_) {
        Mesi s = p->snoopLine(line_paddr, invalidate, !invalidate);
        if (s == Mesi::Invalid)
            continue;
        found = true;
        if (dirtyLine(s))
            dirty = true;
        if (ownerClass(s))
            exclusive = true;
    }
    Tick done = bus_.addressPhase(at);
    if (dirty)
        done = bus_.dataPhase(done);
    return InterventionResult{done, found, dirty, exclusive};
}

bool
Node::anyBusPending(FrameNum frame) const
{
    return busPendingByFrame_.count(frame) != 0;
}

bool
Node::anyCachedCopy(FrameNum frame) const
{
    for (const auto &p : procs_) {
        Proc &proc = *p; // cache accessors are non-const
        if (proc.l2().anyInFrame(frame) || proc.l1().anyInFrame(frame))
            return true;
    }
    return false;
}

bool
Node::lineCached(FrameNum frame, std::uint32_t line_idx) const
{
    const std::uint64_t line_paddr =
        (frame << kPageShift) |
        (static_cast<std::uint64_t>(line_idx) << geo_.lineShift());
    for (const auto &p : procs_) {
        if (p->lineState(line_paddr) != Mesi::Invalid)
            return true;
    }
    return false;
}

FrameNum
Node::migrationAllocFrame(GPage gp)
{
    return kernel_->migrationAllocFrame(gp);
}

void
Node::migrationFreeFrame(FrameNum frame, GPage gp)
{
    kernel_->migrationFreeFrame(frame, gp);
}

SharerSet
Node::homeKernelClients(GPage gp)
{
    return kernel_->homeClients(gp);
}

void
Node::homeKernelAdopt(GPage gp, const SharerSet &clients)
{
    kernel_->adoptHomePage(gp, clients);
}

void
Node::homeKernelDepart(GPage gp)
{
    kernel_->departHomePage(gp);
}

} // namespace prism
