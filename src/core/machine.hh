/**
 * @file
 * The PRISM machine: nodes, interconnect, global IPC, synchronization
 * managers, and the run loop.
 *
 * This is the library's main entry point: construct a Machine from a
 * MachineConfig, create and attach global segments, hand each
 * processor a program coroutine, and run() to completion.
 */

#ifndef PRISM_CORE_MACHINE_HH
#define PRISM_CORE_MACHINE_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "coherence/msg.hh"
#include "core/config.hh"
#include "core/metrics.hh"
#include "core/node.hh"
#include "core/sync.hh"
#include "net/network.hh"
#include "obs/metrics.hh"
#include "obs/report.hh"
#include "os/ipc_server.hh"
#include "policy/page_policy.hh"
#include "sim/event_queue.hh"
#include "sim/stats.hh"
#include "sim/trace.hh"

namespace prism {

class ProtocolOracle;
class TraceSink;

/** The whole simulated multiprocessor. */
class Machine
{
  public:
    explicit Machine(const MachineConfig &cfg);
    ~Machine();

    Machine(const Machine &) = delete;
    Machine &operator=(const Machine &) = delete;

    const MachineConfig &config() const { return cfg_; }
    EventQueue &eventQueue() { return eq_; }
    Network &network() { return *net_; }
    IpcServer &ipc() { return ipc_; }
    LockManager &locks() { return *locks_; }
    BarrierManager &barriers() { return *barriers_; }
    MetricRegistry &metricRegistry() { return registry_; }
    const MetricRegistry &metricRegistry() const { return registry_; }

    /**
     * Always-on bounded history of recent protocol messages (the
     * last-N debugging buffer; see obs/ for the full trace sink).
     */
    const TraceRing &messageRing() const { return msgRing_; }

    /** Protocol oracle; nullptr when oracleMode is Off. */
    ProtocolOracle *oracle() { return oracle_.get(); }

    Node &node(NodeId n) { return *nodes_[n]; }
    std::uint32_t numNodes() const
    {
        return static_cast<std::uint32_t>(nodes_.size());
    }

    /** Processor by global id (node-major numbering). */
    Proc &
    proc(ProcId p)
    {
        return nodes_[p / cfg_.procsPerNode]->proc(p % cfg_.procsPerNode);
    }

    std::uint32_t numProcs() const { return cfg_.numProcs(); }

    /** Static home of a global page: round-robin across nodes. */
    NodeId
    staticHomeOf(GPage gp) const
    {
        return static_cast<NodeId>(gp % cfg_.numNodes);
    }

    // --- Global shared memory setup ---------------------------------------

    /** Globalized shmget: allocate/look up a segment. */
    std::uint64_t shmget(std::uint64_t key, std::uint64_t bytes);

    /**
     * Globalized shmat on every node: bind virtual segment @p vsid to
     * global segment @p gsid at identical virtual addresses (the
     * loader behaviour described in Section 3.3).
     */
    void shmatAll(std::uint64_t vsid, std::uint64_t gsid);

    // --- Running programs ------------------------------------------------

    /**
     * Run one program coroutine per processor to completion.
     * @p make is called once per processor to create its program.
     */
    void run(const std::function<CoTask(Proc &)> &make);

    /** Drain all residual simulation activity (writebacks etc.). */
    void drain();

    // --- Parallel-phase measurement ------------------------------------

    /** Called by the program when the measured phase starts. */
    void markParallelBegin();

    /** Called by the program when the measured phase ends. */
    void markParallelEnd();

    Tick parallelBeginTick() const { return parallelBegin_; }

    /**
     * Aggregate run metrics (see RunMetrics), derived entirely from
     * the labeled metric registry.  Non-const: refreshes gauge samples.
     */
    RunMetrics metrics();

    Tick parallelEndTick() const
    {
        return parallelEndSet_ ? parallelEnd_ : lastProcDone_;
    }

    /** Build the full structured run report (see obs/report.hh). */
    RunReport report() { return buildRunReport(*this); }

    /** Route a protocol message through the network. */
    void route(Msg &&m);

  private:
    struct Snapshot {
        std::uint64_t remoteMisses = 0;
        std::uint64_t clientPageOuts = 0;
        std::uint64_t upgrades = 0;
        std::uint64_t invalidations = 0;
        std::uint64_t networkMessages = 0;
        std::uint64_t pageFaults = 0;
    };

    Snapshot snapshot() const;

    MachineConfig cfg_;
    EventQueue eq_;
    std::unique_ptr<Network> net_;
    IpcServer ipc_;
    std::unique_ptr<LockManager> locks_;
    std::unique_ptr<BarrierManager> barriers_;
    std::unique_ptr<PagePolicy> policy_;
    std::vector<std::unique_ptr<Node>> nodes_;
    std::unique_ptr<ProtocolOracle> oracle_;
    MetricRegistry registry_;
    TraceRing msgRing_;
    std::unique_ptr<TraceSink> trace_;
    /** Recycled message boxes for route(): in-flight messages live on
     *  the heap (the delivery callback holds a raw pointer), but boxes
     *  are reused so steady-state routing performs no allocation. */
    std::vector<std::unique_ptr<Msg>> msgPool_;

    Tick parallelBegin_ = 0;
    Tick parallelEnd_ = 0;
    bool parallelBeginSet_ = false;
    bool parallelEndSet_ = false;
    Snapshot beginSnap_;
    Snapshot endSnap_;
    Tick lastProcDone_ = 0;
};

} // namespace prism

#endif // PRISM_CORE_MACHINE_HH
