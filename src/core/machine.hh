/**
 * @file
 * The PRISM machine: nodes, interconnect, global IPC, synchronization
 * managers, and the run loop.
 *
 * This is the library's main entry point: construct a Machine from a
 * MachineConfig, create and attach global segments, hand each
 * processor a program coroutine, and run() to completion.
 */

#ifndef PRISM_CORE_MACHINE_HH
#define PRISM_CORE_MACHINE_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "coherence/msg.hh"
#include "core/config.hh"
#include "core/metrics.hh"
#include "core/node.hh"
#include "core/sync.hh"
#include "net/network.hh"
#include "obs/metrics.hh"
#include "obs/report.hh"
#include "os/ipc_server.hh"
#include "policy/page_policy.hh"
#include "sim/event_queue.hh"
#include "sim/shard.hh"
#include "sim/snap_log.hh"
#include "sim/stats.hh"
#include "sim/trace.hh"

namespace prism {

class ProtocolOracle;
class RefSink;
class TraceSink;

/**
 * Everything one event-loop shard owns (sim/shard.hh).  The sequential
 * scheduler is the one-shard special case: shard 0 holds THE event
 * queue, message pool and message ring, and every other field stays
 * idle.  With jobsIntra > 1 each shard drives a contiguous block of
 * nodes on its own thread; all fields are written only by the owning
 * shard's thread during a window, and read/reset only by the
 * coordinator between windows.
 */
struct MachineShard {
    EventQueue eq;
    /** Tick-tagged snapshot-counter increments (mark adjustment). */
    SnapshotLog snapLog;
    /** Sync ops logged this window, applied at the barrier. */
    std::vector<SyncOp> syncOps;
    /** Last-N message history for this shard's nodes. */
    TraceRing msgRing;
    /** Recycled message boxes for route() (freed by the *destination*
     *  shard, so boxes migrate between pools; see Machine::route). */
    std::vector<std::unique_ptr<Msg>> msgPool;
    /** A parallel-phase mark was logged and not yet applied: the
     *  window is truncated and stays truncated until the coordinator
     *  applies the mark and front-splices the continuation. */
    bool markHit = false;
    /** Programs finished on this shard, and the last finish tick. */
    std::uint32_t done = 0;
    Tick lastDone = 0;
};

/** The whole simulated multiprocessor. */
class Machine
{
  public:
    explicit Machine(const MachineConfig &cfg);
    ~Machine();

    Machine(const Machine &) = delete;
    Machine &operator=(const Machine &) = delete;

    const MachineConfig &config() const { return cfg_; }

    /**
     * Shard 0's event queue — the *only* queue in sequential mode
     * (jobsIntra == 1, the default).  Callers that drive the queue by
     * hand (latency probes, unit tests) require sequential mode.
     */
    EventQueue &eventQueue() { return shards_[0]->eq; }

    /** Number of event-loop shards (1 = sequential scheduler). */
    std::uint32_t
    numShards() const
    {
        return static_cast<std::uint32_t>(shards_.size());
    }

    /** Shard driving @p n 's event loop. */
    std::uint32_t shardOfNode(NodeId n) const { return shardOfNode_[n]; }

    /** Conservative window lookahead, cycles (sharded mode). */
    Cycles lookahead() const { return lookahead_; }

    /** Events executed, aggregated over every shard's queue. */
    std::uint64_t
    eventsExecuted() const
    {
        std::uint64_t total = 0;
        for (const auto &sh : shards_)
            total += sh->eq.eventsExecuted();
        return total;
    }

    Network &network() { return *net_; }
    IpcServer &ipc() { return ipc_; }
    LockManager &locks() { return *locks_; }
    BarrierManager &barriers() { return *barriers_; }
    MetricRegistry &metricRegistry() { return registry_; }
    const MetricRegistry &metricRegistry() const { return registry_; }

    /**
     * Always-on bounded history of recent protocol messages (the
     * last-N debugging buffer; see obs/ for the full trace sink).
     * Sharded mode keeps one ring per shard; this returns shard 0's
     * (the whole history in sequential mode).
     */
    const TraceRing &messageRing() const { return shards_[0]->msgRing; }

    /** Shard @p s 's message-history ring. */
    const TraceRing &
    messageRing(std::uint32_t s) const
    {
        return shards_[s]->msgRing;
    }

    /** Protocol oracle; nullptr when oracleMode is Off. */
    ProtocolOracle *oracle() { return oracle_.get(); }

    /**
     * Attach (or with nullptr detach) a reference-stream recorder:
     * segment setup calls report here, and every processor's program
     * interface is hooked (frontend/ref_sink.hh).
     */
    void setRefSink(RefSink *s);

    Node &node(NodeId n) { return *nodes_[n]; }
    std::uint32_t numNodes() const
    {
        return static_cast<std::uint32_t>(nodes_.size());
    }

    /** Processor by global id (node-major numbering). */
    Proc &
    proc(ProcId p)
    {
        return nodes_[p / cfg_.procsPerNode]->proc(p % cfg_.procsPerNode);
    }

    std::uint32_t numProcs() const { return cfg_.numProcs(); }

    /** Static home of a global page: round-robin across nodes. */
    NodeId
    staticHomeOf(GPage gp) const
    {
        return static_cast<NodeId>(gp % cfg_.numNodes);
    }

    // --- Global shared memory setup ---------------------------------------

    /** Globalized shmget: allocate/look up a segment. */
    std::uint64_t shmget(std::uint64_t key, std::uint64_t bytes);

    /**
     * Globalized shmat on every node: bind virtual segment @p vsid to
     * global segment @p gsid at identical virtual addresses (the
     * loader behaviour described in Section 3.3).
     */
    void shmatAll(std::uint64_t vsid, std::uint64_t gsid);

    // --- Running programs ------------------------------------------------

    /**
     * Run one program coroutine per processor to completion.
     * @p make is called once per processor to create its program.
     */
    void run(const std::function<CoTask(Proc &)> &make);

    /** Drain all residual simulation activity (writebacks etc.). */
    void drain();

    // --- Parallel-phase measurement ------------------------------------

    /** Called by the program when the measured phase starts. */
    void markParallelBegin();

    /** Called by the program when the measured phase ends. */
    void markParallelEnd();

    Tick parallelBeginTick() const { return parallelBegin_; }

    /**
     * Aggregate run metrics (see RunMetrics), derived entirely from
     * the labeled metric registry.  Non-const: refreshes gauge samples.
     */
    RunMetrics metrics();

    Tick parallelEndTick() const
    {
        return parallelEndSet_ ? parallelEnd_ : lastProcDone_;
    }

    /** Build the full structured run report (see obs/report.hh). */
    RunReport report() { return buildRunReport(*this); }

    /** Route a protocol message through the network. */
    void route(Msg &&m);

  private:
    struct Snapshot {
        std::uint64_t remoteMisses = 0;
        std::uint64_t clientPageOuts = 0;
        std::uint64_t upgrades = 0;
        std::uint64_t invalidations = 0;
        std::uint64_t networkMessages = 0;
        std::uint64_t pageFaults = 0;
    };

    Snapshot snapshot() const;

    /**
     * snapshot() as of tick @p at: the registry totals minus every
     * increment other shards (not @p mark_shard, whose own execution
     * order already respects the mark) logged at or after @p at.
     */
    Snapshot snapshotAdjusted(Tick at, std::uint32_t mark_shard) const;

    // --- Sharded run loop (jobsIntra > 1) ------------------------------

    /** Windows of [W, W+L) until every queue and channel is dry. */
    void runShardedLoop();

    /** One shard's slice of a window: run events below windowLimit_. */
    void runShardWindow(std::uint32_t s);

    /** Apply a deferred parallel-phase mark (coordinator). */
    void applyMark(const SyncOp &op);

    /** Index of the shard that owns @p q. */
    std::uint32_t shardOfQueue(const EventQueue *q) const;

    MachineConfig cfg_;
    /** Event-loop shards; shards_[0] doubles as the sequential queue.
     *  unique_ptr for address stability: nodes hold EventQueue&. */
    std::vector<std::unique_ptr<MachineShard>> shards_;
    std::vector<std::uint32_t> shardOfNode_;
    Cycles lookahead_ = 0;
    std::unique_ptr<Network> net_;
    IpcServer ipc_;
    std::unique_ptr<LockManager> locks_;
    std::unique_ptr<BarrierManager> barriers_;
    std::unique_ptr<PagePolicy> policy_;
    std::vector<std::unique_ptr<Node>> nodes_;
    std::unique_ptr<ProtocolOracle> oracle_;
    RefSink *refSink_ = nullptr;
    MetricRegistry registry_;
    std::unique_ptr<TraceSink> trace_;
    /** Worker threads for shards 1..N-1 (null in sequential mode). */
    std::unique_ptr<ShardWorkers> workers_;
    /** Current window's exclusive limit W+L (set by the coordinator
     *  before each round; read by shard threads during it). */
    Tick windowLimit_ = 0;
    /** Sync ops held across a round because a mark preceded them. */
    std::vector<SyncOp> pendingSync_;
    /** Next grant rank (see SyncActor); seeded to numProcs(). */
    std::uint64_t nextSyncRank_ = 0;

    Tick parallelBegin_ = 0;
    Tick parallelEnd_ = 0;
    bool parallelBeginSet_ = false;
    bool parallelEndSet_ = false;
    Snapshot beginSnap_;
    Snapshot endSnap_;
    Tick lastProcDone_ = 0;
};

} // namespace prism

#endif // PRISM_CORE_MACHINE_HH
