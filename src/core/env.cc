#include "core/env.hh"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "sim/logging.hh"

namespace prism {

namespace {

// clang-format off
const EnvKnob kKnobs[] = {
    {"PRISM_SCALE", "--scale", "paper|small|tiny", "paper",
     "application problem-size preset"},
    {"PRISM_APPS", "--apps", "comma-separated name substrings", "all eight",
     "application filter (e.g. Water selects both Water variants)"},
    {"PRISM_JOBS", "--jobs", "N >= 1", "hardware threads",
     "worker threads for the parallel sweep runner"},
    {"PRISM_JOBS_INTRA", "--jobs-intra", "N >= 1", "1",
     "event-loop shards inside each simulation"},
    {"PRISM_PROTOCOL", "--protocol", "msi|mesi|moesi|mesif", "mesi",
     "intra-node line protocol (docs/PROTOCOL.md)"},
    {"PRISM_FRONTEND", "--frontend", "exec|record|replay", "exec",
     "reference-stream frontend (docs/TRACE.md)"},
    {"PRISM_TRACE_FILE", "--trace-file", "path[.ptrace]", "unset",
     "trace file for --frontend=record/replay"},
    {"PRISM_ORACLE", nullptr, "off|quiescent|continuous", "off",
     "runtime protocol-invariant checker (forces sequential)"},
    {"PRISM_TRACE", nullptr, "path", "unset",
     "Chrome trace-event sink (forces sequential)"},
    {"PRISM_TRACE_GPAGE", nullptr, "global page number", "unset",
     "message-log filter: only this global page"},
    {"PRISM_TRACE_LI", nullptr, "line index", "unset",
     "message-log filter: only this line index"},
    {"PRISM_PROPERTY_SEED", nullptr, "N", "per-suite",
     "(tests) seed for property/fuzz suites"},
    {"PRISM_FUZZ_PROTOCOL", nullptr, "msi|mesi|moesi|mesif", "sweep",
     "(tests) pin the fuzzer to one line protocol"},
    {"PRISM_UPDATE_GOLDEN", nullptr, "any value", "unset",
     "(tests) regenerate committed golden files"},
};
// clang-format on

constexpr std::size_t kNumKnobs = sizeof(kKnobs) / sizeof(kKnobs[0]);

} // namespace

const EnvKnob *
envKnobs(std::size_t *count)
{
    *count = kNumKnobs;
    return kKnobs;
}

const EnvKnob *
findEnvKnob(const char *env)
{
    for (const EnvKnob &k : kKnobs) {
        if (!std::strcmp(k.env, env))
            return &k;
    }
    return nullptr;
}

const EnvKnob *
findEnvKnobByFlag(const char *flag)
{
    for (const EnvKnob &k : kKnobs) {
        if (k.flag && !std::strcmp(k.flag, flag))
            return &k;
    }
    return nullptr;
}

const char *
resolveEnv(const char *env)
{
    if (!findEnvKnob(env)) {
        panic("environment variable '%s' is not in the PRISM knob "
              "registry (core/env.cc); register it so --help and the "
              "flag > env > default rule stay complete",
              env);
    }
    return std::getenv(env);
}

std::string
envHelpTable()
{
    std::string out;
    char line[256];
    std::snprintf(line, sizeof(line), "  %-18s %-13s %-34s %s\n",
                  "environment", "flag", "values", "default");
    out += line;
    for (const EnvKnob &k : kKnobs) {
        std::snprintf(line, sizeof(line), "  %-18s %-13s %-34s %s\n",
                      k.env, k.flag ? k.flag : "-", k.values, k.def);
        out += line;
        std::snprintf(line, sizeof(line), "  %-18s   %s\n", "", k.help);
        out += line;
    }
    return out;
}

} // namespace prism
