#include "core/env.hh"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "sim/logging.hh"

namespace prism {

namespace {

// clang-format off
const EnvKnob kKnobs[] = {
    {"PRISM_SCALE", "--scale", "paper|small|tiny", "paper",
     "application problem-size preset"},
    {"PRISM_APPS", "--apps", "comma-separated name substrings", "all nine",
     "application filter (e.g. Water selects both Water variants)"},
    {"PRISM_JOBS", "--jobs", "N >= 1", "hardware threads",
     "worker threads for the parallel sweep runner"},
    {"PRISM_JOBS_INTRA", "--jobs-intra", "N >= 1", "1",
     "event-loop shards inside each simulation"},
    {"PRISM_MACHINE", "--machine", "paper|<nodes>x<procs>", "paper",
     "machine-size preset (e.g. 128x8 = 1024 processors)"},
    {"PRISM_PROTOCOL", "--protocol", "msi|mesi|moesi|mesif", "mesi",
     "intra-node line protocol (docs/PROTOCOL.md)"},
    {"PRISM_FRONTEND", "--frontend", "exec|record|replay", "exec",
     "reference-stream frontend (docs/TRACE.md)"},
    {"PRISM_TRACE_FILE", "--trace-file", "path[.ptrace]", "unset",
     "trace file for --frontend=record/replay"},
    {"PRISM_ORACLE", nullptr, "off|quiescent|continuous", "off",
     "runtime protocol-invariant checker (forces sequential)"},
    {"PRISM_TRACE", nullptr, "path", "unset",
     "Chrome trace-event sink (forces sequential)"},
    {"PRISM_TRACE_GPAGE", nullptr, "global page number", "unset",
     "message-log filter: only this global page"},
    {"PRISM_TRACE_LI", nullptr, "line index", "unset",
     "message-log filter: only this line index"},
    {"PRISM_KV_KEYS", "--kv-keys", "N >= 1", "scale preset",
     "(kv) initial keyspace size for the KV workload"},
    {"PRISM_KV_REQUESTS", "--kv-requests", "N >= 1", "scale preset",
     "(kv) total open-loop requests per KV run"},
    {"PRISM_KV_THETA", "--kv-theta", "0 <= x < 1 (0 = uniform)", "sweep",
     "(kv) Zipfian skew of the key-popularity distribution"},
    {"PRISM_KV_MIX", "--kv-mix", "a|b|c|d|e", "sweep",
     "(kv) restrict kv_sweep to one YCSB-style mix"},
    {"PRISM_PROPERTY_SEED", nullptr, "N", "per-suite",
     "(tests) seed for property/fuzz suites"},
    {"PRISM_FUZZ_PROTOCOL", nullptr, "msi|mesi|moesi|mesif", "sweep",
     "(tests) pin the fuzzer to one line protocol"},
    {"PRISM_UPDATE_GOLDEN", nullptr, "any value", "unset",
     "(tests) regenerate committed golden files"},
};
// clang-format on

constexpr std::size_t kNumKnobs = sizeof(kKnobs) / sizeof(kKnobs[0]);

} // namespace

const EnvKnob *
envKnobs(std::size_t *count)
{
    *count = kNumKnobs;
    return kKnobs;
}

const EnvKnob *
findEnvKnob(const char *env)
{
    for (const EnvKnob &k : kKnobs) {
        if (!std::strcmp(k.env, env))
            return &k;
    }
    return nullptr;
}

const EnvKnob *
findEnvKnobByFlag(const char *flag)
{
    for (const EnvKnob &k : kKnobs) {
        if (k.flag && !std::strcmp(k.flag, flag))
            return &k;
    }
    return nullptr;
}

const char *
resolveEnv(const char *env)
{
    if (!findEnvKnob(env)) {
        panic("environment variable '%s' is not in the PRISM knob "
              "registry (core/env.cc); register it so --help and the "
              "flag > env > default rule stay complete",
              env);
    }
    return std::getenv(env);
}

std::uint64_t
parseKnobU64(const char *what, const char *s, std::uint64_t def,
             std::uint64_t min_value, std::uint64_t max_value)
{
    if (!s)
        return def;
    // strtoull silently wraps negatives ("-5" parses as 2^64-5) and
    // skips leading whitespace; insist on a bare digit string so both
    // shapes fail fast with the knob name instead of truncating.
    if (s[0] < '0' || s[0] > '9')
        fatal("%s must be an unsigned integer (got '%s')", what, s);
    errno = 0;
    char *end = nullptr;
    unsigned long long v = std::strtoull(s, &end, 10);
    if (end == s || *end != '\0')
        fatal("%s must be an unsigned integer (got '%s')", what, s);
    if (errno == ERANGE || v > max_value)
        fatal("%s out of range: '%s' exceeds %llu", what, s,
              static_cast<unsigned long long>(max_value));
    if (v < min_value)
        fatal("%s must be >= %llu (got '%s')", what,
              static_cast<unsigned long long>(min_value), s);
    return v;
}

double
parseKnobReal(const char *what, const char *s, double def, double lo,
              double hi)
{
    if (!s)
        return def;
    errno = 0;
    char *end = nullptr;
    double v = std::strtod(s, &end);
    if (end == s || *end != '\0' || !std::isfinite(v))
        fatal("%s must be a finite decimal (got '%s')", what, s);
    if (errno == ERANGE || v < lo || v > hi)
        fatal("%s must be in [%g, %g] (got '%s')", what, lo, hi, s);
    return v;
}

std::string
envHelpTable()
{
    std::string out;
    char line[256];
    std::snprintf(line, sizeof(line), "  %-18s %-13s %-34s %s\n",
                  "environment", "flag", "values", "default");
    out += line;
    for (const EnvKnob &k : kKnobs) {
        std::snprintf(line, sizeof(line), "  %-18s %-13s %-34s %s\n",
                      k.env, k.flag ? k.flag : "-", k.values, k.def);
        out += line;
        std::snprintf(line, sizeof(line), "  %-18s   %s\n", "", k.help);
        out += line;
    }
    return out;
}

} // namespace prism
