#include "core/proc.hh"

#include <string>

#include "check/oracle.hh"
#include "core/machine.hh"
#include "core/node.hh"

namespace prism {

namespace {

/**
 * Sharded-mode synchronization: suspend the program coroutine and log
 * the op with the shard; the coordinator applies it at the next window
 * barrier and schedules the resume back into this shard's queue.
 */
struct DeferredSyncAwaiter {
    Proc &p;
    std::uint8_t kind;
    std::uint64_t id;

    bool await_ready() const { return false; }

    void
    await_suspend(std::coroutine_handle<> h)
    {
        p.enqueueSyncOp(kind, id, h);
    }

    void await_resume() const {}
};

} // namespace

Proc::Proc(ProcId id, Node &node, Machine &machine,
           const MachineConfig &cfg, EventQueue &eq)
    : id_(id), node_(node), machine_(machine), cfg_(cfg), eq_(eq),
      geo_(cfg.lineBytes),
      l1_(cfg.l1Bytes, cfg.l1Assoc, cfg.lineBytes),
      l2_(cfg.l2Bytes, cfg.l2Assoc, cfg.lineBytes),
      tlb_(cfg.tlbEntries)
{
}

Tick
Proc::localNow() const
{
    return eq_.now() + pendingCycles_;
}

CoTask
Proc::flushTime()
{
    if (pendingCycles_) {
        Cycles c = pendingCycles_;
        pendingCycles_ = 0;
        co_await DelayAwaiter(eq_, c);
    }
}

bool
Proc::tryFastAccess(VAddr va, bool write)
{
    if (write)
        ++stats_.stores;
    else
        ++stats_.loads;
    pendingCycles_ += 1; // issue
    if (pendingCycles_ >= cfg_.runAheadQuantum)
        return false; // bound local-clock skew; yield via the slow path
    return fastCore(va, write);
}

bool
Proc::fastCore(VAddr va, bool write)
{
    // Translate.
    const VPage vp = va.page();
    FrameNum frame;
    if (vp == lastVPage_) {
        frame = lastFrame_;
    } else {
        frame = tlb_.lookup(vp);
        if (frame == kInvalidFrame) {
            const Pte *pte = node_.kernel().pageTable().lookup(vp);
            if (!pte)
                return false; // page fault
            pendingCycles_ += cfg_.tlbRefill;
            ++stats_.tlbRefills;
            tlb_.insert(vp, pte->frame);
            frame = pte->frame;
        }
        lastVPage_ = vp;
        lastFrame_ = frame;
    }
    const std::uint64_t paddr = (frame << kPageShift) | va.offset();
    const std::uint64_t la =
        paddr & ~static_cast<std::uint64_t>(cfg_.lineBytes - 1);

    // Batched commit: a repeat hit on the last-committed L1 line needs
    // no tag probe and no LRU update (the line is already MRU), only
    // stats and the oracle hook.
    if (la == fastLineAddr_ && (!write || fastLineWritable_)) {
        ++stats_.l1Hits;
        if (oracle_)
            oracle_->onAccessCommit(node_.id(), id_, frame, paddr,
                                    write);
        return true;
    }

    // L1.
    const Mesi s1 = l1_.lookup(paddr);
    if (s1 != Mesi::Invalid) {
        if (!write || s1 == Mesi::Modified) {
            l1_.touch(paddr);
            fastLineAddr_ = la;
            fastLineWritable_ = (s1 == Mesi::Modified);
            ++stats_.l1Hits;
            if (oracle_)
                oracle_->onAccessCommit(node_.id(), id_, frame, paddr,
                                        write);
            return true;
        }
        if (s1 == Mesi::Exclusive) {
            // No touch here (matching the original model), so the line
            // may not be MRU: leave the commit cache alone.
            l1_.setState(paddr, Mesi::Modified);
            ++stats_.l1Hits;
            if (oracle_)
                oracle_->onAccessCommit(node_.id(), id_, frame, paddr,
                                        write);
            return true;
        }
        return false; // write to Shared: needs an upgrade
    }

    // L2.
    const Mesi s2 = l2_.lookup(paddr);
    if (s2 == Mesi::Invalid)
        return false;
    if (!write) {
        pendingCycles_ += cfg_.l2HitLatency - 1;
        ++stats_.l2Hits;
        l2_.touch(paddr);
        insertL1(paddr, s2);
        fastLineAddr_ = la;
        fastLineWritable_ = (s2 == Mesi::Modified);
        if (oracle_)
            oracle_->onAccessCommit(node_.id(), id_, frame, paddr, write);
        return true;
    }
    if (s2 == Mesi::Modified || s2 == Mesi::Exclusive) {
        pendingCycles_ += cfg_.l2HitLatency - 1;
        ++stats_.l2Hits;
        l2_.setState(paddr, Mesi::Modified);
        insertL1(paddr, Mesi::Modified);
        fastLineAddr_ = la;
        fastLineWritable_ = true;
        if (oracle_)
            oracle_->onAccessCommit(node_.id(), id_, frame, paddr, write);
        return true;
    }
    return false; // Shared + write
}

void
Proc::insertL1(std::uint64_t line_paddr, Mesi state)
{
    // The insert reorders the set's LRU stack; callers that want the
    // commit cache re-arm it for the inserted line themselves.
    clearFastLine();
    auto victim = l1_.insert(line_paddr, state);
    if (victim && dirtyLine(victim->state)) {
        // Fold the dirty L1 victim into the (inclusive) L2 copy.
        if (l2_.contains(victim->lineAddr)) {
            l2_.setState(victim->lineAddr,
                         strongerLine(victim->state,
                                      l2_.lookup(victim->lineAddr)));
        } else {
            node_.controller().evictLine(
                victim->lineAddr >> kPageShift,
                geo_.lineIndex(victim->lineAddr), victim->state);
        }
    }
}

void
Proc::fillLine(std::uint64_t line_paddr, Mesi state)
{
    auto victim = l2_.insert(line_paddr, state);
    if (victim) {
        // Inclusion: the L1 copy of the victim must go too.
        clearFastLine();
        Mesi s1 = l1_.invalidate(victim->lineAddr);
        Mesi merged = strongerLine(s1, victim->state);
        node_.controller().evictLine(victim->lineAddr >> kPageShift,
                                     geo_.lineIndex(victim->lineAddr),
                                     merged);
    }
    insertL1(line_paddr, state);
}

FireAndForget
Proc::slowAccess(VAddr va, bool write, std::coroutine_handle<> caller)
{
    co_await flushTime();
    for (;;) {
        if (fastCore(va, write))
            break;
        co_await flushTime();

        // Translation present?
        const VPage vp = va.page();
        FrameNum frame = tlb_.lookup(vp);
        if (frame == kInvalidFrame) {
            const Pte *pte = node_.kernel().pageTable().lookup(vp);
            if (!pte) {
                ++stats_.pageFaults;
                FrameNum f = kInvalidFrame;
                co_await node_.kernel().handleFault(vp, &f);
                // A page-out can slip in between the fault completing
                // and this coroutine resuming: its TLB shootdown has
                // already run, so installing the returned frame now
                // would revive a dead translation.  Only install what
                // the page table still holds.
                const Pte *now = node_.kernel().pageTable().lookup(vp);
                if (now && now->frame == f) {
                    tlb_.insert(vp, f);
                    lastVPage_ = vp;
                    lastFrame_ = f;
                }
                continue;
            }
            pendingCycles_ += cfg_.tlbRefill;
            ++stats_.tlbRefills;
            tlb_.insert(vp, pte->frame);
            frame = pte->frame;
            lastVPage_ = vp;
            lastFrame_ = frame;
            co_await flushTime();
        }

        const std::uint64_t paddr = (frame << kPageShift) | va.offset();
        const std::uint32_t line_idx = geo_.lineIndex(paddr);
        // The merged state we hold going in: under MESI this can only
        // be Shared (owner-state hits commit in fastCore), but Owned
        // and Forward writes also reach here needing an upgrade.
        const Mesi held = lineState(paddr);
        if (held != Mesi::Invalid && write)
            ++stats_.upgradesLocal;
        else
            ++stats_.l2Misses;
        const Tick t0 = eq_.now();
        co_await node_.memAccess(*this, frame, line_idx, write, held);
        missLatency_.sample(eq_.now() - t0);
        // Loop: the fill (or a racing invalidation) is re-checked.
    }
    caller.resume();
}

Mesi
Proc::snoopLine(std::uint64_t line_paddr, bool invalidate, bool downgrade,
                bool bus_read)
{
    const Mesi s1 = l1_.lookup(line_paddr);
    const Mesi s2 = l2_.lookup(line_paddr);
    Mesi merged = strongerLine(s1, s2);
    if (merged == Mesi::Invalid)
        return merged;
    if (line_paddr == fastLineAddr_)
        clearFastLine();
    if (invalidate) {
        l1_.invalidate(line_paddr);
        l2_.invalidate(line_paddr);
    } else if (downgrade) {
        Mesi next = merged;
        if (bus_read)
            next = node_.protocol().on(merged, LineEvent::SnoopRead).next;
        else if (ownerClass(merged))
            next = Mesi::Shared;
        if (next != merged) {
            if (s1 != Mesi::Invalid)
                l1_.setState(line_paddr, next);
            if (s2 != Mesi::Invalid)
                l2_.setState(line_paddr, next);
        }
    }
    return merged;
}

void
Proc::invalidateFrame(FrameNum frame)
{
    l1_.invalidateFrame(frame);
    l2_.invalidateFrame(frame);
    if (lastFrame_ == frame) {
        lastVPage_ = ~0ULL;
        lastFrame_ = kInvalidFrame;
    }
    if ((fastLineAddr_ >> kPageShift) == frame)
        clearFastLine();
}

void
Proc::shootdown(VPage vp)
{
    tlb_.invalidate(vp);
    if (lastVPage_ == vp) {
        lastVPage_ = ~0ULL;
        lastFrame_ = kInvalidFrame;
    }
}

void
Proc::enqueueSyncOp(std::uint8_t kind, std::uint64_t id,
                    std::coroutine_handle<> h)
{
    prism_assert(shard_, "sync op logged outside sharded mode");
    shard_->syncOps.push_back(SyncOp{eq_.now(), actor_.rank,
                                     actor_.nextSeq++,
                                     static_cast<SyncOp::Kind>(kind), id,
                                     h, &eq_, &actor_});
    if (kind == SyncOp::MarkBegin || kind == SyncOp::MarkEnd)
        shard_->markHit = true;
}

CoTask
Proc::barrier(std::uint64_t id)
{
    if (refSink_)
        refSink_->sync(id_, RefOp::Barrier, id);
    co_await flushTime();
    if (shard_)
        co_await DeferredSyncAwaiter{*this, SyncOp::BarrierArrive, id};
    else
        co_await machine_.barriers().arrive(id);
}

CoTask
Proc::lock(std::uint64_t id)
{
    if (refSink_)
        refSink_->sync(id_, RefOp::Lock, id);
    co_await flushTime();
    if (shard_)
        co_await DeferredSyncAwaiter{*this, SyncOp::LockAcquire, id};
    else
        co_await machine_.locks().acquire(id);
}

CoTask
Proc::unlock(std::uint64_t id)
{
    if (refSink_)
        refSink_->sync(id_, RefOp::Unlock, id);
    co_await flushTime();
    if (shard_)
        enqueueSyncOp(SyncOp::LockRelease, id, {}); // no suspension
    else
        machine_.locks().release(id);
}

CoTask
Proc::fence()
{
    if (refSink_)
        refSink_->sync(id_, RefOp::Fence, 0);
    return flushTime();
}

CoTask
Proc::beginParallel()
{
    if (refSink_)
        refSink_->sync(id_, RefOp::BeginParallel, 0);
    co_await flushTime();
    if (shard_)
        co_await DeferredSyncAwaiter{*this, SyncOp::MarkBegin, 0};
    else
        machine_.markParallelBegin();
}

CoTask
Proc::endParallel()
{
    if (refSink_)
        refSink_->sync(id_, RefOp::EndParallel, 0);
    co_await flushTime();
    if (shard_)
        co_await DeferredSyncAwaiter{*this, SyncOp::MarkEnd, 0};
    else
        machine_.markParallelEnd();
}

void
Proc::registerMetrics(MetricRegistry &reg, std::int32_t node,
                      std::uint32_t lane)
{
    const std::string p = "p" + std::to_string(lane) + ".";
    auto counter = [&](const char *name, ScopedCounter &c,
                       const char *desc) {
        reg.bind(MetricLabels{"proc", node, p + name, "count"}, &c, desc);
    };
    counter("loads", stats_.loads, "");
    counter("stores", stats_.stores, "");
    counter("l1Hits", stats_.l1Hits, "");
    counter("l2Hits", stats_.l2Hits, "");
    counter("l2Misses", stats_.l2Misses, "");
    counter("upgradesLocal", stats_.upgradesLocal,
            "S->M upgrades resolved on the node bus");
    counter("tlbRefills", stats_.tlbRefills, "");
    counter("pageFaults", stats_.pageFaults, "");
    counter("computeCycles", stats_.computeCycles,
            "non-memory computation charged");
}

} // namespace prism
