/**
 * @file
 * Processor model.
 *
 * Each simulated processor executes its workload program as a
 * coroutine.  Non-memory work is charged with compute(); memory
 * accesses take the fast path (TLB + L1/L2 tag checks, pure local
 * accounting, no event-queue traffic) whenever they hit, and suspend
 * into the node's bus/coherence machinery on misses, upgrades, TLB
 * refills that fault, and synchronization.  A run-ahead quantum bounds
 * how far a processor's local clock may drift ahead of simulated time
 * between suspensions.
 */

#ifndef PRISM_CORE_PROC_HH
#define PRISM_CORE_PROC_HH

#include <coroutine>
#include <cstdint>

#include "core/config.hh"
#include "frontend/ref_sink.hh"
#include "mem/addr.hh"
#include "mem/cache.hh"
#include "mem/tlb.hh"
#include "obs/metrics.hh"
#include "sim/event_queue.hh"
#include "sim/shard.hh"
#include "sim/stats.hh"
#include "sim/task.hh"

namespace prism {

class Node;
class Machine;
class ProtocolOracle;
struct MachineShard;

/** Per-processor statistics, as labeled scoped handles. */
struct ProcStats {
    ScopedCounter loads;
    ScopedCounter stores;
    ScopedCounter l1Hits;
    ScopedCounter l2Hits;
    ScopedCounter l2Misses;
    ScopedCounter upgradesLocal; //!< S->M resolved on the node bus
    ScopedCounter tlbRefills;
    ScopedCounter pageFaults;
    ScopedCounter computeCycles;
};

/** One simulated processor. */
class Proc
{
  public:
    Proc(ProcId id, Node &node, Machine &machine,
         const MachineConfig &cfg, EventQueue &eq);

    ProcId id() const { return id_; }
    Node &node() { return node_; }
    const ProcStats &stats() const { return stats_; }

    /** Distribution of miss-handling latencies (cycles). */
    const Histogram &missLatency() const { return missLatency_; }
    Tlb &tlb() { return tlb_; }
    SetAssocCache &l1() { return l1_; }
    SetAssocCache &l2() { return l2_; }

    /** Local time not yet reflected in the global clock. */
    Cycles pendingCycles() const { return pendingCycles_; }

    /**
     * This processor's local clock: global simulated time plus the
     * locally accumulated cycles not yet drained into it.  Open-loop
     * workloads use this to pace request arrivals and to timestamp
     * per-request latencies.
     */
    Tick localNow() const;

    // --- Program interface -----------------------------------------------

    /** Charge @p cycles of non-memory computation. */
    void
    compute(Cycles cycles)
    {
        if (refSink_)
            refSink_->compute(id_, cycles);
        pendingCycles_ += cycles;
        stats_.computeCycles += cycles;
    }

    /** Awaitable load from @p va. */
    auto
    read(VAddr va)
    {
        if (refSink_)
            refSink_->access(id_, va, false);
        return AccessAwaiter{*this, va, false};
    }

    /** Awaitable store to @p va. */
    auto
    write(VAddr va)
    {
        if (refSink_)
            refSink_->access(id_, va, true);
        return AccessAwaiter{*this, va, true};
    }

    /** Awaitable barrier arrival (all processors participate). */
    CoTask barrier(std::uint64_t id);

    /** Awaitable lock acquire. */
    CoTask lock(std::uint64_t id);

    /** Awaitable lock release (flushes local time first). */
    CoTask unlock(std::uint64_t id);

    /**
     * Drain locally accumulated cycles into the global clock
     * (measurement fence for latency microbenchmarks).
     */
    CoTask fence();

    /** Mark the start of the measured parallel phase (call once). */
    CoTask beginParallel();

    /** Mark the end of the measured parallel phase (call once). */
    CoTask endParallel();

    // --- Node-side hooks ---------------------------------------------------

    /**
     * Snoop this processor's caches for a line (bus intervention).
     * With @p downgrade, an intra-node snoop read (@p bus_read) moves
     * the line per the node's protocol table (MOESI retains dirty
     * data as Owned, MESIF demotes Forward), while an inter-node
     * intervention forces owner-class states to Shared — the node is
     * relinquishing ownership to the home, so a surviving local
     * Owned/Exclusive copy would desynchronise the directory.
     * @return the state held (merged over L1/L2) before the action.
     */
    Mesi snoopLine(std::uint64_t line_paddr, bool invalidate,
                   bool downgrade, bool bus_read = false);

    /** Non-mutating merged L1/L2 state of a line (no LRU effects). */
    Mesi
    lineState(std::uint64_t line_paddr) const
    {
        return strongerLine(l1_.lookup(line_paddr),
                            l2_.lookup(line_paddr));
    }

    /** Invalidate all cached lines of @p frame (page tear-down). */
    void invalidateFrame(FrameNum frame);

    /** Local TLB shootdown for one page (kernel paging). */
    void shootdown(VPage vp);

    /** Fill a line after a miss completes (handles victims). */
    void fillLine(std::uint64_t line_paddr, Mesi state);

    /** Attach the protocol oracle (Machine construction). */
    void setOracle(ProtocolOracle *o) { oracle_ = o; }

    /**
     * Attach/detach a reference-stream recorder (Machine::setRefSink).
     * Null (the default) keeps the program-interface hooks to a single
     * predicted-not-taken branch.
     */
    void setRefSink(RefSink *s) { refSink_ = s; }

    /**
     * Sharded scheduler: bind this processor to its node's shard and
     * seed its synchronization rank (Machine construction).  Unbound
     * (the default), sync ops take the sequential awaitable path.
     */
    void
    setShard(MachineShard *shard, std::uint64_t initial_rank)
    {
        shard_ = shard;
        actor_.rank = initial_rank;
    }

    /**
     * Sharded scheduler: log a synchronization op (SyncOp::Kind
     * @p kind on object @p id) with the owning shard for deterministic
     * application by the coordinator at the next window barrier.
     * @p h is the suspended continuation (null for ops that do not
     * suspend, i.e. lock release).
     */
    void enqueueSyncOp(std::uint8_t kind, std::uint64_t id,
                       std::coroutine_handle<> h);

    /**
     * Bind this processor's counters into @p reg under component
     * "proc", node @p node, names "p<lane>.<counter>".
     */
    void registerMetrics(MetricRegistry &reg, std::int32_t node,
                         std::uint32_t lane);

  private:
    struct AccessAwaiter {
        Proc &p;
        VAddr va;
        bool write;

        bool await_ready() const { return p.tryFastAccess(va, write); }

        void
        await_suspend(std::coroutine_handle<> h)
        {
            p.slowAccess(va, write, h);
        }

        void await_resume() const {}
    };

    /**
     * Attempt the access without suspending.
     * @retval true if it completed (hit under current permissions).
     */
    bool tryFastAccess(VAddr va, bool write);

    /** Cache/TLB attempt without stats or issue-cycle accounting. */
    bool fastCore(VAddr va, bool write);

    /** Insert into the L1, folding dirty victims into the L2. */
    void insertL1(std::uint64_t line_paddr, Mesi state);

    /** Slow path: flush pending time, fault/miss, fill, resume caller. */
    FireAndForget slowAccess(VAddr va, bool write,
                             std::coroutine_handle<> caller);

    /** Flush pendingCycles_ into the global clock. */
    CoTask flushTime();

    ProcId id_;
    Node &node_;
    Machine &machine_;
    ProtocolOracle *oracle_ = nullptr;
    RefSink *refSink_ = nullptr;    //!< non-null only when recording
    MachineShard *shard_ = nullptr; //!< non-null only when sharded
    SyncActor actor_;               //!< rank/seq for deterministic sync
    const MachineConfig &cfg_;
    EventQueue &eq_;
    LineGeometry geo_;

    SetAssocCache l1_;
    SetAssocCache l2_;
    Tlb tlb_;

    // One-entry translation cache for consecutive same-page accesses.
    VPage lastVPage_ = ~0ULL;
    FrameNum lastFrame_ = kInvalidFrame;

    /**
     * Commit cache for consecutive hits on one L1 line: the line's
     * address and whether a store may commit to it (state Modified).
     * Only ever set immediately after an operation that made the line
     * MRU in its set, so a fast commit's skipped touch() is a no-op by
     * construction.  Cleared on every L1 mutation that could break
     * that invariant (fills, snoops, frame invalidations).
     */
    std::uint64_t fastLineAddr_ = ~0ULL;
    bool fastLineWritable_ = false;

    void
    clearFastLine()
    {
        fastLineAddr_ = ~0ULL;
        fastLineWritable_ = false;
    }

    Cycles pendingCycles_ = 0;
    ProcStats stats_;
    Histogram missLatency_{{25, 50, 100, 200, 400, 800, 1600, 3200}};
};

} // namespace prism

#endif // PRISM_CORE_PROC_HH
