/**
 * @file
 * One PRISM compute node: four processors, a split-transaction memory
 * bus, local memory, an independent OS kernel, and the coherence
 * controller sitting between the bus and the network interface.
 *
 * Node implements the intra-node snooping protocol (peer caches
 * supply and downgrade/invalidate each other over the bus) driven by
 * the configured line-protocol table (coherence/line_protocol:
 * MSI/MESI/MOESI/MESIF), and is the
 * ControllerHost through which the coherence controller intervenes in
 * processor caches and cooperates with the kernel for migration.
 */

#ifndef PRISM_CORE_NODE_HH
#define PRISM_CORE_NODE_HH

#include <cstdint>
#include <memory>
#include <unordered_set>
#include <vector>

#include "coherence/controller.hh"
#include "coherence/line_protocol.hh"
#include "core/config.hh"
#include "core/proc.hh"
#include "mem/bus.hh"
#include "mem/dram.hh"
#include "os/kernel.hh"
#include "sim/event_queue.hh"
#include "sim/task.hh"

namespace prism {

class Machine;

/** One compute node. */
class Node : public ControllerHost
{
  public:
    Node(NodeId id, const MachineConfig &cfg, EventQueue &eq,
         Machine &machine, IpcServer &ipc,
         std::function<NodeId(GPage)> static_home_of,
         std::function<void(Msg &&)> send);

    NodeId id() const { return id_; }
    Kernel &kernel() { return *kernel_; }
    CoherenceController &controller() { return *ctrl_; }
    MemoryBus &bus() { return bus_; }
    Dram &dram() { return dram_; }
    Proc &proc(std::uint32_t i) { return *procs_[i]; }
    std::uint32_t numProcs() const
    {
        return static_cast<std::uint32_t>(procs_.size());
    }

    /** Deliver a network message to this node. */
    void receive(Msg m);

    /** The line-protocol scheme this node's bus speaks. */
    const LineProtocol &protocol() const { return proto_; }

    /**
     * Service an access that missed in @p requester's caches (or
     * needs an upgrade).  Arbitrates the bus, snoops peer caches,
     * consults the coherence controller as needed, and fills the
     * requester's caches before returning.
     *
     * @param requester_state  merged L1/L2 state the requester held
     *        going in (Shared/Owned/Forward on write upgrades,
     *        Invalid on misses)
     */
    CoTask memAccess(Proc &requester, FrameNum frame,
                     std::uint32_t line_idx, bool write,
                     Mesi requester_state);

    // --- ControllerHost ---------------------------------------------------

    InterventionResult intervene(FrameNum frame, std::uint32_t line_idx,
                                 bool invalidate, Tick at) override;
    bool anyBusPending(FrameNum frame) const override;
    bool anyCachedCopy(FrameNum frame) const override;
    bool lineCached(FrameNum frame, std::uint32_t line_idx) const override;
    FrameNum migrationAllocFrame(GPage gp) override;
    void migrationFreeFrame(FrameNum frame, GPage gp) override;
    SharerSet homeKernelClients(GPage gp) override;
    void homeKernelAdopt(GPage gp, const SharerSet &clients) override;
    void homeKernelDepart(GPage gp) override;

  private:
    DelayAwaiter delay(Cycles c) { return DelayAwaiter(eq_, c); }
    DelayAwaiter until(Tick t);

    NodeId id_;
    const MachineConfig &cfg_;
    EventQueue &eq_;
    LineGeometry geo_;
    const LineProtocol &proto_;
    MemoryBus bus_;
    Dram dram_;
    std::unique_ptr<Kernel> kernel_;
    std::unique_ptr<CoherenceController> ctrl_;
    std::vector<std::unique_ptr<Proc>> procs_;

    /**
     * Bus-level MSHR: lines with an outstanding node transaction,
     * from address phase through fill.  A second miss to the same
     * line is retried (split-transaction bus retry semantics), which
     * keeps miss handling atomic with respect to local snoops.
     * busPendingByFrame_ mirrors it at frame granularity so the
     * kernel/controller flush loops' anyBusPending() probe is O(1)
     * instead of a scan over every in-flight line.
     */
    std::unordered_set<std::uint64_t> busPending_;
    std::unordered_map<FrameNum, std::uint32_t> busPendingByFrame_;
};

} // namespace prism

#endif // PRISM_CORE_NODE_HH
