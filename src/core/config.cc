#include "core/config.hh"

#include <cstring>

namespace prism {

const char *
policyName(PolicyKind k)
{
    switch (k) {
      case PolicyKind::Scoma: return "SCOMA";
      case PolicyKind::LaNuma: return "LANUMA";
      case PolicyKind::Scoma70: return "SCOMA-70";
      case PolicyKind::DynFcfs: return "Dyn-FCFS";
      case PolicyKind::DynUtil: return "Dyn-Util";
      case PolicyKind::DynLru: return "Dyn-LRU";
      case PolicyKind::DynBoth: return "Dyn-Both";
    }
    return "?";
}

const char *
protocolName(ProtocolScheme p)
{
    switch (p) {
      case ProtocolScheme::Msi: return "msi";
      case ProtocolScheme::Mesi: return "mesi";
      case ProtocolScheme::Moesi: return "moesi";
      case ProtocolScheme::Mesif: return "mesif";
    }
    return "?";
}

bool
protocolFromString(const char *s, ProtocolScheme *out)
{
    if (!s || !out)
        return false;
    for (ProtocolScheme p :
         {ProtocolScheme::Msi, ProtocolScheme::Mesi, ProtocolScheme::Moesi,
          ProtocolScheme::Mesif}) {
        if (!std::strcmp(s, protocolName(p))) {
            *out = p;
            return true;
        }
    }
    return false;
}

const char *
oracleModeName(OracleMode m)
{
    switch (m) {
      case OracleMode::Off: return "off";
      case OracleMode::Quiescent: return "quiescent";
      case OracleMode::Continuous: return "continuous";
    }
    return "?";
}

bool
oracleModeFromString(const char *s, OracleMode *out)
{
    if (!s || !out)
        return false;
    if (!std::strcmp(s, "off")) {
        *out = OracleMode::Off;
        return true;
    }
    if (!std::strcmp(s, "quiescent")) {
        *out = OracleMode::Quiescent;
        return true;
    }
    if (!std::strcmp(s, "continuous")) {
        *out = OracleMode::Continuous;
        return true;
    }
    return false;
}

} // namespace prism
