#include "core/config.hh"

#include <cstdio>
#include <cstring>

#include "sim/logging.hh"

namespace prism {

const char *
policyName(PolicyKind k)
{
    switch (k) {
      case PolicyKind::Scoma: return "SCOMA";
      case PolicyKind::LaNuma: return "LANUMA";
      case PolicyKind::Scoma70: return "SCOMA-70";
      case PolicyKind::DynFcfs: return "Dyn-FCFS";
      case PolicyKind::DynUtil: return "Dyn-Util";
      case PolicyKind::DynLru: return "Dyn-LRU";
      case PolicyKind::DynBoth: return "Dyn-Both";
    }
    return "?";
}

const char *
protocolName(ProtocolScheme p)
{
    switch (p) {
      case ProtocolScheme::Msi: return "msi";
      case ProtocolScheme::Mesi: return "mesi";
      case ProtocolScheme::Moesi: return "moesi";
      case ProtocolScheme::Mesif: return "mesif";
    }
    return "?";
}

bool
protocolFromString(const char *s, ProtocolScheme *out)
{
    if (!s || !out)
        return false;
    for (ProtocolScheme p :
         {ProtocolScheme::Msi, ProtocolScheme::Mesi, ProtocolScheme::Moesi,
          ProtocolScheme::Mesif}) {
        if (!std::strcmp(s, protocolName(p))) {
            *out = p;
            return true;
        }
    }
    return false;
}

const char *
oracleModeName(OracleMode m)
{
    switch (m) {
      case OracleMode::Off: return "off";
      case OracleMode::Quiescent: return "quiescent";
      case OracleMode::Continuous: return "continuous";
    }
    return "?";
}

bool
oracleModeFromString(const char *s, OracleMode *out)
{
    if (!s || !out)
        return false;
    if (!std::strcmp(s, "off")) {
        *out = OracleMode::Off;
        return true;
    }
    if (!std::strcmp(s, "quiescent")) {
        *out = OracleMode::Quiescent;
        return true;
    }
    if (!std::strcmp(s, "continuous")) {
        *out = OracleMode::Continuous;
        return true;
    }
    return false;
}

void
validateConfig(const MachineConfig &cfg)
{
    if (cfg.numNodes < 1 || cfg.numNodes > kMaxNodes) {
        fatal("numNodes=%u out of range: the machine supports 1..%u "
              "nodes (kMaxNodes, core/config.hh)",
              cfg.numNodes, kMaxNodes);
    }
    if (cfg.procsPerNode < 1) {
        fatal("procsPerNode must be >= 1 (got %u)", cfg.procsPerNode);
    }
    if (cfg.numProcs() > kMaxProcs) {
        fatal("numNodes*procsPerNode=%u exceeds the %u-processor "
              "ceiling (kMaxProcs, core/config.hh)",
              cfg.numProcs(), kMaxProcs);
    }
    if (cfg.dirCacheEntries == 0 ||
        (cfg.dirCacheEntries & (cfg.dirCacheEntries - 1)) != 0) {
        fatal("dirCacheEntries must be a nonzero power of two (got %u)",
              cfg.dirCacheEntries);
    }
    if (cfg.lineBytes == 0 || (cfg.lineBytes & (cfg.lineBytes - 1))) {
        fatal("lineBytes must be a nonzero power of two (got %u)",
              cfg.lineBytes);
    }
}

bool
machineFromString(const char *s, MachineConfig *cfg)
{
    if (!s || !cfg)
        return false;
    if (!std::strcmp(s, "paper")) {
        cfg->numNodes = 8;
        cfg->procsPerNode = 4;
        return true;
    }
    unsigned nodes = 0, procs = 0;
    char trail = 0;
    if (std::sscanf(s, "%ux%u%c", &nodes, &procs, &trail) != 2 ||
        nodes == 0 || procs == 0) {
        return false;
    }
    cfg->numNodes = nodes;
    cfg->procsPerNode = procs;
    return true;
}

std::vector<MachineConfig>
machinePresets(const MachineConfig &base)
{
    std::vector<MachineConfig> out;
    for (const char *shape : {"8x4", "16x4", "32x8", "128x8"}) {
        MachineConfig c = base;
        machineFromString(shape, &c);
        out.push_back(c);
    }
    return out;
}

} // namespace prism
