#include "core/config.hh"

namespace prism {

const char *
policyName(PolicyKind k)
{
    switch (k) {
      case PolicyKind::Scoma: return "SCOMA";
      case PolicyKind::LaNuma: return "LANUMA";
      case PolicyKind::Scoma70: return "SCOMA-70";
      case PolicyKind::DynFcfs: return "Dyn-FCFS";
      case PolicyKind::DynUtil: return "Dyn-Util";
      case PolicyKind::DynLru: return "Dyn-LRU";
      case PolicyKind::DynBoth: return "Dyn-Both";
    }
    return "?";
}

} // namespace prism
