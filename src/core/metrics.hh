/**
 * @file
 * Aggregated metrics of one simulation run, in the units the paper's
 * tables report.
 */

#ifndef PRISM_CORE_METRICS_HH
#define PRISM_CORE_METRICS_HH

#include <cstdint>
#include <vector>

#include "sim/types.hh"

namespace prism {

/** Results of one workload run. */
struct RunMetrics {
    /** Execution time of the measured parallel phase (cycles). */
    Tick execCycles = 0;
    /** Wall simulated time of the whole program. */
    Tick totalCycles = 0;

    /** Remote misses during the parallel phase (Tables 4/5). */
    std::uint64_t remoteMisses = 0;
    /** Client page-outs during the parallel phase (Tables 4/5). */
    std::uint64_t clientPageOuts = 0;
    /** Permission-only upgrade transactions in the parallel phase. */
    std::uint64_t upgrades = 0;
    /** Invalidations sent in the parallel phase. */
    std::uint64_t invalidations = 0;
    /** Network messages in the parallel phase. */
    std::uint64_t networkMessages = 0;
    /** Page faults in the parallel phase. */
    std::uint64_t pageFaults = 0;

    /** Real page frames allocated, whole run (Table 3), peak. */
    std::uint64_t framesAllocated = 0;
    /** Average frame utilization, whole run (Table 3). */
    double avgUtilization = 0.0;
    /** Peak client S-COMA frames per node (SCOMA-70 calibration). */
    std::vector<std::uint64_t> clientScomaPeakPerNode;

    /** Loads + stores executed (reference count). */
    std::uint64_t references = 0;
    /** Misdirected-request forwards (migration study). */
    std::uint64_t forwards = 0;
    /** Home migrations completed (migration study). */
    std::uint64_t migrations = 0;
};

} // namespace prism

#endif // PRISM_CORE_METRICS_HH
