#include "core/machine.hh"

#include <cstdlib>
#include <string>

#include "check/oracle.hh"
#include "obs/trace_sink.hh"

namespace prism {

Machine::Machine(const MachineConfig &cfg) : cfg_(cfg)
{
    prism_assert(cfg_.numNodes >= 1 && cfg_.numNodes <= 64,
                 "node count must be in [1, 64]");
    if (const char *env = std::getenv("PRISM_ORACLE")) {
        OracleMode om;
        if (!oracleModeFromString(env, &om)) {
            fatal("unknown PRISM_ORACLE '%s' (valid: off quiescent "
                  "continuous)", env);
        }
        cfg_.oracleMode = om;
    }
    Network::Params np;
    np.oneWayLatency = cfg_.netLatency;
    np.controlOccupancy = cfg_.netCtrlOccupancy;
    np.dataOccupancy = cfg_.netDataOccupancy;
    np.pageOccupancy = cfg_.netPageOccupancy;
    np.jitterMax = cfg_.netJitterMax;
    np.jitterSeed = cfg_.jitterSeed;
    net_ = std::make_unique<Network>(eq_, cfg_.numNodes, np);

    locks_ = std::make_unique<LockManager>(eq_, cfg_.lockAcquireCycles,
                                           cfg_.lockHandoffCycles);
    barriers_ = std::make_unique<BarrierManager>(eq_, cfg_.numProcs(),
                                                 cfg_.barrierCycles);
    policy_ = makePolicy(cfg_.policy);

    auto static_home = [this](GPage gp) { return staticHomeOf(gp); };
    auto sender = [this](Msg &&m) { route(std::move(m)); };

    for (NodeId n = 0; n < cfg_.numNodes; ++n) {
        nodes_.push_back(std::make_unique<Node>(n, cfg_, eq_, *this, ipc_,
                                                static_home, sender));
        nodes_.back()->kernel().setPolicy(policy_.get());
    }

    if (cfg_.oracleMode != OracleMode::Off) {
        oracle_ = std::make_unique<ProtocolOracle>(*this, cfg_.oracleMode,
                                                   cfg_.oracleFatal);
        for (auto &node : nodes_) {
            node->controller().setOracle(oracle_.get());
            for (std::uint32_t p = 0; p < node->numProcs(); ++p)
                node->proc(p).setOracle(oracle_.get());
        }
    }

    for (NodeId n = 0; n < cfg_.numNodes; ++n) {
        nodes_[n]->controller().registerMetrics(registry_);
        nodes_[n]->kernel().registerMetrics(registry_);
        for (std::uint32_t p = 0; p < nodes_[n]->numProcs(); ++p) {
            nodes_[n]->proc(p).registerMetrics(
                registry_, static_cast<std::int32_t>(n), p);
        }
    }
    net_->registerMetrics(registry_);
    registry_.seal();

    // Optional Chrome tracing: the first machine in the process claims
    // the PRISM_TRACE sink (parallel sweep workers run untraced).
    trace_ = TraceSink::claimFromEnv();
    if (trace_) {
        for (NodeId n = 0; n < cfg_.numNodes; ++n) {
            trace_->processName(static_cast<std::int32_t>(n),
                                "node" + std::to_string(n));
            nodes_[n]->controller().setTraceSink(trace_.get());
            nodes_[n]->kernel().setTraceSink(trace_.get());
        }
    }
}

Machine::~Machine()
{
    if (trace_) {
        trace_->write();
        inform("PRISM_TRACE: wrote %zu events to %s",
               trace_->eventCount(), trace_->path().c_str());
    }
}

void
Machine::route(Msg &&m)
{
    prism_assert(m.dst < nodes_.size(), "message to unknown node");
    // Box the message in a pooled heap slot; the delivery callback
    // returns the box to the pool, so steady-state routing allocates
    // nothing (previously: one make_shared<Msg> plus one std::function
    // heap capture per message).
    Msg *boxed;
    if (msgPool_.empty()) {
        boxed = new Msg(std::move(m));
    } else {
        boxed = msgPool_.back().release();
        msgPool_.pop_back();
        *boxed = std::move(m);
    }
    // The box travels inside the callback as a unique_ptr so that a
    // queue destroyed with deliveries still pending frees it.
    auto deliver = [this, owned = std::unique_ptr<Msg>(boxed)]() mutable {
        Msg &msg = *owned;
        nodes_[msg.dst]->receive(msg);
        msg.payload.reset(); // drop bulk payloads promptly
        msgPool_.push_back(std::move(owned));
    };
    static_assert(sizeof(deliver) <= EventQueue::Callback::kCapacity,
                  "route() delivery capture outgrew the event-callback "
                  "inline buffer; bump kEventCallbackBytes");
    if (oracle_) {
        oracle_->traceMsg(eq_.now(), boxed->src, boxed->dst,
                          static_cast<std::uint16_t>(boxed->type),
                          boxed->gpage, boxed->lineIdx);
    }
    // Always-on last-N message history: a few plain stores per message.
    msgRing_.push(TraceEvent{eq_.now(), boxed->gpage, boxed->lineIdx,
                             static_cast<std::uint16_t>(boxed->type),
                             static_cast<std::uint8_t>(boxed->src),
                             static_cast<std::uint8_t>(boxed->dst)});
    if (trace_) {
        trace_->instant(msgTypeName(boxed->type), "msg",
                        static_cast<std::int32_t>(boxed->dst),
                        static_cast<std::int32_t>(boxed->lineIdx),
                        eq_.now());
    }
    net_->send(boxed->src, boxed->dst, boxed->sizeClass(),
               std::move(deliver));
}

std::uint64_t
Machine::shmget(std::uint64_t key, std::uint64_t bytes)
{
    return ipc_.shmget(key, bytes);
}

void
Machine::shmatAll(std::uint64_t vsid, std::uint64_t gsid)
{
    for (auto &n : nodes_)
        n->kernel().bindSegment(vsid, gsid);
}

void
Machine::run(const std::function<CoTask(Proc &)> &make)
{
    const std::uint32_t n = numProcs();
    std::vector<CoTask> tasks;
    tasks.reserve(n);
    for (ProcId p = 0; p < n; ++p)
        tasks.push_back(make(proc(p)));

    std::uint32_t done = 0;
    for (auto &t : tasks) {
        t.start([this, &done] {
            ++done;
            lastProcDone_ = eq_.now();
        });
    }
    const bool finished =
        eq_.runWhile([&done, n] { return done == n; });
    prism_assert(finished,
                 "event queue drained with %u of %u programs unfinished",
                 n - done, n);
    drain();
    if (oracle_)
        oracle_->sweepQuiescent();
}

void
Machine::drain()
{
    eq_.runAll();
}

Machine::Snapshot
Machine::snapshot() const
{
    Snapshot s;
    s.remoteMisses = registry_.sum("ctrl", "remoteMisses");
    s.upgrades = registry_.sum("ctrl", "upgrades");
    s.invalidations = registry_.sum("ctrl", "invalsSent");
    s.clientPageOuts = registry_.sum("kernel", "clientPageOuts");
    s.pageFaults = registry_.sum("kernel", "faults");
    s.networkMessages = registry_.value("net", kMachineWide, "messages");
    return s;
}

void
Machine::markParallelBegin()
{
    prism_assert(!parallelBeginSet_, "parallel phase begun twice");
    parallelBeginSet_ = true;
    parallelBegin_ = eq_.now();
    beginSnap_ = snapshot();
}

void
Machine::markParallelEnd()
{
    prism_assert(!parallelEndSet_, "parallel phase ended twice");
    parallelEndSet_ = true;
    parallelEnd_ = eq_.now();
    endSnap_ = snapshot();
}

RunMetrics
Machine::metrics()
{
    RunMetrics m;
    const Tick begin = parallelBeginSet_ ? parallelBegin_ : 0;
    const Tick end = parallelEndSet_ ? parallelEnd_ : lastProcDone_;
    const Snapshot &b = beginSnap_;
    const Snapshot e = parallelEndSet_ ? endSnap_ : snapshot();

    m.execCycles = end > begin ? end - begin : 0;
    m.totalCycles = eq_.now();
    m.remoteMisses = e.remoteMisses - b.remoteMisses;
    m.clientPageOuts = e.clientPageOuts - b.clientPageOuts;
    m.upgrades = e.upgrades - b.upgrades;
    m.invalidations = e.invalidations - b.invalidations;
    m.networkMessages = e.networkMessages - b.networkMessages;
    m.pageFaults = e.pageFaults - b.pageFaults;

    // Everything below is a label query against the registry — no
    // field is hand-copied from module structs.
    m.migrations = registry_.sum("ctrl", "migrationsOut");
    m.forwards = registry_.sum("ctrl", "forwards");
    m.references = registry_.sumLeaf("proc", "loads") +
                   registry_.sumLeaf("proc", "stores");

    registry_.sampleGauges();
    m.clientScomaPeakPerNode.assign(numNodes(), 0);
    std::uint64_t util_frames = 0;
    double util_weighted = 0.0;
    std::vector<double> node_util(numNodes(), 0.0);
    std::vector<std::uint64_t> node_frames(numNodes(), 0);
    for (const auto &g : registry_.gauges()) {
        if (g.labels.component != "kernel" || g.labels.node < 0)
            continue;
        const auto n = static_cast<std::size_t>(g.labels.node);
        if (g.labels.name == "realFramesPeak") {
            m.framesAllocated += static_cast<std::uint64_t>(g.value);
        } else if (g.labels.name == "clientScomaPeak") {
            m.clientScomaPeakPerNode[n] =
                static_cast<std::uint64_t>(g.value);
        } else if (g.labels.name == "realFramesCumulative") {
            node_frames[n] = static_cast<std::uint64_t>(g.value);
        } else if (g.labels.name == "avgUtilization") {
            node_util[n] = g.value;
        }
    }
    for (std::size_t n = 0; n < node_frames.size(); ++n) {
        util_frames += node_frames[n];
        util_weighted +=
            node_util[n] * static_cast<double>(node_frames[n]);
    }
    m.avgUtilization =
        util_frames ? util_weighted / static_cast<double>(util_frames)
                    : 0.0;
    return m;
}

} // namespace prism
