#include "core/machine.hh"

#include <cstdlib>
#include <string>

#include "check/oracle.hh"

namespace prism {

Machine::Machine(const MachineConfig &cfg) : cfg_(cfg)
{
    prism_assert(cfg_.numNodes >= 1 && cfg_.numNodes <= 64,
                 "node count must be in [1, 64]");
    if (const char *env = std::getenv("PRISM_ORACLE")) {
        OracleMode om;
        if (!oracleModeFromString(env, &om)) {
            fatal("unknown PRISM_ORACLE '%s' (valid: off quiescent "
                  "continuous)", env);
        }
        cfg_.oracleMode = om;
    }
    Network::Params np;
    np.oneWayLatency = cfg_.netLatency;
    np.controlOccupancy = cfg_.netCtrlOccupancy;
    np.dataOccupancy = cfg_.netDataOccupancy;
    np.pageOccupancy = cfg_.netPageOccupancy;
    np.jitterMax = cfg_.netJitterMax;
    np.jitterSeed = cfg_.jitterSeed;
    net_ = std::make_unique<Network>(eq_, cfg_.numNodes, np);

    locks_ = std::make_unique<LockManager>(eq_, cfg_.lockAcquireCycles,
                                           cfg_.lockHandoffCycles);
    barriers_ = std::make_unique<BarrierManager>(eq_, cfg_.numProcs(),
                                                 cfg_.barrierCycles);
    policy_ = makePolicy(cfg_.policy);

    auto static_home = [this](GPage gp) { return staticHomeOf(gp); };
    auto sender = [this](Msg &&m) { route(std::move(m)); };

    for (NodeId n = 0; n < cfg_.numNodes; ++n) {
        nodes_.push_back(std::make_unique<Node>(n, cfg_, eq_, *this, ipc_,
                                                static_home, sender));
        nodes_.back()->kernel().setPolicy(policy_.get());
    }

    if (cfg_.oracleMode != OracleMode::Off) {
        oracle_ = std::make_unique<ProtocolOracle>(*this, cfg_.oracleMode,
                                                   cfg_.oracleFatal);
        for (auto &node : nodes_) {
            node->controller().setOracle(oracle_.get());
            for (std::uint32_t p = 0; p < node->numProcs(); ++p)
                node->proc(p).setOracle(oracle_.get());
        }
    }

    for (NodeId n = 0; n < cfg_.numNodes; ++n) {
        const std::string prefix = "node" + std::to_string(n);
        nodes_[n]->controller().registerStats(registry_, prefix + ".ctrl");
        nodes_[n]->kernel().registerStats(registry_, prefix + ".kernel");
    }
}

Machine::~Machine() = default;

void
Machine::route(Msg &&m)
{
    prism_assert(m.dst < nodes_.size(), "message to unknown node");
    // Box the message in a pooled heap slot; the delivery callback
    // returns the box to the pool, so steady-state routing allocates
    // nothing (previously: one make_shared<Msg> plus one std::function
    // heap capture per message).
    Msg *boxed;
    if (msgPool_.empty()) {
        boxed = new Msg(std::move(m));
    } else {
        boxed = msgPool_.back().release();
        msgPool_.pop_back();
        *boxed = std::move(m);
    }
    // The box travels inside the callback as a unique_ptr so that a
    // queue destroyed with deliveries still pending frees it.
    auto deliver = [this, owned = std::unique_ptr<Msg>(boxed)]() mutable {
        Msg &msg = *owned;
        nodes_[msg.dst]->receive(msg);
        msg.payload.reset(); // drop bulk payloads promptly
        msgPool_.push_back(std::move(owned));
    };
    static_assert(sizeof(deliver) <= EventQueue::Callback::kCapacity,
                  "route() delivery capture outgrew the event-callback "
                  "inline buffer; bump kEventCallbackBytes");
    if (oracle_) {
        oracle_->traceMsg(eq_.now(), boxed->src, boxed->dst,
                          static_cast<std::uint16_t>(boxed->type),
                          boxed->gpage, boxed->lineIdx);
    }
    net_->send(boxed->src, boxed->dst, boxed->sizeClass(),
               std::move(deliver));
}

std::uint64_t
Machine::shmget(std::uint64_t key, std::uint64_t bytes)
{
    return ipc_.shmget(key, bytes);
}

void
Machine::shmatAll(std::uint64_t vsid, std::uint64_t gsid)
{
    for (auto &n : nodes_)
        n->kernel().bindSegment(vsid, gsid);
}

void
Machine::run(const std::function<CoTask(Proc &)> &make)
{
    const std::uint32_t n = numProcs();
    std::vector<CoTask> tasks;
    tasks.reserve(n);
    for (ProcId p = 0; p < n; ++p)
        tasks.push_back(make(proc(p)));

    std::uint32_t done = 0;
    for (auto &t : tasks) {
        t.start([this, &done] {
            ++done;
            lastProcDone_ = eq_.now();
        });
    }
    const bool finished =
        eq_.runWhile([&done, n] { return done == n; });
    prism_assert(finished,
                 "event queue drained with %u of %u programs unfinished",
                 n - done, n);
    drain();
    if (oracle_)
        oracle_->sweepQuiescent();
}

void
Machine::drain()
{
    eq_.runAll();
}

Machine::Snapshot
Machine::snapshot() const
{
    Snapshot s;
    for (const auto &n : nodes_) {
        const ControllerStats &cs = n->controller().stats();
        s.remoteMisses += cs.remoteMisses;
        s.upgrades += cs.upgrades;
        s.invalidations += cs.invalsSent;
        const KernelStats &ks = n->kernel().stats();
        s.clientPageOuts += ks.clientPageOuts;
        s.pageFaults += ks.faults;
    }
    s.networkMessages = net_->messages();
    return s;
}

void
Machine::markParallelBegin()
{
    prism_assert(!parallelBeginSet_, "parallel phase begun twice");
    parallelBeginSet_ = true;
    parallelBegin_ = eq_.now();
    beginSnap_ = snapshot();
}

void
Machine::markParallelEnd()
{
    prism_assert(!parallelEndSet_, "parallel phase ended twice");
    parallelEndSet_ = true;
    parallelEnd_ = eq_.now();
    endSnap_ = snapshot();
}

RunMetrics
Machine::metrics() const
{
    RunMetrics m;
    const Tick begin = parallelBeginSet_ ? parallelBegin_ : 0;
    const Tick end = parallelEndSet_ ? parallelEnd_ : lastProcDone_;
    const Snapshot &b = beginSnap_;
    const Snapshot e = parallelEndSet_ ? endSnap_ : snapshot();

    m.execCycles = end > begin ? end - begin : 0;
    m.totalCycles = eq_.now();
    m.remoteMisses = e.remoteMisses - b.remoteMisses;
    m.clientPageOuts = e.clientPageOuts - b.clientPageOuts;
    m.upgrades = e.upgrades - b.upgrades;
    m.invalidations = e.invalidations - b.invalidations;
    m.networkMessages = e.networkMessages - b.networkMessages;
    m.pageFaults = e.pageFaults - b.pageFaults;

    std::uint64_t util_frames = 0;
    double util_weighted = 0.0;
    for (const auto &n : nodes_) {
        const Kernel &k = const_cast<Node &>(*n).kernel();
        m.framesAllocated += k.realFramesPeak();
        m.clientScomaPeakPerNode.push_back(k.clientScomaPeak());
        const std::uint64_t f = k.realFramesCumulative();
        util_frames += f;
        util_weighted += k.averageUtilization() * static_cast<double>(f);
        m.migrations += n->controller().stats().migrationsOut;
        m.forwards += n->controller().stats().forwards;
        for (std::uint32_t p = 0; p < n->numProcs(); ++p) {
            const ProcStats &ps =
                const_cast<Node &>(*n).proc(p).stats();
            m.references += ps.loads + ps.stores;
        }
    }
    m.avgUtilization =
        util_frames ? util_weighted / static_cast<double>(util_frames)
                    : 0.0;
    return m;
}

} // namespace prism
