#include "core/machine.hh"

#include <algorithm>
#include <cstdlib>
#include <string>

#include "check/oracle.hh"
#include "core/env.hh"
#include "frontend/ref_sink.hh"
#include "obs/trace_sink.hh"

namespace prism {

Machine::Machine(const MachineConfig &cfg) : cfg_(cfg)
{
    validateConfig(cfg_);
    if (const char *env = resolveEnv("PRISM_ORACLE")) {
        OracleMode om;
        if (!oracleModeFromString(env, &om)) {
            fatal("unknown PRISM_ORACLE '%s' (valid: off quiescent "
                  "continuous)", env);
        }
        cfg_.oracleMode = om;
    }
    if (const char *env = resolveEnv("PRISM_PROTOCOL")) {
        ProtocolScheme ps;
        if (!protocolFromString(env, &ps)) {
            fatal("unknown PRISM_PROTOCOL '%s' (valid: msi mesi moesi "
                  "mesif)", env);
        }
        cfg_.protocol = ps;
    }

    // Event-loop shard count (sim/shard.hh).  Features that observe or
    // perturb the global event interleaving — the protocol oracle's
    // continuous checks, delivery jitter, Chrome tracing — are defined
    // against the sequential schedule, so they force jobsIntra = 1.
    std::uint32_t jobs = cfg_.jobsIntra ? cfg_.jobsIntra : 1;
    if (jobs > cfg_.numNodes)
        jobs = cfg_.numNodes;
    if (jobs > 1) {
        const char *seq_only = nullptr;
        if (cfg_.oracleMode != OracleMode::Off)
            seq_only = "the protocol oracle";
        else if (cfg_.netJitterMax > 0)
            seq_only = "network delivery jitter";
        else if (resolveEnv("PRISM_TRACE"))
            seq_only = "PRISM_TRACE";
        if (seq_only) {
            inform("jobsIntra=%u ignored: %s requires the sequential "
                   "scheduler", jobs, seq_only);
            jobs = 1;
        }
    }
    for (std::uint32_t s = 0; s < jobs; ++s)
        shards_.push_back(std::make_unique<MachineShard>());
    shardOfNode_.resize(cfg_.numNodes);
    for (NodeId n = 0; n < cfg_.numNodes; ++n) {
        shardOfNode_[n] = static_cast<std::uint32_t>(
            static_cast<std::uint64_t>(n) * jobs / cfg_.numNodes);
    }
    const Cycles min_occ =
        std::min({cfg_.netCtrlOccupancy, cfg_.netDataOccupancy,
                  cfg_.netPageOccupancy});
    lookahead_ = conservativeLookahead(cfg_.netLatency, min_occ,
                                       cfg_.lockAcquireCycles,
                                       cfg_.lockHandoffCycles,
                                       cfg_.barrierCycles);

    EventQueue &eq0 = shards_[0]->eq;
    Network::Params np;
    np.oneWayLatency = cfg_.netLatency;
    np.controlOccupancy = cfg_.netCtrlOccupancy;
    np.dataOccupancy = cfg_.netDataOccupancy;
    np.pageOccupancy = cfg_.netPageOccupancy;
    np.jitterMax = cfg_.netJitterMax;
    np.jitterSeed = cfg_.jitterSeed;
    net_ = std::make_unique<Network>(eq0, cfg_.numNodes, np);

    locks_ = std::make_unique<LockManager>(eq0, cfg_.lockAcquireCycles,
                                           cfg_.lockHandoffCycles);
    barriers_ = std::make_unique<BarrierManager>(eq0, cfg_.numProcs(),
                                                 cfg_.barrierCycles);
    policy_ = makePolicy(cfg_.policy);

    auto static_home = [this](GPage gp) { return staticHomeOf(gp); };
    auto sender = [this](Msg &&m) { route(std::move(m)); };

    for (NodeId n = 0; n < cfg_.numNodes; ++n) {
        nodes_.push_back(std::make_unique<Node>(
            n, cfg_, shards_[shardOfNode_[n]]->eq, *this, ipc_,
            static_home, sender));
        nodes_.back()->kernel().setPolicy(policy_.get());
    }

    if (cfg_.oracleMode != OracleMode::Off) {
        oracle_ = std::make_unique<ProtocolOracle>(*this, cfg_.oracleMode,
                                                   cfg_.oracleFatal);
        for (auto &node : nodes_) {
            node->controller().setOracle(oracle_.get());
            for (std::uint32_t p = 0; p < node->numProcs(); ++p)
                node->proc(p).setOracle(oracle_.get());
        }
    }

    for (NodeId n = 0; n < cfg_.numNodes; ++n) {
        nodes_[n]->controller().registerMetrics(registry_);
        nodes_[n]->kernel().registerMetrics(registry_);
        for (std::uint32_t p = 0; p < nodes_[n]->numProcs(); ++p) {
            nodes_[n]->proc(p).registerMetrics(
                registry_, static_cast<std::int32_t>(n), p);
        }
    }
    net_->registerMetrics(registry_);
    registry_.seal();

    // Optional Chrome tracing: the first machine in the process claims
    // the PRISM_TRACE sink (parallel sweep workers run untraced).
    trace_ = TraceSink::claimFromEnv();
    if (trace_) {
        for (NodeId n = 0; n < cfg_.numNodes; ++n) {
            trace_->processName(static_cast<std::int32_t>(n),
                                "node" + std::to_string(n));
            nodes_[n]->controller().setTraceSink(trace_.get());
            nodes_[n]->kernel().setTraceSink(trace_.get());
        }
    }

    if (jobs > 1) {
        std::vector<EventQueue *> queues;
        queues.reserve(jobs);
        for (auto &sh : shards_)
            queues.push_back(&sh->eq);
        net_->configureSharding(std::move(queues), shardOfNode_);
        for (std::uint32_t s = 0; s < jobs; ++s) {
            shards_[s]->eq.setSnapshotLog(&shards_[s]->snapLog);
#ifndef NDEBUG
            shards_[s]->eq.setOwnerShard(s);
#endif
        }
        // Initial sync ranks mirror the sequential scheduler's start
        // order (programs are started in global processor order), and
        // grants hand out fresh ranks from numProcs() up.
        for (ProcId p = 0; p < numProcs(); ++p) {
            proc(p).setShard(
                shards_[shardOfNode_[p / cfg_.procsPerNode]].get(), p);
        }
        nextSyncRank_ = numProcs();
        workers_ = std::make_unique<ShardWorkers>(jobs);
    }
}

Machine::~Machine()
{
    if (trace_) {
        trace_->write();
        inform("PRISM_TRACE: wrote %zu events to %s",
               trace_->eventCount(), trace_->path().c_str());
    }
}

void
Machine::route(Msg &&m)
{
    prism_assert(m.dst < nodes_.size(), "message to unknown node");
    // route() always runs on the *source* node's shard (Kernel::send
    // and CoherenceController::send stamp src = self), so the source
    // shard's pool, ring and clock are the right ones.  Boxes are
    // freed by the destination shard and so migrate between pools;
    // totals are conserved and each pool is only ever touched by its
    // owning shard's thread.
    MachineShard &ssh = *shards_[shardOfNode_[m.src]];
    Msg *boxed;
    if (ssh.msgPool.empty()) {
        boxed = new Msg(std::move(m));
    } else {
        boxed = ssh.msgPool.back().release();
        ssh.msgPool.pop_back();
        *boxed = std::move(m);
    }
    auto &dst_pool = shards_[shardOfNode_[boxed->dst]]->msgPool;
    // The box travels inside the callback as a unique_ptr so that a
    // queue destroyed with deliveries still pending frees it.
    auto deliver = [this, &dst_pool,
                    owned = std::unique_ptr<Msg>(boxed)]() mutable {
        Msg &msg = *owned;
        nodes_[msg.dst]->receive(msg);
        msg.payload.reset(); // drop bulk payloads promptly
        dst_pool.push_back(std::move(owned));
    };
    static_assert(sizeof(deliver) <= EventQueue::Callback::kCapacity,
                  "route() delivery capture outgrew the event-callback "
                  "inline buffer; bump kEventCallbackBytes");
    if (oracle_) {
        oracle_->traceMsg(ssh.eq.now(), boxed->src, boxed->dst,
                          static_cast<std::uint16_t>(boxed->type),
                          boxed->gpage, boxed->lineIdx);
    }
    // Always-on last-N message history: a few plain stores per message.
    ssh.msgRing.push(TraceEvent{ssh.eq.now(), boxed->gpage,
                                boxed->lineIdx,
                                static_cast<std::uint16_t>(boxed->type),
                                static_cast<std::uint8_t>(boxed->src),
                                static_cast<std::uint8_t>(boxed->dst)});
    if (trace_) {
        trace_->instant(msgTypeName(boxed->type), "msg",
                        static_cast<std::int32_t>(boxed->dst),
                        static_cast<std::int32_t>(boxed->lineIdx),
                        ssh.eq.now());
    }
    net_->send(boxed->src, boxed->dst, boxed->sizeClass(),
               std::move(deliver));
}

std::uint64_t
Machine::shmget(std::uint64_t key, std::uint64_t bytes)
{
    const std::uint64_t gsid = ipc_.shmget(key, bytes);
    if (refSink_)
        refSink_->segGet(key, bytes, gsid);
    return gsid;
}

void
Machine::shmatAll(std::uint64_t vsid, std::uint64_t gsid)
{
    if (refSink_)
        refSink_->segAttach(vsid, gsid);
    for (auto &n : nodes_)
        n->kernel().bindSegment(vsid, gsid);
}

void
Machine::setRefSink(RefSink *s)
{
    refSink_ = s;
    for (ProcId p = 0; p < numProcs(); ++p)
        proc(p).setRefSink(s);
}

void
Machine::run(const std::function<CoTask(Proc &)> &make)
{
    const std::uint32_t n = numProcs();
    std::vector<CoTask> tasks;
    tasks.reserve(n);
    for (ProcId p = 0; p < n; ++p)
        tasks.push_back(make(proc(p)));

    if (shards_.size() == 1) {
        std::uint32_t done = 0;
        for (auto &t : tasks) {
            t.start([this, &done] {
                ++done;
                lastProcDone_ = shards_[0]->eq.now();
            });
        }
        const bool finished =
            shards_[0]->eq.runWhile([&done, n] { return done == n; });
        prism_assert(finished,
                     "event queue drained with %u of %u programs "
                     "unfinished", n - done, n);
        drain();
        if (oracle_)
            oracle_->sweepQuiescent();
        return;
    }

    // Sharded: each program starts as a tick-0 event on its own shard
    // (its first steps touch node state, so they must run in shard
    // context), scheduled in global processor order.
    for (ProcId p = 0; p < n; ++p) {
        MachineShard &sh =
            *shards_[shardOfNode_[p / cfg_.procsPerNode]];
        sh.eq.schedule(0, [&t = tasks[p], &sh] {
            t.start([&sh] {
                ++sh.done;
                sh.lastDone = sh.eq.now();
            });
        });
    }
    runShardedLoop();
    std::uint32_t done = 0;
    Tick last = 0;
    for (auto &sh : shards_) {
        done += sh->done;
        last = std::max(last, sh->lastDone);
    }
    prism_assert(done == n,
                 "shard queues drained with %u of %u programs "
                 "unfinished", n - done, n);
    lastProcDone_ = last;
}

void
Machine::drain()
{
    if (shards_.size() > 1) {
        runShardedLoop();
        return;
    }
    shards_[0]->eq.runAll();
}

void
Machine::runShardWindow(std::uint32_t s)
{
#ifndef NDEBUG
    EventQueue::threadShard() = s;
#endif
    MachineShard &sh = *shards_[s];
    const Tick limit = windowLimit_;
    while (!sh.markHit && sh.eq.nextEventTick() < limit)
        sh.eq.runOne();
#ifndef NDEBUG
    EventQueue::threadShard() = kAnyShard;
#endif
}

std::uint32_t
Machine::shardOfQueue(const EventQueue *q) const
{
    for (std::uint32_t s = 0; s < shards_.size(); ++s) {
        if (&shards_[s]->eq == q)
            return s;
    }
    panic("sync op from a queue owned by no shard");
}

void
Machine::applyMark(const SyncOp &op)
{
    const std::uint32_t ms = shardOfQueue(op.q);
    if (op.kind == SyncOp::MarkBegin) {
        prism_assert(!parallelBeginSet_, "parallel phase begun twice");
        parallelBeginSet_ = true;
        parallelBegin_ = op.tick;
        beginSnap_ = snapshotAdjusted(op.tick, ms);
    } else {
        prism_assert(!parallelEndSet_, "parallel phase ended twice");
        parallelEndSet_ = true;
        parallelEnd_ = op.tick;
        endSnap_ = snapshotAdjusted(op.tick, ms);
    }
    // Un-truncate the marking shard and splice the program's
    // continuation back in ahead of the tick's remaining events,
    // where the sequential scheduler would have run it synchronously.
    shards_[ms]->markHit = false;
    op.q->scheduleFront(op.tick, [h = op.h] { h.resume(); });
}

void
Machine::runShardedLoop()
{
    const Cycles L = lookahead_;
    Tick W = 0;
    for (;;) {
        // Earliest pending event anywhere — including mark-frozen
        // shards, whose backlog must keep capping W so that every op
        // logged in a window has tick >= W (grants then land at
        // >= W + L, never in any queue's past).
        Tick min_next = kTickMax;
        for (auto &sh : shards_)
            min_next = std::min(min_next, sh->eq.nextEventTick());
        if (min_next == kTickMax) {
            if (pendingSync_.empty())
                break;
            // Runnable queues are dry but ops are still held behind an
            // unapplied mark: run an empty round to apply them.
        } else if (min_next > W) {
            W = min_next; // window advance doubles as the idle jump
        }
        windowLimit_ = W + L;

        // Serial stretches — one runnable shard (or none, while ops
        // wait behind an unapplied mark) — skip the worker round and
        // its two barrier crossings; the window runs inline on the
        // coordinator.  Which thread executes a window never affects
        // results, and the barrier crossings of neighbouring rounds
        // order the coordinator's writes against the workers'.
        std::uint32_t runnable = 0;
        std::uint32_t only = 0;
        for (std::uint32_t s = 0; s < shards_.size(); ++s) {
            if (!shards_[s]->markHit &&
                shards_[s]->eq.nextEventTick() < windowLimit_) {
                ++runnable;
                only = s;
            }
        }
        if (runnable > 1) {
            workers_->round(
                [this](std::uint32_t s) { runShardWindow(s); });
        } else if (runnable == 1) {
            runShardWindow(only);
        }

        // --- Coordinator: every shard is parked at the barrier. ------
        net_->drainShardChannel();
        net_->foldShardCounters();

        std::vector<SyncOp> ops = std::move(pendingSync_);
        pendingSync_.clear();
        for (auto &sh : shards_) {
            ops.insert(ops.end(), sh->syncOps.begin(),
                       sh->syncOps.end());
            sh->syncOps.clear();
        }
        std::sort(ops.begin(), ops.end(), SyncOp::before);

        auto grant = [this](const SyncWaiter &w, Tick at) {
            w.actor->rank = nextSyncRank_++;
            w.q->schedule(at, [h = w.h] { h.resume(); });
        };
        std::size_t i = 0;
        for (; i < ops.size(); ++i) {
            const SyncOp &op = ops[i];
            if (op.kind == SyncOp::MarkBegin ||
                op.kind == SyncOp::MarkEnd) {
                // Apply the mark, hold everything ordered after it:
                // its snapshot must not see later ops' effects, and
                // held ops re-merge (and re-sort) next round.
                applyMark(op);
                ++i;
                break;
            }
            const SyncWaiter w{op.h, op.q, op.actor};
            switch (op.kind) {
              case SyncOp::LockAcquire:
                locks_->applyAcquire(op.id, w, op.tick, grant);
                break;
              case SyncOp::LockRelease:
                locks_->applyRelease(op.id, op.tick, grant);
                break;
              case SyncOp::BarrierArrive:
                barriers_->applyArrive(op.id, w, op.tick, grant);
                break;
              default:
                panic("unhandled sync op kind %u",
                      static_cast<unsigned>(op.kind));
            }
        }
        pendingSync_.assign(std::make_move_iterator(ops.begin() + i),
                            std::make_move_iterator(ops.end()));
        if (pendingSync_.empty()) {
            // No mark in flight: nothing can need a snapshot of a past
            // tick any more, so the logs can be recycled.
            for (auto &sh : shards_)
                sh->snapLog.clear();
        }
    }
    prism_assert(net_->shardTrafficQuiescent(),
                 "sharded run ended with traffic still staged");
    net_->foldShardHistograms();
}

Machine::Snapshot
Machine::snapshot() const
{
    Snapshot s;
    s.remoteMisses = registry_.sum("ctrl", "remoteMisses");
    s.upgrades = registry_.sum("ctrl", "upgrades");
    s.invalidations = registry_.sum("ctrl", "invalsSent");
    s.clientPageOuts = registry_.sum("kernel", "clientPageOuts");
    s.pageFaults = registry_.sum("kernel", "faults");
    s.networkMessages = registry_.value("net", kMachineWide, "messages");
    return s;
}

Machine::Snapshot
Machine::snapshotAdjusted(Tick at, std::uint32_t mark_shard) const
{
    Snapshot s = snapshot();
    std::uint64_t over[kSnapKinds] = {};
    for (std::uint32_t i = 0; i < shards_.size(); ++i) {
        if (i == mark_shard)
            continue;
        shards_[i]->snapLog.tallyAtOrAfter(at, over);
    }
    auto sub = [](std::uint64_t &field, std::uint64_t amount) {
        prism_assert(field >= amount,
                     "snapshot adjustment underflow (%llu < %llu)",
                     static_cast<unsigned long long>(field),
                     static_cast<unsigned long long>(amount));
        field -= amount;
    };
    sub(s.remoteMisses, over[std::size_t(SnapKind::RemoteMiss)]);
    sub(s.upgrades, over[std::size_t(SnapKind::Upgrade)]);
    sub(s.invalidations, over[std::size_t(SnapKind::InvalSent)]);
    sub(s.clientPageOuts, over[std::size_t(SnapKind::ClientPageOut)]);
    sub(s.pageFaults, over[std::size_t(SnapKind::Fault)]);
    sub(s.networkMessages, over[std::size_t(SnapKind::NetMsg)]);
    return s;
}

void
Machine::markParallelBegin()
{
    prism_assert(!parallelBeginSet_, "parallel phase begun twice");
    parallelBeginSet_ = true;
    parallelBegin_ = shards_[0]->eq.now();
    beginSnap_ = snapshot();
}

void
Machine::markParallelEnd()
{
    prism_assert(!parallelEndSet_, "parallel phase ended twice");
    parallelEndSet_ = true;
    parallelEnd_ = shards_[0]->eq.now();
    endSnap_ = snapshot();
}

RunMetrics
Machine::metrics()
{
    RunMetrics m;
    const Tick begin = parallelBeginSet_ ? parallelBegin_ : 0;
    const Tick end = parallelEndSet_ ? parallelEnd_ : lastProcDone_;
    const Snapshot &b = beginSnap_;
    const Snapshot e = parallelEndSet_ ? endSnap_ : snapshot();

    m.execCycles = end > begin ? end - begin : 0;
    Tick total = 0;
    for (const auto &sh : shards_)
        total = std::max(total, sh->eq.now());
    m.totalCycles = total;
    m.remoteMisses = e.remoteMisses - b.remoteMisses;
    m.clientPageOuts = e.clientPageOuts - b.clientPageOuts;
    m.upgrades = e.upgrades - b.upgrades;
    m.invalidations = e.invalidations - b.invalidations;
    m.networkMessages = e.networkMessages - b.networkMessages;
    m.pageFaults = e.pageFaults - b.pageFaults;

    // Everything below is a label query against the registry — no
    // field is hand-copied from module structs.
    m.migrations = registry_.sum("ctrl", "migrationsOut");
    m.forwards = registry_.sum("ctrl", "forwards");
    m.references = registry_.sumLeaf("proc", "loads") +
                   registry_.sumLeaf("proc", "stores");

    registry_.sampleGauges();
    m.clientScomaPeakPerNode.assign(numNodes(), 0);
    std::uint64_t util_frames = 0;
    double util_weighted = 0.0;
    std::vector<double> node_util(numNodes(), 0.0);
    std::vector<std::uint64_t> node_frames(numNodes(), 0);
    for (const auto &g : registry_.gauges()) {
        if (g.labels.component != "kernel" || g.labels.node < 0)
            continue;
        const auto n = static_cast<std::size_t>(g.labels.node);
        if (g.labels.name == "realFramesPeak") {
            m.framesAllocated += static_cast<std::uint64_t>(g.value);
        } else if (g.labels.name == "clientScomaPeak") {
            m.clientScomaPeakPerNode[n] =
                static_cast<std::uint64_t>(g.value);
        } else if (g.labels.name == "realFramesCumulative") {
            node_frames[n] = static_cast<std::uint64_t>(g.value);
        } else if (g.labels.name == "avgUtilization") {
            node_util[n] = g.value;
        }
    }
    for (std::size_t n = 0; n < node_frames.size(); ++n) {
        util_frames += node_frames[n];
        util_weighted +=
            node_util[n] * static_cast<double>(node_frames[n]);
    }
    m.avgUtilization =
        util_frames ? util_weighted / static_cast<double>(util_frames)
                    : 0.0;
    return m;
}

} // namespace prism
