/**
 * @file
 * Synchronization cost models: locks and sense-reversing barriers.
 *
 * SPLASH synchronization runs through shared memory in reality; like
 * other Augmint-class simulators we model lock and barrier episodes as
 * simulator primitives that charge the latency of the equivalent
 * remote round trips, preserving serialization behaviour and cost
 * without simulating test-and-set reference streams (see DESIGN.md).
 */

#ifndef PRISM_CORE_SYNC_HH
#define PRISM_CORE_SYNC_HH

#include <coroutine>
#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/logging.hh"
#include "sim/types.hh"

namespace prism {

/** FIFO queued locks, keyed by an application-chosen id. */
class LockManager
{
  public:
    LockManager(EventQueue &eq, Cycles acquire_cost, Cycles handoff_cost)
        : eq_(eq), acquireCost_(acquire_cost), handoffCost_(handoff_cost)
    {
    }

    /** Awaitable acquire of lock @p id. */
    auto
    acquire(std::uint64_t id)
    {
        struct Awaiter {
            LockManager &m;
            std::uint64_t id;

            bool await_ready() const { return false; }

            void
            await_suspend(std::coroutine_handle<> h)
            {
                Lock &l = m.locks_[id];
                if (!l.held) {
                    l.held = true;
                    ++m.acquires_;
                    m.eq_.scheduleIn(m.acquireCost_, [h] { h.resume(); });
                } else {
                    ++m.contended_;
                    l.waiters.push_back(h);
                }
            }

            void await_resume() const {}
        };
        return Awaiter{*this, id};
    }

    /** Release lock @p id; the next waiter resumes after a handoff. */
    void
    release(std::uint64_t id)
    {
        auto it = locks_.find(id);
        prism_assert(it != locks_.end() && it->second.held,
                     "releasing an unheld lock");
        Lock &l = it->second;
        if (l.waiters.empty()) {
            l.held = false;
            return;
        }
        auto h = l.waiters.front();
        l.waiters.pop_front();
        ++acquires_;
        eq_.scheduleIn(handoffCost_, [h] { h.resume(); });
    }

    std::uint64_t acquires() const { return acquires_; }
    std::uint64_t contended() const { return contended_; }

  private:
    struct Lock {
        bool held = false;
        std::deque<std::coroutine_handle<>> waiters;
    };

    EventQueue &eq_;
    Cycles acquireCost_;
    Cycles handoffCost_;
    std::unordered_map<std::uint64_t, Lock> locks_;
    std::uint64_t acquires_ = 0;
    std::uint64_t contended_ = 0;
};

/** All-processor barriers, keyed by id (episodes auto-advance). */
class BarrierManager
{
  public:
    BarrierManager(EventQueue &eq, std::uint32_t participants, Cycles cost)
        : eq_(eq), participants_(participants), cost_(cost)
    {
    }

    /** Awaitable arrival at barrier @p id. */
    auto
    arrive(std::uint64_t id)
    {
        struct Awaiter {
            BarrierManager &m;
            std::uint64_t id;

            bool await_ready() const { return m.participants_ <= 1; }

            void
            await_suspend(std::coroutine_handle<> h)
            {
                Bar &b = m.bars_[id];
                b.waiters.push_back(h);
                if (b.waiters.size() == m.participants_) {
                    ++m.episodes_;
                    auto ws = std::move(b.waiters);
                    b.waiters.clear();
                    for (auto w : ws)
                        m.eq_.scheduleIn(m.cost_, [w] { w.resume(); });
                }
            }

            void await_resume() const {}
        };
        return Awaiter{*this, id};
    }

    std::uint64_t episodes() const { return episodes_; }

  private:
    struct Bar {
        std::vector<std::coroutine_handle<>> waiters;
    };

    EventQueue &eq_;
    std::uint32_t participants_;
    Cycles cost_;
    std::unordered_map<std::uint64_t, Bar> bars_;
    std::uint64_t episodes_ = 0;
};

} // namespace prism

#endif // PRISM_CORE_SYNC_HH
