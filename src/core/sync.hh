/**
 * @file
 * Synchronization cost models: locks and sense-reversing barriers.
 *
 * SPLASH synchronization runs through shared memory in reality; like
 * other Augmint-class simulators we model lock and barrier episodes as
 * simulator primitives that charge the latency of the equivalent
 * remote round trips, preserving serialization behaviour and cost
 * without simulating test-and-set reference streams (see DESIGN.md).
 *
 * Two entry paths share the same state and statistics:
 *  - the awaitable path (acquire/release/arrive), used by the
 *    sequential scheduler: ops take effect synchronously and resumes
 *    are scheduled on the manager's own event queue;
 *  - the apply path (applyAcquire/applyRelease/applyArrive), used by
 *    the sharded coordinator (sim/shard.hh): shards log SyncOps
 *    during a window and the coordinator applies them here in
 *    deterministic order, scheduling resumes through a grant callback
 *    into each waiter's own shard queue.
 */

#ifndef PRISM_CORE_SYNC_HH
#define PRISM_CORE_SYNC_HH

#include <coroutine>
#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/logging.hh"
#include "sim/shard.hh"
#include "sim/types.hh"

namespace prism {

/**
 * A parked waiter.  The sequential path stores only the handle; the
 * sharded apply path also carries the waiter's shard queue and rank
 * slot so a later grant can resume it deterministically.
 */
struct SyncWaiter {
    std::coroutine_handle<> h;
    EventQueue *q = nullptr;
    SyncActor *actor = nullptr;
};

/** FIFO queued locks, keyed by an application-chosen id. */
class LockManager
{
  public:
    LockManager(EventQueue &eq, Cycles acquire_cost, Cycles handoff_cost)
        : eq_(eq), acquireCost_(acquire_cost), handoffCost_(handoff_cost)
    {
    }

    /** Awaitable acquire of lock @p id (sequential scheduler). */
    auto
    acquire(std::uint64_t id)
    {
        struct Awaiter {
            LockManager &m;
            std::uint64_t id;

            bool await_ready() const { return false; }

            void
            await_suspend(std::coroutine_handle<> h)
            {
                Lock &l = m.locks_[id];
                if (!l.held) {
                    l.held = true;
                    ++m.acquires_;
                    m.eq_.scheduleIn(m.acquireCost_, [h] { h.resume(); });
                } else {
                    ++m.contended_;
                    l.waiters.push_back(SyncWaiter{h, nullptr, nullptr});
                }
            }

            void await_resume() const {}
        };
        return Awaiter{*this, id};
    }

    /** Release lock @p id; the next waiter resumes after a handoff. */
    void
    release(std::uint64_t id)
    {
        auto it = locks_.find(id);
        prism_assert(it != locks_.end() && it->second.held,
                     "releasing an unheld lock");
        Lock &l = it->second;
        if (l.waiters.empty()) {
            l.held = false;
            return;
        }
        auto h = l.waiters.front().h;
        l.waiters.pop_front();
        ++acquires_;
        eq_.scheduleIn(handoffCost_, [h] { h.resume(); });
    }

    /**
     * Sharded apply path: acquire issued at @p tick by @p w.  When the
     * lock is free the grant fires at tick + acquireCost; otherwise
     * the waiter parks in FIFO order, exactly like the awaitable path.
     * @p grant is `void(const SyncWaiter &, Tick resume_at)`.
     */
    template <typename GrantFn>
    void
    applyAcquire(std::uint64_t id, const SyncWaiter &w, Tick tick,
                 GrantFn &&grant)
    {
        Lock &l = locks_[id];
        if (!l.held) {
            l.held = true;
            ++acquires_;
            grant(w, tick + acquireCost_);
        } else {
            ++contended_;
            l.waiters.push_back(w);
        }
    }

    /** Sharded apply path: release issued at @p tick. */
    template <typename GrantFn>
    void
    applyRelease(std::uint64_t id, Tick tick, GrantFn &&grant)
    {
        auto it = locks_.find(id);
        prism_assert(it != locks_.end() && it->second.held,
                     "releasing an unheld lock");
        Lock &l = it->second;
        if (l.waiters.empty()) {
            l.held = false;
            return;
        }
        SyncWaiter w = l.waiters.front();
        l.waiters.pop_front();
        ++acquires_;
        grant(w, tick + handoffCost_);
    }

    std::uint64_t acquires() const { return acquires_; }
    std::uint64_t contended() const { return contended_; }

  private:
    struct Lock {
        bool held = false;
        std::deque<SyncWaiter> waiters;
    };

    EventQueue &eq_;
    Cycles acquireCost_;
    Cycles handoffCost_;
    std::unordered_map<std::uint64_t, Lock> locks_;
    std::uint64_t acquires_ = 0;
    std::uint64_t contended_ = 0;
};

/** All-processor barriers, keyed by id (episodes auto-advance). */
class BarrierManager
{
  public:
    BarrierManager(EventQueue &eq, std::uint32_t participants, Cycles cost)
        : eq_(eq), participants_(participants), cost_(cost)
    {
    }

    /** Awaitable arrival at barrier @p id (sequential scheduler). */
    auto
    arrive(std::uint64_t id)
    {
        struct Awaiter {
            BarrierManager &m;
            std::uint64_t id;

            bool await_ready() const { return m.participants_ <= 1; }

            void
            await_suspend(std::coroutine_handle<> h)
            {
                Bar &b = m.bars_[id];
                b.waiters.push_back(SyncWaiter{h, nullptr, nullptr});
                if (b.waiters.size() == m.participants_) {
                    ++m.episodes_;
                    auto ws = std::move(b.waiters);
                    b.waiters.clear();
                    for (const auto &w : ws) {
                        m.eq_.scheduleIn(m.cost_,
                                         [h = w.h] { h.resume(); });
                    }
                }
            }

            void await_resume() const {}
        };
        return Awaiter{*this, id};
    }

    /**
     * Sharded apply path: arrival issued at @p tick by @p w.  The
     * completing arrival (by construction the latest tick, since the
     * coordinator applies ops in time order) releases every waiter in
     * arrival order at tick + cost.
     */
    template <typename GrantFn>
    void
    applyArrive(std::uint64_t id, const SyncWaiter &w, Tick tick,
                GrantFn &&grant)
    {
        Bar &b = bars_[id];
        b.waiters.push_back(w);
        if (b.waiters.size() == participants_) {
            ++episodes_;
            auto ws = std::move(b.waiters);
            b.waiters.clear();
            for (const auto &waiter : ws)
                grant(waiter, tick + cost_);
        }
    }

    std::uint64_t episodes() const { return episodes_; }

  private:
    struct Bar {
        std::vector<SyncWaiter> waiters;
    };

    EventQueue &eq_;
    std::uint32_t participants_;
    Cycles cost_;
    std::unordered_map<std::uint64_t, Bar> bars_;
    std::uint64_t episodes_ = 0;
};

} // namespace prism

#endif // PRISM_CORE_SYNC_HH
