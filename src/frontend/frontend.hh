/**
 * @file
 * Frontend selection: where a run's reference stream comes from.
 *
 *   exec    execute the workload coroutines (the default)
 *   record  execute, and additionally capture the calibration run's
 *           stream to a .ptrace file
 *   replay  skip workload execution entirely and re-issue a recorded
 *           stream through the simulator
 *
 * See docs/TRACE.md for the determinism contract and the
 * record-once / sweep-many recipe.
 */

#ifndef PRISM_FRONTEND_FRONTEND_HH
#define PRISM_FRONTEND_FRONTEND_HH

#include <string>

namespace prism {

enum class FrontendKind { Exec, Record, Replay };

const char *frontendName(FrontendKind k);

/** @retval false when @p s names no frontend. */
bool frontendFromString(const char *s, FrontendKind *out);

/**
 * The .ptrace path for @p app under a bench's --trace-file argument
 * @p base.  With a single selected app the base is used verbatim;
 * with several, each app gets its own file: a trailing '/' appends
 * "<app>.ptrace", a ".ptrace" suffix becomes ".<app>.ptrace", and
 * anything else gets ".<app>.ptrace" appended.
 */
std::string tracePathFor(const std::string &base,
                         const std::string &app, std::size_t num_apps);

/**
 * Claim @p path for a recording of @p app.  When two apps in one
 * sweep derive the same .ptrace path (e.g. a verbatim --trace-file
 * with more than one recording, or app names that collapse to one
 * derived filename), the second recording would silently clobber the
 * first — that is fatal here, with both app names in the message.
 * Re-claiming a path for the *same* app is fine (policy cells of one
 * sweep share the calibration recording).  Thread-safe;
 * process-lifetime state, cleared by resetTracePathClaims().
 */
void claimTracePath(const std::string &path, const std::string &app);

/** Forget every recorded-path claim (test isolation only). */
void resetTracePathClaims();

} // namespace prism

#endif // PRISM_FRONTEND_FRONTEND_HH
