#include "frontend/frontend.hh"

#include <cstring>
#include <mutex>
#include <unordered_map>

#include "sim/logging.hh"

namespace prism {

const char *
frontendName(FrontendKind k)
{
    switch (k) {
      case FrontendKind::Exec: return "exec";
      case FrontendKind::Record: return "record";
      case FrontendKind::Replay: return "replay";
    }
    return "?";
}

bool
frontendFromString(const char *s, FrontendKind *out)
{
    if (!std::strcmp(s, "exec"))
        *out = FrontendKind::Exec;
    else if (!std::strcmp(s, "record"))
        *out = FrontendKind::Record;
    else if (!std::strcmp(s, "replay"))
        *out = FrontendKind::Replay;
    else
        return false;
    return true;
}

std::string
tracePathFor(const std::string &base, const std::string &app,
             std::size_t num_apps)
{
    if (base.empty())
        return base; // callers report the missing --trace-file
    if (num_apps <= 1 && base.back() != '/')
        return base;
    if (!base.empty() && base.back() == '/')
        return base + app + ".ptrace";
    const std::string suffix = ".ptrace";
    if (base.size() > suffix.size() &&
        base.compare(base.size() - suffix.size(), suffix.size(),
                     suffix) == 0) {
        return base.substr(0, base.size() - suffix.size()) + "." + app +
               suffix;
    }
    return base + "." + app + suffix;
}

namespace {

std::mutex &
claimMutex()
{
    static std::mutex m;
    return m;
}

std::unordered_map<std::string, std::string> &
claimMap()
{
    static std::unordered_map<std::string, std::string> claims;
    return claims;
}

} // namespace

void
claimTracePath(const std::string &path, const std::string &app)
{
    std::lock_guard<std::mutex> lk(claimMutex());
    auto [it, inserted] = claimMap().emplace(path, app);
    if (!inserted && it->second != app) {
        fatal("trace path collision: '%s' and '%s' both derive "
              "'%s' for --trace-file; the second recording would "
              "clobber the first (use a trailing '/' or a .ptrace "
              "pattern so each app gets its own file)",
              it->second.c_str(), app.c_str(), path.c_str());
    }
}

void
resetTracePathClaims()
{
    std::lock_guard<std::mutex> lk(claimMutex());
    claimMap().clear();
}

} // namespace prism
