/**
 * @file
 * Replay frontend: a Workload that re-issues a recorded reference
 * stream through the unmodified Proc/coherence/paging layers.
 *
 * setup() repeats the recorded shmget/shmatAll calls (checking the
 * machine hands back the same segment ids), then each processor's
 * body() decodes its stream and re-issues every op through the normal
 * program interface.  Sync dependencies are reconstructed from the
 * recorded lock/barrier events, so timing is entirely config-driven:
 * replaying a recording at the configuration it was recorded under
 * reproduces the execution cycle for cycle (see docs/TRACE.md for the
 * determinism contract and its limits across configurations).
 *
 * Replay never touches host-side shared state, so it is shard-safe
 * even for workloads that had to record sequentially (Barnes, MP3D).
 */

#ifndef PRISM_FRONTEND_TRACE_WORKLOAD_HH
#define PRISM_FRONTEND_TRACE_WORKLOAD_HH

#include <memory>

#include "frontend/ptrace.hh"
#include "workload/workload.hh"

namespace prism {

/** Replays a RecordedTrace as a Workload (see file comment). */
class TraceWorkload : public Workload
{
  public:
    explicit TraceWorkload(std::shared_ptr<const RecordedTrace> trace);

    const char *name() const override { return trace_->workload.c_str(); }
    std::string sizeDesc() const override { return trace_->sizeDesc; }
    void setup(Machine &m) override;
    CoTask body(Proc &p, std::uint32_t tid,
                std::uint32_t nthreads) override;
    bool shardSafe() const override { return true; }

    const RecordedTrace &trace() const { return *trace_; }

  private:
    std::shared_ptr<const RecordedTrace> trace_;
};

} // namespace prism

#endif // PRISM_FRONTEND_TRACE_WORKLOAD_HH
