#include "frontend/recorder.hh"

#include "core/machine.hh"
#include "sim/logging.hh"
#include "workload/workload.hh"

namespace prism {

void
TraceRecorder::attach(Machine &m, const Workload &w)
{
    prism_assert(!trace_, "TraceRecorder attached twice");
    trace_ = std::make_unique<RecordedTrace>();
    trace_->workload = w.name();
    trace_->sizeDesc = w.sizeDesc();
    trace_->seed = m.config().seed;
    trace_->numProcs = m.numProcs();
    trace_->lineBytes = m.config().lineBytes;
    writers_.clear();
    writers_.resize(m.numProcs());
    m.setRefSink(this);
}

void
TraceRecorder::access(ProcId p, VAddr va, bool write)
{
    writers_[p].access(va, write);
}

void
TraceRecorder::compute(ProcId p, Cycles cycles)
{
    writers_[p].compute(cycles);
}

void
TraceRecorder::sync(ProcId p, RefOp op, std::uint64_t id)
{
    writers_[p].sync(op, id);
}

void
TraceRecorder::segGet(std::uint64_t key, std::uint64_t bytes,
                      std::uint64_t gsid)
{
    trace_->segments.push_back(
        SegmentOp{SegmentOp::Get, key, bytes, gsid});
}

void
TraceRecorder::segAttach(std::uint64_t vsid, std::uint64_t gsid)
{
    trace_->segments.push_back(
        SegmentOp{SegmentOp::Attach, vsid, gsid, 0});
}

std::shared_ptr<const RecordedTrace>
TraceRecorder::finish(Machine &m)
{
    prism_assert(trace_, "TraceRecorder::finish without attach");
    m.setRefSink(nullptr);
    trace_->opCounts.resize(writers_.size());
    trace_->streams.resize(writers_.size());
    for (std::size_t p = 0; p < writers_.size(); ++p) {
        trace_->opCounts[p] = writers_[p].opCount();
        trace_->streams[p] = writers_[p].takeBytes();
    }
    writers_.clear();
    return std::shared_ptr<const RecordedTrace>(std::move(trace_));
}

} // namespace prism
