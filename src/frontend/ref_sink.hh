/**
 * @file
 * Reference-stream observer interface.
 *
 * A RefSink receives every event a running program issues through the
 * Proc program interface — loads, stores, compute charges, sync ops —
 * plus the Machine-level segment setup calls.  The recording frontend
 * (frontend/recorder.hh) implements it to capture a .ptrace stream;
 * Proc and Machine carry a null-by-default pointer so the hooks cost
 * one predictable branch when no recorder is attached.
 *
 * Per-proc callbacks are invoked on the thread driving that processor
 * (one shard thread per proc under the sharded scheduler), so a sink
 * must keep per-proc state independent.
 */

#ifndef PRISM_FRONTEND_REF_SINK_HH
#define PRISM_FRONTEND_REF_SINK_HH

#include <cstdint>

#include "mem/addr.hh"
#include "sim/types.hh"

namespace prism {

/**
 * Operation kinds in a reference stream.  The numeric values are the
 * on-disk .ptrace opcode encoding — append only, never renumber.
 */
enum class RefOp : std::uint8_t {
    Load = 0,
    Store = 1,
    Compute = 2,
    Lock = 3,
    Unlock = 4,
    Barrier = 5,
    Fence = 6,
    BeginParallel = 7,
    EndParallel = 8,
};

constexpr std::uint8_t kNumRefOps = 9;

/** Observer for one run's reference stream (see file comment). */
class RefSink
{
  public:
    virtual ~RefSink() = default;

    /** A load (@p write false) or store (@p write true) to @p va. */
    virtual void access(ProcId p, VAddr va, bool write) = 0;

    /** @p cycles of non-memory computation charged. */
    virtual void compute(ProcId p, Cycles cycles) = 0;

    /**
     * A synchronization event: Lock/Unlock/Barrier carry the object
     * @p id; Fence/BeginParallel/EndParallel ignore it.
     */
    virtual void sync(ProcId p, RefOp op, std::uint64_t id) = 0;

    /** Machine::shmget(@p key, @p bytes) returned @p gsid. */
    virtual void segGet(std::uint64_t key, std::uint64_t bytes,
                        std::uint64_t gsid) = 0;

    /** Machine::shmatAll bound @p vsid to @p gsid. */
    virtual void segAttach(std::uint64_t vsid, std::uint64_t gsid) = 0;
};

} // namespace prism

#endif // PRISM_FRONTEND_REF_SINK_HH
