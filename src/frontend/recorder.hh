/**
 * @file
 * Recording frontend: a RefSink that captures a run's reference
 * streams into a RecordedTrace.
 *
 * Attach to a Machine before setup (Machine::setRefSink installs the
 * per-proc hooks), run the workload, then finish() to collect the
 * trace.  Each processor's ops land in its own StreamWriter, so the
 * recorder is safe under the sharded scheduler (one shard thread per
 * processor, no cross-proc writes); the segment log is only written
 * from Workload::setup, which runs before the processors start.
 */

#ifndef PRISM_FRONTEND_RECORDER_HH
#define PRISM_FRONTEND_RECORDER_HH

#include <memory>
#include <string>
#include <vector>

#include "frontend/ptrace.hh"
#include "frontend/ref_sink.hh"

namespace prism {

class Machine;
class Workload;

/** Captures one run's reference streams (see file comment). */
class TraceRecorder : public RefSink
{
  public:
    /** Hook @p m 's processors and segment calls; fills the header
     *  from @p w and @p m 's configuration. */
    void attach(Machine &m, const Workload &w);

    void access(ProcId p, VAddr va, bool write) override;
    void compute(ProcId p, Cycles cycles) override;
    void sync(ProcId p, RefOp op, std::uint64_t id) override;
    void segGet(std::uint64_t key, std::uint64_t bytes,
                std::uint64_t gsid) override;
    void segAttach(std::uint64_t vsid, std::uint64_t gsid) override;

    /** Unhook from the machine and return the completed trace. */
    std::shared_ptr<const RecordedTrace> finish(Machine &m);

  private:
    std::unique_ptr<RecordedTrace> trace_;
    std::vector<StreamWriter> writers_;
};

} // namespace prism

#endif // PRISM_FRONTEND_RECORDER_HH
