#include "frontend/trace_workload.hh"

#include "sim/logging.hh"

namespace prism {

TraceWorkload::TraceWorkload(std::shared_ptr<const RecordedTrace> trace)
    : trace_(std::move(trace))
{
    prism_assert(trace_ != nullptr, "TraceWorkload without a trace");
}

void
TraceWorkload::setup(Machine &m)
{
    if (m.numProcs() != trace_->numProcs) {
        fatal("trace '%s' was recorded on %u processors; this machine "
              "has %u (replay requires a matching processor count)",
              trace_->workload.c_str(), trace_->numProcs,
              m.numProcs());
    }
    if (m.config().lineBytes != trace_->lineBytes) {
        inform("trace '%s' was recorded with %u-byte lines; replaying "
               "with %u-byte lines",
               trace_->workload.c_str(), trace_->lineBytes,
               m.config().lineBytes);
    }
    for (const SegmentOp &s : trace_->segments) {
        if (s.kind == SegmentOp::Get) {
            const std::uint64_t gsid = m.shmget(s.a, s.b);
            if (gsid != s.c) {
                fatal("replaying trace '%s': shmget(key=%llx) returned "
                      "gsid %llu, recorded %llu (segment creation "
                      "order diverged)",
                      trace_->workload.c_str(),
                      static_cast<unsigned long long>(s.a),
                      static_cast<unsigned long long>(gsid),
                      static_cast<unsigned long long>(s.c));
            }
        } else {
            m.shmatAll(s.a, s.b);
        }
    }
}

CoTask
TraceWorkload::body(Proc &p, std::uint32_t tid, std::uint32_t nthreads)
{
    prism_assert(nthreads == trace_->numProcs,
                 "replay body spawned with %u threads for a %u-proc "
                 "trace", nthreads, trace_->numProcs);
    StreamReader r(trace_->streams[tid], trace_->opCounts[tid],
                   trace_->workload + " proc " + std::to_string(tid));
    TraceOp op;
    while (r.next(&op)) {
        switch (op.op) {
          case RefOp::Load:
            co_await p.read(VAddr{op.value});
            break;
          case RefOp::Store:
            co_await p.write(VAddr{op.value});
            break;
          case RefOp::Compute:
            p.compute(op.value);
            break;
          case RefOp::Lock:
            co_await p.lock(op.value);
            break;
          case RefOp::Unlock:
            co_await p.unlock(op.value);
            break;
          case RefOp::Barrier:
            co_await p.barrier(op.value);
            break;
          case RefOp::Fence:
            co_await p.fence();
            break;
          case RefOp::BeginParallel:
            co_await p.beginParallel();
            break;
          case RefOp::EndParallel:
            co_await p.endParallel();
            break;
        }
    }
}

} // namespace prism
