/**
 * @file
 * The .ptrace on-disk reference-trace format.
 *
 * A trace holds one recorded run: a versioned header (workload name,
 * size description, seed, processor count, line size, the segment
 * setup calls) and one compressed op stream per processor.  Streams
 * are byte-oriented: each op is one opcode byte — kind in the low
 * nibble, a small immediate in the high nibble — optionally followed
 * by a LEB128 varint when the immediate does not fit in 4 bits.
 * Access addresses are zigzag-delta encoded against the processor's
 * previous access, which together with the varint packing compresses
 * the streams several-fold without any external codec.
 *
 * File layout (all multi-byte scalars varint unless noted):
 *
 *   magic "PRSMTRC\n" (8 bytes)
 *   u32le  version                    (kPtraceVersion)
 *   string workload, string sizeDesc  (varint length + bytes)
 *   varint seed, numProcs, lineBytes
 *   varint segmentOpCount; per op: u8 kind, varint a, b, c
 *   varint opCount[p] for each proc
 *   per proc: varint chunkCount; per chunk: varint len, raw bytes
 *             (chunks are <= kPtraceChunkBytes)
 *   u8 0xE7, u64le FNV-1a checksum over everything after the magic
 *
 * Readers fail fast with a clear fatal() on bad magic, unsupported
 * version, truncation, or checksum mismatch.
 */

#ifndef PRISM_FRONTEND_PTRACE_HH
#define PRISM_FRONTEND_PTRACE_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "frontend/ref_sink.hh"

namespace prism {

constexpr std::uint32_t kPtraceVersion = 1;
constexpr std::size_t kPtraceChunkBytes = 64 * 1024;

/** One decoded stream operation. */
struct TraceOp {
    RefOp op{};
    /** Absolute address (Load/Store), cycles (Compute), or id. */
    std::uint64_t value = 0;

    bool
    operator==(const TraceOp &o) const
    {
        return op == o.op && value == o.value;
    }
};

/** A recorded Machine::shmget / Machine::shmatAll call, in order. */
struct SegmentOp {
    enum Kind : std::uint8_t { Get = 0, Attach = 1 };
    std::uint8_t kind = Get;
    std::uint64_t a = 0; //!< Get: key;   Attach: vsid
    std::uint64_t b = 0; //!< Get: bytes; Attach: gsid
    std::uint64_t c = 0; //!< Get: returned gsid
};

/** Append-only encoder for one processor's op stream. */
class StreamWriter
{
  public:
    void access(VAddr va, bool write);
    void compute(Cycles cycles);
    void sync(RefOp op, std::uint64_t id);

    std::uint64_t opCount() const { return ops_; }
    const std::string &bytes() const { return buf_; }
    std::string takeBytes() { return std::move(buf_); }

  private:
    void emit(RefOp op, std::uint64_t value);

    std::string buf_;
    std::uint64_t ops_ = 0;
    std::uint64_t lastAddr_ = 0;
};

/** Sequential decoder over one processor's encoded stream. */
class StreamReader
{
  public:
    /**
     * @p what names the stream in decode-error messages (e.g.
     * "proc 3 of fixture.ptrace").
     */
    StreamReader(const std::string &bytes, std::uint64_t op_count,
                 std::string what);

    /** @retval false when the stream is exhausted. */
    bool next(TraceOp *out);

    std::uint64_t remaining() const { return remaining_; }

  private:
    const std::string &buf_;
    std::size_t pos_ = 0;
    std::uint64_t remaining_;
    std::uint64_t lastAddr_ = 0;
    std::string what_;
};

/** A complete recorded run: header plus per-proc encoded streams. */
struct RecordedTrace {
    std::string workload;
    std::string sizeDesc;
    std::uint64_t seed = 0;
    std::uint32_t numProcs = 0;
    std::uint32_t lineBytes = 0;
    std::vector<SegmentOp> segments;
    std::vector<std::uint64_t> opCounts; //!< per proc
    std::vector<std::string> streams;    //!< per proc, encoded

    std::uint64_t totalOps() const;

    /** Encoded payload size over every proc, bytes. */
    std::uint64_t encodedBytes() const;

    /** Serialize to @p path; fatal() when the file cannot be written. */
    void writeFile(const std::string &path) const;

    /**
     * Load @p path, validating magic, version and checksum; any
     * malformation is a fatal() naming the file and the defect.
     */
    static std::shared_ptr<const RecordedTrace>
    readFile(const std::string &path);

    /** Serialize to bytes (writeFile without the filesystem). */
    std::string serialize() const;

    /** Parse @p bytes; @p what names the source in error messages. */
    static std::shared_ptr<const RecordedTrace>
    deserialize(const std::string &bytes, const std::string &what);
};

} // namespace prism

#endif // PRISM_FRONTEND_PTRACE_HH
