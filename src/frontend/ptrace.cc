#include "frontend/ptrace.hh"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <sstream>

#include "sim/logging.hh"

namespace prism {

namespace {

const char kMagic[8] = {'P', 'R', 'S', 'M', 'T', 'R', 'C', '\n'};
constexpr std::uint8_t kTrailerMark = 0xE7;
constexpr std::size_t kTrailerBytes = 1 + 8; // mark + u64le checksum

// Opcode byte: kind in the low nibble, small immediate in the high
// nibble.  Immediates 0..14 are inline; 15 flags a following varint.
constexpr std::uint8_t kSmallMax = 14;
constexpr std::uint8_t kSmallEscape = 15;

std::uint64_t
zigzag(std::int64_t v)
{
    return (static_cast<std::uint64_t>(v) << 1) ^
           static_cast<std::uint64_t>(v >> 63);
}

std::int64_t
unzigzag(std::uint64_t u)
{
    return static_cast<std::int64_t>(u >> 1) ^
           -static_cast<std::int64_t>(u & 1);
}

void
putVarint(std::string &buf, std::uint64_t v)
{
    while (v >= 0x80) {
        buf.push_back(static_cast<char>((v & 0x7F) | 0x80));
        v >>= 7;
    }
    buf.push_back(static_cast<char>(v));
}

std::uint64_t
fnv1a(const char *data, std::size_t n)
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (std::size_t i = 0; i < n; ++i) {
        h ^= static_cast<std::uint8_t>(data[i]);
        h *= 0x100000001b3ULL;
    }
    return h;
}

/** Bounds-checked cursor over a serialized trace. */
struct Cursor {
    const std::string &buf;
    std::size_t pos = 0;
    const std::string &what;

    [[noreturn]] void
    die(const char *defect) const
    {
        fatal("%s: truncated trace (%s at byte %zu of %zu)",
              what.c_str(), defect, pos, buf.size());
    }

    std::uint8_t
    u8()
    {
        if (pos >= buf.size())
            die("byte expected");
        return static_cast<std::uint8_t>(buf[pos++]);
    }

    std::uint64_t
    varint()
    {
        std::uint64_t v = 0;
        unsigned shift = 0;
        while (true) {
            if (pos >= buf.size())
                die("varint continues past end");
            const std::uint8_t b =
                static_cast<std::uint8_t>(buf[pos++]);
            if (shift >= 64)
                die("varint wider than 64 bits");
            v |= static_cast<std::uint64_t>(b & 0x7F) << shift;
            if (!(b & 0x80))
                return v;
            shift += 7;
        }
    }

    std::string
    str()
    {
        const std::uint64_t n = varint();
        if (n > buf.size() - pos)
            die("string runs past end");
        std::string s = buf.substr(pos, n);
        pos += n;
        return s;
    }
};

} // namespace

// --- StreamWriter ------------------------------------------------------

void
StreamWriter::emit(RefOp op, std::uint64_t value)
{
    ++ops_;
    const auto kind = static_cast<std::uint8_t>(op);
    if (value <= kSmallMax) {
        buf_.push_back(static_cast<char>(
            kind | static_cast<std::uint8_t>(value << 4)));
    } else {
        buf_.push_back(static_cast<char>(kind | (kSmallEscape << 4)));
        putVarint(buf_, value);
    }
}

void
StreamWriter::access(VAddr va, bool write)
{
    const std::uint64_t delta = zigzag(
        static_cast<std::int64_t>(va.raw - lastAddr_));
    lastAddr_ = va.raw;
    emit(write ? RefOp::Store : RefOp::Load, delta);
}

void
StreamWriter::compute(Cycles cycles)
{
    emit(RefOp::Compute, cycles);
}

void
StreamWriter::sync(RefOp op, std::uint64_t id)
{
    emit(op, id);
}

// --- StreamReader ------------------------------------------------------

StreamReader::StreamReader(const std::string &bytes,
                           std::uint64_t op_count, std::string what)
    : buf_(bytes), remaining_(op_count), what_(std::move(what))
{
}

bool
StreamReader::next(TraceOp *out)
{
    if (remaining_ == 0) {
        if (pos_ != buf_.size()) {
            fatal("%s: %zu trailing bytes after the last op",
                  what_.c_str(), buf_.size() - pos_);
        }
        return false;
    }
    Cursor c{buf_, pos_, what_};
    const std::uint8_t b = c.u8();
    const std::uint8_t kind = b & 0x0F;
    const std::uint8_t small = b >> 4;
    if (kind >= kNumRefOps)
        fatal("%s: invalid opcode %u at byte %zu", what_.c_str(),
              unsigned{kind}, c.pos - 1);
    std::uint64_t value = small;
    if (small == kSmallEscape)
        value = c.varint();
    pos_ = c.pos;
    --remaining_;

    out->op = static_cast<RefOp>(kind);
    if (out->op == RefOp::Load || out->op == RefOp::Store) {
        lastAddr_ = static_cast<std::uint64_t>(
            static_cast<std::int64_t>(lastAddr_) + unzigzag(value));
        out->value = lastAddr_;
    } else {
        out->value = value;
    }
    return true;
}

// --- RecordedTrace -----------------------------------------------------

std::uint64_t
RecordedTrace::totalOps() const
{
    std::uint64_t n = 0;
    for (std::uint64_t c : opCounts)
        n += c;
    return n;
}

std::uint64_t
RecordedTrace::encodedBytes() const
{
    std::uint64_t n = 0;
    for (const std::string &s : streams)
        n += s.size();
    return n;
}

std::string
RecordedTrace::serialize() const
{
    prism_assert(streams.size() == numProcs &&
                     opCounts.size() == numProcs,
                 "trace has %zu streams / %zu op counts for %u procs",
                 streams.size(), opCounts.size(), numProcs);
    std::string out(kMagic, sizeof(kMagic));
    for (unsigned i = 0; i < 4; ++i)
        out.push_back(
            static_cast<char>((kPtraceVersion >> (8 * i)) & 0xFF));

    putVarint(out, workload.size());
    out += workload;
    putVarint(out, sizeDesc.size());
    out += sizeDesc;
    putVarint(out, seed);
    putVarint(out, numProcs);
    putVarint(out, lineBytes);
    putVarint(out, segments.size());
    for (const SegmentOp &s : segments) {
        out.push_back(static_cast<char>(s.kind));
        putVarint(out, s.a);
        putVarint(out, s.b);
        putVarint(out, s.c);
    }
    for (std::uint64_t c : opCounts)
        putVarint(out, c);
    for (const std::string &s : streams) {
        const std::uint64_t chunks =
            (s.size() + kPtraceChunkBytes - 1) / kPtraceChunkBytes;
        putVarint(out, chunks);
        for (std::size_t off = 0; off < s.size();
             off += kPtraceChunkBytes) {
            const std::size_t len =
                std::min(kPtraceChunkBytes, s.size() - off);
            putVarint(out, len);
            out.append(s, off, len);
        }
        if (s.empty())
            prism_assert(chunks == 0, "empty stream with chunks");
    }

    const std::uint64_t sum =
        fnv1a(out.data() + sizeof(kMagic), out.size() - sizeof(kMagic));
    out.push_back(static_cast<char>(kTrailerMark));
    for (unsigned i = 0; i < 8; ++i)
        out.push_back(static_cast<char>((sum >> (8 * i)) & 0xFF));
    return out;
}

std::shared_ptr<const RecordedTrace>
RecordedTrace::deserialize(const std::string &bytes,
                           const std::string &what)
{
    if (bytes.size() < sizeof(kMagic) + 4 + kTrailerBytes)
        fatal("%s: not a .ptrace file (only %zu bytes)", what.c_str(),
              bytes.size());
    if (std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0)
        fatal("%s: bad magic (not a .ptrace file)", what.c_str());
    std::uint32_t version = 0;
    for (unsigned i = 0; i < 4; ++i) {
        version |= static_cast<std::uint32_t>(
                       static_cast<std::uint8_t>(bytes[8 + i]))
                   << (8 * i);
    }
    if (version != kPtraceVersion) {
        fatal("%s: unsupported .ptrace version %u (this build reads "
              "version %u; re-record the trace)",
              what.c_str(), version, kPtraceVersion);
    }

    const std::size_t body = bytes.size() - kTrailerBytes;
    if (static_cast<std::uint8_t>(bytes[body]) != kTrailerMark)
        fatal("%s: missing end-of-trace marker (file truncated?)",
              what.c_str());
    std::uint64_t want = 0;
    for (unsigned i = 0; i < 8; ++i) {
        want |= static_cast<std::uint64_t>(
                    static_cast<std::uint8_t>(bytes[body + 1 + i]))
                << (8 * i);
    }
    const std::uint64_t got = fnv1a(bytes.data() + sizeof(kMagic),
                                    body - sizeof(kMagic));
    if (got != want) {
        fatal("%s: checksum mismatch (file corrupt: stored %016llx, "
              "computed %016llx)",
              what.c_str(), static_cast<unsigned long long>(want),
              static_cast<unsigned long long>(got));
    }

    auto t = std::make_shared<RecordedTrace>();
    // Parse only the checksummed body so a valid checksum implies a
    // clean parse up to `body`.
    const std::string view = bytes.substr(0, body);
    Cursor c{view, sizeof(kMagic) + 4, what};
    t->workload = c.str();
    t->sizeDesc = c.str();
    t->seed = c.varint();
    const std::uint64_t nprocs = c.varint();
    if (nprocs == 0 || nprocs > 4096)
        fatal("%s: implausible processor count %llu", what.c_str(),
              static_cast<unsigned long long>(nprocs));
    t->numProcs = static_cast<std::uint32_t>(nprocs);
    t->lineBytes = static_cast<std::uint32_t>(c.varint());
    const std::uint64_t nsegs = c.varint();
    for (std::uint64_t i = 0; i < nsegs; ++i) {
        SegmentOp s;
        s.kind = c.u8();
        if (s.kind > SegmentOp::Attach)
            fatal("%s: unknown segment-op kind %u", what.c_str(),
                  unsigned{s.kind});
        s.a = c.varint();
        s.b = c.varint();
        s.c = c.varint();
        t->segments.push_back(s);
    }
    t->opCounts.resize(t->numProcs);
    for (std::uint32_t p = 0; p < t->numProcs; ++p)
        t->opCounts[p] = c.varint();
    t->streams.resize(t->numProcs);
    for (std::uint32_t p = 0; p < t->numProcs; ++p) {
        const std::uint64_t chunks = c.varint();
        std::string &s = t->streams[p];
        for (std::uint64_t i = 0; i < chunks; ++i) {
            const std::uint64_t len = c.varint();
            if (len > kPtraceChunkBytes)
                fatal("%s: oversized chunk (%llu bytes)", what.c_str(),
                      static_cast<unsigned long long>(len));
            if (len > view.size() - c.pos)
                c.die("chunk runs past end");
            s.append(view, c.pos, len);
            c.pos += len;
        }
    }
    if (c.pos != body)
        fatal("%s: %zu unparsed bytes before the trailer",
              what.c_str(), body - c.pos);
    return t;
}

void
RecordedTrace::writeFile(const std::string &path) const
{
    const std::string bytes = serialize();
    std::ofstream os(path, std::ios::binary);
    if (!os)
        fatal("cannot open trace file '%s' for writing", path.c_str());
    os.write(bytes.data(),
             static_cast<std::streamsize>(bytes.size()));
    os.flush();
    if (!os)
        fatal("short write to trace file '%s'", path.c_str());
}

std::shared_ptr<const RecordedTrace>
RecordedTrace::readFile(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is) {
        fatal("cannot open trace file '%s' (record it first with "
              "--frontend=record --trace-file)",
              path.c_str());
    }
    std::ostringstream ss;
    ss << is.rdbuf();
    return deserialize(ss.str(), path);
}

} // namespace prism
