/**
 * @file
 * SharerSet: the set of nodes holding a copy of a cache line.
 *
 * The full-map directory, the kernel's per-page client lists, the PIT
 * capability lists and the protocol oracle all manipulate "a set of
 * nodes".  Historically each of them carried a raw `std::uint64_t`
 * bitmask — a hard 64-node ceiling with silent shift-UB beyond it.
 * SharerSet keeps the single-word representation as the inline fast
 * path (machines up to 64 nodes never allocate and compile to the
 * same and/or/popcount instructions as the raw mask did) and spills
 * to a pooled multi-word bitmap when a node id >= 64 is added.
 *
 * Iteration is exposed as first()/next() word-scan (ctz) rather than
 * a callback, because the big consumer — the home controller's
 * invalidation fan-out — must `co_await` between members and a lambda
 * cannot straddle a coroutine suspension point.  Iteration order is
 * ascending node id, matching the historical `for (n = 0; n < N; ++n)`
 * mask probe loops bit for bit.
 *
 * SharerRef is the same operation set over *borrowed* words — the
 * directory's SoA arena (directory.hh) stores each line's sharer words
 * packed in place and hands out SharerRef views, so the hot path never
 * touches the heap at any machine size.
 */

#ifndef PRISM_COHERENCE_SHARER_SET_HH
#define PRISM_COHERENCE_SHARER_SET_HH

#include <cstdint>
#include <string>

#include "sim/types.hh"

namespace prism {

namespace sharer_words {

/** Pooled allocation of zeroed spill blocks (sharer_set.cc). */
std::uint64_t *alloc(std::uint32_t num_words);
void release(std::uint64_t *block, std::uint32_t num_words);

inline bool
test(const std::uint64_t *w, std::uint32_t nw, NodeId n)
{
    return n < nw * 64 && ((w[n >> 6] >> (n & 63)) & 1);
}

inline void
set(std::uint64_t *w, NodeId n)
{
    w[n >> 6] |= 1ULL << (n & 63);
}

inline void
reset(std::uint64_t *w, std::uint32_t nw, NodeId n)
{
    if (n < nw * 64)
        w[n >> 6] &= ~(1ULL << (n & 63));
}

inline bool
none(const std::uint64_t *w, std::uint32_t nw)
{
    for (std::uint32_t i = 0; i < nw; ++i) {
        if (w[i])
            return false;
    }
    return true;
}

inline std::uint32_t
count(const std::uint64_t *w, std::uint32_t nw)
{
    std::uint32_t c = 0;
    for (std::uint32_t i = 0; i < nw; ++i)
        c += static_cast<std::uint32_t>(__builtin_popcountll(w[i]));
    return c;
}

/** Lowest member with id >= @p from; kInvalidNode if none. */
inline NodeId
scan(const std::uint64_t *w, std::uint32_t nw, NodeId from)
{
    std::uint32_t wi = from >> 6;
    if (wi >= nw)
        return kInvalidNode;
    std::uint64_t cur = w[wi] & (~0ULL << (from & 63));
    for (;;) {
        if (cur) {
            return static_cast<NodeId>(
                (wi << 6) + __builtin_ctzll(cur));
        }
        if (++wi >= nw)
            return kInvalidNode;
        cur = w[wi];
    }
}

/** Hex rendering ("0x..", low word last); matches %#llx for nw==1. */
std::string toString(const std::uint64_t *w, std::uint32_t nw);

} // namespace sharer_words

/**
 * Non-owning view over a line's sharer words (fixed capacity).  The
 * directory arena hands these out; mutators assert the id fits.
 */
class SharerRef
{
  public:
    SharerRef(std::uint64_t *words, std::uint32_t num_words)
        : w_(words), nw_(num_words)
    {
    }

    std::uint32_t capacity() const { return nw_ * 64; }
    const std::uint64_t *words() const { return w_; }
    std::uint32_t numWords() const { return nw_; }

    bool test(NodeId n) const { return sharer_words::test(w_, nw_, n); }
    void add(NodeId n) { sharer_words::set(w_, n); }
    void remove(NodeId n) { sharer_words::reset(w_, nw_, n); }

    void
    clear()
    {
        for (std::uint32_t i = 0; i < nw_; ++i)
            w_[i] = 0;
    }

    bool empty() const { return sharer_words::none(w_, nw_); }
    std::uint32_t count() const { return sharer_words::count(w_, nw_); }

    NodeId first() const { return sharer_words::scan(w_, nw_, 0); }

    NodeId
    next(NodeId after) const
    {
        return sharer_words::scan(w_, nw_, after + 1);
    }

    /** Word 0 — the full mask for <= 64 nodes (trace/log output). */
    std::uint64_t lowWord() const { return w_[0]; }

    std::string
    toString() const
    {
        return sharer_words::toString(w_, nw_);
    }

  private:
    std::uint64_t *w_;
    std::uint32_t nw_;
};

/**
 * Owning value-semantic node set.  One inline word; adding a node id
 * >= 64 spills every word to a pooled block (monotonic growth, sized
 * to the largest id seen).  Equality is zero-extended, so an inline
 * set and a spilled set with the same members compare equal.
 */
class SharerSet
{
  public:
    SharerSet() = default;

    SharerSet(const SharerSet &o) { copyFrom(o.words(), o.numWords()); }

    SharerSet(SharerSet &&o) noexcept
        : inline_(o.inline_), ext_(o.ext_), extWords_(o.extWords_)
    {
        o.ext_ = nullptr;
        o.extWords_ = 0;
        o.inline_ = 0;
    }

    SharerSet &
    operator=(const SharerSet &o)
    {
        if (this != &o) {
            releaseExt();
            copyFrom(o.words(), o.numWords());
        }
        return *this;
    }

    SharerSet &
    operator=(SharerSet &&o) noexcept
    {
        if (this != &o) {
            releaseExt();
            inline_ = o.inline_;
            ext_ = o.ext_;
            extWords_ = o.extWords_;
            o.ext_ = nullptr;
            o.extWords_ = 0;
            o.inline_ = 0;
        }
        return *this;
    }

    ~SharerSet() { releaseExt(); }

    /** Copy the members of a borrowed view (used by migration). */
    static SharerSet
    fromRef(const SharerRef &r)
    {
        SharerSet s;
        s.copyFrom(r.words(), r.numWords());
        return s;
    }

    bool
    test(NodeId n) const
    {
        return sharer_words::test(words(), numWords(), n);
    }

    void
    add(NodeId n)
    {
        if (n >= numWords() * 64)
            grow((n >> 6) + 1);
        sharer_words::set(words(), n);
    }

    void
    remove(NodeId n)
    {
        sharer_words::reset(words(), numWords(), n);
    }

    void
    clear()
    {
        std::uint64_t *w = words();
        for (std::uint32_t i = 0, e = numWords(); i < e; ++i)
            w[i] = 0;
    }

    bool empty() const { return sharer_words::none(words(), numWords()); }

    std::uint32_t
    count() const
    {
        return sharer_words::count(words(), numWords());
    }

    NodeId first() const { return sharer_words::scan(words(), numWords(), 0); }

    NodeId
    next(NodeId after) const
    {
        return sharer_words::scan(words(), numWords(), after + 1);
    }

    std::uint64_t lowWord() const { return words()[0]; }

    std::string
    toString() const
    {
        return sharer_words::toString(words(), numWords());
    }

    SharerRef ref() { return SharerRef(words(), numWords()); }

    bool
    operator==(const SharerSet &o) const
    {
        const std::uint64_t *a = words(), *b = o.words();
        const std::uint32_t na = numWords(), nb = o.numWords();
        for (std::uint32_t i = 0, e = na > nb ? na : nb; i < e; ++i) {
            const std::uint64_t wa = i < na ? a[i] : 0;
            const std::uint64_t wb = i < nb ? b[i] : 0;
            if (wa != wb)
                return false;
        }
        return true;
    }

    bool operator!=(const SharerSet &o) const { return !(*this == o); }

    /** True while the set has never spilled past one word. */
    bool isInline() const { return ext_ == nullptr; }

    const std::uint64_t *words() const { return ext_ ? ext_ : &inline_; }
    std::uint64_t *words() { return ext_ ? ext_ : &inline_; }
    std::uint32_t numWords() const { return ext_ ? extWords_ : 1; }

  private:
    void copyFrom(const std::uint64_t *w, std::uint32_t nw);
    void grow(std::uint32_t want_words);

    void
    releaseExt()
    {
        if (ext_) {
            sharer_words::release(ext_, extWords_);
            ext_ = nullptr;
            extWords_ = 0;
        }
    }

    std::uint64_t inline_ = 0;   //!< word 0 while not spilled
    std::uint64_t *ext_ = nullptr; //!< all words once spilled
    std::uint32_t extWords_ = 0;
};

} // namespace prism

#endif // PRISM_COHERENCE_SHARER_SET_HH
