#include "coherence/directory.hh"

#include "sim/logging.hh"

namespace prism {

const char *
dirStateName(DirState s)
{
    switch (s) {
      case DirState::Uncached: return "U";
      case DirState::Shared: return "S";
      case DirState::Owned: return "O";
    }
    return "?";
}

Directory::Directory(std::uint32_t cache_entries, Cycles hit_cycles,
                     Cycles miss_cycles, std::uint32_t lines_per_page)
    : linesPerPage_(lines_per_page), hitCycles_(hit_cycles),
      missCycles_(miss_cycles), cacheTags_(cache_entries, ~0ULL)
{
    prism_assert((cache_entries & (cache_entries - 1)) == 0,
                 "directory cache entries must be a power of two");
}

void
Directory::createPage(GPage gp, DirState init, NodeId owner)
{
    prism_assert(!hasPage(gp), "directory page already present");
    std::vector<DirEntry> v(linesPerPage_);
    for (auto &e : v) {
        e.state = init;
        if (init == DirState::Owned) {
            e.owner = owner;
        } else if (init == DirState::Shared) {
            e.addSharer(owner);
        }
    }
    pages_.emplace(gp, std::move(v));
}

void
Directory::removePage(GPage gp)
{
    pages_.erase(gp);
}

void
Directory::adoptPage(GPage gp, std::vector<DirEntry> entries)
{
    prism_assert(!hasPage(gp), "adopting an already-present page");
    prism_assert(entries.size() == linesPerPage_, "bad adopted page size");
    pages_.emplace(gp, std::move(entries));
}

std::vector<DirEntry>
Directory::releasePage(GPage gp)
{
    auto it = pages_.find(gp);
    prism_assert(it != pages_.end(), "releasing an absent page");
    std::vector<DirEntry> out = std::move(it->second);
    pages_.erase(it);
    return out;
}

DirEntry *
Directory::line(GPage gp, std::uint32_t idx)
{
    auto it = pages_.find(gp);
    if (it == pages_.end())
        return nullptr;
    prism_assert(idx < it->second.size(), "directory line index OOB");
    return &it->second[idx];
}

const DirEntry *
Directory::line(GPage gp, std::uint32_t idx) const
{
    return const_cast<Directory *>(this)->line(gp, idx);
}

std::vector<DirEntry> *
Directory::page(GPage gp)
{
    auto it = pages_.find(gp);
    return it == pages_.end() ? nullptr : &it->second;
}

Cycles
Directory::access(GLine gl)
{
    ++lookups_;
    const std::size_t idx = gl & (cacheTags_.size() - 1);
    if (cacheTags_[idx] == gl) {
        ++cacheHits_;
        return hitCycles_;
    }
    cacheTags_[idx] = gl;
    return missCycles_;
}

} // namespace prism
