#include "coherence/directory.hh"

#include <cstring>

namespace prism {

const char *
dirStateName(DirState s)
{
    switch (s) {
      case DirState::Uncached: return "U";
      case DirState::Shared: return "S";
      case DirState::Owned: return "O";
    }
    return "?";
}

Directory::Directory(std::uint32_t cache_entries, Cycles hit_cycles,
                     Cycles miss_cycles, std::uint32_t lines_per_page,
                     std::uint32_t num_nodes)
    : linesPerPage_(lines_per_page),
      wordsPerLine_((num_nodes + 63) / 64), hitCycles_(hit_cycles),
      missCycles_(miss_cycles), cacheTags_(cache_entries, ~0ULL)
{
    prism_assert((cache_entries & (cache_entries - 1)) == 0,
                 "directory cache entries must be a power of two");
    prism_assert(num_nodes >= 1, "directory needs at least one node");
}

std::uint32_t
Directory::allocSlot()
{
    if (freeSlots_.empty()) {
        auto c = std::make_unique<Chunk>();
        const std::size_t lines =
            static_cast<std::size_t>(kChunkPages) * linesPerPage_;
        c->state.assign(lines, 0);
        c->owner.assign(lines, kInvalidNode);
        c->words.assign(lines * wordsPerLine_, 0);
        c->gen.assign(kChunkPages, 0);
        const std::uint32_t base =
            static_cast<std::uint32_t>(chunks_.size()) * kChunkPages;
        chunks_.push_back(std::move(c));
        // LIFO freelist: hand out low slots first.
        for (std::uint32_t i = kChunkPages; i-- > 0;)
            freeSlots_.push_back(base + i);
    }
    const std::uint32_t slot = freeSlots_.back();
    freeSlots_.pop_back();
    return slot;
}

void
Directory::createPage(GPage gp, DirState init, NodeId owner)
{
    prism_assert(!hasPage(gp), "directory page already present");
    const std::uint32_t slot = allocSlot();
    slots_.emplace(gp, slot);
    Chunk &c = *chunks_[slot / kChunkPages];
    const std::uint32_t base = (slot % kChunkPages) * linesPerPage_;
    for (std::uint32_t i = 0; i < linesPerPage_; ++i) {
        c.state[base + i] = static_cast<std::uint8_t>(init);
        c.owner[base + i] =
            init == DirState::Owned ? owner : kInvalidNode;
        std::uint64_t *w = &c.words[(base + i) * wordsPerLine_];
        std::memset(w, 0, wordsPerLine_ * sizeof(std::uint64_t));
        if (init == DirState::Shared)
            sharer_words::set(w, owner);
    }
}

void
Directory::removePage(GPage gp)
{
    auto it = slots_.find(gp);
    if (it == slots_.end())
        return;
    ++slotGen(it->second); // invalidate outstanding handles
    freeSlots_.push_back(it->second);
    slots_.erase(it);
}

void
Directory::adoptPage(GPage gp, const std::vector<DirEntry> &entries)
{
    prism_assert(!hasPage(gp), "adopting an already-present page");
    prism_assert(entries.size() == linesPerPage_, "bad adopted page size");
    const std::uint32_t slot = allocSlot();
    slots_.emplace(gp, slot);
    Chunk &c = *chunks_[slot / kChunkPages];
    const std::uint32_t base = (slot % kChunkPages) * linesPerPage_;
    for (std::uint32_t i = 0; i < linesPerPage_; ++i) {
        const DirEntry &e = entries[i];
        c.state[base + i] = static_cast<std::uint8_t>(e.state);
        c.owner[base + i] = e.owner;
        std::uint64_t *w = &c.words[(base + i) * wordsPerLine_];
        const std::uint64_t *src = e.sharers.words();
        const std::uint32_t src_nw = e.sharers.numWords();
        for (std::uint32_t j = 0; j < wordsPerLine_; ++j)
            w[j] = j < src_nw ? src[j] : 0;
        for (std::uint32_t j = wordsPerLine_; j < src_nw; ++j) {
            prism_assert(src[j] == 0,
                         "adopted sharer set exceeds machine width");
        }
    }
}

std::vector<DirEntry>
Directory::releasePage(GPage gp)
{
    auto it = slots_.find(gp);
    prism_assert(it != slots_.end(), "releasing an absent page");
    const std::uint32_t slot = it->second;
    std::vector<DirEntry> out(linesPerPage_);
    for (std::uint32_t i = 0; i < linesPerPage_; ++i)
        out[i] = lineRef(slot, i).toEntry();
    ++slotGen(slot);
    freeSlots_.push_back(slot);
    slots_.erase(it);
    return out;
}

Directory::LineRef
Directory::line(GPage gp, std::uint32_t idx)
{
    auto it = slots_.find(gp);
    if (it == slots_.end())
        return LineRef();
    prism_assert(idx < linesPerPage_, "directory line index OOB");
    return lineRef(it->second, idx);
}

Directory::PageRef
Directory::page(GPage gp)
{
    auto it = slots_.find(gp);
    return it == slots_.end() ? PageRef() : PageRef(this, it->second);
}

Cycles
Directory::access(GLine gl)
{
    ++lookups_;
    const std::size_t idx = gl & (cacheTags_.size() - 1);
    if (cacheTags_[idx] == gl) {
        ++cacheHits_;
        return hitCycles_;
    }
    cacheTags_[idx] = gl;
    return missCycles_;
}

} // namespace prism
