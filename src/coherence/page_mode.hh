/**
 * @file
 * Page frame modes (paper Section 3.2).
 *
 * A mode is associated with every page frame and dictates how the
 * coherence controller handles bus transactions on that frame, as well
 * as which coherence protocol runs.
 */

#ifndef PRISM_COHERENCE_PAGE_MODE_HH
#define PRISM_COHERENCE_PAGE_MODE_HH

#include <cstdint>

namespace prism {

/** The behaviour the controller applies to a page frame. */
enum class PageMode : std::uint8_t {
    /** Private local memory; the controller takes no action. */
    Local,
    /**
     * Real frame used as a page cache for a globally shared page;
     * the controller consults per-line fine-grain tags.
     */
    Scoma,
    /**
     * Imaginary frame backing no memory; the controller acts as the
     * memory and fetches every line from the page's home node
     * (Locally-Addressable NUMA — CC-NUMA behaviour without global
     * physical addresses).
     */
    LaNuma,
    /**
     * Extension (Section 3.2): true CC-NUMA frame whose accesses
     * bypass the PIT; physical addresses directly identify home
     * memory.  Modeled as LA-NUMA with zero translation overhead and
     * no fault-containment firewall.
     */
    CcNuma,
    /**
     * Memory-mapped command interface between the local processors
     * and the coherence controller, used by the OS during paging.
     */
    Command,
};

/** Human-readable mode name. */
inline const char *
pageModeName(PageMode m)
{
    switch (m) {
      case PageMode::Local: return "local";
      case PageMode::Scoma: return "s-coma";
      case PageMode::LaNuma: return "la-numa";
      case PageMode::CcNuma: return "cc-numa";
      case PageMode::Command: return "command";
    }
    return "?";
}

/** True for modes that back a globally shared page at a client/home. */
inline bool
isGlobalMode(PageMode m)
{
    return m == PageMode::Scoma || m == PageMode::LaNuma ||
           m == PageMode::CcNuma;
}

} // namespace prism

#endif // PRISM_COHERENCE_PAGE_MODE_HH
