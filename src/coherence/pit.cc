#include "coherence/pit.hh"

#include "sim/logging.hh"

namespace prism {

PitEntry &
Pit::install(FrameNum frame, GPage gpage, NodeId static_home,
             NodeId dyn_home, FrameNum home_frame_hint, PageMode mode,
             std::uint32_t lines_per_page, FgTag init_tag)
{
    prism_assert(byFrame_.find(frame) == byFrame_.end(),
                 "PIT entry already present for frame %llu",
                 static_cast<unsigned long long>(frame));
    PitEntry &e = byFrame_[frame];
    e.gpage = gpage;
    e.staticHome = static_home;
    e.dynHome = dyn_home;
    e.homeFrameHint = home_frame_hint;
    e.mode = mode;
    e.accessed = std::make_unique<LineMask>(lines_per_page);
    if (mode == PageMode::Scoma)
        e.tags = std::make_unique<FrameTags>(lines_per_page, init_tag);
    if (gpage != kInvalidGPage)
        byPage_[gpage] = frame;
    return e;
}

PitEntry &
Pit::installLocal(FrameNum frame, std::uint32_t lines_per_page)
{
    return install(frame, kInvalidGPage, kInvalidNode, kInvalidNode,
                   kInvalidFrame, PageMode::Local, lines_per_page,
                   FgTag::Invalid);
}

void
Pit::remove(FrameNum frame)
{
    auto it = byFrame_.find(frame);
    prism_assert(it != byFrame_.end(), "removing absent PIT entry");
    if (it->second.gpage != kInvalidGPage)
        byPage_.erase(it->second.gpage);
    byFrame_.erase(it);
}

PitEntry *
Pit::entry(FrameNum frame)
{
    auto it = byFrame_.find(frame);
    return it == byFrame_.end() ? nullptr : &it->second;
}

const PitEntry *
Pit::entry(FrameNum frame) const
{
    auto it = byFrame_.find(frame);
    return it == byFrame_.end() ? nullptr : &it->second;
}

FrameNum
Pit::reverse(GPage gpage, FrameNum hint, bool &hash_used) const
{
    hash_used = false;
    if (hint != kInvalidFrame) {
        auto it = byFrame_.find(hint);
        if (it != byFrame_.end() && it->second.gpage == gpage)
            return hint;
    }
    hash_used = true;
    auto it = byPage_.find(gpage);
    return it == byPage_.end() ? kInvalidFrame : it->second;
}

bool
Pit::writeAllowed(FrameNum frame, NodeId node) const
{
    const PitEntry *e = entry(frame);
    if (!e || e->capabilities.empty())
        return true;
    return e->capabilities.test(node);
}

std::vector<FrameNum>
Pit::allFrames() const
{
    std::vector<FrameNum> out;
    out.reserve(byFrame_.size());
    for (const auto &[frame, e] : byFrame_)
        out.push_back(frame);
    return out;
}

std::vector<FrameNum>
Pit::globalFrames() const
{
    std::vector<FrameNum> out;
    out.reserve(byFrame_.size());
    for (const auto &[frame, e] : byFrame_) {
        if (e.gpage != kInvalidGPage)
            out.push_back(frame);
    }
    return out;
}

} // namespace prism
