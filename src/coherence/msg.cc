#include "coherence/msg.hh"

namespace prism {

const char *
msgTypeName(MsgType t)
{
    switch (t) {
      case MsgType::ReqS: return "ReqS";
      case MsgType::ReqX: return "ReqX";
      case MsgType::Upgrade: return "Upgrade";
      case MsgType::Writeback: return "Writeback";
      case MsgType::ReplaceHint: return "ReplaceHint";
      case MsgType::Data: return "Data";
      case MsgType::UpgAck: return "UpgAck";
      case MsgType::Inv: return "Inv";
      case MsgType::Fetch: return "Fetch";
      case MsgType::DataFwd: return "DataFwd";
      case MsgType::XferNotice: return "XferNotice";
      case MsgType::FetchNack: return "FetchNack";
      case MsgType::InvAck: return "InvAck";
      case MsgType::PageInReq: return "PageInReq";
      case MsgType::PageInRep: return "PageInRep";
      case MsgType::PageOutNotice: return "PageOutNotice";
      case MsgType::PageOutNoticeAck: return "PageOutNoticeAck";
      case MsgType::HomePageOutReq: return "HomePageOutReq";
      case MsgType::HomePageOutAck: return "HomePageOutAck";
      case MsgType::MigrateReq: return "MigrateReq";
      case MsgType::MigratePrep: return "MigratePrep";
      case MsgType::MigrateData: return "MigrateData";
      case MsgType::MigrateDone: return "MigrateDone";
    }
    return "?";
}

bool
isKernelMsg(MsgType t)
{
    switch (t) {
      case MsgType::PageInReq:
      case MsgType::PageInRep:
      case MsgType::PageOutNotice:
      case MsgType::PageOutNoticeAck:
      case MsgType::HomePageOutReq:
      case MsgType::HomePageOutAck:
        return true;
      default:
        return false;
    }
}

MsgSize
Msg::sizeClass() const
{
    switch (type) {
      case MsgType::Data:
      case MsgType::DataFwd:
        return MsgSize::Data;
      case MsgType::Writeback:
      case MsgType::XferNotice:
        return dirty ? MsgSize::Data : MsgSize::Control;
      case MsgType::MigrateData:
        return MsgSize::Page;
      default:
        return MsgSize::Control;
    }
}

} // namespace prism
