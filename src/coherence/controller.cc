#include "coherence/controller.hh"

#include <utility>

#include "check/oracle.hh"
#include "core/env.hh"
#include "obs/trace_sink.hh"
#include "sim/stats.hh"
#include <cstdlib>

namespace prism {

namespace {
// Trace filter from the environment, read once.  The function-local
// statics are const after their (thread-safe, C++11 magic-static)
// initialization, so concurrent Machines may call this freely.
bool traceMatch(GPage gp, std::uint32_t li) {
    static const char *const env = resolveEnv("PRISM_TRACE_GPAGE");
    static const unsigned long long g = env ? strtoull(env, nullptr, 16) : 0;
    static const char *const env2 = resolveEnv("PRISM_TRACE_LI");
    static const unsigned long long l =
        env2 ? strtoull(env2, nullptr, 10) : ~0ULL;
    return env && gp == g && (l == ~0ULL || li == l);
}
#define TRC(gp, li, ...) do { if (traceMatch(gp, li)) { ::prism::warn(__VA_ARGS__); } } while (0)
}


CoherenceController::CoherenceController(
    NodeId self, const MachineConfig &cfg, EventQueue &eq, Dram &dram,
    ControllerHost &host, std::function<NodeId(GPage)> static_home_of,
    std::function<void(Msg &&)> send)
    : self_(self), cfg_(cfg), eq_(eq), dram_(dram), host_(host),
      staticHomeOf_(std::move(static_home_of)), sendFn_(std::move(send)),
      geo_(cfg.lineBytes),
      pit_(cfg.pitLatency, cfg.pitHashExtra),
      dir_(cfg.dirCacheEntries, cfg.dirCacheHit, cfg.dirCacheMiss,
           geo_.linesPerPage(), cfg.numNodes),
      mutationBudget_(cfg.mutationSkipInvals)
{
}

DelayAwaiter
CoherenceController::occupy(Cycles c)
{
    Tick start = ctrlRes_.acquire(eq_.now(), c);
    return DelayAwaiter(eq_, start + c - eq_.now());
}

DelayAwaiter
CoherenceController::dramAccess()
{
    Tick done = dram_.access(eq_.now());
    return DelayAwaiter(eq_, done - eq_.now());
}

void
CoherenceController::send(Msg &&m)
{
    m.src = self_;
    sendFn_(std::move(m));
}

void
CoherenceController::forward(Msg &&m)
{
    ++stats_.forwards;
    NodeId target;
    auto moved = movedTo_.find(m.gpage);
    if (moved != movedTo_.end()) {
        target = moved->second;
    } else if (staticHomeOf_(m.gpage) == self_) {
        auto r = registry_.find(m.gpage);
        prism_assert(r != registry_.end(),
                     "static home has no registry entry for forwarded msg");
        target = r->second;
        prism_assert(target != self_, "registry points at a node "
                     "without the directory page");
    } else {
        target = staticHomeOf_(m.gpage);
    }
    m.dst = target;
    send(std::move(m));
}

CoMutex &
CoherenceController::lineLock(GPage gpage, std::uint32_t line_idx)
{
    auto &v = locks_[gpage];
    if (v.empty()) {
        v.reserve(geo_.linesPerPage());
        for (std::uint32_t i = 0; i < geo_.linesPerPage(); ++i)
            v.push_back(std::make_unique<CoMutex>(eq_));
    }
    return *v[line_idx];
}

bool
CoherenceController::homePageQuiescent(GPage gpage) const
{
    auto it = locks_.find(gpage);
    if (it != locks_.end()) {
        for (const auto &l : it->second) {
            if (l->held())
                return false;
        }
    }
    for (const auto &[gl, wait] : homeWaits_) {
        if (geo_.pageOf(gl) == gpage)
            return false;
    }
    return true;
}

NodeId
CoherenceController::registryLookup(GPage gpage) const
{
    auto it = registry_.find(gpage);
    return it == registry_.end() ? kInvalidNode : it->second;
}

// ---------------------------------------------------------------------
// Processor side
// ---------------------------------------------------------------------

CoTask
CoherenceController::serviceMiss(FrameNum frame, std::uint32_t line_idx,
                                 bool for_write, bool local_copy,
                                 MissResult *out)
{
    PitEntry *e = pit_.entry(frame);
    if (!e) {
        // The mapping was paged out between the requester's address
        // translation and this point; bounce so it re-translates
        // (and re-faults) with fresh state.
        out->source = MissSource::BadFrame;
        co_return;
    }
    e->lastAccess = eq_.now();
    e->accessed->set(line_idx);

    switch (e->mode) {
      case PageMode::Local: {
        // The controller takes no action; local memory services the
        // line under the bus protocol.
        co_await dramAccess();
        ++stats_.localMemHits;
        out->source = MissSource::LocalMem;
        out->exclusive = true;
        co_return;
      }
      case PageMode::Scoma: {
        co_await delay(pit_.forwardCycles()); // consult mode + tags
        FgTag tag = e->tags->get(line_idx);
        if (tag == FgTag::Transit) {
            ++stats_.retries;
            out->source = MissSource::Retry;
            co_return;
        }
        if (tag == FgTag::Exclusive ||
            (tag == FgTag::Shared && !for_write)) {
            TRC(e->gpage, line_idx, "n%u localmem w=%d tag=%s t=%llu",
                self_, (int)for_write, fgTagName(tag),
                (unsigned long long)eq_.now());
            // Page cache supplies the line locally.
            co_await dramAccess();
            ++stats_.localMemHits;
            out->source = MissSource::LocalMem;
            out->exclusive = (tag == FgTag::Exclusive);
            co_return;
        }
        GLine gl = geo_.lineOf(e->gpage, line_idx);
        if (pending_.count(gl)) {
            ++stats_.retries;
            out->source = MissSource::Retry;
            co_return;
        }
        // Shared+write upgrades (data already local); Invalid fetches.
        MsgType mt = for_write
                         ? (tag == FgTag::Shared ? MsgType::Upgrade
                                                 : MsgType::ReqX)
                         : MsgType::ReqS;
        TRC(e->gpage, line_idx, "n%u scoma txn %s tag=%s t=%llu", self_,
            msgTypeName(mt), fgTagName(tag),
            (unsigned long long)eq_.now());
        e->tags->set(line_idx, FgTag::Transit);
        bool poisoned = false;
        co_await runClientTxn(mt, *e, frame, line_idx, out, &poisoned);
        if (poisoned) {
            TRC(e->gpage, line_idx, "n%u scoma txn poisoned t=%llu", self_,
                (unsigned long long)eq_.now());
            // A racing invalidation voided the shared grant.
            e->tags->set(line_idx, FgTag::Invalid);
            ++stats_.retries;
            out->source = MissSource::Retry;
            co_return;
        }
        TRC(e->gpage, line_idx, "n%u scoma txn done excl=%d t=%llu", self_,
            (int)out->exclusive, (unsigned long long)eq_.now());
        e->tags->set(line_idx,
                     out->exclusive ? FgTag::Exclusive : FgTag::Shared);
        co_return;
      }
      case PageMode::LaNuma:
      case PageMode::CcNuma: {
        if (e->mode == PageMode::LaNuma)
            co_await delay(pit_.forwardCycles());
        const GPage gpage = e->gpage; // e may be stale after the txn
        GLine gl = geo_.lineOf(gpage, line_idx);
        if (pending_.count(gl)) {
            ++stats_.retries;
            out->source = MissSource::Retry;
            co_return;
        }
        if (fillPending_.count(gl)) {
            // Granted to another local processor; its fill is still in
            // flight on the bus.
            ++stats_.retries;
            out->source = MissSource::Retry;
            co_return;
        }
        MsgType mt = for_write ? (local_copy ? MsgType::Upgrade
                                             : MsgType::ReqX)
                               : MsgType::ReqS;
        TRC(gpage, line_idx, "n%u lanuma txn %s t=%llu", self_,
            msgTypeName(mt), (unsigned long long)eq_.now());
        bool poisoned = false;
        co_await runClientTxn(mt, *e, frame, line_idx, out, &poisoned);
        if (poisoned) {
            ++stats_.retries;
            out->source = MissSource::Retry;
            co_return;
        }
        // Hold a fill token until the bus fill completes so no second
        // transaction (or stale fill) can slip into the window.
        if (fillPending_.emplace(gl, FillToken{}).second)
            pendingPageAdd(gpage);
        co_return;
      }
      case PageMode::Command:
        panic("serviceMiss on a command-mode frame");
    }
}

CoTask
CoherenceController::runClientTxn(MsgType mt, PitEntry &e, FrameNum frame,
                                  std::uint32_t line_idx, MissResult *out,
                                  bool *poisoned)
{
    GLine gl = geo_.lineOf(e.gpage, line_idx);
    ClientTxn txn(eq_);
    pending_[gl] = &txn;
    pendingPageAdd(e.gpage);

    const Tick t0 = eq_.now();
    co_await occupy(cfg_.ctrlOverhead); // compose request, dispatch

    Msg m;
    m.type = mt;
    m.dst = e.dynHome;
    m.gpage = e.gpage;
    m.lineIdx = line_idx;
    m.requester = self_;
    m.requesterFrame = frame;
    m.dstFrameHint = e.homeFrameHint;
    send(std::move(m));

    const GPage gpage = e.gpage;
    co_await txn.latch.wait();
    pending_.erase(gl);
    pendingPageRemove(gpage);

    // `e` may be stale: while the transaction was in flight the page
    // can migrate TO this node, and adopting a LA-NUMA mapping retires
    // its imaginary frame (handleMigrateData removes the PIT entry).
    // Re-translate and only update hints if the same mapping is still
    // installed; the hints are advisory, so skipping them is safe.
    PitEntry *cur = pit_.entry(frame);
    if (cur && cur->gpage != gpage)
        cur = nullptr;
    if (cur) {
        if (txn.dynHome != kInvalidNode)
            cur->dynHome = txn.dynHome;
        if (txn.homeFrame != kInvalidFrame)
            cur->homeFrameHint = txn.homeFrame;
    }

    const char *txn_kind;
    if (txn.dataFetched) {
        ++stats_.remoteMisses;
        eq_.snapNote(SnapKind::RemoteMiss);
        ScopedHistogram &h =
            txn.threeParty ? latency_.read3 : latency_.read2;
        h.sample(eq_.now() - t0);
        txn_kind = txn.threeParty ? "read3" : "read2";
        if (cur) {
            ++cur->remoteFetches;
            if (cur->mode == PageMode::Scoma)
                dram_.access(eq_.now()); // copy into the page cache
        }
    } else {
        ++stats_.upgrades;
        eq_.snapNote(SnapKind::Upgrade);
        latency_.upgrade.sample(eq_.now() - t0);
        txn_kind = "upgrade";
    }
    if (trace_) {
        trace_->span(txn_kind, "coherence", static_cast<std::int32_t>(self_),
                     static_cast<std::int32_t>(line_idx), t0, eq_.now());
    }
    out->source = MissSource::Remote;
    out->exclusive = txn.exclusive;
    // An exclusive grant supersedes any invalidation of the old copy;
    // a shared grant raced by an invalidation is void.
    *poisoned = txn.invalidatedMidFlight && !txn.exclusive;
}

bool
CoherenceController::finishFill(FrameNum frame, std::uint32_t line_idx,
                                Mesi intended)
{
    PitEntry *e = pit_.entry(frame);
    if (!e)
        return false;
    switch (e->mode) {
      case PageMode::Local:
      case PageMode::Command:
        return true;
      case PageMode::Scoma: {
        const FgTag tag = e->tags->get(line_idx);
        TRC(e->gpage, line_idx, "n%u finishFill want=%s tag=%s t=%llu",
            self_, mesiName(intended), fgTagName(tag),
            (unsigned long long)eq_.now());
        if (ownerClass(intended))
            return tag == FgTag::Exclusive;
        return tag != FgTag::Invalid;
      }
      case PageMode::LaNuma:
      case PageMode::CcNuma: {
        GLine gl = geo_.lineOf(e->gpage, line_idx);
        auto it = fillPending_.find(gl);
        if (it == fillPending_.end())
            return true; // peer-supplied fill; validated by the caller
        const bool ok = !it->second.invalidated;
        fillPending_.erase(it);
        pendingPageRemove(e->gpage);
        return ok;
      }
    }
    return true;
}

void
CoherenceController::evictLine(FrameNum frame, std::uint32_t line_idx,
                               Mesi victim_state)
{
    PitEntry *e = pit_.entry(frame);
    if (!e)
        return; // frame being torn down
    switch (e->mode) {
      case PageMode::Local:
      case PageMode::Scoma:
      case PageMode::Command:
        if (dirtyLine(victim_state))
            dram_.access(eq_.now()); // write back into local memory
        return;
      case PageMode::LaNuma:
      case PageMode::CcNuma:
        TRC(e->gpage, line_idx, "n%u evict %s t=%llu", self_,
            mesiName(victim_state), (unsigned long long)eq_.now());
        if (dirtyLine(victim_state)) {
            Msg wb;
            wb.type = MsgType::Writeback;
            wb.dst = e->dynHome;
            wb.gpage = e->gpage;
            wb.lineIdx = line_idx;
            wb.dstFrameHint = e->homeFrameHint;
            wb.dirty = true;
            // An evicted Owned line may leave peer Shared copies
            // behind on this node's bus: the node stays a sharer.
            wb.keepShared = victim_state == Mesi::Owned &&
                            host_.lineCached(frame, line_idx);
            wb.requester = self_;
            ++stats_.writebacksSent;
            send(std::move(wb));
        } else if (victim_state == Mesi::Exclusive) {
            // A silent clean-exclusive drop would leave the full-map
            // directory believing we still own the line.
            Msg h;
            h.type = MsgType::ReplaceHint;
            h.dst = e->dynHome;
            h.gpage = e->gpage;
            h.lineIdx = line_idx;
            h.dstFrameHint = e->homeFrameHint;
            h.requester = self_;
            ++stats_.replaceHintsSent;
            send(std::move(h));
        }
        return;
    }
}

void
CoherenceController::reflectDowngrade(FrameNum frame, std::uint32_t line_idx,
                                      bool dirty)
{
    PitEntry *e = pit_.entry(frame);
    if (!e)
        return;
    if (e->mode == PageMode::LaNuma || e->mode == PageMode::CcNuma) {
        TRC(e->gpage, line_idx, "n%u reflectDowngrade dirty=%d t=%llu",
            self_, (int)dirty, (unsigned long long)eq_.now());
        Msg wb;
        wb.type = MsgType::Writeback;
        wb.dst = e->dynHome;
        wb.gpage = e->gpage;
        wb.lineIdx = line_idx;
        wb.dstFrameHint = e->homeFrameHint;
        wb.dirty = dirty;
        wb.keepShared = true;
        wb.requester = self_;
        ++stats_.writebacksSent;
        send(std::move(wb));
    } else if (dirty) {
        dram_.access(eq_.now()); // reflect into local memory
    }
}

// ---------------------------------------------------------------------
// Kernel command interface
// ---------------------------------------------------------------------

void
CoherenceController::installLocalMapping(FrameNum frame)
{
    pit_.installLocal(frame, geo_.linesPerPage());
}

void
CoherenceController::installClientMapping(FrameNum frame, GPage gpage,
                                          NodeId static_home,
                                          NodeId dyn_home,
                                          FrameNum home_frame, PageMode mode)
{
    prism_assert(mode == PageMode::Scoma || mode == PageMode::LaNuma ||
                     mode == PageMode::CcNuma,
                 "client mapping must be a global mode");
    pit_.install(frame, gpage, static_home, dyn_home, home_frame, mode,
                 geo_.linesPerPage(), FgTag::Invalid);
}

void
CoherenceController::installHomeMapping(FrameNum frame, GPage gpage)
{
    pit_.install(frame, gpage, staticHomeOf_(gpage), self_, frame,
                 PageMode::Scoma, geo_.linesPerPage(), FgTag::Exclusive);
    dir_.createPage(gpage, DirState::Owned, self_);
    lineLock(gpage, 0); // materialize the lock vector
    HomeMeta &hm = homeMeta_[gpage];
    hm.homeFrame = frame;
    hm.accessesByNode.assign(cfg_.numNodes, 0);
    hm.totalAccesses = 0;
    hm.migrating = false;
    if (staticHomeOf_(gpage) == self_)
        registry_[gpage] = self_;
    movedTo_.erase(gpage);
    if (oracle_)
        oracle_->onHomeInstall(self_, gpage);
}

CoTask
CoherenceController::flushClientPage(FrameNum frame, std::uint64_t *wb_lines)
{
    PitEntry *e = pit_.entry(frame);
    prism_assert(e && e->gpage != kInvalidGPage,
                 "flushing a frame that maps no global page");

    // Wait for outstanding transactions on this page to settle:
    // controller-level (Transit tags, client transactions, pending
    // fills) and bus-level (in-flight node transactions, including
    // cache-to-cache fills that never reach the controller).
    for (;;) {
        const bool busy = (e->tags && e->tags->anyTransit()) ||
                          host_.anyBusPending(frame) ||
                          pendingByPage_.count(e->gpage) != 0;
        if (!busy)
            break;
        co_await delay(cfg_.retryDelay);
    }

    std::uint64_t wrote = 0;
    for (std::uint32_t i = 0; i < geo_.linesPerPage(); ++i) {
        if (e->mode == PageMode::Scoma) {
            FgTag tag = e->tags->get(i);
            TRC(e->gpage, i, "n%u flush line tag=%s t=%llu", self_,
                fgTagName(tag), (unsigned long long)eq_.now());
            if (tag == FgTag::Invalid)
                continue;
            auto r = host_.intervene(frame, i, true, eq_.now());
            e->tags->set(i, FgTag::Invalid);
            if (r.done > eq_.now())
                co_await DelayAwaiter(eq_, r.done - eq_.now());
            if (r.dirty)
                dram_.access(eq_.now()); // collect into the page cache
            if (tag == FgTag::Exclusive) {
                co_await dramAccess(); // read the line for writeback
                Msg wb;
                wb.type = MsgType::Writeback;
                wb.dst = e->dynHome;
                wb.gpage = e->gpage;
                wb.lineIdx = i;
                wb.dstFrameHint = e->homeFrameHint;
                wb.dirty = true;
                wb.requester = self_;
                ++stats_.writebacksSent;
                ++wrote;
                send(std::move(wb));
            }
        } else {
            auto r = host_.intervene(frame, i, true, eq_.now());
            if (r.done > eq_.now())
                co_await DelayAwaiter(eq_, r.done - eq_.now());
            if (!r.found)
                continue;
            if (r.dirty) {
                Msg wb;
                wb.type = MsgType::Writeback;
                wb.dst = e->dynHome;
                wb.gpage = e->gpage;
                wb.lineIdx = i;
                wb.dstFrameHint = e->homeFrameHint;
                wb.dirty = true;
                wb.requester = self_;
                ++stats_.writebacksSent;
                ++wrote;
                send(std::move(wb));
            } else if (r.exclusive) {
                Msg h;
                h.type = MsgType::ReplaceHint;
                h.dst = e->dynHome;
                h.gpage = e->gpage;
                h.lineIdx = i;
                h.dstFrameHint = e->homeFrameHint;
                h.requester = self_;
                ++stats_.replaceHintsSent;
                send(std::move(h));
            }
        }
    }
    if (wb_lines)
        *wb_lines = wrote;
}

void
CoherenceController::removeClientMapping(FrameNum frame)
{
    pit_.remove(frame);
}

bool
CoherenceController::clientPageQuiescent(FrameNum frame) const
{
    const PitEntry *e = pit_.entry(frame);
    if (!e)
        return true;
    if (host_.anyBusPending(frame) || host_.anyCachedCopy(frame))
        return false;
    if (e->tags && (e->tags->count(FgTag::Invalid) != e->tags->lines()))
        return false;
    return pendingByPage_.count(e->gpage) == 0;
}

Cycles
CoherenceController::homeRemoveClient(GPage gpage, NodeId client)
{
    auto pg = dir_.page(gpage);
    prism_assert(pg, "homeRemoveClient on absent page");
    Cycles c = 0;
    for (std::uint32_t i = 0; i < pg.size(); ++i) {
        auto d = pg.line(i);
        c += cfg_.dirCacheHit; // sequential page walk mostly hits
        if (d.state() == DirState::Shared) {
            d.removeSharer(client);
            if (d.noSharers()) {
                d.setState(DirState::Uncached);
            }
        }
        // Owned(client) lines are left alone: the client's page-out
        // flush put a Writeback (or ReplaceHint) in flight before the
        // PageOutNotice, and pairwise-FIFO delivery means it is
        // already in our pipeline — it performs the Owned->Uncached
        // transition and carries the data.  Resetting the line here
        // instead would let a racing request read stale home memory
        // while the writeback is still paying its occupancy delays
        // (silent loss of the owner's last writes).  Until the
        // writeback lands, requests take the 3-party path and retry
        // on FetchNack.
    }
    return c;
}

void
CoherenceController::removeHomeMapping(FrameNum frame, GPage gpage)
{
    prism_assert(dir_.hasPage(gpage), "removeHomeMapping without dir page");
    if (oracle_) {
        // The kernel has flushed processor copies into the frame, so
        // lines we owned leave with the frame (= memory) current.
        auto pg = dir_.page(gpage);
        for (std::uint32_t i = 0; i < pg.size(); ++i) {
            auto d = pg.line(i);
            if (d.state() == DirState::Owned && d.owner() == self_)
                oracle_->onMigrateFlush(self_, gpage, i);
        }
    }
    dir_.removePage(gpage);
    homeMeta_.erase(gpage);
    pit_.remove(frame);
    if (staticHomeOf_(gpage) == self_) {
        registry_.erase(gpage);
    } else {
        Msg m;
        m.type = MsgType::MigrateDone;
        m.dst = staticHomeOf_(gpage);
        m.gpage = gpage;
        m.aux = 1; // erase-registry sentinel
        send(std::move(m));
    }
}

FrameNum
CoherenceController::mostInvalidFrame(
    const std::vector<FrameNum> &candidates) const
{
    FrameNum best = kInvalidFrame;
    std::uint32_t best_count = 0;
    for (FrameNum f : candidates) {
        const PitEntry *e = pit_.entry(f);
        if (!e || !e->tags || e->mode != PageMode::Scoma)
            continue;
        if (e->tags->anyTransit())
            continue; // paper: frames with Transit lines are skipped
        std::uint32_t inv = e->tags->count(FgTag::Invalid);
        if (best == kInvalidFrame || inv > best_count) {
            best = f;
            best_count = inv;
        }
    }
    return best;
}

// ---------------------------------------------------------------------
// Network side
// ---------------------------------------------------------------------

void
CoherenceController::onMessage(Msg m)
{
    switch (m.type) {
      case MsgType::ReqS:
      case MsgType::ReqX:
      case MsgType::Upgrade:
        handleHomeRequest(std::move(m));
        return;
      case MsgType::Writeback:
      case MsgType::ReplaceHint:
        handleWriteback(std::move(m));
        return;
      case MsgType::XferNotice:
      case MsgType::FetchNack: {
        GLine gl = geo_.lineOf(m.gpage, m.lineIdx);
        auto it = homeWaits_.find(gl);
        prism_assert(it != homeWaits_.end(),
                     "%s without a waiting home transaction",
                     msgTypeName(m.type));
        if (m.type == MsgType::FetchNack)
            it->second->nacked = true;
        else
            it->second->dirty = m.dirty;
        it->second->event.signal();
        return;
      }
      case MsgType::Data:
      case MsgType::UpgAck:
      case MsgType::DataFwd:
      case MsgType::InvAck:
        handleClientReply(std::move(m));
        return;
      case MsgType::Inv:
        handleClientInv(std::move(m));
        return;
      case MsgType::Fetch:
        handleClientFetch(std::move(m));
        return;
      case MsgType::MigrateReq: {
        auto it = registry_.find(m.gpage);
        if (it == registry_.end())
            return; // page gone; drop
        NodeId target = static_cast<NodeId>(m.aux);
        if (it->second == target)
            return;
        Msg prep;
        prep.type = MsgType::MigratePrep;
        prep.dst = it->second;
        prep.gpage = m.gpage;
        prep.aux = m.aux;
        send(std::move(prep));
        return;
      }
      case MsgType::MigratePrep:
        handleMigratePrep(std::move(m));
        return;
      case MsgType::MigrateData:
        handleMigrateData(std::move(m));
        return;
      case MsgType::MigrateDone:
        if (m.aux == 1)
            registry_.erase(m.gpage);
        else
            registry_[m.gpage] = m.src;
        return;
      default:
        panic("kernel message %s delivered to controller",
              msgTypeName(m.type));
    }
}

FireAndForget
CoherenceController::handleHomeRequest(Msg m)
{
    co_await occupy(cfg_.ctrlOverhead);
    if (!dir_.hasPage(m.gpage)) {
        forward(std::move(m));
        co_return;
    }
    ++stats_.homeRequests;
    noteHomeAccess(m.gpage, m.requester);
    if (cfg_.dirClientFrameHints &&
        m.requesterFrame != kInvalidFrame) {
        auto hm = homeMeta_.find(m.gpage);
        if (hm != homeMeta_.end()) {
            if (hm->second.clientFrames.empty()) {
                hm->second.clientFrames.assign(cfg_.numNodes,
                                               kInvalidFrame);
            }
            hm->second.clientFrames[m.requester] = m.requesterFrame;
        }
    }

    bool hash = false;
    FrameNum hf = pit_.reverse(m.gpage, m.dstFrameHint, hash);
    prism_assert(hf != kInvalidFrame, "home has dir page but no PIT entry");
    co_await delay(pit_.reverseCycles(hash));
    PitEntry *he = nullptr;

    const std::uint32_t li = m.lineIdx;
    const GLine gl = geo_.lineOf(m.gpage, li);
    CoMutex &lk = lineLock(m.gpage, li);
    co_await lk.acquire();

    // The page may have migrated away while we queued on the lock.
    if (!dir_.hasPage(m.gpage)) {
        lk.release();
        forward(std::move(m));
        co_return;
    }
    // Refresh the home-frame entry: paging activity while we queued
    // may have moved it.
    hf = pit_.frameOf(m.gpage);
    prism_assert(hf != kInvalidFrame, "home page lost its frame");
    he = pit_.entry(hf);
    // Remote requests touch the home frame's data: count the line as
    // accessed for the utilization statistics (Table 3).
    if (he->accessed)
        he->accessed->set(li);

    co_await delay(dir_.access(gl));
    auto d = dir_.line(m.gpage, li);
    const NodeId req = m.requester;
    const bool for_write = (m.type != MsgType::ReqS);
    TRC(m.gpage, li, "home%u req %s from n%u state=%s owner=%u sh=%s t=%llu",
        self_, msgTypeName(m.type), req, dirStateName(d.state()), d.owner(),
        d.sharers().toString().c_str(), (unsigned long long)eq_.now());

    for (;;) {
        if (d.state() == DirState::Uncached) {
            co_await dramAccess();
            Msg r;
            r.type = MsgType::Data;
            r.dst = req;
            r.gpage = m.gpage;
            r.lineIdx = li;
            r.requester = req;
            r.dstFrameHint = m.requesterFrame;
            r.homeFrame = hf;
            r.dynHome = self_;
            r.exclusive = true;
            d.setState(DirState::Owned);
            d.setOwner(req);
            d.clearSharers();
            if (oracle_)
                oracle_->onHomeGrantFromMemory(self_, m.gpage, li, req);
            send(std::move(r));
            break;
        }
        if (d.state() == DirState::Shared) {
            if (!for_write) {
                co_await dramAccess();
                Msg r;
                r.type = MsgType::Data;
                r.dst = req;
                r.gpage = m.gpage;
                r.lineIdx = li;
                r.requester = req;
                r.dstFrameHint = m.requesterFrame;
                r.homeFrame = hf;
                r.dynHome = self_;
                r.exclusive = false;
                d.addSharer(req);
                if (oracle_)
                    oracle_->onHomeGrantFromMemory(self_, m.gpage, li,
                                                   req);
                send(std::move(r));
                break;
            }
            // Write to a shared line: invalidate the other sharers.
            const bool req_was_sharer = d.isSharer(req);
            if (d.isSharer(self_) && self_ != req) {
                // Home's own copy is invalidated inline; mirror
                // handleClientInv and poison any racing local
                // transaction or pending fill for the line.
                auto pt = pending_.find(gl);
                if (pt != pending_.end())
                    pt->second->invalidatedMidFlight = true;
                auto ft = fillPending_.find(gl);
                if (ft != fillPending_.end())
                    ft->second.invalidated = true;
                // State changes are synchronous with the snoop; only
                // the timing is awaited afterwards.
                auto r = host_.intervene(hf, li, true, eq_.now());
                if (he->tags &&
                    he->tags->get(li) != FgTag::Transit) {
                    he->tags->set(li, FgTag::Invalid);
                }
                d.removeSharer(self_);
                if (oracle_)
                    oracle_->onInvalidate(self_, m.gpage, li);
                if (r.done > eq_.now())
                    co_await DelayAwaiter(eq_, r.done - eq_.now());
            }
            std::uint32_t acks = 0;
            // Snapshot the fan-out targets before the first suspension
            // point; members are visited in ascending node order, as
            // the old bitmask probe loop did.
            SharerSet rest = SharerSet::fromRef(d.sharers());
            rest.remove(req);
            rest.remove(self_);
            for (NodeId n = rest.first(); n != kInvalidNode;
                 n = rest.next(n)) {
                if (mutationBudget_ > 0) {
                    // Fault injection (oracle self-test): silently
                    // skip this invalidation.  The requester is told
                    // to expect one fewer ack, so the protocol
                    // proceeds with a stale sharer left behind.
                    --mutationBudget_;
                    continue;
                }
                // Serialized sends: the controller occupancy per
                // invalidation yields the paper's +80n latency slope.
                co_await occupy(cfg_.ctrlOverhead);
                Msg inv;
                inv.type = MsgType::Inv;
                inv.dst = n;
                inv.gpage = m.gpage;
                inv.lineIdx = li;
                inv.requester = req;
                if (cfg_.dirClientFrameHints) {
                    auto hm = homeMeta_.find(m.gpage);
                    if (hm != homeMeta_.end() &&
                        !hm->second.clientFrames.empty()) {
                        inv.dstFrameHint = hm->second.clientFrames[n];
                    }
                }
                ++acks;
                ++stats_.invalsSent;
                eq_.snapNote(SnapKind::InvalSent);
                send(std::move(inv));
            }
            if (m.type == MsgType::Upgrade && req_was_sharer) {
                Msg r;
                r.type = MsgType::UpgAck;
                r.dst = req;
                r.gpage = m.gpage;
                r.lineIdx = li;
                r.requester = req;
                r.homeFrame = hf;
                r.dynHome = self_;
                r.exclusive = true;
                r.ackCount = acks;
                if (oracle_)
                    oracle_->onHomeUpgradeGrant(self_, m.gpage, li, req);
                send(std::move(r));
            } else {
                co_await dramAccess();
                Msg r;
                r.type = MsgType::Data;
                r.dst = req;
                r.gpage = m.gpage;
                r.lineIdx = li;
                r.requester = req;
                r.dstFrameHint = m.requesterFrame;
                r.homeFrame = hf;
                r.dynHome = self_;
                r.exclusive = true;
                r.ackCount = acks;
                if (oracle_)
                    oracle_->onHomeGrantFromMemory(self_, m.gpage, li,
                                                   req);
                send(std::move(r));
            }
            d.setState(DirState::Owned);
            d.setOwner(req);
            d.clearSharers();
            break;
        }
        // Owned.
        if (d.owner() == req) {
            warn("owner==req: msg=%s req=%u home=%u gpage=%llx li=%u "
                 "sharers=%s",
                 msgTypeName(m.type), req, self_,
                 static_cast<unsigned long long>(m.gpage), li,
                 d.sharers().toString().c_str());
        }
        prism_assert(d.owner() != req,
                     "owner node re-requesting a line it owns");
        if (d.owner() == self_) {
            // If our own exclusive grant for this line is still in
            // flight (loopback reply not yet consumed), wait for it to
            // land — the remote-owner equivalent is the FetchNack
            // retry loop.  The grantee's reply needs no line lock, so
            // waiting here cannot deadlock.
            while (pending_.count(gl) || fillPending_.count(gl))
                co_await delay(cfg_.retryDelay);
            TRC(m.gpage, li, "home%u self-own intervene w=%d tag=%s t=%llu",
                self_, (int)for_write,
                he->tags ? fgTagName(he->tags->get(li)) : "-",
                (unsigned long long)eq_.now());
            // 2-party transaction with the home's own copy.  Tag and
            // directory changes are synchronous with the snoop.
            auto r = host_.intervene(hf, li, for_write, eq_.now());
            if (he->tags && he->tags->get(li) != FgTag::Transit) {
                he->tags->set(li,
                              for_write ? FgTag::Invalid : FgTag::Shared);
            }
            if (r.done > eq_.now())
                co_await DelayAwaiter(eq_, r.done - eq_.now());
            if (r.dirty)
                dram_.access(eq_.now()); // collect into memory
            co_await dramAccess(); // read for the reply
            Msg rep;
            rep.type = MsgType::Data;
            rep.dst = req;
            rep.gpage = m.gpage;
            rep.lineIdx = li;
            rep.requester = req;
            rep.dstFrameHint = m.requesterFrame;
            rep.homeFrame = hf;
            rep.dynHome = self_;
            rep.exclusive = for_write;
            if (for_write) {
                d.setState(DirState::Owned);
                d.setOwner(req);
                d.clearSharers();
            } else {
                d.setState(DirState::Shared);
                d.clearSharers();
                d.addSharer(self_);
                d.addSharer(req);
                d.setOwner(kInvalidNode);
            }
            if (oracle_)
                oracle_->onHomeServeSelfOwned(self_, m.gpage, li, req,
                                              for_write);
            send(std::move(rep));
            break;
        }
        // 3-party transaction: intervene at the remote owner.
        const NodeId owner = d.owner();
        HomeWait wait(eq_);
        homeWaits_[gl] = &wait;
        Msg f;
        f.type = MsgType::Fetch;
        f.dst = owner;
        f.gpage = m.gpage;
        f.lineIdx = li;
        f.requester = req;
        f.requesterFrame = m.requesterFrame;
        f.forWrite = for_write;
        f.homeFrame = hf;
        f.dynHome = self_;
        send(std::move(f));
        co_await wait.event.wait();
        homeWaits_.erase(gl);
        if (wait.nacked) {
            // The owner's writeback or replacement hint arrived before
            // the nack (FIFO links) and already updated the directory;
            // re-dispatch against the fresh state.
            co_await delay(dir_.access(gl));
            continue;
        }
        if (wait.dirty)
            dram_.access(eq_.now()); // sharing writeback into memory
        if (for_write) {
            d.setState(DirState::Owned);
            d.setOwner(req);
            d.clearSharers();
        } else {
            d.setState(DirState::Shared);
            d.clearSharers();
            d.addSharer(owner);
            d.addSharer(req);
            d.setOwner(kInvalidNode);
        }
        break;
    }
    lk.release();
    maybeTriggerMigration(m.gpage);
}

FireAndForget
CoherenceController::handleWriteback(Msg m)
{
    const Tick t0 = eq_.now();
    co_await occupy(cfg_.ctrlOverhead);
    if (!dir_.hasPage(m.gpage)) {
        forward(std::move(m));
        co_return;
    }
    bool hash = false;
    FrameNum hf = pit_.reverse(m.gpage, m.dstFrameHint, hash);
    co_await delay(pit_.reverseCycles(hash));
    // Forwarded writebacks (lazy migration) carry the owner identity
    // in `requester`.
    const NodeId owner_id =
        m.requester != kInvalidNode ? m.requester : m.src;
    // Memory firewall: a write-class action from a remote node is
    // checked against the PIT capability list (Section 3.2).
    if (hf != kInvalidFrame && owner_id != self_ &&
        !pit_.writeAllowed(hf, owner_id)) {
        pit_.noteRejectedWrite();
        ++stats_.firewallRejects;
        co_return;
    }
    if (!dir_.hasPage(m.gpage)) {
        // The page was paged out / migrated during the lookup delay.
        forward(std::move(m));
        co_return;
    }
    auto d = dir_.line(m.gpage, m.lineIdx);
    TRC(m.gpage, m.lineIdx, "home%u wb from n%u keepS=%d state=%s owner=%u t=%llu",
        self_, m.src, (int)m.keepShared, dirStateName(d.state()), d.owner(),
        (unsigned long long)eq_.now());
    if (d.state() == DirState::Owned && d.owner() == owner_id) {
        if (m.keepShared) {
            d.setState(DirState::Shared);
            d.clearSharers();
            d.addSharer(owner_id);
            d.setOwner(kInvalidNode);
        } else {
            d.setState(DirState::Uncached);
            d.setOwner(kInvalidNode);
            d.clearSharers();
        }
        if (m.dirty)
            dram_.access(eq_.now());
        if (oracle_)
            oracle_->onWritebackAccepted(self_, m.gpage, m.lineIdx,
                                         owner_id, m.dirty, m.keepShared);
    } else if (d.state() == DirState::Uncached && m.dirty) {
        // The owner's page-out flush races its own PageOutNotice: the
        // writeback is delivered first (pairwise FIFO) but pays the
        // controller occupancy and PIT-reverse delays before reading
        // the directory, while the kernel's homeRemoveClient runs at
        // notice delivery and has already reset the line to Uncached.
        // The data is still the latest value — collect it.  (A truly
        // stale writeback finds the line re-Owned by the next owner
        // and is dropped below: ownership can only move through this
        // serialized controller.)
        dram_.access(eq_.now());
        if (oracle_)
            oracle_->onWritebackAccepted(self_, m.gpage, m.lineIdx,
                                         owner_id, true, false);
    }
    // Otherwise the writeback is stale (ownership already moved); drop.
    latency_.writeback.sample(eq_.now() - t0);
    if (trace_) {
        trace_->span("writeback", "coherence",
                     static_cast<std::int32_t>(self_),
                     static_cast<std::int32_t>(m.lineIdx), t0, eq_.now());
    }
}

FireAndForget
CoherenceController::handleClientInv(Msg m)
{
    co_await occupy(cfg_.ctrlOverhead);
    ++stats_.invalsReceived;
    TRC(m.gpage, m.lineIdx, "n%u inv t=%llu", self_,
        (unsigned long long)eq_.now());
    // Poison any racing client transaction / pending fill for this
    // line: a shared grant in flight must not install a stale copy.
    {
        GLine gl = geo_.lineOf(m.gpage, m.lineIdx);
        auto pit_txn = pending_.find(gl);
        if (pit_txn != pending_.end())
            pit_txn->second->invalidatedMidFlight = true;
        auto fit = fillPending_.find(gl);
        if (fit != fillPending_.end())
            fit->second.invalidated = true;
    }
    // In the paper's evaluated configuration the directory does not
    // cache client frame numbers (Section 4.1), so invalidations
    // reverse-translate via the hash path; with the Section 4.3
    // dirClientFrameHints option the message carries a hint.
    bool hash = false;
    FrameNum f = pit_.reverse(m.gpage, m.dstFrameHint, hash);
    co_await delay(pit_.reverseCycles(hash));
    // Re-validate: the mapping may have been paged out (and the frame
    // even reused) during the lookup delay.
    PitEntry *e = (f == kInvalidFrame) ? nullptr : pit_.entry(f);
    if (e && e->gpage == m.gpage) {
        auto r = host_.intervene(f, m.lineIdx, true, eq_.now());
        if (e->tags && e->tags->get(m.lineIdx) != FgTag::Transit)
            e->tags->set(m.lineIdx, FgTag::Invalid);
        if (oracle_)
            oracle_->onInvalidate(self_, m.gpage, m.lineIdx);
        if (r.done > eq_.now())
            co_await DelayAwaiter(eq_, r.done - eq_.now());
    }
    Msg ack;
    ack.type = MsgType::InvAck;
    ack.dst = m.requester;
    ack.gpage = m.gpage;
    ack.lineIdx = m.lineIdx;
    ack.requester = m.requester;
    send(std::move(ack));
}

FireAndForget
CoherenceController::handleClientFetch(Msg m)
{
    co_await occupy(cfg_.ctrlOverhead);
    const NodeId home = m.src;
    bool hash = false;
    FrameNum f = pit_.reverse(m.gpage, kInvalidFrame, hash);
    co_await delay(pit_.reverseCycles(hash));

    bool have = false;
    bool dirty_to_home = false;
    PitEntry *e = (f == kInvalidFrame) ? nullptr : pit_.entry(f);
    if (e && e->gpage != m.gpage)
        e = nullptr; // frame was recycled during the lookup delay
    if (e) {
        if (e->mode == PageMode::Scoma) {
            FgTag tag = e->tags->get(m.lineIdx);
            TRC(m.gpage, m.lineIdx, "n%u fetch-scoma tag=%s t=%llu", self_,
                fgTagName(tag), (unsigned long long)eq_.now());
            if (tag == FgTag::Exclusive) {
                have = true;
                auto r = host_.intervene(f, m.lineIdx, m.forWrite,
                                         eq_.now());
                e->tags->set(m.lineIdx,
                             m.forWrite ? FgTag::Invalid : FgTag::Shared);
                if (r.done > eq_.now())
                    co_await DelayAwaiter(eq_, r.done - eq_.now());
                if (r.dirty)
                    dram_.access(eq_.now()); // into the page cache
                co_await dramAccess(); // read line for forwarding
                // The home memory is stale while we owned the line, so
                // a read downgrade must carry data home.
                dirty_to_home = !m.forWrite;
            }
        } else {
            auto r = host_.intervene(f, m.lineIdx, m.forWrite, eq_.now());
            // Ownership requires an E/M copy.  A mere S copy means the
            // node was downgraded (writeback in flight) or its own
            // exclusive grant has not landed yet; nack and let the
            // home retry against fresh state.
            if (r.found && r.exclusive) {
                have = true;
                if (r.done > eq_.now())
                    co_await DelayAwaiter(eq_, r.done - eq_.now());
                dirty_to_home = !m.forWrite && r.dirty;
            }
        }
    }

    TRC(m.gpage, m.lineIdx, "n%u fetch forW=%d have=%d t=%llu", self_,
        (int)m.forWrite, (int)have, (unsigned long long)eq_.now());
    if (!have) {
        ++stats_.nacksSent;
        Msg n;
        n.type = MsgType::FetchNack;
        n.dst = home;
        n.gpage = m.gpage;
        n.lineIdx = m.lineIdx;
        send(std::move(n));
        co_return;
    }

    ++stats_.fetchesServed;
    Msg dmsg;
    dmsg.type = MsgType::DataFwd;
    dmsg.dst = m.requester;
    dmsg.gpage = m.gpage;
    dmsg.lineIdx = m.lineIdx;
    dmsg.requester = m.requester;
    dmsg.dstFrameHint = m.requesterFrame;
    dmsg.homeFrame = m.homeFrame;
    dmsg.dynHome = m.dynHome;
    dmsg.exclusive = m.forWrite;
    if (oracle_)
        oracle_->onOwnerServe(self_, m.gpage, m.lineIdx, m.requester,
                              m.forWrite);
    send(std::move(dmsg));

    Msg x;
    x.type = MsgType::XferNotice;
    x.dst = home;
    x.gpage = m.gpage;
    x.lineIdx = m.lineIdx;
    x.dirty = dirty_to_home;
    x.keepShared = !m.forWrite;
    send(std::move(x));
}

FireAndForget
CoherenceController::handleClientReply(Msg m)
{
    if (m.type == MsgType::InvAck) {
        GLine gl = geo_.lineOf(m.gpage, m.lineIdx);
        auto it = pending_.find(gl);
        prism_assert(it != pending_.end(), "InvAck without a transaction");
        it->second->latch.arrive();
        co_return;
    }
    co_await occupy(cfg_.ctrlOverhead);
    GLine gl = geo_.lineOf(m.gpage, m.lineIdx);
    auto it = pending_.find(gl);
    prism_assert(it != pending_.end(), "%s reply without a transaction",
                 msgTypeName(m.type));
    ClientTxn *t = it->second;
    t->exclusive = m.exclusive;
    t->dataFetched = (m.type != MsgType::UpgAck) && (m.src != self_);
    t->threeParty = (m.type == MsgType::DataFwd);
    if (m.dynHome != kInvalidNode)
        t->dynHome = m.dynHome;
    if (m.homeFrame != kInvalidFrame)
        t->homeFrame = m.homeFrame;
    t->latch.expect(m.ackCount);
    t->latch.arm();
}

// ---------------------------------------------------------------------
// Lazy page migration
// ---------------------------------------------------------------------

void
CoherenceController::requestMigration(GPage gpage, NodeId new_home)
{
    Msg m;
    m.type = MsgType::MigrateReq;
    m.dst = staticHomeOf_(gpage);
    m.gpage = gpage;
    m.aux = new_home;
    send(std::move(m));
}

void
CoherenceController::noteHomeAccess(GPage gpage, NodeId requester)
{
    auto it = homeMeta_.find(gpage);
    if (it == homeMeta_.end())
        return;
    ++it->second.accessesByNode[requester];
    ++it->second.totalAccesses;
}

void
CoherenceController::maybeTriggerMigration(GPage gpage)
{
    if (!cfg_.migrationEnabled)
        return;
    auto it = homeMeta_.find(gpage);
    if (it == homeMeta_.end() || it->second.migrating)
        return;
    HomeMeta &hm = it->second;
    if (hm.totalAccesses < cfg_.migrationThreshold)
        return;
    NodeId best = self_;
    std::uint32_t best_count = 0;
    for (NodeId n = 0; n < cfg_.numNodes; ++n) {
        if (n != self_ && hm.accessesByNode[n] > best_count) {
            best = n;
            best_count = hm.accessesByNode[n];
        }
    }
    const bool dominant = best != self_ &&
                          2ULL * best_count > hm.totalAccesses;
    hm.accessesByNode.assign(cfg_.numNodes, 0);
    hm.totalAccesses = 0;
    if (dominant)
        requestMigration(gpage, best);
}

FireAndForget
CoherenceController::handleMigratePrep(Msg m)
{
    const Tick t0 = eq_.now();
    co_await occupy(cfg_.ctrlOverhead);
    const GPage gp = m.gpage;
    const NodeId new_home = static_cast<NodeId>(m.aux);
    if (!dir_.hasPage(gp) || new_home == self_)
        co_return;
    auto meta_it = homeMeta_.find(gp);
    prism_assert(meta_it != homeMeta_.end(), "dir page without home meta");
    if (meta_it->second.migrating)
        co_return;
    meta_it->second.migrating = true;
    const FrameNum hf = meta_it->second.homeFrame;

    // Quiesce: acquire every line lock so no transaction is in flight.
    auto &lks = locks_[gp];
    for (auto &l : lks)
        co_await l->acquire();

    // Wait for local bus-level activity on the frame to drain, then
    // flush local processor copies into the home frame's memory.
    while (host_.anyBusPending(hf))
        co_await delay(cfg_.retryDelay);
    for (std::uint32_t i = 0; i < geo_.linesPerPage(); ++i) {
        auto r = host_.intervene(hf, i, true, eq_.now());
        if (r.done > eq_.now())
            co_await DelayAwaiter(eq_, r.done - eq_.now());
        if (r.dirty)
            dram_.access(eq_.now());
    }

    auto payload = std::make_shared<MigrationPayload>();
    payload->dir = dir_.releasePage(gp);
    for (std::uint32_t i = 0; i < payload->dir.size(); ++i) {
        DirEntry &d = payload->dir[i];
        if (d.state == DirState::Shared) {
            d.removeSharer(self_);
            if (d.sharers.empty())
                d.state = DirState::Uncached;
        } else if (d.state == DirState::Owned && d.owner == self_) {
            d.state = DirState::Uncached;
            d.owner = kInvalidNode;
            // Flushed above into the departing frame: the payload
            // carries the line's latest value as the new memory.
            if (oracle_)
                oracle_->onMigrateFlush(self_, gp, i);
        }
    }
    payload->kernelClients = host_.homeKernelClients(gp);
    payload->kernelClients.remove(self_);
    payload->kernelClients.remove(new_home);

    Msg data;
    data.type = MsgType::MigrateData;
    data.dst = new_home;
    data.gpage = gp;
    data.payload = payload;
    send(std::move(data));

    movedTo_[gp] = new_home;
    homeMeta_.erase(gp);
    host_.homeKernelDepart(gp);
    host_.migrationFreeFrame(hf, gp);
    pit_.remove(hf);
    ++stats_.migrationsOut;
    latency_.migration.sample(eq_.now() - t0);
    if (trace_) {
        trace_->span("migration", "paging",
                     static_cast<std::int32_t>(self_), 0, t0, eq_.now());
    }

    // Release the locks; queued handlers will find the page gone and
    // forward toward the new home.
    for (auto &l : lks)
        l->release();
}

FireAndForget
CoherenceController::handleMigrateData(Msg m)
{
    co_await occupy(cfg_.ctrlOverhead);
    auto payload = std::static_pointer_cast<MigrationPayload>(m.payload);
    const GPage gp = m.gpage;
    prism_assert(!dir_.hasPage(gp), "migration target already home");

    bool hash = false;
    FrameNum existing = pit_.reverse(gp, kInvalidFrame, hash);
    FrameNum hf = kInvalidFrame;

    if (existing != kInvalidFrame) {
        PitEntry *e = pit_.entry(existing);
        if (e->mode == PageMode::Scoma) {
            // Promote the client page-cache frame to the home frame;
            // its fine-grain tags already describe this node's rights.
            hf = existing;
            e->dynHome = self_;
            e->homeFrameHint = existing;
            if (oracle_) {
                // Lines we own stay Owned(self) in the adopted
                // directory, but the promoted frame is now the home
                // memory and it holds our (latest) data.
                for (std::uint32_t i = 0; i < payload->dir.size(); ++i) {
                    const DirEntry &d = payload->dir[i];
                    if (d.state == DirState::Owned && d.owner == self_)
                        oracle_->onMigrateFlush(self_, gp, i);
                }
            }
        } else {
            // LA-NUMA client mapping: collect processor copies into
            // memory, then retire the imaginary frame.
            for (std::uint32_t i = 0; i < geo_.linesPerPage(); ++i) {
                auto r = host_.intervene(existing, i, true, eq_.now());
                if (r.done > eq_.now())
                    co_await DelayAwaiter(eq_, r.done - eq_.now());
                if (r.dirty)
                    dram_.access(eq_.now());
            }
            for (std::uint32_t i = 0; i < payload->dir.size(); ++i) {
                DirEntry &d = payload->dir[i];
                if (d.state == DirState::Shared) {
                    d.removeSharer(self_);
                    if (d.sharers.empty())
                        d.state = DirState::Uncached;
                } else if (d.state == DirState::Owned &&
                           d.owner == self_) {
                    d.state = DirState::Uncached;
                    d.owner = kInvalidNode;
                    // Collected above into what is now home memory.
                    if (oracle_)
                        oracle_->onMigrateFlush(self_, gp, i);
                }
            }
            pit_.remove(existing);
            host_.migrationFreeFrame(existing, gp);
        }
    }

    if (hf == kInvalidFrame) {
        hf = host_.migrationAllocFrame(gp);
        prism_assert(hf != kInvalidFrame, "migration frame alloc failed");
        PitEntry &e = pit_.install(hf, gp, staticHomeOf_(gp), self_, hf,
                                   PageMode::Scoma, geo_.linesPerPage(),
                                   FgTag::Invalid);
        // Derive this node's tags from the transferred directory.
        for (std::uint32_t i = 0; i < geo_.linesPerPage(); ++i) {
            const DirEntry &d = payload->dir[i];
            if (d.state == DirState::Owned && d.owner == self_)
                e.tags->set(i, FgTag::Exclusive);
            else if (d.state == DirState::Shared && d.isSharer(self_))
                e.tags->set(i, FgTag::Shared);
        }
    }

    dir_.adoptPage(gp, std::move(payload->dir));
    lineLock(gp, 0); // materialize locks
    HomeMeta &hm = homeMeta_[gp];
    hm.homeFrame = hf;
    hm.accessesByNode.assign(cfg_.numNodes, 0);
    hm.totalAccesses = 0;
    hm.migrating = false;
    host_.homeKernelAdopt(gp, payload->kernelClients);
    movedTo_.erase(gp);
    ++stats_.migrationsIn;

    // Charge receipt of the page-sized payload into memory.
    for (int i = 0; i < 8; ++i)
        dram_.access(eq_.now());

    Msg done;
    done.type = MsgType::MigrateDone;
    done.dst = staticHomeOf_(gp);
    done.gpage = gp;
    send(std::move(done));
}

void
CoherenceController::registerMetrics(MetricRegistry &reg)
{
    const std::int32_t n = static_cast<std::int32_t>(self_);
    auto counter = [&](const char *name, ScopedCounter &c,
                       const char *desc) {
        reg.bind(MetricLabels{"ctrl", n, name, "count"}, &c, desc);
    };
    counter("remoteMisses", stats_.remoteMisses,
            "misses that fetched data from a remote node");
    counter("localMemHits", stats_.localMemHits,
            "misses satisfied by local memory / page cache");
    counter("upgrades", stats_.upgrades,
            "write-permission transactions without data fetch");
    counter("retries", stats_.retries, "bus retries");
    counter("invalsSent", stats_.invalsSent, "");
    counter("invalsReceived", stats_.invalsReceived, "");
    counter("fetchesServed", stats_.fetchesServed, "");
    counter("nacksSent", stats_.nacksSent, "");
    counter("writebacksSent", stats_.writebacksSent, "");
    counter("replaceHintsSent", stats_.replaceHintsSent, "");
    counter("forwards", stats_.forwards,
            "misdirected requests forwarded (lazy migration)");
    counter("homeRequests", stats_.homeRequests, "");
    counter("migrationsOut", stats_.migrationsOut, "");
    counter("migrationsIn", stats_.migrationsIn, "");
    counter("firewallRejects", stats_.firewallRejects, "");

    auto hist = [&](const char *name, ScopedHistogram &h,
                    const char *desc) {
        reg.bind(MetricLabels{"ctrl", n, name, "cycles"}, &h, desc);
    };
    hist("latency.read2", latency_.read2,
         "2-party data-fetch transaction latency");
    hist("latency.read3", latency_.read3,
         "3-party (owner-forwarded) transaction latency");
    hist("latency.upgrade", latency_.upgrade,
         "permission-only upgrade latency");
    hist("latency.writeback", latency_.writeback,
         "home-side writeback handling latency");
    hist("latency.migration", latency_.migration,
         "migration prep-to-handoff latency");

    // Memory-footprint accounting: what the coherence metadata costs
    // on this node, sampled when the report is written.  Directory
    // bytes follow the SoA arena's live layout (state byte + owner id
    // + ceil(numNodes/64) sharer words per line); tag bytes are the
    // architected 2 bits per line of every tagged frame.
    reg.bind(MetricLabels{"footprint", n, "dirBytes", "bytes"},
             &gaugeDirBytes_,
             [this] { return static_cast<double>(dir_.liveBytes()); },
             "directory entry bytes for pages homed here");
    reg.bind(MetricLabels{"footprint", n, "dirPages", "pages"},
             &gaugeDirPages_,
             [this] { return static_cast<double>(dir_.numPages()); },
             "pages homed here (directory page count)");
    reg.bind(MetricLabels{"footprint", n, "pitEntries", "entries"},
             &gaugePitEntries_,
             [this] { return static_cast<double>(pit_.size()); },
             "live PIT entries (frame translations)");
    reg.bind(MetricLabels{"footprint", n, "tagBytes", "bytes"},
             &gaugeTagBytes_, [this] { return tagBytesModeled(); },
             "fine-grain tag bytes (2 bits/line) on S-COMA frames");
}

double
CoherenceController::tagBytesModeled() const
{
    std::uint64_t bytes = 0;
    for (FrameNum f : pit_.allFrames()) {
        const PitEntry *e = pit_.entry(f);
        if (e && e->tags)
            bytes += (e->tags->lines() + 3) / 4;
    }
    return static_cast<double>(bytes);
}

} // namespace prism
