/**
 * @file
 * Fine-grain access tags for S-COMA page frames (paper Section 3.2).
 *
 * The controller maintains a two-bit tag per cache line of every
 * S-COMA frame:
 *   T (Transit)   — a coherence operation is outstanding; local bus
 *                   transactions for the line are retried,
 *   E (Exclusive) — the node holds the only copy; all local accesses
 *                   proceed under the local bus protocol,
 *   S (Shared)    — other nodes may hold copies; writes must upgrade,
 *   I (Invalid)   — the node holds no valid copy.
 */

#ifndef PRISM_COHERENCE_FINE_GRAIN_TAGS_HH
#define PRISM_COHERENCE_FINE_GRAIN_TAGS_HH

#include <cstdint>
#include <vector>

#include "sim/logging.hh"

namespace prism {

/** The two-bit line state. */
enum class FgTag : std::uint8_t {
    Invalid,
    Shared,
    Exclusive,
    Transit,
};

/** Human-readable tag name. */
inline const char *
fgTagName(FgTag t)
{
    switch (t) {
      case FgTag::Invalid: return "I";
      case FgTag::Shared: return "S";
      case FgTag::Exclusive: return "E";
      case FgTag::Transit: return "T";
    }
    return "?";
}

/** The tag array of one S-COMA page frame. */
class FrameTags
{
  public:
    explicit FrameTags(std::uint32_t lines_per_page, FgTag init)
        : tags_(lines_per_page, init)
    {
    }

    FgTag get(std::uint32_t line_idx) const { return tags_[line_idx]; }

    void set(std::uint32_t line_idx, FgTag t) { tags_[line_idx] = t; }

    std::uint32_t lines() const
    {
        return static_cast<std::uint32_t>(tags_.size());
    }

    /** Number of lines whose tag is @p t. */
    std::uint32_t
    count(FgTag t) const
    {
        std::uint32_t n = 0;
        for (auto x : tags_) {
            if (x == t)
                ++n;
        }
        return n;
    }

    /** True if any line is in Transit. */
    bool
    anyTransit() const
    {
        for (auto x : tags_) {
            if (x == FgTag::Transit)
                return true;
        }
        return false;
    }

    /** Set every line to @p t (page-in / flush). */
    void
    fill(FgTag t)
    {
        for (auto &x : tags_)
            x = t;
    }

  private:
    std::vector<FgTag> tags_;
};

} // namespace prism

#endif // PRISM_COHERENCE_FINE_GRAIN_TAGS_HH
