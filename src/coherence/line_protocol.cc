#include "coherence/line_protocol.hh"

#include "sim/logging.hh"

namespace prism {

const char *
lineEventName(LineEvent e)
{
    switch (e) {
      case LineEvent::LocalLoad: return "LocalLoad";
      case LineEvent::LocalStore: return "LocalStore";
      case LineEvent::SnoopRead: return "SnoopRead";
      case LineEvent::SnoopWrite: return "SnoopWrite";
      case LineEvent::Inval: return "Inval";
      case LineEvent::Evict: return "Evict";
    }
    return "?";
}

void
LineProtocol::set(LineState s, LineEvent e, LineState next,
                  std::uint8_t actions)
{
    Transition &t =
        table_[static_cast<unsigned>(s)][static_cast<unsigned>(e)];
    t.next = next;
    t.actions = actions;
    t.legal = true;
    validStates_ |= 1u << static_cast<unsigned>(s);
    validStates_ |= 1u << static_cast<unsigned>(next);
}

const Transition &
LineProtocol::on(LineState s, LineEvent e) const
{
    const Transition *t = tryOn(s, e);
    prism_assert(t, "illegal %s transition: %s on %s", name(),
                 lineEventName(e), mesiName(s));
    return *t;
}

LineProtocol::LineProtocol(ProtocolScheme scheme) : scheme_(scheme)
{
    const LineState I = LineState::Invalid;
    const LineState S = LineState::Shared;
    const LineState E = LineState::Exclusive;
    const LineState M = LineState::Modified;
    const LineState O = LineState::Owned;
    const LineState F = LineState::Forward;
    (void)I;

    // Invalid is reachable under every scheme (lines start out and
    // are invalidated to it) but its row stays entirely illegal:
    // misses never consult the table, they go through the fill path.
    validStates_ |= 1u << static_cast<unsigned>(LineState::Invalid);

    // --- Shared row: identical across all four schemes ---------------
    // A plain Shared copy supplies snoop reads cache-to-cache, except
    // under MESIF where only the Forward designee answers.
    const bool mesif = scheme == ProtocolScheme::Mesif;
    set(S, LineEvent::LocalLoad, S, 0);
    set(S, LineEvent::LocalStore, S, kActNeedsBus);
    set(S, LineEvent::SnoopRead, S, mesif ? 0 : kActSupplyData);
    set(S, LineEvent::SnoopWrite, I, mesif ? 0 : kActSupplyData);
    set(S, LineEvent::Inval, I, 0);
    set(S, LineEvent::Evict, I, 0);

    // --- Modified row ------------------------------------------------
    // MOESI keeps the dirty data in place as Owned on a snoop read
    // (no writeback, node ownership retained); the others flush it
    // home and relinquish.
    const bool moesi = scheme == ProtocolScheme::Moesi;
    set(M, LineEvent::LocalLoad, M, 0);
    set(M, LineEvent::LocalStore, M, 0);
    if (moesi) {
        set(M, LineEvent::SnoopRead, O, kActSupplyData);
    } else {
        set(M, LineEvent::SnoopRead, S,
            kActSupplyData | kActWritebackData | kActRelinquish);
    }
    set(M, LineEvent::SnoopWrite, I, kActSupplyData);
    set(M, LineEvent::Inval, I, kActWritebackData);
    set(M, LineEvent::Evict, I, kActWritebackData);

    // --- Exclusive row (all schemes but MSI) --------------------------
    if (scheme != ProtocolScheme::Msi) {
        set(E, LineEvent::LocalLoad, E, 0);
        set(E, LineEvent::LocalStore, M, 0); // silent upgrade
        set(E, LineEvent::SnoopRead, S,
            kActSupplyData | kActRelinquish);
        set(E, LineEvent::SnoopWrite, I, kActSupplyData);
        set(E, LineEvent::Inval, I, 0);
        set(E, LineEvent::Evict, I, kActReplaceHint);
    }

    // --- Owned row (MOESI) --------------------------------------------
    // Owned arises only from an intra-node snoop read of Modified, so
    // every sharer of an Owned line is on the same bus: a store to
    // Owned upgrades with a local bus transaction alone (no
    // directory round trip — the node still owns the line).
    if (moesi) {
        set(O, LineEvent::LocalLoad, O, 0);
        set(O, LineEvent::LocalStore, M, kActNeedsBus);
        set(O, LineEvent::SnoopRead, O, kActSupplyData);
        set(O, LineEvent::SnoopWrite, I, kActSupplyData);
        set(O, LineEvent::Inval, I, kActWritebackData);
        set(O, LineEvent::Evict, I, kActWritebackData);
    }

    // --- Forward row (MESIF) ------------------------------------------
    // Forward is a clean copy; on a snoop read it supplies and hands
    // the designation to the requester, demoting itself to plain S.
    if (mesif) {
        set(F, LineEvent::LocalLoad, F, 0);
        set(F, LineEvent::LocalStore, F, kActNeedsBus);
        set(F, LineEvent::SnoopRead, S, kActSupplyData);
        set(F, LineEvent::SnoopWrite, I, 0);
        set(F, LineEvent::Inval, I, 0);
        set(F, LineEvent::Evict, I, 0);
    }

    // --- Fill policy ---------------------------------------------------
    switch (scheme) {
      case ProtocolScheme::Msi:
        // No clean-exclusive state: every read fills Shared, and an
        // exclusive directory grant is relinquished immediately.
        readFillExclusive_ = S;
        readFillShared_ = S;
        peerReadFill_ = S;
        demoteExclusiveReadGrant_ = true;
        break;
      case ProtocolScheme::Mesi:
      case ProtocolScheme::Moesi:
        readFillExclusive_ = E;
        readFillShared_ = S;
        peerReadFill_ = S;
        break;
      case ProtocolScheme::Mesif:
        // The newest sharer is the Forward designee.
        readFillExclusive_ = E;
        readFillShared_ = F;
        peerReadFill_ = F;
        sharedSupplyNeedsDesignee_ = true;
        break;
    }
    validStates_ |= 1u << static_cast<unsigned>(readFillExclusive_);
    validStates_ |= 1u << static_cast<unsigned>(readFillShared_);
    validStates_ |= 1u << static_cast<unsigned>(peerReadFill_);
}

const LineProtocol &
LineProtocol::get(ProtocolScheme scheme)
{
    static const LineProtocol msi{ProtocolScheme::Msi};
    static const LineProtocol mesi{ProtocolScheme::Mesi};
    static const LineProtocol moesi{ProtocolScheme::Moesi};
    static const LineProtocol mesif{ProtocolScheme::Mesif};
    switch (scheme) {
      case ProtocolScheme::Msi: return msi;
      case ProtocolScheme::Mesi: return mesi;
      case ProtocolScheme::Moesi: return moesi;
      case ProtocolScheme::Mesif: return mesif;
    }
    return mesi;
}

} // namespace prism
