/**
 * @file
 * Full-map cache-line directory kept at each page's (dynamic) home.
 *
 * One entry per cache line of every page this node is home for.  The
 * backing store is DRAM fronted by an 8K-entry directory cache (paper
 * Section 4.1: 2-cycle hit, 22-cycle miss); the cache is modeled as a
 * direct-mapped tag filter for timing only.
 */

#ifndef PRISM_COHERENCE_DIRECTORY_HH
#define PRISM_COHERENCE_DIRECTORY_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "mem/addr.hh"
#include "sim/types.hh"

namespace prism {

/** Stable state of one line in the directory. */
enum class DirState : std::uint8_t {
    /** Only home memory holds the line; no node-level copies. */
    Uncached,
    /** Home memory valid; `sharers` nodes hold read copies. */
    Shared,
    /** `owner` holds the line exclusively; home memory may be stale. */
    Owned,
};

/** Human-readable state name. */
const char *dirStateName(DirState s);

/** One line's directory entry. */
struct DirEntry {
    DirState state = DirState::Uncached;
    std::uint64_t sharers = 0; //!< bitmask of sharer nodes
    NodeId owner = kInvalidNode;

    bool
    isSharer(NodeId n) const
    {
        return (sharers >> n) & 1;
    }

    void addSharer(NodeId n) { sharers |= 1ULL << n; }
    void removeSharer(NodeId n) { sharers &= ~(1ULL << n); }

    std::uint32_t
    sharerCount() const
    {
        return static_cast<std::uint32_t>(__builtin_popcountll(sharers));
    }
};

/** The directory of one home node. */
class Directory
{
  public:
    Directory(std::uint32_t cache_entries, Cycles hit_cycles,
              Cycles miss_cycles, std::uint32_t lines_per_page);

    /** Create entries for every line of @p gp (page-in at home). */
    void createPage(GPage gp, DirState init, NodeId owner);

    /** Drop all entries of @p gp (page-out / migration away). */
    void removePage(GPage gp);

    /** Install a page's entries verbatim (migration arrival). */
    void adoptPage(GPage gp, std::vector<DirEntry> entries);

    /** Steal a page's entries (migration departure). */
    std::vector<DirEntry> releasePage(GPage gp);

    bool hasPage(GPage gp) const { return pages_.find(gp) != pages_.end(); }

    /** Entry for line @p idx of page @p gp; nullptr if page absent. */
    DirEntry *line(GPage gp, std::uint32_t idx);
    const DirEntry *line(GPage gp, std::uint32_t idx) const;

    /** All entries of a page; nullptr if absent. */
    std::vector<DirEntry> *page(GPage gp);

    /**
     * Timing of one directory access to global line @p gl, exercising
     * the directory-cache model.
     */
    Cycles access(GLine gl);

    std::uint64_t lookups() const { return lookups_; }
    std::uint64_t cacheHits() const { return cacheHits_; }
    std::size_t numPages() const { return pages_.size(); }

  private:
    std::uint32_t linesPerPage_;
    Cycles hitCycles_;
    Cycles missCycles_;
    std::vector<GLine> cacheTags_; //!< direct-mapped timing filter
    std::unordered_map<GPage, std::vector<DirEntry>> pages_;
    std::uint64_t lookups_ = 0;
    std::uint64_t cacheHits_ = 0;
};

} // namespace prism

#endif // PRISM_COHERENCE_DIRECTORY_HH
