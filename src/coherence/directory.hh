/**
 * @file
 * Full-map cache-line directory kept at each page's (dynamic) home.
 *
 * One entry per cache line of every page this node is home for.  The
 * backing store is DRAM fronted by an 8K-entry directory cache (paper
 * Section 4.1: 2-cycle hit, 22-cycle miss); the cache is modeled as a
 * direct-mapped tag filter for timing only.
 *
 * Storage is struct-of-arrays in a chunked arena (the mold of the
 * mem/cache.hh tag store): per-line state bytes, owner ids and sharer
 * bitmap words live in parallel packed arrays, one page slot per
 * directory page.  Chunks are never reallocated and freed slots are
 * recycled through a freelist, so LineRef/PageRef handles stay valid
 * for the whole home transaction that obtained them — unlike the old
 * per-page `vector<DirEntry>` map, where an unrelated createPage could
 * rehash the table under a held `DirEntry *`.  A per-slot generation
 * check enforces that contract: a handle used after its page was
 * removed or released panics instead of reading recycled memory.
 *
 * Sharer sets are `ceil(numNodes/64)` words per line, in place in the
 * arena (no per-line allocation at any machine size); callers get a
 * SharerRef view (sharer_set.hh).  DirEntry remains as the detached
 * value type used for migration payloads and tests.
 */

#ifndef PRISM_COHERENCE_DIRECTORY_HH
#define PRISM_COHERENCE_DIRECTORY_HH

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "coherence/sharer_set.hh"
#include "mem/addr.hh"
#include "sim/logging.hh"
#include "sim/types.hh"

namespace prism {

/** Stable state of one line in the directory. */
enum class DirState : std::uint8_t {
    /** Only home memory holds the line; no node-level copies. */
    Uncached,
    /** Home memory valid; `sharers` nodes hold read copies. */
    Shared,
    /** `owner` holds the line exclusively; home memory may be stale. */
    Owned,
};

/** Human-readable state name. */
const char *dirStateName(DirState s);

/**
 * One line's directory entry as a detached value: the exchange format
 * for migration payloads (releasePage/adoptPage) and tests.  The live
 * directory stores the same fields SoA in its arena.
 */
struct DirEntry {
    DirState state = DirState::Uncached;
    NodeId owner = kInvalidNode;
    SharerSet sharers;

    bool isSharer(NodeId n) const { return sharers.test(n); }
    void addSharer(NodeId n) { sharers.add(n); }
    void removeSharer(NodeId n) { sharers.remove(n); }
    std::uint32_t sharerCount() const { return sharers.count(); }
};

/** The directory of one home node. */
class Directory
{
  public:
    /**
     * @param num_nodes  machine node count; sizes each line's sharer
     *                   bitmap at ceil(num_nodes/64) words.
     */
    Directory(std::uint32_t cache_entries, Cycles hit_cycles,
              Cycles miss_cycles, std::uint32_t lines_per_page,
              std::uint32_t num_nodes);

    /**
     * Borrowed handle to one line's columns in the arena.  Valid until
     * the page is removed/released (generation-checked); an invalid
     * handle (absent page) is falsy.
     */
    class LineRef
    {
      public:
        LineRef() = default;

        explicit operator bool() const { return state_ != nullptr; }

        DirState
        state() const
        {
            check();
            return static_cast<DirState>(*state_);
        }

        void
        setState(DirState s)
        {
            check();
            *state_ = static_cast<std::uint8_t>(s);
        }

        NodeId
        owner() const
        {
            check();
            return *owner_;
        }

        void
        setOwner(NodeId n)
        {
            check();
            *owner_ = n;
        }

        /** Mutable view of this line's sharer words. */
        SharerRef
        sharers() const
        {
            check();
            return SharerRef(words_, numWords_);
        }

        bool isSharer(NodeId n) const { return sharers().test(n); }
        void addSharer(NodeId n) { sharers().add(n); }
        void removeSharer(NodeId n) { sharers().remove(n); }
        void clearSharers() { sharers().clear(); }
        bool noSharers() const { return sharers().empty(); }
        std::uint32_t sharerCount() const { return sharers().count(); }

        /** Snapshot into a detached value (migration/tests). */
        DirEntry
        toEntry() const
        {
            DirEntry e;
            e.state = state();
            e.owner = owner();
            e.sharers = SharerSet::fromRef(sharers());
            return e;
        }

      private:
        friend class Directory;

        LineRef(std::uint8_t *state, NodeId *owner, std::uint64_t *words,
                std::uint32_t num_words, const std::uint32_t *gen,
                std::uint32_t gen_at_issue)
            : state_(state), owner_(owner), words_(words),
              numWords_(num_words), gen_(gen), genAtIssue_(gen_at_issue)
        {
        }

        void
        check() const
        {
            prism_assert(state_ != nullptr, "use of an empty LineRef");
            prism_assert(*gen_ == genAtIssue_,
                         "directory LineRef outlived its page (held "
                         "across removePage/releasePage)");
        }

        std::uint8_t *state_ = nullptr;
        NodeId *owner_ = nullptr;
        std::uint64_t *words_ = nullptr;
        std::uint32_t numWords_ = 0;
        const std::uint32_t *gen_ = nullptr;
        std::uint32_t genAtIssue_ = 0;
    };

    /** Borrowed handle to a whole page (page walks). */
    class PageRef
    {
      public:
        PageRef() = default;

        explicit operator bool() const { return dir_ != nullptr; }

        std::uint32_t size() const { return dir_->linesPerPage_; }

        LineRef
        line(std::uint32_t idx) const
        {
            prism_assert(idx < dir_->linesPerPage_,
                         "directory line index OOB");
            return dir_->lineRef(slot_, idx);
        }

      private:
        friend class Directory;
        PageRef(Directory *dir, std::uint32_t slot)
            : dir_(dir), slot_(slot)
        {
        }
        Directory *dir_ = nullptr;
        std::uint32_t slot_ = 0;
    };

    /** Create entries for every line of @p gp (page-in at home). */
    void createPage(GPage gp, DirState init, NodeId owner);

    /** Drop all entries of @p gp (page-out / migration away). */
    void removePage(GPage gp);

    /** Install a page's entries verbatim (migration arrival). */
    void adoptPage(GPage gp, const std::vector<DirEntry> &entries);

    /** Steal a page's entries (migration departure). */
    std::vector<DirEntry> releasePage(GPage gp);

    bool
    hasPage(GPage gp) const
    {
        return slots_.find(gp) != slots_.end();
    }

    /** Handle for line @p idx of page @p gp; falsy if page absent. */
    LineRef line(GPage gp, std::uint32_t idx);

    /** Whole-page handle; falsy if absent. */
    PageRef page(GPage gp);

    /**
     * Timing of one directory access to global line @p gl, exercising
     * the directory-cache model.
     */
    Cycles access(GLine gl);

    std::uint64_t lookups() const { return lookups_; }
    std::uint64_t cacheHits() const { return cacheHits_; }
    std::size_t numPages() const { return slots_.size(); }

    /** Bytes per directory line entry (state + owner + sharer words). */
    std::size_t
    bytesPerLine() const
    {
        return 1 + sizeof(NodeId) + wordsPerLine_ * 8;
    }

    /** Arena bytes backing currently-live pages. */
    std::size_t
    liveBytes() const
    {
        return numPages() * linesPerPage_ * bytesPerLine();
    }

    /** Arena bytes reserved (live + freelisted slots). */
    std::size_t
    reservedBytes() const
    {
        return chunks_.size() * kChunkPages * linesPerPage_ *
               bytesPerLine();
    }

  private:
    /** Page slots per arena chunk; chunks never move once built. */
    static constexpr std::uint32_t kChunkPages = 64;

    struct Chunk {
        std::vector<std::uint8_t> state;  //!< kChunkPages * lpp
        std::vector<NodeId> owner;        //!< kChunkPages * lpp
        std::vector<std::uint64_t> words; //!< ... * wordsPerLine
        /**
         * Per-slot generation counters live inside the chunk so the
         * pointer a LineRef holds to its counter is as stable as the
         * data pointers — a directory-level vector would reallocate
         * when the arena grows, recreating the very hazard the
         * generation check exists to catch.
         */
        std::vector<std::uint32_t> gen; //!< kChunkPages
    };

    std::uint32_t allocSlot();

    LineRef
    lineRef(std::uint32_t slot, std::uint32_t idx)
    {
        Chunk &c = *chunks_[slot / kChunkPages];
        const std::uint32_t sub = slot % kChunkPages;
        const std::uint32_t base = sub * linesPerPage_ + idx;
        return LineRef(&c.state[base], &c.owner[base],
                       &c.words[base * wordsPerLine_], wordsPerLine_,
                       &c.gen[sub], c.gen[sub]);
    }

    std::uint32_t &
    slotGen(std::uint32_t slot)
    {
        return chunks_[slot / kChunkPages]->gen[slot % kChunkPages];
    }

    std::uint32_t linesPerPage_;
    std::uint32_t wordsPerLine_;
    Cycles hitCycles_;
    Cycles missCycles_;
    std::vector<GLine> cacheTags_; //!< direct-mapped timing filter
    std::vector<std::unique_ptr<Chunk>> chunks_;
    std::vector<std::uint32_t> freeSlots_;
    std::unordered_map<GPage, std::uint32_t> slots_;
    std::uint64_t lookups_ = 0;
    std::uint64_t cacheHits_ = 0;
};

} // namespace prism

#endif // PRISM_COHERENCE_DIRECTORY_HH
