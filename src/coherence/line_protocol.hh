/**
 * @file
 * Table-driven intra-node line protocol.
 *
 * The node bus (core/node) and processor caches (core/proc) used to
 * hard-code MESI; this module factors the per-line state machine out
 * into a data table per scheme so drop-in variants share one engine.
 * A protocol is a 6x6 table mapping (LineState, LineEvent) to a
 * Transition {next state, action flags}; illegal pairs are explicit
 * (tryOn() returns nullptr, on() panics) so conformance tests can
 * prove there are no silent holes.
 *
 * Division of labour: the table covers transitions of *valid* lines.
 * Misses (Invalid rows) are resolved by the bus/controller fill path,
 * which asks the protocol fill-policy queries (readFill(),
 * peerReadFill(), ...) what state to install — the Invalid row is
 * therefore entirely illegal by design.
 *
 * The inter-node directory protocol (coherence/controller) is
 * unchanged and protocol-agnostic: it tracks node-level Owned/Shared,
 * and every scheme here maps owner-class processor states onto
 * node-level ownership the same way (see ownerClass() in mem/cache).
 */

#ifndef PRISM_COHERENCE_LINE_PROTOCOL_HH
#define PRISM_COHERENCE_LINE_PROTOCOL_HH

#include <cstdint>

#include "core/config.hh"
#include "mem/cache.hh"

namespace prism {

/** Events a valid processor-cache line can observe. */
enum class LineEvent : std::uint8_t {
    LocalLoad,  //!< own processor loads (cache hit path)
    LocalStore, //!< own processor stores (hit or upgrade decision)
    SnoopRead,  //!< another processor's read appears on the node bus
    SnoopWrite, //!< another processor's write/upgrade on the node bus
    Inval,      //!< inter-node invalidation from the home directory
    Evict,      //!< replacement selects this line as victim
};

constexpr std::uint32_t kNumLineStates = 6;
constexpr std::uint32_t kNumLineEvents = 6;

/** Human-readable event name. */
const char *lineEventName(LineEvent e);

/** Side effects a transition demands of the bus/controller engine. */
enum LineAction : std::uint8_t {
    /** Supply the line's data to the requester (cache-to-cache). */
    kActSupplyData = 1u << 0,
    /** Write the (dirty) data back toward home/memory. */
    kActWritebackData = 1u << 1,
    /**
     * Node-level ownership is given up: tell the coherence controller
     * so the home directory can downgrade this node to Shared.
     */
    kActRelinquish = 1u << 2,
    /** The access cannot complete locally; start a bus transaction. */
    kActNeedsBus = 1u << 3,
    /** Clean-exclusive eviction: send the home a replacement hint. */
    kActReplaceHint = 1u << 4,
};

/** One table cell: where the line goes and what the engine must do. */
struct Transition {
    LineState next = LineState::Invalid;
    std::uint8_t actions = 0;
    bool legal = false;
};

/**
 * A line-protocol scheme: the transition table plus the fill-policy
 * queries the miss path needs.  Instances are immutable singletons —
 * get() hands out one per ProtocolScheme.
 */
class LineProtocol
{
  public:
    /** The singleton protocol for @p scheme. */
    static const LineProtocol &get(ProtocolScheme scheme);

    ProtocolScheme scheme() const { return scheme_; }
    const char *name() const { return protocolName(scheme_); }

    /** True if @p s is a reachable state under this scheme. */
    bool
    stateValid(LineState s) const
    {
        return (validStates_ >> static_cast<unsigned>(s)) & 1u;
    }

    /**
     * The transition for (s, e), or nullptr if the pair is illegal
     * under this scheme (never happens in a correct engine).
     */
    const Transition *
    tryOn(LineState s, LineEvent e) const
    {
        const Transition &t =
            table_[static_cast<unsigned>(s)][static_cast<unsigned>(e)];
        return t.legal ? &t : nullptr;
    }

    /** The transition for (s, e); panics if the pair is illegal. */
    const Transition &on(LineState s, LineEvent e) const;

    /**
     * State a read miss fills to: @p exclusive when no other cached
     * copy exists anywhere (directory granted exclusivity), shared
     * otherwise.
     */
    LineState
    readFill(bool exclusive) const
    {
        return exclusive ? readFillExclusive_ : readFillShared_;
    }

    /**
     * State the *requester* fills to when a peer supplied the line
     * shared on the node bus (MESIF grants the newest sharer Forward).
     */
    LineState peerReadFill() const { return peerReadFill_; }

    /**
     * True if an exclusive read grant from the directory must be
     * demoted immediately: the scheme has no clean-exclusive state,
     * so the node relinquishes ownership right after the fill (MSI).
     */
    bool
    demoteExclusiveReadGrant() const
    {
        return demoteExclusiveReadGrant_;
    }

    /**
     * True if only a designated copy supplies shared lines
     * cache-to-cache: plain Shared copies stay silent on snoop reads
     * and a miss with only plain-S peers falls through to the
     * controller fill path (MESIF).
     */
    bool
    sharedSupplyNeedsDesignee() const
    {
        return sharedSupplyNeedsDesignee_;
    }

  private:
    explicit LineProtocol(ProtocolScheme scheme);

    void set(LineState s, LineEvent e, LineState next,
             std::uint8_t actions);

    ProtocolScheme scheme_;
    Transition table_[kNumLineStates][kNumLineEvents];
    std::uint8_t validStates_ = 0;
    LineState readFillExclusive_ = LineState::Exclusive;
    LineState readFillShared_ = LineState::Shared;
    LineState peerReadFill_ = LineState::Shared;
    bool demoteExclusiveReadGrant_ = false;
    bool sharedSupplyNeedsDesignee_ = false;
};

} // namespace prism

#endif // PRISM_COHERENCE_LINE_PROTOCOL_HH
