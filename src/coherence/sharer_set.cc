#include "coherence/sharer_set.hh"

#include <cstdio>
#include <cstring>
#include <vector>

#include "sim/logging.hh"

namespace prism {

namespace sharer_words {

namespace {

/**
 * Per-thread freelist of spill blocks, bucketed by word count.  All
 * sets of one machine share a single width (ceil(numNodes/64)), so in
 * practice one bucket is hot; the pool turns the >64-node kernel and
 * migration paths' set churn into pointer pops instead of malloc
 * round-trips.  Thread-local because protocol handlers run on the
 * sharded event loop's worker threads.
 */
constexpr std::uint32_t kMaxPooledWords = 64; // 4096 nodes

struct BlockPool {
    std::vector<std::uint64_t *> free[kMaxPooledWords + 1];

    ~BlockPool()
    {
        for (auto &bucket : free) {
            for (std::uint64_t *b : bucket)
                delete[] b;
        }
    }
};

thread_local BlockPool tlsPool;

} // namespace

std::uint64_t *
alloc(std::uint32_t num_words)
{
    prism_assert(num_words >= 2 && num_words <= kMaxPooledWords,
                 "sharer spill of %u words out of range", num_words);
    auto &bucket = tlsPool.free[num_words];
    if (!bucket.empty()) {
        std::uint64_t *b = bucket.back();
        bucket.pop_back();
        std::memset(b, 0, num_words * sizeof(std::uint64_t));
        return b;
    }
    return new std::uint64_t[num_words]();
}

void
release(std::uint64_t *block, std::uint32_t num_words)
{
    tlsPool.free[num_words].push_back(block);
}

std::string
toString(const std::uint64_t *w, std::uint32_t nw)
{
    // Highest non-zero word first so the rendering reads as one big
    // hex number; a single word formats exactly like the old %#llx.
    std::uint32_t top = nw;
    while (top > 1 && w[top - 1] == 0)
        --top;
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%#llx",
                  static_cast<unsigned long long>(w[top - 1]));
    std::string out = buf;
    for (std::uint32_t i = top - 1; i-- > 0;) {
        std::snprintf(buf, sizeof(buf), "%016llx",
                      static_cast<unsigned long long>(w[i]));
        out += buf;
    }
    return out;
}

} // namespace sharer_words

void
SharerSet::copyFrom(const std::uint64_t *w, std::uint32_t nw)
{
    if (nw <= 1) {
        inline_ = nw ? w[0] : 0;
        ext_ = nullptr;
        extWords_ = 0;
        return;
    }
    ext_ = sharer_words::alloc(nw);
    extWords_ = nw;
    std::memcpy(ext_, w, nw * sizeof(std::uint64_t));
    inline_ = 0;
}

void
SharerSet::grow(std::uint32_t want_words)
{
    const std::uint32_t have = numWords();
    if (want_words <= have)
        return;
    std::uint64_t *nw = sharer_words::alloc(want_words);
    std::memcpy(nw, words(), have * sizeof(std::uint64_t));
    releaseExt();
    ext_ = nw;
    extWords_ = want_words;
    inline_ = 0;
}

} // namespace prism
