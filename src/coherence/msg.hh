/**
 * @file
 * Inter-node protocol messages.
 *
 * One flat message record covers the coherence protocol, the external
 * paging protocol, and lazy page migration.  Frame-number hints are
 * piggybacked on messages so the receiving PIT can usually avoid the
 * hash reverse translation (paper Section 3.2).
 */

#ifndef PRISM_COHERENCE_MSG_HH
#define PRISM_COHERENCE_MSG_HH

#include <cstdint>
#include <memory>

#include "mem/addr.hh"
#include "net/network.hh"
#include "sim/types.hh"

namespace prism {

/** Protocol message types. */
enum class MsgType : std::uint8_t {
    // Client -> home coherence requests.
    ReqS,        //!< read fetch
    ReqX,        //!< write fetch (read-exclusive)
    Upgrade,     //!< write to a locally valid Shared line
    Writeback,   //!< dirty line eviction / downgrade data
    ReplaceHint, //!< clean-exclusive eviction notice (LA-NUMA)

    // Home -> client.
    Data,        //!< line data grant from home memory
    UpgAck,      //!< upgrade granted, carries ack count
    Inv,         //!< invalidate a line; ack to `requester`
    Fetch,       //!< intervention: owner must supply the line

    // Owner -> requester / home (3-party legs).
    DataFwd,     //!< line data supplied by the previous owner
    XferNotice,  //!< owner -> home: sharing writeback / ownership moved
    FetchNack,   //!< owner no longer holds the line

    // Client -> requester.
    InvAck,      //!< invalidation acknowledgement

    // External paging (kernel-to-kernel).
    PageInReq,
    PageInRep,
    PageOutNotice,
    PageOutNoticeAck,
    HomePageOutReq,
    HomePageOutAck,

    // Lazy page migration.
    MigrateReq,   //!< dyn home -> static home: please migrate
    MigratePrep,  //!< static home -> old dyn home: hand the page off
    MigrateData,  //!< old dyn home -> new dyn home: dir + data payload
    MigrateDone,  //!< new dyn home -> static home: registry update
};

/** Human-readable message-type name. */
const char *msgTypeName(MsgType t);

/** True for message types handled by the OS kernel, not the controller. */
bool isKernelMsg(MsgType t);

/** A protocol message. */
struct Msg {
    MsgType type{};
    NodeId src = kInvalidNode;
    NodeId dst = kInvalidNode;

    GPage gpage = kInvalidGPage;
    std::uint32_t lineIdx = 0;

    /** Originating requester (preserved across forwards). */
    NodeId requester = kInvalidNode;
    /** Requester's local frame for the page (reply routing hint). */
    FrameNum requesterFrame = kInvalidFrame;
    /** Guessed frame number at the receiver (reverse-translation hint). */
    FrameNum dstFrameHint = kInvalidFrame;
    /** Home frame number (refreshes client PIT hints on replies). */
    FrameNum homeFrame = kInvalidFrame;
    /** Current dynamic home (refreshes client PIT hints on replies). */
    NodeId dynHome = kInvalidNode;

    std::uint32_t ackCount = 0; //!< invalidations the requester must collect
    bool exclusive = false;     //!< grant type on Data/DataFwd
    bool dirty = false;         //!< payload carries modified data
    bool forWrite = false;      //!< Fetch: requester wants exclusivity
    bool keepShared = false;    //!< Writeback: sender keeps a Shared copy
    std::uint64_t aux = 0;      //!< type-specific extra payload
    /** Bulk payload (migration: directory + kernel metadata). */
    std::shared_ptr<void> payload;

    /** Network size class of this message type. */
    MsgSize sizeClass() const;
};

} // namespace prism

#endif // PRISM_COHERENCE_MSG_HH
