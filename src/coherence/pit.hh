/**
 * @file
 * Page Information Table (paper Section 3.2, Figure 5).
 *
 * The PIT translates between node-private physical frames and global
 * pages.  Forward translation (frame -> global page) is a direct
 * indexed lookup; reverse translation (global page -> frame) first
 * tries the frame-number hint piggybacked on coherence messages and
 * falls back to a hash search.  Each entry also records the page's
 * static and (cached) dynamic home, the cached home frame number, the
 * frame's mode, the fine-grain tags for S-COMA frames, and an optional
 * capability list implementing the inter-node memory firewall.
 */

#ifndef PRISM_COHERENCE_PIT_HH
#define PRISM_COHERENCE_PIT_HH

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "coherence/fine_grain_tags.hh"
#include "coherence/page_mode.hh"
#include "coherence/sharer_set.hh"
#include "mem/addr.hh"
#include "sim/types.hh"

namespace prism {

/** Bitmask over lines of a page, for utilization accounting. */
class LineMask
{
  public:
    explicit LineMask(std::uint32_t lines)
        : words_((lines + 63) / 64, 0), lines_(lines)
    {
    }

    void set(std::uint32_t i) { words_[i >> 6] |= 1ULL << (i & 63); }

    bool
    test(std::uint32_t i) const
    {
        return (words_[i >> 6] >> (i & 63)) & 1;
    }

    /** Number of set bits. */
    std::uint32_t
    popcount() const
    {
        std::uint32_t n = 0;
        for (auto w : words_)
            n += static_cast<std::uint32_t>(__builtin_popcountll(w));
        return n;
    }

    std::uint32_t lines() const { return lines_; }

  private:
    std::vector<std::uint64_t> words_;
    std::uint32_t lines_;
};

/** One PIT entry: the translation state of one local page frame. */
struct PitEntry {
    GPage gpage = kInvalidGPage;    //!< global page backed by this frame
    NodeId staticHome = kInvalidNode;
    NodeId dynHome = kInvalidNode;  //!< cached dynamic home (may be stale)
    FrameNum homeFrameHint = kInvalidFrame; //!< cached home frame number
    PageMode mode = PageMode::Local;

    /** Fine-grain tags; present only for S-COMA frames. */
    std::unique_ptr<FrameTags> tags;

    /**
     * Capability list: set of nodes allowed to act on this frame
     * remotely.  Empty means "no firewall" (all nodes allowed).
     */
    SharerSet capabilities;

    /** Lines of this frame ever accessed (Table 3 utilization). */
    std::unique_ptr<LineMask> accessed;

    /** Last tick the controller touched this frame (page LRU approx). */
    Tick lastAccess = 0;

    /** Remote fetches for this page since mapping (policy input). */
    std::uint64_t remoteFetches = 0;
};

/** The Page Information Table of one node's coherence controller. */
class Pit
{
  public:
    /**
     * @param pit_cycles      SRAM lookup time (2) or DRAM (10)
     * @param hash_extra      additional cycles for a hash reverse search
     */
    Pit(Cycles pit_cycles, Cycles hash_extra)
        : pitCycles_(pit_cycles), hashExtra_(hash_extra)
    {
    }

    /** Install a translation for @p frame. @return the new entry. */
    PitEntry &install(FrameNum frame, GPage gpage, NodeId static_home,
                      NodeId dyn_home, FrameNum home_frame_hint,
                      PageMode mode, std::uint32_t lines_per_page,
                      FgTag init_tag);

    /** Install a Local-mode entry (private memory, no global page). */
    PitEntry &installLocal(FrameNum frame, std::uint32_t lines_per_page);

    /** Remove the entry for @p frame (page-out). */
    void remove(FrameNum frame);

    /** Entry for @p frame, or nullptr. */
    PitEntry *entry(FrameNum frame);
    const PitEntry *entry(FrameNum frame) const;

    /**
     * Zero-cost structural query: frame currently mapping @p gpage,
     * or kInvalidFrame.  (Timing-free; used by kernel bookkeeping.)
     */
    FrameNum
    frameOf(GPage gpage) const
    {
        auto it = byPage_.find(gpage);
        return it == byPage_.end() ? kInvalidFrame : it->second;
    }

    /**
     * Reverse-translate @p gpage using @p hint first.
     * @param[out] hash_used true if the hash fallback was needed
     * @return the frame, or kInvalidFrame if the page is not mapped.
     */
    FrameNum reverse(GPage gpage, FrameNum hint, bool &hash_used) const;

    /** Timing of a forward lookup. */
    Cycles forwardCycles() const { return pitCycles_; }

    /** Timing of a reverse lookup. */
    Cycles
    reverseCycles(bool hash_used) const
    {
        return hash_used ? pitCycles_ + hashExtra_ : pitCycles_;
    }

    /**
     * Memory-firewall check: may @p node perform a remote write-class
     * action on @p frame?  Entries with an empty capability list admit
     * everyone (firewall disabled for that page).
     */
    bool writeAllowed(FrameNum frame, NodeId node) const;

    /** Count of wild writes rejected by the firewall. */
    std::uint64_t rejectedWrites() const { return rejectedWrites_; }

    /** Record a firewall rejection. */
    void noteRejectedWrite() { ++rejectedWrites_; }

    /** Number of live entries. */
    std::size_t size() const { return byFrame_.size(); }

    /** All live frames mapping global pages (policy scans). */
    std::vector<FrameNum> globalFrames() const;

    /** All live frames, local-mode included (accounting scans). */
    std::vector<FrameNum> allFrames() const;

  private:
    Cycles pitCycles_;
    Cycles hashExtra_;
    std::unordered_map<FrameNum, PitEntry> byFrame_;
    std::unordered_map<GPage, FrameNum> byPage_;
    std::uint64_t rejectedWrites_ = 0;
};

} // namespace prism

#endif // PRISM_COHERENCE_PIT_HH
