/**
 * @file
 * The PRISM coherence controller (paper Section 3).
 *
 * One controller sits between each node's memory bus and network
 * interface.  It dispatches protocol handlers based on the page-frame
 * mode of the physical address (Figure 4): Local-mode transactions are
 * ignored, S-COMA transactions consult the frame's fine-grain tags,
 * LA-NUMA transactions are serviced by fetching from the page's home,
 * and Command-mode frames form the kernel's interface to the PIT.
 *
 * The controller implements both sides of the inter-node protocol: the
 * client side (misses, upgrades, writebacks, incoming invalidations and
 * interventions) and the home side (full-map directory, per-line
 * request serialization, 2-party and 3-party transactions, serialized
 * invalidation fan-out), plus lazy page migration (Section 3.5).
 *
 * Protocol handlers run as coroutines on the deterministic event
 * queue; controller occupancy, PIT, directory-cache, memory and
 * network timings are charged along the way.
 */

#ifndef PRISM_COHERENCE_CONTROLLER_HH
#define PRISM_COHERENCE_CONTROLLER_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "coherence/directory.hh"
#include "coherence/msg.hh"
#include "coherence/pit.hh"
#include "core/config.hh"
#include "mem/addr.hh"
#include "mem/cache.hh"
#include "mem/dram.hh"
#include "net/network.hh"
#include "obs/metrics.hh"
#include "sim/coro_sync.hh"
#include "sim/event_queue.hh"
#include "sim/task.hh"

namespace prism {

class ProtocolOracle;
class TraceSink;

/** How a processor miss was ultimately satisfied. */
enum class MissSource : std::uint8_t {
    LocalMem, //!< data supplied by this node's memory (page cache/local)
    Remote,   //!< data or permission obtained through the protocol
    Retry,    //!< line in Transit or already outstanding; re-arbitrate
    BadFrame, //!< the frame's mapping was torn down; re-translate
};

/** Result of CoherenceController::serviceMiss. */
struct MissResult {
    MissSource source = MissSource::Retry;
    bool exclusive = false; //!< processor may cache the line E/M
};

// (An invalidation that races a non-exclusive reply poisons the
// transaction; serviceMiss converts that to a Retry outcome.)

/** Outcome of a local processor-cache intervention. */
struct InterventionResult {
    Tick done;      //!< tick at which the intervention completes
    bool found;     //!< some processor cache held the line
    bool dirty;     //!< a Modified copy was extracted
    bool exclusive; //!< a copy was held E or M (owner-class copy)
};

/**
 * Node-side services the controller needs: processor-cache
 * interventions and kernel cooperation for page migration.
 * Implemented by core::Node to keep the coherence layer independent
 * of the machine assembly.
 */
class ControllerHost
{
  public:
    virtual ~ControllerHost() = default;

    /**
     * Snoop all local processor caches for a line of @p frame.
     * Invalidate the copies (@p invalidate) or downgrade them to
     * Shared.  Dirty data, if found, is written toward memory.
     */
    virtual InterventionResult intervene(FrameNum frame,
                                         std::uint32_t line_idx,
                                         bool invalidate, Tick at) = 0;

    /**
     * True while any node-level bus transaction (miss, upgrade or
     * cache-to-cache fill) is outstanding on a line of @p frame.
     * Page flushes must wait for these to drain.
     */
    virtual bool anyBusPending(FrameNum frame) const = 0;

    /** True if any local processor cache holds a line of @p frame. */
    virtual bool anyCachedCopy(FrameNum frame) const = 0;

    /**
     * True if any local processor cache holds this specific line
     * (any valid state).  Decides whether an Owned-line eviction's
     * writeback keeps the node registered as a sharer (MOESI: peer
     * Shared copies can outlive the Owned copy).
     */
    virtual bool lineCached(FrameNum frame,
                            std::uint32_t line_idx) const = 0;

    /** Allocate a real frame to receive a migrating home page. */
    virtual FrameNum migrationAllocFrame(GPage gp) = 0;

    /** Unmap and free the departing home page's frame. */
    virtual void migrationFreeFrame(FrameNum frame, GPage gp) = 0;

    /** Home-kernel client set for @p gp (migration metadata). */
    virtual SharerSet homeKernelClients(GPage gp) = 0;

    /** Install home-kernel metadata for an arriving page. */
    virtual void homeKernelAdopt(GPage gp, const SharerSet &clients) = 0;

    /** Drop home-kernel metadata for a departed page. */
    virtual void homeKernelDepart(GPage gp) = 0;
};

/**
 * Per-node statistics the controller maintains.  Scoped handles: hot
 * paths still do plain integer increments, and once bound via
 * registerMetrics the values are enumerable by label.
 */
struct ControllerStats {
    ScopedCounter remoteMisses;   //!< fetched data from a remote node
    ScopedCounter localMemHits;   //!< misses satisfied by local memory
    ScopedCounter upgrades;       //!< write permission w/o data fetch
    ScopedCounter retries;        //!< bus retries (Transit et al.)
    ScopedCounter invalsSent;
    ScopedCounter invalsReceived;
    ScopedCounter fetchesServed;  //!< 3-party interventions served
    ScopedCounter nacksSent;
    ScopedCounter writebacksSent;
    ScopedCounter replaceHintsSent;
    ScopedCounter forwards;       //!< misdirected requests forwarded
    ScopedCounter homeRequests;
    ScopedCounter migrationsOut;
    ScopedCounter migrationsIn;
    ScopedCounter firewallRejects;
};

/** Per-transaction-type latency distributions (request to grant). */
struct ControllerLatency {
    ScopedHistogram read2{latencyBounds()};     //!< 2-party data fetch
    ScopedHistogram read3{latencyBounds()};     //!< 3-party data fetch
    ScopedHistogram upgrade{latencyBounds()};   //!< permission-only
    ScopedHistogram writeback{latencyBounds()}; //!< home-side acceptance
    ScopedHistogram migration{latencyBounds()}; //!< prep through handoff
};

/** The coherence controller of one node. */
class CoherenceController
{
  public:
    CoherenceController(NodeId self, const MachineConfig &cfg,
                        EventQueue &eq, Dram &dram, ControllerHost &host,
                        std::function<NodeId(GPage)> static_home_of,
                        std::function<void(Msg &&)> send);

    NodeId self() const { return self_; }
    Pit &pit() { return pit_; }
    const Pit &pit() const { return pit_; }
    Directory &directory() { return dir_; }
    const ControllerStats &stats() const { return stats_; }
    const LineGeometry &geometry() const { return geo_; }

    // --- Processor side -------------------------------------------------

    /**
     * Service an L2 miss (or upgrade) that local snooping could not
     * satisfy.  Runs on the processor's coroutine; on return @p out
     * says whether data/permission is ready or the bus must retry.
     *
     * @param frame       the physical frame being accessed
     * @param line_idx    line index within the page
     * @param for_write   the processor needs exclusivity
     * @param local_copy  a valid local copy of the data exists
     *                    (processor S copy or peer S copy), so an
     *                    Upgrade (permission-only) suffices
     */
    CoTask serviceMiss(FrameNum frame, std::uint32_t line_idx,
                       bool for_write, bool local_copy, MissResult *out);

    /**
     * Final validity check immediately before a processor-cache fill.
     * Closes the window between transaction completion and the bus
     * fill: an invalidation arriving in that window must prevent the
     * stale fill.  For LA-NUMA frames this consumes the fill token
     * created by the transaction; for S-COMA frames it re-checks the
     * fine-grain tag against the intended fill state: M/E fills
     * require an Exclusive tag, S fills any valid tag.
     * @retval false the fill must be abandoned (caller retries).
     */
    bool finishFill(FrameNum frame, std::uint32_t line_idx, Mesi intended);

    /**
     * Note the eviction of a line from the node's last-level caches.
     * S-COMA/Local dirty victims land in local memory; LA-NUMA dirty
     * victims are written back to the home, and clean-exclusive
     * LA-NUMA victims send a replacement hint.
     */
    void evictLine(FrameNum frame, std::uint32_t line_idx, Mesi victim_state);

    /**
     * An M/E line was downgraded to Shared by an intra-node
     * cache-to-cache read.  For LA-NUMA frames ownership must be
     * relinquished to the home (keep-shared writeback, carrying data
     * if the copy was dirty) — otherwise the node's now-Shared copies
     * could later be dropped silently while the full-map directory
     * still records the node as owner.  For Local/S-COMA frames dirty
     * data is reflected into local memory.
     */
    void reflectDowngrade(FrameNum frame, std::uint32_t line_idx,
                          bool dirty);

    // --- Kernel command interface (paging) -------------------------------

    /** Install a Local-mode mapping (private memory). */
    void installLocalMapping(FrameNum frame);

    /** Install a client mapping (after a client page fault). */
    void installClientMapping(FrameNum frame, GPage gpage,
                              NodeId static_home, NodeId dyn_home,
                              FrameNum home_frame, PageMode mode);

    /** Install a home mapping (page-in at the home node). */
    void installHomeMapping(FrameNum frame, GPage gpage);

    /**
     * Flush a client page for page-out: wait for Transit lines to
     * settle, invalidate local processor copies, write dirty lines
     * back to the home.  @p wb_lines (optional) receives the number of
     * lines written back.
     */
    CoTask flushClientPage(FrameNum frame, std::uint64_t *wb_lines);

    /** Remove a client PIT entry after flushing. */
    void removeClientMapping(FrameNum frame);

    /**
     * Synchronous check that a flushed client page is truly quiet:
     * no bus- or controller-level transaction on its lines, no valid
     * fine-grain tag, and no processor-cache copy.  The kernel loops
     * flushClientPage until this holds, then removes the mapping in
     * the same event (so nothing can slip in between).
     */
    bool clientPageQuiescent(FrameNum frame) const;

    /**
     * Home side of a client page-out: drop the client from every
     * line's sharer set.  @return directory access cycles charged.
     */
    Cycles homeRemoveClient(GPage gpage, NodeId client);

    /**
     * Home page-out: drop directory state for @p gpage (all clients
     * must have been flushed first) and remove the home PIT entry.
     */
    void removeHomeMapping(FrameNum frame, GPage gpage);

    /**
     * Dyn-Util support: among client S-COMA frames in @p candidates,
     * find the one with the most Invalid fine-grain tags, skipping
     * frames with any Transit line.  kInvalidFrame if none qualify.
     */
    FrameNum mostInvalidFrame(const std::vector<FrameNum> &candidates) const;

    /** True if this node is currently the dynamic home of @p gpage. */
    bool isDynHome(GPage gpage) const { return dir_.hasPage(gpage); }

    /**
     * True when no protocol handler holds a line lock of @p gpage and
     * no 3-party intervention is outstanding for its lines.  Home
     * page-outs must wait for this before tearing down the directory.
     */
    bool homePageQuiescent(GPage gpage) const;

    /** Trigger a lazy migration of @p gpage toward @p new_home. */
    void requestMigration(GPage gpage, NodeId new_home);

    /**
     * Static-home registry lookup: current dynamic home of @p gpage,
     * or kInvalidNode if this node anchors no such page.
     */
    NodeId registryLookup(GPage gpage) const;

    /**
     * Bind this controller's counters and latency histograms into
     * @p reg under component "ctrl", node self().
     */
    void registerMetrics(MetricRegistry &reg);

    /** Attach the optional Chrome-trace sink (nullptr to disable). */
    void setTraceSink(TraceSink *t) { trace_ = t; }

    // --- Network side ------------------------------------------------------

    /** Deliver a protocol message to this controller. */
    void onMessage(Msg m);

    /** Outstanding client transactions (draining / test support). */
    std::size_t pendingTransactions() const { return pending_.size(); }

    /** Attach the protocol oracle (Machine construction). */
    void setOracle(ProtocolOracle *o) { oracle_ = o; }

  private:
    /** Client-side transaction awaiting a reply plus ack collection. */
    struct ClientTxn {
        explicit ClientTxn(EventQueue &eq) : latch(eq) {}
        CoLatch latch;
        bool exclusive = false;
        bool dataFetched = false; //!< data crossed the network
        bool threeParty = false;  //!< data supplied by the previous owner
        bool invalidatedMidFlight = false;
        NodeId dynHome = kInvalidNode;
        FrameNum homeFrame = kInvalidFrame;
    };

    /** Home-side wait for an owner's response in a 3-party leg. */
    struct HomeWait {
        explicit HomeWait(EventQueue &eq) : event(eq) {}
        CoEvent event;
        bool nacked = false;
        bool dirty = false;
    };

    /** Per-home-page migration/traffic metadata. */
    struct HomeMeta {
        FrameNum homeFrame = kInvalidFrame;
        std::vector<std::uint32_t> accessesByNode;
        std::uint64_t totalAccesses = 0;
        bool migrating = false;
        /** Cached client frame numbers (dirClientFrameHints option). */
        std::vector<FrameNum> clientFrames;
    };

    /** Payload attached to a MigrateData message. */
    struct MigrationPayload {
        std::vector<DirEntry> dir;
        SharerSet kernelClients;
    };

    // Timing helpers.
    DelayAwaiter delay(Cycles c) { return DelayAwaiter(eq_, c); }
    DelayAwaiter occupy(Cycles c);
    DelayAwaiter dramAccess();

    // Messaging helpers.
    void send(Msg &&m);
    void forward(Msg &&m);

    CoMutex &lineLock(GPage gpage, std::uint32_t line_idx);

    // Client-side pieces.  @p poisoned reports a racing invalidation
    // that voided a non-exclusive grant.
    CoTask runClientTxn(MsgType mt, PitEntry &e, FrameNum frame,
                        std::uint32_t line_idx, MissResult *out,
                        bool *poisoned);

    // Handler coroutines (network side).
    FireAndForget handleHomeRequest(Msg m);
    FireAndForget handleWriteback(Msg m);
    FireAndForget handleClientInv(Msg m);
    FireAndForget handleClientFetch(Msg m);
    FireAndForget handleClientReply(Msg m);
    FireAndForget handleMigratePrep(Msg m);
    FireAndForget handleMigrateData(Msg m);

    // Home-side helpers.
    void noteHomeAccess(GPage gpage, NodeId requester);
    void maybeTriggerMigration(GPage gpage);

    NodeId self_;
    const MachineConfig &cfg_;
    EventQueue &eq_;
    Dram &dram_;
    ControllerHost &host_;
    std::function<NodeId(GPage)> staticHomeOf_;
    std::function<void(Msg &&)> sendFn_;
    LineGeometry geo_;

    Pit pit_;
    Directory dir_;
    FcfsResource ctrlRes_; //!< protocol-engine occupancy

    /** Granted-but-not-yet-filled LA-NUMA lines (see finishFill). */
    struct FillToken {
        bool invalidated = false;
    };

    std::unordered_map<GLine, ClientTxn *> pending_;
    std::unordered_map<GLine, FillToken> fillPending_;
    /**
     * Lines of each page with an outstanding client transaction or
     * fill token, so the page-flush drain checks probe one counter
     * instead of walking every line of the page.
     */
    std::unordered_map<GPage, std::uint32_t> pendingByPage_;

    void pendingPageAdd(GPage gp) { ++pendingByPage_[gp]; }

    void
    pendingPageRemove(GPage gp)
    {
        auto it = pendingByPage_.find(gp);
        if (--it->second == 0)
            pendingByPage_.erase(it);
    }

    std::unordered_map<GLine, HomeWait *> homeWaits_;
    std::unordered_map<GPage, std::vector<std::unique_ptr<CoMutex>>> locks_;
    std::unordered_map<GPage, HomeMeta> homeMeta_;
    /** Static-home registry: current dynamic home of pages I anchor. */
    std::unordered_map<GPage, NodeId> registry_;
    /** Tombstones for pages that migrated away from this node. */
    std::unordered_map<GPage, NodeId> movedTo_;

    ProtocolOracle *oracle_ = nullptr;
    TraceSink *trace_ = nullptr;
    /** Remaining invalidations to skip (cfg.mutationSkipInvals). */
    std::uint32_t mutationBudget_ = 0;

    ControllerStats stats_;
    ControllerLatency latency_;

    /**
     * Per-node memory-footprint gauges (component "footprint"),
     * sampled at report time: directory arena bytes, PIT entries and
     * modeled fine-grain tag bytes (2 bits per line).  These size the
     * coherence metadata cost of a machine preset (docs/PERFORMANCE.md
     * §9); scripts/strip_report.py drops them from byte-identity
     * comparisons alongside the workload histograms.
     */
    ScopedGauge gaugeDirBytes_;
    ScopedGauge gaugeDirPages_;
    ScopedGauge gaugePitEntries_;
    ScopedGauge gaugeTagBytes_;

    /** Modeled fine-grain tag bytes across live S-COMA frames. */
    double tagBytesModeled() const;
};

} // namespace prism

#endif // PRISM_COHERENCE_CONTROLLER_HH
