/**
 * @file
 * Page-mode selection policies (paper Section 4.2).
 *
 * A policy decides, at each client page fault, whether to back the
 * faulting global page with a real S-COMA frame or an imaginary
 * LA-NUMA frame, and may perform paging activity (page-outs, mode
 * conversions) to make room.  Converting a page between modes is a
 * purely node-local decision, exercised only at page-fault time — the
 * run-time policies add no overhead to normal operation.
 */

#ifndef PRISM_POLICY_PAGE_POLICY_HH
#define PRISM_POLICY_PAGE_POLICY_HH

#include <memory>

#include "coherence/page_mode.hh"
#include "core/config.hh"
#include "mem/addr.hh"
#include "sim/task.hh"

namespace prism {

class Kernel;

/** Interface: decide the mode for a faulting client page. */
class PagePolicy
{
  public:
    virtual ~PagePolicy() = default;

    /**
     * Choose the page mode for a client fault on @p gp.  Runs on the
     * faulting processor's coroutine; may page out victims.
     */
    virtual CoTask chooseClientMode(Kernel &k, GPage gp, PageMode *out) = 0;

    /** Policy name as used in the paper. */
    virtual const char *name() const = 0;
};

/** SCOMA: all client pages S-COMA; page cache effectively infinite. */
class ScomaPolicy : public PagePolicy
{
  public:
    CoTask chooseClientMode(Kernel &k, GPage gp, PageMode *out) override;
    const char *name() const override { return "SCOMA"; }
};

/** LANUMA: all client pages LA-NUMA (CC-NUMA behaviour). */
class LaNumaPolicy : public PagePolicy
{
  public:
    CoTask chooseClientMode(Kernel &k, GPage gp, PageMode *out) override;
    const char *name() const override { return "LANUMA"; }
};

/**
 * SCOMA-70: S-COMA with a capped page cache; on overflow the
 * least-recently-used client page is paged out (no mode conversion).
 */
class Scoma70Policy : public PagePolicy
{
  public:
    CoTask chooseClientMode(Kernel &k, GPage gp, PageMode *out) override;
    const char *name() const override { return "SCOMA-70"; }
};

/**
 * Dyn-FCFS: allocate S-COMA until the page cache fills, then map new
 * pages LA-NUMA.  Pure OS policy; no page-outs, no hardware support.
 */
class DynFcfsPolicy : public PagePolicy
{
  public:
    CoTask chooseClientMode(Kernel &k, GPage gp, PageMode *out) override;
    const char *name() const override { return "Dyn-FCFS"; }
};

/**
 * Dyn-Util: on overflow, query the controller for the client frame
 * with the most Invalid fine-grain tags (skipping Transit frames),
 * convert that page to LA-NUMA, and reallocate its frame.
 */
class DynUtilPolicy : public PagePolicy
{
  public:
    CoTask chooseClientMode(Kernel &k, GPage gp, PageMode *out) override;
    const char *name() const override { return "Dyn-Util"; }
};

/**
 * Dyn-LRU: on overflow, page out the least-recently-used client page
 * and convert it to LA-NUMA mode for its future faults.
 */
class DynLruPolicy : public PagePolicy
{
  public:
    CoTask chooseClientMode(Kernel &k, GPage gp, PageMode *out) override;
    const char *name() const override { return "Dyn-LRU"; }
};

/**
 * Dyn-Both (extension, Section 4.3's future-work remark): Dyn-LRU
 * plus R-NUMA-style back-conversion — mapped LA-NUMA pages that
 * accumulate many remote refetches are reverted to S-COMA.
 */
class DynBothPolicy : public PagePolicy
{
  public:
    explicit DynBothPolicy(std::uint64_t refetch_threshold = 128)
        : refetchThreshold_(refetch_threshold)
    {
    }

    CoTask chooseClientMode(Kernel &k, GPage gp, PageMode *out) override;
    const char *name() const override { return "Dyn-Both"; }

  private:
    std::uint64_t refetchThreshold_;
};

/** Factory: build the policy object for a configuration. */
std::unique_ptr<PagePolicy> makePolicy(PolicyKind kind);

} // namespace prism

#endif // PRISM_POLICY_PAGE_POLICY_HH
