#include "policy/page_policy.hh"

#include "os/kernel.hh"
#include "sim/logging.hh"

namespace prism {

CoTask
ScomaPolicy::chooseClientMode(Kernel &, GPage, PageMode *out)
{
    *out = PageMode::Scoma;
    co_return;
}

CoTask
LaNumaPolicy::chooseClientMode(Kernel &k, GPage, PageMode *out)
{
    *out = k.config().ccNumaBypass ? PageMode::CcNuma : PageMode::LaNuma;
    co_return;
}

CoTask
Scoma70Policy::chooseClientMode(Kernel &k, GPage, PageMode *out)
{
    // Page out LRU client pages until below the cap; the freed frame
    // backs the faulting page.  No mode conversion in this policy.
    while (k.clientCacheFull()) {
        GPage victim = k.lruClientPage();
        if (victim == kInvalidGPage)
            break; // every candidate busy; admit over cap
        co_await k.pageOutClient(victim, false);
    }
    *out = PageMode::Scoma;
}

CoTask
DynFcfsPolicy::chooseClientMode(Kernel &k, GPage gp, PageMode *out)
{
    // Sticky: once mapped LA-NUMA the page stays LA-NUMA at this node.
    if (k.modeOverride(gp) == PageMode::LaNuma) {
        *out = PageMode::LaNuma;
        co_return;
    }
    if (k.clientCacheFull()) {
        k.setModeOverride(gp, PageMode::LaNuma);
        *out = PageMode::LaNuma;
        co_return;
    }
    *out = PageMode::Scoma;
}

CoTask
DynUtilPolicy::chooseClientMode(Kernel &k, GPage gp, PageMode *out)
{
    if (k.modeOverride(gp) == PageMode::LaNuma) {
        *out = PageMode::LaNuma;
        co_return;
    }
    while (k.clientCacheFull()) {
        // Ask the controller for the client frame with the most
        // Invalid fine-grain tags (lightly used / communication data).
        FrameNum victim_frame =
            k.controller().mostInvalidFrame(k.clientScomaFrameList());
        GPage victim = (victim_frame == kInvalidFrame)
                           ? kInvalidGPage
                           : k.pageOfClientFrame(victim_frame);
        if (victim == kInvalidGPage || k.pageBusy(victim)) {
            // No convertible frame right now: fall back to LA-NUMA for
            // the faulting page.
            k.setModeOverride(gp, PageMode::LaNuma);
            *out = PageMode::LaNuma;
            co_return;
        }
        co_await k.pageOutClient(victim, true);
    }
    *out = PageMode::Scoma;
}

CoTask
DynLruPolicy::chooseClientMode(Kernel &k, GPage gp, PageMode *out)
{
    if (k.modeOverride(gp) == PageMode::LaNuma) {
        *out = PageMode::LaNuma;
        co_return;
    }
    while (k.clientCacheFull()) {
        GPage victim = k.lruClientPage();
        if (victim == kInvalidGPage) {
            k.setModeOverride(gp, PageMode::LaNuma);
            *out = PageMode::LaNuma;
            co_return;
        }
        co_await k.pageOutClient(victim, true);
    }
    *out = PageMode::Scoma;
}

CoTask
DynBothPolicy::chooseClientMode(Kernel &k, GPage gp, PageMode *out)
{
    // Revert heavily refetched LA-NUMA pages back to S-COMA
    // (amortized scan at fault time).
    co_await k.reconsiderLaNumaPages(refetchThreshold_, 4);

    if (k.modeOverride(gp) == PageMode::LaNuma) {
        *out = PageMode::LaNuma;
        co_return;
    }
    while (k.clientCacheFull()) {
        GPage victim = k.lruClientPage();
        if (victim == kInvalidGPage) {
            k.setModeOverride(gp, PageMode::LaNuma);
            *out = PageMode::LaNuma;
            co_return;
        }
        co_await k.pageOutClient(victim, true);
    }
    *out = PageMode::Scoma;
}

std::unique_ptr<PagePolicy>
makePolicy(PolicyKind kind)
{
    switch (kind) {
      case PolicyKind::Scoma:
        return std::make_unique<ScomaPolicy>();
      case PolicyKind::LaNuma:
        return std::make_unique<LaNumaPolicy>();
      case PolicyKind::Scoma70:
        return std::make_unique<Scoma70Policy>();
      case PolicyKind::DynFcfs:
        return std::make_unique<DynFcfsPolicy>();
      case PolicyKind::DynUtil:
        return std::make_unique<DynUtilPolicy>();
      case PolicyKind::DynLru:
        return std::make_unique<DynLruPolicy>();
      case PolicyKind::DynBoth:
        return std::make_unique<DynBothPolicy>();
    }
    panic("unknown policy kind");
}

} // namespace prism
