#!/usr/bin/env python3
"""Validate a PRISM JSON report (run report or bench report).

Usage: validate_report.py <report.json>

Checks the schema marker and version, and for every embedded run
report verifies the required sections: config, phases, metrics,
per-node counters, and latency histograms with ordered quantiles.
Exits non-zero with a message on the first violation.
"""

import json
import sys

SCHEMA_VERSION = 4

RUN_REPORT_KEYS = [
    "schema", "schemaVersion", "generatedAt", "config", "phases",
    "metrics", "machineCounters", "nodes", "histograms",
]

CONFIG_KEYS = [
    "numNodes", "procsPerNode", "policy", "protocol", "seed",
    "l1Bytes", "l2Bytes", "lineBytes", "migrationEnabled",
    "frontend", "traceWorkload", "traceOps",
]

PROTOCOLS = ("msi", "mesi", "moesi", "mesif")

FRONTENDS = ("exec", "record", "replay")

METRICS_KEYS = [
    "execCycles", "totalCycles", "remoteMisses", "clientPageOuts",
    "upgrades", "invalidations", "networkMessages", "pageFaults",
    "framesAllocated", "avgUtilization", "references", "forwards",
    "migrations", "clientScomaPeakPerNode",
]

HIST_KEYS = [
    "component", "name", "unit", "count", "max", "mean",
    "p50", "p95", "p99", "bounds", "counts",
]


def fail(msg):
    print(f"validate_report: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def require(cond, msg):
    if not cond:
        fail(msg)


def check_run_report(r, where):
    for k in RUN_REPORT_KEYS:
        require(k in r, f"{where}: missing key '{k}'")
    require(r["schema"] == "prism.run_report",
            f"{where}: bad schema marker {r['schema']!r}")
    require(r["schemaVersion"] == SCHEMA_VERSION,
            f"{where}: schemaVersion {r['schemaVersion']} != "
            f"{SCHEMA_VERSION}")
    for k in CONFIG_KEYS:
        require(k in r["config"], f"{where}: config missing '{k}'")
    require(r["config"]["protocol"] in PROTOCOLS,
            f"{where}: unknown protocol "
            f"{r['config']['protocol']!r}")
    require(r["config"]["frontend"] in FRONTENDS,
            f"{where}: unknown frontend "
            f"{r['config']['frontend']!r}")
    if r["config"]["frontend"] != "exec":
        require(r["config"]["traceOps"] > 0,
                f"{where}: {r['config']['frontend']} run with "
                f"traceOps == 0")
    for k in METRICS_KEYS:
        require(k in r["metrics"], f"{where}: metrics missing '{k}'")

    nodes = r["nodes"]
    require(len(nodes) == r["config"]["numNodes"],
            f"{where}: {len(nodes)} node sections for "
            f"{r['config']['numNodes']} nodes")
    for node in nodes:
        require("id" in node and "counters" in node
                and "gauges" in node,
                f"{where}: malformed node section")
        require(any(k.startswith("ctrl.") for k in node["counters"]),
                f"{where}: node {node['id']} has no ctrl counters")

    require(len(r["histograms"]) > 0, f"{where}: no histograms")
    sampled = 0
    for h in r["histograms"]:
        for k in HIST_KEYS:
            require(k in h, f"{where}: histogram missing '{k}'")
        require(len(h["counts"]) == len(h["bounds"]) + 1,
                f"{where}: {h['name']}: counts/bounds length mismatch")
        require(sum(h["counts"]) == h["count"],
                f"{where}: {h['name']}: bucket counts do not sum")
        if h["count"] > 0:
            sampled += 1
            require(h["p50"] <= h["p95"] <= h["p99"],
                    f"{where}: {h['name']}: quantiles out of order")
    require(sampled > 0, f"{where}: every histogram is empty")

    # Cross-check: RunMetrics is derived from the same counters the
    # node sections show.  The metrics cover only the parallel phase
    # (when the workload brackets it), so they can never exceed the
    # whole-run per-node totals.
    misses = sum(n["counters"].get("ctrl.remoteMisses", 0)
                 for n in nodes)
    require(r["metrics"]["remoteMisses"] <= misses,
            f"{where}: metrics.remoteMisses "
            f"{r['metrics']['remoteMisses']} exceeds per-node sum "
            f"{misses}")
    net = r["machineCounters"].get("net.messages", 0)
    require(r["metrics"]["networkMessages"] <= net,
            f"{where}: metrics.networkMessages exceeds net.messages")


def main():
    if len(sys.argv) != 2:
        print(__doc__, file=sys.stderr)
        sys.exit(2)
    path = sys.argv[1]
    with open(path) as f:
        doc = json.load(f)

    schema = doc.get("schema")
    if schema == "prism.bench_report":
        require(doc.get("schemaVersion") == SCHEMA_VERSION,
                f"bench schemaVersion != {SCHEMA_VERSION}")
        for k in ("bench", "scale", "frontend", "runs"):
            require(k in doc, f"bench report missing '{k}'")
        require(doc["frontend"] in FRONTENDS,
                f"bench report: unknown frontend {doc['frontend']!r}")
        require(len(doc["runs"]) > 0, "bench report has no runs")
        for i, run in enumerate(doc["runs"]):
            for k in ("app", "policy", "report"):
                require(k in run, f"runs[{i}] missing '{k}'")
            check_run_report(run["report"],
                             f"runs[{i}] ({run.get('app')}/"
                             f"{run.get('policy')})")
        print(f"validate_report: OK: {path}: bench "
              f"'{doc['bench']}', {len(doc['runs'])} runs")
    elif schema == "prism.run_report":
        check_run_report(doc, path)
        print(f"validate_report: OK: {path}: single run report")
    else:
        fail(f"unknown schema marker {schema!r}")


if __name__ == "__main__":
    main()
