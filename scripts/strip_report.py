#!/usr/bin/env python3
"""Strip a PRISM JSON report down to its deterministic core.

Usage: strip_report.py <report.json>

Prints the report with the keys that may legitimately differ between
an execution and a replay of the same simulation removed:
`generatedAt` (wall-clock timestamp), `schemaVersion` (so the check
spans schema bumps that only add keys) and the frontend-provenance
fields `frontend`, `traceWorkload` and `traceOps` (run-report config
and bench-report top level).  Histogram entries with component
`workload` (e.g. the KV store's per-op request latencies) are dropped
too: they come from the workload body itself, which a trace replay
does not run.  Gauges in the `footprint` component (host-side memory
accounting: directory bytes, PIT entries, tag bytes) are likewise
dropped — they describe the simulator's own data structures, not the
simulated machine.  The output is canonical JSON, so two stripped reports
are byte-comparable with `diff`/`cmp`; CI uses this for the
replay-determinism check (docs/TRACE.md).
"""

import json
import sys

STRIP_KEYS = ("generatedAt", "schemaVersion", "frontend",
              "traceWorkload", "traceOps")


def strip(doc):
    if isinstance(doc, dict):
        return {k: (dict((gk, gv) for gk, gv in v.items()
                         if not gk.startswith("footprint."))
                    if k == "gauges" and isinstance(v, dict)
                    else strip(v))
                for k, v in doc.items() if k not in STRIP_KEYS}
    if isinstance(doc, list):
        return [strip(v) for v in doc
                if not (isinstance(v, dict)
                        and v.get("component") == "workload"
                        and "counts" in v)]
    return doc


def main():
    if len(sys.argv) != 2:
        print(__doc__, file=sys.stderr)
        sys.exit(2)
    with open(sys.argv[1]) as f:
        doc = json.load(f)
    json.dump(strip(doc), sys.stdout, indent=1, sort_keys=True)
    print()


if __name__ == "__main__":
    main()
