#!/usr/bin/env python3
"""Gate event-queue micro throughput against a baseline.

Usage: check_bench_regression.py <baseline.json> <current.json> [pct]

Both files are google-benchmark JSON outputs (the tier-1 run writes
BENCH_event_queue.json).  For every benchmark present in both files
the current real_time must not exceed the baseline by more than `pct`
percent (default 2).  Benchmarks missing on either side are reported
but do not fail the gate.
"""

import json
import sys


def times(path):
    with open(path) as f:
        doc = json.load(f)
    raw = {}
    for b in doc.get("benchmarks", []):
        # Skip aggregate rows (mean/median/stddev) if present.
        if b.get("run_type") == "aggregate":
            continue
        raw.setdefault(b["name"], []).append(float(b["real_time"]))
    # With --benchmark_repetitions the same name repeats; take the
    # best repetition — the least noisy estimate of true cost.
    return {name: min(vals) for name, vals in raw.items()}


def main():
    if len(sys.argv) not in (3, 4):
        print(__doc__, file=sys.stderr)
        sys.exit(2)
    baseline = times(sys.argv[1])
    current = times(sys.argv[2])
    limit_pct = float(sys.argv[3]) if len(sys.argv) == 4 else 2.0

    failed = False
    for name in sorted(set(baseline) | set(current)):
        if name not in baseline or name not in current:
            print(f"check_bench_regression: SKIP {name} "
                  f"(missing from one side)")
            continue
        base, cur = baseline[name], current[name]
        delta_pct = 100.0 * (cur / base - 1.0)
        status = "OK"
        if delta_pct > limit_pct:
            status = "FAIL"
            failed = True
        print(f"check_bench_regression: {status} {name}: "
              f"{base:.1f} -> {cur:.1f} ns ({delta_pct:+.2f}%, "
              f"limit +{limit_pct:.1f}%)")
    sys.exit(1 if failed else 0)


if __name__ == "__main__":
    main()
