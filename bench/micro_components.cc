/**
 * @file
 * Host-side component micro-benchmarks (google-benchmark): throughput
 * of the hot simulator data structures.  These measure the simulator
 * itself, not the simulated machine.
 */

#include <benchmark/benchmark.h>

#include <functional>
#include <queue>
#include <unordered_map>

#include "coherence/directory.hh"
#include "coherence/pit.hh"
#include "mem/cache.hh"
#include "mem/tlb.hh"
#include "os/page_table.hh"
#include "sim/event_queue.hh"
#include "sim/rng.hh"
#include "sim/shard.hh"

#include "../tests/mem_ref_models.hh"

namespace prism {
namespace {

/**
 * The pre-overhaul event loop (std::function callbacks over a
 * std::priority_queue with a const_cast moving pop), kept here as the
 * measured baseline for the EventQueue hot-path rewrite.
 */
class LegacyEventQueue
{
  public:
    using Callback = std::function<void()>;

    Tick now() const { return now_; }

    void
    schedule(Tick when, Callback cb)
    {
        heap_.push(Event{when, nextSeq_++, std::move(cb)});
    }

    void scheduleIn(Cycles delta, Callback cb)
    {
        schedule(now_ + delta, std::move(cb));
    }

    bool
    runOne()
    {
        if (heap_.empty())
            return false;
        Event ev = std::move(const_cast<Event &>(heap_.top()));
        heap_.pop();
        now_ = ev.when;
        ev.cb();
        return true;
    }

    void
    runAll()
    {
        while (runOne()) {
        }
    }

  private:
    struct Event {
        Tick when;
        std::uint64_t seq;
        Callback cb;
    };
    struct Later {
        bool
        operator()(const Event &a, const Event &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };
    std::priority_queue<Event, std::vector<Event>, Later> heap_;
    Tick now_ = 0;
    std::uint64_t nextSeq_ = 0;
};

/**
 * A capture the size of the simulator's largest (Machine::route's
 * this + pooled Msg pointer, plus padding up to three words): big
 * enough to defeat libstdc++'s 16-byte std::function SBO, so the
 * baseline pays the allocation the rewrite eliminates.
 */
struct FatCapture {
    std::uint64_t *sink;
    std::uint64_t a, b;
};

void
BM_CacheLookupHit(benchmark::State &state)
{
    SetAssocCache c(32 * 1024, 4, 64);
    for (std::uint64_t a = 0; a < 32 * 1024; a += 64)
        c.insert(a, Mesi::Shared);
    std::uint64_t addr = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(c.lookup(addr));
        addr = (addr + 64) & (32 * 1024 - 1);
    }
}
BENCHMARK(BM_CacheLookupHit);

void
BM_CacheInsertEvict(benchmark::State &state)
{
    SetAssocCache c(8 * 1024, 1, 64);
    std::uint64_t addr = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(c.insert(addr, Mesi::Modified));
        addr += 64;
    }
}
BENCHMARK(BM_CacheInsertEvict);

void
BM_TlbLookup(benchmark::State &state)
{
    Tlb t(128);
    for (VPage vp = 0; vp < 128; ++vp)
        t.insert(vp, vp);
    VPage vp = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(t.lookup(vp));
        vp = (vp + 1) & 127;
    }
}
BENCHMARK(BM_TlbLookup);

void
BM_PitReverseHinted(benchmark::State &state)
{
    Pit pit(2, 18);
    for (FrameNum f = 0; f < 1024; ++f)
        pit.install(f, 0x1000 + f, 0, 0, f, PageMode::Scoma, 64,
                    FgTag::Invalid);
    std::uint64_t i = 0;
    for (auto _ : state) {
        bool hash = false;
        benchmark::DoNotOptimize(
            pit.reverse(0x1000 + (i & 1023), i & 1023, hash));
        ++i;
    }
}
BENCHMARK(BM_PitReverseHinted);

void
BM_PitReverseHash(benchmark::State &state)
{
    Pit pit(2, 18);
    for (FrameNum f = 0; f < 1024; ++f)
        pit.install(f, 0x1000 + f, 0, 0, f, PageMode::Scoma, 64,
                    FgTag::Invalid);
    std::uint64_t i = 0;
    for (auto _ : state) {
        bool hash = false;
        benchmark::DoNotOptimize(
            pit.reverse(0x1000 + (i & 1023), kInvalidFrame, hash));
        ++i;
    }
}
BENCHMARK(BM_PitReverseHash);

void
BM_DirectoryAccess(benchmark::State &state)
{
    Directory d(8192, 2, 22, 64, 8);
    for (GPage gp = 0; gp < 64; ++gp)
        d.createPage(gp, DirState::Owned, 0);
    Rng rng(1);
    for (auto _ : state) {
        GLine gl = rng.below(64 * 64);
        benchmark::DoNotOptimize(d.access(gl));
    }
}
BENCHMARK(BM_DirectoryAccess);

/**
 * SharerSet hot-path micros.  The Arg is the machine width in nodes:
 * 64 exercises the inline single-word representation (the <=64-node
 * fast path every paper-sized run lives on), 1024 the pooled
 * multi-word spill.  Add/remove/test churn on one set.
 */
void
BM_SharerSet_Churn(benchmark::State &state)
{
    const std::uint32_t nodes = static_cast<std::uint32_t>(state.range(0));
    SharerSet s;
    s.add(nodes - 1); // pre-size so the loop never reallocates
    Rng rng(7);
    for (auto _ : state) {
        NodeId n = static_cast<NodeId>(rng.below(nodes));
        s.add(n);
        benchmark::DoNotOptimize(s.test(n ^ 1));
        s.remove(n);
    }
}
BENCHMARK(BM_SharerSet_Churn)->Arg(64)->Arg(1024);

/**
 * Invalidation fan-out iteration: first()/next() word-scan over a set
 * with every 8th node a member (the directory's per-line sharer
 * density under a scattered read-shared page).
 */
void
BM_SharerSet_Iterate(benchmark::State &state)
{
    const std::uint32_t nodes = static_cast<std::uint32_t>(state.range(0));
    SharerSet s;
    for (NodeId n = 0; n < nodes; n += 8)
        s.add(n);
    for (auto _ : state) {
        std::uint32_t members = 0;
        for (NodeId n = s.first(); n != kInvalidNode; n = s.next(n))
            ++members;
        benchmark::DoNotOptimize(members);
    }
    state.SetItemsProcessed(state.iterations() * (nodes / 8));
}
BENCHMARK(BM_SharerSet_Iterate)->Arg(64)->Arg(1024);

/** Snapshot-for-fan-out copy (fromRef) as the protocol handler does. */
void
BM_SharerSet_Snapshot(benchmark::State &state)
{
    const std::uint32_t nodes = static_cast<std::uint32_t>(state.range(0));
    SharerSet s;
    for (NodeId n = 0; n < nodes; n += 8)
        s.add(n);
    SharerRef ref(s.words(), s.numWords());
    for (auto _ : state) {
        SharerSet copy = SharerSet::fromRef(ref);
        copy.remove(0);
        benchmark::DoNotOptimize(copy.count());
    }
}
BENCHMARK(BM_SharerSet_Snapshot)->Arg(64)->Arg(1024);

/**
 * Directory line mutation through the SoA arena: the LineRef
 * state/owner/sharer stores the home-side protocol handler issues per
 * request.  Arg is the machine width.
 */
void
BM_Directory_LineMutate(benchmark::State &state)
{
    const std::uint32_t nodes = static_cast<std::uint32_t>(state.range(0));
    Directory d(8192, 2, 22, 64, nodes);
    for (GPage gp = 0; gp < 64; ++gp)
        d.createPage(gp, DirState::Uncached, 0);
    Rng rng(3);
    for (auto _ : state) {
        GPage gp = rng.below(64);
        std::uint32_t li = rng.below(64);
        auto e = d.line(gp, li);
        NodeId n = static_cast<NodeId>(rng.below(nodes));
        e.setState(DirState::Shared);
        e.addSharer(n);
        benchmark::DoNotOptimize(e.sharerCount());
        e.removeSharer(n);
    }
}
BENCHMARK(BM_Directory_LineMutate)->Arg(8)->Arg(1024);

/** Page churn: create/release against the slot freelist. */
void
BM_Directory_PageChurn(benchmark::State &state)
{
    const std::uint32_t nodes = static_cast<std::uint32_t>(state.range(0));
    Directory d(8192, 2, 22, 64, nodes);
    for (GPage gp = 0; gp < 256; ++gp)
        d.createPage(gp, DirState::Uncached, 0);
    GPage next = 256;
    Rng rng(9);
    for (auto _ : state) {
        GPage victim = rng.below(256);
        if (d.hasPage(victim))
            d.removePage(victim);
        d.createPage(next++, DirState::Uncached, 0);
    }
}
BENCHMARK(BM_Directory_PageChurn)->Arg(8)->Arg(1024);

void
BM_EventQueueScheduleRun(benchmark::State &state)
{
    EventQueue eq;
    std::uint64_t sink = 0;
    for (auto _ : state) {
        eq.scheduleIn(1, [&sink] { ++sink; });
        eq.runOne();
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(sink));
    benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_EventQueueScheduleRun);

void
BM_EventQueueScheduleRunLegacy(benchmark::State &state)
{
    LegacyEventQueue eq;
    std::uint64_t sink = 0;
    for (auto _ : state) {
        eq.scheduleIn(1, [&sink] { ++sink; });
        eq.runOne();
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(sink));
    benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_EventQueueScheduleRunLegacy);

/**
 * Schedule+dispatch throughput with a populated heap and fat captures:
 * the realistic hot path.  Keeps a standing population of events at
 * pseudo-random future ticks (so every push/pop walks the heap) and
 * measures one schedule + one dispatch per iteration.
 */
template <typename Queue>
void
eventQueueChurn(benchmark::State &state)
{
    Queue eq;
    Rng rng(42);
    std::uint64_t sink = 0;
    constexpr int kPopulation = 512;
    FatCapture fat{&sink, 1, 2};
    for (int i = 0; i < kPopulation; ++i) {
        eq.scheduleIn(1 + rng.below(256),
                      [fat] { *fat.sink += fat.a + fat.b; });
    }
    for (auto _ : state) {
        eq.scheduleIn(1 + rng.below(256),
                      [fat] { *fat.sink += fat.a + fat.b; });
        eq.runOne();
    }
    eq.runAll();
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
    benchmark::DoNotOptimize(sink);
}

void
BM_EventQueueChurn(benchmark::State &state)
{
    eventQueueChurn<EventQueue>(state);
}
BENCHMARK(BM_EventQueueChurn);

void
BM_EventQueueChurnLegacy(benchmark::State &state)
{
    eventQueueChurn<LegacyEventQueue>(state);
}
BENCHMARK(BM_EventQueueChurnLegacy);

// ---------------------------------------------------------------------
// mem_path micros: the per-access memory-hierarchy hot path (TLB,
// L1/L2 tag store, page table), each measured against the retired
// pre-overhaul implementation (tests/mem_ref_models.hh) as "…Legacy".
// scripts/check_bench_regression.py tracks the MemPath set in CI.
// ---------------------------------------------------------------------

/** The pre-overhaul page table: one flat hash map. */
class LegacyPageTable
{
  public:
    const Pte *
    lookup(VPage vp) const
    {
        auto it = map_.find(vp);
        return it == map_.end() ? nullptr : &it->second;
    }

    void map(VPage vp, FrameNum f, PageMode m) { map_[vp] = Pte{f, m}; }

  private:
    std::unordered_map<VPage, Pte> map_;
};

template <typename Tlb>
void
memPathTlbHit(benchmark::State &state)
{
    Tlb t(128);
    for (VPage vp = 0; vp < 128; ++vp)
        t.insert(vp, vp);
    VPage vp = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(t.lookup(vp));
        vp = (vp + 1) & 127;
    }
}

template <typename Tlb>
void
memPathTlbMiss(benchmark::State &state)
{
    Tlb t(128);
    for (VPage vp = 0; vp < 128; ++vp)
        t.insert(vp, vp);
    VPage vp = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(t.lookup(0x10000 + vp));
        vp = (vp + 1) & 1023;
    }
}

template <typename Tlb>
void
memPathTlbInsertEvict(benchmark::State &state)
{
    // Rotating through 4x capacity: every insert evicts the LRU entry
    // (an O(n) scan in the legacy map, list surgery in the rewrite).
    Tlb t(64);
    VPage vp = 0;
    for (auto _ : state) {
        t.insert(vp, vp);
        vp = (vp + 1) & 255;
    }
}

template <typename Cache>
void
memPathL1Hit(benchmark::State &state)
{
    // 32 KiB 4-way L1; hit + LRU touch, the per-access fast path.
    Cache c(32 * 1024, 4, 64);
    for (std::uint64_t a = 0; a < 32 * 1024; a += 64)
        c.insert(a, Mesi::Shared);
    std::uint64_t addr = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(c.lookup(addr));
        c.touch(addr);
        addr = (addr + 64) & (32 * 1024 - 1);
    }
}

template <typename Cache>
void
memPathL2Hit(benchmark::State &state)
{
    // Working set fits the 256 KiB L2 but not the 32 KiB L1: each
    // access misses L1, hits L2, and refills L1 (victim churn included).
    Cache l1(32 * 1024, 4, 64);
    Cache l2(256 * 1024, 8, 64);
    for (std::uint64_t a = 0; a < 256 * 1024; a += 64)
        l2.insert(a, Mesi::Exclusive);
    std::uint64_t addr = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(l1.lookup(addr));
        benchmark::DoNotOptimize(l2.lookup(addr));
        l2.touch(addr);
        benchmark::DoNotOptimize(l1.insert(addr, Mesi::Exclusive));
        addr = (addr + 64) & (256 * 1024 - 1);
    }
}

template <typename Cache>
void
memPathInsertEvict(benchmark::State &state)
{
    Cache c(8 * 1024, 1, 64);
    std::uint64_t addr = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(c.insert(addr, Mesi::Modified));
        addr += 64;
    }
}

template <typename Cache>
void
memPathInvalidateFrameHot(benchmark::State &state)
{
    // Page tear-down with resident lines: populate a 256 KiB cache
    // with background frames, then repeatedly flush and refill one
    // fully-resident page.
    Cache c(256 * 1024, 8, 64);
    for (FrameNum f = 8; f < 40; ++f)
        for (std::uint64_t off = 0; off < kPageBytes; off += 64)
            c.insert((f << kPageShift) | off, Mesi::Shared);
    for (auto _ : state) {
        for (std::uint64_t off = 0; off < kPageBytes; off += 64)
            c.insert((3ULL << kPageShift) | off, Mesi::Modified);
        benchmark::DoNotOptimize(c.invalidateFrame(3));
    }
}

template <typename Cache>
void
memPathInvalidateFrameCold(benchmark::State &state)
{
    // Page tear-down with nothing resident: the common kernel case
    // (most frames have no cached lines).  The residency index makes
    // this O(1); the legacy model scans every line in the cache.
    Cache c(256 * 1024, 8, 64);
    for (FrameNum f = 8; f < 40; ++f)
        for (std::uint64_t off = 0; off < kPageBytes; off += 64)
            c.insert((f << kPageShift) | off, Mesi::Shared);
    for (auto _ : state)
        benchmark::DoNotOptimize(c.invalidateFrame(999));
}

template <typename Table>
void
memPathPageTableLookup(benchmark::State &state)
{
    Table pt;
    constexpr std::uint64_t kVsid = 0x123;
    for (std::uint64_t p = 0; p < 4096; ++p)
        pt.map((kVsid << kPageNumBits) | p, p, PageMode::Scoma);
    std::uint64_t p = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            pt.lookup((kVsid << kPageNumBits) | p));
        p = (p + 1) & 4095;
    }
}

void BM_MemPath_TlbHit(benchmark::State &s) { memPathTlbHit<Tlb>(s); }
BENCHMARK(BM_MemPath_TlbHit);
void BM_MemPath_TlbHitLegacy(benchmark::State &s)
{
    memPathTlbHit<testref::RefTlb>(s);
}
BENCHMARK(BM_MemPath_TlbHitLegacy);

void BM_MemPath_TlbMiss(benchmark::State &s) { memPathTlbMiss<Tlb>(s); }
BENCHMARK(BM_MemPath_TlbMiss);
void BM_MemPath_TlbMissLegacy(benchmark::State &s)
{
    memPathTlbMiss<testref::RefTlb>(s);
}
BENCHMARK(BM_MemPath_TlbMissLegacy);

void BM_MemPath_TlbInsertEvict(benchmark::State &s)
{
    memPathTlbInsertEvict<Tlb>(s);
}
BENCHMARK(BM_MemPath_TlbInsertEvict);
void BM_MemPath_TlbInsertEvictLegacy(benchmark::State &s)
{
    memPathTlbInsertEvict<testref::RefTlb>(s);
}
BENCHMARK(BM_MemPath_TlbInsertEvictLegacy);

void BM_MemPath_L1Hit(benchmark::State &s)
{
    memPathL1Hit<SetAssocCache>(s);
}
BENCHMARK(BM_MemPath_L1Hit);
void BM_MemPath_L1HitLegacy(benchmark::State &s)
{
    memPathL1Hit<testref::RefCache>(s);
}
BENCHMARK(BM_MemPath_L1HitLegacy);

void BM_MemPath_L2Hit(benchmark::State &s)
{
    memPathL2Hit<SetAssocCache>(s);
}
BENCHMARK(BM_MemPath_L2Hit);
void BM_MemPath_L2HitLegacy(benchmark::State &s)
{
    memPathL2Hit<testref::RefCache>(s);
}
BENCHMARK(BM_MemPath_L2HitLegacy);

void BM_MemPath_InsertEvict(benchmark::State &s)
{
    memPathInsertEvict<SetAssocCache>(s);
}
BENCHMARK(BM_MemPath_InsertEvict);
void BM_MemPath_InsertEvictLegacy(benchmark::State &s)
{
    memPathInsertEvict<testref::RefCache>(s);
}
BENCHMARK(BM_MemPath_InsertEvictLegacy);

void BM_MemPath_InvalidateFrameHot(benchmark::State &s)
{
    memPathInvalidateFrameHot<SetAssocCache>(s);
}
BENCHMARK(BM_MemPath_InvalidateFrameHot);
void BM_MemPath_InvalidateFrameHotLegacy(benchmark::State &s)
{
    memPathInvalidateFrameHot<testref::RefCache>(s);
}
BENCHMARK(BM_MemPath_InvalidateFrameHotLegacy);

void BM_MemPath_InvalidateFrameCold(benchmark::State &s)
{
    memPathInvalidateFrameCold<SetAssocCache>(s);
}
BENCHMARK(BM_MemPath_InvalidateFrameCold);
void BM_MemPath_InvalidateFrameColdLegacy(benchmark::State &s)
{
    memPathInvalidateFrameCold<testref::RefCache>(s);
}
BENCHMARK(BM_MemPath_InvalidateFrameColdLegacy);

void BM_MemPath_PageTableLookup(benchmark::State &s)
{
    memPathPageTableLookup<PageTable>(s);
}
BENCHMARK(BM_MemPath_PageTableLookup);
void BM_MemPath_PageTableLookupLegacy(benchmark::State &s)
{
    memPathPageTableLookup<LegacyPageTable>(s);
}
BENCHMARK(BM_MemPath_PageTableLookupLegacy);

void
BM_RngDraw(benchmark::State &state)
{
    Rng rng(7);
    for (auto _ : state)
        benchmark::DoNotOptimize(rng.below(1024));
}
BENCHMARK(BM_RngDraw);

// --- Sharded scheduler (sim/shard.hh): the fixed per-window costs ---

/**
 * One worker-team round with an empty body: two SpinBarrier crossings
 * plus the coordinator's shard-0 call, i.e. the floor every window
 * pays regardless of how much simulated work it contains.
 */
void
BM_ShardLoop_BarrierRound(benchmark::State &state)
{
    ShardWorkers team(static_cast<unsigned>(state.range(0)));
    const std::function<void(unsigned)> nop = [](unsigned) {};
    for (auto _ : state)
        team.round(nop);
}
BENCHMARK(BM_ShardLoop_BarrierRound)->Arg(2)->Arg(4)->Arg(8);

/**
 * Staging and draining one window's worth of cross-shard entries, with
 * a payload the size of Network::ShardEntry.  16 pushes + one full
 * drain per iteration.
 */
void
BM_ShardLoop_ChannelPushDrain(benchmark::State &state)
{
    struct Entry {
        std::uint64_t sendTick, arrival, srcSeq;
        std::uint32_t src, dst;
        std::uint64_t pad[3];
    };
    constexpr unsigned kShards = 4;
    ShardChannel<Entry> ch;
    ch.reset(kShards);
    std::uint64_t sink = 0;
    for (auto _ : state) {
        for (unsigned f = 0; f < kShards; ++f) {
            for (unsigned t = 0; t < kShards; ++t) {
                ch.lane(f, t).push_back(
                    Entry{sink, sink + 1, sink, f, t, {}});
            }
        }
        ch.drain([&](Entry &&e) { sink += e.arrival; });
    }
    benchmark::DoNotOptimize(sink);
    state.SetItemsProcessed(state.iterations() * kShards * kShards);
}
BENCHMARK(BM_ShardLoop_ChannelPushDrain);

/**
 * The coordinator's window advance over four shard queues, each
 * holding one self-rescheduling event: the min-next scan, the W bump,
 * and the below-limit run — the serial glue between barrier rounds.
 */
void
BM_ShardLoop_WindowAdvance(benchmark::State &state)
{
    constexpr unsigned kShards = 4;
    struct Self {
        EventQueue *q;
        Cycles l;
        std::uint64_t *sink;
        void
        operator()()
        {
            ++*sink;
            q->scheduleIn(l, *this);
        }
    };
    std::vector<EventQueue> qs(kShards);
    const Cycles lookahead = conservativeLookahead(120, 8, 300, 140, 400);
    std::uint64_t sink = 0;
    for (auto &q : qs)
        q.schedule(0, Self{&q, lookahead, &sink});
    Tick w = 0;
    for (auto _ : state) {
        Tick min_next = kTickMax;
        for (auto &q : qs)
            min_next = std::min(min_next, q.nextEventTick());
        if (min_next > w)
            w = min_next;
        const Tick limit = w + lookahead;
        for (auto &q : qs) {
            while (q.nextEventTick() < limit)
                q.runOne();
        }
    }
    benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_ShardLoop_WindowAdvance);

} // namespace
} // namespace prism

BENCHMARK_MAIN();
