/**
 * @file
 * Host-side component micro-benchmarks (google-benchmark): throughput
 * of the hot simulator data structures.  These measure the simulator
 * itself, not the simulated machine.
 */

#include <benchmark/benchmark.h>

#include "coherence/directory.hh"
#include "coherence/pit.hh"
#include "mem/cache.hh"
#include "mem/tlb.hh"
#include "sim/event_queue.hh"
#include "sim/rng.hh"

namespace prism {
namespace {

void
BM_CacheLookupHit(benchmark::State &state)
{
    SetAssocCache c(32 * 1024, 4, 64);
    for (std::uint64_t a = 0; a < 32 * 1024; a += 64)
        c.insert(a, Mesi::Shared);
    std::uint64_t addr = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(c.lookup(addr));
        addr = (addr + 64) & (32 * 1024 - 1);
    }
}
BENCHMARK(BM_CacheLookupHit);

void
BM_CacheInsertEvict(benchmark::State &state)
{
    SetAssocCache c(8 * 1024, 1, 64);
    std::uint64_t addr = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(c.insert(addr, Mesi::Modified));
        addr += 64;
    }
}
BENCHMARK(BM_CacheInsertEvict);

void
BM_TlbLookup(benchmark::State &state)
{
    Tlb t(128);
    for (VPage vp = 0; vp < 128; ++vp)
        t.insert(vp, vp);
    VPage vp = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(t.lookup(vp));
        vp = (vp + 1) & 127;
    }
}
BENCHMARK(BM_TlbLookup);

void
BM_PitReverseHinted(benchmark::State &state)
{
    Pit pit(2, 18);
    for (FrameNum f = 0; f < 1024; ++f)
        pit.install(f, 0x1000 + f, 0, 0, f, PageMode::Scoma, 64,
                    FgTag::Invalid);
    std::uint64_t i = 0;
    for (auto _ : state) {
        bool hash = false;
        benchmark::DoNotOptimize(
            pit.reverse(0x1000 + (i & 1023), i & 1023, hash));
        ++i;
    }
}
BENCHMARK(BM_PitReverseHinted);

void
BM_PitReverseHash(benchmark::State &state)
{
    Pit pit(2, 18);
    for (FrameNum f = 0; f < 1024; ++f)
        pit.install(f, 0x1000 + f, 0, 0, f, PageMode::Scoma, 64,
                    FgTag::Invalid);
    std::uint64_t i = 0;
    for (auto _ : state) {
        bool hash = false;
        benchmark::DoNotOptimize(
            pit.reverse(0x1000 + (i & 1023), kInvalidFrame, hash));
        ++i;
    }
}
BENCHMARK(BM_PitReverseHash);

void
BM_DirectoryAccess(benchmark::State &state)
{
    Directory d(8192, 2, 22, 64);
    for (GPage gp = 0; gp < 64; ++gp)
        d.createPage(gp, DirState::Owned, 0);
    Rng rng(1);
    for (auto _ : state) {
        GLine gl = rng.below(64 * 64);
        benchmark::DoNotOptimize(d.access(gl));
    }
}
BENCHMARK(BM_DirectoryAccess);

void
BM_EventQueueScheduleRun(benchmark::State &state)
{
    EventQueue eq;
    std::uint64_t sink = 0;
    for (auto _ : state) {
        eq.scheduleIn(1, [&sink] { ++sink; });
        eq.runOne();
    }
    benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_EventQueueScheduleRun);

void
BM_RngDraw(benchmark::State &state)
{
    Rng rng(7);
    for (auto _ : state)
        benchmark::DoNotOptimize(rng.below(1024));
}
BENCHMARK(BM_RngDraw);

} // namespace
} // namespace prism

BENCHMARK_MAIN();
