/**
 * @file
 * Host-side component micro-benchmarks (google-benchmark): throughput
 * of the hot simulator data structures.  These measure the simulator
 * itself, not the simulated machine.
 */

#include <benchmark/benchmark.h>

#include <functional>
#include <queue>

#include "coherence/directory.hh"
#include "coherence/pit.hh"
#include "mem/cache.hh"
#include "mem/tlb.hh"
#include "sim/event_queue.hh"
#include "sim/rng.hh"

namespace prism {
namespace {

/**
 * The pre-overhaul event loop (std::function callbacks over a
 * std::priority_queue with a const_cast moving pop), kept here as the
 * measured baseline for the EventQueue hot-path rewrite.
 */
class LegacyEventQueue
{
  public:
    using Callback = std::function<void()>;

    Tick now() const { return now_; }

    void
    schedule(Tick when, Callback cb)
    {
        heap_.push(Event{when, nextSeq_++, std::move(cb)});
    }

    void scheduleIn(Cycles delta, Callback cb)
    {
        schedule(now_ + delta, std::move(cb));
    }

    bool
    runOne()
    {
        if (heap_.empty())
            return false;
        Event ev = std::move(const_cast<Event &>(heap_.top()));
        heap_.pop();
        now_ = ev.when;
        ev.cb();
        return true;
    }

    void
    runAll()
    {
        while (runOne()) {
        }
    }

  private:
    struct Event {
        Tick when;
        std::uint64_t seq;
        Callback cb;
    };
    struct Later {
        bool
        operator()(const Event &a, const Event &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };
    std::priority_queue<Event, std::vector<Event>, Later> heap_;
    Tick now_ = 0;
    std::uint64_t nextSeq_ = 0;
};

/**
 * A capture the size of the simulator's largest (Machine::route's
 * this + pooled Msg pointer, plus padding up to three words): big
 * enough to defeat libstdc++'s 16-byte std::function SBO, so the
 * baseline pays the allocation the rewrite eliminates.
 */
struct FatCapture {
    std::uint64_t *sink;
    std::uint64_t a, b;
};

void
BM_CacheLookupHit(benchmark::State &state)
{
    SetAssocCache c(32 * 1024, 4, 64);
    for (std::uint64_t a = 0; a < 32 * 1024; a += 64)
        c.insert(a, Mesi::Shared);
    std::uint64_t addr = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(c.lookup(addr));
        addr = (addr + 64) & (32 * 1024 - 1);
    }
}
BENCHMARK(BM_CacheLookupHit);

void
BM_CacheInsertEvict(benchmark::State &state)
{
    SetAssocCache c(8 * 1024, 1, 64);
    std::uint64_t addr = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(c.insert(addr, Mesi::Modified));
        addr += 64;
    }
}
BENCHMARK(BM_CacheInsertEvict);

void
BM_TlbLookup(benchmark::State &state)
{
    Tlb t(128);
    for (VPage vp = 0; vp < 128; ++vp)
        t.insert(vp, vp);
    VPage vp = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(t.lookup(vp));
        vp = (vp + 1) & 127;
    }
}
BENCHMARK(BM_TlbLookup);

void
BM_PitReverseHinted(benchmark::State &state)
{
    Pit pit(2, 18);
    for (FrameNum f = 0; f < 1024; ++f)
        pit.install(f, 0x1000 + f, 0, 0, f, PageMode::Scoma, 64,
                    FgTag::Invalid);
    std::uint64_t i = 0;
    for (auto _ : state) {
        bool hash = false;
        benchmark::DoNotOptimize(
            pit.reverse(0x1000 + (i & 1023), i & 1023, hash));
        ++i;
    }
}
BENCHMARK(BM_PitReverseHinted);

void
BM_PitReverseHash(benchmark::State &state)
{
    Pit pit(2, 18);
    for (FrameNum f = 0; f < 1024; ++f)
        pit.install(f, 0x1000 + f, 0, 0, f, PageMode::Scoma, 64,
                    FgTag::Invalid);
    std::uint64_t i = 0;
    for (auto _ : state) {
        bool hash = false;
        benchmark::DoNotOptimize(
            pit.reverse(0x1000 + (i & 1023), kInvalidFrame, hash));
        ++i;
    }
}
BENCHMARK(BM_PitReverseHash);

void
BM_DirectoryAccess(benchmark::State &state)
{
    Directory d(8192, 2, 22, 64);
    for (GPage gp = 0; gp < 64; ++gp)
        d.createPage(gp, DirState::Owned, 0);
    Rng rng(1);
    for (auto _ : state) {
        GLine gl = rng.below(64 * 64);
        benchmark::DoNotOptimize(d.access(gl));
    }
}
BENCHMARK(BM_DirectoryAccess);

void
BM_EventQueueScheduleRun(benchmark::State &state)
{
    EventQueue eq;
    std::uint64_t sink = 0;
    for (auto _ : state) {
        eq.scheduleIn(1, [&sink] { ++sink; });
        eq.runOne();
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(sink));
    benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_EventQueueScheduleRun);

void
BM_EventQueueScheduleRunLegacy(benchmark::State &state)
{
    LegacyEventQueue eq;
    std::uint64_t sink = 0;
    for (auto _ : state) {
        eq.scheduleIn(1, [&sink] { ++sink; });
        eq.runOne();
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(sink));
    benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_EventQueueScheduleRunLegacy);

/**
 * Schedule+dispatch throughput with a populated heap and fat captures:
 * the realistic hot path.  Keeps a standing population of events at
 * pseudo-random future ticks (so every push/pop walks the heap) and
 * measures one schedule + one dispatch per iteration.
 */
template <typename Queue>
void
eventQueueChurn(benchmark::State &state)
{
    Queue eq;
    Rng rng(42);
    std::uint64_t sink = 0;
    constexpr int kPopulation = 512;
    FatCapture fat{&sink, 1, 2};
    for (int i = 0; i < kPopulation; ++i) {
        eq.scheduleIn(1 + rng.below(256),
                      [fat] { *fat.sink += fat.a + fat.b; });
    }
    for (auto _ : state) {
        eq.scheduleIn(1 + rng.below(256),
                      [fat] { *fat.sink += fat.a + fat.b; });
        eq.runOne();
    }
    eq.runAll();
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
    benchmark::DoNotOptimize(sink);
}

void
BM_EventQueueChurn(benchmark::State &state)
{
    eventQueueChurn<EventQueue>(state);
}
BENCHMARK(BM_EventQueueChurn);

void
BM_EventQueueChurnLegacy(benchmark::State &state)
{
    eventQueueChurn<LegacyEventQueue>(state);
}
BENCHMARK(BM_EventQueueChurnLegacy);

void
BM_RngDraw(benchmark::State &state)
{
    Rng rng(7);
    for (auto _ : state)
        benchmark::DoNotOptimize(rng.below(1024));
}
BENCHMARK(BM_RngDraw);

} // namespace
} // namespace prism

BENCHMARK_MAIN();
