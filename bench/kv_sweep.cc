/**
 * @file
 * KV skew ablation: the partitioned KV store swept over
 * mix x skew x page-mode policy.  Each (mix, theta) variant runs the
 * standard six-policy sweep (SCOMA calibration sizing the page
 * caches, docs/PERFORMANCE.md section 1) and the table reports the
 * read/scan p99 latency per policy — the serving-tail view of where
 * S-COMA page caches stop paying as the Zipfian head sharpens.
 *
 * Restrict the grid with --kv-mix/--kv-theta; size the store with
 * --kv-keys/--kv-requests (defaults come from the scale preset).
 * Results land in EXPERIMENTS.md ("KV skew ablation").
 */

#include <cstdio>
#include <vector>

#include "bench_util.hh"
#include "workload/kvstore.hh"
#include "workload/parallel_runner.hh"

namespace {

using namespace prism;

/** Variant tag usable inside a filename: "A-z99", "B-u", ... */
std::string
variantTag(KvMix mix, double theta)
{
    std::string tag = kvMixName(mix);
    if (theta == 0.0) {
        tag += "-u";
    } else {
        char buf[16];
        std::snprintf(buf, sizeof(buf), "-z%02d",
                      static_cast<int>(theta * 100.0 + 0.5));
        tag += buf;
    }
    return tag;
}

/** p99 of the (workload, @p name) histogram in @p r; -1 if absent. */
double
histP99(const RunReport &r, const char *name)
{
    for (const auto &h : r.histograms) {
        if (h.component == "workload" && h.name == name)
            return h.count ? h.p99 : -1.0;
    }
    return -1.0;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace prism::bench;

    const BenchOptions opts = BenchOptions::parse(argc, argv);

    std::vector<KvMix> mixes = {KvMix::A, KvMix::B, KvMix::C,
                                KvMix::D, KvMix::E};
    if (!opts.kvMix.empty()) {
        KvMix only;
        if (!kvMixFromString(opts.kvMix.c_str(), &only))
            fatal("unknown KV mix '%s' (valid: a b c d e)",
                  opts.kvMix.c_str());
        mixes = {only};
    }
    std::vector<double> thetas = {0.0, 0.6, 0.9, 0.99};
    if (opts.kvTheta >= 0.0)
        thetas = {opts.kvTheta};

    KvStoreWorkload::Params base_params = kvParamsFor(opts.scale);
    if (opts.kvKeys)
        base_params.keys = opts.kvKeys;
    if (opts.kvRequests)
        base_params.requests = opts.kvRequests;

    std::vector<AppSpec> variants;
    for (KvMix mix : mixes) {
        for (double theta : thetas) {
            KvStoreWorkload::Params p = base_params;
            p.mix = mix;
            p.theta = theta;
            variants.push_back(AppSpec{
                "KV-" + variantTag(mix, theta),
                [p] { return std::make_unique<KvStoreWorkload>(p); }});
        }
    }

    if (opts.list) {
        std::printf("# kv_sweep variants (%s scale)\n\n",
                    scaleName(opts.scale));
        std::printf("%-12s %s\n", "Variant", "Problem Size");
        for (const auto &v : variants) {
            auto w = v.make();
            std::printf("%-12s %s\n", v.name.c_str(),
                        w->sizeDesc().c_str());
        }
        return 0;
    }

    banner("KV skew ablation — mix x skew x page-mode policy", opts);

    const auto policies = paperPolicies();
    std::printf("%-12s", "Variant");
    for (PolicyKind pk : policies)
        std::printf(" %10s", policyName(pk));
    std::printf("  (read/scan p99 cycles; exec rel. SCOMA in "
                "parentheses)\n");

    MachineConfig base = opts.baseMachine();
    const auto results =
        runSweepsParallel(RunSpec{.machine = base,
                                  .policies = policies,
                                  .jobs = opts.jobs,
                                  .frontend = opts.frontend,
                                  .traceFile = opts.traceFile},
                          variants);

    for (std::size_t v = 0; v < variants.size(); ++v) {
        const ExperimentResult *row = &results[v * policies.size()];
        const double scoma =
            static_cast<double>(row[0].metrics.execCycles);
        std::printf("%-12s", variants[v].name.c_str());
        for (std::size_t p = 0; p < policies.size(); ++p) {
            // Mix E has no point reads; fall back to the scan tail.
            double p99 = histP99(row[p].report, "kv.read.latency");
            if (p99 < 0)
                p99 = histP99(row[p].report, "kv.scan.latency");
            const double rel =
                static_cast<double>(row[p].metrics.execCycles) /
                scoma;
            std::printf(" %7.0f(%4.2f)", p99 < 0 ? 0.0 : p99, rel);
        }
        std::printf("\n");
        std::fflush(stdout);
    }
    std::printf("\n# Reading the table: a capped page cache "
                "(SCOMA-70) is hurt worst under\n# *uniform* load — "
                "the working set is the whole keyspace and every "
                "miss\n# thrashes the cap.  As theta sharpens the hot "
                "head shrinks into the cap\n# and its p99 recovers; "
                "uncapped SCOMA and the adaptive policies track\n# "
                "each other throughout.\n");
    if (opts.wantReport())
        writeSweepReport(opts.reportPath, "kv_sweep", opts, results);
    return 0;
}
