/**
 * @file
 * Figure 7 reproduction: execution time of the eight SPLASH-like
 * applications under the six page-mode configurations, normalized to
 * SCOMA (paper Section 4.3).  `--list` prints the Table 2 application
 * inventory instead.
 *
 * Methodology: for each application a SCOMA calibration run sizes the
 * page cache; SCOMA-70 and the adaptive policies cap each node's
 * client S-COMA frames at 70% of the calibrated per-node maximum.
 */

#include <cstdio>

#include "bench_util.hh"
#include "workload/parallel_runner.hh"

int
main(int argc, char **argv)
{
    using namespace prism;
    using namespace prism::bench;

    const BenchOptions opts = BenchOptions::parse(argc, argv);
    if (opts.list) {
        std::printf("# PRISM reproduction: Table 2 — application "
                    "benchmark types and data sets (%s scale)\n\n",
                    scaleName(opts.scale));
        std::printf("%-12s %s\n", "Application", "Problem Size");
        for (const auto &app : opts.apps) {
            auto w = app.make();
            std::printf("%-12s %s\n", app.name.c_str(),
                        w->sizeDesc().c_str());
        }
        return 0;
    }

    banner("Figure 7 — execution time under different page modes, "
           "normalized to SCOMA",
           opts);

    const auto policies = paperPolicies();
    std::printf("%-12s", "Application");
    for (PolicyKind pk : policies)
        std::printf(" %10s", policyName(pk));
    std::printf("  (exec cycles, SCOMA)\n");

    MachineConfig base = opts.baseMachine();
    const auto &apps = opts.apps;
    const auto results =
        runSweepsParallel(RunSpec{.machine = base,
                                  .policies = policies,
                                  .jobs = opts.jobs,
                                  .frontend = opts.frontend,
                                  .traceFile = opts.traceFile},
                          apps);
    for (std::size_t a = 0; a < apps.size(); ++a) {
        const ExperimentResult *row = &results[a * policies.size()];
        const double scoma =
            static_cast<double>(row[0].metrics.execCycles);
        std::printf("%-12s", apps[a].name.c_str());
        for (std::size_t p = 0; p < policies.size(); ++p) {
            std::printf(" %10.2f",
                        static_cast<double>(row[p].metrics.execCycles) /
                            scoma);
        }
        std::printf("  (%llu)\n",
                    static_cast<unsigned long long>(
                        row[0].metrics.execCycles));
        std::fflush(stdout);
    }
    std::printf("\n# Paper's qualitative expectations: SCOMA = 1.0 "
                "(optimal: no capacity page-outs);\n# LANUMA worst on "
                "capacity-bound apps (Barnes/LU/Ocean/Radix, up to "
                "2.8-4.6x);\n# adaptive policies within ~10%% of SCOMA "
                "except Barnes/Ocean on Dyn-Util/Dyn-LRU.\n");
    if (opts.wantReport())
        writeSweepReport(opts.reportPath, "fig7_exec_time", opts,
                         results);
    return 0;
}
