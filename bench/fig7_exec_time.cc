/**
 * @file
 * Figure 7 reproduction: execution time of the eight SPLASH-like
 * applications under the six page-mode configurations, normalized to
 * SCOMA (paper Section 4.3).  `--list` prints the Table 2 application
 * inventory instead.
 *
 * Methodology: for each application a SCOMA calibration run sizes the
 * page cache; SCOMA-70 and the adaptive policies cap each node's
 * client S-COMA frames at 70% of the calibrated per-node maximum.
 */

#include <cstdio>
#include <cstring>

#include "bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace prism;
    using namespace prism::bench;

    const AppScale scale = scaleFromEnv();
    if (argc > 1 && !std::strcmp(argv[1], "--list")) {
        std::printf("# PRISM reproduction: Table 2 — application "
                    "benchmark types and data sets (%s scale)\n\n",
                    scaleName(scale));
        std::printf("%-12s %s\n", "Application", "Problem Size");
        for (const auto &app : appsFromEnv(scale)) {
            auto w = app.make();
            std::printf("%-12s %s\n", app.name.c_str(),
                        w->sizeDesc().c_str());
        }
        return 0;
    }

    banner("Figure 7 — execution time under different page modes, "
           "normalized to SCOMA");

    const auto policies = paperPolicies();
    std::printf("%-12s", "Application");
    for (PolicyKind pk : policies)
        std::printf(" %10s", policyName(pk));
    std::printf("  (exec cycles, SCOMA)\n");

    MachineConfig base; // paper machine
    for (const auto &app : appsFromEnv(scale)) {
        auto results = runPolicySweep(base, app, policies);
        const double scoma =
            static_cast<double>(results.front().metrics.execCycles);
        std::printf("%-12s", app.name.c_str());
        for (const auto &r : results) {
            std::printf(" %10.2f",
                        static_cast<double>(r.metrics.execCycles) /
                            scoma);
        }
        std::printf("  (%llu)\n",
                    static_cast<unsigned long long>(
                        results.front().metrics.execCycles));
        std::fflush(stdout);
    }
    std::printf("\n# Paper's qualitative expectations: SCOMA = 1.0 "
                "(optimal: no capacity page-outs);\n# LANUMA worst on "
                "capacity-bound apps (Barnes/LU/Ocean/Radix, up to "
                "2.8-4.6x);\n# adaptive policies within ~10%% of SCOMA "
                "except Barnes/Ocean on Dyn-Util/Dyn-LRU.\n");
    return 0;
}
