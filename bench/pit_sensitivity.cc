/**
 * @file
 * Section 4.3 "Impact of PIT translation overhead" reproduction:
 * execution time with the Page Information Table in DRAM (10-cycle
 * lookup) relative to SRAM (2 cycles), under the LANUMA configuration
 * where every client miss crosses the PIT.
 *
 * The paper reports < 2% slowdown for most applications, ~5% for FFT
 * and ~16% for Barnes, and argues that with an SRAM PIT, LA-NUMA
 * pages perform like true CC-NUMA pages.  With `--ccnuma` this bench
 * also runs the extension CC-NUMA mode (PIT bypassed entirely).
 */

#include <cstdio>
#include <cstring>

#include "bench_util.hh"
#include "workload/parallel_runner.hh"

int
main(int argc, char **argv)
{
    using namespace prism;
    using namespace prism::bench;

    const BenchOptions opts = BenchOptions::parse(argc, argv);
    const bool with_ccnuma = opts.flag("--ccnuma");
    const bool with_dirhints = opts.flag("--dirhints");

    banner("Section 4.3 — PIT in DRAM (10 cycles) vs SRAM (2 cycles), "
           "LANUMA configuration",
           opts);

    std::printf("%-12s %12s %12s %9s", "Application", "SRAM-PIT",
                "DRAM-PIT", "slowdown");
    if (with_ccnuma)
        std::printf(" %12s %9s", "CC-NUMA", "vs SRAM");
    if (with_dirhints)
        std::printf(" %14s %9s", "DRAM+dirhints", "slowdown");
    std::printf("\n");

    // Every (app, config) run is independent: fan them all out on the
    // pool, then print rows in app order.
    struct Row {
        RunMetrics sram, dram, hints, ccnuma;
        RunReport sramReport, dramReport, hintsReport, ccnumaReport;
    };
    const auto &apps = opts.apps;
    std::vector<Row> rows(apps.size());
    {
        // Record mode captures the SRAM-PIT cell per app; replay mode
        // re-issues the trace in every cell.
        TaskPool pool(opts.jobs);
        for (std::size_t i = 0; i < apps.size(); ++i) {
            MachineConfig sram;
            sram.jobsIntra = opts.jobsIntra;
            sram.protocol = opts.protocol;
            sram.policy = PolicyKind::LaNuma;
            sram.pitLatency = 2;
            MachineConfig dram = sram;
            dram.pitLatency = 10;

            const std::string trace_path =
                opts.frontend == FrontendKind::Exec
                    ? std::string()
                    : tracePathFor(opts.traceFile, apps[i].name,
                                   apps.size());
            auto cellSpec = [&](const MachineConfig &cfg,
                                bool primary) {
                FrontendKind f = FrontendKind::Exec;
                if (opts.frontend == FrontendKind::Replay)
                    f = FrontendKind::Replay;
                else if (opts.frontend == FrontendKind::Record &&
                         primary)
                    f = FrontendKind::Record;
                return RunSpec{.machine = cfg,
                               .frontend = f,
                               .traceFile = trace_path};
            };

            const AppSpec &app = apps[i];
            Row &row = rows[i];
            pool.submit([&row, &app, spec = cellSpec(sram, true)] {
                row.sram = runOnce(spec, app, &row.sramReport);
            });
            pool.submit([&row, &app, spec = cellSpec(dram, false)] {
                row.dram = runOnce(spec, app, &row.dramReport);
            });
            if (with_dirhints) {
                // Section 4.3's mitigation: client frame numbers
                // cached in the directory remove the PIT hash walk
                // from the invalidation path.
                MachineConfig dh = dram;
                dh.dirClientFrameHints = true;
                pool.submit([&row, &app, spec = cellSpec(dh, false)] {
                    row.hints = runOnce(spec, app, &row.hintsReport);
                });
            }
            if (with_ccnuma) {
                MachineConfig cc = sram;
                cc.ccNumaBypass = true;
                pool.submit([&row, &app, spec = cellSpec(cc, false)] {
                    row.ccnuma = runOnce(spec, app, &row.ccnumaReport);
                });
            }
        }
        pool.wait();
    }

    for (std::size_t i = 0; i < apps.size(); ++i) {
        const Row &row = rows[i];
        const RunMetrics &s = row.sram;
        std::printf("%-12s %12llu %12llu %8.1f%%",
                    apps[i].name.c_str(),
                    static_cast<unsigned long long>(s.execCycles),
                    static_cast<unsigned long long>(row.dram.execCycles),
                    100.0 * (static_cast<double>(row.dram.execCycles) /
                                 static_cast<double>(s.execCycles) -
                             1.0));
        if (with_dirhints) {
            std::printf(" %14llu %8.1f%%",
                        static_cast<unsigned long long>(
                            row.hints.execCycles),
                        100.0 *
                            (static_cast<double>(row.hints.execCycles) /
                                 static_cast<double>(s.execCycles) -
                             1.0));
        }
        if (with_ccnuma) {
            std::printf(" %12llu %8.1f%%",
                        static_cast<unsigned long long>(
                            row.ccnuma.execCycles),
                        100.0 *
                            (static_cast<double>(row.ccnuma.execCycles) /
                                 static_cast<double>(s.execCycles) -
                             1.0));
        }
        std::printf("\n");
        std::fflush(stdout);
    }
    std::printf("\n# Paper: <2%% for most apps, ~5%% FFT, ~16%% "
                "Barnes.  A DRAM PIT hurts most where\n# remote misses "
                "and invalidations (hash reverse translations) are "
                "most frequent.\n");
    if (opts.wantReport()) {
        const char *lanuma = policyName(PolicyKind::LaNuma);
        std::vector<BenchRun> runs;
        for (std::size_t i = 0; i < apps.size(); ++i) {
            runs.push_back(BenchRun{apps[i].name, lanuma, "SRAM-PIT",
                                    &rows[i].sramReport});
            runs.push_back(BenchRun{apps[i].name, lanuma, "DRAM-PIT",
                                    &rows[i].dramReport});
            if (with_dirhints)
                runs.push_back(BenchRun{apps[i].name, lanuma,
                                        "DRAM+dirhints",
                                        &rows[i].hintsReport});
            if (with_ccnuma)
                runs.push_back(BenchRun{apps[i].name, lanuma,
                                        "CC-NUMA",
                                        &rows[i].ccnumaReport});
        }
        writeBenchReport(opts.reportPath, "pit_sensitivity", opts,
                         runs);
    }
    return 0;
}
