/**
 * @file
 * Section 4.3 "Impact of PIT translation overhead" reproduction:
 * execution time with the Page Information Table in DRAM (10-cycle
 * lookup) relative to SRAM (2 cycles), under the LANUMA configuration
 * where every client miss crosses the PIT.
 *
 * The paper reports < 2% slowdown for most applications, ~5% for FFT
 * and ~16% for Barnes, and argues that with an SRAM PIT, LA-NUMA
 * pages perform like true CC-NUMA pages.  With `--ccnuma` this bench
 * also runs the extension CC-NUMA mode (PIT bypassed entirely).
 */

#include <cstdio>
#include <cstring>

#include "bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace prism;
    using namespace prism::bench;

    const bool with_ccnuma =
        argc > 1 && !std::strcmp(argv[1], "--ccnuma");
    const bool with_dirhints =
        argc > 1 && !std::strcmp(argv[1], "--dirhints");

    banner("Section 4.3 — PIT in DRAM (10 cycles) vs SRAM (2 cycles), "
           "LANUMA configuration");

    std::printf("%-12s %12s %12s %9s", "Application", "SRAM-PIT",
                "DRAM-PIT", "slowdown");
    if (with_ccnuma)
        std::printf(" %12s %9s", "CC-NUMA", "vs SRAM");
    if (with_dirhints)
        std::printf(" %14s %9s", "DRAM+dirhints", "slowdown");
    std::printf("\n");

    for (const auto &app : appsFromEnv(scaleFromEnv())) {
        MachineConfig sram;
        sram.policy = PolicyKind::LaNuma;
        sram.pitLatency = 2;
        RunMetrics s = runOnce(sram, app);

        MachineConfig dram = sram;
        dram.pitLatency = 10;
        RunMetrics d = runOnce(dram, app);

        std::printf("%-12s %12llu %12llu %8.1f%%",
                    app.name.c_str(),
                    static_cast<unsigned long long>(s.execCycles),
                    static_cast<unsigned long long>(d.execCycles),
                    100.0 * (static_cast<double>(d.execCycles) /
                                 static_cast<double>(s.execCycles) -
                             1.0));
        if (with_dirhints) {
            // Section 4.3's mitigation: client frame numbers cached
            // in the directory remove the PIT hash walk from the
            // invalidation path.
            MachineConfig dh = dram;
            dh.dirClientFrameHints = true;
            RunMetrics h = runOnce(dh, app);
            std::printf(" %14llu %8.1f%%",
                        static_cast<unsigned long long>(h.execCycles),
                        100.0 * (static_cast<double>(h.execCycles) /
                                     static_cast<double>(s.execCycles) -
                                 1.0));
        }
        if (with_ccnuma) {
            MachineConfig cc = sram;
            cc.ccNumaBypass = true;
            RunMetrics c = runOnce(cc, app);
            std::printf(" %12llu %8.1f%%",
                        static_cast<unsigned long long>(c.execCycles),
                        100.0 * (static_cast<double>(c.execCycles) /
                                     static_cast<double>(s.execCycles) -
                                 1.0));
        }
        std::printf("\n");
        std::fflush(stdout);
    }
    std::printf("\n# Paper: <2%% for most apps, ~5%% FFT, ~16%% "
                "Barnes.  A DRAM PIT hurts most where\n# remote misses "
                "and invalidations (hash reverse translations) are "
                "most frequent.\n");
    return 0;
}
