/**
 * @file
 * Section 4.2 cache-sensitivity reproduction.
 *
 * The paper notes that with a 16 KB L1 and a 1 MB L2 the SPLASH
 * working sets fit in cache, communication misses dominate (which
 * cost the same in S-COMA and LA-NUMA mode), and "the choice of page
 * modes does not affect performance significantly" — which is why the
 * evaluation deliberately runs 8 KB / 32 KB caches.  This bench runs
 * both machine shapes under SCOMA and LANUMA and prints the ratio.
 */

#include <array>
#include <cstdio>

#include "bench_util.hh"
#include "workload/parallel_runner.hh"

namespace {

struct Shape {
    const char *name;
    std::uint32_t l1;
    std::uint32_t l2;
};

} // namespace

int
main(int argc, char **argv)
{
    using namespace prism;
    using namespace prism::bench;

    const BenchOptions opts = BenchOptions::parse(argc, argv);
    banner("Section 4.2 — cache-size sensitivity of the page-mode "
           "choice (LANUMA time / SCOMA time)",
           opts);

    const Shape shapes[] = {
        {"8KB/32KB (paper eval)", 8 * 1024, 32 * 1024},
        {"16KB/1MB (fits WS)", 16 * 1024, 1024 * 1024},
    };

    std::printf("%-12s %24s %24s\n", "Application", shapes[0].name,
                shapes[1].name);

    // 2 shapes x 2 policies per app, all independent: run the whole
    // grid on the pool, print in app order afterwards.
    const auto &apps = opts.apps;
    struct Cell {
        RunMetrics scoma, lanuma;
        RunReport scomaReport, lanumaReport;
    };
    std::vector<std::array<Cell, 2>> grid(apps.size());
    {
        // In record mode the shapes[0] SCOMA cell captures the app's
        // trace; the other cells execute normally.  In replay mode
        // every cell re-issues the recorded stream.
        TaskPool pool(opts.jobs);
        for (std::size_t i = 0; i < apps.size(); ++i) {
            const std::string trace_path =
                opts.frontend == FrontendKind::Exec
                    ? std::string()
                    : tracePathFor(opts.traceFile, apps[i].name,
                                   apps.size());
            auto cellFrontend = [&](bool primary) {
                if (opts.frontend == FrontendKind::Replay)
                    return FrontendKind::Replay;
                if (opts.frontend == FrontendKind::Record && primary)
                    return FrontendKind::Record;
                return FrontendKind::Exec;
            };
            for (std::size_t j = 0; j < 2; ++j) {
                MachineConfig scoma;
                scoma.jobsIntra = opts.jobsIntra;
                scoma.protocol = opts.protocol;
                scoma.l1Bytes = shapes[j].l1;
                scoma.l2Bytes = shapes[j].l2;
                scoma.policy = PolicyKind::Scoma;
                MachineConfig lanuma = scoma;
                lanuma.policy = PolicyKind::LaNuma;

                const AppSpec &app = apps[i];
                Cell &cell = grid[i][j];
                RunSpec scoma_spec{.machine = scoma,
                                   .frontend = cellFrontend(j == 0),
                                   .traceFile = trace_path};
                RunSpec lanuma_spec{.machine = lanuma,
                                    .frontend = cellFrontend(false),
                                    .traceFile = trace_path};
                pool.submit([&cell, &app, scoma_spec] {
                    cell.scoma =
                        runOnce(scoma_spec, app, &cell.scomaReport);
                });
                pool.submit([&cell, &app, lanuma_spec] {
                    cell.lanuma =
                        runOnce(lanuma_spec, app, &cell.lanumaReport);
                });
            }
        }
        pool.wait();
    }

    for (std::size_t i = 0; i < apps.size(); ++i) {
        std::printf("%-12s", apps[i].name.c_str());
        for (std::size_t j = 0; j < 2; ++j) {
            std::printf(" %23.2fx",
                        static_cast<double>(grid[i][j].lanuma.execCycles) /
                            static_cast<double>(
                                grid[i][j].scoma.execCycles));
        }
        std::printf("\n");
        std::fflush(stdout);
    }
    std::printf("\n# Paper's claim: with the large caches the ratio "
                "collapses toward 1.0 because\n# capacity-related "
                "misses vanish and only communication misses remain "
                "— they\n# cost the same in either page mode.\n");
    if (opts.wantReport()) {
        std::vector<BenchRun> runs;
        for (std::size_t i = 0; i < apps.size(); ++i) {
            for (std::size_t j = 0; j < 2; ++j) {
                runs.push_back(BenchRun{apps[i].name,
                                        policyName(PolicyKind::Scoma),
                                        shapes[j].name,
                                        &grid[i][j].scomaReport});
                runs.push_back(BenchRun{apps[i].name,
                                        policyName(PolicyKind::LaNuma),
                                        shapes[j].name,
                                        &grid[i][j].lanumaReport});
            }
        }
        writeBenchReport(opts.reportPath, "cache_sensitivity", opts,
                         runs);
    }
    return 0;
}
