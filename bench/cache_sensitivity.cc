/**
 * @file
 * Section 4.2 cache-sensitivity reproduction.
 *
 * The paper notes that with a 16 KB L1 and a 1 MB L2 the SPLASH
 * working sets fit in cache, communication misses dominate (which
 * cost the same in S-COMA and LA-NUMA mode), and "the choice of page
 * modes does not affect performance significantly" — which is why the
 * evaluation deliberately runs 8 KB / 32 KB caches.  This bench runs
 * both machine shapes under SCOMA and LANUMA and prints the ratio.
 */

#include <cstdio>

#include "bench_util.hh"

namespace {

struct Shape {
    const char *name;
    std::uint32_t l1;
    std::uint32_t l2;
};

} // namespace

int
main()
{
    using namespace prism;
    using namespace prism::bench;

    banner("Section 4.2 — cache-size sensitivity of the page-mode "
           "choice (LANUMA time / SCOMA time)");

    const Shape shapes[] = {
        {"8KB/32KB (paper eval)", 8 * 1024, 32 * 1024},
        {"16KB/1MB (fits WS)", 16 * 1024, 1024 * 1024},
    };

    std::printf("%-12s %24s %24s\n", "Application", shapes[0].name,
                shapes[1].name);

    for (const auto &app : appsFromEnv(scaleFromEnv())) {
        std::printf("%-12s", app.name.c_str());
        for (const Shape &sh : shapes) {
            MachineConfig scoma;
            scoma.l1Bytes = sh.l1;
            scoma.l2Bytes = sh.l2;
            scoma.policy = PolicyKind::Scoma;
            RunMetrics s = runOnce(scoma, app);

            MachineConfig lanuma = scoma;
            lanuma.policy = PolicyKind::LaNuma;
            RunMetrics l = runOnce(lanuma, app);

            std::printf(" %23.2fx",
                        static_cast<double>(l.execCycles) /
                            static_cast<double>(s.execCycles));
        }
        std::printf("\n");
        std::fflush(stdout);
    }
    std::printf("\n# Paper's claim: with the large caches the ratio "
                "collapses toward 1.0 because\n# capacity-related "
                "misses vanish and only communication misses remain "
                "— they\n# cost the same in either page mode.\n");
    return 0;
}
