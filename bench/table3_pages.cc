/**
 * @file
 * Table 3 reproduction: page frames allocated and average page-frame
 * utilization under the SCOMA and LANUMA configurations (private and
 * shared memory; real frames only — imaginary LA-NUMA frames consume
 * no memory).
 */

#include <cstdio>

#include "bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace prism;
    using namespace prism::bench;

    const BenchOptions opts = BenchOptions::parse(argc, argv);
    banner("Table 3 — page consumption and utilization statistics",
           opts);

    std::printf("%-12s %12s %12s %14s %14s\n", "Application",
                "SCOMA", "LANUMA", "SCOMA util", "LANUMA util");

    MachineConfig base = opts.baseMachine();
    const std::vector<PolicyKind> policies = {PolicyKind::Scoma,
                                              PolicyKind::LaNuma};
    const auto &apps = opts.apps;
    const auto results =
        runSweepsParallel(RunSpec{.machine = base,
                                  .policies = policies,
                                  .jobs = opts.jobs,
                                  .frontend = opts.frontend,
                                  .traceFile = opts.traceFile},
                          apps);
    for (std::size_t a = 0; a < apps.size(); ++a) {
        const RunMetrics &s = results[a * 2 + 0].metrics;
        const RunMetrics &l = results[a * 2 + 1].metrics;
        std::printf("%-12s %12llu %12llu %14.3f %14.3f\n",
                    apps[a].name.c_str(),
                    static_cast<unsigned long long>(s.framesAllocated),
                    static_cast<unsigned long long>(l.framesAllocated),
                    s.avgUtilization, l.avgUtilization);
        std::fflush(stdout);
    }
    std::printf("\n# Paper's shape: SCOMA allocates several times more "
                "frames than LANUMA (client\n# page-cache copies) and "
                "has lower utilization (sparsely used replicated "
                "pages).\n");
    if (opts.wantReport())
        writeSweepReport(opts.reportPath, "table3_pages", opts,
                         results);
    return 0;
}
