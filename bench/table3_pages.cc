/**
 * @file
 * Table 3 reproduction: page frames allocated and average page-frame
 * utilization under the SCOMA and LANUMA configurations (private and
 * shared memory; real frames only — imaginary LA-NUMA frames consume
 * no memory).
 */

#include <cstdio>

#include "bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace prism;
    using namespace prism::bench;

    const BenchOptions opts = BenchOptions::parse(argc, argv);
    banner("Table 3 — page consumption and utilization statistics");

    std::printf("%-12s %12s %12s %14s %14s\n", "Application",
                "SCOMA", "LANUMA", "SCOMA util", "LANUMA util");

    MachineConfig base;
    base.jobsIntra = opts.jobsIntra;
    base.protocol = opts.protocol;
    std::vector<RunReport> reports;
    std::vector<BenchRun> runs;
    reports.reserve(opts.apps.size() * 2);
    for (const auto &app : opts.apps) {
        MachineConfig scoma_cfg = base;
        scoma_cfg.policy = PolicyKind::Scoma;
        reports.emplace_back();
        RunMetrics s = runOnce(scoma_cfg, app, &reports.back());
        runs.push_back(BenchRun{app.name, policyName(PolicyKind::Scoma),
                                "", &reports.back()});

        MachineConfig lanuma_cfg = base;
        lanuma_cfg.policy = PolicyKind::LaNuma;
        reports.emplace_back();
        RunMetrics l = runOnce(lanuma_cfg, app, &reports.back());
        runs.push_back(BenchRun{app.name,
                                policyName(PolicyKind::LaNuma), "",
                                &reports.back()});

        std::printf("%-12s %12llu %12llu %14.3f %14.3f\n",
                    app.name.c_str(),
                    static_cast<unsigned long long>(s.framesAllocated),
                    static_cast<unsigned long long>(l.framesAllocated),
                    s.avgUtilization, l.avgUtilization);
        std::fflush(stdout);
    }
    std::printf("\n# Paper's shape: SCOMA allocates several times more "
                "frames than LANUMA (client\n# page-cache copies) and "
                "has lower utilization (sparsely used replicated "
                "pages).\n");
    if (opts.wantReport())
        writeBenchReport(opts.reportPath, "table3_pages", opts.scale,
                         runs);
    return 0;
}
