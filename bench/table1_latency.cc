/**
 * @file
 * Table 1 reproduction: uncontended cache miss latencies and page
 * fault overheads, measured by a memory-latency microbenchmark on the
 * simulated 8x4 machine (paper Section 4.1).
 *
 * Phase 1 stages coherence state from helper processors; the clean
 * remote line is then paged out of its writer's node so the home
 * memory holds it with an Uncached directory state; phase 2 times
 * single accesses from processor 0 with fences around each probe.
 */

#include <cstdio>

#include "bench_util.hh"
#include "core/machine.hh"
#include "workload/workload.hh"

namespace prism {
namespace {

struct Row {
    const char *name;
    Tick paper;
    Tick measured = 0;
};

Row g_rows[] = {
    {"L1 miss, L2 hit", 12},
    {"Uncached, line in local memory", 36},
    {"Uncached, line in remote memory", 573},
    {"2-party read to a modified line", 608},
    {"3-party read to a modified line", 866},
    {"2-party write to shared line", 608},
    {"(3+1)-party write to shared line", 1222}, // 1142 + 80*1
    {"(3+3)-party write to shared line", 1382}, // 1142 + 80*3
    {"(3+5)-party write to shared line", 1542}, // 1142 + 80*5
    {"TLB miss", 30},
    {"In-core page fault, local home", 2300},
    {"In-core page fault, remote home", 4400},
};

constexpr std::uint64_t kKey = 0x7AB1;

Machine *g_machine = nullptr;

// Page homes are pnum % 8: pages 1, 9, 17, ... live at node 1.
VAddr
va(std::uint64_t pnum, std::uint64_t off = 0)
{
    return makeVAddr(kSharedVsid, pnum, off);
}

CoTask
timeRead(Proc &p, VAddr a, Tick *out)
{
    co_await p.fence();
    Tick t0 = g_machine->eventQueue().now();
    co_await p.read(a);
    co_await p.fence();
    *out = g_machine->eventQueue().now() - t0;
}

CoTask
timeWrite(Proc &p, VAddr a, Tick *out)
{
    co_await p.fence();
    Tick t0 = g_machine->eventQueue().now();
    co_await p.write(a);
    co_await p.fence();
    *out = g_machine->eventQueue().now() - t0;
}

/** Phase 1: stage coherence state from helper nodes. */
CoTask
stage(Proc &p)
{
    switch (p.id()) {
      case 4: // node 1: home of the interesting pages
        co_await p.write(va(9, 40 * 64));  // 2-party modified line
        co_await p.read(va(25, 8 * 64));   // 2-party shared line
        break;
      case 8: // node 2: remote owner / first extra sharer
        co_await p.write(va(17, 40 * 64)); // 3-party modified line
        co_await p.write(va(1, 32 * 64));  // clean remote line (below)
        co_await p.read(va(33, 8 * 64));   // sharer 1 of (3+1/3/5)
        co_await p.read(va(41, 8 * 64));
        co_await p.read(va(49, 8 * 64));
        break;
      case 12: // node 3
      case 16: // node 4
        co_await p.read(va(41, 8 * 64)); // sharers 2-3 of (3+3)
        co_await p.read(va(49, 8 * 64));
        break;
      case 20: // node 5
      case 24: // node 6
        co_await p.read(va(49, 8 * 64)); // sharers 4-5 of (3+5)
        break;
      default:
        break;
    }
    co_return;
}

/** Phase 2: timed probes from processor 0 (node 0). */
CoTask
measure(Proc &p)
{
    if (p.id() != 0)
        co_return;

    // ---- Row 0: L1 miss, L2 hit ----------------------------------------
    PrivArena priv(p.id());
    SimArray a{priv.alloc(4 * kPageBytes, kPageBytes), 8};
    co_await p.read(a.at(0));                  // line X (frame f)
    co_await p.read(a.at(kPageBytes / 8));     // allocate frame f+1
    co_await p.read(a.at(2 * kPageBytes / 8)); // same L1 set (frame f+2)
    co_await timeRead(p, a.at(0), &g_rows[0].measured);

    // ---- Row 1: uncached, line in local memory -------------------------
    co_await timeRead(p, a.at(32 * 8), &g_rows[1].measured);

    // ---- Row 2: uncached, line in remote memory ------------------------
    // Node 2 dirtied page 1 line 32 and then paged its copy out, so
    // the home's memory holds the data and the directory is Uncached.
    co_await p.read(va(1, 0)); // map the page at node 0 first
    co_await timeRead(p, va(1, 32 * 64), &g_rows[2].measured);

    // ---- Rows 3/4: 2-party and 3-party reads to modified lines --------
    co_await p.read(va(9, 0));
    co_await timeRead(p, va(9, 40 * 64), &g_rows[3].measured);
    co_await p.read(va(17, 0));
    co_await timeRead(p, va(17, 40 * 64), &g_rows[4].measured);

    // ---- Row 5: 2-party write to a line shared with the home ----------
    co_await p.read(va(25, 8 * 64));
    co_await timeWrite(p, va(25, 8 * 64), &g_rows[5].measured);

    // ---- Rows 6-8: (3+n)-party writes ----------------------------------
    int row = 6;
    for (std::uint64_t pg : {33, 41, 49}) {
        co_await p.read(va(pg, 8 * 64));
        co_await timeWrite(p, va(pg, 8 * 64), &g_rows[row].measured);
        ++row;
    }

    // ---- Row 9: TLB miss -------------------------------------------------
    PrivArena priv2(p.id());
    SimArray big{priv2.alloc(260 * kPageBytes, kPageBytes), 8};
    co_await p.read(big.at(0)); // probe page, line 0
    for (std::uint64_t i = 1; i < 200; ++i) {
        co_await p.read(
            big.at((i * kPageBytes + 1024 + (i % 32) * 64) / 8));
    }
    co_await timeRead(p, big.at(0), &g_rows[9].measured);

    // ---- Rows 10/11: in-core page faults --------------------------------
    // First access to an unmapped page (includes the first post-fault
    // miss, as in the paper's microbenchmark).
    co_await timeRead(p, va(8, 0), &g_rows[10].measured);  // home = n0
    co_await timeRead(p, va(57, 0), &g_rows[11].measured); // home = n1
}

} // namespace
} // namespace prism

int
main(int argc, char **argv)
{
    using namespace prism;
    using namespace prism::bench;
    const BenchOptions opts = BenchOptions::parse(argc, argv);
    if (opts.frontend != FrontendKind::Exec) {
        fatal("table1_latency drives the machine directly and "
              "supports only --frontend=exec");
    }
    std::printf("# PRISM reproduction: Table 1 — cache miss latencies "
                "and page fault overheads\n");
    std::printf("# (uncontended; processor cycles)\n\n");

    // Paper defaults: 8 nodes x 4 procs.  This bench drives the event
    // queue by hand (single-shot latency probes), which requires the
    // sequential scheduler, so --jobs-intra is deliberately not wired
    // through here.
    MachineConfig cfg;
    cfg.protocol = opts.protocol;
    Machine m(cfg);
    g_machine = &m;
    std::uint64_t gsid = m.shmget(kKey, 256 * kPageBytes);
    m.shmatAll(kSharedVsid, gsid);

    m.run([&](Proc &p) { return stage(p); });

    // Page node 2's copy of page 1 out: its dirty line is written back
    // to the home and the directory becomes Uncached.
    {
        Kernel &k2 = m.node(2).kernel();
        GPage gp1 = (gsid << kPageNumBits) | 1;
        bool done = false;
        auto drive = [&]() -> FireAndForget {
            co_await k2.pageOutClient(gp1, false);
            done = true;
        };
        drive();
        m.eventQueue().runAll();
        if (!done)
            fatal("staging page-out did not complete");
    }

    m.run([&](Proc &p) { return measure(p); });

    std::printf("%-36s %10s %10s %8s\n", "Memory Access Type", "paper",
                "measured", "ratio");
    for (const Row &r : g_rows) {
        std::printf("%-36s %10llu %10llu %8.2f\n", r.name,
                    static_cast<unsigned long long>(r.paper),
                    static_cast<unsigned long long>(r.measured),
                    r.paper ? static_cast<double>(r.measured) /
                                  static_cast<double>(r.paper)
                            : 0.0);
    }
    std::printf("\n# Notes: the (3+n)-party slope reflects serialized "
                "invalidation sends at the\n# home controller; page "
                "fault rows include the first post-fault miss, as in "
                "the\n# paper's microbenchmark.\n");
    if (opts.wantReport())
        writeSingleReport(opts.reportPath, m.report());
    return 0;
}
