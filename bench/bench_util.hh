/**
 * @file
 * Shared helpers for the table/figure reproduction benches.
 *
 * Environment knobs:
 *   PRISM_SCALE = paper | small | tiny   (default: paper)
 *   PRISM_APPS  = comma-separated app filter (default: all eight;
 *                 a filter matching nothing is a fatal error)
 *   PRISM_JOBS  = worker threads for the parallel sweep runner
 *                 (default: hardware concurrency; `--jobs N` wins)
 */

#ifndef PRISM_BENCH_BENCH_UTIL_HH
#define PRISM_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "workload/apps.hh"
#include "workload/experiment.hh"

namespace prism {
namespace bench {

inline AppScale
scaleFromEnv()
{
    const char *s = std::getenv("PRISM_SCALE");
    if (!s || !std::strcmp(s, "paper"))
        return AppScale::Paper;
    if (!std::strcmp(s, "small"))
        return AppScale::Small;
    if (!std::strcmp(s, "tiny"))
        return AppScale::Tiny;
    std::fprintf(stderr,
                 "unknown PRISM_SCALE '%s' (valid: paper small tiny)\n",
                 s);
    std::exit(1);
}

inline const char *
scaleName(AppScale s)
{
    switch (s) {
      case AppScale::Paper: return "paper";
      case AppScale::Small: return "small";
      case AppScale::Tiny: return "tiny";
    }
    return "?";
}

inline std::vector<AppSpec>
appsFromEnv(AppScale scale)
{
    std::vector<AppSpec> all = standardApps(scale);
    const char *filter = std::getenv("PRISM_APPS");
    if (!filter)
        return all;
    // Comma-separated substrings: an app is selected when any token
    // appears in its name (e.g. PRISM_APPS=Water selects both Water
    // variants).
    std::vector<std::string> tokens;
    std::string f = filter;
    std::size_t pos = 0;
    while (pos <= f.size()) {
        std::size_t comma = f.find(',', pos);
        if (comma == std::string::npos)
            comma = f.size();
        if (comma > pos)
            tokens.push_back(f.substr(pos, comma - pos));
        pos = comma + 1;
    }
    std::vector<AppSpec> out;
    for (auto &a : all) {
        for (const auto &t : tokens) {
            if (a.name.find(t) != std::string::npos) {
                out.push_back(a);
                break;
            }
        }
    }
    if (out.empty()) {
        std::fprintf(stderr,
                     "PRISM_APPS='%s' matches no application; valid "
                     "names:",
                     filter);
        for (const auto &a : all)
            std::fprintf(stderr, " %s", a.name.c_str());
        std::fprintf(stderr, "\n");
        std::exit(1);
    }
    return out;
}

inline void
banner(const char *what, unsigned jobs = 0)
{
    AppScale s = scaleFromEnv();
    std::printf("# PRISM reproduction: %s\n", what);
    std::printf("# machine: 8 nodes x 4 procs, 8KB L1 / 32KB L2, "
                "4KB pages, 64B lines\n");
    std::printf("# scale: %s (PRISM_SCALE to change)", scaleName(s));
    if (jobs)
        std::printf("; jobs: %u (PRISM_JOBS/--jobs to change)", jobs);
    std::printf("\n\n");
}

} // namespace bench
} // namespace prism

#endif // PRISM_BENCH_BENCH_UTIL_HH
