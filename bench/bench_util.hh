/**
 * @file
 * Shared helpers for the table/figure reproduction benches.
 *
 * Environment knobs:
 *   PRISM_SCALE = paper | small | tiny   (default: paper)
 *   PRISM_APPS  = comma-separated app filter (default: all eight;
 *                 a filter matching nothing is a fatal error)
 *   PRISM_JOBS  = worker threads for the parallel sweep runner
 *                 (default: hardware concurrency; `--jobs N` wins)
 *   PRISM_JOBS_INTRA = event-loop shards *inside* each simulation
 *                 (default: 1 = sequential scheduler; `--jobs-intra N`
 *                 wins; see docs/PERFORMANCE.md "Sharded scheduler")
 *   PRISM_PROTOCOL = msi | mesi | moesi | mesif  (default: mesi;
 *                 `--protocol <scheme>` wins; see docs/PROTOCOL.md)
 *
 * Common CLI (BenchOptions::parse):
 *   --report <path>   write a schema-versioned JSON report
 *   --jobs <n>        worker threads (overrides PRISM_JOBS)
 *   --jobs-intra <n>  event-loop shards per simulation
 *                     (overrides PRISM_JOBS_INTRA)
 *   --protocol <p>    intra-node line protocol (overrides
 *                     PRISM_PROTOCOL)
 *   --list            print the application inventory and exit
 *                     (benches that support it)
 * Bench-specific flags (e.g. --ccnuma) pass through via extra().
 */

#ifndef PRISM_BENCH_BENCH_UTIL_HH
#define PRISM_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "obs/json.hh"
#include "obs/report.hh"
#include "sim/logging.hh"
#include "workload/apps.hh"
#include "workload/experiment.hh"
#include "workload/parallel_runner.hh"

namespace prism {
namespace bench {

inline AppScale
scaleFromEnv()
{
    const char *s = std::getenv("PRISM_SCALE");
    if (!s || !std::strcmp(s, "paper"))
        return AppScale::Paper;
    if (!std::strcmp(s, "small"))
        return AppScale::Small;
    if (!std::strcmp(s, "tiny"))
        return AppScale::Tiny;
    std::fprintf(stderr,
                 "unknown PRISM_SCALE '%s' (valid: paper small tiny)\n",
                 s);
    std::exit(1);
}

inline const char *
scaleName(AppScale s)
{
    switch (s) {
      case AppScale::Paper: return "paper";
      case AppScale::Small: return "small";
      case AppScale::Tiny: return "tiny";
    }
    return "?";
}

inline std::vector<AppSpec>
appsFromEnv(AppScale scale)
{
    std::vector<AppSpec> all = standardApps(scale);
    const char *filter = std::getenv("PRISM_APPS");
    if (!filter)
        return all;
    // Comma-separated substrings: an app is selected when any token
    // appears in its name (e.g. PRISM_APPS=Water selects both Water
    // variants).
    std::vector<std::string> tokens;
    std::string f = filter;
    std::size_t pos = 0;
    while (pos <= f.size()) {
        std::size_t comma = f.find(',', pos);
        if (comma == std::string::npos)
            comma = f.size();
        if (comma > pos)
            tokens.push_back(f.substr(pos, comma - pos));
        pos = comma + 1;
    }
    std::vector<AppSpec> out;
    for (auto &a : all) {
        for (const auto &t : tokens) {
            if (a.name.find(t) != std::string::npos) {
                out.push_back(a);
                break;
            }
        }
    }
    if (out.empty()) {
        std::fprintf(stderr,
                     "PRISM_APPS='%s' matches no application; valid "
                     "names:",
                     filter);
        for (const auto &a : all)
            std::fprintf(stderr, " %s", a.name.c_str());
        std::fprintf(stderr, "\n");
        std::exit(1);
    }
    return out;
}

inline void
banner(const char *what, unsigned jobs = 0)
{
    AppScale s = scaleFromEnv();
    std::printf("# PRISM reproduction: %s\n", what);
    std::printf("# machine: 8 nodes x 4 procs, 8KB L1 / 32KB L2, "
                "4KB pages, 64B lines\n");
    std::printf("# scale: %s (PRISM_SCALE to change)", scaleName(s));
    if (jobs)
        std::printf("; jobs: %u (PRISM_JOBS/--jobs to change)", jobs);
    std::printf("\n\n");
}

/**
 * The unified bench command line.  Every table/figure bench parses its
 * arguments through here so that `--report`, `--jobs` and `--list`
 * behave identically across the suite; flags a bench defines for
 * itself (e.g. pit_sensitivity's `--ccnuma`) are collected in extra_
 * and queried with flag().
 */
struct BenchOptions {
    AppScale scale = AppScale::Paper;
    unsigned jobs = 1;
    unsigned jobsIntra = 1; //!< event-loop shards per simulation
    ProtocolScheme protocol = ProtocolScheme::Mesi;
    std::vector<AppSpec> apps;
    std::string reportPath; //!< empty when --report was not given
    bool list = false;

    static BenchOptions
    parse(int argc, char **argv)
    {
        BenchOptions o;
        o.scale = scaleFromEnv();
        o.apps = appsFromEnv(o.scale);
        o.jobs = jobsFromArgs(argc, argv);
        if (const char *ji = std::getenv("PRISM_JOBS_INTRA")) {
            int v = std::atoi(ji);
            if (v < 1)
                fatal("PRISM_JOBS_INTRA must be >= 1 (got '%s')", ji);
            o.jobsIntra = static_cast<unsigned>(v);
        }
        if (const char *pr = std::getenv("PRISM_PROTOCOL"))
            o.protocol = parseProtocol(pr);
        for (int i = 1; i < argc; ++i) {
            if (!std::strcmp(argv[i], "--report") && i + 1 < argc) {
                o.reportPath = argv[++i];
            } else if (!std::strncmp(argv[i], "--report=", 9)) {
                o.reportPath = argv[i] + 9;
            } else if (!std::strcmp(argv[i], "--report")) {
                fatal("--report requires a path argument");
            } else if (!std::strcmp(argv[i], "--jobs") &&
                       i + 1 < argc) {
                ++i; // value consumed by jobsFromArgs above
            } else if (!std::strncmp(argv[i], "--jobs=", 7)) {
                // handled by jobsFromArgs above
            } else if (!std::strcmp(argv[i], "--jobs-intra") &&
                       i + 1 < argc) {
                o.jobsIntra = parseJobsIntra(argv[++i]);
            } else if (!std::strncmp(argv[i], "--jobs-intra=", 13)) {
                o.jobsIntra = parseJobsIntra(argv[i] + 13);
            } else if (!std::strcmp(argv[i], "--jobs-intra")) {
                fatal("--jobs-intra requires a count argument");
            } else if (!std::strcmp(argv[i], "--protocol") &&
                       i + 1 < argc) {
                o.protocol = parseProtocol(argv[++i]);
            } else if (!std::strncmp(argv[i], "--protocol=", 11)) {
                o.protocol = parseProtocol(argv[i] + 11);
            } else if (!std::strcmp(argv[i], "--protocol")) {
                fatal("--protocol requires a scheme argument");
            } else if (!std::strcmp(argv[i], "--list")) {
                o.list = true;
            } else {
                o.extra_.push_back(argv[i]);
            }
        }
        return o;
    }

    /** True when a bench-specific flag (e.g. "--ccnuma") was given. */
    bool
    flag(const char *name) const
    {
        for (const std::string &e : extra_) {
            if (e == name)
                return true;
        }
        return false;
    }

    bool wantReport() const { return !reportPath.empty(); }

  private:
    static unsigned
    parseJobsIntra(const char *s)
    {
        int v = std::atoi(s);
        if (v < 1)
            fatal("--jobs-intra must be >= 1 (got '%s')", s);
        return static_cast<unsigned>(v);
    }

    static ProtocolScheme
    parseProtocol(const char *s)
    {
        ProtocolScheme p;
        if (!protocolFromString(s, &p))
            fatal("unknown protocol '%s' (valid: msi mesi moesi mesif)",
                  s);
        return p;
    }

    std::vector<std::string> extra_;
};

/**
 * One run inside a bench report: which (app, policy, variant) the
 * attached RunReport describes.  `variant` distinguishes runs the
 * sweep dimensions don't (e.g. cache_sensitivity's machine shapes).
 */
struct BenchRun {
    std::string app;
    std::string policy;
    std::string variant; //!< empty unless the bench adds a dimension
    const RunReport *report = nullptr;
};

/**
 * Write a "prism.bench_report" JSON document: bench identity, scale,
 * and the full per-run reports.  Shares the run-report schema version
 * (each embedded run carries its own "schema" marker too).
 */
inline void
writeBenchReport(const std::string &path, const char *bench,
                 AppScale scale, const std::vector<BenchRun> &runs)
{
    std::ofstream os(path);
    if (!os) {
        warn("cannot open --report file '%s'", path.c_str());
        return;
    }
    JsonWriter w(os);
    w.beginObject();
    w.kv("schema", "prism.bench_report");
    w.kv("schemaVersion", kRunReportSchemaVersion);
    w.kv("bench", bench);
    w.kv("scale", scaleName(scale));
    w.key("runs");
    w.beginArray();
    for (const BenchRun &r : runs) {
        w.beginObject();
        w.kv("app", r.app);
        w.kv("policy", r.policy);
        if (!r.variant.empty())
            w.kv("variant", r.variant);
        w.key("report");
        r.report->writeJson(w);
        w.endObject();
    }
    w.endArray();
    w.endObject();
    os << "\n";
    std::printf("# wrote report: %s\n", path.c_str());
}

/** Adapt a policy-sweep result vector to writeBenchReport(). */
inline void
writeSweepReport(const std::string &path, const char *bench,
                 AppScale scale,
                 const std::vector<ExperimentResult> &results)
{
    std::vector<BenchRun> runs;
    runs.reserve(results.size());
    for (const ExperimentResult &r : results)
        runs.push_back(BenchRun{r.app, policyName(r.policy), "",
                                &r.report});
    writeBenchReport(path, bench, scale, runs);
}

/** Write a single machine's run report (single-run benches). */
inline void
writeSingleReport(const std::string &path, const RunReport &report)
{
    std::ofstream os(path);
    if (!os) {
        warn("cannot open --report file '%s'", path.c_str());
        return;
    }
    report.writeJson(os);
    os << "\n";
    std::printf("# wrote report: %s\n", path.c_str());
}

} // namespace bench
} // namespace prism

#endif // PRISM_BENCH_BENCH_UTIL_HH
