/**
 * @file
 * Shared helpers for the table/figure reproduction benches.
 *
 * Every knob is declared once in the PRISM env registry
 * (src/core/env.hh); BenchOptions::parse resolves each one with a
 * single precedence rule — flag > environment > default — and
 * `--help` prints the generated table.  Flags a bench defines for
 * itself (e.g. pit_sensitivity's `--ccnuma`) are collected in extra_
 * and queried with flag().
 *
 * Common CLI (BenchOptions::parse):
 *   --scale <s>        problem size         (PRISM_SCALE)
 *   --apps <filter>    application filter   (PRISM_APPS)
 *   --jobs <n>         sweep workers        (PRISM_JOBS)
 *   --jobs-intra <n>   event-loop shards    (PRISM_JOBS_INTRA)
 *   --protocol <p>     line protocol        (PRISM_PROTOCOL)
 *   --frontend <f>     exec|record|replay   (PRISM_FRONTEND)
 *   --trace-file <p>   .ptrace path         (PRISM_TRACE_FILE)
 *   --report <path>    write a schema-versioned JSON report
 *   --list             print the application inventory and exit
 *   --help             print the knob table and exit
 */

#ifndef PRISM_BENCH_BENCH_UTIL_HH
#define PRISM_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "core/env.hh"
#include "obs/json.hh"
#include "obs/report.hh"
#include "sim/logging.hh"
#include "workload/apps.hh"
#include "workload/experiment.hh"
#include "workload/parallel_runner.hh"

namespace prism {
namespace bench {

inline AppScale
parseScale(const char *s)
{
    if (!std::strcmp(s, "paper"))
        return AppScale::Paper;
    if (!std::strcmp(s, "small"))
        return AppScale::Small;
    if (!std::strcmp(s, "tiny"))
        return AppScale::Tiny;
    std::fprintf(stderr,
                 "unknown PRISM_SCALE '%s' (valid: paper small tiny)\n",
                 s);
    std::exit(1);
}

inline AppScale
scaleFromEnv()
{
    const char *s = resolveEnv("PRISM_SCALE");
    return s ? parseScale(s) : AppScale::Paper;
}

inline const char *
scaleName(AppScale s)
{
    switch (s) {
      case AppScale::Paper: return "paper";
      case AppScale::Small: return "small";
      case AppScale::Tiny: return "tiny";
    }
    return "?";
}

/**
 * Apply a comma-separated substring @p filter to the standard app
 * inventory at @p scale: an app is selected when any token appears in
 * its name (e.g. "Water" selects both Water variants).  Null selects
 * everything; a filter matching nothing is a fatal error.
 */
inline std::vector<AppSpec>
filterApps(AppScale scale, const char *filter)
{
    std::vector<AppSpec> all = standardApps(scale);
    if (!filter)
        return all;
    std::vector<std::string> tokens;
    std::string f = filter;
    std::size_t pos = 0;
    while (pos <= f.size()) {
        std::size_t comma = f.find(',', pos);
        if (comma == std::string::npos)
            comma = f.size();
        if (comma > pos)
            tokens.push_back(f.substr(pos, comma - pos));
        pos = comma + 1;
    }
    std::vector<AppSpec> out;
    for (auto &a : all) {
        for (const auto &t : tokens) {
            if (a.name.find(t) != std::string::npos) {
                out.push_back(a);
                break;
            }
        }
    }
    if (out.empty()) {
        std::fprintf(stderr,
                     "PRISM_APPS='%s' matches no application; valid "
                     "names:",
                     filter);
        for (const auto &a : all)
            std::fprintf(stderr, " %s", a.name.c_str());
        std::fprintf(stderr, "\n");
        std::exit(1);
    }
    return out;
}

inline std::vector<AppSpec>
appsFromEnv(AppScale scale)
{
    return filterApps(scale, resolveEnv("PRISM_APPS"));
}

/**
 * The unified bench command line.  Every table/figure bench parses its
 * arguments through here so the common flags behave identically
 * across the suite; each registered knob resolves as flag > env >
 * default through the env registry (core/env.hh).
 */
struct BenchOptions {
    AppScale scale = AppScale::Paper;
    /** Machine topology preset; defaults to the paper's 8x4. */
    std::uint32_t numNodes = 8;
    std::uint32_t procsPerNode = 4;
    unsigned jobs = 1;
    unsigned jobsIntra = 1; //!< event-loop shards per simulation
    ProtocolScheme protocol = ProtocolScheme::Mesi;
    FrontendKind frontend = FrontendKind::Exec;
    std::string traceFile; //!< empty unless --trace-file was given
    std::vector<AppSpec> apps;
    std::string reportPath; //!< empty when --report was not given
    bool list = false;
    // KV workload knobs (bench/kv_sweep.cc): 0 / negative / empty
    // mean "use the scale preset / sweep every value".
    std::uint64_t kvKeys = 0;
    std::uint64_t kvRequests = 0;
    double kvTheta = -1.0;
    std::string kvMix;

    static BenchOptions
    parse(int argc, char **argv)
    {
        for (int i = 1; i < argc; ++i) {
            if (!std::strcmp(argv[i], "--help") ||
                !std::strcmp(argv[i], "-h")) {
                std::printf("usage: %s [flags]\n\n"
                            "Registered knobs (flag > environment > "
                            "default):\n%s\n"
                            "Flag-only options:\n"
                            "  --report <path>   write a JSON report\n"
                            "  --list            print the application "
                            "inventory and exit\n"
                            "  --help            this table\n",
                            argv[0], envHelpTable().c_str());
                std::exit(0);
            }
        }

        BenchOptions o;
        if (const char *v = resolve(argc, argv, "PRISM_SCALE"))
            o.scale = parseScale(v);
        if (const char *v = resolve(argc, argv, "PRISM_MACHINE")) {
            MachineConfig shape;
            if (!machineFromString(v, &shape)) {
                fatal("unknown machine preset '%s' (valid: paper or "
                      "<nodes>x<procs>, e.g. 128x8)", v);
            }
            o.numNodes = shape.numNodes;
            o.procsPerNode = shape.procsPerNode;
        }
        o.apps =
            filterApps(o.scale, resolve(argc, argv, "PRISM_APPS"));
        o.jobs = parseCount("PRISM_JOBS/--jobs",
                            resolve(argc, argv, "PRISM_JOBS"),
                            defaultJobs());
        o.jobsIntra = parseCount("PRISM_JOBS_INTRA/--jobs-intra",
                                 resolve(argc, argv,
                                         "PRISM_JOBS_INTRA"),
                                 1);
        if (const char *v = resolve(argc, argv, "PRISM_PROTOCOL"))
            o.protocol = parseProtocol(v);
        if (const char *v = resolve(argc, argv, "PRISM_FRONTEND")) {
            if (!frontendFromString(v, &o.frontend)) {
                fatal("unknown frontend '%s' (valid: exec record "
                      "replay)", v);
            }
        }
        if (const char *v = resolve(argc, argv, "PRISM_TRACE_FILE"))
            o.traceFile = v;
        o.kvKeys = parseKnobU64("PRISM_KV_KEYS/--kv-keys",
                                resolve(argc, argv, "PRISM_KV_KEYS"),
                                0, 1);
        o.kvRequests =
            parseKnobU64("PRISM_KV_REQUESTS/--kv-requests",
                         resolve(argc, argv, "PRISM_KV_REQUESTS"), 0,
                         1);
        o.kvTheta = parseKnobReal("PRISM_KV_THETA/--kv-theta",
                                  resolve(argc, argv,
                                          "PRISM_KV_THETA"),
                                  -1.0, 0.0, 0.9999);
        if (const char *v = resolve(argc, argv, "PRISM_KV_MIX"))
            o.kvMix = v;
        if ((o.frontend == FrontendKind::Record ||
             o.frontend == FrontendKind::Replay) &&
            o.traceFile.empty()) {
            fatal("--frontend=%s requires --trace-file (or "
                  "PRISM_TRACE_FILE)", frontendName(o.frontend));
        }

        // Everything not consumed by a registered knob or a common
        // flag passes through to the bench.
        for (int i = 1; i < argc; ++i) {
            if (const EnvKnob *k = matchKnobFlag(argv[i])) {
                if (!std::strcmp(argv[i], k->flag))
                    ++i; // skip the value token
                continue;
            }
            if (!std::strcmp(argv[i], "--report") && i + 1 < argc) {
                o.reportPath = argv[++i];
            } else if (!std::strncmp(argv[i], "--report=", 9)) {
                o.reportPath = argv[i] + 9;
            } else if (!std::strcmp(argv[i], "--report")) {
                fatal("--report requires a path argument");
            } else if (!std::strcmp(argv[i], "--list")) {
                o.list = true;
            } else {
                o.extra_.push_back(argv[i]);
            }
        }
        return o;
    }

    /**
     * A MachineConfig seeded with the parsed topology, protocol and
     * shard count — the common starting point for every bench's base
     * machine.
     */
    MachineConfig
    baseMachine() const
    {
        MachineConfig m;
        m.numNodes = numNodes;
        m.procsPerNode = procsPerNode;
        m.jobsIntra = jobsIntra;
        m.protocol = protocol;
        return m;
    }

    /** True when a bench-specific flag (e.g. "--ccnuma") was given. */
    bool
    flag(const char *name) const
    {
        for (const std::string &e : extra_) {
            if (e == name)
                return true;
        }
        return false;
    }

    bool wantReport() const { return !reportPath.empty(); }

    /**
     * Resolve one registered knob with the uniform precedence rule:
     * the knob's CLI flag (last occurrence wins) > its environment
     * variable > nullptr (caller applies the default).
     */
    static const char *
    resolve(int argc, char **argv, const char *env_name)
    {
        const EnvKnob *k = findEnvKnob(env_name);
        prism_assert(k, "knob '%s' missing from the env registry",
                     env_name);
        const char *v = nullptr;
        if (k->flag) {
            const std::size_t flen = std::strlen(k->flag);
            for (int i = 1; i < argc; ++i) {
                if (!std::strcmp(argv[i], k->flag)) {
                    if (i + 1 >= argc)
                        fatal("%s requires a value (%s)", k->flag,
                              k->values);
                    v = argv[++i];
                } else if (!std::strncmp(argv[i], k->flag, flen) &&
                           argv[i][flen] == '=') {
                    v = argv[i] + flen + 1;
                }
            }
        }
        return v ? v : resolveEnv(env_name);
    }

  private:
    /** The registry knob whose flag @p arg spells ("--x" or "--x=v"). */
    static const EnvKnob *
    matchKnobFlag(const char *arg)
    {
        if (std::strncmp(arg, "--", 2))
            return nullptr;
        std::string name = arg;
        const std::size_t eq = name.find('=');
        if (eq != std::string::npos)
            name.resize(eq);
        return findEnvKnobByFlag(name.c_str());
    }

    static unsigned
    parseCount(const char *what, const char *s, unsigned def)
    {
        return static_cast<unsigned>(
            parseKnobU64(what, s, def, 1, ~0U));
    }

    static ProtocolScheme
    parseProtocol(const char *s)
    {
        ProtocolScheme p;
        if (!protocolFromString(s, &p))
            fatal("unknown protocol '%s' (valid: msi mesi moesi mesif)",
                  s);
        return p;
    }

    std::vector<std::string> extra_;
};

inline void
banner(const char *what, const BenchOptions &o, bool show_jobs = true)
{
    std::printf("# PRISM reproduction: %s\n", what);
    std::printf("# machine: %u nodes x %u procs, 8KB L1 / 32KB L2, "
                "4KB pages, 64B lines\n",
                o.numNodes, o.procsPerNode);
    std::printf("# scale: %s (PRISM_SCALE/--scale to change)",
                scaleName(o.scale));
    if (show_jobs)
        std::printf("; jobs: %u (PRISM_JOBS/--jobs to change)", o.jobs);
    if (o.frontend != FrontendKind::Exec) {
        std::printf("; frontend: %s (%s)", frontendName(o.frontend),
                    o.traceFile.c_str());
    }
    std::printf("\n\n");
}

/**
 * One run inside a bench report: which (app, policy, variant) the
 * attached RunReport describes.  `variant` distinguishes runs the
 * sweep dimensions don't (e.g. cache_sensitivity's machine shapes).
 */
struct BenchRun {
    std::string app;
    std::string policy;
    std::string variant; //!< empty unless the bench adds a dimension
    const RunReport *report = nullptr;
};

/**
 * Write a "prism.bench_report" JSON document: bench identity, scale,
 * frontend, and the full per-run reports.  Shares the run-report
 * schema version (each embedded run carries its own "schema" marker
 * too).
 */
inline void
writeBenchReport(const std::string &path, const char *bench,
                 const BenchOptions &opts,
                 const std::vector<BenchRun> &runs)
{
    std::ofstream os(path);
    if (!os) {
        warn("cannot open --report file '%s'", path.c_str());
        return;
    }
    JsonWriter w(os);
    w.beginObject();
    w.kv("schema", "prism.bench_report");
    w.kv("schemaVersion", kRunReportSchemaVersion);
    w.kv("bench", bench);
    w.kv("scale", scaleName(opts.scale));
    w.kv("frontend", frontendName(opts.frontend));
    w.key("runs");
    w.beginArray();
    for (const BenchRun &r : runs) {
        w.beginObject();
        w.kv("app", r.app);
        w.kv("policy", r.policy);
        if (!r.variant.empty())
            w.kv("variant", r.variant);
        w.key("report");
        r.report->writeJson(w);
        w.endObject();
    }
    w.endArray();
    w.endObject();
    os << "\n";
    std::printf("# wrote report: %s\n", path.c_str());
}

/** Adapt a policy-sweep result vector to writeBenchReport(). */
inline void
writeSweepReport(const std::string &path, const char *bench,
                 const BenchOptions &opts,
                 const std::vector<ExperimentResult> &results)
{
    std::vector<BenchRun> runs;
    runs.reserve(results.size());
    for (const ExperimentResult &r : results)
        runs.push_back(BenchRun{r.app, policyName(r.policy), "",
                                &r.report});
    writeBenchReport(path, bench, opts, runs);
}

/** Write a single machine's run report (single-run benches). */
inline void
writeSingleReport(const std::string &path, const RunReport &report)
{
    std::ofstream os(path);
    if (!os) {
        warn("cannot open --report file '%s'", path.c_str());
        return;
    }
    report.writeJson(os);
    os << "\n";
    std::printf("# wrote report: %s\n", path.c_str());
}

} // namespace bench
} // namespace prism

#endif // PRISM_BENCH_BENCH_UTIL_HH
