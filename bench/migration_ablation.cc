/**
 * @file
 * Lazy page migration ablation (paper Section 3.5 / Baylor et al.).
 *
 * A phase-shifting workload: the set of pages each node works on
 * rotates between phases, so a page's dominant accessor changes over
 * time.  With lazy migration enabled, the dynamic home follows the
 * worker and converts remote misses into local ones; the cost is
 * forwarding of misdirected requests from stale PIT hints.
 */

#include <cstdio>

#include "bench_util.hh"
#include "core/machine.hh"
#include "workload/workload.hh"

namespace prism {
namespace {

constexpr std::uint64_t kKey = 0xAB1A7E;
constexpr std::uint32_t kPages = 16;
constexpr std::uint32_t kPhases = 6;
constexpr std::uint32_t kSweeps = 12;

CoTask
phased(Proc &p, std::uint32_t nt)
{
    const NodeId my_node = p.id() / 4;
    const std::uint32_t procs_per_node = 4;
    const std::uint32_t my_lane = p.id() % procs_per_node;
    if (p.id() == 0)
        co_await p.beginParallel();
    co_await p.barrier(0);
    for (std::uint32_t phase = 0; phase < kPhases; ++phase) {
        // In each phase, node (phase % nodes) owns the working set.
        const NodeId worker = phase % (nt / procs_per_node);
        if (my_node == worker) {
            for (std::uint32_t sweep = 0; sweep < kSweeps; ++sweep) {
                for (std::uint32_t pg = my_lane; pg < kPages;
                     pg += procs_per_node) {
                    for (std::uint32_t l = 0; l < 64; ++l) {
                        co_await p.write(makeVAddr(
                            kSharedVsid, pg,
                            static_cast<std::uint64_t>(l) * 64));
                    }
                }
            }
        }
        co_await p.barrier(0);
    }
    co_await p.barrier(0);
    if (p.id() == 0)
        co_await p.endParallel();
}

RunMetrics
runConfig(bool migration, unsigned jobs_intra, ProtocolScheme protocol,
          RunReport *report)
{
    MachineConfig cfg;
    cfg.jobsIntra = jobs_intra;
    cfg.protocol = protocol;
    cfg.migrationEnabled = migration;
    cfg.migrationThreshold = 48;
    Machine m(cfg);
    std::uint64_t gsid = m.shmget(kKey, (kPages + 4) * kPageBytes);
    m.shmatAll(kSharedVsid, gsid);
    m.run([&](Proc &p) { return phased(p, m.numProcs()); });
    RunMetrics r = m.metrics();
    if (report)
        *report = m.report();
    return r;
}

} // namespace
} // namespace prism

int
main(int argc, char **argv)
{
    using namespace prism;
    using namespace prism::bench;
    const BenchOptions opts = BenchOptions::parse(argc, argv);
    if (opts.frontend != FrontendKind::Exec) {
        fatal("migration_ablation drives the machine directly and "
              "supports only --frontend=exec");
    }
    std::printf("# PRISM ablation: lazy page migration on a "
                "phase-shifting workload\n");
    std::printf("# (%u pages, %u phases, ownership rotates across "
                "nodes)\n\n", kPages, kPhases);

    RunReport off_report, on_report;
    RunMetrics off =
        runConfig(false, opts.jobsIntra, opts.protocol, &off_report);
    RunMetrics on =
        runConfig(true, opts.jobsIntra, opts.protocol, &on_report);

    std::printf("%-28s %14s %14s\n", "metric", "migration OFF",
                "migration ON");
    auto row = [](const char *name, std::uint64_t a, std::uint64_t b) {
        std::printf("%-28s %14llu %14llu\n", name,
                    static_cast<unsigned long long>(a),
                    static_cast<unsigned long long>(b));
    };
    row("exec cycles", off.execCycles, on.execCycles);
    row("remote misses", off.remoteMisses, on.remoteMisses);
    row("upgrades", off.upgrades, on.upgrades);
    row("network messages", off.networkMessages, on.networkMessages);
    row("home migrations", off.migrations, on.migrations);
    row("forwarded requests", off.forwards, on.forwards);
    std::printf("\nspeedup from migration: %.2fx\n",
                static_cast<double>(off.execCycles) /
                    static_cast<double>(on.execCycles));
    std::printf("\n# Expectation: migration moves each page's home to "
                "its current writer, cutting\n# remote misses sharply "
                "at the price of a burst of forwarded requests per "
                "phase\n# shift (lazy PIT-hint refresh).\n");
    if (opts.wantReport()) {
        std::vector<BenchRun> runs;
        runs.push_back(BenchRun{"phased", "SCOMA", "migration-off",
                                &off_report});
        runs.push_back(BenchRun{"phased", "SCOMA", "migration-on",
                                &on_report});
        writeBenchReport(opts.reportPath, "migration_ablation", opts,
                         runs);
    }
    return 0;
}
