/**
 * @file
 * Machine-size scaling sweep: the Figure 7 policy comparison re-run
 * across machine presets from the paper's 8x4 up to 128x8 (1024
 * processors) — past the original evaluation, which the 64-bit sharer
 * bitmasks used to cap at 64 nodes.
 *
 * For each preset the policy sweep prints exec cycles normalized to
 * SCOMA exactly like fig7_exec_time, followed by a per-node memory
 * footprint table (directory bytes, PIT entries, fine-grain tag
 * bytes) harvested from the run reports' `footprint` gauges — the
 * quantity that grows with machine width and motivates the SoA
 * directory arena.
 *
 * The default preset list is machinePresets() (8x4, 16x4, 32x8,
 * 128x8); `--machine N x P` restricts the sweep to that single
 * topology.  Problem sizes follow --scale as everywhere else; the
 * node-partitioned KV workload weak-scales with the machine and is
 * the natural pick for the big presets (--apps kv), while the fixed-
 * size SPLASH kernels degenerate once numProcs exceeds their
 * parallelism.
 */

#include <cstdio>
#include <string>

#include "bench_util.hh"
#include "workload/parallel_runner.hh"

namespace {

using namespace prism;

/** Max across nodes of one footprint gauge in @p r, 0 if absent. */
double
maxGauge(const RunReport &r, const char *name)
{
    double best = 0;
    for (const auto &node : r.nodes) {
        for (const auto &g : node.gauges) {
            if (g.name == name && g.value > best)
                best = g.value;
        }
    }
    return best;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace prism;
    using namespace prism::bench;

    BenchOptions opts = BenchOptions::parse(argc, argv);
    banner("Scale sweep — Figure 7 policy comparison across machine "
           "sizes",
           opts);

    // --machine selects one preset; the default sweeps them all.
    std::vector<MachineConfig> machines;
    if (BenchOptions::resolve(argc, argv, "PRISM_MACHINE"))
        machines.push_back(opts.baseMachine());
    else
        machines = machinePresets(opts.baseMachine());

    const auto policies = paperPolicies();
    std::vector<BenchRun> runs;
    std::vector<std::vector<ExperimentResult>> keep; // owns reports
    keep.reserve(machines.size());

    for (const MachineConfig &m : machines) {
        char label[32];
        std::snprintf(label, sizeof(label), "%ux%u", m.numNodes,
                      m.procsPerNode);
        std::printf("\n## machine %s (%u processors)\n", label,
                    m.numProcs());
        std::printf("%-12s", "Application");
        for (PolicyKind pk : policies)
            std::printf(" %10s", policyName(pk));
        std::printf("  (exec cycles, SCOMA)\n");

        keep.push_back(
            runSweepsParallel(RunSpec{.machine = m,
                                      .policies = policies,
                                      .jobs = opts.jobs,
                                      .frontend = opts.frontend,
                                      .traceFile = opts.traceFile},
                              opts.apps));
        const auto &results = keep.back();

        for (std::size_t a = 0; a < opts.apps.size(); ++a) {
            const ExperimentResult *row = &results[a * policies.size()];
            const double scoma =
                static_cast<double>(row[0].metrics.execCycles);
            std::printf("%-12s", opts.apps[a].name.c_str());
            for (std::size_t p = 0; p < policies.size(); ++p) {
                std::printf(" %10.2f",
                            static_cast<double>(
                                row[p].metrics.execCycles) /
                                scoma);
            }
            std::printf("  (%llu)\n",
                        static_cast<unsigned long long>(
                            row[0].metrics.execCycles));
            std::fflush(stdout);
        }

        // Per-node footprint (max across nodes, SCOMA run of the
        // first app): the simulator-side cost of the machine width.
        const RunReport &rep = results[0].report;
        std::printf("  footprint/node (max, SCOMA): directory %.0f B "
                    "(%.0f pages), PIT %.0f entries, fg-tags %.0f "
                    "B\n",
                    maxGauge(rep, "footprint.dirBytes"),
                    maxGauge(rep, "footprint.dirPages"),
                    maxGauge(rep, "footprint.pitEntries"),
                    maxGauge(rep, "footprint.tagBytes"));

        for (const ExperimentResult &r : results)
            runs.push_back(BenchRun{r.app, policyName(r.policy), label,
                                    &r.report});
    }

    if (opts.wantReport())
        writeBenchReport(opts.reportPath, "scale_sweep", opts, runs);
    return 0;
}
