/**
 * @file
 * Table 5 reproduction: remote misses and client page-outs under the
 * adaptive configurations Dyn-FCFS, Dyn-Util and Dyn-LRU (page cache
 * sized as in SCOMA-70).  Page-outs do not occur in Dyn-FCFS.
 */

#include <cstdio>

#include "bench_util.hh"
#include "workload/parallel_runner.hh"

int
main(int argc, char **argv)
{
    using namespace prism;
    using namespace prism::bench;

    const BenchOptions opts = BenchOptions::parse(argc, argv);
    banner("Table 5 — remote misses and page-outs, adaptive configs",
           opts);

    std::printf("%-12s | %10s %10s %10s | %9s %9s\n", "Application",
                "Dyn-FCFS", "Dyn-Util", "Dyn-LRU", "PO-Util", "PO-LRU");

    MachineConfig base = opts.baseMachine();
    const std::vector<PolicyKind> policies = {
        PolicyKind::DynFcfs, PolicyKind::DynUtil, PolicyKind::DynLru};
    const auto &apps = opts.apps;
    const auto results =
        runSweepsParallel(RunSpec{.machine = base,
                                  .policies = policies,
                                  .jobs = opts.jobs,
                                  .frontend = opts.frontend,
                                  .traceFile = opts.traceFile},
                          apps);
    for (std::size_t a = 0; a < apps.size(); ++a) {
        const ExperimentResult *rs = &results[a * policies.size()];
        std::printf("%-12s | %10llu %10llu %10llu | %9llu %9llu\n",
                    apps[a].name.c_str(),
                    static_cast<unsigned long long>(
                        rs[0].metrics.remoteMisses),
                    static_cast<unsigned long long>(
                        rs[1].metrics.remoteMisses),
                    static_cast<unsigned long long>(
                        rs[2].metrics.remoteMisses),
                    static_cast<unsigned long long>(
                        rs[1].metrics.clientPageOuts),
                    static_cast<unsigned long long>(
                        rs[2].metrics.clientPageOuts));
        std::fflush(stdout);
    }
    std::printf("\n# Paper's shape: the adaptive configurations cut "
                "remote misses well below\n# LANUMA and page-outs far "
                "below SCOMA-70 (Dyn-FCFS has none at all).\n");
    if (opts.wantReport())
        writeSweepReport(opts.reportPath, "table5_adaptive", opts,
                         results);
    return 0;
}
