/**
 * @file
 * Table 4 reproduction: remote misses (shared-memory misses that
 * fetch data from a remote node) in the three static configurations,
 * and client page-outs in SCOMA-70.
 */

#include <cstdio>

#include "bench_util.hh"

int
main()
{
    using namespace prism;
    using namespace prism::bench;

    banner("Table 4 — remote misses (static configs) and SCOMA-70 "
           "page-outs");

    std::printf("%-12s %12s %12s %12s %12s\n", "Application", "SCOMA",
                "LANUMA", "SCOMA-70", "PageOuts-70");

    MachineConfig base;
    const std::vector<PolicyKind> policies = {
        PolicyKind::Scoma, PolicyKind::LaNuma, PolicyKind::Scoma70};
    for (const auto &app : appsFromEnv(scaleFromEnv())) {
        auto rs = runPolicySweep(base, app, policies);
        std::printf("%-12s %12llu %12llu %12llu %12llu\n",
                    app.name.c_str(),
                    static_cast<unsigned long long>(
                        rs[0].metrics.remoteMisses),
                    static_cast<unsigned long long>(
                        rs[1].metrics.remoteMisses),
                    static_cast<unsigned long long>(
                        rs[2].metrics.remoteMisses),
                    static_cast<unsigned long long>(
                        rs[2].metrics.clientPageOuts));
        std::fflush(stdout);
    }
    std::printf("\n# Paper's shape: LANUMA suffers many times more "
                "remote misses than SCOMA on\n# capacity-bound apps; "
                "SCOMA-70 sits between them but pays page-outs.\n");
    return 0;
}
