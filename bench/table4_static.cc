/**
 * @file
 * Table 4 reproduction: remote misses (shared-memory misses that
 * fetch data from a remote node) in the three static configurations,
 * and client page-outs in SCOMA-70.
 */

#include <cstdio>

#include "bench_util.hh"
#include "workload/parallel_runner.hh"

int
main(int argc, char **argv)
{
    using namespace prism;
    using namespace prism::bench;

    const BenchOptions opts = BenchOptions::parse(argc, argv);
    banner("Table 4 — remote misses (static configs) and SCOMA-70 "
           "page-outs",
           opts);

    std::printf("%-12s %12s %12s %12s %12s\n", "Application", "SCOMA",
                "LANUMA", "SCOMA-70", "PageOuts-70");

    MachineConfig base = opts.baseMachine();
    const std::vector<PolicyKind> policies = {
        PolicyKind::Scoma, PolicyKind::LaNuma, PolicyKind::Scoma70};
    const auto &apps = opts.apps;
    const auto results =
        runSweepsParallel(RunSpec{.machine = base,
                                  .policies = policies,
                                  .jobs = opts.jobs,
                                  .frontend = opts.frontend,
                                  .traceFile = opts.traceFile},
                          apps);
    for (std::size_t a = 0; a < apps.size(); ++a) {
        const ExperimentResult *rs = &results[a * policies.size()];
        std::printf("%-12s %12llu %12llu %12llu %12llu\n",
                    apps[a].name.c_str(),
                    static_cast<unsigned long long>(
                        rs[0].metrics.remoteMisses),
                    static_cast<unsigned long long>(
                        rs[1].metrics.remoteMisses),
                    static_cast<unsigned long long>(
                        rs[2].metrics.remoteMisses),
                    static_cast<unsigned long long>(
                        rs[2].metrics.clientPageOuts));
        std::fflush(stdout);
    }
    std::printf("\n# Paper's shape: LANUMA suffers many times more "
                "remote misses than SCOMA on\n# capacity-bound apps; "
                "SCOMA-70 sits between them but pays page-outs.\n");
    if (opts.wantReport())
        writeSweepReport(opts.reportPath, "table4_static", opts,
                         results);
    return 0;
}
