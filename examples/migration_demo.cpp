/**
 * @file
 * Lazy page migration demo (paper Section 3.5).
 *
 * A page's working set moves from node to node in phases.  The demo
 * runs the same program with migration off and on, narrating what the
 * hardware did: the dynamic home follows the workers, misdirected
 * requests from stale PIT hints are forwarded through the static
 * home, and clients refresh their hints lazily from responses —
 * with no global TLB invalidations anywhere.
 */

#include <cstdio>

#include "core/machine.hh"
#include "workload/workload.hh"

using namespace prism;

static constexpr std::uint32_t kPhases = 4;
static constexpr std::uint32_t kSweeps = 8;

static CoTask
program(Proc &p, std::uint32_t num_nodes)
{
    const NodeId my_node = p.id() / 4;
    co_await p.barrier(0);
    for (std::uint32_t phase = 0; phase < kPhases; ++phase) {
        if (my_node == phase % num_nodes && p.id() % 4 == 0) {
            for (std::uint32_t s = 0; s < kSweeps; ++s) {
                for (std::uint32_t l = 0; l < 64; ++l) {
                    co_await p.write(makeVAddr(
                        kSharedVsid, 0,
                        static_cast<std::uint64_t>(l) * 64));
                }
            }
        }
        co_await p.barrier(0);
    }
}

static void
runOnceAndReport(bool migration)
{
    MachineConfig cfg;
    cfg.migrationEnabled = migration;
    cfg.migrationThreshold = 48;
    Machine m(cfg);
    std::uint64_t gsid = m.shmget(7, 4 * kPageBytes);
    m.shmatAll(kSharedVsid, gsid);
    m.run([&](Proc &p) { return program(p, m.numNodes()); });

    GPage gp0 = gsid << kPageNumBits;
    NodeId dyn_home = kInvalidNode;
    std::uint64_t migrations = 0, forwards = 0, remote = 0;
    for (NodeId n = 0; n < m.numNodes(); ++n) {
        auto &c = m.node(n).controller();
        if (c.isDynHome(gp0))
            dyn_home = n;
        migrations += c.stats().migrationsOut;
        forwards += c.stats().forwards;
        remote += c.stats().remoteMisses;
    }
    std::printf("migration %-3s | exec %9llu cycles | remote misses "
                "%6llu | homes moved %llu | forwards %llu | final dyn "
                "home: node %u (static home: node 0)\n",
                migration ? "ON" : "OFF",
                (unsigned long long)m.metrics().totalCycles,
                (unsigned long long)remote,
                (unsigned long long)migrations,
                (unsigned long long)forwards, dyn_home);
}

int
main()
{
    std::printf("Lazy page migration demo: page 0's writers rotate "
                "across nodes in %u phases.\n\n", kPhases);
    runOnceAndReport(false);
    runOnceAndReport(true);
    std::printf("\nWith migration ON the dynamic home follows the "
                "active writer, so its misses\nbecome node-local; "
                "stale clients are re-routed through the static home "
                "and\nlearn the new home from the reply — no global "
                "coordination, ever.\n");
    return 0;
}
