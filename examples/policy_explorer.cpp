/**
 * @file
 * Policy explorer: run any of the eight applications under any page-
 * mode policy and machine configuration, and print the full metric
 * set — the tool you reach for when deciding how to configure PRISM
 * for a workload.
 *
 *   ./build/examples/policy_explorer Ocean Dyn-LRU --cap 70 \
 *       --scale small --l2 32768
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <string>

#include "core/env.hh"
#include "core/machine.hh"
#include "workload/apps.hh"
#include "workload/workload.hh"
#include "workload/experiment.hh"

using namespace prism;

static void
usage()
{
    std::fprintf(
        stderr,
        "usage: policy_explorer <app> <policy> [options]\n"
        "  app:    Barnes FFT LU MP3D Ocean Radix Water-Nsq Water-Spa\n"
        "  policy: SCOMA LANUMA SCOMA-70 Dyn-FCFS Dyn-Util Dyn-LRU "
        "Dyn-Both\n"
        "options:\n"
        "  --scale paper|small|tiny   problem size (default small)\n"
        "  --cap <percent>            page-cache cap as %% of the SCOMA\n"
        "                             calibration (default 70)\n"
        "  --l1 <bytes> --l2 <bytes>  cache sizes (default 8192/32768)\n"
        "  --nodes <n> --procs <n>    topology (default 8x4)\n"
        "  --migrate                  enable lazy page migration\n"
        "  --stats                    dump the full per-node counter "
        "registry\n");
    std::exit(1);
}

static PolicyKind
parsePolicy(const std::string &s)
{
    for (PolicyKind pk :
         {PolicyKind::Scoma, PolicyKind::LaNuma, PolicyKind::Scoma70,
          PolicyKind::DynFcfs, PolicyKind::DynUtil, PolicyKind::DynLru,
          PolicyKind::DynBoth}) {
        if (s == policyName(pk))
            return pk;
    }
    std::fprintf(stderr, "unknown policy '%s'\n", s.c_str());
    std::exit(1);
}

int
main(int argc, char **argv)
{
    if (argc < 3)
        usage();
    const std::string app_name = argv[1];
    const PolicyKind policy = parsePolicy(argv[2]);

    AppScale scale = AppScale::Small;
    double cap_pct = 70.0;
    bool dump_stats = false;
    MachineConfig cfg;
    for (int i = 3; i < argc; ++i) {
        auto next = [&]() -> const char * {
            if (i + 1 >= argc)
                usage();
            return argv[++i];
        };
        if (!std::strcmp(argv[i], "--scale")) {
            const char *s = next();
            scale = !std::strcmp(s, "paper")  ? AppScale::Paper
                    : !std::strcmp(s, "tiny") ? AppScale::Tiny
                                              : AppScale::Small;
        } else if (!std::strcmp(argv[i], "--cap")) {
            cap_pct = parseKnobReal("--cap", next(), 0.7, 0.0, 1.0);
        } else if (!std::strcmp(argv[i], "--l1")) {
            cfg.l1Bytes = static_cast<std::uint32_t>(
                parseKnobU64("--l1", next(), 0, 1, ~0U));
        } else if (!std::strcmp(argv[i], "--l2")) {
            cfg.l2Bytes = static_cast<std::uint32_t>(
                parseKnobU64("--l2", next(), 0, 1, ~0U));
        } else if (!std::strcmp(argv[i], "--nodes")) {
            cfg.numNodes = static_cast<std::uint32_t>(
                parseKnobU64("--nodes", next(), 0, 1, ~0U));
        } else if (!std::strcmp(argv[i], "--procs")) {
            cfg.procsPerNode = static_cast<std::uint32_t>(
                parseKnobU64("--procs", next(), 0, 1, ~0U));
        } else if (!std::strcmp(argv[i], "--migrate")) {
            cfg.migrationEnabled = true;
        } else if (!std::strcmp(argv[i], "--stats")) {
            dump_stats = true;
        } else {
            usage();
        }
    }

    AppSpec spec;
    bool found = false;
    for (auto &a : standardApps(scale)) {
        if (a.name == app_name) {
            spec = a;
            found = true;
        }
    }
    if (!found)
        usage();

    std::printf("app=%s policy=%s cap=%.0f%% machine=%ux%u "
                "L1=%u L2=%u\n\n",
                app_name.c_str(), policyName(policy), cap_pct,
                cfg.numNodes, cfg.procsPerNode, cfg.l1Bytes,
                cfg.l2Bytes);

    auto results = runPolicySweep(
        RunSpec{.machine = cfg,
                .policies = {PolicyKind::Scoma, policy},
                .capFraction = cap_pct / 100.0},
        spec);
    const RunMetrics &base = results[0].metrics;
    const RunMetrics &r = results[1].metrics;

    auto row = [](const char *name, std::uint64_t v, std::uint64_t b) {
        std::printf("  %-22s %14llu   (SCOMA: %llu)\n", name,
                    (unsigned long long)v, (unsigned long long)b);
    };
    std::printf("metrics under %s:\n", policyName(policy));
    row("exec cycles", r.execCycles, base.execCycles);
    row("remote misses", r.remoteMisses, base.remoteMisses);
    row("upgrades", r.upgrades, base.upgrades);
    row("client page-outs", r.clientPageOuts, base.clientPageOuts);
    row("page faults", r.pageFaults, base.pageFaults);
    row("frames allocated", r.framesAllocated, base.framesAllocated);
    row("network messages", r.networkMessages, base.networkMessages);
    std::printf("  %-22s %14.2f   (SCOMA: 1.00)\n",
                "normalized time",
                static_cast<double>(r.execCycles) /
                    static_cast<double>(base.execCycles));
    std::printf("  %-22s %14.3f   (SCOMA: %.3f)\n",
                "frame utilization", r.avgUtilization,
                base.avgUtilization);

    if (dump_stats) {
        // Re-run the chosen configuration with a live machine and dump
        // every registered hardware/OS counter.
        MachineConfig c2 = cfg;
        c2.policy = policy;
        Machine m2(c2);
        auto w2 = spec.make();
        runWorkload(m2, *w2);
        std::printf("\nfull counter registry (%s):\n",
                    policyName(policy));
        std::ostringstream os;
        m2.metricRegistry().dump(os);
        std::fputs(os.str().c_str(), stdout);
    }
    return 0;
}
