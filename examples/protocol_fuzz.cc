/**
 * @file
 * Command-line front end for the random-schedule protocol explorer.
 *
 * Fuzzes the coherence protocol with seeded network jitter and random
 * page-mode flips under the continuous oracle; on failure, shrinks to
 * the minimal failing op budget and prints a deterministic replay id.
 *
 *   protocol_fuzz [--seed N] [--ops N] [--rounds N] [--policy NAME]
 *                 [--protocol NAME] [--jitter N]
 *                 [--mutate-skip-invals N] [--replay SEED:LEN]
 *
 * `--replay 42:17` reruns exactly the case a failing fuzz round
 * printed (seed 42, op budget 17) and dumps its violations.
 */

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "check/explorer.hh"
#include "core/env.hh"

using namespace prism;

namespace {

int
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--seed N] [--ops N] [--rounds N] "
                 "[--policy NAME] [--protocol NAME]\n"
                 "          [--jitter N] [--mutate-skip-invals N] "
                 "[--replay SEED:LEN]\n",
                 argv0);
    return 2;
}

PolicyKind
policyFromName(const char *name)
{
    for (PolicyKind k : {PolicyKind::Scoma, PolicyKind::LaNuma,
                         PolicyKind::Scoma70, PolicyKind::DynFcfs,
                         PolicyKind::DynUtil, PolicyKind::DynLru,
                         PolicyKind::DynBoth}) {
        if (!std::strcmp(name, policyName(k)))
            return k;
    }
    std::fprintf(stderr, "unknown policy '%s' (valid:", name);
    for (PolicyKind k : {PolicyKind::Scoma, PolicyKind::LaNuma,
                         PolicyKind::Scoma70, PolicyKind::DynFcfs,
                         PolicyKind::DynUtil, PolicyKind::DynLru,
                         PolicyKind::DynBoth})
        std::fprintf(stderr, " %s", policyName(k));
    std::fprintf(stderr, ")\n");
    std::exit(2);
}

void
dumpViolations(const FuzzResult &r)
{
    for (const auto &v : r.violations) {
        std::printf("  t=%" PRIu64 " gpage=%" PRIx64 " li=%u  %s\n",
                    static_cast<std::uint64_t>(v.tick), v.gpage,
                    v.lineIdx, v.what.c_str());
    }
}

} // namespace

int
main(int argc, char **argv)
{
    FuzzOptions opt;
    std::uint32_t rounds = 16;
    const char *replay = nullptr;

    for (int i = 1; i < argc; ++i) {
        auto want = [&](const char *flag) -> const char * {
            if (std::strcmp(argv[i], flag) != 0)
                return nullptr;
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n", flag);
                std::exit(usage(argv[0]));
            }
            return argv[++i];
        };
        if (const char *v = want("--seed")) {
            opt.seed = parseKnobU64("--seed", v, 0, 0);
        } else if (const char *v = want("--ops")) {
            opt.totalOps = static_cast<std::uint32_t>(
                parseKnobU64("--ops", v, 0, 1, ~0U));
        } else if (const char *v = want("--rounds")) {
            rounds = static_cast<std::uint32_t>(
                parseKnobU64("--rounds", v, 0, 1, ~0U));
        } else if (const char *v = want("--policy")) {
            opt.policy = policyFromName(v);
        } else if (const char *v = want("--protocol")) {
            if (!protocolFromString(v, &opt.protocol)) {
                std::fprintf(stderr,
                             "unknown protocol '%s' (valid: msi mesi "
                             "moesi mesif)\n",
                             v);
                return 2;
            }
        } else if (const char *v = want("--jitter")) {
            opt.jitterMax = static_cast<std::uint32_t>(
                parseKnobU64("--jitter", v, 0, 0, ~0U));
        } else if (const char *v = want("--mutate-skip-invals")) {
            opt.mutationSkipInvals = static_cast<std::uint32_t>(
                parseKnobU64("--mutate-skip-invals", v, 0, 0, ~0U));
        } else if (const char *v = want("--replay")) {
            replay = v;
        } else {
            return usage(argv[0]);
        }
    }

    if (replay) {
        std::uint32_t len = 0;
        if (!parseReplayId(replay, &opt.seed, &len)) {
            std::fprintf(stderr, "bad replay id '%s' (want SEED:LEN)\n",
                         replay);
            return 2;
        }
        std::printf("replaying seed %" PRIu64 ", %u ops\n", opt.seed,
                    len);
        FuzzResult r = runFuzzCase(opt, len);
        std::printf("%" PRIu64 " violation(s), %" PRIu64 " checks\n",
                    r.violationCount, r.checksRun);
        dumpViolations(r);
        return r.failed ? 1 : 0;
    }

    std::uint32_t failures = 0;
    for (std::uint32_t i = 0; i < rounds; ++i, ++opt.seed) {
        FuzzResult r = runFuzzCase(opt, opt.totalOps);
        std::printf("seed %-6" PRIu64 " %s  (%" PRIu64
                    " checks)\n",
                    opt.seed, r.failed ? "FAIL" : "ok  ", r.checksRun);
        if (!r.failed)
            continue;
        ++failures;
        ShrinkResult s = shrinkFailure(opt);
        std::printf("  first violation: %s\n", s.firstViolation.c_str());
        std::printf("  shrunk to %u ops; rerun with --replay %s\n",
                    s.minOps, s.replay.c_str());
    }
    std::printf("%u/%u rounds failed\n", failures, rounds);
    return failures ? 1 : 0;
}
