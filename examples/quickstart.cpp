/**
 * @file
 * Quickstart: build a PRISM machine, attach a global segment, run a
 * small shared-memory program on every processor, and inspect what
 * the hardware and OS did.
 *
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <cstdio>

#include "core/machine.hh"
#include "workload/workload.hh"

using namespace prism;

/**
 * The per-processor program: everyone reads a read-mostly table, each
 * node's processors update their node's slot of a result array, and
 * processor 0 sums the slots at the end.
 */
static CoTask
program(Proc &p, std::uint32_t nprocs)
{
    // table: pages 0..3 (read-shared by everyone)
    // results: page 4 (one line per processor)
    auto table = [](std::uint64_t i) {
        return makeVAddr(kSharedVsid, i / 64, (i % 64) * 64);
    };
    auto result = [](std::uint32_t proc) {
        return makeVAddr(kSharedVsid, 4, proc * 64ULL);
    };

    if (p.id() == 0) { // initialize the table
        for (std::uint64_t i = 0; i < 4 * 64; ++i) {
            co_await p.write(table(i));
            p.compute(2);
        }
    }
    co_await p.barrier(0);
    if (p.id() == 0)
        co_await p.beginParallel();
    co_await p.barrier(0);

    // Everybody scans the table (read sharing: S-COMA page caches
    // replicate the pages locally) and accumulates into its own line.
    for (int pass = 0; pass < 4; ++pass) {
        for (std::uint64_t i = 0; i < 4 * 64; ++i) {
            co_await p.read(table(i));
            p.compute(1);
        }
        co_await p.write(result(p.id()));
    }
    co_await p.barrier(0);

    // Processor 0 reduces the per-processor results (communication
    // misses: each line was last written by its owner).
    if (p.id() == 0) {
        for (std::uint32_t q = 0; q < nprocs; ++q)
            co_await p.read(result(q));
        co_await p.endParallel();
    }
}

int
main()
{
    // The paper's machine: 8 nodes x 4 PowerPC-class processors.
    MachineConfig cfg;
    Machine m(cfg);

    // Globalized System V shared memory: create a segment and attach
    // it on every node at the same virtual addresses (Section 3.4).
    std::uint64_t gsid = m.shmget(/*key=*/42, /*bytes=*/8 * kPageBytes);
    m.shmatAll(kSharedVsid, gsid);

    m.run([&](Proc &p) { return program(p, m.numProcs()); });

    RunMetrics r = m.metrics();
    std::printf("PRISM quickstart (8 nodes x 4 procs)\n");
    std::printf("  parallel phase:   %llu cycles\n",
                (unsigned long long)r.execCycles);
    std::printf("  references:       %llu\n",
                (unsigned long long)r.references);
    std::printf("  remote misses:    %llu\n",
                (unsigned long long)r.remoteMisses);
    std::printf("  upgrades:         %llu\n",
                (unsigned long long)r.upgrades);
    std::printf("  page faults:      %llu\n",
                (unsigned long long)r.pageFaults);
    std::printf("  frames allocated: %llu (avg utilization %.2f)\n",
                (unsigned long long)r.framesAllocated,
                r.avgUtilization);
    std::printf("  network messages: %llu\n",
                (unsigned long long)r.networkMessages);

    // Peek at the hardware state the run left behind: the read-shared
    // table pages are replicated in every node's page cache.
    std::printf("\nper-node view of shared page 0 "
                "(home = node 0):\n");
    GPage gp0 = gsid << kPageNumBits;
    for (NodeId n = 0; n < m.numNodes(); ++n) {
        auto &pit = m.node(n).controller().pit();
        FrameNum f = pit.frameOf(gp0);
        if (f == kInvalidFrame) {
            std::printf("  node %u: not mapped\n", n);
            continue;
        }
        const PitEntry *e = pit.entry(f);
        std::printf("  node %u: frame %llu, mode %s, %u/%u lines "
                    "valid\n",
                    n, (unsigned long long)f, pageModeName(e->mode),
                    e->tags ? e->tags->lines() -
                                  e->tags->count(FgTag::Invalid)
                            : 0,
                    e->tags ? e->tags->lines() : 0);
    }
    return 0;
}
