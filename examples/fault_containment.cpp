/**
 * @file
 * Fault containment demo (paper Sections 1-3): PRISM's physical
 * addresses never address remote memory, and the PIT doubles as a
 * memory firewall.
 *
 * The demo arms a capability list on a shared page's home PIT entry
 * and then injects "wild writes" — forged writeback messages from a
 * faulty node — showing that the firewall drops them without
 * corrupting directory state, while a capable node's writeback is
 * accepted.
 */

#include <cstdio>

#include "core/machine.hh"
#include "workload/workload.hh"

using namespace prism;

int
main()
{
    MachineConfig cfg;
    Machine m(cfg);
    std::uint64_t gsid = m.shmget(99, 4 * kPageBytes);
    m.shmatAll(kSharedVsid, gsid);
    GPage gp0 = gsid << kPageNumBits;

    // Node 0 (home) materializes the page; node 1 legitimately shares.
    m.run([&](Proc &p) -> CoTask {
        return [](Proc &pp) -> CoTask {
            if (pp.id() == 0)
                co_await pp.write(makeVAddr(kSharedVsid, 0, 0));
            co_await pp.barrier(0);
            if (pp.id() == 4)
                co_await pp.read(makeVAddr(kSharedVsid, 0, 0));
        }(p);
    });

    auto &home = m.node(0).controller();
    FrameNum hf = home.pit().frameOf(gp0);
    std::printf("page 0 homed at node 0 (frame %llu); directory line 0 "
                "state: %s\n",
                (unsigned long long)hf,
                dirStateName(home.directory().line(gp0, 0).state()));

    // Arm the firewall: only nodes 0 and 1 may write this page.
    home.pit().entry(hf)->capabilities.add(0);
    home.pit().entry(hf)->capabilities.add(1);
    std::printf("firewall armed: capabilities = {node 0, node 1}\n\n");

    // A faulty node 5 sprays forged writebacks at the page.
    for (std::uint32_t li = 0; li < 8; ++li) {
        Msg wild;
        wild.type = MsgType::Writeback;
        wild.src = 5;
        wild.dst = 0;
        wild.gpage = gp0;
        wild.lineIdx = li;
        wild.dirty = true;
        m.route(std::move(wild));
    }
    m.eventQueue().runAll();

    std::printf("after 8 wild writes from (faulty) node 5:\n");
    std::printf("  firewall rejects: %llu\n",
                (unsigned long long)home.stats().firewallRejects);
    std::printf("  directory line 0 state: %s (unchanged)\n",
                dirStateName(home.directory().line(gp0, 0).state()));

    // A legitimate writeback from node 1 — first make node 1 the
    // owner of line 1, then let its eviction write back normally.
    m.run([&](Proc &p) -> CoTask {
        return [](Proc &pp) -> CoTask {
            if (pp.id() == 4) { // node 1
                co_await pp.write(makeVAddr(kSharedVsid, 0, 64));
            }
            co_return;
        }(p);
    });
    std::printf("\nnode 1 (capable) took ownership of line 1: "
                "directory state %s, owner %u\n",
                dirStateName(home.directory().line(gp0, 1).state()),
                home.directory().line(gp0, 1).owner());
    std::printf("rejected writes total: %llu (only the wild ones)\n",
                (unsigned long long)home.pit().rejectedWrites());
    std::printf("\nBecause LA-NUMA/S-COMA frames never expose raw "
                "remote physical addresses,\na faulty node cannot "
                "corrupt another node's memory — the containment "
                "boundary\nis the node, exactly as the paper argues.\n");
    return 0;
}
