/**
 * @file
 * The env-knob registry and the single precedence rule it backs:
 * flag > environment > default, implemented once in
 * BenchOptions::parse and tested once here for every spelling.
 */

#include <gtest/gtest.h>

#include <cstdlib>

#include "bench/bench_util.hh"
#include "core/env.hh"

namespace prism {
namespace {

using bench::BenchOptions;

/** RAII env var for precedence tests. */
struct ScopedEnv {
    const char *name;
    ScopedEnv(const char *n, const char *v) : name(n)
    {
        EXPECT_EQ(setenv(n, v, 1), 0);
    }
    ~ScopedEnv() { unsetenv(name); }
};

BenchOptions
parse(std::vector<const char *> args)
{
    args.insert(args.begin(), "bench");
    return BenchOptions::parse(
        static_cast<int>(args.size()),
        const_cast<char **>(const_cast<const char **>(args.data())));
}

TEST(EnvRegistry, DefaultAppliesWithoutFlagOrEnv)
{
    unsetenv("PRISM_SCALE");
    EXPECT_EQ(parse({}).scale, AppScale::Paper);
}

TEST(EnvRegistry, EnvOverridesDefault)
{
    ScopedEnv e("PRISM_SCALE", "small");
    EXPECT_EQ(parse({}).scale, AppScale::Small);
}

TEST(EnvRegistry, FlagOverridesEnv)
{
    ScopedEnv e("PRISM_SCALE", "small");
    EXPECT_EQ(parse({"--scale", "tiny"}).scale, AppScale::Tiny);
    EXPECT_EQ(parse({"--scale=tiny"}).scale, AppScale::Tiny);
}

TEST(EnvRegistry, LastFlagOccurrenceWins)
{
    EXPECT_EQ(parse({"--scale", "small", "--scale", "tiny"}).scale,
              AppScale::Tiny);
}

TEST(EnvRegistry, SamePrecedenceForEveryRegisteredKnob)
{
    // Spot-check a second knob through the same generic path so a
    // regression cannot hide behind --scale special-casing.
    ScopedEnv e("PRISM_PROTOCOL", "moesi");
    EXPECT_EQ(parse({}).protocol, ProtocolScheme::Moesi);
    EXPECT_EQ(parse({"--protocol", "mesif"}).protocol,
              ProtocolScheme::Mesif);

    ScopedEnv f("PRISM_FRONTEND", "record");
    ScopedEnv t("PRISM_TRACE_FILE", "/tmp/env_registry.ptrace");
    const BenchOptions o = parse({});
    EXPECT_EQ(o.frontend, FrontendKind::Record);
    EXPECT_EQ(o.traceFile, "/tmp/env_registry.ptrace");
    EXPECT_EQ(parse({"--frontend", "exec"}).frontend,
              FrontendKind::Exec);
}

TEST(EnvRegistry, KnobFlagsDoNotLeakIntoBenchArgs)
{
    const BenchOptions o =
        parse({"--scale", "tiny", "--ccnuma", "--protocol=msi"});
    EXPECT_TRUE(o.flag("--ccnuma"));
    EXPECT_FALSE(o.flag("--scale"));
    EXPECT_FALSE(o.flag("tiny"));
    EXPECT_FALSE(o.flag("--protocol=msi"));
}

TEST(EnvRegistry, HelpTableCoversEveryKnob)
{
    const std::string table = envHelpTable();
    std::size_t n = 0;
    const EnvKnob *knobs = envKnobs(&n);
    EXPECT_GE(n, 14u);
    for (std::size_t i = 0; i < n; ++i) {
        EXPECT_NE(table.find(knobs[i].env), std::string::npos)
            << knobs[i].env;
        if (knobs[i].flag) {
            EXPECT_NE(table.find(knobs[i].flag), std::string::npos)
                << knobs[i].flag;
            EXPECT_EQ(findEnvKnobByFlag(knobs[i].flag), &knobs[i]);
        }
    }
    EXPECT_EQ(findEnvKnobByFlag("--no-such-flag"), nullptr);
}

TEST(EnvRegistryDeath, UnregisteredEnvReadPanics)
{
    EXPECT_DEATH(resolveEnv("PRISM_NOT_A_KNOB"),
                 "not in the PRISM knob registry");
}

TEST(EnvRegistryDeath, FlagWithoutValueDies)
{
    EXPECT_EXIT(parse({"--scale"}), testing::ExitedWithCode(1),
                "--scale requires a value");
}

TEST(EnvRegistryDeath, ReplayWithoutTraceFileDies)
{
    EXPECT_EXIT(parse({"--frontend", "replay"}),
                testing::ExitedWithCode(1),
                "requires --trace-file");
}

// --- Malformed numeric knob values (regressions) ---------------------
//
// strtoull-based parsing used to truncate silently: "--jobs 4x" ran
// with 4 workers, "--jobs -5" wrapped to 2^64-5 and was clamped into
// a nonsense thread count.  Every numeric knob must instead fail fast
// naming the knob it came from.

TEST(EnvRegistryDeath, TrailingGarbageInNumericFlagDies)
{
    EXPECT_EXIT(parse({"--jobs", "4x"}), testing::ExitedWithCode(1),
                "--jobs must be an unsigned integer .*'4x'");
    EXPECT_EXIT(parse({"--kv-keys", "1024k"}),
                testing::ExitedWithCode(1),
                "--kv-keys must be an unsigned integer .*'1024k'");
}

TEST(EnvRegistryDeath, NegativeValueForUnsignedKnobDies)
{
    EXPECT_EXIT(parse({"--jobs", "-5"}), testing::ExitedWithCode(1),
                "--jobs must be an unsigned integer .*'-5'");
    EXPECT_EXIT(parse({"--kv-requests", "-1"}),
                testing::ExitedWithCode(1),
                "--kv-requests must be an unsigned integer");
}

TEST(EnvRegistryDeath, ZeroBelowMinimumDies)
{
    EXPECT_EXIT(parse({"--jobs", "0"}), testing::ExitedWithCode(1),
                "--jobs must be >= 1");
    EXPECT_EXIT(parse({"--kv-keys", "0"}), testing::ExitedWithCode(1),
                "--kv-keys must be >= 1");
}

TEST(EnvRegistryDeath, OverflowDies)
{
    EXPECT_EXIT(parse({"--jobs", "99999999999999999999"}),
                testing::ExitedWithCode(1), "--jobs out of range");
}

TEST(EnvRegistryDeath, MalformedEnvValueDiesNamingTheEnvVar)
{
    // The same strictness must apply on the env side of the
    // precedence rule, and the message must name the source.
    ScopedEnv e("PRISM_JOBS", "4x");
    EXPECT_EXIT(parse({}), testing::ExitedWithCode(1),
                "PRISM_JOBS.*must be an unsigned integer");
}

TEST(EnvRegistryDeath, KvThetaOutOfRangeDies)
{
    EXPECT_EXIT(parse({"--kv-theta", "1.5"}),
                testing::ExitedWithCode(1),
                "--kv-theta must be in \\[0, 0.9999\\]");
    EXPECT_EXIT(parse({"--kv-theta", "0.9x"}),
                testing::ExitedWithCode(1),
                "--kv-theta must be a finite decimal");
    EXPECT_EXIT(parse({"--kv-theta", "nan"}),
                testing::ExitedWithCode(1),
                "--kv-theta must be a finite decimal");
}

TEST(EnvRegistry, KvKnobsFollowThePrecedenceRule)
{
    ScopedEnv k("PRISM_KV_KEYS", "2048");
    ScopedEnv t("PRISM_KV_THETA", "0.6");
    const BenchOptions o = parse({});
    EXPECT_EQ(o.kvKeys, 2048u);
    EXPECT_DOUBLE_EQ(o.kvTheta, 0.6);
    const BenchOptions f =
        parse({"--kv-keys", "4096", "--kv-theta", "0.99",
               "--kv-mix", "b", "--kv-requests=8192"});
    EXPECT_EQ(f.kvKeys, 4096u);
    EXPECT_DOUBLE_EQ(f.kvTheta, 0.99);
    EXPECT_EQ(f.kvMix, "b");
    EXPECT_EQ(f.kvRequests, 8192u);
}

TEST(EnvRegistryDeath, HelpExitsCleanly)
{
    // The table goes to stdout (EXPECT_EXIT only captures stderr), so
    // assert the clean exit code alone.
    EXPECT_EXIT(parse({"--help"}), testing::ExitedWithCode(0), "");
}

} // namespace
} // namespace prism
