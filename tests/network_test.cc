/**
 * @file
 * Unit tests for the bus, DRAM and network timing models.
 */

#include <gtest/gtest.h>

#include <vector>

#include "mem/bus.hh"
#include "mem/dram.hh"
#include "net/network.hh"

namespace prism {
namespace {

TEST(MemoryBus, IndependentAddressAndDataPaths)
{
    MemoryBus bus(4, 8);
    EXPECT_EQ(bus.addressPhase(0), 4u);
    EXPECT_EQ(bus.dataPhase(0), 8u); // data path not blocked by addr
    EXPECT_EQ(bus.addressPhase(0), 8u); // addr path queued
    EXPECT_EQ(bus.addrTenures(), 2u);
    EXPECT_EQ(bus.dataTransfers(), 1u);
}

TEST(Dram, PortContention)
{
    Dram d(18);
    EXPECT_EQ(d.access(0), 18u);
    EXPECT_EQ(d.access(0), 36u);
    EXPECT_EQ(d.access(100), 118u);
    EXPECT_EQ(d.accesses(), 3u);
}

TEST(Network, UncontendedLatency)
{
    EventQueue eq;
    Network::Params p;
    Network net(eq, 4, p);
    Tick delivered = 0;
    net.send(0, 1, MsgSize::Control, [&] { delivered = eq.now(); });
    eq.runAll();
    // egress occ + wire latency + ingress occ
    EXPECT_EQ(delivered, p.controlOccupancy + p.oneWayLatency +
                             p.controlOccupancy);
    EXPECT_EQ(net.uncontendedLatency(MsgSize::Control), delivered);
}

TEST(Network, LoopbackSkipsWire)
{
    EventQueue eq;
    Network::Params p;
    Network net(eq, 2, p);
    Tick delivered = 0;
    net.send(1, 1, MsgSize::Data, [&] { delivered = eq.now(); });
    eq.runAll();
    EXPECT_EQ(delivered, 2 * p.dataOccupancy);
}

TEST(Network, FifoPerSourceDestinationPair)
{
    EventQueue eq;
    Network::Params p;
    Network net(eq, 2, p);
    std::vector<int> order;
    // Mixed sizes: a small message sent later must not overtake a
    // large one sent earlier on the same (src, dst) pair.
    net.send(0, 1, MsgSize::Page, [&] { order.push_back(1); });
    net.send(0, 1, MsgSize::Control, [&] { order.push_back(2); });
    net.send(0, 1, MsgSize::Control, [&] { order.push_back(3); });
    eq.runAll();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Network, EgressSerializesBursts)
{
    EventQueue eq;
    Network::Params p;
    Network net(eq, 4, p);
    std::vector<Tick> times;
    for (int i = 0; i < 3; ++i)
        net.send(0, 1 + static_cast<NodeId>(i), MsgSize::Control,
                 [&] { times.push_back(eq.now()); });
    eq.runAll();
    ASSERT_EQ(times.size(), 3u);
    // Each successive message waits one more egress occupancy.
    EXPECT_EQ(times[1] - times[0], p.controlOccupancy);
    EXPECT_EQ(times[2] - times[1], p.controlOccupancy);
    EXPECT_EQ(net.messages(), 3u);
}

TEST(Network, TrafficProxyAccumulates)
{
    EventQueue eq;
    Network::Params p;
    Network net(eq, 2, p);
    net.send(0, 1, MsgSize::Control, [] {});
    net.send(0, 1, MsgSize::Data, [] {});
    eq.runAll();
    EXPECT_EQ(net.trafficProxy(), p.controlOccupancy + p.dataOccupancy);
}

} // namespace
} // namespace prism
