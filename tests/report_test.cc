/**
 * @file
 * Run-report exporter tests: golden key-path schema, byte-level
 * determinism, Chrome-trace emission via PRISM_TRACE, and content
 * sanity (registry-derived counters, quantile ordering).
 *
 * The golden file pins the full set of JSON key paths (including the
 * registered counter names).  On an intentional schema change, bump
 * kRunReportSchemaVersion and regenerate with
 * PRISM_UPDATE_GOLDEN=1 ./report_test.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "core/machine.hh"
#include "sim/stats.hh"
#include "obs/report.hh"
#include "obs/trace_sink.hh"
#include "workload/workload.hh"

namespace prism {
namespace {

constexpr std::uint64_t kKey = 0x0B5;

MachineConfig
testCfg()
{
    MachineConfig cfg;
    cfg.numNodes = 2;
    cfg.procsPerNode = 1;
    return cfg;
}

/** A small cross-node workload: misses, upgrades and page-ins. */
void
runTraffic(Machine &m, std::uint64_t gsid)
{
    (void)gsid;
    m.run([&](Proc &p) -> CoTask {
        return [](Proc &pp) -> CoTask {
            auto va = [](std::uint64_t pnum, std::uint64_t off) {
                return makeVAddr(kSharedVsid, pnum, off);
            };
            if (pp.id() == 0)
                co_await pp.write(va(0, 0));
            co_await pp.barrier(1);
            if (pp.id() == 1) {
                for (std::uint64_t l = 0; l < 8; ++l)
                    co_await pp.read(va(0, l * 64));
                co_await pp.write(va(0, 0)); // upgrade
                co_await pp.read(va(2, 0));  // another page-in
            }
        }(p);
    });
}

RunReport
makeReport()
{
    Machine m(testCfg());
    std::uint64_t gsid = m.shmget(kKey, 16 * kPageBytes);
    m.shmatAll(kSharedVsid, gsid);
    runTraffic(m, gsid);
    return m.report();
}

/**
 * Extract every JSON key path from a document emitted by JsonWriter.
 * Array hops render as "[]" glued to the parent key, so an element of
 * the histograms array contributes paths like "histograms[].p50".
 */
std::set<std::string>
keyPaths(const std::string &json)
{
    std::set<std::string> out;
    std::vector<std::string> path; // one element per open container
    std::string pending;           // key awaiting its value
    bool have_pending = false;

    auto joined = [&](const std::string &leaf) {
        std::string acc;
        for (const std::string &c : path) {
            if (c == "[]")
                acc += "[]";
            else if (acc.empty())
                acc = c;
            else
                acc += "." + c;
        }
        if (!leaf.empty())
            acc += (acc.empty() ? "" : ".") + leaf;
        return acc;
    };

    std::size_t i = 0;
    std::vector<char> containers; // '{' or '['
    while (i < json.size()) {
        char c = json[i];
        if (c == '"') {
            std::string s;
            ++i;
            while (i < json.size() && json[i] != '"') {
                if (json[i] == '\\')
                    ++i;
                s += json[i++];
            }
            ++i; // closing quote
            std::size_t j = i;
            while (j < json.size() &&
                   (json[j] == ' ' || json[j] == '\n'))
                ++j;
            if (j < json.size() && json[j] == ':') {
                out.insert(joined(s));
                pending = s;
                have_pending = true;
                i = j + 1;
            }
            continue;
        }
        if (c == '{' || c == '[') {
            containers.push_back(c);
            if (have_pending) {
                path.push_back(pending);
                have_pending = false;
            } else if (containers.size() >= 2 &&
                       containers[containers.size() - 2] == '[') {
                path.push_back("[]");
            } else {
                path.push_back(""); // root
            }
        } else if (c == '}' || c == ']') {
            containers.pop_back();
            path.pop_back();
        }
        ++i;
    }
    return out;
}

std::string
stripGeneratedAt(std::string json)
{
    std::size_t pos = json.find("\"generatedAt\": \"");
    if (pos == std::string::npos)
        return json;
    std::size_t start = pos + 16;
    std::size_t end = json.find('"', start);
    return json.substr(0, start) + json.substr(end);
}

TEST(Report, GoldenKeyPaths)
{
    const std::string golden_path =
        std::string(PRISM_SOURCE_DIR) +
        "/tests/golden/run_report_keys.txt";
    const RunReport r = makeReport();
    const std::set<std::string> got = keyPaths(r.toJson());

    if (std::getenv("PRISM_UPDATE_GOLDEN")) {
        std::ofstream os(golden_path);
        for (const std::string &k : got)
            os << k << "\n";
        GTEST_SKIP() << "golden regenerated: " << golden_path;
    }

    std::ifstream is(golden_path);
    ASSERT_TRUE(is.good()) << "missing golden file " << golden_path;
    std::set<std::string> want;
    std::string line;
    while (std::getline(is, line)) {
        if (!line.empty())
            want.insert(line);
    }
    for (const std::string &k : want) {
        EXPECT_TRUE(got.count(k))
            << "key path missing from report: " << k;
    }
    for (const std::string &k : got) {
        EXPECT_TRUE(want.count(k))
            << "unexpected key path in report (schema change? bump "
               "kRunReportSchemaVersion and regenerate): "
            << k;
    }
}

TEST(Report, SchemaHeaderAndVersion)
{
    const RunReport r = makeReport();
    const std::string json = r.toJson();
    EXPECT_NE(json.find("\"schema\": \"prism.run_report\""),
              std::string::npos);
    std::ostringstream version_frag;
    version_frag << "\"schemaVersion\": " << kRunReportSchemaVersion;
    EXPECT_NE(json.find(version_frag.str()), std::string::npos);
}

TEST(Report, SameSeedRunsAreByteIdentical)
{
    const std::string a = stripGeneratedAt(makeReport().toJson());
    const std::string b = stripGeneratedAt(makeReport().toJson());
    EXPECT_EQ(a, b);
}

TEST(Report, CountersAreRegistryDerivedPerNode)
{
    Machine m(testCfg());
    std::uint64_t gsid = m.shmget(kKey, 16 * kPageBytes);
    m.shmatAll(kSharedVsid, gsid);
    runTraffic(m, gsid);
    RunReport r = m.report();

    ASSERT_EQ(r.nodes.size(), 2u);
    EXPECT_EQ(r.numNodes, 2u);
    // RunMetrics fields must agree with the per-node counter sections
    // they are derived from (no hand-copied counters).
    std::uint64_t misses = 0, faults = 0;
    for (const auto &node : r.nodes) {
        for (const auto &v : node.counters) {
            if (v.name == "ctrl.remoteMisses")
                misses += v.value;
            if (v.name == "kernel.faults")
                faults += v.value;
        }
    }
    EXPECT_EQ(misses, r.metrics.remoteMisses);
    EXPECT_EQ(faults, r.metrics.pageFaults);
    EXPECT_GT(misses, 0u);

    bool net_messages = false;
    for (const auto &v : r.machineCounters) {
        if (v.name == "net.messages") {
            net_messages = true;
            EXPECT_EQ(v.value, r.metrics.networkMessages);
        }
    }
    EXPECT_TRUE(net_messages);
}

TEST(Report, LatencyQuantilesAreOrdered)
{
    const RunReport r = makeReport();
    bool sampled = false;
    for (const auto &h : r.histograms) {
        if (h.count == 0)
            continue;
        sampled = true;
        EXPECT_LE(h.p50, h.p95) << h.name;
        EXPECT_LE(h.p95, h.p99) << h.name;
        EXPECT_GT(h.mean, 0.0) << h.name;
        EXPECT_EQ(h.bounds.size() + 1, h.counts.size()) << h.name;
    }
    EXPECT_TRUE(sampled);
    // The traffic above produces 2-party reads and page-ins.
    auto count_of = [&](const char *name) -> std::uint64_t {
        for (const auto &h : r.histograms) {
            if (h.name == name)
                return h.count;
        }
        return 0;
    };
    EXPECT_GT(count_of("latency.read2"), 0u);
    EXPECT_GT(count_of("latency.pageIn"), 0u);
    EXPECT_GT(count_of("latency.upgrade"), 0u);
}

TEST(Report, PrismTraceWritesChromeTraceJson)
{
    const std::string path = "report_test_trace.json";
    std::remove(path.c_str());
    ASSERT_EQ(setenv("PRISM_TRACE", path.c_str(), 1), 0);
    {
        Machine m(testCfg());
        std::uint64_t gsid = m.shmget(kKey, 16 * kPageBytes);
        m.shmatAll(kSharedVsid, gsid);
        runTraffic(m, gsid);
    } // ~Machine writes the trace
    unsetenv("PRISM_TRACE");

    std::ifstream is(path);
    ASSERT_TRUE(is.good()) << "trace file not written";
    std::stringstream ss;
    ss << is.rdbuf();
    const std::string trace = ss.str();
    EXPECT_NE(trace.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(trace.find("\"ph\": \"X\""), std::string::npos);
    EXPECT_NE(trace.find("\"read2\""), std::string::npos);
    EXPECT_NE(trace.find("process_name"), std::string::npos);
    std::remove(path.c_str());
}

// --- Histogram edge cases (regressions) -----------------------------
//
// An empty or single-sample histogram used to interpolate across the
// whole open-ended top bucket: quantile() could return garbage far
// above any observed sample (or NaN from 0/0 bucket math), and
// merge() asserted on shape even when one side was empty — which an
// all-read KV mix produces legitimately for its update/insert/scan
// histograms.

std::vector<std::uint64_t>
testBounds()
{
    return {10, 100, 1000};
}

TEST(HistogramEdge, EmptyHistogramQuantilesAreZeroNotNaN)
{
    const Histogram h(testBounds());
    EXPECT_EQ(h.count(), 0u);
    for (double q : {0.0, 0.5, 0.95, 0.99, 1.0}) {
        const double v = h.quantile(q);
        EXPECT_EQ(v, 0.0) << "q=" << q;
        EXPECT_FALSE(std::isnan(v)) << "q=" << q;
    }
    EXPECT_EQ(h.mean(), 0.0);
    EXPECT_EQ(h.min(), 0u);
    EXPECT_EQ(h.max(), 0u);
}

TEST(HistogramEdge, SingleSampleReportsItselfAtEveryQuantile)
{
    Histogram h(testBounds());
    h.sample(42);
    for (double q : {0.0, 0.5, 0.95, 0.99, 1.0})
        EXPECT_EQ(h.quantile(q), 42.0) << "q=" << q;

    // Single sample in the open-ended top bucket: clamping to
    // [min, max] is what keeps p99 from running off to infinity.
    Histogram top(testBounds());
    top.sample(5000);
    EXPECT_EQ(top.quantile(0.99), 5000.0);
    EXPECT_EQ(top.quantile(0.50), 5000.0);
}

TEST(HistogramEdge, QuantileNeverExceedsObservedRange)
{
    Histogram h(testBounds());
    h.sample(3);
    h.sample(7);
    h.sample(2000);
    for (double q : {0.0, 0.25, 0.5, 0.9, 0.99, 1.0}) {
        const double v = h.quantile(q);
        EXPECT_GE(v, static_cast<double>(h.min())) << "q=" << q;
        EXPECT_LE(v, static_cast<double>(h.max())) << "q=" << q;
    }
}

TEST(HistogramEdge, MergeWithEmptySideIsSafe)
{
    Histogram filled(testBounds());
    filled.sample(50);
    filled.sample(500);

    // Empty RHS: no-op, even with different (here: no) bounds.
    Histogram empty_other{std::vector<std::uint64_t>{}};
    filled.merge(empty_other);
    EXPECT_EQ(filled.count(), 2u);
    EXPECT_EQ(filled.max(), 500u);

    // Empty LHS of a different shape: wholesale adoption.
    Histogram empty_lhs{std::vector<std::uint64_t>{}};
    empty_lhs.merge(filled);
    EXPECT_EQ(empty_lhs.count(), 2u);
    EXPECT_EQ(empty_lhs.min(), 50u);
    EXPECT_EQ(empty_lhs.max(), 500u);
    EXPECT_EQ(empty_lhs.quantile(0.99), filled.quantile(0.99));

    // Empty-empty merge: still empty, still quantile-safe.
    Histogram a{std::vector<std::uint64_t>{}};
    Histogram b(testBounds());
    a.merge(b);
    EXPECT_EQ(a.count(), 0u);
    EXPECT_EQ(a.quantile(0.99), 0.0);
}

TEST(HistogramEdge, MergeTracksMinAcrossSides)
{
    Histogram a(testBounds());
    a.sample(200);
    Histogram b(testBounds());
    b.sample(5);
    a.merge(b);
    EXPECT_EQ(a.count(), 2u);
    EXPECT_EQ(a.min(), 5u);
    EXPECT_EQ(a.max(), 200u);
    EXPECT_GE(a.quantile(0.01), 5.0);
}

TEST(Report, MessageRingRecordsRecentTraffic)
{
    Machine m(testCfg());
    std::uint64_t gsid = m.shmget(kKey, 16 * kPageBytes);
    m.shmatAll(kSharedVsid, gsid);
    runTraffic(m, gsid);
    const TraceRing &ring = m.messageRing();
    EXPECT_GT(ring.recorded(), 0u);
    EXPECT_GT(ring.size(), 0u);
}

} // namespace
} // namespace prism
