/**
 * @file
 * Page-mode policy tests (paper Section 4.2).
 */

#include <gtest/gtest.h>

#include "core/machine.hh"
#include "workload/workload.hh"

namespace prism {
namespace {

constexpr std::uint64_t kKey = 0x90C;

struct Rig {
    explicit Rig(PolicyKind pk, std::uint64_t cap)
        : m(makeCfg(pk, cap))
    {
        gsid = m.shmget(kKey, 64 * kPageBytes);
        m.shmatAll(kSharedVsid, gsid);
    }

    static MachineConfig
    makeCfg(PolicyKind pk, std::uint64_t cap)
    {
        MachineConfig cfg;
        cfg.numNodes = 2;
        cfg.procsPerNode = 1;
        cfg.policy = pk;
        cfg.clientFrameCap = cap;
        return cfg;
    }

    VAddr
    va(std::uint64_t pnum, std::uint64_t off = 0) const
    {
        return makeVAddr(kSharedVsid, pnum, off);
    }

    GPage
    gp(std::uint64_t pnum) const
    {
        return (gsid << kPageNumBits) | pnum;
    }

    /** Touch pages 1,3,5,...,2k-1 from node 1 (all homed at node 0
     *  due to round robin with 2 nodes: odd pages -> node 1!).
     *  Use even pages instead: homed at node 0, client at node 1. */
    void
    touchEvenPages(std::uint32_t count, std::uint32_t lines_each = 1)
    {
        m.run([&](Proc &p) -> CoTask {
            return [](Proc &pp, Rig &r, std::uint32_t n,
                      std::uint32_t lines) -> CoTask {
                if (pp.id() == 1) { // node 1
                    for (std::uint32_t i = 0; i < n; ++i) {
                        for (std::uint32_t l = 0; l < lines; ++l) {
                            co_await pp.read(r.va(
                                2 * i, static_cast<std::uint64_t>(l) *
                                           64));
                        }
                    }
                }
                co_return;
            }(p, *this, count, lines_each);
        });
    }

    PageMode
    clientMode(std::uint64_t pnum)
    {
        auto &pit = m.node(1).controller().pit();
        FrameNum f = pit.frameOf(gp(pnum));
        if (f == kInvalidFrame)
            return PageMode::Local; // unmapped marker
        return pit.entry(f)->mode;
    }

    Machine m;
    std::uint64_t gsid = 0;
};

TEST(Policy, ScomaMapsEverythingReal)
{
    Rig rig(PolicyKind::Scoma, 0);
    rig.touchEvenPages(6);
    for (std::uint64_t i = 0; i < 6; ++i)
        EXPECT_EQ(rig.clientMode(2 * i), PageMode::Scoma);
    EXPECT_EQ(rig.m.node(1).kernel().stats().clientPageOuts, 0u);
    EXPECT_EQ(rig.m.node(1).kernel().clientScomaCount(), 6u);
}

TEST(Policy, LaNumaMapsEverythingImaginary)
{
    Rig rig(PolicyKind::LaNuma, 0);
    rig.touchEvenPages(6);
    for (std::uint64_t i = 0; i < 6; ++i)
        EXPECT_EQ(rig.clientMode(2 * i), PageMode::LaNuma);
    EXPECT_EQ(rig.m.node(1).kernel().clientScomaCount(), 0u);
}

TEST(Policy, Scoma70PagesOutLruWithoutConversion)
{
    Rig rig(PolicyKind::Scoma70, 3);
    rig.touchEvenPages(6);
    Kernel &k = rig.m.node(1).kernel();
    EXPECT_LE(k.clientScomaCount(), 3u);
    EXPECT_GE(k.stats().clientPageOuts, 3u);
    EXPECT_EQ(k.stats().conversionsToLaNuma, 0u);
    // Every still-mapped page is S-COMA; none became LA-NUMA.
    for (std::uint64_t i = 0; i < 6; ++i) {
        PageMode mode = rig.clientMode(2 * i);
        EXPECT_TRUE(mode == PageMode::Scoma || mode == PageMode::Local)
            << "page " << i;
    }
    // The three most recently used pages are resident.
    EXPECT_EQ(rig.clientMode(6), PageMode::Scoma);
    EXPECT_EQ(rig.clientMode(8), PageMode::Scoma);
    EXPECT_EQ(rig.clientMode(10), PageMode::Scoma);
}

TEST(Policy, DynFcfsMapsOverflowAsLaNuma)
{
    Rig rig(PolicyKind::DynFcfs, 3);
    rig.touchEvenPages(6);
    Kernel &k = rig.m.node(1).kernel();
    // First three pages S-COMA, the rest LA-NUMA; no page-outs.
    EXPECT_EQ(k.stats().clientPageOuts, 0u);
    EXPECT_EQ(rig.clientMode(0), PageMode::Scoma);
    EXPECT_EQ(rig.clientMode(2), PageMode::Scoma);
    EXPECT_EQ(rig.clientMode(4), PageMode::Scoma);
    EXPECT_EQ(rig.clientMode(6), PageMode::LaNuma);
    EXPECT_EQ(rig.clientMode(8), PageMode::LaNuma);
    EXPECT_EQ(rig.clientMode(10), PageMode::LaNuma);
}

TEST(Policy, DynLruConvertsVictims)
{
    Rig rig(PolicyKind::DynLru, 3);
    rig.touchEvenPages(6);
    Kernel &k = rig.m.node(1).kernel();
    EXPECT_GE(k.stats().clientPageOuts, 3u);
    EXPECT_GE(k.stats().conversionsToLaNuma, 3u);
    EXPECT_LE(k.clientScomaCount(), 3u);
    // A converted page refaults as LA-NUMA.
    rig.touchEvenPages(1); // page 0 again
    EXPECT_EQ(rig.clientMode(0), PageMode::LaNuma);
}

TEST(Policy, DynUtilConvertsLeastUtilizedFrame)
{
    Rig rig(PolicyKind::DynUtil, 2);
    // Touch page 0 densely (32 lines), pages 2 and 4 sparsely.
    rig.m.run([&](Proc &p) -> CoTask {
        return [](Proc &pp, Rig &r) -> CoTask {
            if (pp.id() == 1) {
                for (int l = 0; l < 32; ++l)
                    co_await pp.read(
                        r.va(0, static_cast<std::uint64_t>(l) * 64));
                co_await pp.read(r.va(2));
                co_await pp.read(r.va(4)); // triggers conversion
            }
            co_return;
        }(p, rig);
    });
    Kernel &k = rig.m.node(1).kernel();
    EXPECT_GE(k.stats().conversionsToLaNuma, 1u);
    // The dense page 0 survived; the sparse page 2 was converted.
    EXPECT_EQ(rig.clientMode(0), PageMode::Scoma);
    PageMode m2 = rig.clientMode(2);
    EXPECT_TRUE(m2 == PageMode::Local /*unmapped*/ ||
                m2 == PageMode::LaNuma);
}

TEST(Policy, DynBothRevertsHotLaNumaPages)
{
    MachineConfig cfg;
    cfg.numNodes = 2;
    cfg.procsPerNode = 1;
    cfg.policy = PolicyKind::DynBoth;
    cfg.clientFrameCap = 2;
    // Tiny processor caches force repeated remote refetches on the
    // LA-NUMA page so its refetch counter climbs quickly.
    cfg.l1Bytes = 512;
    cfg.l2Bytes = 1024;
    Machine m(cfg);
    std::uint64_t gsid = m.shmget(kKey, 64 * kPageBytes);
    m.shmatAll(kSharedVsid, gsid);

    // Page 4 starts out converted to LA-NUMA at node 1 (as if a past
    // eviction demoted it).
    m.node(1).kernel().setModeOverride((gsid << kPageNumBits) | 4,
                                       PageMode::LaNuma);
    m.run([&](Proc &p) -> CoTask {
        return [](Proc &pp) -> CoTask {
            auto va = [&](std::uint64_t pnum, std::uint64_t off) {
                return makeVAddr(kSharedVsid, pnum, off);
            };
            if (pp.id() != 1)
                co_return;
            co_await pp.read(va(4, 0)); // maps LA-NUMA via override
            // Hammer page 4 with capacity-evicting strides so its
            // remoteFetches counter exceeds the revert threshold,
            // while faulting a fresh page each round so the policy's
            // amortized reconsideration scan keeps running.
            for (int rep = 0; rep < 40; ++rep) {
                for (int l = 0; l < 48; ++l) {
                    co_await pp.read(
                        va(4, static_cast<std::uint64_t>(l) * 64));
                }
                co_await pp.read(va(6 + 2ULL * rep, 0));
            }
            co_return;
        }(p);
    });
    Kernel &k = m.node(1).kernel();
    EXPECT_GE(k.stats().conversionsToScoma, 1u)
        << "no LA-NUMA page was reverted to S-COMA";
}

} // namespace
} // namespace prism
