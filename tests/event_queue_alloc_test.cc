/**
 * @file
 * Verifies the event-queue hot path performs zero heap allocations:
 * the InlineCallback rewrite exists precisely so that scheduling and
 * dispatching events never calls operator new, for every capture size
 * used in src/ (the largest is Machine::route's 16-byte delivery
 * closure; tests and benches go up to 40 bytes).
 *
 * Global operator new/delete are replaced with counting versions, and
 * the hot loops are run after the queue's up-front reserve so vector
 * growth cannot contribute.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>

#include "sim/event_queue.hh"

namespace {

std::atomic<std::uint64_t> g_news{0};

} // namespace

void *
operator new(std::size_t n)
{
    ++g_news;
    if (void *p = std::malloc(n))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](std::size_t n)
{
    ++g_news;
    if (void *p = std::malloc(n))
        return p;
    throw std::bad_alloc();
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

namespace prism {
namespace {

static_assert(EventQueue::Callback::kCapacity >= 40,
              "the capture sizes exercised below must stay inline");

TEST(EventQueueAlloc, ScheduleDispatchAllocatesNothing)
{
    EventQueue eq;
    std::uint64_t sink = 0;

    // Capture shapes used across src/: a coroutine handle (8B), the
    // route() delivery closure (16B), and padded variants up to 40B.
    struct Cap16 {
        std::uint64_t *p;
        std::uint64_t a;
    };
    struct Cap24 {
        std::uint64_t *p;
        std::uint64_t a, b;
    };
    struct Cap40 {
        std::uint64_t *p;
        std::uint64_t a, b, c, d;
    };
    Cap16 c16{&sink, 1};
    Cap24 c24{&sink, 1, 2};
    Cap40 c40{&sink, 1, 2, 3, 4};

    const std::uint64_t before = g_news.load();
    for (int i = 0; i < 10000; ++i) {
        eq.scheduleIn(1, [&sink] { ++sink; });
        eq.scheduleIn(2, [c16] { *c16.p += c16.a; });
        eq.scheduleIn(3, [c24] { *c24.p += c24.a + c24.b; });
        eq.scheduleIn(4, [c40] { *c40.p += c40.a + c40.d; });
        while (eq.runOne()) {
        }
    }
    EXPECT_EQ(g_news.load(), before)
        << "event scheduling/dispatch must not allocate";
    EXPECT_GT(sink, 0u);
}

TEST(EventQueueAlloc, StandingPopulationWithinReserveAllocatesNothing)
{
    EventQueue eq;
    std::uint64_t sink = 0;
    // Warm the arena/heap up to a standing population once...
    for (int i = 0; i < 512; ++i)
        eq.scheduleIn(1 + static_cast<Cycles>(i % 97),
                      [&sink] { ++sink; });
    const std::uint64_t before = g_news.load();
    // ...then steady-state churn with the population held.
    for (int i = 0; i < 20000; ++i) {
        eq.scheduleIn(1 + static_cast<Cycles>(i % 97),
                      [&sink] { ++sink; });
        eq.runOne();
    }
    EXPECT_EQ(g_news.load(), before);
    eq.runAll();
    EXPECT_EQ(eq.pending(), 0u);
}

} // namespace
} // namespace prism
