/**
 * @file
 * .ptrace format tests: lossless round-trips (including a seeded fuzz
 * sweep over random streams), encoding-size sanity, and fail-fast
 * behavior on corrupt, truncated or version-mismatched inputs.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "frontend/frontend.hh"
#include "frontend/ptrace.hh"
#include "mem/addr.hh"

namespace prism {
namespace {

/** Decode one stream completely. */
std::vector<TraceOp>
decodeAll(const std::string &bytes, std::uint64_t op_count)
{
    StreamReader r(bytes, op_count, "test stream");
    std::vector<TraceOp> out;
    TraceOp op;
    while (r.next(&op))
        out.push_back(op);
    return out;
}

TEST(TraceFormat, StreamRoundTripsEveryOpKind)
{
    StreamWriter w;
    const VAddr a1 = makeVAddr(1, 3, 128);
    const VAddr a2 = makeVAddr(0x100, 0, 64); // backwards delta
    w.sync(RefOp::BeginParallel, 0);
    w.access(a1, false);
    w.access(a2, true);
    w.compute(7);      // small immediate
    w.compute(123456); // varint escape
    w.sync(RefOp::Lock, 3);
    w.sync(RefOp::Unlock, 3);
    w.sync(RefOp::Barrier, 99);
    w.sync(RefOp::Fence, 0);
    w.sync(RefOp::EndParallel, 0);

    const auto ops = decodeAll(w.bytes(), w.opCount());
    ASSERT_EQ(ops.size(), 10u);
    EXPECT_EQ(ops[0], (TraceOp{RefOp::BeginParallel, 0}));
    EXPECT_EQ(ops[1], (TraceOp{RefOp::Load, a1.raw}));
    EXPECT_EQ(ops[2], (TraceOp{RefOp::Store, a2.raw}));
    EXPECT_EQ(ops[3], (TraceOp{RefOp::Compute, 7}));
    EXPECT_EQ(ops[4], (TraceOp{RefOp::Compute, 123456}));
    EXPECT_EQ(ops[5], (TraceOp{RefOp::Lock, 3}));
    EXPECT_EQ(ops[6], (TraceOp{RefOp::Unlock, 3}));
    EXPECT_EQ(ops[7], (TraceOp{RefOp::Barrier, 99}));
    EXPECT_EQ(ops[8], (TraceOp{RefOp::Fence, 0}));
    EXPECT_EQ(ops[9], (TraceOp{RefOp::EndParallel, 0}));
}

TEST(TraceFormat, SequentialAccessesCompressWell)
{
    // A unit-stride scan is the common case the zigzag-delta encoding
    // targets: after the first access every op costs three bytes
    // (opcode + two varint bytes for the zigzagged 64-byte delta)
    // instead of nine for a raw address.
    StreamWriter w;
    for (unsigned i = 0; i < 1000; ++i)
        w.access(makeVAddr(1, 0, i * 64), false);
    EXPECT_LE(w.bytes().size(), 3 * 1000 + 16);
}

/** A deterministic random stream exercised through a full file. */
TEST(TraceFormat, FuzzRoundTripLossless)
{
    const char *seed_env = std::getenv("PRISM_PROPERTY_SEED");
    const std::uint64_t seed =
        seed_env ? std::strtoull(seed_env, nullptr, 10) : 42;
    std::mt19937_64 rng(seed);

    RecordedTrace t;
    t.workload = "Fuzz";
    t.sizeDesc = "random stream, seed " + std::to_string(seed);
    t.seed = seed;
    t.numProcs = 4;
    t.lineBytes = 64;
    t.segments.push_back(SegmentOp{SegmentOp::Get, 0x1000, 1 << 20, 2});
    t.segments.push_back(SegmentOp{SegmentOp::Attach, 1, 2, 0});

    std::vector<std::vector<TraceOp>> expect(t.numProcs);
    for (std::uint32_t p = 0; p < t.numProcs; ++p) {
        StreamWriter w;
        const std::size_t n = 1000 + (rng() % 9000);
        for (std::size_t i = 0; i < n; ++i) {
            switch (rng() % 6) {
              case 0:
              case 1: {
                  // Any canonical VAddr, including wild jumps.
                  const VAddr va = makeVAddr(
                      rng() % 2 ? 1 : 0x100 + (rng() % 31),
                      rng() % 1024, rng() % kPageBytes);
                  const bool wr = rng() % 2;
                  w.access(va, wr);
                  expect[p].push_back(
                      TraceOp{wr ? RefOp::Store : RefOp::Load, va.raw});
                  break;
              }
              case 2: {
                  const Cycles c = rng() % 100000;
                  w.compute(c);
                  expect[p].push_back(TraceOp{RefOp::Compute, c});
                  break;
              }
              default: {
                  static const RefOp kSync[] = {
                      RefOp::Lock,  RefOp::Unlock,
                      RefOp::Barrier, RefOp::Fence,
                      RefOp::BeginParallel, RefOp::EndParallel};
                  const RefOp op = kSync[rng() % 6];
                  const std::uint64_t id = rng() % 1024;
                  w.sync(op, id);
                  expect[p].push_back(TraceOp{op, id});
                  break;
              }
            }
        }
        t.opCounts.push_back(w.opCount());
        t.streams.push_back(w.takeBytes());
    }

    const std::string bytes = t.serialize();
    auto back = RecordedTrace::deserialize(bytes, "fuzz buffer");
    EXPECT_EQ(back->workload, t.workload);
    EXPECT_EQ(back->sizeDesc, t.sizeDesc);
    EXPECT_EQ(back->seed, t.seed);
    EXPECT_EQ(back->numProcs, t.numProcs);
    EXPECT_EQ(back->lineBytes, t.lineBytes);
    ASSERT_EQ(back->segments.size(), t.segments.size());
    for (std::size_t i = 0; i < t.segments.size(); ++i) {
        EXPECT_EQ(back->segments[i].kind, t.segments[i].kind);
        EXPECT_EQ(back->segments[i].a, t.segments[i].a);
        EXPECT_EQ(back->segments[i].b, t.segments[i].b);
        EXPECT_EQ(back->segments[i].c, t.segments[i].c);
    }
    ASSERT_EQ(back->streams.size(), t.streams.size());
    for (std::uint32_t p = 0; p < t.numProcs; ++p) {
        EXPECT_EQ(decodeAll(back->streams[p], back->opCounts[p]),
                  expect[p])
            << "proc " << p << " seed " << seed;
    }

    // serialize() is deterministic byte-for-byte.
    EXPECT_EQ(back->serialize(), bytes);
}

TEST(TraceFormat, FileRoundTrip)
{
    RecordedTrace t;
    t.workload = "Mini";
    t.seed = 7;
    t.numProcs = 1;
    t.lineBytes = 64;
    StreamWriter w;
    w.access(makeVAddr(1, 0, 0), true);
    t.opCounts.push_back(w.opCount());
    t.streams.push_back(w.takeBytes());

    const std::string path =
        testing::TempDir() + "trace_format_roundtrip.ptrace";
    t.writeFile(path);
    auto back = RecordedTrace::readFile(path);
    EXPECT_EQ(back->serialize(), t.serialize());
}

/** Valid serialized trace for the corruption tests below. */
std::string
goodBytes()
{
    RecordedTrace t;
    t.workload = "Corrupt";
    t.seed = 1;
    t.numProcs = 2;
    t.lineBytes = 64;
    for (unsigned p = 0; p < 2; ++p) {
        StreamWriter w;
        for (unsigned i = 0; i < 64; ++i)
            w.access(makeVAddr(1, 0, 64 * i), i % 2);
        t.opCounts.push_back(w.opCount());
        t.streams.push_back(w.takeBytes());
    }
    return t.serialize();
}

TEST(TraceFormatDeath, BadMagicDies)
{
    std::string b = goodBytes();
    b[0] = 'X';
    EXPECT_EXIT(RecordedTrace::deserialize(b, "bad-magic"),
                testing::ExitedWithCode(1), "bad magic");
}

TEST(TraceFormatDeath, UnsupportedVersionDies)
{
    std::string b = goodBytes();
    b[8] = 99; // version u32le follows the 8-byte magic
    EXPECT_EXIT(RecordedTrace::deserialize(b, "bad-version"),
                testing::ExitedWithCode(1),
                "version 99.*re-record the trace");
}

TEST(TraceFormatDeath, TruncationDies)
{
    const std::string b = goodBytes();
    const std::string cut = b.substr(0, b.size() / 2);
    EXPECT_EXIT(RecordedTrace::deserialize(cut, "truncated"),
                testing::ExitedWithCode(1), "truncated");
}

TEST(TraceFormatDeath, FlippedPayloadByteFailsChecksum)
{
    std::string b = goodBytes();
    b[b.size() / 2] ^= 0x40;
    EXPECT_EXIT(RecordedTrace::deserialize(b, "bitflip"),
                testing::ExitedWithCode(1), "checksum mismatch");
}

TEST(TraceFormatDeath, TrailingGarbageDies)
{
    std::string b = goodBytes();
    b += "extra";
    EXPECT_EXIT(RecordedTrace::deserialize(b, "trailing"),
                testing::ExitedWithCode(1), "");
}

TEST(TraceFormatDeath, MissingFileDies)
{
    EXPECT_EXIT(
        RecordedTrace::readFile("/nonexistent/dir/nope.ptrace"),
        testing::ExitedWithCode(1), "cannot (open|read)");
}

// --- Trace-path derivation and collision claims ----------------------
//
// Regression: two apps whose names collapse to the same derived
// .ptrace filename (or a verbatim --trace-file shared by a multi-app
// sweep) used to clobber each other's recording silently; the replay
// then ran the wrong workload's stream.  claimTracePath() makes the
// second claim fatal, naming both apps.

TEST(TracePath, SingleAppUsesBaseVerbatim)
{
    EXPECT_EQ(tracePathFor("run.ptrace", "FFT", 1), "run.ptrace");
    EXPECT_EQ(tracePathFor("dir/", "FFT", 1), "dir/FFT.ptrace");
}

TEST(TracePath, MultiAppDerivesPerAppNames)
{
    EXPECT_EQ(tracePathFor("dir/", "FFT", 9), "dir/FFT.ptrace");
    EXPECT_EQ(tracePathFor("run.ptrace", "FFT", 9),
              "run.FFT.ptrace");
    EXPECT_NE(tracePathFor("run.ptrace", "FFT", 9),
              tracePathFor("run.ptrace", "LU", 9));
}

TEST(TracePath, ReclaimBySameAppIsIdempotent)
{
    resetTracePathClaims();
    claimTracePath("claim_same.ptrace", "FFT");
    claimTracePath("claim_same.ptrace", "FFT"); // sweep cells share it
    claimTracePath("claim_other.ptrace", "LU"); // distinct path is fine
    resetTracePathClaims();
    // After a reset the path is claimable by a different app.
    claimTracePath("claim_same.ptrace", "LU");
    resetTracePathClaims();
}

TEST(TracePathDeath, CollidingAppsDieNamingBoth)
{
    resetTracePathClaims();
    claimTracePath("collide.ptrace", "FFT");
    EXPECT_EXIT(claimTracePath("collide.ptrace", "LU"),
                testing::ExitedWithCode(1),
                "trace path collision.*FFT.*LU.*collide\\.ptrace");
    resetTracePathClaims();
}

} // namespace
} // namespace prism
