/**
 * @file
 * Unit tests for the full-map directory and fine-grain tags.
 */

#include <gtest/gtest.h>

#include "coherence/directory.hh"
#include "coherence/fine_grain_tags.hh"

namespace prism {
namespace {

TEST(Directory, CreatePageOwned)
{
    Directory d(8192, 2, 22, 64, 8);
    d.createPage(0x10, DirState::Owned, 3);
    ASSERT_TRUE(d.hasPage(0x10));
    auto e = d.line(0x10, 0);
    ASSERT_TRUE(e);
    EXPECT_EQ(e.state(), DirState::Owned);
    EXPECT_EQ(e.owner(), 3u);
    EXPECT_EQ(d.line(0x10, 63).owner(), 3u);
}

TEST(Directory, SharerBitmaskOps)
{
    DirEntry e;
    e.state = DirState::Shared;
    e.addSharer(0);
    e.addSharer(5);
    e.addSharer(63);
    EXPECT_TRUE(e.isSharer(5));
    EXPECT_FALSE(e.isSharer(4));
    EXPECT_EQ(e.sharerCount(), 3u);
    e.removeSharer(5);
    EXPECT_FALSE(e.isSharer(5));
    EXPECT_EQ(e.sharerCount(), 2u);
}

TEST(Directory, RemovePage)
{
    Directory d(8192, 2, 22, 64, 8);
    d.createPage(0x10, DirState::Uncached, 0);
    d.removePage(0x10);
    EXPECT_FALSE(d.hasPage(0x10));
    EXPECT_FALSE(d.line(0x10, 0));
}

TEST(Directory, ReleaseAndAdoptMovesEntriesVerbatim)
{
    Directory a(8192, 2, 22, 64, 8);
    Directory b(8192, 2, 22, 64, 8);
    a.createPage(0x10, DirState::Owned, 2);
    auto l7 = a.line(0x10, 7);
    l7.setState(DirState::Shared);
    l7.addSharer(0);
    l7.addSharer(2);
    l7.addSharer(4);
    auto entries = a.releasePage(0x10);
    EXPECT_FALSE(a.hasPage(0x10));
    b.adoptPage(0x10, entries);
    ASSERT_TRUE(b.hasPage(0x10));
    EXPECT_EQ(b.line(0x10, 7).sharers().lowWord(), 0x15u);
    EXPECT_EQ(b.line(0x10, 0).owner(), 2u);
}

TEST(Directory, LineRefStableAcrossGrowth)
{
    // The SoA arena allocates pages in fixed chunks, so a LineRef
    // taken early must stay valid while hundreds of later pages force
    // the arena to grow (the old per-page hash map invalidated
    // DirEntry pointers on rehash).
    Directory d(8192, 2, 22, 64, 8);
    d.createPage(1, DirState::Owned, 5);
    auto e = d.line(1, 3);
    for (GPage gp = 2; gp < 800; ++gp)
        d.createPage(gp, DirState::Uncached, 0);
    EXPECT_EQ(e.state(), DirState::Owned);
    EXPECT_EQ(e.owner(), 5u);
    e.addSharer(7);
    EXPECT_TRUE(d.line(1, 3).isSharer(7));
}

TEST(Directory, SlotReuseAfterRemove)
{
    Directory d(8192, 2, 22, 64, 8);
    for (GPage gp = 0; gp < 100; ++gp)
        d.createPage(gp, DirState::Shared, 3);
    std::uint64_t reserved = d.reservedBytes();
    for (GPage gp = 0; gp < 100; ++gp)
        d.removePage(gp);
    EXPECT_EQ(d.numPages(), 0u);
    // Freed slots are recycled: re-creating the pages must not grow
    // the arena.
    for (GPage gp = 200; gp < 300; ++gp)
        d.createPage(gp, DirState::Uncached, 0);
    EXPECT_EQ(d.reservedBytes(), reserved);
    // A recycled slot starts clean.
    auto e = d.line(250, 0);
    EXPECT_EQ(e.state(), DirState::Uncached);
    EXPECT_EQ(e.sharerCount(), 0u);
}

TEST(Directory, FootprintAccounting)
{
    // 8 nodes -> one sharer word: 1 (state) + 2 (owner) + 8 (word).
    Directory d(8192, 2, 22, 64, 8);
    EXPECT_EQ(d.bytesPerLine(), 1u + sizeof(NodeId) + 8u);
    EXPECT_EQ(d.liveBytes(), 0u);
    d.createPage(0x10, DirState::Uncached, 0);
    EXPECT_EQ(d.liveBytes(), 64u * d.bytesPerLine());
    EXPECT_GE(d.reservedBytes(), d.liveBytes());
    // 1024 nodes -> sixteen sharer words per line.
    Directory big(8192, 2, 22, 64, 1024);
    EXPECT_EQ(big.bytesPerLine(), 1u + sizeof(NodeId) + 16u * 8u);
}

TEST(Directory, WidePageRoundTrip)
{
    // Sharers past node 64 survive a release/adopt cycle between two
    // 1024-node directories.
    Directory a(8192, 2, 22, 16, 1024);
    Directory b(8192, 2, 22, 16, 1024);
    a.createPage(0x10, DirState::Shared, 900);
    auto e = a.line(0x10, 5);
    e.addSharer(3);
    e.addSharer(64);
    e.addSharer(1023);
    auto entries = a.releasePage(0x10);
    b.adoptPage(0x10, entries);
    auto f = b.line(0x10, 5);
    EXPECT_TRUE(f.isSharer(900));
    EXPECT_TRUE(f.isSharer(3));
    EXPECT_TRUE(f.isSharer(64));
    EXPECT_TRUE(f.isSharer(1023));
    EXPECT_EQ(f.sharerCount(), 4u);
}

TEST(Directory, CacheTimingHitAfterMiss)
{
    Directory d(8, 2, 22, 64, 8); // tiny cache: 8 entries
    d.createPage(0, DirState::Uncached, 0);
    EXPECT_EQ(d.access(100), 22u); // cold miss
    EXPECT_EQ(d.access(100), 2u);  // now cached
    EXPECT_EQ(d.access(108), 22u); // conflicting index (100 & 7 == 108 & 7 ? no)
    EXPECT_EQ(d.lookups(), 3u);
    EXPECT_EQ(d.cacheHits(), 1u);
}

TEST(Directory, CacheConflictEvicts)
{
    Directory d(8, 2, 22, 64, 8);
    EXPECT_EQ(d.access(0), 22u);
    EXPECT_EQ(d.access(8), 22u); // same index, evicts tag 0
    EXPECT_EQ(d.access(0), 22u); // miss again
}

TEST(FineGrainTags, InitAndCount)
{
    FrameTags t(64, FgTag::Invalid);
    EXPECT_EQ(t.lines(), 64u);
    EXPECT_EQ(t.count(FgTag::Invalid), 64u);
    t.set(3, FgTag::Exclusive);
    t.set(9, FgTag::Shared);
    EXPECT_EQ(t.count(FgTag::Invalid), 62u);
    EXPECT_EQ(t.count(FgTag::Exclusive), 1u);
    EXPECT_FALSE(t.anyTransit());
    t.set(10, FgTag::Transit);
    EXPECT_TRUE(t.anyTransit());
}

TEST(FineGrainTags, FillResets)
{
    FrameTags t(32, FgTag::Exclusive);
    EXPECT_EQ(t.count(FgTag::Exclusive), 32u);
    t.fill(FgTag::Invalid);
    EXPECT_EQ(t.count(FgTag::Invalid), 32u);
}

TEST(DirectoryNames, StateNames)
{
    EXPECT_STREQ(dirStateName(DirState::Uncached), "U");
    EXPECT_STREQ(dirStateName(DirState::Shared), "S");
    EXPECT_STREQ(dirStateName(DirState::Owned), "O");
    EXPECT_STREQ(fgTagName(FgTag::Transit), "T");
}

} // namespace
} // namespace prism
