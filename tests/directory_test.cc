/**
 * @file
 * Unit tests for the full-map directory and fine-grain tags.
 */

#include <gtest/gtest.h>

#include "coherence/directory.hh"
#include "coherence/fine_grain_tags.hh"

namespace prism {
namespace {

TEST(Directory, CreatePageOwned)
{
    Directory d(8192, 2, 22, 64);
    d.createPage(0x10, DirState::Owned, 3);
    ASSERT_TRUE(d.hasPage(0x10));
    DirEntry *e = d.line(0x10, 0);
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->state, DirState::Owned);
    EXPECT_EQ(e->owner, 3u);
    EXPECT_EQ(d.line(0x10, 63)->owner, 3u);
}

TEST(Directory, SharerBitmaskOps)
{
    DirEntry e;
    e.state = DirState::Shared;
    e.addSharer(0);
    e.addSharer(5);
    e.addSharer(63);
    EXPECT_TRUE(e.isSharer(5));
    EXPECT_FALSE(e.isSharer(4));
    EXPECT_EQ(e.sharerCount(), 3u);
    e.removeSharer(5);
    EXPECT_FALSE(e.isSharer(5));
    EXPECT_EQ(e.sharerCount(), 2u);
}

TEST(Directory, RemovePage)
{
    Directory d(8192, 2, 22, 64);
    d.createPage(0x10, DirState::Uncached, 0);
    d.removePage(0x10);
    EXPECT_FALSE(d.hasPage(0x10));
    EXPECT_EQ(d.line(0x10, 0), nullptr);
}

TEST(Directory, ReleaseAndAdoptMovesEntriesVerbatim)
{
    Directory a(8192, 2, 22, 64);
    Directory b(8192, 2, 22, 64);
    a.createPage(0x10, DirState::Owned, 2);
    a.line(0x10, 7)->state = DirState::Shared;
    a.line(0x10, 7)->sharers = 0x15;
    auto entries = a.releasePage(0x10);
    EXPECT_FALSE(a.hasPage(0x10));
    b.adoptPage(0x10, std::move(entries));
    ASSERT_TRUE(b.hasPage(0x10));
    EXPECT_EQ(b.line(0x10, 7)->sharers, 0x15u);
    EXPECT_EQ(b.line(0x10, 0)->owner, 2u);
}

TEST(Directory, CacheTimingHitAfterMiss)
{
    Directory d(8, 2, 22, 64); // tiny cache: 8 entries
    d.createPage(0, DirState::Uncached, 0);
    EXPECT_EQ(d.access(100), 22u); // cold miss
    EXPECT_EQ(d.access(100), 2u);  // now cached
    EXPECT_EQ(d.access(108), 22u); // conflicting index (100 & 7 == 108 & 7 ? no)
    EXPECT_EQ(d.lookups(), 3u);
    EXPECT_EQ(d.cacheHits(), 1u);
}

TEST(Directory, CacheConflictEvicts)
{
    Directory d(8, 2, 22, 64);
    EXPECT_EQ(d.access(0), 22u);
    EXPECT_EQ(d.access(8), 22u); // same index, evicts tag 0
    EXPECT_EQ(d.access(0), 22u); // miss again
}

TEST(FineGrainTags, InitAndCount)
{
    FrameTags t(64, FgTag::Invalid);
    EXPECT_EQ(t.lines(), 64u);
    EXPECT_EQ(t.count(FgTag::Invalid), 64u);
    t.set(3, FgTag::Exclusive);
    t.set(9, FgTag::Shared);
    EXPECT_EQ(t.count(FgTag::Invalid), 62u);
    EXPECT_EQ(t.count(FgTag::Exclusive), 1u);
    EXPECT_FALSE(t.anyTransit());
    t.set(10, FgTag::Transit);
    EXPECT_TRUE(t.anyTransit());
}

TEST(FineGrainTags, FillResets)
{
    FrameTags t(32, FgTag::Exclusive);
    EXPECT_EQ(t.count(FgTag::Exclusive), 32u);
    t.fill(FgTag::Invalid);
    EXPECT_EQ(t.count(FgTag::Invalid), 32u);
}

TEST(DirectoryNames, StateNames)
{
    EXPECT_STREQ(dirStateName(DirState::Uncached), "U");
    EXPECT_STREQ(dirStateName(DirState::Shared), "S");
    EXPECT_STREQ(dirStateName(DirState::Owned), "O");
    EXPECT_STREQ(fgTagName(FgTag::Transit), "T");
}

} // namespace
} // namespace prism
