/**
 * @file
 * Experiment-runner tests: the SCOMA-70 cap calibration methodology
 * (Section 4.2) and the policy sweep plumbing.
 */

#include <gtest/gtest.h>

#include "workload/apps.hh"
#include "workload/experiment.hh"

namespace prism {
namespace {

MachineConfig
smallCfg()
{
    MachineConfig cfg;
    cfg.numNodes = 4;
    cfg.procsPerNode = 2;
    return cfg;
}

TEST(Experiment, PaperPoliciesInFigureSevenOrder)
{
    auto p = paperPolicies();
    ASSERT_EQ(p.size(), 6u);
    EXPECT_EQ(p[0], PolicyKind::Scoma);
    EXPECT_EQ(p[1], PolicyKind::LaNuma);
    EXPECT_EQ(p[2], PolicyKind::Scoma70);
    EXPECT_EQ(p[3], PolicyKind::DynFcfs);
    EXPECT_EQ(p[4], PolicyKind::DynUtil);
    EXPECT_EQ(p[5], PolicyKind::DynLru);
}

TEST(Experiment, SweepReusesScomaCalibrationRun)
{
    auto apps = standardApps(AppScale::Tiny);
    const AppSpec *fft = nullptr;
    for (auto &a : apps) {
        if (a.name == "FFT")
            fft = &a;
    }
    ASSERT_NE(fft, nullptr);
    auto rs = runPolicySweep(
        RunSpec{.machine = smallCfg(),
                .policies = {PolicyKind::Scoma, PolicyKind::Scoma70}},
        *fft);
    ASSERT_EQ(rs.size(), 2u);
    EXPECT_EQ(rs[0].policy, PolicyKind::Scoma);
    EXPECT_GT(rs[0].metrics.execCycles, 0u);
    // SCOMA has no page-outs by construction.
    EXPECT_EQ(rs[0].metrics.clientPageOuts, 0u);
    // The restricted run can only allocate fewer client frames.
    for (std::size_t n = 0; n < rs[0].metrics.clientScomaPeakPerNode
                                    .size(); ++n) {
        std::uint64_t cap = static_cast<std::uint64_t>(
            0.7 * static_cast<double>(
                      rs[0].metrics.clientScomaPeakPerNode[n]));
        if (cap == 0)
            cap = 1;
        EXPECT_LE(rs[1].metrics.clientScomaPeakPerNode[n], cap)
            << "node " << n;
    }
}

TEST(Experiment, LaNumaRunsUncapped)
{
    auto apps = standardApps(AppScale::Tiny);
    const AppSpec *ocean = nullptr;
    for (auto &a : apps) {
        if (a.name == "Ocean")
            ocean = &a;
    }
    ASSERT_NE(ocean, nullptr);
    auto rs = runPolicySweep(
        RunSpec{.machine = smallCfg(),
                .policies = {PolicyKind::Scoma, PolicyKind::LaNuma}},
        *ocean);
    // LANUMA allocates no client S-COMA frames at all.
    for (std::uint64_t peak : rs[1].metrics.clientScomaPeakPerNode)
        EXPECT_EQ(peak, 0u);
    // And consumes fewer real frames than SCOMA (Table 3's point).
    EXPECT_LT(rs[1].metrics.framesAllocated,
              rs[0].metrics.framesAllocated);
}

TEST(Experiment, CapFractionIsConfigurable)
{
    auto apps = standardApps(AppScale::Tiny);
    const AppSpec *radix = nullptr;
    for (auto &a : apps) {
        if (a.name == "Radix")
            radix = &a;
    }
    ASSERT_NE(radix, nullptr);
    auto r50 = runPolicySweep(
        RunSpec{.machine = smallCfg(),
                .policies = {PolicyKind::Scoma, PolicyKind::Scoma70},
                .capFraction = 0.50},
        *radix);
    auto r90 = runPolicySweep(
        RunSpec{.machine = smallCfg(),
                .policies = {PolicyKind::Scoma, PolicyKind::Scoma70},
                .capFraction = 0.90},
        *radix);
    // A tighter cache cannot cause fewer page-outs.
    EXPECT_GE(r50[1].metrics.clientPageOuts,
              r90[1].metrics.clientPageOuts);
}

TEST(Experiment, AppRegistryScalesExist)
{
    for (AppScale s :
         {AppScale::Paper, AppScale::Small, AppScale::Tiny}) {
        auto apps = standardApps(s);
        EXPECT_EQ(apps.size(), 9u); // Table 2's eight kernels + KV
        EXPECT_EQ(apps.back().name, "KV");
        for (auto &a : apps)
            EXPECT_NE(a.make(), nullptr);
    }
}

} // namespace
} // namespace prism
