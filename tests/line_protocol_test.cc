/**
 * @file
 * Exhaustive transition-table conformance for every line-protocol
 * scheme (coherence/line_protocol).
 *
 * The expectation tables below are written out independently of the
 * implementation, pair by pair.  For each scheme, every one of the
 * 6 x 6 (state, event) pairs is either
 *   - a defined transition, whose next state and action set must match
 *     the expectation exactly, or
 *   - an asserted-illegal pair: tryOn() must return null and on()
 *     must die.
 * A final tally proves the enumeration covered 100% of each scheme's
 * defined pairs — no silent holes in either direction.
 */

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "coherence/line_protocol.hh"

namespace prism {
namespace {

constexpr LineState I = LineState::Invalid;
constexpr LineState S = LineState::Shared;
constexpr LineState E = LineState::Exclusive;
constexpr LineState M = LineState::Modified;
constexpr LineState O = LineState::Owned;
constexpr LineState F = LineState::Forward;

constexpr LineEvent kEvents[kNumLineEvents] = {
    LineEvent::LocalLoad, LineEvent::LocalStore, LineEvent::SnoopRead,
    LineEvent::SnoopWrite, LineEvent::Inval,     LineEvent::Evict,
};

constexpr LineState kStates[kNumLineStates] = {I, S, E, M, O, F};

struct Expect {
    LineState next;
    std::uint8_t actions;
};

using Key = std::pair<LineState, LineEvent>;
using Table = std::map<Key, Expect>;

/** The Shared row shared by MSI, MESI and MOESI. */
void
sharedRowSupplying(Table &t)
{
    t[{S, LineEvent::LocalLoad}] = {S, 0};
    t[{S, LineEvent::LocalStore}] = {S, kActNeedsBus};
    t[{S, LineEvent::SnoopRead}] = {S, kActSupplyData};
    t[{S, LineEvent::SnoopWrite}] = {I, kActSupplyData};
    t[{S, LineEvent::Inval}] = {I, 0};
    t[{S, LineEvent::Evict}] = {I, 0};
}

/** The Modified row shared by MSI, MESI and MESIF (flush on snoop). */
void
modifiedRowFlushing(Table &t)
{
    t[{M, LineEvent::LocalLoad}] = {M, 0};
    t[{M, LineEvent::LocalStore}] = {M, 0};
    t[{M, LineEvent::SnoopRead}] = {
        S, kActSupplyData | kActWritebackData | kActRelinquish};
    t[{M, LineEvent::SnoopWrite}] = {I, kActSupplyData};
    t[{M, LineEvent::Inval}] = {I, kActWritebackData};
    t[{M, LineEvent::Evict}] = {I, kActWritebackData};
}

/** The Exclusive row shared by MESI, MOESI and MESIF. */
void
exclusiveRow(Table &t)
{
    t[{E, LineEvent::LocalLoad}] = {E, 0};
    t[{E, LineEvent::LocalStore}] = {M, 0}; // silent upgrade
    t[{E, LineEvent::SnoopRead}] = {S, kActSupplyData | kActRelinquish};
    t[{E, LineEvent::SnoopWrite}] = {I, kActSupplyData};
    t[{E, LineEvent::Inval}] = {I, 0};
    t[{E, LineEvent::Evict}] = {I, kActReplaceHint};
}

Table
expectedTable(ProtocolScheme scheme)
{
    Table t;
    switch (scheme) {
      case ProtocolScheme::Msi:
        sharedRowSupplying(t);
        modifiedRowFlushing(t);
        break;
      case ProtocolScheme::Mesi:
        sharedRowSupplying(t);
        modifiedRowFlushing(t);
        exclusiveRow(t);
        break;
      case ProtocolScheme::Moesi:
        sharedRowSupplying(t);
        exclusiveRow(t);
        // M keeps its dirty data as Owned on a snoop read.
        t[{M, LineEvent::LocalLoad}] = {M, 0};
        t[{M, LineEvent::LocalStore}] = {M, 0};
        t[{M, LineEvent::SnoopRead}] = {O, kActSupplyData};
        t[{M, LineEvent::SnoopWrite}] = {I, kActSupplyData};
        t[{M, LineEvent::Inval}] = {I, kActWritebackData};
        t[{M, LineEvent::Evict}] = {I, kActWritebackData};
        // Owned: dirty supplier coexisting with Shared copies.
        t[{O, LineEvent::LocalLoad}] = {O, 0};
        t[{O, LineEvent::LocalStore}] = {M, kActNeedsBus};
        t[{O, LineEvent::SnoopRead}] = {O, kActSupplyData};
        t[{O, LineEvent::SnoopWrite}] = {I, kActSupplyData};
        t[{O, LineEvent::Inval}] = {I, kActWritebackData};
        t[{O, LineEvent::Evict}] = {I, kActWritebackData};
        break;
      case ProtocolScheme::Mesif:
        modifiedRowFlushing(t);
        exclusiveRow(t);
        // Plain Shared copies are silent; only Forward supplies.
        t[{S, LineEvent::LocalLoad}] = {S, 0};
        t[{S, LineEvent::LocalStore}] = {S, kActNeedsBus};
        t[{S, LineEvent::SnoopRead}] = {S, 0};
        t[{S, LineEvent::SnoopWrite}] = {I, 0};
        t[{S, LineEvent::Inval}] = {I, 0};
        t[{S, LineEvent::Evict}] = {I, 0};
        // Forward: clean designated supplier; hands the designation
        // to the requester on a snoop read.
        t[{F, LineEvent::LocalLoad}] = {F, 0};
        t[{F, LineEvent::LocalStore}] = {F, kActNeedsBus};
        t[{F, LineEvent::SnoopRead}] = {S, kActSupplyData};
        t[{F, LineEvent::SnoopWrite}] = {I, 0};
        t[{F, LineEvent::Inval}] = {I, 0};
        t[{F, LineEvent::Evict}] = {I, 0};
        break;
    }
    return t;
}

constexpr ProtocolScheme kSchemes[] = {
    ProtocolScheme::Msi, ProtocolScheme::Mesi, ProtocolScheme::Moesi,
    ProtocolScheme::Mesif};

class LineProtocolConformance
    : public ::testing::TestWithParam<ProtocolScheme>
{
};

/**
 * Every (state, event) pair is either a defined transition matching
 * the expectation table exactly, or explicitly illegal — and the
 * enumeration visits every expected pair (100% coverage both ways).
 */
TEST_P(LineProtocolConformance, ExhaustivePairEnumeration)
{
    const ProtocolScheme scheme = GetParam();
    const LineProtocol &p = LineProtocol::get(scheme);
    const Table expected = expectedTable(scheme);

    std::size_t defined_seen = 0;
    for (LineState s : kStates) {
        for (LineEvent e : kEvents) {
            SCOPED_TRACE(std::string(p.name()) + ": " + mesiName(s) +
                         " x " + lineEventName(e));
            const Transition *t = p.tryOn(s, e);
            auto it = expected.find({s, e});
            if (it == expected.end()) {
                EXPECT_EQ(t, nullptr)
                    << "transition defined but expected illegal";
                continue;
            }
            ++defined_seen;
            ASSERT_NE(t, nullptr)
                << "transition expected but undefined (silent hole)";
            EXPECT_EQ(t->next, it->second.next)
                << "next state: got " << mesiName(t->next)
                << ", want " << mesiName(it->second.next);
            EXPECT_EQ(t->actions, it->second.actions)
                << "actions: got " << unsigned(t->actions) << ", want "
                << unsigned(it->second.actions);
        }
    }
    EXPECT_EQ(defined_seen, expected.size())
        << "enumeration missed expected pairs";
}

/** on() panics on every illegal pair — the holes are loud. */
TEST_P(LineProtocolConformance, IllegalPairsDie)
{
    const ProtocolScheme scheme = GetParam();
    const LineProtocol &p = LineProtocol::get(scheme);
    const Table expected = expectedTable(scheme);

    std::size_t illegal = 0;
    for (LineState s : kStates) {
        for (LineEvent e : kEvents) {
            if (expected.count({s, e}))
                continue;
            ++illegal;
            SCOPED_TRACE(std::string(p.name()) + ": " + mesiName(s) +
                         " x " + lineEventName(e));
            EXPECT_DEATH((void)p.on(s, e), "illegal");
        }
    }
    // The Invalid row is illegal under every scheme (misses go
    // through the fill path, never the table); the unreachable-state
    // rows are illegal too.
    EXPECT_GE(illegal, kNumLineEvents);
}

/** Closure: every defined transition lands in a valid state. */
TEST_P(LineProtocolConformance, TransitionsStayInValidStates)
{
    const LineProtocol &p = LineProtocol::get(GetParam());
    for (LineState s : kStates) {
        for (LineEvent e : kEvents) {
            const Transition *t = p.tryOn(s, e);
            if (!t)
                continue;
            EXPECT_TRUE(p.stateValid(s))
                << mesiName(s) << " has transitions but is not valid";
            EXPECT_TRUE(p.stateValid(t->next))
                << mesiName(s) << " x " << lineEventName(e)
                << " lands in invalid state " << mesiName(t->next);
        }
    }
}

/** The reachable state sets are exactly the schemes' namesakes. */
TEST(LineProtocolStates, ValidStateSetsMatchSchemes)
{
    struct Case {
        ProtocolScheme scheme;
        std::set<LineState> states;
    };
    const std::vector<Case> cases = {
        {ProtocolScheme::Msi, {I, S, M}},
        {ProtocolScheme::Mesi, {I, S, E, M}},
        {ProtocolScheme::Moesi, {I, S, E, M, O}},
        {ProtocolScheme::Mesif, {I, S, E, M, F}},
    };
    for (const Case &c : cases) {
        const LineProtocol &p = LineProtocol::get(c.scheme);
        for (LineState s : kStates) {
            EXPECT_EQ(p.stateValid(s), c.states.count(s) != 0)
                << p.name() << ": " << mesiName(s);
        }
    }
}

/** Fill policy: what misses install, per scheme. */
TEST(LineProtocolFill, FillPolicyPerScheme)
{
    const LineProtocol &msi = LineProtocol::get(ProtocolScheme::Msi);
    EXPECT_EQ(msi.readFill(true), S);
    EXPECT_EQ(msi.readFill(false), S);
    EXPECT_EQ(msi.peerReadFill(), S);
    EXPECT_TRUE(msi.demoteExclusiveReadGrant());
    EXPECT_FALSE(msi.sharedSupplyNeedsDesignee());

    const LineProtocol &mesi = LineProtocol::get(ProtocolScheme::Mesi);
    EXPECT_EQ(mesi.readFill(true), E);
    EXPECT_EQ(mesi.readFill(false), S);
    EXPECT_EQ(mesi.peerReadFill(), S);
    EXPECT_FALSE(mesi.demoteExclusiveReadGrant());
    EXPECT_FALSE(mesi.sharedSupplyNeedsDesignee());

    const LineProtocol &moesi = LineProtocol::get(ProtocolScheme::Moesi);
    EXPECT_EQ(moesi.readFill(true), E);
    EXPECT_EQ(moesi.readFill(false), S);
    EXPECT_EQ(moesi.peerReadFill(), S);
    EXPECT_FALSE(moesi.demoteExclusiveReadGrant());
    EXPECT_FALSE(moesi.sharedSupplyNeedsDesignee());

    const LineProtocol &mesif = LineProtocol::get(ProtocolScheme::Mesif);
    EXPECT_EQ(mesif.readFill(true), E);
    EXPECT_EQ(mesif.readFill(false), F);
    EXPECT_EQ(mesif.peerReadFill(), F);
    EXPECT_FALSE(mesif.demoteExclusiveReadGrant());
    EXPECT_TRUE(mesif.sharedSupplyNeedsDesignee());
}

/**
 * MESI-bit-identity contract, stated as table facts: the transitions
 * the pre-table simulator hard-coded are exactly what the MESI table
 * encodes.
 */
TEST(LineProtocolMesi, EncodesPreTableBehaviour)
{
    const LineProtocol &p = LineProtocol::get(ProtocolScheme::Mesi);

    // A snoop read of M supplies, writes back and relinquishes.
    const Transition &mr = p.on(M, LineEvent::SnoopRead);
    EXPECT_EQ(mr.next, S);
    EXPECT_EQ(mr.actions,
              kActSupplyData | kActWritebackData | kActRelinquish);

    // A snoop read of E supplies clean and relinquishes (no data to
    // write back).
    const Transition &er = p.on(E, LineEvent::SnoopRead);
    EXPECT_EQ(er.next, S);
    EXPECT_EQ(er.actions, kActSupplyData | kActRelinquish);

    // A store to E upgrades silently (no bus transaction).
    const Transition &es = p.on(E, LineEvent::LocalStore);
    EXPECT_EQ(es.next, M);
    EXPECT_EQ(es.actions, 0);

    // A store to S needs the bus (upgrade).
    EXPECT_TRUE(p.on(S, LineEvent::LocalStore).actions & kActNeedsBus);

    // Evictions: M writes back, E hints, S drops silently.
    EXPECT_EQ(p.on(M, LineEvent::Evict).actions, kActWritebackData);
    EXPECT_EQ(p.on(E, LineEvent::Evict).actions, kActReplaceHint);
    EXPECT_EQ(p.on(S, LineEvent::Evict).actions, 0);
}

/** Dirty data is never dropped: every exit from M/O moves the data. */
TEST_P(LineProtocolConformance, DirtyDataNeverSilentlyDropped)
{
    const LineProtocol &p = LineProtocol::get(GetParam());
    for (LineState s : {M, O}) {
        if (!p.stateValid(s))
            continue;
        for (LineEvent e : kEvents) {
            const Transition *t = p.tryOn(s, e);
            if (!t || dirtyLine(t->next))
                continue; // stays dirty somewhere
            EXPECT_TRUE(t->actions &
                        (kActSupplyData | kActWritebackData))
                << p.name() << ": " << mesiName(s) << " x "
                << lineEventName(e) << " drops dirty data";
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemes, LineProtocolConformance, ::testing::ValuesIn(kSchemes),
    [](const ::testing::TestParamInfo<ProtocolScheme> &info) {
        return std::string(protocolName(info.param));
    });

} // namespace
} // namespace prism
