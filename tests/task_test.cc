/**
 * @file
 * Unit tests for coroutine tasks and coroutine synchronization.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/coro_sync.hh"
#include "sim/event_queue.hh"
#include "sim/task.hh"

namespace prism {
namespace {

CoTask
delayTwice(EventQueue &eq, std::vector<Tick> &log)
{
    co_await DelayAwaiter(eq, 10);
    log.push_back(eq.now());
    co_await DelayAwaiter(eq, 5);
    log.push_back(eq.now());
}

TEST(CoTask, DelaysAdvanceSimTime)
{
    EventQueue eq;
    std::vector<Tick> log;
    CoTask t = delayTwice(eq, log);
    bool done = false;
    t.start([&] { done = true; });
    eq.runAll();
    EXPECT_TRUE(done);
    EXPECT_EQ(log, (std::vector<Tick>{10, 15}));
}

CoTask
inner(EventQueue &eq, int &x)
{
    co_await DelayAwaiter(eq, 3);
    x += 1;
}

CoTask
outer(EventQueue &eq, int &x)
{
    co_await inner(eq, x);
    co_await inner(eq, x);
    x += 10;
}

TEST(CoTask, NestedTasksCompose)
{
    EventQueue eq;
    int x = 0;
    CoTask t = outer(eq, x);
    t.start();
    eq.runAll();
    EXPECT_EQ(x, 12);
    EXPECT_EQ(eq.now(), 6u);
}

TEST(CoTask, ZeroDelayCompletesWithoutSuspending)
{
    EventQueue eq;
    int x = 0;
    auto mk = [&]() -> CoTask {
        co_await DelayAwaiter(eq, 0);
        x = 1;
    };
    CoTask t = mk();
    t.start();
    // Zero delay is await_ready: no event needed.
    EXPECT_EQ(x, 1);
    EXPECT_EQ(eq.pending(), 0u);
}

FireAndForget
fireAndForgetBody(EventQueue &eq, int &x)
{
    co_await DelayAwaiter(eq, 4);
    x = 99;
}

TEST(FireAndForgetTask, StartsEagerlyAndSelfDestroys)
{
    EventQueue eq;
    int x = 0;
    fireAndForgetBody(eq, x);
    EXPECT_EQ(x, 0); // suspended on the delay
    eq.runAll();
    EXPECT_EQ(x, 99);
}

TEST(CoMutex, FifoOrdering)
{
    EventQueue eq;
    CoMutex m(eq);
    std::vector<int> order;
    auto worker = [&](int id, Cycles hold) -> FireAndForget {
        co_await m.acquire();
        co_await DelayAwaiter(eq, hold);
        order.push_back(id);
        m.release();
    };
    worker(1, 10);
    worker(2, 10);
    worker(3, 10);
    EXPECT_TRUE(m.held());
    EXPECT_EQ(m.queued(), 2u);
    eq.runAll();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_FALSE(m.held());
}

TEST(CoEvent, SignalBeforeWaitIsImmediate)
{
    EventQueue eq;
    CoEvent ev(eq);
    ev.signal();
    int x = 0;
    auto w = [&]() -> FireAndForget {
        co_await ev.wait();
        x = 1;
    };
    w();
    EXPECT_EQ(x, 1);
}

TEST(CoEvent, SignalAfterWaitResumes)
{
    EventQueue eq;
    CoEvent ev(eq);
    int x = 0;
    auto w = [&]() -> FireAndForget {
        co_await ev.wait();
        x = 1;
    };
    w();
    EXPECT_EQ(x, 0);
    ev.signal();
    eq.runAll();
    EXPECT_EQ(x, 1);
}

TEST(CoLatch, WaitsForExpectedArrivals)
{
    EventQueue eq;
    CoLatch l(eq);
    int x = 0;
    auto w = [&]() -> FireAndForget {
        co_await l.wait();
        x = 1;
    };
    w();
    l.expect(2);
    l.arm();
    l.arrive();
    eq.runAll();
    EXPECT_EQ(x, 0);
    l.arrive();
    eq.runAll();
    EXPECT_EQ(x, 1);
}

TEST(CoLatch, EarlyArrivalsBeforeArmDoNotRelease)
{
    EventQueue eq;
    CoLatch l(eq);
    int x = 0;
    auto w = [&]() -> FireAndForget {
        co_await l.wait();
        x = 1;
    };
    w();
    // Acks may arrive before the reply announcing the count.
    l.arrive();
    l.arrive();
    eq.runAll();
    EXPECT_EQ(x, 0);
    l.expect(2);
    l.arm();
    eq.runAll();
    EXPECT_EQ(x, 1);
}

TEST(CoLatch, ZeroExpectedOpensOnArm)
{
    EventQueue eq;
    CoLatch l(eq);
    l.arm();
    int x = 0;
    auto w = [&]() -> FireAndForget {
        co_await l.wait();
        x = 1;
    };
    w();
    EXPECT_EQ(x, 1);
}

} // namespace
} // namespace prism
