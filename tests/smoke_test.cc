/**
 * @file
 * End-to-end smoke tests: small machines run small workloads to
 * completion under every policy, with sane metrics.
 */

#include <gtest/gtest.h>

#include "core/machine.hh"
#include "workload/apps.hh"
#include "workload/fft.hh"
#include "workload/radix.hh"
#include "workload/experiment.hh"
#include "workload/workload.hh"

namespace prism {
namespace {

MachineConfig
tinyConfig()
{
    MachineConfig cfg;
    cfg.numNodes = 4;
    cfg.procsPerNode = 2;
    return cfg;
}

TEST(Smoke, FftTinyRunsToCompletion)
{
    MachineConfig cfg = tinyConfig();
    Machine m(cfg);
    FftWorkload w(FftWorkload::Params{8});
    RunMetrics r = runWorkload(m, w);
    EXPECT_GT(r.execCycles, 0u);
    EXPECT_GT(r.references, 0u);
    EXPECT_GT(r.framesAllocated, 0u);
    EXPECT_EQ(m.eventQueue().pending(), 0u);
}

TEST(Smoke, EveryTinyAppEveryPolicy)
{
    for (const auto &app : standardApps(AppScale::Tiny)) {
        for (PolicyKind pk :
             {PolicyKind::Scoma, PolicyKind::LaNuma, PolicyKind::DynLru}) {
            MachineConfig cfg = tinyConfig();
            cfg.policy = pk;
            cfg.clientFrameCap = (pk == PolicyKind::Scoma) ? 0 : 24;
            RunMetrics r = runOnce(RunSpec{.machine = cfg}, app);
            EXPECT_GT(r.execCycles, 0u)
                << app.name << " " << policyName(pk);
            EXPECT_GT(r.references, 0u)
                << app.name << " " << policyName(pk);
        }
    }
}

TEST(Smoke, DeterministicAcrossRuns)
{
    auto run = [] {
        MachineConfig cfg = tinyConfig();
        Machine m(cfg);
        RadixWorkload w(RadixWorkload::Params{1u << 10, 256, 24, 9});
        return runWorkload(m, w);
    };
    RunMetrics a = run();
    RunMetrics b = run();
    EXPECT_EQ(a.execCycles, b.execCycles);
    EXPECT_EQ(a.remoteMisses, b.remoteMisses);
    EXPECT_EQ(a.references, b.references);
    EXPECT_EQ(a.networkMessages, b.networkMessages);
}

} // namespace
} // namespace prism
