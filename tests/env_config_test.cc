/**
 * @file
 * Environment-knob parsing: every env parser must accept its documented
 * values and fail fast — naming the valid values — on anything else.
 * Covers PRISM_SCALE / PRISM_APPS (bench/bench_util.hh) and
 * PRISM_ORACLE (core/config + Machine construction).
 */

#include <gtest/gtest.h>

#include <cstdlib>

#include "bench/bench_util.hh"
#include "core/machine.hh"

namespace prism {
namespace {

using bench::appsFromEnv;
using bench::scaleFromEnv;

TEST(EnvConfig, ScaleParsesDocumentedValues)
{
    unsetenv("PRISM_SCALE");
    EXPECT_EQ(scaleFromEnv(), AppScale::Paper);
    setenv("PRISM_SCALE", "paper", 1);
    EXPECT_EQ(scaleFromEnv(), AppScale::Paper);
    setenv("PRISM_SCALE", "small", 1);
    EXPECT_EQ(scaleFromEnv(), AppScale::Small);
    setenv("PRISM_SCALE", "tiny", 1);
    EXPECT_EQ(scaleFromEnv(), AppScale::Tiny);
    unsetenv("PRISM_SCALE");
}

TEST(EnvConfig, UnknownScaleFailsFastListingValidNames)
{
    setenv("PRISM_SCALE", "medium", 1);
    EXPECT_EXIT(scaleFromEnv(), ::testing::ExitedWithCode(1),
                "unknown PRISM_SCALE 'medium' \\(valid: paper small "
                "tiny\\)");
    unsetenv("PRISM_SCALE");
}

TEST(EnvConfig, AppsFilterSelectsBySubstring)
{
    setenv("PRISM_APPS", "Water", 1);
    auto apps = appsFromEnv(AppScale::Tiny);
    ASSERT_FALSE(apps.empty());
    for (const auto &a : apps)
        EXPECT_NE(a.name.find("Water"), std::string::npos) << a.name;
    unsetenv("PRISM_APPS");
    EXPECT_EQ(appsFromEnv(AppScale::Tiny).size(),
              standardApps(AppScale::Tiny).size());
}

TEST(EnvConfig, UnmatchedAppsFilterFailsFastListingValidNames)
{
    setenv("PRISM_APPS", "no-such-app", 1);
    EXPECT_EXIT(appsFromEnv(AppScale::Tiny),
                ::testing::ExitedWithCode(1),
                "matches no application; valid names:");
    unsetenv("PRISM_APPS");
}

TEST(EnvConfig, OracleModeParserAcceptsAllNames)
{
    OracleMode m = OracleMode::Off;
    EXPECT_TRUE(oracleModeFromString("off", &m));
    EXPECT_EQ(m, OracleMode::Off);
    EXPECT_TRUE(oracleModeFromString("quiescent", &m));
    EXPECT_EQ(m, OracleMode::Quiescent);
    EXPECT_TRUE(oracleModeFromString("continuous", &m));
    EXPECT_EQ(m, OracleMode::Continuous);
    EXPECT_FALSE(oracleModeFromString("sometimes", &m));
    EXPECT_FALSE(oracleModeFromString("", &m));
    EXPECT_FALSE(oracleModeFromString(nullptr, &m));

    for (OracleMode mode : {OracleMode::Off, OracleMode::Quiescent,
                            OracleMode::Continuous}) {
        OracleMode back = OracleMode::Off;
        ASSERT_TRUE(oracleModeFromString(oracleModeName(mode), &back));
        EXPECT_EQ(back, mode);
    }
}

TEST(EnvConfig, MachineHonorsOracleEnv)
{
    setenv("PRISM_ORACLE", "continuous", 1);
    MachineConfig cfg;
    cfg.numNodes = 2;
    cfg.procsPerNode = 1;
    Machine m(cfg);
    EXPECT_NE(m.oracle(), nullptr);
    unsetenv("PRISM_ORACLE");
}

TEST(EnvConfig, UnknownOracleEnvFailsFastListingValidNames)
{
    setenv("PRISM_ORACLE", "always", 1);
    MachineConfig cfg;
    cfg.numNodes = 2;
    cfg.procsPerNode = 1;
    EXPECT_EXIT(Machine m(cfg), ::testing::ExitedWithCode(1),
                "unknown PRISM_ORACLE 'always' \\(valid: off quiescent "
                "continuous\\)");
    unsetenv("PRISM_ORACLE");
}

} // namespace
} // namespace prism
