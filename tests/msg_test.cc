/**
 * @file
 * Unit tests for protocol message metadata.
 */

#include <gtest/gtest.h>

#include "coherence/msg.hh"

namespace prism {
namespace {

TEST(Msg, KernelMessageClassification)
{
    for (MsgType t : {MsgType::PageInReq, MsgType::PageInRep,
                      MsgType::PageOutNotice, MsgType::PageOutNoticeAck,
                      MsgType::HomePageOutReq, MsgType::HomePageOutAck})
        EXPECT_TRUE(isKernelMsg(t)) << msgTypeName(t);
    for (MsgType t : {MsgType::ReqS, MsgType::ReqX, MsgType::Upgrade,
                      MsgType::Data, MsgType::Inv, MsgType::Fetch,
                      MsgType::Writeback, MsgType::MigrateReq})
        EXPECT_FALSE(isKernelMsg(t)) << msgTypeName(t);
}

TEST(Msg, SizeClasses)
{
    Msg m;
    m.type = MsgType::ReqS;
    EXPECT_EQ(m.sizeClass(), MsgSize::Control);
    m.type = MsgType::Data;
    EXPECT_EQ(m.sizeClass(), MsgSize::Data);
    m.type = MsgType::DataFwd;
    EXPECT_EQ(m.sizeClass(), MsgSize::Data);
    m.type = MsgType::MigrateData;
    EXPECT_EQ(m.sizeClass(), MsgSize::Page);
    // Writebacks carry data only when dirty.
    m.type = MsgType::Writeback;
    m.dirty = false;
    EXPECT_EQ(m.sizeClass(), MsgSize::Control);
    m.dirty = true;
    EXPECT_EQ(m.sizeClass(), MsgSize::Data);
    m.type = MsgType::XferNotice;
    EXPECT_EQ(m.sizeClass(), MsgSize::Data);
    m.dirty = false;
    EXPECT_EQ(m.sizeClass(), MsgSize::Control);
}

TEST(Msg, EveryTypeHasAName)
{
    for (int t = 0; t <= static_cast<int>(MsgType::MigrateDone); ++t) {
        const char *n = msgTypeName(static_cast<MsgType>(t));
        EXPECT_STRNE(n, "?") << "type " << t;
    }
}

TEST(Msg, DefaultsAreInert)
{
    Msg m;
    EXPECT_EQ(m.requester, kInvalidNode);
    EXPECT_EQ(m.dstFrameHint, kInvalidFrame);
    EXPECT_EQ(m.homeFrame, kInvalidFrame);
    EXPECT_EQ(m.dynHome, kInvalidNode);
    EXPECT_EQ(m.ackCount, 0u);
    EXPECT_FALSE(m.dirty);
    EXPECT_FALSE(m.exclusive);
    EXPECT_EQ(m.payload, nullptr);
}

} // namespace
} // namespace prism
