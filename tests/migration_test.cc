/**
 * @file
 * Lazy page migration tests (paper Section 3.5).
 *
 * The dynamic home of a page moves without any global coordination:
 * the static home coordinates only with the old and new dynamic
 * homes, misdirected requests are forwarded through the static home,
 * and clients lazily update their PIT hints from responses.
 */

#include <gtest/gtest.h>

#include "core/machine.hh"
#include "workload/workload.hh"

namespace prism {
namespace {

constexpr std::uint64_t kKey = 0x316;

struct Rig {
    explicit Rig(MachineConfig cfg) : m(cfg)
    {
        gsid = m.shmget(kKey, 64 * kPageBytes);
        m.shmatAll(kSharedVsid, gsid);
    }

    VAddr
    va(std::uint64_t pnum, std::uint64_t off = 0) const
    {
        return makeVAddr(kSharedVsid, pnum, off);
    }

    GPage
    gp(std::uint64_t pnum) const
    {
        return (gsid << kPageNumBits) | pnum;
    }

    Machine m;
    std::uint64_t gsid = 0;
};

MachineConfig
migCfg()
{
    MachineConfig cfg;
    cfg.numNodes = 4;
    cfg.procsPerNode = 2;
    cfg.migrationEnabled = true;
    cfg.migrationThreshold = 32;
    return cfg;
}

TEST(Migration, DominantRemoteAccessorBecomesHome)
{
    Rig rig(migCfg());
    // Page 0 is statically homed at node 0.  Node 1 hammers it with
    // writes that keep missing (large stride across many lines and
    // alternating lines to defeat the cache).
    rig.m.run([&](Proc &p) -> CoTask {
        return [](Proc &pp, Rig &r) -> CoTask {
            if (pp.id() == 0) {
                co_await pp.write(r.va(0)); // materialize at home 0
            }
            co_await pp.barrier(1);
            if (pp.id() / 2 == 1) { // both procs of node 1
                for (int rep = 0; rep < 40; ++rep) {
                    for (int l = 0; l < 64; l += 2) {
                        co_await pp.write(
                            r.va(0, static_cast<std::uint64_t>(l) * 64));
                        co_await pp.write(r.va(
                            1, static_cast<std::uint64_t>(l) * 64));
                    }
                }
            }
        }(p, rig);
    });

    // Node 1 should have become the dynamic home of page 0.
    EXPECT_TRUE(rig.m.node(1).controller().isDynHome(rig.gp(0)))
        << "page did not migrate to the dominant accessor";
    EXPECT_FALSE(rig.m.node(0).controller().isDynHome(rig.gp(0)));
    EXPECT_GE(rig.m.node(0).controller().stats().migrationsOut, 1u);
    EXPECT_GE(rig.m.node(1).controller().stats().migrationsIn, 1u);
    // The static home's registry points at the new dynamic home.
    EXPECT_EQ(rig.m.node(0).controller().registryLookup(rig.gp(0)), 1u);
}

TEST(Migration, StaleClientsAreForwardedAndRecover)
{
    Rig rig(migCfg());
    rig.m.run([&](Proc &p) -> CoTask {
        return [](Proc &pp, Rig &r) -> CoTask {
            // Node 2 reads the page early (PIT hint: dyn home = 0).
            if (pp.id() == 4)
                co_await pp.read(r.va(0));
            co_await pp.barrier(1);
            // Node 1 hammers until migration triggers.
            if (pp.id() / 2 == 1) {
                for (int rep = 0; rep < 40; ++rep) {
                    for (int l = 0; l < 64; l += 2) {
                        co_await pp.write(
                            r.va(0, static_cast<std::uint64_t>(l) * 64));
                        co_await pp.write(r.va(
                            1, static_cast<std::uint64_t>(l) * 64));
                    }
                }
            }
            co_await pp.barrier(2);
            // Node 2 accesses again through its stale hint.
            if (pp.id() == 4) {
                for (int l = 0; l < 64; ++l) {
                    co_await pp.read(
                        r.va(0, static_cast<std::uint64_t>(l) * 64));
                }
            }
        }(p, rig);
    });

    // The page migrated away from its static home (possibly more than
    // once — node 2's second burst may pull it again); exactly one
    // node is the dynamic home, and misdirected requests were
    // forwarded through the static home.
    std::uint32_t homes = 0;
    NodeId dyn_home = kInvalidNode;
    std::uint64_t fwd = 0;
    std::uint64_t migrations = 0;
    for (NodeId n = 0; n < 4; ++n) {
        auto &c = rig.m.node(n).controller();
        if (c.isDynHome(rig.gp(0))) {
            ++homes;
            dyn_home = n;
        }
        fwd += c.stats().forwards;
        migrations += c.stats().migrationsOut;
    }
    ASSERT_EQ(homes, 1u);
    EXPECT_NE(dyn_home, 0u) << "page never migrated";
    EXPECT_GE(migrations, 1u);
    EXPECT_GE(fwd, 1u);
    // The static home's registry tracks the current dynamic home.
    EXPECT_EQ(rig.m.node(0).controller().registryLookup(rig.gp(0)),
              dyn_home);
}

TEST(Migration, DisabledByDefault)
{
    MachineConfig cfg;
    cfg.numNodes = 4;
    cfg.procsPerNode = 2;
    ASSERT_FALSE(cfg.migrationEnabled);
    Rig rig(cfg);
    rig.m.run([&](Proc &p) -> CoTask {
        return [](Proc &pp, Rig &r) -> CoTask {
            if (pp.id() / 2 == 1) {
                for (int rep = 0; rep < 60; ++rep) {
                    for (int l = 0; l < 64; l += 4) {
                        co_await pp.write(
                            r.va(0, static_cast<std::uint64_t>(l) * 64));
                    }
                }
            }
            co_return;
        }(p, rig);
    });
    EXPECT_TRUE(rig.m.node(0).controller().isDynHome(rig.gp(0)));
    EXPECT_EQ(rig.m.node(0).controller().stats().migrationsOut, 0u);
}

TEST(Migration, ExplicitRequestMovesCleanPage)
{
    Rig rig(migCfg());
    rig.m.run([&](Proc &p) -> CoTask {
        return [](Proc &pp, Rig &r) -> CoTask {
            if (pp.id() == 0)
                co_await pp.write(r.va(0));
            co_return;
        }(p, rig);
    });
    // Directly request a migration of page 0 to node 3.
    rig.m.node(0).controller().requestMigration(rig.gp(0), 3);
    rig.m.eventQueue().runAll();
    EXPECT_TRUE(rig.m.node(3).controller().isDynHome(rig.gp(0)));
    EXPECT_FALSE(rig.m.node(0).controller().isDynHome(rig.gp(0)));
    EXPECT_EQ(rig.m.node(0).controller().registryLookup(rig.gp(0)), 3u);
    // And it can be used afterwards: a later access works fine.
    rig.m.run([&](Proc &p) -> CoTask {
        return [](Proc &pp, Rig &r) -> CoTask {
            if (pp.id() == 4)
                co_await pp.read(r.va(0));
            co_return;
        }(p, rig);
    });
}

} // namespace
} // namespace prism
