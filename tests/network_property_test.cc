/**
 * @file
 * Property test: the network delivers FIFO per (source, destination)
 * pair under randomized bursts of mixed-size messages — the ordering
 * guarantee the coherence protocol's race resolution depends on
 * (writeback-before-nack, data-before-invalidate).
 */

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "net/network.hh"
#include "sim/rng.hh"

namespace prism {
namespace {

class NetworkFifo : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(NetworkFifo, PerPairOrderHoldsUnderRandomTraffic)
{
    EventQueue eq;
    Network::Params params;
    Network net(eq, 8, params);
    Rng rng(GetParam());

    // seq[src][dst]: next sequence number to send / expect.
    std::map<std::pair<NodeId, NodeId>, std::uint64_t> next_send;
    std::map<std::pair<NodeId, NodeId>, std::uint64_t> next_recv;
    int violations = 0;

    for (int burst = 0; burst < 50; ++burst) {
        const int n = 1 + static_cast<int>(rng.below(20));
        for (int i = 0; i < n; ++i) {
            NodeId src = static_cast<NodeId>(rng.below(8));
            NodeId dst = static_cast<NodeId>(rng.below(8));
            MsgSize size = static_cast<MsgSize>(rng.below(3));
            auto key = std::make_pair(src, dst);
            std::uint64_t seq = next_send[key]++;
            net.send(src, dst, size, [&, key, seq] {
                if (next_recv[key] != seq)
                    ++violations;
                next_recv[key] = seq + 1;
            });
        }
        // Let a random amount of traffic drain between bursts.
        eq.runUntil(eq.now() + rng.below(300));
    }
    eq.runAll();
    EXPECT_EQ(violations, 0);
    // Everything was delivered.
    for (auto &[key, sent] : next_send)
        EXPECT_EQ(next_recv[key], sent);
}

INSTANTIATE_TEST_SUITE_P(Seeds, NetworkFifo,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

} // namespace
} // namespace prism
