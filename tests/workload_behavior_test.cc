/**
 * @file
 * Behavioural regression tests: the qualitative relationships the
 * paper's evaluation rests on must hold at Small scale.  These pin
 * the *shape* of the results so a regression in the protocol, the
 * policies or the workloads shows up as a test failure, not as a
 * silently wrong benchmark table.
 */

#include <gtest/gtest.h>

#include "workload/apps.hh"
#include "workload/experiment.hh"

namespace prism {
namespace {

const AppSpec &
app(std::vector<AppSpec> &apps, const char *name)
{
    for (auto &a : apps) {
        if (a.name == name)
            return a;
    }
    throw std::runtime_error("unknown app");
}

class Behaviour : public ::testing::Test
{
  protected:
    static std::vector<AppSpec> apps_;

    static void
    SetUpTestSuite()
    {
        apps_ = standardApps(AppScale::Small);
    }
};

std::vector<AppSpec> Behaviour::apps_;

TEST_F(Behaviour, LanumaSuffersCapacityRemoteMissesOnOcean)
{
    MachineConfig base;
    auto rs = runPolicySweep(
        RunSpec{.machine = base, .policies = {PolicyKind::Scoma, PolicyKind::LaNuma}},
        app(apps_, "Ocean"));
    // Paper Table 4: Ocean LANUMA has far more remote misses than
    // SCOMA (capacity misses go remote).  The gap grows with the
    // problem size; at Small scale it is still a clear >30%.
    EXPECT_GT(rs[1].metrics.remoteMisses,
              static_cast<std::uint64_t>(
                  1.3 * static_cast<double>(rs[0].metrics.remoteMisses)));
    // And it runs substantially slower (Figure 7).
    EXPECT_GT(rs[1].metrics.execCycles,
              static_cast<Tick>(1.2 * rs[0].metrics.execCycles));
}

TEST_F(Behaviour, ScomaSeventyTradesPageOutsForFewerRemoteMisses)
{
    MachineConfig base;
    auto rs = runPolicySweep(
        RunSpec{.machine = base, .policies = {PolicyKind::Scoma, PolicyKind::LaNuma, PolicyKind::Scoma70}},
        app(apps_, "Radix"));
    const auto &scoma = rs[0].metrics;
    const auto &lanuma = rs[1].metrics;
    const auto &s70 = rs[2].metrics;
    // SCOMA-70's page cache keeps remote misses below LANUMA...
    EXPECT_LT(s70.remoteMisses, lanuma.remoteMisses);
    // ...but at the price of paging activity SCOMA never pays.
    EXPECT_EQ(scoma.clientPageOuts, 0u);
    EXPECT_GE(s70.remoteMisses, scoma.remoteMisses);
}

TEST_F(Behaviour, DynFcfsNeverPagesOut)
{
    MachineConfig base;
    auto rs = runPolicySweep(
        RunSpec{.machine = base, .policies = {PolicyKind::Scoma, PolicyKind::DynFcfs}},
        app(apps_, "FFT"));
    // Paper Table 5: "Page-outs do not occur in Dyn-FCFS."
    EXPECT_EQ(rs[1].metrics.clientPageOuts, 0u);
}

TEST_F(Behaviour, AdaptivePoliciesCutPageOutsBelowScomaSeventy)
{
    MachineConfig base;
    auto rs = runPolicySweep(
        RunSpec{.machine = base, .policies = {PolicyKind::Scoma, PolicyKind::Scoma70, PolicyKind::DynLru}},
        app(apps_, "Barnes"));
    // Paper Table 5 vs Table 4: the adaptive configurations
    // significantly reduce client page-outs versus SCOMA-70.
    EXPECT_LT(rs[2].metrics.clientPageOuts,
              rs[1].metrics.clientPageOuts);
}

TEST_F(Behaviour, AdaptiveBeatsLanumaOnCapacityBoundApp)
{
    MachineConfig base;
    auto rs = runPolicySweep(
        RunSpec{.machine = base, .policies = {PolicyKind::Scoma, PolicyKind::LaNuma, PolicyKind::DynFcfs}},
        app(apps_, "Ocean"));
    EXPECT_LT(rs[2].metrics.execCycles, rs[1].metrics.execCycles);
}

TEST_F(Behaviour, Mp3dIsCommunicationDominated)
{
    MachineConfig base;
    auto rs = runPolicySweep(
        RunSpec{.machine = base, .policies = {PolicyKind::Scoma, PolicyKind::LaNuma}},
        app(apps_, "MP3D"));
    // Paper: communication-related traffic costs the same in either
    // mode, so MP3D shows no significant difference (within 20%).
    const double ratio =
        static_cast<double>(rs[1].metrics.execCycles) /
        static_cast<double>(rs[0].metrics.execCycles);
    EXPECT_GT(ratio, 0.8);
    EXPECT_LT(ratio, 1.25);
}

TEST_F(Behaviour, ScomaAllocatesMoreFramesWithLowerUtilization)
{
    MachineConfig base;
    auto rs = runPolicySweep(
        RunSpec{.machine = base, .policies = {PolicyKind::Scoma, PolicyKind::LaNuma}},
        app(apps_, "FFT"));
    // Paper Table 3's memory-consumption claim.  (The utilization
    // ordering is a paper-scale property; at Small scale the sparse
    // private/home frames dominate both columns, so here we only
    // check sanity of the utilization metric itself.)
    EXPECT_GT(rs[0].metrics.framesAllocated,
              rs[1].metrics.framesAllocated);
    EXPECT_GT(rs[0].metrics.avgUtilization, 0.0);
    EXPECT_LE(rs[0].metrics.avgUtilization, 1.0);
    EXPECT_GT(rs[1].metrics.avgUtilization, 0.0);
    EXPECT_LE(rs[1].metrics.avgUtilization, 1.0);
}

TEST_F(Behaviour, DramPitSlowsLanumaOnlyModestly)
{
    // Section 4.3: moving the PIT from SRAM (2) to DRAM (10) costs
    // a few percent.
    MachineConfig sram;
    sram.policy = PolicyKind::LaNuma;
    RunMetrics s = runOnce(RunSpec{.machine = sram}, app(apps_, "LU"));
    MachineConfig dram = sram;
    dram.pitLatency = 10;
    RunMetrics d = runOnce(RunSpec{.machine = dram}, app(apps_, "LU"));
    const double slowdown = static_cast<double>(d.execCycles) /
                            static_cast<double>(s.execCycles);
    EXPECT_GE(slowdown, 1.0);
    EXPECT_LT(slowdown, 1.25);
}

} // namespace
} // namespace prism
