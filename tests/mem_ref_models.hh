/**
 * @file
 * Naive reference models for the memory-path fast structures.
 *
 * These are the pre-optimization implementations of the cache tag
 * store (array-of-structs, global LRU stamps) and the TLB
 * (unordered_map with a linear LRU eviction scan), kept verbatim in
 * spirit so the property suite can drive the production structures and
 * these references with identical op streams and demand identical
 * observable behavior: hit/miss sequences, chosen victims, LRU
 * tie-breaks, frame-invalidation victim order and counters.
 *
 * Do not "improve" these models; their value is being the simple,
 * obviously-correct executable specification.
 */

#ifndef PRISM_TESTS_MEM_REF_MODELS_HH
#define PRISM_TESTS_MEM_REF_MODELS_HH

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "mem/addr.hh"
#include "mem/cache.hh"
#include "sim/types.hh"

namespace prism {
namespace testref {

/**
 * The retired implementations were out-of-line functions in
 * src/mem/*.cc; keep the same call boundary here so micro-benchmark
 * comparisons against them are call-for-call fair instead of letting
 * the compiler fold a fully-inlined model into the measurement loop.
 */
#if defined(__GNUC__) || defined(__clang__)
#define PRISM_REF_OUTLINE __attribute__((noinline))
#else
#define PRISM_REF_OUTLINE
#endif

/** The original AoS set-associative MESI tag store. */
class RefCache
{
  public:
    RefCache(std::uint32_t size_bytes, std::uint32_t assoc,
             std::uint32_t line_bytes)
        : assoc_(assoc), lineBytes_(line_bytes),
          lineShift_(LineGeometry::log2i(line_bytes)),
          numSets_(size_bytes / (assoc * line_bytes)),
          lines_(static_cast<std::size_t>(numSets_) * assoc)
    {
    }

    PRISM_REF_OUTLINE Mesi
    lookup(std::uint64_t paddr) const
    {
        const Line *l = find(paddr);
        return l ? l->state : Mesi::Invalid;
    }

    PRISM_REF_OUTLINE void
    touch(std::uint64_t paddr)
    {
        Line *l = find(paddr);
        if (l)
            l->lastUse = ++useClock_;
    }

    void
    setState(std::uint64_t paddr, Mesi s)
    {
        Line *l = find(paddr);
        if (l)
            l->state = s;
    }

    PRISM_REF_OUTLINE std::optional<Victim>
    insert(std::uint64_t paddr, Mesi s)
    {
        const std::uint64_t la = lineAlign(paddr);
        Line *set = setOf(la);

        // Overwrite an existing copy of the same line.
        for (std::uint32_t w = 0; w < assoc_; ++w) {
            if (set[w].state != Mesi::Invalid && set[w].addr == la) {
                set[w].state = s;
                set[w].lastUse = ++useClock_;
                return std::nullopt;
            }
        }
        // Prefer an invalid way (lowest index).
        for (std::uint32_t w = 0; w < assoc_; ++w) {
            if (set[w].state == Mesi::Invalid) {
                set[w] = Line{la, s, ++useClock_};
                return std::nullopt;
            }
        }
        // Evict the least-recently-used way (first minimal stamp).
        Line *victim = &set[0];
        for (std::uint32_t w = 1; w < assoc_; ++w) {
            if (set[w].lastUse < victim->lastUse)
                victim = &set[w];
        }
        Victim out{victim->addr, victim->state};
        *victim = Line{la, s, ++useClock_};
        return out;
    }

    PRISM_REF_OUTLINE std::optional<Victim>
    peekVictim(std::uint64_t paddr) const
    {
        const std::uint64_t la = lineAlign(paddr);
        const Line *set = setOf(la);
        for (std::uint32_t w = 0; w < assoc_; ++w) {
            if (set[w].state != Mesi::Invalid && set[w].addr == la)
                return std::nullopt;
        }
        for (std::uint32_t w = 0; w < assoc_; ++w) {
            if (set[w].state == Mesi::Invalid)
                return std::nullopt;
        }
        const Line *victim = &set[0];
        for (std::uint32_t w = 1; w < assoc_; ++w) {
            if (set[w].lastUse < victim->lastUse)
                victim = &set[w];
        }
        return Victim{victim->addr, victim->state};
    }

    PRISM_REF_OUTLINE Mesi
    invalidate(std::uint64_t paddr)
    {
        Line *l = find(paddr);
        if (!l)
            return Mesi::Invalid;
        Mesi s = l->state;
        l->state = Mesi::Invalid;
        return s;
    }

    PRISM_REF_OUTLINE std::vector<Victim>
    invalidateFrame(FrameNum frame)
    {
        std::vector<Victim> out;
        const std::uint64_t lo = frame << kPageShift;
        const std::uint64_t hi = lo + kPageBytes;
        for (auto &l : lines_) {
            if (l.state != Mesi::Invalid && l.addr >= lo && l.addr < hi) {
                out.push_back(Victim{l.addr, l.state});
                l.state = Mesi::Invalid;
            }
        }
        return out;
    }

    PRISM_REF_OUTLINE bool
    anyInFrame(FrameNum frame) const
    {
        const std::uint64_t lo = frame << kPageShift;
        const std::uint64_t hi = lo + kPageBytes;
        for (const auto &l : lines_) {
            if (l.state != Mesi::Invalid && l.addr >= lo && l.addr < hi)
                return true;
        }
        return false;
    }

    PRISM_REF_OUTLINE std::uint32_t
    validLines() const
    {
        std::uint32_t n = 0;
        for (const auto &l : lines_) {
            if (l.state != Mesi::Invalid)
                ++n;
        }
        return n;
    }

    std::vector<std::pair<std::uint64_t, Mesi>>
    snapshot() const
    {
        std::vector<std::pair<std::uint64_t, Mesi>> out;
        for (const auto &l : lines_) {
            if (l.state != Mesi::Invalid)
                out.emplace_back(l.addr, l.state);
        }
        return out;
    }

  private:
    struct Line {
        std::uint64_t addr = 0;
        Mesi state = Mesi::Invalid;
        std::uint64_t lastUse = 0;
    };

    std::uint64_t
    lineAlign(std::uint64_t paddr) const
    {
        return paddr & ~static_cast<std::uint64_t>(lineBytes_ - 1);
    }

    std::uint32_t
    setIndex(std::uint64_t la) const
    {
        return static_cast<std::uint32_t>((la >> lineShift_) &
                                          (numSets_ - 1));
    }

    Line *
    setOf(std::uint64_t la)
    {
        return &lines_[static_cast<std::size_t>(setIndex(la)) * assoc_];
    }

    const Line *
    setOf(std::uint64_t la) const
    {
        return const_cast<RefCache *>(this)->setOf(la);
    }

    Line *
    find(std::uint64_t paddr)
    {
        const std::uint64_t la = lineAlign(paddr);
        Line *set = setOf(la);
        for (std::uint32_t w = 0; w < assoc_; ++w) {
            if (set[w].state != Mesi::Invalid && set[w].addr == la)
                return &set[w];
        }
        return nullptr;
    }

    const Line *
    find(std::uint64_t paddr) const
    {
        return const_cast<RefCache *>(this)->find(paddr);
    }

    std::uint32_t assoc_;
    std::uint32_t lineBytes_;
    std::uint32_t lineShift_;
    std::uint32_t numSets_;
    std::vector<Line> lines_;
    std::uint64_t useClock_ = 0;
};

/**
 * The original hash-map TLB.  The LRU eviction scan visits the map in
 * unspecified order, but the lastUse stamps are unique (one global
 * clock), so the minimal entry -- and therefore every eviction -- is
 * deterministic regardless of iteration order.
 */
class RefTlb
{
  public:
    explicit RefTlb(std::uint32_t entries) : capacity_(entries) {}

    PRISM_REF_OUTLINE FrameNum
    lookup(VPage vp)
    {
        auto it = map_.find(vp);
        if (it == map_.end()) {
            ++misses_;
            return kInvalidFrame;
        }
        it->second.lastUse = ++clock_;
        ++hits_;
        return it->second.frame;
    }

    PRISM_REF_OUTLINE void
    insert(VPage vp, FrameNum frame)
    {
        if (map_.size() >= capacity_ && map_.find(vp) == map_.end()) {
            auto lru = map_.begin();
            for (auto it = map_.begin(); it != map_.end(); ++it) {
                if (it->second.lastUse < lru->second.lastUse)
                    lru = it;
            }
            map_.erase(lru);
        }
        map_[vp] = Entry{frame, ++clock_};
    }

    void invalidate(VPage vp) { map_.erase(vp); }

    void flush() { map_.clear(); }

    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }
    std::size_t size() const { return map_.size(); }

  private:
    struct Entry {
        FrameNum frame;
        std::uint64_t lastUse;
    };

    std::uint32_t capacity_;
    std::unordered_map<VPage, Entry> map_;
    std::uint64_t clock_ = 0;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
};

} // namespace testref
} // namespace prism

#endif // PRISM_TESTS_MEM_REF_MODELS_HH
