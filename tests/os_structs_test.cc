/**
 * @file
 * Unit tests for frame pools, the page table and the IPC server.
 */

#include <gtest/gtest.h>

#include "os/frame_pool.hh"
#include "os/ipc_server.hh"
#include "os/page_table.hh"

namespace prism {
namespace {

TEST(FramePool, AllocatesDistinctFrames)
{
    FramePool p(0);
    FrameNum a = p.alloc();
    FrameNum b = p.alloc();
    EXPECT_NE(a, b);
    EXPECT_EQ(p.live(), 2u);
    EXPECT_EQ(p.cumulative(), 2u);
}

TEST(FramePool, RecyclesReleasedFrames)
{
    FramePool p(0);
    FrameNum a = p.alloc();
    p.release(a);
    EXPECT_EQ(p.live(), 0u);
    FrameNum b = p.alloc();
    EXPECT_EQ(b, a);
    EXPECT_EQ(p.cumulative(), 2u);
    EXPECT_EQ(p.peak(), 1u);
}

TEST(FramePool, CapacityBound)
{
    FramePool p(0, 2);
    EXPECT_NE(p.alloc(), kInvalidFrame);
    EXPECT_NE(p.alloc(), kInvalidFrame);
    EXPECT_EQ(p.alloc(), kInvalidFrame);
    p.release(0);
    EXPECT_NE(p.alloc(), kInvalidFrame);
}

TEST(FramePool, PeakTracksHighWater)
{
    FramePool p(0);
    FrameNum a = p.alloc();
    FrameNum b = p.alloc();
    FrameNum c = p.alloc();
    p.release(a);
    p.release(b);
    p.release(c);
    p.alloc();
    EXPECT_EQ(p.peak(), 3u);
}

TEST(FramePool, ImaginaryRangeDisjointFromReal)
{
    FramePool real(0);
    FramePool imag(kImaginaryFrameBase);
    for (int i = 0; i < 100; ++i)
        EXPECT_LT(real.alloc(), kImaginaryFrameBase);
    EXPECT_GE(imag.alloc(), kImaginaryFrameBase);
}

TEST(PageTable, MapUnmapLookup)
{
    PageTable pt;
    EXPECT_EQ(pt.lookup(10), nullptr);
    pt.map(10, 99, PageMode::LaNuma);
    ASSERT_NE(pt.lookup(10), nullptr);
    EXPECT_EQ(pt.lookup(10)->frame, 99u);
    EXPECT_EQ(pt.lookup(10)->mode, PageMode::LaNuma);
    EXPECT_TRUE(pt.mapped(10));
    pt.unmap(10);
    EXPECT_FALSE(pt.mapped(10));
    EXPECT_EQ(pt.size(), 0u);
}

TEST(IpcServer, ShmgetIsIdempotentPerKey)
{
    IpcServer ipc;
    std::uint64_t a = ipc.shmget(0xAB, 1 << 20);
    std::uint64_t b = ipc.shmget(0xAB, 1 << 20);
    std::uint64_t c = ipc.shmget(0xCD, 4096);
    EXPECT_EQ(a, b);
    EXPECT_NE(a, c);
    EXPECT_EQ(ipc.numSegments(), 2u);
}

TEST(IpcServer, SegmentMetadata)
{
    IpcServer ipc;
    std::uint64_t g = ipc.shmget(1, 3 * kPageBytes + 1);
    const GlobalSegment *s = ipc.segment(g);
    ASSERT_NE(s, nullptr);
    EXPECT_EQ(s->pages, 4u); // rounded up
    ipc.shmatAttach(g);
    ipc.shmatAttach(g);
    EXPECT_EQ(ipc.segment(g)->attachCount, 2u);
    EXPECT_EQ(ipc.segment(999), nullptr);
}

TEST(IpcServer, GsidZeroReserved)
{
    IpcServer ipc;
    EXPECT_GE(ipc.shmget(5, 64), 1u);
}

} // namespace
} // namespace prism
