/**
 * @file
 * Machine-level tests: topology wiring, parallel-phase measurement,
 * metrics aggregation, and the miss-latency histogram.
 */

#include <gtest/gtest.h>

#include "core/machine.hh"
#include "workload/workload.hh"

namespace prism {
namespace {

TEST(Machine, TopologyWiring)
{
    MachineConfig cfg;
    cfg.numNodes = 4;
    cfg.procsPerNode = 3;
    Machine m(cfg);
    EXPECT_EQ(m.numNodes(), 4u);
    EXPECT_EQ(m.numProcs(), 12u);
    // Node-major processor numbering.
    EXPECT_EQ(m.proc(0).id(), 0u);
    EXPECT_EQ(m.proc(7).id(), 7u);
    EXPECT_EQ(&m.proc(7), &m.node(2).proc(1));
    // Round-robin static homes.
    EXPECT_EQ(m.staticHomeOf(0), 0u);
    EXPECT_EQ(m.staticHomeOf(5), 1u);
    EXPECT_EQ(m.staticHomeOf(7), 3u);
}

TEST(Machine, ParallelPhaseBracketsMetrics)
{
    MachineConfig cfg;
    cfg.numNodes = 2;
    cfg.procsPerNode = 1;
    Machine m(cfg);
    std::uint64_t gsid = m.shmget(1, 8 * kPageBytes);
    m.shmatAll(kSharedVsid, gsid);

    m.run([&](Proc &p) -> CoTask {
        return [](Proc &pp) -> CoTask {
            auto va = [](std::uint64_t pg) {
                return makeVAddr(kSharedVsid, pg, 0);
            };
            // Pre-phase remote traffic (node 1 touches page 0).
            if (pp.id() == 1)
                co_await pp.read(va(0));
            co_await pp.barrier(0);
            if (pp.id() == 0)
                co_await pp.beginParallel();
            co_await pp.barrier(0);
            // In-phase traffic.
            if (pp.id() == 1)
                co_await pp.read(va(2));
            co_await pp.barrier(0);
            if (pp.id() == 0)
                co_await pp.endParallel();
            co_await pp.barrier(0);
            // Post-phase traffic must not count.
            if (pp.id() == 1)
                co_await pp.read(va(4));
        }(p);
    });

    RunMetrics r = m.metrics();
    // Exactly the one in-phase remote miss is reported.
    EXPECT_EQ(r.remoteMisses, 1u);
    EXPECT_GT(r.execCycles, 0u);
    EXPECT_LT(r.execCycles, r.totalCycles);
    // Whole-run counters still see all three.
    std::uint64_t all = 0;
    for (NodeId n = 0; n < 2; ++n)
        all += m.node(n).controller().stats().remoteMisses;
    EXPECT_EQ(all, 3u);
}

TEST(Machine, MissLatencyHistogramPopulates)
{
    MachineConfig cfg;
    cfg.numNodes = 2;
    cfg.procsPerNode = 1;
    Machine m(cfg);
    std::uint64_t gsid = m.shmget(2, 8 * kPageBytes);
    m.shmatAll(kSharedVsid, gsid);
    m.run([&](Proc &p) -> CoTask {
        return [](Proc &pp) -> CoTask {
            if (pp.id() != 1)
                co_return;
            for (int l = 0; l < 32; ++l)
                co_await pp.read(
                    makeVAddr(kSharedVsid, 0,
                              static_cast<std::uint64_t>(l) * 64));
        }(p);
    });
    const Histogram &h = m.node(1).proc(0).missLatency();
    EXPECT_EQ(h.count(), 32u);
    // Remote misses land in the hundreds-of-cycles buckets.
    EXPECT_GT(h.mean(), 200.0);
    EXPECT_LT(h.mean(), 2000.0);
}

TEST(Machine, DrainLeavesNoPendingEvents)
{
    MachineConfig cfg;
    cfg.numNodes = 2;
    cfg.procsPerNode = 2;
    Machine m(cfg);
    std::uint64_t gsid = m.shmget(3, 8 * kPageBytes);
    m.shmatAll(kSharedVsid, gsid);
    m.run([&](Proc &p) -> CoTask {
        return [](Proc &pp) -> CoTask {
            for (int i = 0; i < 50; ++i)
                co_await pp.write(makeVAddr(
                    kSharedVsid, static_cast<std::uint64_t>(i % 6),
                    static_cast<std::uint64_t>(i) * 64 % kPageBytes));
        }(p);
    });
    EXPECT_EQ(m.eventQueue().pending(), 0u);
}

TEST(Machine, RouteRejectsNothingAndCountsMessages)
{
    MachineConfig cfg;
    cfg.numNodes = 2;
    cfg.procsPerNode = 1;
    Machine m(cfg);
    std::uint64_t gsid = m.shmget(4, 4 * kPageBytes);
    m.shmatAll(kSharedVsid, gsid);
    m.run([&](Proc &p) -> CoTask {
        return [](Proc &pp) -> CoTask {
            if (pp.id() == 1)
                co_await pp.read(makeVAddr(kSharedVsid, 0, 0));
            co_return;
        }(p);
    });
    // Page-in request/reply + coherence request/reply at minimum.
    EXPECT_GE(m.network().messages(), 4u);
}

} // namespace
} // namespace prism
