/**
 * @file
 * Processor-model tests: fast-path cache behaviour, intra-node
 * cache-to-cache transfers, local upgrades, and run-ahead bounding.
 */

#include <gtest/gtest.h>

#include "core/machine.hh"
#include "workload/workload.hh"

namespace prism {
namespace {

constexpr std::uint64_t kKey = 0x9C;

struct Rig {
    Rig() : m(makeCfg())
    {
        gsid = m.shmget(kKey, 16 * kPageBytes);
        m.shmatAll(kSharedVsid, gsid);
    }

    static MachineConfig
    makeCfg()
    {
        MachineConfig cfg;
        cfg.numNodes = 2;
        cfg.procsPerNode = 4;
        return cfg;
    }

    VAddr
    va(std::uint64_t pnum, std::uint64_t off = 0) const
    {
        return makeVAddr(kSharedVsid, pnum, off);
    }

    Machine m;
    std::uint64_t gsid = 0;
};

TEST(Proc, FastPathHitsGenerateNoEvents)
{
    Rig rig;
    rig.m.run([&](Proc &p) -> CoTask {
        return [](Proc &pp, Rig &r) -> CoTask {
            if (pp.id() != 0)
                co_return;
            co_await pp.write(r.va(0)); // fault + miss
            const std::uint64_t events_before =
                r.m.eventQueue().eventsExecuted();
            // 100 L1 hits: pure local accounting.
            for (int i = 0; i < 100; ++i)
                co_await pp.read(r.va(0));
            EXPECT_EQ(r.m.eventQueue().eventsExecuted(), events_before);
            EXPECT_GE(pp.stats().l1Hits, 100u);
        }(p, rig);
    });
}

TEST(Proc, WriteToExclusiveIsSilent)
{
    Rig rig;
    rig.m.run([&](Proc &p) -> CoTask {
        return [](Proc &pp, Rig &r) -> CoTask {
            if (pp.id() != 0)
                co_return;
            co_await pp.read(r.va(0)); // E grant at home
            const std::uint64_t misses = pp.stats().l2Misses;
            co_await pp.write(r.va(0)); // E -> M, no bus activity
            EXPECT_EQ(pp.stats().l2Misses, misses);
            EXPECT_EQ(pp.l1().lookup((pp.tlb().lookup(r.va(0).page())
                                      << kPageShift)),
                      Mesi::Modified);
        }(p, rig);
    });
}

TEST(Proc, PeerSupplyWithinNode)
{
    Rig rig;
    rig.m.run([&](Proc &p) -> CoTask {
        return [](Proc &pp, Rig &r) -> CoTask {
            // Proc 0 dirties a line; proc 1 (same node) reads it.
            if (pp.id() == 0)
                co_await pp.write(r.va(0));
            co_await pp.barrier(1);
            if (pp.id() == 1) {
                const std::uint64_t remote_before =
                    r.m.node(0).controller().stats().remoteMisses;
                co_await pp.read(r.va(0));
                // Served by the peer cache, not the network.
                EXPECT_EQ(
                    r.m.node(0).controller().stats().remoteMisses,
                    remote_before);
                FrameNum f = pp.tlb().lookup(r.va(0).page());
                EXPECT_EQ(pp.l2().lookup(f << kPageShift),
                          Mesi::Shared);
            }
        }(p, rig);
    });
    // Both copies are now Shared (M was downgraded).
    Proc &p0 = rig.m.node(0).proc(0);
    FrameNum f = p0.tlb().lookup(rig.va(0).page());
    ASSERT_NE(f, kInvalidFrame);
    EXPECT_EQ(p0.l2().lookup(f << kPageShift), Mesi::Shared);
}

TEST(Proc, WriteTakesPeerCopyWithinNode)
{
    Rig rig;
    rig.m.run([&](Proc &p) -> CoTask {
        return [](Proc &pp, Rig &r) -> CoTask {
            if (pp.id() == 0)
                co_await pp.write(r.va(0));
            co_await pp.barrier(1);
            if (pp.id() == 1)
                co_await pp.write(r.va(0)); // c2c + invalidate peer
        }(p, rig);
    });
    Proc &p0 = rig.m.node(0).proc(0);
    Proc &p1 = rig.m.node(0).proc(1);
    FrameNum f = p1.tlb().lookup(rig.va(0).page());
    ASSERT_NE(f, kInvalidFrame);
    EXPECT_EQ(p1.l2().lookup(f << kPageShift), Mesi::Modified);
    EXPECT_EQ(p0.l2().lookup(f << kPageShift), Mesi::Invalid);
}

TEST(Proc, RunAheadIsBounded)
{
    Rig rig;
    rig.m.run([&](Proc &p) -> CoTask {
        return [](Proc &pp, Rig &r) -> CoTask {
            if (pp.id() != 0)
                co_return;
            co_await pp.write(r.va(0));
            // A long pure-compute stretch must not let local time run
            // arbitrarily far ahead of the global clock.
            for (int i = 0; i < 100; ++i) {
                pp.compute(100);
                co_await pp.read(r.va(0)); // L1 hits
            }
            EXPECT_LE(pp.pendingCycles(),
                      r.m.config().runAheadQuantum + 200);
        }(p, rig);
    });
}

TEST(Proc, ComputeAccumulatesStats)
{
    Rig rig;
    rig.m.run([&](Proc &p) -> CoTask {
        return [](Proc &pp) -> CoTask {
            pp.compute(123);
            pp.compute(77);
            co_return;
        }(p);
    });
    EXPECT_EQ(rig.m.node(0).proc(0).stats().computeCycles, 200u);
}

TEST(Proc, LoadsAndStoresCounted)
{
    Rig rig;
    rig.m.run([&](Proc &p) -> CoTask {
        return [](Proc &pp, Rig &r) -> CoTask {
            if (pp.id() != 0)
                co_return;
            for (int i = 0; i < 10; ++i)
                co_await pp.read(r.va(0, i * 8));
            for (int i = 0; i < 7; ++i)
                co_await pp.write(r.va(0, i * 8));
        }(p, rig);
    });
    const ProcStats &s = rig.m.node(0).proc(0).stats();
    EXPECT_EQ(s.loads, 10u);
    EXPECT_EQ(s.stores, 7u);
    EXPECT_EQ(s.pageFaults, 1u);
}

} // namespace
} // namespace prism
