/**
 * @file
 * Fine-grained controller behaviour tests: evictions, downgrades,
 * Dyn-Util victim queries, finishFill semantics, and stats.
 */

#include <gtest/gtest.h>

#include "core/machine.hh"
#include "workload/workload.hh"

namespace prism {
namespace {

constexpr std::uint64_t kKey = 0xC7;

struct Rig {
    explicit Rig(PolicyKind pk = PolicyKind::Scoma)
        : m(makeCfg(pk))
    {
        gsid = m.shmget(kKey, 64 * kPageBytes);
        m.shmatAll(kSharedVsid, gsid);
    }

    static MachineConfig
    makeCfg(PolicyKind pk)
    {
        MachineConfig cfg;
        cfg.numNodes = 2;
        cfg.procsPerNode = 1;
        cfg.policy = pk;
        return cfg;
    }

    VAddr
    va(std::uint64_t pnum, std::uint64_t off = 0) const
    {
        return makeVAddr(kSharedVsid, pnum, off);
    }

    GPage
    gp(std::uint64_t pnum) const
    {
        return (gsid << kPageNumBits) | pnum;
    }

    Machine m;
    std::uint64_t gsid = 0;
};

TEST(ControllerUnit, LaNumaDirtyEvictionWritesBack)
{
    Rig rig(PolicyKind::LaNuma);
    // Node 1 writes many lines of node-0-homed pages so its tiny L2
    // (32 KB = 512 lines) evicts dirty LA-NUMA lines.
    rig.m.run([&](Proc &p) -> CoTask {
        return [](Proc &pp, Rig &r) -> CoTask {
            if (pp.id() != 1)
                co_return;
            for (std::uint64_t pg = 0; pg < 20; pg += 2) {
                for (std::uint64_t l = 0; l < 64; ++l)
                    co_await pp.write(r.va(pg, l * 64));
            }
        }(p, rig);
    });
    auto &c1 = rig.m.node(1).controller();
    EXPECT_GT(c1.stats().writebacksSent, 100u);
    // The written-back lines are Uncached at the home again.
    std::uint32_t uncached = 0;
    auto pg = rig.m.node(0).controller().directory().page(rig.gp(0));
    ASSERT_TRUE(pg);
    for (std::uint32_t li = 0; li < pg.size(); ++li) {
        if (pg.line(li).state() == DirState::Uncached)
            ++uncached;
    }
    EXPECT_GT(uncached, 0u);
}

TEST(ControllerUnit, LaNumaCleanExclusiveEvictionSendsHint)
{
    Rig rig(PolicyKind::LaNuma);
    // Node 1 writes lines (evictions write them back, leaving the
    // directory Uncached), then re-reads them: those reads are
    // granted Exclusive, and their clean evictions must send
    // replacement hints so the full-map directory stays in sync.
    rig.m.run([&](Proc &p) -> CoTask {
        return [](Proc &pp, Rig &r) -> CoTask {
            if (pp.id() != 1)
                co_return;
            for (std::uint64_t pg = 0; pg < 20; pg += 2) {
                for (std::uint64_t l = 0; l < 64; ++l)
                    co_await pp.write(r.va(pg, l * 64));
            }
            for (std::uint64_t pg = 0; pg < 20; pg += 2) {
                for (std::uint64_t l = 0; l < 64; ++l)
                    co_await pp.read(r.va(pg, l * 64));
            }
        }(p, rig);
    });
    auto &c1 = rig.m.node(1).controller();
    EXPECT_GT(c1.stats().replaceHintsSent, 50u);
    EXPECT_GT(c1.stats().writebacksSent, 100u); // from the write pass
}

TEST(ControllerUnit, ScomaEvictionsStayLocal)
{
    Rig rig(PolicyKind::Scoma);
    rig.m.run([&](Proc &p) -> CoTask {
        return [](Proc &pp, Rig &r) -> CoTask {
            if (pp.id() != 1)
                co_return;
            for (std::uint64_t pg = 0; pg < 20; pg += 2) {
                for (std::uint64_t l = 0; l < 64; ++l)
                    co_await pp.write(r.va(pg, l * 64));
            }
        }(p, rig);
    });
    // Dirty victims land in the local page cache; no network
    // writebacks, no replacement hints.
    auto &c1 = rig.m.node(1).controller();
    EXPECT_EQ(c1.stats().writebacksSent, 0u);
    EXPECT_EQ(c1.stats().replaceHintsSent, 0u);
    // And the node still owns every line it wrote (tags Exclusive).
    FrameNum f = c1.pit().frameOf(rig.gp(0));
    ASSERT_NE(f, kInvalidFrame);
    EXPECT_EQ(c1.pit().entry(f)->tags->count(FgTag::Exclusive), 64u);
}

TEST(ControllerUnit, MostInvalidFramePrefersSparseFrames)
{
    Rig rig(PolicyKind::Scoma);
    rig.m.run([&](Proc &p) -> CoTask {
        return [](Proc &pp, Rig &r) -> CoTask {
            if (pp.id() != 1)
                co_return;
            // Page 0: dense (48 lines); page 2: sparse (2 lines).
            for (std::uint64_t l = 0; l < 48; ++l)
                co_await pp.read(r.va(0, l * 64));
            co_await pp.read(r.va(2, 0));
            co_await pp.read(r.va(2, 64));
        }(p, rig);
    });
    Kernel &k = rig.m.node(1).kernel();
    FrameNum victim =
        rig.m.node(1).controller().mostInvalidFrame(
            k.clientScomaFrameList());
    ASSERT_NE(victim, kInvalidFrame);
    EXPECT_EQ(k.pageOfClientFrame(victim), rig.gp(2));
}

TEST(ControllerUnit, StatsRegisteredInMachineRegistry)
{
    Rig rig;
    rig.m.run([&](Proc &p) -> CoTask {
        return [](Proc &pp, Rig &r) -> CoTask {
            if (pp.id() == 1)
                co_await pp.read(r.va(0));
            co_return;
        }(p, rig);
    });
    auto &reg = rig.m.metricRegistry();
    EXPECT_TRUE(reg.sealed());
    EXPECT_GT(reg.size(), 20u);
    EXPECT_EQ(reg.get("node1.ctrl.remoteMisses"), 1u);
    EXPECT_EQ(reg.value("ctrl", 1, "remoteMisses"), 1u);
    EXPECT_EQ(reg.sum("ctrl", "remoteMisses"), 1u);
    // One processor fault at the client; the home map-in was served
    // by the page-in protocol, not a local fault.
    EXPECT_EQ(reg.sum("kernel", "faults"), 1u);
    EXPECT_EQ(reg.sum("kernel", "pageInRequestsServed"), 1u);
    // Per-processor counters roll up through the leaf query.
    EXPECT_GT(reg.sumLeaf("proc", "loads"), 0u);
}

TEST(ControllerUnit, UpgradeCountsSeparatelyFromRemoteMisses)
{
    Rig rig;
    rig.m.run([&](Proc &p) -> CoTask {
        return [](Proc &pp, Rig &r) -> CoTask {
            if (pp.id() == 0)
                co_await pp.write(r.va(0)); // home takes the line
            co_await pp.barrier(1);
            if (pp.id() == 1) {
                co_await pp.read(r.va(0));  // remote miss (data moves)
                co_await pp.write(r.va(0)); // upgrade (no data)
            }
        }(p, rig);
    });
    auto &c1 = rig.m.node(1).controller();
    EXPECT_EQ(c1.stats().remoteMisses, 1u);
    EXPECT_EQ(c1.stats().upgrades, 1u);
}

TEST(ControllerUnit, DirClientFrameHintsSpeedInvalidations)
{
    // Section 4.3 design option: with client frame numbers cached in
    // the directory, invalidations carry a reverse-translation hint.
    // The protocol must stay correct, and the invalidation path gets
    // cheaper (hint hit instead of hash walk).
    auto run = [](bool hints) {
        MachineConfig cfg;
        cfg.numNodes = 4;
        cfg.procsPerNode = 1;
        cfg.dirClientFrameHints = hints;
        Machine m(cfg);
        std::uint64_t gsid = m.shmget(0xD1, 16 * kPageBytes);
        m.shmatAll(kSharedVsid, gsid);
        m.run([&](Proc &p) -> CoTask {
            return [](Proc &pp) -> CoTask {
                auto va = [](std::uint64_t off) {
                    return makeVAddr(kSharedVsid, 0, off);
                };
                // All nodes share many lines; node 3 then writes them.
                for (int l = 0; l < 32; ++l)
                    co_await pp.read(va(static_cast<std::uint64_t>(l) *
                                        64));
                co_await pp.barrier(1);
                if (pp.id() == 3) {
                    for (int l = 0; l < 32; ++l)
                        co_await pp.write(
                            va(static_cast<std::uint64_t>(l) * 64));
                }
            }(p);
        });
        // Correctness: node 3 owns every line.
        auto &home = m.node(0).controller();
        GPage gp0 = gsid << kPageNumBits;
        for (std::uint32_t li = 0; li < 32; ++li) {
            auto d = home.directory().line(gp0, li);
            EXPECT_EQ(d.state(), DirState::Owned);
            EXPECT_EQ(d.owner(), 3u);
        }
        return m.metrics().totalCycles;
    };
    Tick without = run(false);
    Tick with = run(true);
    // The hinted run is never slower (it skips PIT hash walks on the
    // invalidation path).
    EXPECT_LE(with, without);
}

} // namespace
} // namespace prism
