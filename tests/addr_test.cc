/**
 * @file
 * Unit tests for address types and line geometry.
 */

#include <gtest/gtest.h>

#include "mem/addr.hh"

namespace prism {
namespace {

TEST(Addr, VirtualComposeDecompose)
{
    VAddr va = makeVAddr(7, 123, 456);
    EXPECT_EQ(va.vsid(), 7u);
    EXPECT_EQ(va.offset(), 456u);
    EXPECT_EQ(va.page(), (7ULL << kPageNumBits) | 123u);
}

TEST(Addr, GlobalComposeDecompose)
{
    GAddr ga = makeGAddr(3, 99, 17);
    EXPECT_EQ(ga.gsid(), 3u);
    EXPECT_EQ(ga.offset(), 17u);
    EXPECT_EQ(ga.page(), (3ULL << kPageNumBits) | 99u);
}

TEST(Addr, PhysicalComposeDecompose)
{
    PAddr pa = makePAddr(42, 4095);
    EXPECT_EQ(pa.frame(), 42u);
    EXPECT_EQ(pa.offset(), 4095u);
    EXPECT_EQ(makePAddr(43, 0).raw, pa.raw + 1);
}

TEST(Addr, PageBoundaries)
{
    VAddr a = makeVAddr(1, 5, kPageBytes - 1);
    VAddr b = makeVAddr(1, 6, 0);
    EXPECT_EQ(a.page() + 1, b.page());
    EXPECT_EQ(a.raw + 1, b.raw);
}

class LineGeometryTest : public ::testing::TestWithParam<std::uint32_t>
{
};

TEST_P(LineGeometryTest, RoundTripsLineIds)
{
    const std::uint32_t line_bytes = GetParam();
    LineGeometry geo(line_bytes);
    EXPECT_EQ(geo.lineBytes(), line_bytes);
    EXPECT_EQ(geo.linesPerPage() * line_bytes, kPageBytes);

    const GPage gp = 0x123456;
    for (std::uint32_t idx = 0; idx < geo.linesPerPage();
         idx += geo.linesPerPage() / 8 + 1) {
        GLine gl = geo.lineOf(gp, idx);
        EXPECT_EQ(geo.pageOf(gl), gp);
        EXPECT_EQ(geo.indexOf(gl), idx);
    }
}

TEST_P(LineGeometryTest, LineIndexFromOffset)
{
    LineGeometry geo(GetParam());
    EXPECT_EQ(geo.lineIndex(0), 0u);
    EXPECT_EQ(geo.lineIndex(GetParam()), 1u);
    EXPECT_EQ(geo.lineIndex(kPageBytes - 1), geo.linesPerPage() - 1);
}

INSTANTIATE_TEST_SUITE_P(LineSizes, LineGeometryTest,
                         ::testing::Values(16u, 32u, 64u, 128u));

TEST(LineGeometry, ConsecutiveAddressesShareLines)
{
    LineGeometry geo(64);
    GAddr a = makeGAddr(1, 0, 0);
    GAddr b = makeGAddr(1, 0, 63);
    GAddr c = makeGAddr(1, 0, 64);
    EXPECT_EQ(geo.lineOf(a), geo.lineOf(b));
    EXPECT_EQ(geo.lineOf(a) + 1, geo.lineOf(c));
}

TEST(LineGeometry, Log2i)
{
    EXPECT_EQ(LineGeometry::log2i(1), 0u);
    EXPECT_EQ(LineGeometry::log2i(64), 6u);
    EXPECT_EQ(LineGeometry::log2i(4096), 12u);
}

} // namespace
} // namespace prism
