/**
 * @file
 * Unit tests for the lock and barrier cost models.
 */

#include <gtest/gtest.h>

#include <vector>

#include "core/sync.hh"
#include "sim/task.hh"

namespace prism {
namespace {

TEST(LockManager, UncontendedAcquireChargesRoundTrip)
{
    EventQueue eq;
    LockManager lm(eq, 300, 140);
    Tick acquired = 0;
    auto w = [&]() -> FireAndForget {
        co_await lm.acquire(7);
        acquired = eq.now();
        lm.release(7);
    };
    w();
    eq.runAll();
    EXPECT_EQ(acquired, 300u);
    EXPECT_EQ(lm.acquires(), 1u);
    EXPECT_EQ(lm.contended(), 0u);
}

TEST(LockManager, ContendedFifoHandoff)
{
    EventQueue eq;
    LockManager lm(eq, 300, 140);
    std::vector<std::pair<int, Tick>> log;
    auto w = [&](int id, Cycles hold) -> FireAndForget {
        co_await lm.acquire(1);
        co_await DelayAwaiter(eq, hold);
        log.emplace_back(id, eq.now());
        lm.release(1);
    };
    w(1, 50);
    w(2, 50);
    w(3, 50);
    eq.runAll();
    ASSERT_EQ(log.size(), 3u);
    EXPECT_EQ(log[0].first, 1);
    EXPECT_EQ(log[0].second, 350u); // 300 acquire + 50 hold
    EXPECT_EQ(log[1].first, 2);
    EXPECT_EQ(log[1].second, 540u); // +140 handoff + 50 hold
    EXPECT_EQ(log[2].first, 3);
    EXPECT_EQ(log[2].second, 730u);
    EXPECT_EQ(lm.contended(), 2u);
}

TEST(LockManager, IndependentLockIds)
{
    EventQueue eq;
    LockManager lm(eq, 10, 5);
    int running = 0, max_running = 0;
    auto w = [&](std::uint64_t id) -> FireAndForget {
        co_await lm.acquire(id);
        ++running;
        max_running = std::max(max_running, running);
        co_await DelayAwaiter(eq, 100);
        --running;
        lm.release(id);
    };
    w(1);
    w(2);
    w(3);
    eq.runAll();
    EXPECT_EQ(max_running, 3); // no false contention
}

TEST(BarrierManager, ReleasesAllTogether)
{
    EventQueue eq;
    BarrierManager bm(eq, 3, 400);
    std::vector<Tick> out;
    auto w = [&](Cycles arrive_at) -> FireAndForget {
        co_await DelayAwaiter(eq, arrive_at);
        co_await bm.arrive(0);
        out.push_back(eq.now());
    };
    w(10);
    w(200);
    w(35);
    eq.runAll();
    ASSERT_EQ(out.size(), 3u);
    // Everyone leaves at the last arrival plus the barrier cost.
    for (Tick t : out)
        EXPECT_EQ(t, 600u);
    EXPECT_EQ(bm.episodes(), 1u);
}

TEST(BarrierManager, EpisodesAutoAdvanceOnSameId)
{
    EventQueue eq;
    BarrierManager bm(eq, 2, 10);
    int rounds_done = 0;
    auto w = [&]() -> FireAndForget {
        for (int r = 0; r < 5; ++r)
            co_await bm.arrive(0);
        ++rounds_done;
    };
    w();
    w();
    eq.runAll();
    EXPECT_EQ(rounds_done, 2);
    EXPECT_EQ(bm.episodes(), 5u);
}

TEST(BarrierManager, SingleParticipantPassesThrough)
{
    EventQueue eq;
    BarrierManager bm(eq, 1, 10);
    bool done = false;
    auto w = [&]() -> FireAndForget {
        co_await bm.arrive(3);
        done = true;
    };
    w();
    eq.runAll();
    EXPECT_TRUE(done);
}

} // namespace
} // namespace prism
