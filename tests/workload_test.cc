/**
 * @file
 * Workload tests: every application runs to completion at Tiny scale,
 * is deterministic, emits sensible reference streams, and (where the
 * host-side computation has a checkable answer) computes correctly.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "core/machine.hh"
#include "workload/apps.hh"
#include "workload/radix.hh"
#include "workload/workload.hh"

namespace prism {
namespace {

MachineConfig
smallCfg()
{
    MachineConfig cfg;
    cfg.numNodes = 4;
    cfg.procsPerNode = 2;
    return cfg;
}

class AppRun : public ::testing::TestWithParam<const char *>
{
};

TEST_P(AppRun, RunsAndMeasuresParallelPhase)
{
    MachineConfig cfg = smallCfg();
    Machine m(cfg);
    auto w = makeApp(GetParam(), AppScale::Tiny);
    RunMetrics r = runWorkload(m, *w);
    EXPECT_GT(r.execCycles, 0u);
    EXPECT_LT(r.execCycles, r.totalCycles + 1);
    EXPECT_GT(r.references, 0u);
    EXPECT_GT(r.framesAllocated, 0u);
    EXPECT_GT(r.avgUtilization, 0.0);
    EXPECT_LE(r.avgUtilization, 1.0);
    // The parallel phase was bracketed.
    EXPECT_GT(m.parallelBeginTick(), 0u);
    // All simulation activity drained.
    EXPECT_EQ(m.eventQueue().pending(), 0u);
}

TEST_P(AppRun, DeterministicExecution)
{
    auto run = [&] {
        MachineConfig cfg = smallCfg();
        Machine m(cfg);
        auto w = makeApp(GetParam(), AppScale::Tiny);
        return runWorkload(m, *w);
    };
    RunMetrics a = run();
    RunMetrics b = run();
    EXPECT_EQ(a.execCycles, b.execCycles) << GetParam();
    EXPECT_EQ(a.references, b.references) << GetParam();
    EXPECT_EQ(a.remoteMisses, b.remoteMisses) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(AllApps, AppRun,
                         ::testing::Values("Barnes", "FFT", "LU", "MP3D",
                                           "Ocean", "Radix", "Water-Nsq",
                                           "Water-Spa"),
                         [](const ::testing::TestParamInfo<const char *>
                                &info) {
                             std::string n = info.param;
                             for (auto &c : n) {
                                 if (c == '-')
                                     c = '_';
                             }
                             return n;
                         });

TEST(Workload, RadixActuallySorts)
{
    MachineConfig cfg = smallCfg();
    Machine m(cfg);
    RadixWorkload w(RadixWorkload::Params{1u << 12, 256, 24, 5});
    runWorkload(m, w);
    const auto &out = w.result();
    ASSERT_EQ(out.size(), 1u << 12);
    EXPECT_TRUE(std::is_sorted(out.begin(), out.end()));
}

TEST(Workload, SizeDescriptionsMatchTable2Format)
{
    for (const auto &app : standardApps(AppScale::Paper)) {
        auto w = app.make();
        EXPECT_EQ(app.name, w->name());
        EXPECT_FALSE(w->sizeDesc().empty());
    }
    // Spot-check the paper's data-set descriptions.
    EXPECT_EQ(makeApp("FFT", AppScale::Paper)->sizeDesc(),
              "65536 complex doubles");
    EXPECT_EQ(makeApp("Radix", AppScale::Paper)->sizeDesc(),
              "1048576 integer keys, radix 1024");
    EXPECT_EQ(makeApp("Water-Nsq", AppScale::Paper)->sizeDesc(),
              "512 molecules, 3 iters");
}

TEST(Workload, SharedPagesSpreadAcrossHomes)
{
    // Round-robin home assignment: after an app runs, every node is
    // home to some shared pages.
    MachineConfig cfg = smallCfg();
    Machine m(cfg);
    auto w = makeApp("Ocean", AppScale::Tiny);
    runWorkload(m, *w);
    for (NodeId n = 0; n < cfg.numNodes; ++n) {
        EXPECT_GT(m.node(n).controller().directory().numPages(), 0u)
            << "node " << n << " homes no pages";
    }
}

TEST(Workload, GlobalArenaAllocatesPageAligned)
{
    MachineConfig cfg = smallCfg();
    Machine m(cfg);
    GlobalArena arena(m, 0xA1, 16 * kPageBytes);
    VAddr a = arena.allocPages(100);
    VAddr b = arena.allocPages(kPageBytes + 1);
    EXPECT_EQ(a.offset(), 0u);
    EXPECT_EQ(b.offset(), 0u);
    EXPECT_NE(a.page(), b.page());
    VAddr c = arena.alloc(8);
    EXPECT_GT(c.raw, b.raw);
}

TEST(Workload, PrivArenaIsPerProcessor)
{
    PrivArena a(0);
    PrivArena b(1);
    VAddr va = a.alloc(64);
    VAddr vb = b.alloc(64);
    EXPECT_NE(va.vsid(), vb.vsid());
    EXPECT_EQ(va.vsid(), kPrivateVsidBase);
}

} // namespace
} // namespace prism
