/**
 * @file
 * End-to-end determinism of the sharded scheduler: for a shard-safe
 * workload, the run report must be a pure function of (config,
 * workload seed) — independent of the shard count and stable across
 * reruns.  The sequential scheduler (`--jobs-intra 1`) keeps its own
 * pre-sharding serialization (global send-order ingress booking), so
 * it is rerun-deterministic but deliberately NOT byte-compared to the
 * sharded runs; see docs/PERFORMANCE.md "Sharded scheduler" for why.
 * Workload-logical metrics (simulated references) are timing-free and
 * must agree across every shard count including 1.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "core/machine.hh"
#include "obs/report.hh"
#include "workload/radix.hh"
#include "workload/workload.hh"

namespace prism {
namespace {

MachineConfig
smallCfg(std::uint32_t jobs_intra)
{
    MachineConfig cfg;
    cfg.numNodes = 8;
    cfg.procsPerNode = 2;
    cfg.jobsIntra = jobs_intra;
    return cfg;
}

struct RunOutput {
    RunMetrics metrics;
    std::string json; //!< serialized report, generatedAt stripped
};

/** One Radix run; the report timestamp is dropped before comparing. */
RunOutput
runRadix(std::uint64_t seed, std::uint32_t jobs_intra)
{
    RadixWorkload::Params p;
    p.keys = 1u << 12;
    p.radix = 64;
    p.keyBits = 18;
    p.seed = seed;
    RadixWorkload w(p);

    Machine m(smallCfg(jobs_intra));
    RunOutput out;
    out.metrics = runWorkload(m, w);

    std::ostringstream os;
    m.report().writeJson(os);
    std::istringstream is(os.str());
    std::string line;
    while (std::getline(is, line)) {
        if (line.find("generatedAt") != std::string::npos)
            continue;
        out.json += line;
        out.json += '\n';
    }
    return out;
}

class ShardDeterminism : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(ShardDeterminism, ReportIndependentOfShardCount)
{
    const std::uint64_t seed = GetParam();

    const RunOutput j1 = runRadix(seed, 1);
    const RunOutput j2 = runRadix(seed, 2);
    const RunOutput j4 = runRadix(seed, 4);
    const RunOutput j8 = runRadix(seed, 8);

    // Sharded runs: byte-identical reports for every shard count.
    EXPECT_EQ(j2.json, j4.json) << "jobsIntra 2 vs 4, seed " << seed;
    EXPECT_EQ(j4.json, j8.json) << "jobsIntra 4 vs 8, seed " << seed;

    // Rerun stability: parallel execution must not leak host-thread
    // timing into the simulation.
    const RunOutput j4b = runRadix(seed, 4);
    EXPECT_EQ(j4.json, j4b.json) << "jobsIntra 4 rerun, seed " << seed;

    // Sequential rerun stability (the pre-sharding contract).
    const RunOutput j1b = runRadix(seed, 1);
    EXPECT_EQ(j1.json, j1b.json) << "jobsIntra 1 rerun, seed " << seed;

    // Workload-logical metrics do not depend on message serialization
    // at all, so they bridge the sequential/sharded divide.
    EXPECT_EQ(j1.metrics.references, j2.metrics.references);
    EXPECT_EQ(j1.metrics.references, j4.metrics.references);
    EXPECT_EQ(j1.metrics.references, j8.metrics.references);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ShardDeterminism,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u,
                                           34u));

} // namespace
} // namespace prism
