/**
 * @file
 * Unit tests for the deterministic event queue and FCFS resources.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <utility>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/rng.hh"

namespace prism {
namespace {

TEST(EventQueue, RunsInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&] { order.push_back(3); });
    eq.schedule(10, [&] { order.push_back(1); });
    eq.schedule(20, [&] { order.push_back(2); });
    eq.runAll();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 30u);
    EXPECT_EQ(eq.eventsExecuted(), 3u);
}

TEST(EventQueue, TiesBreakInSchedulingOrder)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i)
        eq.schedule(5, [&order, i] { order.push_back(i); });
    eq.runAll();
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(EventQueue, EventsMayScheduleAtSameTick)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(7, [&] {
        eq.scheduleIn(0, [&] { ++fired; });
    });
    eq.runAll();
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(eq.now(), 7u);
}

TEST(EventQueue, RunUntilStopsAtBoundaryInclusive)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(10, [&] { ++fired; });
    eq.schedule(20, [&] { ++fired; });
    eq.schedule(21, [&] { ++fired; });
    eq.runUntil(20);
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(eq.pending(), 1u);
}

TEST(EventQueue, RunWhileStopsWhenPredicateHolds)
{
    EventQueue eq;
    int count = 0;
    for (Tick t = 1; t <= 100; ++t)
        eq.schedule(t, [&] { ++count; });
    bool done = eq.runWhile([&] { return count >= 42; });
    EXPECT_TRUE(done);
    EXPECT_EQ(count, 42);
}

TEST(EventQueue, RunWhileReportsDrainWithoutSatisfaction)
{
    EventQueue eq;
    int count = 0;
    eq.schedule(1, [&] { ++count; });
    EXPECT_FALSE(eq.runWhile([&] { return count >= 5; }));
    EXPECT_EQ(count, 1);
}

TEST(EventQueue, RunOneOnEmptyReturnsFalse)
{
    EventQueue eq;
    EXPECT_FALSE(eq.runOne());
}

/**
 * Property/stress test for the hand-rolled heap: N interleaved
 * schedule/scheduleIn calls with heavy same-tick ties, plus callbacks
 * that schedule at the current tick.  The fired order must equal a
 * stable sort of (tick, scheduling order) — FIFO within a tick — and
 * the executed/pending accounting must stay exact.
 */
TEST(EventQueue, StressInterleavedTiesMatchReferenceOrder)
{
    constexpr int kSeeded = 3000;
    Rng rng(0xfeedULL);
    EventQueue eq;

    // Reference model: execution order must equal the global schedule
    // ordered by (tick, scheduling order).  `expected` records every
    // schedule call in call order — including callbacks scheduled
    // dynamically from inside other callbacks — so a stable sort by
    // tick reproduces the queue's (when, seq) tie-break exactly.
    std::vector<std::pair<Tick, int>> expected; // (when, id)
    std::vector<int> fired;
    int next_id = 0;

    for (int i = 0; i < kSeeded; ++i) {
        // Few distinct ticks -> many same-tick ties.
        const Tick when = eq.now() + rng.below(32);
        const int id = next_id++;
        const bool spawn = (id % 5 == 0);
        expected.emplace_back(when, id);
        auto cb = [&eq, &expected, &fired, &next_id, id, spawn] {
            fired.push_back(id);
            if (spawn) {
                // Child at the *current* tick: must run after every
                // event already queued for this tick.
                const int child = next_id++;
                expected.emplace_back(eq.now(), child);
                eq.scheduleIn(0,
                              [&fired, child] { fired.push_back(child); });
            }
        };
        if (id % 2 == 0)
            eq.schedule(when, cb);
        else
            eq.scheduleIn(when - eq.now(), cb);
        // Interleave scheduling with partial dispatch.
        if (id % 11 == 0)
            eq.runOne();
    }

    // Accounting mid-run: everything recorded is either fired or
    // still pending.
    EXPECT_EQ(eq.pending() + fired.size(), expected.size());
    EXPECT_EQ(eq.eventsExecuted(), fired.size());

    eq.runAll();

    EXPECT_EQ(eq.pending(), 0u);
    ASSERT_EQ(fired.size(), expected.size());
    EXPECT_EQ(eq.eventsExecuted(), fired.size());

    std::stable_sort(
        expected.begin(), expected.end(),
        [](const auto &a, const auto &b) { return a.first < b.first; });
    for (std::size_t i = 0; i < fired.size(); ++i)
        EXPECT_EQ(fired[i], expected[i].second) << "position " << i;
}

/**
 * Deterministic replay: two queues fed the identical randomized
 * schedule/dispatch interleaving (including same-tick re-scheduling
 * from inside callbacks) must fire ids in the identical order.
 */
TEST(EventQueue, StressReplayIsDeterministic)
{
    auto drive = [](std::vector<int> &order) {
        Rng rng(0xabcdULL);
        EventQueue eq;
        int next_id = 0;
        for (int round = 0; round < 200; ++round) {
            // Burst of schedules at clustered ticks...
            const int burst = 1 + static_cast<int>(rng.below(8));
            for (int b = 0; b < burst; ++b) {
                const Tick d = rng.below(16);
                const int id = next_id++;
                eq.scheduleIn(d, [&order, &eq, id, d] {
                    order.push_back(id);
                    if (d % 3 == 0) {
                        // Re-schedule at the current tick.
                        eq.scheduleIn(0, [&order, id] {
                            order.push_back(-id);
                        });
                    }
                });
            }
            // ...interleaved with partial dispatch.
            for (std::uint64_t k = rng.below(4); k > 0; --k)
                eq.runOne();
        }
        eq.runAll();
        EXPECT_EQ(eq.pending(), 0u);
    };

    std::vector<int> a, b;
    drive(a);
    drive(b);
    EXPECT_FALSE(a.empty());
    EXPECT_EQ(a, b);
}

/**
 * FIFO-within-tick across slot recycling: after the arena has been
 * through many occupy/release cycles, ties must still fire strictly
 * in scheduling order.
 */
TEST(EventQueue, TiesStayFifoAfterHeavyRecycling)
{
    EventQueue eq;
    // Churn the slot arena and the heap.
    for (int i = 0; i < 5000; ++i) {
        eq.scheduleIn(static_cast<Cycles>(i % 7), [] {});
        eq.runOne();
    }
    std::vector<int> order;
    const Tick t = eq.now() + 10;
    for (int i = 0; i < 100; ++i)
        eq.schedule(t, [&order, i] { order.push_back(i); });
    eq.runAll();
    ASSERT_EQ(order.size(), 100u);
    EXPECT_TRUE(std::is_sorted(order.begin(), order.end()));
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(FcfsResource, UncontendedStartsImmediately)
{
    FcfsResource r;
    EXPECT_EQ(r.acquire(100, 10), 100u);
    EXPECT_EQ(r.nextFree(), 110u);
}

TEST(FcfsResource, BackToBackQueues)
{
    FcfsResource r;
    EXPECT_EQ(r.acquire(0, 10), 0u);
    EXPECT_EQ(r.acquire(0, 10), 10u);
    EXPECT_EQ(r.acquire(5, 10), 20u);
    EXPECT_EQ(r.busyCycles(), 30u);
    EXPECT_EQ(r.grants(), 3u);
}

TEST(FcfsResource, IdleGapThenService)
{
    FcfsResource r;
    r.acquire(0, 10);
    EXPECT_EQ(r.acquire(50, 5), 50u);
    EXPECT_EQ(r.nextFree(), 55u);
}

} // namespace
} // namespace prism
