/**
 * @file
 * Unit tests for the deterministic event queue and FCFS resources.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hh"

namespace prism {
namespace {

TEST(EventQueue, RunsInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&] { order.push_back(3); });
    eq.schedule(10, [&] { order.push_back(1); });
    eq.schedule(20, [&] { order.push_back(2); });
    eq.runAll();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 30u);
    EXPECT_EQ(eq.eventsExecuted(), 3u);
}

TEST(EventQueue, TiesBreakInSchedulingOrder)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i)
        eq.schedule(5, [&order, i] { order.push_back(i); });
    eq.runAll();
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(EventQueue, EventsMayScheduleAtSameTick)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(7, [&] {
        eq.scheduleIn(0, [&] { ++fired; });
    });
    eq.runAll();
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(eq.now(), 7u);
}

TEST(EventQueue, RunUntilStopsAtBoundaryInclusive)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(10, [&] { ++fired; });
    eq.schedule(20, [&] { ++fired; });
    eq.schedule(21, [&] { ++fired; });
    eq.runUntil(20);
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(eq.pending(), 1u);
}

TEST(EventQueue, RunWhileStopsWhenPredicateHolds)
{
    EventQueue eq;
    int count = 0;
    for (Tick t = 1; t <= 100; ++t)
        eq.schedule(t, [&] { ++count; });
    bool done = eq.runWhile([&] { return count >= 42; });
    EXPECT_TRUE(done);
    EXPECT_EQ(count, 42);
}

TEST(EventQueue, RunWhileReportsDrainWithoutSatisfaction)
{
    EventQueue eq;
    int count = 0;
    eq.schedule(1, [&] { ++count; });
    EXPECT_FALSE(eq.runWhile([&] { return count >= 5; }));
    EXPECT_EQ(count, 1);
}

TEST(EventQueue, RunOneOnEmptyReturnsFalse)
{
    EventQueue eq;
    EXPECT_FALSE(eq.runOne());
}

TEST(FcfsResource, UncontendedStartsImmediately)
{
    FcfsResource r;
    EXPECT_EQ(r.acquire(100, 10), 100u);
    EXPECT_EQ(r.nextFree(), 110u);
}

TEST(FcfsResource, BackToBackQueues)
{
    FcfsResource r;
    EXPECT_EQ(r.acquire(0, 10), 0u);
    EXPECT_EQ(r.acquire(0, 10), 10u);
    EXPECT_EQ(r.acquire(5, 10), 20u);
    EXPECT_EQ(r.busyCycles(), 30u);
    EXPECT_EQ(r.grants(), 3u);
}

TEST(FcfsResource, IdleGapThenService)
{
    FcfsResource r;
    r.acquire(0, 10);
    EXPECT_EQ(r.acquire(50, 5), 50u);
    EXPECT_EQ(r.nextFree(), 55u);
}

} // namespace
} // namespace prism
