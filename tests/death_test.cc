/**
 * @file
 * Death tests: internal-invariant violations must panic loudly
 * (gem5-style panic = abort), and user errors must be caught.
 */

#include <gtest/gtest.h>

#include "core/machine.hh"
#include "core/sync.hh"
#include "os/frame_pool.hh"
#include "sim/event_queue.hh"
#include "workload/workload.hh"

namespace prism {
namespace {

TEST(Death, SchedulingInThePastPanics)
{
    EXPECT_DEATH(
        {
            EventQueue eq;
            eq.schedule(10, [] {});
            eq.runOne();
            eq.schedule(5, [] {});
        },
        "scheduled in the past");
}

TEST(Death, ReleasingUnheldLockPanics)
{
    EXPECT_DEATH(
        {
            EventQueue eq;
            LockManager lm(eq, 1, 1);
            lm.release(42);
        },
        "unheld lock");
}

TEST(Death, GlobalArenaExhaustionPanics)
{
    EXPECT_DEATH(
        {
            MachineConfig cfg;
            cfg.numNodes = 2;
            cfg.procsPerNode = 1;
            Machine m(cfg);
            GlobalArena arena(m, 1, 2 * kPageBytes);
            arena.alloc(kPageBytes);
            arena.alloc(kPageBytes);
            arena.alloc(1); // over the segment size
        },
        "arena exhausted");
}

TEST(Death, EmptyCoTaskStartPanics)
{
    EXPECT_DEATH(
        {
            CoTask t;
            t.start();
        },
        "empty CoTask");
}

TEST(Death, FramePoolDoubleReleasePanics)
{
    EXPECT_DEATH(
        {
            FramePool p(0);
            p.release(0); // nothing was allocated
        },
        "empty pool");
}

TEST(Death, TooManyNodesIsFatal)
{
    EXPECT_DEATH(
        {
            MachineConfig cfg;
            cfg.numNodes = 100; // sharer bitmasks are 64-bit
            Machine m(cfg);
        },
        "node count");
}

} // namespace
} // namespace prism
