/**
 * @file
 * Death tests: internal-invariant violations must panic loudly
 * (gem5-style panic = abort), and user errors must be caught.
 */

#include <gtest/gtest.h>

#include "coherence/directory.hh"
#include "coherence/msg.hh"
#include "coherence/pit.hh"
#include "core/machine.hh"
#include "core/sync.hh"
#include "os/frame_pool.hh"
#include "sim/event_queue.hh"
#include "workload/workload.hh"

namespace prism {
namespace {

TEST(Death, SchedulingInThePastPanics)
{
    EXPECT_DEATH(
        {
            EventQueue eq;
            eq.schedule(10, [] {});
            eq.runOne();
            eq.schedule(5, [] {});
        },
        "scheduled in the past");
}

TEST(Death, ReleasingUnheldLockPanics)
{
    EXPECT_DEATH(
        {
            EventQueue eq;
            LockManager lm(eq, 1, 1);
            lm.release(42);
        },
        "unheld lock");
}

TEST(Death, GlobalArenaExhaustionPanics)
{
    EXPECT_DEATH(
        {
            MachineConfig cfg;
            cfg.numNodes = 2;
            cfg.procsPerNode = 1;
            Machine m(cfg);
            GlobalArena arena(m, 1, 2 * kPageBytes);
            arena.alloc(kPageBytes);
            arena.alloc(kPageBytes);
            arena.alloc(1); // over the segment size
        },
        "arena exhausted");
}

TEST(Death, EmptyCoTaskStartPanics)
{
    EXPECT_DEATH(
        {
            CoTask t;
            t.start();
        },
        "empty CoTask");
}

TEST(Death, FramePoolDoubleReleasePanics)
{
    EXPECT_DEATH(
        {
            FramePool p(0);
            p.release(0); // nothing was allocated
        },
        "empty pool");
}

TEST(Death, PitDoubleInstallPanics)
{
    EXPECT_DEATH(
        {
            Pit pit(1, 1);
            pit.installLocal(3, 64);
            pit.installLocal(3, 64); // frame 3 is already mapped
        },
        "PIT entry already present");
}

TEST(Death, PitAbsentRemovePanics)
{
    EXPECT_DEATH(
        {
            Pit pit(1, 1);
            pit.remove(7); // never installed
        },
        "removing absent PIT entry");
}

TEST(Death, DirectoryAdoptPresentPagePanics)
{
    EXPECT_DEATH(
        {
            Directory dir(8, 2, 22, 64, 8);
            dir.createPage(0x42, DirState::Uncached, kInvalidNode);
            dir.adoptPage(0x42, std::vector<DirEntry>(64));
        },
        "adopting an already-present page");
}

TEST(Death, DirectoryReleaseAbsentPagePanics)
{
    EXPECT_DEATH(
        {
            Directory dir(8, 2, 22, 64, 8);
            dir.releasePage(0x42); // never created
        },
        "releasing an absent page");
}

TEST(Death, RegistryPointingAtSelfPanics)
{
    // A static home whose registry names itself as dynamic home while
    // its directory lacks the page would forward the request back to
    // itself forever; the controller must panic instead.
    EXPECT_DEATH(
        {
            MachineConfig cfg;
            cfg.numNodes = 1;
            cfg.procsPerNode = 1;
            Machine m(cfg);
            auto &ctrl = m.node(0).controller();
            ctrl.installHomeMapping(1, 0); // registry_[0] = self
            ctrl.directory().removePage(0);
            Msg req;
            req.type = MsgType::ReqS;
            req.src = 0;
            req.dst = 0;
            req.requester = 0;
            req.gpage = 0;
            req.lineIdx = 0;
            ctrl.onMessage(std::move(req));
            m.eventQueue().runAll();
        },
        "registry points at");
}

TEST(Death, TooManyNodesIsFatal)
{
    // The fatal must name the limit and where it lives so the user
    // can find the knob instead of guessing.
    EXPECT_DEATH(
        {
            MachineConfig cfg;
            cfg.numNodes = kMaxNodes + 1;
            Machine m(cfg);
        },
        "kMaxNodes");
}

TEST(Death, ZeroProcsPerNodeIsFatal)
{
    EXPECT_DEATH(
        {
            MachineConfig cfg;
            cfg.procsPerNode = 0;
            Machine m(cfg);
        },
        "procsPerNode");
}

TEST(Death, TooManyProcsIsFatal)
{
    EXPECT_DEATH(
        {
            MachineConfig cfg;
            cfg.numNodes = 1024;
            cfg.procsPerNode = 512; // 512K procs > kMaxProcs
            Machine m(cfg);
        },
        "processor");
}

} // namespace
} // namespace prism
