/**
 * @file
 * Unit tests for the Page Information Table.
 */

#include <gtest/gtest.h>

#include "coherence/pit.hh"

namespace prism {
namespace {

constexpr std::uint32_t kLines = 64;

TEST(Pit, InstallAndForwardLookup)
{
    Pit pit(2, 18);
    PitEntry &e = pit.install(5, 0x100, 1, 1, 9, PageMode::Scoma, kLines,
                              FgTag::Invalid);
    EXPECT_EQ(e.gpage, 0x100u);
    EXPECT_EQ(e.dynHome, 1u);
    EXPECT_EQ(e.homeFrameHint, 9u);
    ASSERT_NE(pit.entry(5), nullptr);
    EXPECT_EQ(pit.entry(5)->mode, PageMode::Scoma);
    EXPECT_NE(pit.entry(5)->tags, nullptr);
    EXPECT_EQ(pit.entry(5)->tags->get(0), FgTag::Invalid);
}

TEST(Pit, LaNumaEntriesHaveNoTags)
{
    Pit pit(2, 18);
    pit.install(7, 0x200, 2, 2, 3, PageMode::LaNuma, kLines,
                FgTag::Invalid);
    EXPECT_EQ(pit.entry(7)->tags, nullptr);
}

TEST(Pit, ReverseWithMatchingHintAvoidsHash)
{
    Pit pit(2, 18);
    pit.install(5, 0x100, 1, 1, 9, PageMode::Scoma, kLines,
                FgTag::Invalid);
    bool hash = true;
    EXPECT_EQ(pit.reverse(0x100, 5, hash), 5u);
    EXPECT_FALSE(hash);
    EXPECT_EQ(pit.reverseCycles(false), 2u);
}

TEST(Pit, ReverseWithWrongHintFallsBackToHash)
{
    Pit pit(2, 18);
    pit.install(5, 0x100, 1, 1, 9, PageMode::Scoma, kLines,
                FgTag::Invalid);
    pit.install(6, 0x101, 1, 1, 9, PageMode::Scoma, kLines,
                FgTag::Invalid);
    bool hash = false;
    EXPECT_EQ(pit.reverse(0x100, 6, hash), 5u); // hint points elsewhere
    EXPECT_TRUE(hash);
    EXPECT_EQ(pit.reverseCycles(true), 20u);
}

TEST(Pit, ReverseMissingPage)
{
    Pit pit(2, 18);
    bool hash = false;
    EXPECT_EQ(pit.reverse(0x999, kInvalidFrame, hash), kInvalidFrame);
    EXPECT_TRUE(hash);
}

TEST(Pit, RemoveClearsBothDirections)
{
    Pit pit(2, 18);
    pit.install(5, 0x100, 1, 1, 9, PageMode::Scoma, kLines,
                FgTag::Invalid);
    pit.remove(5);
    EXPECT_EQ(pit.entry(5), nullptr);
    bool hash = false;
    EXPECT_EQ(pit.reverse(0x100, 5, hash), kInvalidFrame);
    EXPECT_EQ(pit.frameOf(0x100), kInvalidFrame);
}

TEST(Pit, FirewallDefaultsOpen)
{
    Pit pit(2, 18);
    pit.install(5, 0x100, 1, 1, 9, PageMode::Scoma, kLines,
                FgTag::Invalid);
    EXPECT_TRUE(pit.writeAllowed(5, 3));
    EXPECT_TRUE(pit.writeAllowed(99, 3)); // unknown frame: permissive
}

TEST(Pit, FirewallFiltersWildWrites)
{
    Pit pit(2, 18);
    PitEntry &e = pit.install(5, 0x100, 1, 1, 9, PageMode::Scoma, kLines,
                              FgTag::Invalid);
    e.capabilities.add(1);
    e.capabilities.add(2);
    EXPECT_TRUE(pit.writeAllowed(5, 1));
    EXPECT_TRUE(pit.writeAllowed(5, 2));
    EXPECT_FALSE(pit.writeAllowed(5, 3));
    pit.noteRejectedWrite();
    EXPECT_EQ(pit.rejectedWrites(), 1u);
}

TEST(Pit, LocalEntriesExcludedFromGlobalFrames)
{
    Pit pit(2, 18);
    pit.installLocal(1, kLines);
    pit.install(2, 0x100, 0, 0, 2, PageMode::Scoma, kLines,
                FgTag::Exclusive);
    EXPECT_EQ(pit.globalFrames().size(), 1u);
    EXPECT_EQ(pit.allFrames().size(), 2u);
    EXPECT_EQ(pit.globalFrames()[0], 2u);
}

TEST(LineMaskTest, PopcountTracksDistinctLines)
{
    LineMask m(128);
    EXPECT_EQ(m.popcount(), 0u);
    m.set(0);
    m.set(0);
    m.set(64);
    m.set(127);
    EXPECT_EQ(m.popcount(), 3u);
    EXPECT_TRUE(m.test(64));
    EXPECT_FALSE(m.test(65));
}

} // namespace
} // namespace prism
