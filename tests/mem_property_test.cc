/**
 * @file
 * Property suite for the memory-path fast structures.
 *
 * The packed SoA cache tag store and the array-backed LRU TLB replaced
 * simpler implementations under a bit-identical-behavior contract: the
 * rewrite may change time and space, never outcomes.  This suite
 * enforces the contract mechanically by driving the production
 * structure and the retired implementation (tests/mem_ref_models.hh)
 * with the same randomized op stream and demanding identical
 * observables at every step: hit/miss results, chosen victims and
 * their order, LRU tie-breaks, residency/occupancy queries, counters
 * and full snapshots.
 *
 * Seeds 1..16 run inline; tests/CMakeLists.txt additionally registers
 * 16 ctest entries that re-run the sweep tests under
 * PRISM_PROPERTY_SEED, mirroring the coherence property suite.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <random>
#include <vector>

#include "mem/cache.hh"
#include "mem/tlb.hh"
#include "mem_ref_models.hh"
#include "os/frame_pool.hh"
#include "os/page_table.hh"
#include "workload/workload.hh"

namespace prism {
namespace {

struct CacheGeom {
    std::uint32_t sizeBytes;
    std::uint32_t assoc;
    std::uint32_t lineBytes;
};

// Small and skewed geometries: few sets force conflict evictions,
// assoc 1 exercises the degenerate LRU, 32 B lines make pages span
// more sets than exist (the invalidateFrame full-sweep path).
constexpr CacheGeom kGeoms[] = {
    {256, 2, 64},   // 2 sets
    {512, 1, 64},   // direct-mapped
    {1024, 4, 64},  // 4 sets
    {2048, 8, 32},  // 8 sets, small lines
    {4096, 2, 64},  // 32 sets
    {1024, 16, 64}, // fully-associative single set
};

std::uint64_t
pickFrame(std::mt19937_64 &rng)
{
    // Real low frames plus imaginary LA-NUMA frames, biased so lines
    // of one frame collide in the cache often.
    const std::uint64_t r = rng() % 10;
    if (r < 7)
        return r % 5;
    return kImaginaryFrameBase + (r - 7);
}

void
driveCachePair(std::uint64_t seed, std::uint32_t ops)
{
    std::mt19937_64 rng(seed);
    const CacheGeom &g = kGeoms[seed % std::size(kGeoms)];
    SetAssocCache dut(g.sizeBytes, g.assoc, g.lineBytes);
    testref::RefCache ref(g.sizeBytes, g.assoc, g.lineBytes);

    auto randAddr = [&]() {
        const std::uint64_t frame = pickFrame(rng);
        const std::uint64_t off = rng() % kPageBytes;
        return (frame << kPageShift) | off;
    };
    // All five valid line states: the tag store is protocol-agnostic
    // payload storage, so Owned/Forward (MOESI/MESIF) must round-trip
    // through lookups, victims and snapshots like the classic three.
    const Mesi valid[] = {Mesi::Shared, Mesi::Exclusive, Mesi::Modified,
                          Mesi::Owned, Mesi::Forward};

    for (std::uint32_t i = 0; i < ops; ++i) {
        const std::uint64_t paddr = randAddr();
        switch (rng() % 8) {
          case 0: { // lookup
            ASSERT_EQ(dut.lookup(paddr), ref.lookup(paddr)) << "op " << i;
            break;
          }
          case 1: { // touch (LRU reorder; no-op when absent)
            dut.touch(paddr);
            ref.touch(paddr);
            break;
          }
          case 2: { // setState on a present line
            if (ref.lookup(paddr) == Mesi::Invalid)
                break;
            const Mesi s = (rng() % 4 == 0)
                               ? Mesi::Invalid
                               : valid[rng() % std::size(valid)];
            dut.setState(paddr, s);
            ref.setState(paddr, s);
            break;
          }
          case 3:
          case 4: { // insert: victims must agree exactly
            const Mesi s = valid[rng() % std::size(valid)];
            auto pd = dut.peekVictim(paddr);
            auto pr = ref.peekVictim(paddr);
            ASSERT_EQ(pd.has_value(), pr.has_value()) << "op " << i;
            auto vd = dut.insert(paddr, s);
            auto vr = ref.insert(paddr, s);
            ASSERT_EQ(vd.has_value(), vr.has_value()) << "op " << i;
            if (vd) {
                ASSERT_EQ(vd->lineAddr, vr->lineAddr) << "op " << i;
                ASSERT_EQ(vd->state, vr->state) << "op " << i;
                ASSERT_TRUE(pd);
                ASSERT_EQ(pd->lineAddr, vd->lineAddr) << "op " << i;
            }
            break;
          }
          case 5: { // invalidate
            ASSERT_EQ(dut.invalidate(paddr), ref.invalidate(paddr))
                << "op " << i;
            break;
          }
          case 6: { // invalidateFrame: victim order matters
            const FrameNum f = paddr >> kPageShift;
            auto vd = dut.invalidateFrame(f);
            auto vr = ref.invalidateFrame(f);
            ASSERT_EQ(vd.size(), vr.size()) << "op " << i;
            for (std::size_t k = 0; k < vd.size(); ++k) {
                ASSERT_EQ(vd[k].lineAddr, vr[k].lineAddr)
                    << "op " << i << " victim " << k;
                ASSERT_EQ(vd[k].state, vr[k].state)
                    << "op " << i << " victim " << k;
            }
            break;
          }
          case 7: { // residency / occupancy queries
            const FrameNum f = paddr >> kPageShift;
            ASSERT_EQ(dut.anyInFrame(f), ref.anyInFrame(f)) << "op " << i;
            ASSERT_EQ(dut.validLines(), ref.validLines()) << "op " << i;
            break;
          }
        }
        if (i % 64 == 63) {
            auto sd = dut.snapshot();
            auto sr = ref.snapshot();
            ASSERT_EQ(sd, sr) << "snapshot mismatch after op " << i;
        }
    }
    ASSERT_EQ(dut.snapshot(), ref.snapshot());
    ASSERT_EQ(dut.validLines(), ref.validLines());
}

void
driveTlbPair(std::uint64_t seed, std::uint32_t ops)
{
    std::mt19937_64 rng(seed);
    const std::uint32_t cap = 2 + static_cast<std::uint32_t>(seed % 7);
    Tlb dut(cap);
    testref::RefTlb ref(cap);

    // A vp space ~4x capacity across two segments keeps the TLBs full
    // and evicting; frames are arbitrary distinct values.
    const std::uint32_t vps = 4 * cap;
    auto randVp = [&]() -> VPage {
        const std::uint64_t n = rng() % vps;
        const std::uint64_t vsid = (n % 2) ? 0x123 : kSharedVsid;
        return (vsid << kPageNumBits) | (n / 2);
    };

    for (std::uint32_t i = 0; i < ops; ++i) {
        const VPage vp = randVp();
        switch (rng() % 8) {
          case 0:
          case 1:
          case 2: { // lookup: result and counters must agree
            ASSERT_EQ(dut.lookup(vp), ref.lookup(vp)) << "op " << i;
            break;
          }
          case 3:
          case 4:
          case 5: { // insert (update-in-place or LRU eviction)
            const FrameNum f = rng() % 1000;
            dut.insert(vp, f);
            ref.insert(vp, f);
            break;
          }
          case 6: { // shootdown
            dut.invalidate(vp);
            ref.invalidate(vp);
            break;
          }
          case 7: {
            if (rng() % 16 == 0) { // rare full flush
                dut.flush();
                ref.flush();
            }
            break;
          }
        }
        ASSERT_EQ(dut.size(), ref.size()) << "op " << i;
        ASSERT_EQ(dut.hits(), ref.hits()) << "op " << i;
        ASSERT_EQ(dut.misses(), ref.misses()) << "op " << i;
    }
    // Drain both through an identical probe sweep: any hidden content
    // divergence surfaces as a hit/miss or frame mismatch here.
    for (std::uint32_t n = 0; n < vps; ++n) {
        const VPage vp =
            (((n % 2) ? 0x123ULL : kSharedVsid) << kPageNumBits) | (n / 2);
        ASSERT_EQ(dut.lookup(vp), ref.lookup(vp)) << "probe vp " << n;
    }
    ASSERT_EQ(dut.hits(), ref.hits());
    ASSERT_EQ(dut.misses(), ref.misses());
}

void
drivePageTablePair(std::uint64_t seed, std::uint32_t ops)
{
    std::mt19937_64 rng(seed);
    PageTable dut;
    std::unordered_map<VPage, Pte> ref;

    // Several segments; page numbers both dense and chunk-crossing.
    auto randVp = [&]() -> VPage {
        const std::uint64_t vsid = 0x100 + rng() % 3;
        const std::uint64_t pnum =
            (rng() % 2) ? rng() % 64 : 1000 + rng() % 2200;
        return (vsid << kPageNumBits) | pnum;
    };
    const PageMode modes[] = {PageMode::Local, PageMode::Scoma,
                              PageMode::LaNuma, PageMode::CcNuma};

    for (std::uint32_t i = 0; i < ops; ++i) {
        const VPage vp = randVp();
        switch (rng() % 4) {
          case 0:
          case 1: {
            const FrameNum f = rng() % 5000;
            const PageMode m = modes[rng() % std::size(modes)];
            dut.map(vp, f, m);
            ref[vp] = Pte{f, m};
            break;
          }
          case 2: {
            dut.unmap(vp);
            ref.erase(vp);
            break;
          }
          case 3: {
            const Pte *p = dut.lookup(vp);
            auto it = ref.find(vp);
            ASSERT_EQ(p != nullptr, it != ref.end()) << "op " << i;
            if (p) {
                ASSERT_EQ(p->frame, it->second.frame) << "op " << i;
                ASSERT_EQ(p->mode, it->second.mode) << "op " << i;
            }
            ASSERT_EQ(dut.mapped(vp), it != ref.end()) << "op " << i;
            break;
          }
        }
        ASSERT_EQ(dut.size(), ref.size()) << "op " << i;
    }
}

TEST(MemProperty, CacheMatchesReferenceAcrossSeeds)
{
    for (std::uint64_t seed = 1; seed <= 16; ++seed) {
        SCOPED_TRACE("seed=" + std::to_string(seed));
        driveCachePair(seed, 4000);
    }
}

TEST(MemProperty, TlbMatchesReferenceAcrossSeeds)
{
    for (std::uint64_t seed = 1; seed <= 16; ++seed) {
        SCOPED_TRACE("seed=" + std::to_string(seed));
        driveTlbPair(seed, 4000);
    }
}

TEST(MemProperty, PageTableMatchesReferenceAcrossSeeds)
{
    for (std::uint64_t seed = 1; seed <= 16; ++seed) {
        SCOPED_TRACE("seed=" + std::to_string(seed));
        drivePageTablePair(seed, 4000);
    }
}

/**
 * Extra-seed sweep re-run under ctest with PRISM_PROPERTY_SEED, one
 * entry per seed (see tests/CMakeLists.txt).
 */
TEST(MemSeedSweep, RandomOpsMatchReference)
{
    const char *env = std::getenv("PRISM_PROPERTY_SEED");
    if (!env)
        GTEST_SKIP() << "PRISM_PROPERTY_SEED not set";
    SCOPED_TRACE("PRISM_PROPERTY_SEED=" + std::string(env));
    const std::uint64_t seed =
        1000 + static_cast<std::uint64_t>(std::strtoull(env, nullptr, 10));
    driveCachePair(seed, 8000);
    driveTlbPair(seed, 8000);
    drivePageTablePair(seed, 8000);
}

} // namespace
} // namespace prism
