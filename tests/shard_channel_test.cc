/**
 * @file
 * Property tests for the sharded network path (sim/shard.hh +
 * net/network.hh): cross-shard delivery must stay FIFO per (source,
 * destination) pair and timestamp-monotonic per pair, for any window
 * interleaving — the ordering contract the coherence protocol relies
 * on, now re-established across shard boundaries by the per-
 * destination ingress pumps.  Jitter requires the sequential
 * scheduler, and the Machine must enforce that fallback itself.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "core/machine.hh"
#include "net/network.hh"
#include "sim/rng.hh"
#include "sim/shard.hh"

namespace prism {
namespace {

/**
 * A miniature coordinator: the same window protocol as
 * Machine::runShardedLoop, driven single-threaded (the protocol is
 * thread-agnostic; threads only add wall-clock overlap).
 */
class ShardHarness
{
  public:
    ShardHarness(unsigned shards, std::uint32_t num_nodes,
                 const Network::Params &p)
        : queues_(shards), net_(queues_[0], num_nodes, p),
          lookahead_(p.oneWayLatency + p.controlOccupancy)
    {
        std::vector<EventQueue *> qs;
        std::vector<std::uint32_t> shard_of(num_nodes);
        for (auto &q : queues_)
            qs.push_back(&q);
        for (std::uint32_t n = 0; n < num_nodes; ++n)
            shard_of[n] = n * shards / num_nodes;
        shardOf_ = shard_of;
        net_.configureSharding(qs, std::move(shard_of));
    }

    Network &net() { return net_; }
    EventQueue &queueOfNode(NodeId n) { return queues_[shardOf_[n]]; }

    /** Windows of [W, W+L) until every queue and the fabric are dry. */
    void
    run()
    {
        Tick w = 0;
        for (;;) {
            Tick min_next = kTickMax;
            for (auto &q : queues_)
                min_next = std::min(min_next, q.nextEventTick());
            if (min_next == kTickMax) {
                if (net_.shardTrafficQuiescent())
                    break;
            } else if (min_next > w) {
                w = min_next;
            }
            const Tick limit = w + lookahead_;
            for (auto &q : queues_) {
                while (q.nextEventTick() < limit)
                    q.runOne();
            }
            net_.drainShardChannel();
            net_.foldShardCounters();
        }
        net_.foldShardHistograms();
    }

  private:
    std::vector<EventQueue> queues_;
    std::vector<std::uint32_t> shardOf_;
    Network net_;
    Cycles lookahead_;
};

class ShardedNetwork
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, unsigned>>
{
};

TEST_P(ShardedNetwork, FifoAndMonotonePerPairUnderRandomTraffic)
{
    const std::uint64_t seed = std::get<0>(GetParam());
    const unsigned shards = std::get<1>(GetParam());
    constexpr std::uint32_t kNodes = 8;

    // One aggregate captured by pointer: event callbacks live in a
    // small inline buffer (kEventCallbackBytes), so captures must stay
    // lean.
    struct Ctx {
        ShardHarness h;
        std::map<std::pair<NodeId, NodeId>, std::uint64_t> nextSend;
        std::map<std::pair<NodeId, NodeId>, std::uint64_t> nextRecv;
        std::map<std::pair<NodeId, NodeId>, Tick> lastDeliver;
        int fifoViolations = 0;
        int monotoneViolations = 0;
    };
    Network::Params params;
    Ctx ctx{ShardHarness(shards, kNodes, params), {}, {}, {}, 0, 0};
    Ctx *c = &ctx;
    Rng rng(seed);

    // Randomized bursts: each burst schedules send events at staggered
    // ticks on the *source's* shard queue (the sharded-send contract:
    // send runs on the shard owning the source node).
    Tick base = 0;
    for (int burst = 0; burst < 50; ++burst) {
        const int n = 1 + static_cast<int>(rng.below(20));
        for (int i = 0; i < n; ++i) {
            const NodeId src = static_cast<NodeId>(rng.below(kNodes));
            const NodeId dst = static_cast<NodeId>(rng.below(kNodes));
            const MsgSize size = static_cast<MsgSize>(rng.below(3));
            const Tick at = base + rng.below(200);
            c->h.queueOfNode(src).schedule(at, [c, src, dst, size] {
                // FIFO position is claimed at send time: sends fire in
                // tick order, not in the order this loop staged them.
                const std::uint64_t seq =
                    c->nextSend[std::make_pair(src, dst)]++;
                c->h.net().send(src, dst, size, [c, src, dst, seq] {
                    const auto key = std::make_pair(src, dst);
                    if (c->nextRecv[key] != seq)
                        ++c->fifoViolations;
                    c->nextRecv[key] = seq + 1;
                    const Tick now = c->h.queueOfNode(dst).now();
                    if (now < c->lastDeliver[key])
                        ++c->monotoneViolations;
                    c->lastDeliver[key] = now;
                });
            });
        }
        base += rng.below(300);
    }
    c->h.run();

    EXPECT_EQ(c->fifoViolations, 0);
    EXPECT_EQ(c->monotoneViolations, 0);
    for (auto &[key, sent] : c->nextSend)
        EXPECT_EQ(c->nextRecv[key], sent)
            << "src " << key.first << " dst " << key.second;
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndShards, ShardedNetwork,
    ::testing::Combine(::testing::Values(1u, 2u, 3u, 4u, 5u),
                       ::testing::Values(2u, 4u, 8u)));

/** Identical traffic must deliver identically for any shard count. */
TEST(ShardedNetwork, DeliveryScheduleIsShardCountInvariant)
{
    constexpr std::uint32_t kNodes = 8;
    auto trace = [&](unsigned shards) {
        Network::Params params;
        ShardHarness h(shards, kNodes, params);
        std::vector<std::tuple<NodeId, NodeId, Tick>> deliveries;
        Rng rng(42);
        for (int i = 0; i < 400; ++i) {
            const NodeId src = static_cast<NodeId>(rng.below(kNodes));
            const NodeId dst = static_cast<NodeId>(rng.below(kNodes));
            const MsgSize size = static_cast<MsgSize>(rng.below(3));
            const Tick at = rng.below(4000);
            h.queueOfNode(src).schedule(at, [&h, &deliveries, src, dst,
                                             size] {
                h.net().send(src, dst, size, [&h, &deliveries, src, dst] {
                    deliveries.emplace_back(
                        src, dst, h.queueOfNode(dst).now());
                });
            });
        }
        h.run();
        // Normalize cross-pair interleavings: per-destination booking
        // order is the contract, global vector order is not.
        std::sort(deliveries.begin(), deliveries.end());
        return deliveries;
    };

    const auto two = trace(2);
    const auto four = trace(4);
    const auto eight = trace(8);
    EXPECT_EQ(two, four);
    EXPECT_EQ(four, eight);
}

/** Jitter fuzzing requires the sequential scheduler: Machine falls
 *  back to one shard and says so rather than silently losing the
 *  per-pair clamping that jitter relies on. */
TEST(ShardedNetwork, JitterForcesSequentialFallback)
{
    MachineConfig cfg;
    cfg.numNodes = 4;
    cfg.procsPerNode = 2;
    cfg.jobsIntra = 4;
    cfg.netJitterMax = 16;
    Machine m(cfg);
    EXPECT_EQ(m.numShards(), 1u);
}

/** Without jitter the knob takes effect, clamped to the node count. */
TEST(ShardedNetwork, JobsIntraShardsTheMachine)
{
    MachineConfig cfg;
    cfg.numNodes = 4;
    cfg.procsPerNode = 2;
    cfg.jobsIntra = 8;
    Machine m(cfg);
    EXPECT_EQ(m.numShards(), 4u);
    for (NodeId n = 0; n < 4; ++n)
        EXPECT_EQ(m.shardOfNode(n), n);
    EXPECT_GT(m.lookahead(), 0u);
}

} // namespace
} // namespace prism
