/**
 * @file
 * Unit tests for the TLB model.
 */

#include <gtest/gtest.h>

#include "mem/tlb.hh"

namespace prism {
namespace {

TEST(Tlb, MissThenHit)
{
    Tlb t(4);
    EXPECT_EQ(t.lookup(100), kInvalidFrame);
    t.insert(100, 7);
    EXPECT_EQ(t.lookup(100), 7u);
    EXPECT_EQ(t.hits(), 1u);
    EXPECT_EQ(t.misses(), 1u);
}

TEST(Tlb, LruEvictionAtCapacity)
{
    Tlb t(2);
    t.insert(1, 11);
    t.insert(2, 22);
    EXPECT_EQ(t.lookup(1), 11u); // 1 becomes MRU
    t.insert(3, 33);             // evicts 2
    EXPECT_EQ(t.lookup(2), kInvalidFrame);
    EXPECT_EQ(t.lookup(1), 11u);
    EXPECT_EQ(t.lookup(3), 33u);
    EXPECT_EQ(t.size(), 2u);
}

TEST(Tlb, ReinsertUpdatesWithoutEviction)
{
    Tlb t(2);
    t.insert(1, 11);
    t.insert(2, 22);
    t.insert(1, 99); // update in place
    EXPECT_EQ(t.size(), 2u);
    EXPECT_EQ(t.lookup(1), 99u);
    EXPECT_EQ(t.lookup(2), 22u);
}

TEST(Tlb, InvalidateSingleEntry)
{
    Tlb t(4);
    t.insert(5, 50);
    t.insert(6, 60);
    t.invalidate(5);
    EXPECT_EQ(t.lookup(5), kInvalidFrame);
    EXPECT_EQ(t.lookup(6), 60u);
}

TEST(Tlb, FlushClearsEverything)
{
    Tlb t(8);
    for (VPage vp = 0; vp < 8; ++vp)
        t.insert(vp, vp * 10);
    t.flush();
    EXPECT_EQ(t.size(), 0u);
    for (VPage vp = 0; vp < 8; ++vp)
        EXPECT_EQ(t.lookup(vp), kInvalidFrame);
}

} // namespace
} // namespace prism
