/**
 * @file
 * Tests for the random-schedule explorer (check/explorer): clean
 * protocol runs stay clean under heavy jitter and page-mode flips, a
 * deliberately broken protocol (homes skipping an invalidation) is
 * caught by the oracle and shrinks to a small deterministic replay,
 * and replay ids round-trip.
 *
 * Two suites are driven from CMake as dedicated ctest entries:
 *   - FuzzProtocolSweep: one entry per (line-protocol scheme, seed),
 *     scheme from PRISM_FUZZ_PROTOCOL and seed from
 *     PRISM_PROPERTY_SEED (fuzz_<scheme>_seed_<n>).
 *   - FuzzCorpus: replays tests/litmus/fuzz_corpus.txt — shrunk
 *     failing schedules committed as a regression corpus; each entry
 *     must still be caught by the oracle at exactly its shrunk budget.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "check/explorer.hh"

namespace prism {
namespace {

TEST(Explorer, CleanFuzzNoViolations)
{
    for (std::uint64_t seed = 1; seed <= 4; ++seed) {
        FuzzOptions opt;
        opt.seed = seed;
        opt.totalOps = 400;
        opt.policy = seed % 2 ? PolicyKind::Scoma : PolicyKind::DynLru;
        opt.clientFrameCap = seed % 2 ? 0 : 2;
        FuzzResult r = runFuzzCase(opt, opt.totalOps);
        EXPECT_FALSE(r.failed)
            << "seed " << seed << ": " << r.firstViolation;
        EXPECT_GT(r.checksRun, 0u);
    }
}

TEST(Explorer, MutationCaughtAndShrunk)
{
    // One skipped invalidation per home: some node keeps a stale
    // Shared copy past a write.  Scan a few seeds — schedules differ —
    // and require that at least one catches it, then shrink that one.
    FuzzOptions opt;
    opt.totalOps = 600;
    opt.mutationSkipInvals = 1;

    bool caught = false;
    for (std::uint64_t seed = 1; seed <= 10 && !caught; ++seed) {
        opt.seed = seed;
        if (runFuzzCase(opt, opt.totalOps).failed)
            caught = true;
    }
    ASSERT_TRUE(caught) << "no seed in 1..10 exposed the mutation";

    ShrinkResult s = shrinkFailure(opt);
    ASSERT_TRUE(s.reproduced);
    EXPECT_LT(s.minOps, 100u) << "reproducer did not shrink: " << s.replay;
    EXPECT_EQ(s.replay, replayId(opt.seed, s.minOps));

    // The shrunk budget is exactly minimal: minOps fails, minOps-1 passes.
    EXPECT_TRUE(runFuzzCase(opt, s.minOps).failed);
    if (s.minOps > 1) {
        EXPECT_FALSE(runFuzzCase(opt, s.minOps - 1).failed);
    }
}

TEST(Explorer, ReplayDeterminism)
{
    FuzzOptions opt;
    opt.seed = 7;
    opt.totalOps = 300;
    opt.mutationSkipInvals = 1;
    FuzzResult a = runFuzzCase(opt, opt.totalOps);
    FuzzResult b = runFuzzCase(opt, opt.totalOps);
    EXPECT_EQ(a.failed, b.failed);
    EXPECT_EQ(a.violationCount, b.violationCount);
    EXPECT_EQ(a.firstViolation, b.firstViolation);
}

/**
 * Per-scheme fuzz sweep.  CMake registers one ctest entry per
 * (scheme, seed): the scheme comes from PRISM_FUZZ_PROTOCOL, the seed
 * from PRISM_PROPERTY_SEED (the repo-wide sweep convention).  Run
 * bare (no env), it smoke-checks seed 1 of every scheme.
 */
TEST(FuzzProtocolSweep, CleanUnderJitterAndPageFlips)
{
    std::vector<ProtocolScheme> schemes;
    std::uint64_t seed = 1;
    if (const char *env = std::getenv("PRISM_FUZZ_PROTOCOL")) {
        ProtocolScheme ps;
        ASSERT_TRUE(protocolFromString(env, &ps))
            << "bad PRISM_FUZZ_PROTOCOL '" << env << "'";
        schemes.push_back(ps);
    } else {
        schemes = {ProtocolScheme::Msi, ProtocolScheme::Mesi,
                   ProtocolScheme::Moesi, ProtocolScheme::Mesif};
    }
    if (const char *env = std::getenv("PRISM_PROPERTY_SEED"))
        seed = std::strtoull(env, nullptr, 10);

    for (ProtocolScheme scheme : schemes) {
        FuzzOptions opt;
        opt.seed = seed;
        opt.protocol = scheme;
        opt.totalOps = 400;
        // Vary the policy and frame cap with the seed so the sweep
        // also crosses page-mode machinery per scheme.
        opt.policy = seed % 2 ? PolicyKind::Scoma : PolicyKind::DynLru;
        opt.clientFrameCap = seed % 2 ? 0 : 2;
        FuzzResult r = runFuzzCase(opt, opt.totalOps);
        EXPECT_FALSE(r.failed)
            << protocolName(scheme) << " seed " << seed << ": "
            << r.firstViolation;
        EXPECT_GT(r.checksRun, 0u);
    }
}

/** The fault injection stays observable under every scheme. */
TEST(FuzzProtocolSweep, MutationCaughtUnderEveryScheme)
{
    for (ProtocolScheme scheme :
         {ProtocolScheme::Msi, ProtocolScheme::Mesi,
          ProtocolScheme::Moesi, ProtocolScheme::Mesif}) {
        FuzzOptions opt;
        opt.protocol = scheme;
        opt.totalOps = 600;
        opt.mutationSkipInvals = 1;
        bool caught = false;
        for (std::uint64_t seed = 1; seed <= 10 && !caught; ++seed) {
            opt.seed = seed;
            if (runFuzzCase(opt, opt.totalOps).failed)
                caught = true;
        }
        EXPECT_TRUE(caught)
            << protocolName(scheme)
            << ": no seed in 1..10 exposed the skipped invalidation";
    }
}

/** One committed regression-corpus entry. */
struct CorpusEntry {
    std::string scheme;
    std::string policy;
    std::uint32_t skipInvals = 0;
    std::uint64_t seed = 0;
    std::uint32_t len = 0;
};

std::vector<CorpusEntry>
loadCorpus(const std::string &path)
{
    std::ifstream is(path);
    EXPECT_TRUE(is) << "cannot open corpus " << path;
    std::vector<CorpusEntry> out;
    std::string line;
    while (std::getline(is, line)) {
        if (line.empty() || line[0] == '#')
            continue;
        std::istringstream ls(line);
        CorpusEntry e;
        std::string replay;
        ls >> e.scheme >> e.policy >> e.skipInvals >> replay;
        EXPECT_FALSE(ls.fail()) << "bad corpus line: " << line;
        EXPECT_TRUE(parseReplayId(replay.c_str(), &e.seed, &e.len))
            << "bad replay id in corpus line: " << line;
        out.push_back(e);
    }
    return out;
}

PolicyKind
policyFromName(const std::string &name)
{
    for (PolicyKind k : {PolicyKind::Scoma, PolicyKind::LaNuma,
                         PolicyKind::Scoma70, PolicyKind::DynFcfs,
                         PolicyKind::DynUtil, PolicyKind::DynLru,
                         PolicyKind::DynBoth}) {
        if (name == policyName(k))
            return k;
    }
    ADD_FAILURE() << "unknown policy in corpus: " << name;
    return PolicyKind::Scoma;
}

/**
 * Regression corpus: every committed shrunk schedule still fails at
 * exactly its shrunk budget (the oracle catches the injected fault),
 * and the shrink is still minimal (budget - 1 passes).  Budgets are
 * tiny, so the whole corpus replays in well under a second.
 */
TEST(FuzzCorpus, ShrunkSchedulesStillCaught)
{
    const std::vector<CorpusEntry> corpus =
        loadCorpus(std::string(PRISM_SOURCE_DIR) +
                   "/tests/litmus/fuzz_corpus.txt");
    ASSERT_FALSE(corpus.empty());
    for (const CorpusEntry &e : corpus) {
        SCOPED_TRACE(e.scheme + "/" + e.policy + " " +
                     replayId(e.seed, e.len));
        FuzzOptions opt;
        opt.seed = e.seed;
        opt.policy = policyFromName(e.policy);
        ASSERT_TRUE(protocolFromString(e.scheme.c_str(), &opt.protocol));
        opt.totalOps = e.len;
        opt.mutationSkipInvals = e.skipInvals;
        EXPECT_TRUE(runFuzzCase(opt, e.len).failed)
            << "corpus schedule no longer caught";
        if (e.len > 1) {
            EXPECT_FALSE(runFuzzCase(opt, e.len - 1).failed)
                << "corpus schedule no longer minimal";
        }
    }
}

TEST(Explorer, ReplayIdRoundTrip)
{
    std::uint64_t seed = 0;
    std::uint32_t len = 0;
    EXPECT_TRUE(parseReplayId("42:17", &seed, &len));
    EXPECT_EQ(seed, 42u);
    EXPECT_EQ(len, 17u);
    EXPECT_EQ(replayId(seed, len), "42:17");

    EXPECT_TRUE(parseReplayId("18446744073709551615:1", &seed, &len));
    EXPECT_EQ(seed, 18446744073709551615ull);

    EXPECT_FALSE(parseReplayId("", &seed, &len));
    EXPECT_FALSE(parseReplayId("42", &seed, &len));
    EXPECT_FALSE(parseReplayId("42:", &seed, &len));
    EXPECT_FALSE(parseReplayId("42:0", &seed, &len));
    EXPECT_FALSE(parseReplayId("42:17trailing", &seed, &len));
    EXPECT_FALSE(parseReplayId(":17", &seed, &len));
    EXPECT_FALSE(parseReplayId(nullptr, &seed, &len));
}

} // namespace
} // namespace prism
