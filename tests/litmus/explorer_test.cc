/**
 * @file
 * Tests for the random-schedule explorer (check/explorer): clean
 * protocol runs stay clean under heavy jitter and page-mode flips, a
 * deliberately broken protocol (homes skipping an invalidation) is
 * caught by the oracle and shrinks to a small deterministic replay,
 * and replay ids round-trip.
 */

#include <gtest/gtest.h>

#include <cstdint>

#include "check/explorer.hh"

namespace prism {
namespace {

TEST(Explorer, CleanFuzzNoViolations)
{
    for (std::uint64_t seed = 1; seed <= 4; ++seed) {
        FuzzOptions opt;
        opt.seed = seed;
        opt.totalOps = 400;
        opt.policy = seed % 2 ? PolicyKind::Scoma : PolicyKind::DynLru;
        opt.clientFrameCap = seed % 2 ? 0 : 2;
        FuzzResult r = runFuzzCase(opt, opt.totalOps);
        EXPECT_FALSE(r.failed)
            << "seed " << seed << ": " << r.firstViolation;
        EXPECT_GT(r.checksRun, 0u);
    }
}

TEST(Explorer, MutationCaughtAndShrunk)
{
    // One skipped invalidation per home: some node keeps a stale
    // Shared copy past a write.  Scan a few seeds — schedules differ —
    // and require that at least one catches it, then shrink that one.
    FuzzOptions opt;
    opt.totalOps = 600;
    opt.mutationSkipInvals = 1;

    bool caught = false;
    for (std::uint64_t seed = 1; seed <= 10 && !caught; ++seed) {
        opt.seed = seed;
        if (runFuzzCase(opt, opt.totalOps).failed)
            caught = true;
    }
    ASSERT_TRUE(caught) << "no seed in 1..10 exposed the mutation";

    ShrinkResult s = shrinkFailure(opt);
    ASSERT_TRUE(s.reproduced);
    EXPECT_LT(s.minOps, 100u) << "reproducer did not shrink: " << s.replay;
    EXPECT_EQ(s.replay, replayId(opt.seed, s.minOps));

    // The shrunk budget is exactly minimal: minOps fails, minOps-1 passes.
    EXPECT_TRUE(runFuzzCase(opt, s.minOps).failed);
    if (s.minOps > 1) {
        EXPECT_FALSE(runFuzzCase(opt, s.minOps - 1).failed);
    }
}

TEST(Explorer, ReplayDeterminism)
{
    FuzzOptions opt;
    opt.seed = 7;
    opt.totalOps = 300;
    opt.mutationSkipInvals = 1;
    FuzzResult a = runFuzzCase(opt, opt.totalOps);
    FuzzResult b = runFuzzCase(opt, opt.totalOps);
    EXPECT_EQ(a.failed, b.failed);
    EXPECT_EQ(a.violationCount, b.violationCount);
    EXPECT_EQ(a.firstViolation, b.firstViolation);
}

TEST(Explorer, ReplayIdRoundTrip)
{
    std::uint64_t seed = 0;
    std::uint32_t len = 0;
    EXPECT_TRUE(parseReplayId("42:17", &seed, &len));
    EXPECT_EQ(seed, 42u);
    EXPECT_EQ(len, 17u);
    EXPECT_EQ(replayId(seed, len), "42:17");

    EXPECT_TRUE(parseReplayId("18446744073709551615:1", &seed, &len));
    EXPECT_EQ(seed, 18446744073709551615ull);

    EXPECT_FALSE(parseReplayId("", &seed, &len));
    EXPECT_FALSE(parseReplayId("42", &seed, &len));
    EXPECT_FALSE(parseReplayId("42:", &seed, &len));
    EXPECT_FALSE(parseReplayId("42:0", &seed, &len));
    EXPECT_FALSE(parseReplayId("42:17trailing", &seed, &len));
    EXPECT_FALSE(parseReplayId(":17", &seed, &len));
    EXPECT_FALSE(parseReplayId(nullptr, &seed, &len));
}

} // namespace
} // namespace prism
